package enld

// Integration tests exercising the public API end-to-end, the way the
// examples and a downstream user would.

import (
	"bytes"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	const seed = 1
	rng := NewRNG(seed)

	spec := EMNISTLike(seed).Scale(0.5)
	data, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := PairNoise(spec.Classes, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := ApplyNoise(data, tm, rng)
	if err != nil {
		t.Fatal(err)
	}
	if noisy == 0 {
		t.Fatal("no noise applied")
	}

	inventory, pool, err := SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Shard(pool, ShardSpec{Shards: 2, MinClasses: 5, MaxClasses: 6, Drift: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed)
	cfg.Epochs = 10
	platform, err := NewPlatform(inventory, cfg)
	if err != nil {
		t.Fatal(err)
	}

	detector := &ENLD{Platform: platform, Config: DefaultENLDConfig(seed)}
	var dets []Detection
	for _, shard := range shards {
		res, err := detector.Detect(shard)
		if err != nil {
			t.Fatal(err)
		}
		dets = append(dets, EvaluateDetection(shard, res.Noisy))
	}
	agg := AggregateDetections(dets)
	if agg.F1.Mean < 0.6 {
		t.Fatalf("public-API pipeline F1 = %v", agg.F1.Mean)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	const seed = 2
	rng := NewRNG(seed)
	spec := EMNISTLike(seed).Scale(0.4)
	data, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := PairNoise(spec.Classes, 0.2)
	if _, err := ApplyNoise(data, tm, rng); err != nil {
		t.Fatal(err)
	}
	inventory, pool, err := SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed)
	cfg.Epochs = 10
	platform, err := NewPlatform(inventory, cfg)
	if err != nil {
		t.Fatal(err)
	}

	detectors := []Detector{
		DefaultDetector{Model: platform.Model},
		ConfidentLearning{Model: platform.Model, Variant: PruneByClass},
		ConfidentLearning{Model: platform.Model, Variant: PruneByNoiseRate},
		TopoFilter{
			InputDim: spec.FeatureDim, Classes: spec.Classes, Inventory: inventory,
			Config: TopoFilterConfig{Epochs: 6, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 5, Seed: seed},
		},
	}
	for _, d := range detectors {
		res, err := d.Detect(pool)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		det := EvaluateDetection(pool, res.Noisy)
		if det.F1 <= 0.3 {
			t.Errorf("%s F1 = %v", d.Name(), det.F1)
		}
	}
}

func TestPublicAPIStoreRoundTrip(t *testing.T) {
	store, err := NewStore(StoreMeta{Name: "api", Classes: 3, FeatureDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	set := Set{
		{ID: 1, X: []float64{1, 2}, Observed: 0, True: 0},
		{ID: 2, X: []float64{3, 4}, Observed: 1, True: 1},
	}
	if err := store.Add(set); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := store.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("round trip lost data: %d", loaded.Len())
	}
}

func TestPublicAPIMissingLabels(t *testing.T) {
	set := Set{
		{ID: 1, X: []float64{1}, Observed: 0, True: 0},
		{ID: 2, X: []float64{2}, Observed: 1, True: 1},
	}
	masked, err := MaskMissing(set, 1.0, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if masked != 2 || set[0].Observed != Missing {
		t.Fatalf("MaskMissing: %d masked, label %d", masked, set[0].Observed)
	}
}

func TestPublicAPISamplingStrategies(t *testing.T) {
	// All strategy types satisfy the exported interface.
	strategies := []SamplingStrategy{
		ContrastiveSampling{},
		RandomSampling{},
		HighestConfidenceSampling{},
		LeastConfidenceSampling{},
		EntropySampling{},
		PseudoSampling{},
	}
	seen := map[string]bool{}
	for _, s := range strategies {
		if seen[s.Name()] {
			t.Fatalf("duplicate strategy %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestPublicAPIArchitectures(t *testing.T) {
	for _, a := range []Arch{SimResNet110, SimDenseNet121, SimResNet164} {
		cfg := DefaultPlatformConfig(4, 6, 3)
		cfg.Arch = a
		cfg.Epochs = 1
		inv := make(Set, 40)
		rng := NewRNG(4)
		for i := range inv {
			inv[i] = Sample{ID: i, X: rng.NormVec(make([]float64, 6), 0, 1), Observed: i % 4, True: i % 4}
		}
		if _, err := NewPlatform(inv, cfg); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
}
