// Package enld is the public API of this repository: a Go implementation of
// ENLD — Efficient Noisy Label Detection for Incremental Datasets in Data
// Lake (ICDE 2023) — together with every substrate it depends on and the
// baselines it is evaluated against.
//
// # Overview
//
// ENLD serves a data platform that holds a large labelled inventory and
// continuously receives incremental datasets whose labels must be screened
// for noise. The platform initializes once (NewPlatform): it splits the
// inventory, trains a general model with mixup, and estimates the
// conditional mislabeling probability. Each arriving dataset is then served
// by fine-grained noisy label detection (ENLD.Detect) — a few epochs of
// fine-tuning on contrastively sampled inventory neighbours of the
// dataset's ambiguous samples, with clean samples selected by majority
// voting over training steps.
//
// # Quick start
//
//	spec := enld.CIFAR100Like(seed)
//	data, _ := spec.Generate()
//	tm, _ := enld.PairNoise(spec.Classes, 0.2)
//	enld.ApplyNoise(data, tm, enld.NewRNG(seed))
//
//	inventory, pool, _ := enld.SplitRatio(data, 2.0/3.0, enld.NewRNG(seed))
//	platform, _ := enld.NewPlatform(inventory, enld.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed))
//
//	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}
//	result, _ := detector.Detect(incoming)
//	// result.Noisy / result.Clean partition the incoming sample IDs.
//
// See examples/ for complete programs and internal/experiments for the code
// that regenerates every table and figure of the paper.
package enld

import (
	"enld/internal/baselines"
	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/fault"
	"enld/internal/lake"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/nn"
	"enld/internal/noise"
	"enld/internal/sampling"
)

// Data types.
type (
	// Sample is one labelled example; Observed may differ from True (noise)
	// or be Missing.
	Sample = dataset.Sample
	// Set is an ordered sample collection.
	Set = dataset.Set
	// Spec describes a synthetic benchmark dataset.
	Spec = dataset.Spec
	// ShardSpec controls cutting a pool into incremental datasets.
	ShardSpec = dataset.ShardSpec
)

// Missing marks an absent observed label.
const Missing = dataset.Missing

// Dataset generation and splitting.
var (
	// EMNISTLike, CIFAR100Like and TinyImageNetLike return the three
	// benchmark presets standing in for the paper's image datasets.
	EMNISTLike       = dataset.EMNISTLike
	CIFAR100Like     = dataset.CIFAR100Like
	TinyImageNetLike = dataset.TinyImageNetLike
	// SplitRatio partitions a set (e.g. inventory versus incremental pool).
	SplitRatio = dataset.SplitRatio
	// Shard cuts the incremental pool into unbalanced incremental datasets.
	Shard = dataset.Shard
	// LoadIDX reads MNIST/EMNIST-format image and label files; LoadCSV reads
	// tabular datasets. Pair with FitPCA to obtain compact feature vectors.
	LoadIDX = dataset.LoadIDX
	LoadCSV = dataset.LoadCSV
	// FitPCA fits a principal-component projection for raw inputs.
	FitPCA = dataset.FitPCA
)

// PCA is a fitted principal-component projection (see FitPCA).
type PCA = dataset.PCA

// CSVOptions controls LoadCSV.
type CSVOptions = dataset.CSVOptions

// Noise modelling.
type (
	// TransitionMatrix is the label-noise model T[i][j] = P(ỹ=j | y*=i).
	TransitionMatrix = noise.TransitionMatrix
	// Conditional is the estimated P̃(y* = j | ỹ = i).
	Conditional = noise.Conditional
)

var (
	// PairNoise builds the paper's asymmetric pair-noise matrix.
	PairNoise = noise.Pair
	// SymmetricNoise builds a uniform-noise matrix.
	SymmetricNoise = noise.Symmetric
	// ApplyNoise corrupts observed labels in place.
	ApplyNoise = noise.Apply
	// MaskMissing removes a fraction of observed labels (§V-H).
	MaskMissing = noise.MaskMissing
	// ApplyInstanceDependent corrupts boundary samples preferentially
	// (instance-dependent noise).
	ApplyInstanceDependent = noise.ApplyInstanceDependent
)

// RNG is the deterministic random source used throughout.
type RNG = mat.RNG

// NewRNG returns a seeded deterministic generator.
var NewRNG = mat.NewRNG

// The platform and the ENLD detector (the paper's contribution).
type (
	// Platform holds the general model, probability estimate and inventory
	// halves (Algorithm 1 setup).
	Platform = core.Platform
	// PlatformConfig controls platform initialization.
	PlatformConfig = core.PlatformConfig
	// ENLD is the paper's detector (Algorithms 2–3).
	ENLD = core.ENLD
	// ENLDConfig controls fine-grained noisy label detection.
	ENLDConfig = core.Config
	// ENLDResult is the extended detection result with per-iteration
	// snapshots, inventory selection and pseudo labels.
	ENLDResult = core.FullResult
)

var (
	// NewPlatform initializes a platform on inventory data.
	NewPlatform = core.NewPlatform
	// DefaultPlatformConfig returns the evaluation's platform settings.
	DefaultPlatformConfig = core.DefaultPlatformConfig
	// DefaultENLDConfig returns the paper's hyperparameters (k=3, s=5,
	// 2 warm-up epochs).
	DefaultENLDConfig = core.DefaultConfig
	// LoadPlatform restores a platform written with Platform.Save, so a
	// restarted service skips the setup phase.
	LoadPlatform = core.LoadPlatform
)

// Detection interfaces and baseline methods.
type (
	// Detector is the interface all methods implement.
	Detector = detect.Detector
	// Result is a detection outcome: Noisy/Clean ID partition plus cost.
	Result = detect.Result
	// DefaultDetector flags disagreement with the general model.
	DefaultDetector = baselines.Default
	// ConfidentLearning is the CL baseline; set Variant to PruneByClass
	// (CL-1) or PruneByNoiseRate (CL-2).
	ConfidentLearning = baselines.ConfidentLearning
	// TopoFilter is the feature-space connected-component baseline.
	TopoFilter = baselines.TopoFilter
	// TopoFilterConfig controls the TopoFilter baseline.
	TopoFilterConfig = baselines.TopoFilterConfig
	// LossTrack is the O2U-style loss-tracking extension detector.
	LossTrack = baselines.LossTrack
	// LossTrackConfig controls LossTrack.
	LossTrackConfig = baselines.LossTrackConfig
	// INCV is the iterative cross-validation extension detector.
	INCV = baselines.INCV
	// INCVConfig controls INCV.
	INCVConfig = baselines.INCVConfig
	// CoTeaching is the two-network small-loss extension detector.
	CoTeaching = baselines.CoTeaching
	// CoTeachingConfig controls CoTeaching.
	CoTeachingConfig = baselines.CoTeachingConfig
)

// Confident-learning pruning variants.
const (
	PruneByClass     = baselines.PruneByClass
	PruneByNoiseRate = baselines.PruneByNoiseRate
)

// Sampling strategies (§V-A5) pluggable into ENLDConfig.Strategy.
type (
	// SamplingStrategy selects contrastive samples during fine-grained NLD.
	SamplingStrategy = sampling.Strategy
	// ContrastiveSampling is the paper's strategy (Algorithm 2).
	ContrastiveSampling = sampling.Contrastive
	// RandomSampling, HighestConfidenceSampling, LeastConfidenceSampling,
	// EntropySampling and PseudoSampling are the §V-A5 baselines.
	RandomSampling            = sampling.Random
	HighestConfidenceSampling = sampling.HighestConfidence
	LeastConfidenceSampling   = sampling.LeastConfidence
	EntropySampling           = sampling.Entropy
	PseudoSampling            = sampling.Pseudo
)

// Evaluation metrics.
type (
	// Detection scores one detection result against ground truth.
	Detection = metrics.Detection
	// DetectionAggregate summarizes detections across datasets.
	DetectionAggregate = metrics.Aggregate
)

// PairedComparison is a paired sign-test outcome between two methods.
type PairedComparison = metrics.PairedComparison

var (
	// EvaluateDetection scores detected-noisy IDs against ground truth.
	EvaluateDetection = metrics.EvaluateDetection
	// AggregateDetections averages detections field-wise.
	AggregateDetections = metrics.AggregateDetections
	// SignTest runs a two-sided paired sign test over per-dataset scores.
	SignTest = metrics.SignTest
)

// Data-lake serving layer.
type (
	// Store is a persistent labelled-sample inventory.
	Store = lake.Store
	// StoreMeta describes a store's task.
	StoreMeta = lake.StoreMeta
	// Service processes detection requests with a worker pool.
	Service = lake.Service
	// Request and Report are the service's task input and outcome.
	Request = lake.Request
	Report  = lake.Report
	// Journal is the append-only audit log of platform decisions.
	Journal = lake.Journal
	// JournalEntry is one journal record.
	JournalEntry = lake.Entry
	// StatusTracker aggregates task reports for the HTTP status endpoint.
	StatusTracker = lake.StatusTracker
	// Policy configures the service's resilience behaviour: per-task
	// deadlines, transient-failure retries, circuit breaking and fallback
	// degradation.
	Policy = lake.Policy
	// Breaker is the circuit breaker over the primary detector.
	Breaker = lake.Breaker
	// BreakerState is one of closed, open, half-open.
	BreakerState = lake.BreakerState
	// FaultInjector wraps a detector with deterministic chaos for
	// resilience testing.
	FaultInjector = fault.Injector
	// FaultConfig sets the injector's seed and fault rates.
	FaultConfig = fault.Config
)

var (
	// NewStore creates an empty inventory store.
	NewStore = lake.NewStore
	// LoadStore reads a store written with Store.Save.
	LoadStore = lake.LoadStore
	// NewService binds a detector to a worker pool; NewServiceWithPolicy
	// adds resilience behaviour (deadlines, retries, breaker, fallback).
	NewService           = lake.NewService
	NewServiceWithPolicy = lake.NewServiceWithPolicy
	// NewBreaker builds a standalone circuit breaker.
	NewBreaker = lake.NewBreaker
	// NewFaultInjector wraps a detector with seed-driven fault injection.
	NewFaultInjector = fault.New
	// Feed converts shards into a paced request stream.
	Feed = lake.Feed
	// NewJournal opens an append-only decision journal.
	NewJournal = lake.NewJournal
	// ReadJournal decodes a journal; ReplayJournal applies it to a store.
	ReadJournal   = lake.ReadJournal
	ReplayJournal = lake.Replay
	// ReadJournalLenient tolerates a torn trailing record (crash
	// mid-append); RecoverJournalFile compacts and reopens a journal file
	// for appending; DoneTasks extracts the recoverable task-ID set.
	ReadJournalLenient = lake.ReadJournalLenient
	RecoverJournalFile = lake.RecoverJournalFile
	DoneTasks          = lake.DoneTasks
	// NewStatusTracker creates a status aggregator for live monitoring.
	NewStatusTracker = lake.NewStatusTracker
)

// Neural substrate access for advanced use (custom architectures, direct
// model training).
type (
	// Network is the feed-forward classifier standing in for the paper's
	// CNNs.
	Network = nn.Network
	// Arch names a network family.
	Arch = nn.Arch
)

// Architectures standing in for the paper's network families.
const (
	SimResNet110   = nn.SimResNet110
	SimDenseNet121 = nn.SimDenseNet121
	SimResNet164   = nn.SimResNet164
)
