// Command enld runs one noisy-label detection method on a generated
// workload and prints per-shard and aggregate detection quality.
//
// Usage:
//
//	enld -dataset cifar100 -eta 0.2 -method enld
//	enld -dataset emnist -eta 0.4 -method topofilter -shards 5
//	enld -dataset tinyimagenet -method all    # compare every method
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/experiments"
	"enld/internal/metrics"
	"enld/internal/nn"
	"enld/internal/obs"
	"enld/internal/prof"
)

func main() {
	var (
		preset     = flag.String("dataset", "cifar100", "workload preset: emnist, cifar100, tinyimagenet")
		eta        = flag.Float64("eta", 0.2, "pair-noise rate in [0, 1)")
		method     = flag.String("method", "enld", "default, cl-1, cl-2, topofilter, enld, or all")
		seed       = flag.Uint64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 1.0, "dataset size factor")
		shards     = flag.Int("shards", 0, "incremental dataset count (0 = paper count)")
		iters      = flag.Int("iters", 0, "ENLD iterations t (0 = paper default)")
		noise      = flag.String("noise", "pair", "label-noise model: pair (paper) or symmetric")
		workers    = flag.Int("workers", 0, "data-parallel workers for training/scoring/k-NN (0 = all cores); results are identical at any count")
		useANN     = flag.Bool("ann", false, "use the approximate IVF k-NN index for ENLD's contrastive sampling (faster; detection quality within the guardrail budget of the exact default)")
		useF32     = flag.Bool("f32", false, "run ENLD's ranking-only forward passes in float32 (deterministic, but not bit-identical to the float64 default)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a runtime/trace execution trace to this file")
		metricsOut = flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file")

		watchdog      = flag.Bool("watchdog", false, "enable the numerical-health watchdog (NaN/Inf + divergence detection, checkpoint rollback) on platform training")
		watchdogEvery = flag.Int("watchdog-every", 0, "batch cadence of gradient/weight scans (0 = default 16)")
		rollbackMax   = flag.Int("rollback-budget", 0, "max checkpoint rollbacks per training run (0 = default 3)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "enld:", err)
		os.Exit(1)
	}
	defer stopProf()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "enld:", err)
				return
			}
			defer f.Close()
			if err := reg.WritePrometheus(f); err != nil {
				fmt.Fprintln(os.Stderr, "enld:", err)
			}
		}()
	}

	cfg := experiments.Config{
		Seed: *seed, DataScale: *scale, Shards: *shards, Iterations: *iters,
		Noise: experiments.NoiseKind(*noise), Workers: *workers, Obs: reg,
		ANN: *useANN, Float32: *useF32,
	}
	if *watchdog {
		cfg.Watchdog = nn.WatchdogConfig{
			Enabled:      true,
			Health:       nn.HealthConfig{CheckEvery: *watchdogEvery},
			MaxRollbacks: *rollbackMax,
		}
	}
	wb, err := experiments.BuildWorkbench(*preset, *eta, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "enld:", err)
		os.Exit(1)
	}
	fmt.Printf("workload %s eta=%.2f: %d classes, %d incremental datasets, setup %s\n",
		*preset, *eta, wb.Spec.Classes, len(wb.Shards),
		wb.Platform.SetupTime.Round(time.Millisecond))
	if *watchdog {
		h := wb.Platform.Health
		fmt.Printf("watchdog: checks=%d rollbacks=%d last-unhealthy-epoch=%d checkpoints=%d verify-failures=%d\n",
			h.HealthChecks, h.Rollbacks, h.LastUnhealthyEpoch, h.CheckpointsTaken, h.VerifyFailures)
	}

	detectors := experiments.AllMethods(wb, *seed+3)
	ran := false
	for _, d := range detectors {
		if *method != "all" && d.Name() != *method {
			continue
		}
		ran = true
		runOne(d, wb.Shards)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "enld: unknown method %q\n", *method)
		os.Exit(2)
	}
}

func runOne(d detect.Detector, shards []dataset.Set) {
	var dets []metrics.Detection
	var process time.Duration
	for i, shard := range shards {
		res, err := d.Detect(shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "enld: %s on shard %d: %v\n", d.Name(), i, err)
			os.Exit(1)
		}
		det := metrics.EvaluateDetection(shard, res.Noisy)
		dets = append(dets, det)
		process += res.Process
		fmt.Printf("  %-12s shard %2d: size=%4d noisy=%3d detected=%3d P=%.4f R=%.4f F1=%.4f (%s)\n",
			d.Name(), i, len(shard), det.Actual, det.Detected,
			det.Precision, det.Recall, det.F1, res.Process.Round(time.Millisecond))
	}
	agg := metrics.AggregateDetections(dets)
	fmt.Printf("%-12s overall: %s, mean process %s\n",
		d.Name(), agg, (process / time.Duration(len(shards))).Round(time.Millisecond))
}
