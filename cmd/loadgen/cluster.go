package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"enld/internal/baselines"
	"enld/internal/experiments"
	"enld/internal/fault"
	"enld/internal/lake"
	"enld/internal/lake/cluster"
	"enld/internal/obs"
	"enld/internal/workload"
)

// The coordinator satisfies the replay harness's Submitter contract, so one
// Play call drives a whole cluster exactly as it drives a single service.
var _ workload.Submitter = (*cluster.Coordinator)(nil)

// runClusterScenario replays the scenario against an in-process sharded
// cluster: n shard workers, each a full lake service with its own registry,
// policy, fault-injection stream and (optionally) seglog inventory
// subdirectory, fronted by a rendezvous-hashing coordinator. The replay is
// summarized from the coordinator's merged scatter/gather /metrics view
// through the same reduction as a single-node run.
//
// killShard >= 0 hard-kills that shard killAfter into the replay — queued
// and in-flight work on the victim is abandoned at the shard, rerouted by
// the coordinator, and the run must still account for every offered task.
func runClusterScenario(ctx context.Context, spec workload.Spec, n, killShard int, killAfter time.Duration, speed float64, timeout time.Duration, storeKind, storeDir, metricsDir string) (*workload.ScenarioResult, error) {
	if killShard >= n {
		return nil, fmt.Errorf("-kill-shard %d out of range for %d shard(s)", killShard, n)
	}
	// The coordinator's registry carries platform setup, the generator's own
	// load metrics and the enld_cluster_* placement/reroute families; it
	// rides into the merged exposition as the unlabelled passthrough part.
	coordReg := obs.NewRegistry()

	scale := spec.Scale
	if scale == 0 {
		scale = 1
	}
	taskWorkers := spec.TaskWorkers
	if taskWorkers == 0 {
		taskWorkers = 1
	}
	cfg := experiments.Config{Seed: spec.Seed, DataScale: scale, Workers: taskWorkers, Obs: coordReg}
	wb, err := experiments.BuildWorkbench(spec.Preset, spec.Eta, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] platform ready: %s eta=%.2f setup=%s\n",
		spec.Name, spec.Preset, spec.Eta, wb.Platform.SetupTime.Round(time.Millisecond))

	p := spec.Policy
	policy := lake.Policy{
		TaskTimeout:      time.Duration(p.TaskTimeoutSeconds * float64(time.Second)),
		MaxRetries:       p.Retries,
		RetryBase:        time.Duration(p.RetryBaseMS * float64(time.Millisecond)),
		RetrySeed:        spec.Seed,
		BreakerThreshold: p.BreakerThreshold,
		BreakerCooldown:  time.Duration(p.BreakerCooldownMS * float64(time.Millisecond)),
		Admission:        p.Admission(),
	}
	if p.Fallback {
		policy.Fallback = baselines.Default{Model: wb.Platform.Model}
	}

	workers := make([]*cluster.ShardWorker, n)
	shards := make([]cluster.Shard, n)
	for i := range workers {
		name := fmt.Sprintf("shard-%d", i)
		detector, err := findDetector(wb, spec)
		if err != nil {
			return nil, err
		}
		f := spec.Fault
		if f.FailRate > 0 || f.PanicRate > 0 || f.SlowRate > 0 || f.CorruptRate > 0 {
			// Each shard gets its own deterministic chaos stream: same rates,
			// seed offset by the shard index so the shards do not fail in
			// lockstep.
			inj, err := fault.New(detector, fault.Config{
				Seed:        f.Seed + uint64(i)*101,
				FailRate:    f.FailRate,
				PanicRate:   f.PanicRate,
				SlowRate:    f.SlowRate,
				Latency:     time.Duration(f.SlowLatencyMS * float64(time.Millisecond)),
				CorruptRate: f.CorruptRate,
			})
			if err != nil {
				return nil, err
			}
			detector = inj
		}
		wcfg := cluster.WorkerConfig{
			Name: name,
			// Every shard runs the scenario's worker count: the cluster
			// scenario is its own baseline (name suffixed -cluster), not a
			// capacity-matched rerun of the single-node one.
			Workers:  spec.Workers,
			Policy:   policy,
			Registry: obs.NewRegistry(),
		}
		if spec.Brownout != nil {
			ladder := experiments.BrownoutLadder(wb)
			ladder[0].Detector = detector
			wcfg.Ladder = ladder
			wcfg.Brownout = spec.Brownout.Config()
		}
		if storeKind != "" {
			inv, err := openInventory(storeKind, storeDir, filepath.Join(spec.Name, name), wcfg.Registry)
			if err != nil {
				return nil, err
			}
			if inv != nil {
				defer inv.Close()
				wcfg.Inventory = inv
			}
		}
		w, err := cluster.NewShardWorker(detector, wcfg)
		if err != nil {
			return nil, err
		}
		workers[i] = w
		shards[i] = w
	}
	defer func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, w := range workers {
			_ = w.Drain(drainCtx)
		}
	}()

	coord, err := cluster.New(shards, cluster.Options{Policy: policy})
	if err != nil {
		return nil, err
	}
	coord.SetObs(coordReg)
	fmt.Printf("[%s] cluster: %d shard(s), rendezvous placement, %d worker(s) each\n", spec.Name, n, spec.Workers)

	trace, err := workload.GenTrace(spec)
	if err != nil {
		return nil, err
	}
	hash, err := trace.Hash()
	if err != nil {
		return nil, err
	}
	pool, err := wb.Spec.Generate()
	if err != nil {
		return nil, err
	}
	catalog, err := workload.Materialize(trace, pool, wb.Spec.Classes)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] trace %016x: %d events over %s across %d datasets, replay speed %.1fx\n",
		spec.Name, hash, len(trace.Events), trace.Duration.Round(time.Second), len(catalog), speed)

	if killShard >= 0 && killAfter > 0 {
		victim := workers[killShard]
		timer := time.AfterFunc(killAfter, func() {
			fmt.Printf("[%s] killing %s %.1fs into the replay\n", spec.Name, victim.Name(), killAfter.Seconds())
			victim.Kill()
		})
		defer timer.Stop()
	}

	runCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	played, err := workload.Play(runCtx, coord, trace, catalog, workload.PlayOptions{Speed: speed, Obs: coordReg})
	if err != nil {
		return nil, err
	}

	// The cluster accounting identity: every offered task lands in exactly
	// one terminal class. lost > 0 means a task vanished without a report —
	// the one outcome the cluster must never produce.
	var acct struct{ completed, rerouted, shed, abandoned, deadLetter int }
	for _, rep := range played.Reports {
		switch {
		case rep.Shed:
			acct.shed++
		case rep.Abandoned:
			acct.abandoned++
		case rep.DeadLettered:
			acct.deadLetter++
		case rep.Rerouted:
			acct.rerouted++
		default:
			acct.completed++
		}
	}
	lost := played.Offered - acct.completed - acct.rerouted - acct.shed - acct.abandoned - acct.deadLetter
	fmt.Printf("[%s] cluster accounting: offered=%d completed=%d rerouted=%d shed=%d abandoned=%d dead_letter=%d lost=%d\n",
		spec.Name, played.Offered, acct.completed, acct.rerouted, acct.shed, acct.abandoned, acct.deadLetter, lost)

	// Summarize from the coordinator's merged scatter/gather exposition —
	// the same bytes a cluster /metrics scrape would return, reduced by the
	// same code as a single-node run.
	var merged bytes.Buffer
	if err := coord.WriteMetrics(ctx, &merged); err != nil {
		return nil, err
	}
	if metricsDir != "" {
		if err := os.MkdirAll(metricsDir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(metricsDir, spec.Name+".metrics.txt"), merged.Bytes(), 0o644); err != nil {
			return nil, err
		}
	}
	res, err := workload.SummarizeExposition(spec, played, &merged)
	if err != nil {
		return nil, err
	}
	if lost != 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("cluster accounting: %d task(s) lost without a report", lost))
		res.Pass = false
	}
	return res, nil
}
