package main

import (
	"path/filepath"
	"testing"

	"enld/internal/workload"
)

// TestScenarioFiles keeps every checked-in scenario spec loadable and
// generable: a spec that validates but cannot produce a trace (or whose SLO
// block is empty) would turn the CI load gate into a no-op.
func TestScenarioFiles(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no scenario files found")
	}
	for _, path := range paths {
		spec, err := workload.LoadSpec(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if spec.SLO.Empty() {
			t.Errorf("%s: no SLOs declared — the load gate would pass vacuously", path)
		}
		tr, err := workload.GenTrace(spec)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(tr.Events) == 0 {
			t.Errorf("%s: trace has no events", path)
		}
		if _, err := tr.Hash(); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}
