// Command loadgen replays declarative load scenarios against the lake
// service and gates the measured latency distribution on each scenario's
// SLOs. A scenario spec (internal/workload) declares the arrival schedule,
// the Zipf-skewed dataset catalog, the fault and resilience configuration
// and the objectives; loadgen generates the deterministic trace, replays it
// in-process against a freshly built platform, scrapes the service's own
// obs histograms, and writes one BENCH_load.json document for benchsummary
// to compare against a checked-in baseline:
//
//	loadgen -out BENCH_load.json scenarios/ci-short.json
//	loadgen -store seglog -store-dir /tmp/lg -speed 2 scenarios/*.json
//
// With -scrape-url the replay is skipped entirely and the SLOs are
// evaluated against a live /metrics endpoint (a running lakesim), which
// makes the same gate usable against a deployed service:
//
//	loadgen -scrape-url http://localhost:8080/metrics -scrape-wall 30 scenarios/ci-short.json
//
// Exit status: 0 when every scenario meets its SLOs, 1 on violations
// (suppressed by -warn-only), 2 on usage or build errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"enld/internal/baselines"
	"enld/internal/detect"
	"enld/internal/experiments"
	"enld/internal/fault"
	"enld/internal/lake"
	"enld/internal/lake/seglog"
	"enld/internal/obs"
	"enld/internal/workload"
)

func main() {
	var (
		out        = flag.String("out", "BENCH_load.json", "load summary artifact path")
		metricsDir = flag.String("metrics-dir", "", "write each scenario's final /metrics exposition to <dir>/<scenario>.metrics.txt")
		speed      = flag.Float64("speed", 1, "replay time compression: 2 submits twice as fast as the trace prescribes")
		storeKind  = flag.String("store", "", "durable inventory backend under load: seglog, gob, memory (empty = off)")
		storeDir   = flag.String("store-dir", "", "directory for durable inventory storage (per-scenario subdirectories)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "per-scenario replay deadline")
		warnOnly   = flag.Bool("warn-only", false, "report SLO violations without failing the process")
		scrapeURL  = flag.String("scrape-url", "", "evaluate SLOs against this live /metrics endpoint instead of replaying")
		scrapeWall = flag.Float64("scrape-wall", 0, "wall-clock seconds the scraped service has been serving (for the throughput objective)")
		noBrownout = flag.Bool("no-brownout", false, "strip the scenario's overload protection (bounded admission, shedding, brownout tiers) and replay unprotected; the result is renamed <name>-unprotected so protected and baseline runs coexist in one artifact")

		// Cluster mode (internal/lake/cluster): replay against an in-process
		// sharded coordinator instead of a single service.
		clusterN  = flag.Int("cluster", 0, "replay against an in-process cluster of this many shard workers behind a rendezvous-hashing coordinator; the result is renamed <name>-cluster so single-node and cluster runs coexist in one artifact")
		killShard = flag.Int("kill-shard", -1, "hard-kill this shard index mid-replay (needs -cluster and -kill-after); its queued work must reroute with nothing lost")
		killAfter = flag.Duration("kill-after", 0, "how far into the replay to kill -kill-shard")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no scenario spec files given")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	summary := workload.LoadSummary{GoVersion: runtime.Version()}
	for _, path := range flag.Args() {
		spec, err := workload.LoadSpec(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		if *noBrownout {
			// The unprotected baseline: same trace (generation is seeded, the
			// name is only a label), no shedding, no degradation tiers. The
			// queue is left effectively unbounded — not zero: a zero depth
			// falls back to the blocking hand-off, which pushes the delay into
			// the generator's send lag where the service's own queued-latency
			// histogram cannot see it. A deep queue admits every arrival
			// immediately, so saturation shows up honestly as queued-p99
			// collapse in the same metrics the protected run is gated on.
			spec.Name += "-unprotected"
			spec.Brownout = nil
			spec.Policy.QueueDepth = 1 << 16
			spec.Policy.MaxQueueWaitMS = 0
		}
		var res *workload.ScenarioResult
		switch {
		case *scrapeURL != "":
			res, err = workload.SummarizeScrape(spec.Name, *scrapeURL, spec.SLO, *scrapeWall)
		case *clusterN > 0:
			spec.Name += "-cluster"
			res, err = runClusterScenario(ctx, spec, *clusterN, *killShard, *killAfter, *speed, *timeout, *storeKind, *storeDir, *metricsDir)
		default:
			res, err = runScenario(ctx, spec, *speed, *timeout, *storeKind, *storeDir, *metricsDir)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scenario %s: %v\n", spec.Name, err)
			os.Exit(2)
		}
		summary.Scenarios = append(summary.Scenarios, *res)
		report(res)
	}

	if *out != "" {
		raw, err := json.MarshalIndent(&summary, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d scenario(s))\n", *out, len(summary.Scenarios))
	}

	failed := 0
	for _, sc := range summary.Scenarios {
		if !sc.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d scenario(s) violated their SLOs\n", failed, len(summary.Scenarios))
		if !*warnOnly {
			os.Exit(1)
		}
	}
}

// runScenario builds the system under test the spec describes, replays the
// scenario's trace against it and reduces the run to its ScenarioResult.
func runScenario(ctx context.Context, spec workload.Spec, speed float64, timeout time.Duration, storeKind, storeDir, metricsDir string) (*workload.ScenarioResult, error) {
	// Each scenario gets a fresh registry so its scrape measures exactly one
	// replay — the same isolation a per-run /metrics endpoint would give.
	reg := obs.NewRegistry()

	scale := spec.Scale
	if scale == 0 {
		scale = 1
	}
	taskWorkers := spec.TaskWorkers
	if taskWorkers == 0 {
		taskWorkers = 1
	}
	cfg := experiments.Config{Seed: spec.Seed, DataScale: scale, Workers: taskWorkers, Obs: reg}
	wb, err := experiments.BuildWorkbench(spec.Preset, spec.Eta, cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] platform ready: %s eta=%.2f setup=%s\n",
		spec.Name, spec.Preset, spec.Eta, wb.Platform.SetupTime.Round(time.Millisecond))

	detector, err := findDetector(wb, spec)
	if err != nil {
		return nil, err
	}
	var injector *fault.Injector
	f := spec.Fault
	if f.FailRate > 0 || f.PanicRate > 0 || f.SlowRate > 0 || f.CorruptRate > 0 {
		injector, err = fault.New(detector, fault.Config{
			Seed:        f.Seed,
			FailRate:    f.FailRate,
			PanicRate:   f.PanicRate,
			SlowRate:    f.SlowRate,
			Latency:     time.Duration(f.SlowLatencyMS * float64(time.Millisecond)),
			CorruptRate: f.CorruptRate,
		})
		if err != nil {
			return nil, err
		}
		detector = injector
		fmt.Printf("[%s] fault injection on: fail=%.2f panic=%.2f slow=%.2f corrupt=%.2f\n",
			spec.Name, f.FailRate, f.PanicRate, f.SlowRate, f.CorruptRate)
	}

	p := spec.Policy
	policy := lake.Policy{
		TaskTimeout:      time.Duration(p.TaskTimeoutSeconds * float64(time.Second)),
		MaxRetries:       p.Retries,
		RetryBase:        time.Duration(p.RetryBaseMS * float64(time.Millisecond)),
		RetrySeed:        spec.Seed,
		BreakerThreshold: p.BreakerThreshold,
		BreakerCooldown:  time.Duration(p.BreakerCooldownMS * float64(time.Millisecond)),
		Admission:        p.Admission(),
	}
	if p.Fallback {
		policy.Fallback = baselines.Default{Model: wb.Platform.Model}
	}
	svc, err := lake.NewServiceWithPolicy(detector, spec.Workers, policy)
	if err != nil {
		return nil, err
	}
	if spec.Brownout != nil {
		// The ENLD degradation ladder, built on the scenario's platform. Tier
		// 0 is replaced by the scenario's own method — fault-injector wrap
		// included — so the ladder degrades from the detector under test. The
		// injector wraps tier 0 only: the full-quality rung is the one under
		// chaos, and the cheaper rungs model the clean fast paths the brownout
		// degrades to.
		ladder := experiments.BrownoutLadder(wb)
		ladder[0].Detector = detector
		if err := svc.SetBrownout(ladder, spec.Brownout.Config(), func(from, to int) {
			fmt.Printf("[%s] brownout: tier %d (%s) -> %d (%s)\n",
				spec.Name, from, ladder[from].Name, to, ladder[to].Name)
		}); err != nil {
			return nil, err
		}
		fmt.Printf("[%s] brownout on: %d-tier ladder, queue watermarks %d/%d, p95 watermarks %.0f/%.0fms\n",
			spec.Name, len(ladder), spec.Brownout.QueueHigh, spec.Brownout.QueueLow,
			spec.Brownout.P95HighMS, spec.Brownout.P95LowMS)
	}
	svc.SetObs(reg)
	lake.ObserveBreaker(svc.Breaker(), reg)

	inv, err := openInventory(storeKind, storeDir, spec.Name, reg)
	if err != nil {
		return nil, err
	}
	if inv != nil {
		defer inv.Close()
		svc.SetInventory(inv)
		fmt.Printf("[%s] durable inventory: %s backend\n", spec.Name, inv.Stats().Backend)
	}

	trace, err := workload.GenTrace(spec)
	if err != nil {
		return nil, err
	}
	hash, err := trace.Hash()
	if err != nil {
		return nil, err
	}
	// The catalog draws from a fresh clean pool (Generate is deterministic
	// from the preset seed); per-entry noise comes from the spec's mix, not
	// from the platform's inventory noise.
	pool, err := wb.Spec.Generate()
	if err != nil {
		return nil, err
	}
	catalog, err := workload.Materialize(trace, pool, wb.Spec.Classes)
	if err != nil {
		return nil, err
	}
	fmt.Printf("[%s] trace %016x: %d events over %s across %d datasets, replay speed %.1fx\n",
		spec.Name, hash, len(trace.Events), trace.Duration.Round(time.Second), len(catalog), speed)

	runCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	played, err := workload.Play(runCtx, svc, trace, catalog, workload.PlayOptions{Speed: speed, Obs: reg})
	if err != nil {
		return nil, err
	}
	if injector != nil {
		st := injector.Stats()
		fmt.Printf("[%s] faults injected: calls=%d failures=%d panics=%d slowdowns=%d corruptions=%d\n",
			spec.Name, st.Calls, st.Failures, st.Panics, st.Slowdowns, st.Corruptions)
	}

	if metricsDir != "" {
		if err := writeMetrics(metricsDir, spec.Name, reg); err != nil {
			return nil, err
		}
	}
	return workload.Summarize(spec, played, reg)
}

// findDetector resolves the spec's method name against the full detector
// registry, built on the workbench's platform.
func findDetector(wb *experiments.Workbench, spec workload.Spec) (detect.Detector, error) {
	var known []string
	for _, d := range experiments.AllMethods(wb, spec.Seed+3) {
		if d.Name() == spec.Method {
			return d, nil
		}
		known = append(known, d.Name())
	}
	return nil, fmt.Errorf("unknown method %q (have %v)", spec.Method, known)
}

// openInventory opens per-scenario durable storage, mirroring lakesim's
// backends. Empty kind means durability off.
func openInventory(kind, dir, scenario string, reg *obs.Registry) (lake.Inventory, error) {
	switch kind {
	case "":
		return nil, nil
	case "memory":
		return lake.NewMemInventory(), nil
	case "seglog":
		if dir == "" {
			return nil, fmt.Errorf("-store seglog needs -store-dir")
		}
		lg, err := seglog.Open(filepath.Join(dir, scenario), seglog.Options{})
		if err != nil {
			return nil, err
		}
		lg.SetObs(reg)
		return lg, nil
	case "gob":
		if dir == "" {
			return nil, fmt.Errorf("-store gob needs -store-dir")
		}
		sub := filepath.Join(dir, scenario)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		return lake.OpenGobInventory(filepath.Join(sub, "inventory.gob"))
	default:
		return nil, fmt.Errorf("unknown -store backend %q (want seglog, gob or memory)", kind)
	}
}

// writeMetrics dumps the scenario's final exposition — the artifact CI
// uploads next to BENCH_load.json.
func writeMetrics(dir, scenario string, reg *obs.Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, scenario+".metrics.txt"))
	if err != nil {
		return err
	}
	defer f.Close()
	return reg.WritePrometheus(f)
}

// report prints one scenario's verdict for the run log.
func report(r *workload.ScenarioResult) {
	fmt.Printf("[%s] completed=%d/%d offered, %.2f req/s, task p50/p95/p99 = %.3f/%.3f/%.3f s, queued p99 = %.3f s\n",
		r.Name, r.Completed, r.Offered, r.ThroughputRPS,
		r.TaskSeconds.P50, r.TaskSeconds.P95, r.TaskSeconds.P99, r.QueuedSeconds.P99)
	fmt.Printf("[%s] outcomes: ok=%d degraded=%d dead_letter=%d shed=%d abandoned=%d retries=%d breaker_opens=%d max_send_lag=%.3fs\n",
		r.Name, r.Outcomes["ok"], r.Outcomes["degraded"], r.Outcomes["dead_letter"],
		r.Outcomes["shed"], r.Outcomes["abandoned"],
		r.Retries, r.BreakerOpens, r.MaxSendLagSeconds)
	if r.TierChanges > 0 || len(r.TierF1) > 0 {
		fmt.Printf("[%s] brownout: max_tier=%d tier_changes=%d", r.Name, r.BrownoutMaxTier, r.TierChanges)
		for _, tier := range []string{"full", "ann", "ann-f32", "fallback"} {
			if q, ok := r.TierF1[tier]; ok {
				fmt.Printf(" %s: F1=%.3f over %d", tier, q.MeanF1, q.Tasks)
			}
		}
		fmt.Println()
	}
	if r.Pass {
		fmt.Printf("[%s] SLO: PASS\n", r.Name)
		return
	}
	fmt.Printf("[%s] SLO: FAIL\n", r.Name)
	for _, v := range r.Violations {
		fmt.Printf("[%s]   violation: %s\n", r.Name, v)
	}
}
