// Command experiments regenerates the paper's tables and figures on the
// synthetic substrates of this repository.
//
// Usage:
//
//	experiments -run fig5                 # one experiment
//	experiments -run all                  # everything (minutes of CPU time)
//	experiments -run fig8 -scale 0.5      # smaller/faster workloads
//	experiments -run fig9 -etas 0.1,0.4   # custom noise-rate sweep
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// paper-versus-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"enld/internal/experiments"
	"enld/internal/obs"
	"enld/internal/prof"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment id ("+strings.Join(experiments.IDs(), ", ")+") or 'all'")
		seed       = flag.Uint64("seed", 1, "random seed")
		scale      = flag.Float64("scale", 1.0, "dataset size factor")
		shards     = flag.Int("shards", 0, "incremental dataset count (0 = paper count)")
		epochs     = flag.Int("epochs", 0, "platform training epochs (0 = default)")
		iters      = flag.Int("iters", 0, "ENLD iterations t (0 = paper default per dataset)")
		etas       = flag.String("etas", "", "comma-separated noise rates (default 0.1,0.2,0.3,0.4)")
		csvDir     = flag.String("csv", "", "also write results as CSV files into this directory")
		noise      = flag.String("noise", "pair", "label-noise model: pair (paper) or symmetric")
		md         = flag.Bool("md", false, "also print results as Markdown tables")
		workers    = flag.Int("workers", 1, "experiments run concurrently (0 = all cores); rendered output stays in experiment order")
		dataW      = flag.Int("data-workers", 1, "data-parallel workers inside each experiment (0 = all cores); results are identical at any count")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = flag.String("trace", "", "write a runtime/trace execution trace to this file")
		metricsOut = flag.String("metrics-out", "", "write final metrics in Prometheus text format to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		defer func() {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return
			}
			defer f.Close()
			if err := reg.WritePrometheus(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	cfg := experiments.Config{
		Seed:           *seed,
		DataScale:      *scale,
		Shards:         *shards,
		PlatformEpochs: *epochs,
		Iterations:     *iters,
		Noise:          experiments.NoiseKind(*noise),
		Workers:        *dataW,
		Obs:            reg,
		Out:            os.Stdout,
	}
	if *etas != "" {
		for _, part := range strings.Split(*etas, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad eta %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Etas = append(cfg.Etas, v)
		}
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	start := time.Now()
	results, err := experiments.RunConcurrent(ids, cfg, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for i, id := range ids {
		if err := experiments.ExportCSV(results[i], *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *md {
			if table := experiments.ExportMarkdown(results[i]); table != "" {
				fmt.Println(table)
			}
		}
	}
	fmt.Printf("[%d experiment(s) done in %s]\n", len(ids), time.Since(start).Round(time.Millisecond))
}
