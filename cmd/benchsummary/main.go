// Command benchsummary turns `go test -bench` output into a machine-readable
// BENCH_ci.json: one entry per benchmark with its ns/op, plus the
// parallel-scaling speedup pairs the CI perf gate tracks (workers=1 versus
// workers=4 for the training, detection and batch-inference hot paths).
//
// Usage:
//
//	go test -bench 'BenchmarkTrainEpoch|BenchmarkDetect|BenchmarkKNN|BenchmarkForward' \
//	    -benchtime 1x -run '^$' . | benchsummary -out BENCH_ci.json
//
// Within-run overhead ratios (see overheadPairs) are gated on every
// invocation, baseline or no baseline: the numerical-health watchdog has a
// 10% budget over a plain training epoch (warning above it, hard failure
// above the 25% noise-proof limit), and the observability registry has a 5%
// budget (hard failure above 15%).
//
// With -baseline it is also a soft perf-regression gate: every fresh entry is
// compared against the committed BENCH_ci.json. Any benchmark more than 10%
// slower gets a warn-only GitHub annotation (single-shot CI runs are noisy);
// a hot-path benchmark (see hotPaths) more than 25% slower fails the run,
// unless -warn-only downgrades that to an annotation too. The comparison is
// embedded in the output JSON under "comparisons".
//
// Speedups are a hardware property: on a single-core runner the workers=4
// variants measure pure pool overhead and the ratio sits near (or below) 1.
// The committed BENCH_ci.json is the latest recorded run; CI regenerates it
// per PR and uploads the result as an artifact.
//
// With -load the command instead gates a loadgen BENCH_load.json: every
// scenario must pass its declared SLOs, and with -load-baseline each load
// metric is compared against the committed artifact with the same
// warn/hard-fail tiering (wider tiers — wall-clock load numbers are noisier
// than ns/op). The SLO table is appended to $GITHUB_STEP_SUMMARY when CI
// provides one. See load.go.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkTrainEpoch/workers=4".
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Speedup is the ratio of a sequential baseline over its parallel variant.
type Speedup struct {
	Name     string `json:"name"`
	Base     string `json:"base"`
	Parallel string `json:"parallel"`
	// Speedup is base ns/op divided by parallel ns/op: >1 means the
	// parallel variant is faster.
	Speedup float64 `json:"speedup"`
}

// Comparison is one fresh-versus-baseline benchmark pair.
type Comparison struct {
	Name       string  `json:"name"`
	BaselineNs float64 `json:"baseline_ns_per_op"`
	CurrentNs  float64 `json:"current_ns_per_op"`
	// Ratio is current over baseline ns/op: >1 means slower than baseline.
	Ratio   float64 `json:"ratio"`
	HotPath bool    `json:"hot_path,omitempty"`
}

// Overhead is the within-run cost ratio of a feature-enabled benchmark
// variant over its plain base. Unlike Comparisons it needs no committed
// baseline: both ends come from the same run, so the gate is immune to
// machine-to-machine drift.
type Overhead struct {
	Name    string `json:"name"`
	Base    string `json:"base"`
	Variant string `json:"variant"`
	// Ratio is variant over base ns/op: >1 means the feature costs time.
	Ratio float64 `json:"ratio"`
	// Limit is the design budget; the gate annotates a warning above it
	// (single-shot CI runs carry several percent of noise).
	Limit float64 `json:"limit"`
	// HardLimit is the ratio the gate fails at: far enough above Limit that
	// only a real regression, not run-to-run noise, can cross it.
	HardLimit float64 `json:"hard_limit"`
}

// Summary is the BENCH_ci.json document.
type Summary struct {
	// GoMaxProcs records the parallelism of the machine that produced the
	// numbers — speedups are meaningless without it.
	GoMaxProcs int       `json:"go_maxprocs"`
	GoVersion  string    `json:"go_version"`
	Benchmarks []Entry   `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups"`
	// Overheads holds the within-run feature-cost ratios the gate enforces
	// (see overheadPairs).
	Overheads []Overhead `json:"overheads,omitempty"`
	// Comparisons holds the fresh-versus-baseline ratios when the run was
	// gated with -baseline.
	Comparisons []Comparison `json:"comparisons,omitempty"`
}

// speedupPairs lists the (base, parallel) benchmark pairs the CI perf gate
// tracks.
var speedupPairs = [][3]string{
	{"train-epoch", "BenchmarkTrainEpoch/workers=1", "BenchmarkTrainEpoch/workers=4"},
	{"detect-enld", "BenchmarkDetect/enld-workers=1", "BenchmarkDetect/enld-workers=4"},
	{"forward-batch", "BenchmarkForward/batch-workers=1", "BenchmarkForward/batch-workers=4"},
	// Batching speedup (not a parallel pair): one blocked-GEMM forward pass
	// over a chunk versus the same samples through the per-sample path.
	{"gemm-batching", "BenchmarkForwardBatch/persample", "BenchmarkForwardBatch/batched"},
	// Row-parallel GEMM: the same 128³ product with output rows fanned over
	// a 4-worker pool (bit-identical results; speedup needs real cores).
	{"gemm-parallel", "BenchmarkGemm/par/workers=1/n=128", "BenchmarkGemm/par/workers=4/n=128"},
	// Opt-in fast paths over the float64-exact default (not parallel pairs):
	// float32 ranking forwards, the approximate IVF k-NN index, and both.
	{"detect-f32", "BenchmarkDetect/enld", "BenchmarkDetect/enld-f32"},
	{"detect-ann", "BenchmarkDetect/enld", "BenchmarkDetect/enld-ann"},
	{"detect-ann-f32", "BenchmarkDetect/enld", "BenchmarkDetect/enld-ann-f32"},
}

// overheadPairs lists the (name, base, variant, limit) tuples of the
// within-run overhead gate. The watchdog entry enforces the numerical-health
// design budget: health checks at the default cadence must cost less than
// 10% of a plain training epoch.
var overheadPairs = []Overhead{
	{
		Name: "watchdog-overhead",
		Base: "BenchmarkTrainEpoch/workers=1", Variant: "BenchmarkTrainEpoch/watchdog",
		Limit: 1.10, HardLimit: failRatio,
	},
	{
		// Observability budget: recording per-batch durations and losses into
		// lock-free histograms must stay within 5% of an unobserved epoch
		// (hard failure at 15%, beyond single-shot noise).
		Name: "obs-overhead",
		Base: "BenchmarkTrainEpoch/workers=1", Variant: "BenchmarkTrainEpoch/obs",
		Limit: 1.05, HardLimit: 1.15,
	},
}

// hotPaths lists the benchmarks the regression gate hard-fails on: the
// repeated-inference and training kernels every detector sits on. Everything
// else only ever warns — full-pipeline benchmarks run one iteration in CI and
// are too noisy to gate.
var hotPaths = map[string]bool{
	"BenchmarkDetect/enld-workers=1":   true,
	"BenchmarkTrainEpoch/workers=1":    true,
	"BenchmarkForward/batch-workers=1": true,
	"BenchmarkForwardBatch/batched":    true,
	// New kernels of the perf PR: the row-parallel GEMM's sequential leg and
	// the fully stacked fast-path detection run.
	"BenchmarkGemm/par/workers=1/n=128": true,
	"BenchmarkDetect/enld-ann-f32":      true,
	// Storage-engine budgets: append throughput (the nosync variant — the
	// fsync one measures the disk, not the code) and recovery time of a
	// 10k-dataset history.
	"BenchmarkSeglogAppend/nosync": true,
	"BenchmarkSeglogRecovery10k":   true,
}

const (
	// warnRatio annotates any benchmark this much slower than baseline.
	warnRatio = 1.10
	// failRatio fails the gate for hot-path benchmarks this much slower.
	failRatio = 1.25
)

// compare pairs fresh entries with baseline entries by name, in fresh-entry
// order. Benchmarks absent from the baseline are skipped: a new benchmark has
// nothing to regress against.
func compare(fresh []Entry, baseline Summary) []Comparison {
	base := make(map[string]float64, len(baseline.Benchmarks))
	for _, e := range baseline.Benchmarks {
		base[e.Name] = e.NsPerOp
	}
	var out []Comparison
	for _, e := range fresh {
		b, ok := base[e.Name]
		if !ok || b == 0 {
			continue
		}
		out = append(out, Comparison{
			Name:       e.Name,
			BaselineNs: b,
			CurrentNs:  e.NsPerOp,
			Ratio:      e.NsPerOp / b,
			HotPath:    hotPaths[e.Name],
		})
	}
	return out
}

// gate prints GitHub annotations for regressed comparisons and reports
// whether any hot-path benchmark crossed the hard-fail threshold.
func gate(w io.Writer, comparisons []Comparison) (failed bool) {
	for _, c := range comparisons {
		switch {
		case c.HotPath && c.Ratio > failRatio:
			fmt.Fprintf(w, "::error::%s regressed %.1f%% vs baseline (%.0f -> %.0f ns/op), above the %.0f%% hot-path limit\n",
				c.Name, (c.Ratio-1)*100, c.BaselineNs, c.CurrentNs, (failRatio-1)*100)
			failed = true
		case c.Ratio > warnRatio:
			fmt.Fprintf(w, "::warning::%s is %.1f%% slower than baseline (%.0f -> %.0f ns/op); may be noise\n",
				c.Name, (c.Ratio-1)*100, c.BaselineNs, c.CurrentNs)
		}
	}
	return failed
}

// gateOverheads prints annotations for overheads above their budget and
// reports whether any crossed the hard limit. Ratios within budget stay
// silent; between Limit and HardLimit is a warning (single-shot CI runs
// carry noise of several percent either way).
func gateOverheads(w io.Writer, overheads []Overhead) (failed bool) {
	for _, o := range overheads {
		switch {
		case o.Ratio > o.HardLimit:
			fmt.Fprintf(w, "::error::%s: %s costs %.1f%% over %s, above the %.0f%% hard limit\n",
				o.Name, o.Variant, (o.Ratio-1)*100, o.Base, (o.HardLimit-1)*100)
			failed = true
		case o.Ratio > o.Limit:
			fmt.Fprintf(w, "::warning::%s: %s costs %.1f%% over %s, above the %.0f%% budget; may be noise\n",
				o.Name, o.Variant, (o.Ratio-1)*100, o.Base, (o.Limit-1)*100)
		}
	}
	return failed
}

// benchLine matches one `go test -bench` result line: name, iteration count,
// ns/op. Extra metrics (B/op, allocs/op) are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cpuSuffix matches the trailing -GOMAXPROCS marker go test appends to each
// benchmark name (omitted entirely when GOMAXPROCS is 1).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark output and returns the entries in input order. The
// -GOMAXPROCS name suffix is stripped only when every line carries the same
// one: go appends it uniformly per run, so a non-uniform trailing -N (as in
// the cl-1/cl-2 method names on a single-core run, where go omits the
// suffix) is part of the benchmark's own name.
func parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsummary: bad ns/op in %q: %w", sc.Text(), err)
		}
		out = append(out, Entry{Name: m[1], NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	uniform := ""
	for i, e := range out {
		suffix := cpuSuffix.FindString(e.Name)
		if i == 0 {
			uniform = suffix
		}
		if suffix == "" || suffix != uniform {
			uniform = ""
			break
		}
	}
	if uniform != "" {
		for i := range out {
			out[i].Name = strings.TrimSuffix(out[i].Name, uniform)
		}
	}
	return out, nil
}

// summarize assembles the document, computing every tracked speedup whose
// both ends are present.
func summarize(entries []Entry) Summary {
	byName := make(map[string]float64, len(entries))
	for _, e := range entries {
		byName[e.Name] = e.NsPerOp
	}
	s := Summary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchmarks: entries,
	}
	for _, pair := range speedupPairs {
		base, okB := byName[pair[1]]
		par, okP := byName[pair[2]]
		if !okB || !okP || par == 0 {
			continue
		}
		s.Speedups = append(s.Speedups, Speedup{
			Name: pair[0], Base: pair[1], Parallel: pair[2], Speedup: base / par,
		})
	}
	for _, o := range overheadPairs {
		base, okB := byName[o.Base]
		variant, okV := byName[o.Variant]
		if !okB || !okV || base == 0 {
			continue
		}
		o.Ratio = variant / base
		s.Overheads = append(s.Overheads, o)
	}
	return s
}

func main() {
	var (
		in       = flag.String("in", "", "benchmark output file (default: stdin)")
		out      = flag.String("out", "BENCH_ci.json", "JSON summary destination")
		baseline = flag.String("baseline", "", "committed BENCH_ci.json to gate regressions against")
		warnOnly = flag.Bool("warn-only", false, "downgrade hot-path gate failures to warnings")

		// Load mode (see load.go): gate a loadgen BENCH_load.json on its SLO
		// verdicts and against a committed baseline, and render the SLO table
		// into $GITHUB_STEP_SUMMARY when CI provides one.
		load         = flag.String("load", "", "fresh BENCH_load.json to gate (enables load mode; benchmark input is not read)")
		loadBaseline = flag.String("load-baseline", "", "committed BENCH_load.json to compare load metrics against")
		loadOut      = flag.String("load-out", "", "write the gated load summary (with comparisons) to this path")
	)
	flag.Parse()

	if *load != "" {
		runLoadMode(*load, *loadBaseline, *loadOut, *warnOnly)
		return
	}
	if *loadBaseline != "" {
		fmt.Fprintln(os.Stderr, "benchsummary: -load-baseline needs -load")
		os.Exit(1)
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	entries, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines found")
		os.Exit(1)
	}
	summary := summarize(entries)
	gateFailed := gateOverheads(os.Stdout, summary.Overheads)
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		var prior Summary
		if err := json.Unmarshal(raw, &prior); err != nil {
			fmt.Fprintf(os.Stderr, "benchsummary: parsing baseline %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		summary.Comparisons = compare(summary.Benchmarks, prior)
		gateFailed = gate(os.Stdout, summary.Comparisons) || gateFailed
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d benchmarks", *out, len(summary.Benchmarks))
	var parts []string
	for _, sp := range summary.Speedups {
		parts = append(parts, fmt.Sprintf("%s %.2fx", sp.Name, sp.Speedup))
	}
	if len(parts) > 0 {
		fmt.Printf(", speedups: %s", strings.Join(parts, ", "))
	}
	parts = parts[:0]
	for _, o := range summary.Overheads {
		parts = append(parts, fmt.Sprintf("%s %.2fx (limit %.2fx)", o.Name, o.Ratio, o.Limit))
	}
	if len(parts) > 0 {
		fmt.Printf(", overheads: %s", strings.Join(parts, ", "))
	}
	fmt.Println()
	if gateFailed {
		if *warnOnly {
			fmt.Println("::warning::hot-path regression gate failed but -warn-only is set")
			return
		}
		os.Exit(1)
	}
}
