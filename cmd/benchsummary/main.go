// Command benchsummary turns `go test -bench` output into a machine-readable
// BENCH_ci.json: one entry per benchmark with its ns/op, plus the
// parallel-scaling speedup pairs the CI perf gate tracks (workers=1 versus
// workers=4 for the training, detection and batch-inference hot paths).
//
// Usage:
//
//	go test -bench 'BenchmarkTrainEpoch|BenchmarkDetect|BenchmarkKNN|BenchmarkForward' \
//	    -benchtime 1x -run '^$' . | benchsummary -out BENCH_ci.json
//
// Speedups are a hardware property: on a single-core runner the workers=4
// variants measure pure pool overhead and the ratio sits near (or below) 1.
// The committed BENCH_ci.json is the latest recorded run; CI regenerates it
// per PR and uploads the result as an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkTrainEpoch/workers=4".
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Speedup is the ratio of a sequential baseline over its parallel variant.
type Speedup struct {
	Name     string `json:"name"`
	Base     string `json:"base"`
	Parallel string `json:"parallel"`
	// Speedup is base ns/op divided by parallel ns/op: >1 means the
	// parallel variant is faster.
	Speedup float64 `json:"speedup"`
}

// Summary is the BENCH_ci.json document.
type Summary struct {
	// GoMaxProcs records the parallelism of the machine that produced the
	// numbers — speedups are meaningless without it.
	GoMaxProcs int       `json:"go_maxprocs"`
	GoVersion  string    `json:"go_version"`
	Benchmarks []Entry   `json:"benchmarks"`
	Speedups   []Speedup `json:"speedups"`
}

// speedupPairs lists the (base, parallel) benchmark pairs the CI perf gate
// tracks.
var speedupPairs = [][3]string{
	{"train-epoch", "BenchmarkTrainEpoch/workers=1", "BenchmarkTrainEpoch/workers=4"},
	{"detect-enld", "BenchmarkDetect/enld-workers=1", "BenchmarkDetect/enld-workers=4"},
	{"forward-batch", "BenchmarkForward/batch-workers=1", "BenchmarkForward/batch-workers=4"},
}

// benchLine matches one `go test -bench` result line: name, iteration count,
// ns/op. Extra metrics (B/op, allocs/op) are ignored.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cpuSuffix matches the trailing -GOMAXPROCS marker go test appends to each
// benchmark name (omitted entirely when GOMAXPROCS is 1).
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parse reads benchmark output and returns the entries in input order. The
// -GOMAXPROCS name suffix is stripped only when every line carries the same
// one: go appends it uniformly per run, so a non-uniform trailing -N (as in
// the cl-1/cl-2 method names on a single-core run, where go omits the
// suffix) is part of the benchmark's own name.
func parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsummary: bad ns/op in %q: %w", sc.Text(), err)
		}
		out = append(out, Entry{Name: m[1], NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	uniform := ""
	for i, e := range out {
		suffix := cpuSuffix.FindString(e.Name)
		if i == 0 {
			uniform = suffix
		}
		if suffix == "" || suffix != uniform {
			uniform = ""
			break
		}
	}
	if uniform != "" {
		for i := range out {
			out[i].Name = strings.TrimSuffix(out[i].Name, uniform)
		}
	}
	return out, nil
}

// summarize assembles the document, computing every tracked speedup whose
// both ends are present.
func summarize(entries []Entry) Summary {
	byName := make(map[string]float64, len(entries))
	for _, e := range entries {
		byName[e.Name] = e.NsPerOp
	}
	s := Summary{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchmarks: entries,
	}
	for _, pair := range speedupPairs {
		base, okB := byName[pair[1]]
		par, okP := byName[pair[2]]
		if !okB || !okP || par == 0 {
			continue
		}
		s.Speedups = append(s.Speedups, Speedup{
			Name: pair[0], Base: pair[1], Parallel: pair[2], Speedup: base / par,
		})
	}
	return s
}

func main() {
	var (
		in  = flag.String("in", "", "benchmark output file (default: stdin)")
		out = flag.String("out", "BENCH_ci.json", "JSON summary destination")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	entries, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines found")
		os.Exit(1)
	}
	summary := summarize(entries)
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d benchmarks", *out, len(summary.Benchmarks))
	var parts []string
	for _, sp := range summary.Speedups {
		parts = append(parts, fmt.Sprintf("%s %.2fx", sp.Name, sp.Speedup))
	}
	if len(parts) > 0 {
		fmt.Printf(", speedups: %s", strings.Join(parts, ", "))
	}
	fmt.Println()
}
