package main

import (
	"strings"
	"testing"

	"enld/internal/workload"
)

func loadSummaryFixture(pass bool) *workload.LoadSummary {
	return &workload.LoadSummary{
		Scenarios: []workload.ScenarioResult{{
			Name:          "ci-short",
			Offered:       100,
			Completed:     100,
			ThroughputRPS: 6,
			Outcomes:      map[string]int{"ok": 100},
			TaskSeconds:   workload.LatencySummary{P50: 0.020, P95: 0.080, P99: 0.100, Count: 100},
			QueuedSeconds: workload.LatencySummary{P50: 0.001, P95: 0.002, P99: 0.004, Count: 100},
			Pass:          pass,
		}},
	}
}

func TestCompareLoad(t *testing.T) {
	base := loadSummaryFixture(true)
	cur := loadSummaryFixture(true)
	cur.Scenarios[0].TaskSeconds.P99 = 0.200 // 2x the baseline
	cur.Scenarios[0].ThroughputRPS = 3       // half the baseline

	comps := compareLoad(cur, base)
	byMetric := map[string]LoadComparison{}
	for _, c := range comps {
		byMetric[c.Metric] = c
	}
	if c := byMetric["task_p99_seconds"]; c.Ratio != 2 || !c.Gated {
		t.Errorf("task_p99 comparison = %+v, want ratio 2, gated", c)
	}
	if c := byMetric["throughput_rps"]; c.Ratio != 2 || !c.Gated {
		t.Errorf("throughput comparison = %+v, want ratio 2 (baseline/current), gated", c)
	}
	// Queued p99 sits under the noise floor on both sides: recorded, never
	// gated.
	if c := byMetric["queued_p99_seconds"]; c.Gated {
		t.Errorf("sub-floor queued_p99 comparison gated: %+v", c)
	}

	// A scenario missing from the baseline produces no comparisons.
	cur.Scenarios[0].Name = "brand-new"
	if got := compareLoad(cur, base); len(got) != 0 {
		t.Errorf("new scenario compared against nothing: %+v", got)
	}
}

// TestCompareLoadSaturated: a scenario driven past its knee (shed tasks or
// brownout moves on either side) is never ratio-gated — its percentiles
// measure the controller's tier mix, not code speed — but the comparisons
// are still recorded for the table.
func TestCompareLoadSaturated(t *testing.T) {
	base := loadSummaryFixture(true)
	cur := loadSummaryFixture(true)
	cur.Scenarios[0].TaskSeconds.P95 = 0.300 // 3.75x: would hard-fail if gated
	cur.Scenarios[0].Outcomes["shed"] = 10

	comps := compareLoad(cur, base)
	if len(comps) == 0 {
		t.Fatal("saturated scenario produced no comparisons")
	}
	for _, c := range comps {
		if c.Gated {
			t.Errorf("saturated scenario comparison gated: %+v", c)
		}
	}
	if gateLoad(&strings.Builder{}, cur, comps) {
		t.Error("passing saturated scenario failed the gate on a ratio")
	}

	// Brownout movement alone (no shedding) also marks saturation, and the
	// baseline side counts too.
	cur.Scenarios[0].Outcomes = map[string]int{"ok": 100}
	base.Scenarios[0].TierChanges = 4
	for _, c := range compareLoad(cur, base) {
		if c.Gated {
			t.Errorf("comparison gated despite baseline tier changes: %+v", c)
		}
	}
}

func TestGateLoad(t *testing.T) {
	// All passing, no comparisons: silence.
	var out strings.Builder
	if gateLoad(&out, loadSummaryFixture(true), nil) {
		t.Error("clean summary failed the gate")
	}
	if out.Len() != 0 {
		t.Errorf("clean summary produced output: %q", out.String())
	}

	// An SLO failure is always a hard failure.
	out.Reset()
	failing := loadSummaryFixture(false)
	failing.Scenarios[0].Violations = []string{"task p99 = 3.000s, above the 2.000s limit"}
	if !gateLoad(&out, failing, nil) {
		t.Error("SLO-violating summary passed the gate")
	}
	if !strings.Contains(out.String(), "::error::") || !strings.Contains(out.String(), "task p99") {
		t.Errorf("gate output %q lacks the SLO error annotation", out.String())
	}

	// Ratio tiers: warn between loadWarnRatio and loadFailRatio, error past.
	out.Reset()
	warn := []LoadComparison{{Scenario: "s", Metric: "task_p99_seconds", Baseline: 0.1, Current: 0.12, Ratio: 1.2, Gated: true}}
	if gateLoad(&out, loadSummaryFixture(true), warn) {
		t.Error("warn-tier regression hard-failed")
	}
	if !strings.Contains(out.String(), "::warning::") {
		t.Errorf("warn-tier output %q lacks a warning", out.String())
	}
	out.Reset()
	hard := []LoadComparison{{Scenario: "s", Metric: "task_p99_seconds", Baseline: 0.1, Current: 0.2, Ratio: 2, Gated: true}}
	if !gateLoad(&out, loadSummaryFixture(true), hard) {
		t.Error("hard-tier regression passed")
	}
	// An ungated (sub-floor) comparison never fires, whatever its ratio.
	out.Reset()
	subfloor := []LoadComparison{{Scenario: "s", Metric: "queued_p99_seconds", Baseline: 0.001, Current: 0.005, Ratio: 5, Gated: false}}
	if gateLoad(&out, loadSummaryFixture(true), subfloor) || out.Len() != 0 {
		t.Errorf("sub-floor comparison fired: %q", out.String())
	}
}

func TestWriteLoadTable(t *testing.T) {
	var out strings.Builder
	cur := loadSummaryFixture(false)
	cur.Scenarios[0].Violations = []string{"throughput = 1.00 req/s, below the 3.00 req/s floor"}
	comps := []LoadComparison{{Scenario: "ci-short", Metric: "task_p99_seconds", Baseline: 0.1, Current: 0.2, Ratio: 2, Gated: true}}
	writeLoadTable(&out, cur, comps)
	text := out.String()
	for _, want := range []string{
		"| Scenario |", "| ci-short |", "FAIL", "throughput = 1.00 req/s",
		"| Metric |", "task_p99_seconds", "2.00x",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table lacks %q:\n%s", want, text)
		}
	}
}
