package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: enld
BenchmarkTrainEpoch/workers=1-8         	       1	200000000 ns/op
BenchmarkTrainEpoch/workers=4-8         	       1	100000000 ns/op
BenchmarkDetect/enld-8                  	       1	400000000 ns/op
BenchmarkDetect/enld-workers=1-8        	       1	300000000 ns/op
BenchmarkDetect/enld-workers=4-8        	       1	150000000 ns/op
BenchmarkForward/single-8               	 1000000	      1234 ns/op
BenchmarkKNN/into/n=1024-8              	  500000	      2500 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	enld	12.345s
`

// singleCoreOutput is GOMAXPROCS=1 output: go omits the -N suffix, so the
// trailing digits of cl-1/cl-2 are method names and must survive parsing.
const singleCoreOutput = `BenchmarkDetect/cl-1 	       1	300000000 ns/op
BenchmarkDetect/cl-2 	       1	310000000 ns/op
BenchmarkTrainEpoch/workers=1 	       1	200000000 ns/op
`

func TestParse(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("%d entries: %+v", len(entries), entries)
	}
	if entries[0].Name != "BenchmarkTrainEpoch/workers=1" || entries[0].NsPerOp != 2e8 {
		t.Fatalf("first entry %+v", entries[0])
	}
	// The -GOMAXPROCS suffix is stripped, B/op columns are ignored.
	if entries[6].Name != "BenchmarkKNN/into/n=1024" || entries[6].NsPerOp != 2500 {
		t.Fatalf("last entry %+v", entries[6])
	}
}

func TestParseSingleCoreKeepsNames(t *testing.T) {
	entries, err := parse(strings.NewReader(singleCoreOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkDetect/cl-1", "BenchmarkDetect/cl-2", "BenchmarkTrainEpoch/workers=1"}
	if len(entries) != len(want) {
		t.Fatalf("%d entries", len(entries))
	}
	for i, name := range want {
		if entries[i].Name != name {
			t.Errorf("entry %d named %q, want %q", i, entries[i].Name, name)
		}
	}
}

func TestSummarizeSpeedups(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(entries)
	if s.GoMaxProcs < 1 || s.GoVersion == "" {
		t.Fatalf("environment not recorded: %+v", s)
	}
	want := map[string]float64{"train-epoch": 2.0, "detect-enld": 2.0}
	found := map[string]float64{}
	for _, sp := range s.Speedups {
		found[sp.Name] = sp.Speedup
	}
	for name, ratio := range want {
		if found[name] != ratio {
			t.Errorf("speedup %s = %v, want %v", name, found[name], ratio)
		}
	}
	// forward-batch has no workers=1/4 pair in the sample; it must be absent
	// rather than zero or NaN.
	if _, ok := found["forward-batch"]; ok {
		t.Error("forward-batch speedup computed from missing data")
	}
}
