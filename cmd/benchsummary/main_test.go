package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: enld
BenchmarkTrainEpoch/workers=1-8         	       1	200000000 ns/op
BenchmarkTrainEpoch/workers=4-8         	       1	100000000 ns/op
BenchmarkDetect/enld-8                  	       1	400000000 ns/op
BenchmarkDetect/enld-workers=1-8        	       1	300000000 ns/op
BenchmarkDetect/enld-workers=4-8        	       1	150000000 ns/op
BenchmarkForward/single-8               	 1000000	      1234 ns/op
BenchmarkKNN/into/n=1024-8              	  500000	      2500 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	enld	12.345s
`

// singleCoreOutput is GOMAXPROCS=1 output: go omits the -N suffix, so the
// trailing digits of cl-1/cl-2 are method names and must survive parsing.
const singleCoreOutput = `BenchmarkDetect/cl-1 	       1	300000000 ns/op
BenchmarkDetect/cl-2 	       1	310000000 ns/op
BenchmarkTrainEpoch/workers=1 	       1	200000000 ns/op
`

func TestParse(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("%d entries: %+v", len(entries), entries)
	}
	if entries[0].Name != "BenchmarkTrainEpoch/workers=1" || entries[0].NsPerOp != 2e8 {
		t.Fatalf("first entry %+v", entries[0])
	}
	// The -GOMAXPROCS suffix is stripped, B/op columns are ignored.
	if entries[6].Name != "BenchmarkKNN/into/n=1024" || entries[6].NsPerOp != 2500 {
		t.Fatalf("last entry %+v", entries[6])
	}
}

func TestParseSingleCoreKeepsNames(t *testing.T) {
	entries, err := parse(strings.NewReader(singleCoreOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BenchmarkDetect/cl-1", "BenchmarkDetect/cl-2", "BenchmarkTrainEpoch/workers=1"}
	if len(entries) != len(want) {
		t.Fatalf("%d entries", len(entries))
	}
	for i, name := range want {
		if entries[i].Name != name {
			t.Errorf("entry %d named %q, want %q", i, entries[i].Name, name)
		}
	}
}

func TestSummarizeSpeedups(t *testing.T) {
	entries, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(entries)
	if s.GoMaxProcs < 1 || s.GoVersion == "" {
		t.Fatalf("environment not recorded: %+v", s)
	}
	want := map[string]float64{"train-epoch": 2.0, "detect-enld": 2.0}
	found := map[string]float64{}
	for _, sp := range s.Speedups {
		found[sp.Name] = sp.Speedup
	}
	for name, ratio := range want {
		if found[name] != ratio {
			t.Errorf("speedup %s = %v, want %v", name, found[name], ratio)
		}
	}
	// forward-batch has no workers=1/4 pair in the sample; it must be absent
	// rather than zero or NaN.
	if _, ok := found["forward-batch"]; ok {
		t.Error("forward-batch speedup computed from missing data")
	}
}

func TestCompareAgainstBaseline(t *testing.T) {
	baseline := Summary{Benchmarks: []Entry{
		{Name: "BenchmarkDetect/enld-workers=1", NsPerOp: 100},
		{Name: "BenchmarkForward/single", NsPerOp: 50},
	}}
	fresh := []Entry{
		{Name: "BenchmarkDetect/enld-workers=1", NsPerOp: 120},
		{Name: "BenchmarkForward/single", NsPerOp: 50},
		{Name: "BenchmarkGemm/nn/n=64", NsPerOp: 10}, // new: no baseline
	}
	cmp := compare(fresh, baseline)
	if len(cmp) != 2 {
		t.Fatalf("%d comparisons: %+v", len(cmp), cmp)
	}
	if cmp[0].Ratio != 1.2 || !cmp[0].HotPath {
		t.Fatalf("enld comparison %+v", cmp[0])
	}
	if cmp[1].Ratio != 1.0 || cmp[1].HotPath {
		t.Fatalf("forward comparison %+v", cmp[1])
	}
}

func TestGateThresholds(t *testing.T) {
	var buf strings.Builder
	// 20% hot-path regression: warn-only annotation, gate passes.
	if gate(&buf, []Comparison{{Name: "BenchmarkDetect/enld-workers=1", BaselineNs: 100, CurrentNs: 120, Ratio: 1.2, HotPath: true}}) {
		t.Fatal("gate failed below the hard threshold")
	}
	if !strings.Contains(buf.String(), "::warning::") {
		t.Fatalf("no warning annotation: %q", buf.String())
	}
	// 30% hot-path regression: hard failure with an error annotation.
	buf.Reset()
	if !gate(&buf, []Comparison{{Name: "BenchmarkDetect/enld-workers=1", BaselineNs: 100, CurrentNs: 130, Ratio: 1.3, HotPath: true}}) {
		t.Fatal("gate passed above the hard threshold")
	}
	if !strings.Contains(buf.String(), "::error::") {
		t.Fatalf("no error annotation: %q", buf.String())
	}
	// 30% regression on a non-hot-path benchmark: warning only.
	buf.Reset()
	if gate(&buf, []Comparison{{Name: "BenchmarkFig8", BaselineNs: 100, CurrentNs: 130, Ratio: 1.3}}) {
		t.Fatal("gate failed on a non-hot-path benchmark")
	}
	if !strings.Contains(buf.String(), "::warning::") {
		t.Fatalf("no warning annotation: %q", buf.String())
	}
	// Within noise: silent.
	buf.Reset()
	if gate(&buf, []Comparison{{Name: "BenchmarkForward/single", BaselineNs: 100, CurrentNs: 105, Ratio: 1.05}}) || buf.Len() != 0 {
		t.Fatalf("unexpected output for in-noise comparison: %q", buf.String())
	}
}

const watchdogOutput = `BenchmarkTrainEpoch/workers=1-8 	       1	200000000 ns/op
BenchmarkTrainEpoch/workers=4-8 	       1	100000000 ns/op
BenchmarkTrainEpoch/watchdog-8  	       1	208000000 ns/op
`

func TestSummarizeOverheads(t *testing.T) {
	entries, err := parse(strings.NewReader(watchdogOutput))
	if err != nil {
		t.Fatal(err)
	}
	s := summarize(entries)
	if len(s.Overheads) != 1 {
		t.Fatalf("%d overheads: %+v", len(s.Overheads), s.Overheads)
	}
	o := s.Overheads[0]
	if o.Name != "watchdog-overhead" || o.Ratio != 1.04 || o.Limit != 1.10 || o.HardLimit != 1.25 {
		t.Fatalf("overhead %+v", o)
	}

	// Without the watchdog variant the overhead must be absent, not zero.
	s = summarize(entries[:2])
	if len(s.Overheads) != 0 {
		t.Fatalf("overhead computed from missing data: %+v", s.Overheads)
	}
}

func TestGateOverheads(t *testing.T) {
	var buf strings.Builder
	// Within budget: silent pass.
	in := []Overhead{{Name: "watchdog-overhead", Base: "b", Variant: "v", Ratio: 1.04, Limit: 1.10, HardLimit: 1.25}}
	if gateOverheads(&buf, in) || buf.Len() != 0 {
		t.Fatalf("in-budget overhead failed or annotated: %q", buf.String())
	}
	// Over budget but within the hard limit: warning, gate passes.
	in[0].Ratio = 1.2
	if gateOverheads(&buf, in) {
		t.Fatal("gate failed below the hard limit")
	}
	if !strings.Contains(buf.String(), "::warning::") {
		t.Fatalf("no warning annotation: %q", buf.String())
	}
	// Over the hard limit: failure with an error annotation.
	buf.Reset()
	in[0].Ratio = 1.3
	if !gateOverheads(&buf, in) {
		t.Fatal("over-hard-limit overhead passed")
	}
	if !strings.Contains(buf.String(), "::error::") {
		t.Fatalf("no error annotation: %q", buf.String())
	}
}
