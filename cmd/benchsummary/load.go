package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"enld/internal/workload"
)

// Load-gate thresholds. Load latencies are wall-clock measurements of a
// multi-second replay on shared CI runners, so the tiers are wider than the
// ns/op benchmark gate: cross-machine drift of tens of percent is ordinary,
// a regression past half again the baseline is not.
const (
	loadWarnRatio = 1.10
	loadFailRatio = 1.50
	// loadLatencyFloorSeconds: percentile pairs where both sides sit under
	// this are too small for a ratio to mean anything (a 2ms → 3ms shift is
	// scheduler jitter, not a regression); they are recorded but never gated.
	loadLatencyFloorSeconds = 0.010
)

// LoadComparison is one load metric measured against the committed
// BENCH_load.json baseline. Ratio > 1 always means worse (latency ratios are
// current/baseline, the throughput ratio is baseline/current).
type LoadComparison struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Ratio    float64 `json:"ratio"`
	// Gated marks comparisons big enough to enforce; sub-floor latency
	// pairs are informational only.
	Gated bool `json:"gated"`
}

// loadDoc is BENCH_load.json plus the comparisons stamped in by this gate.
type loadDoc struct {
	workload.LoadSummary
	Comparisons []LoadComparison `json:"comparisons,omitempty"`
}

func readLoadSummary(path string) (*workload.LoadSummary, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s workload.LoadSummary
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &s, nil
}

// saturatedScenario reports whether a run went past its knee: once tasks
// were shed or the brownout controller moved, latency percentiles and
// throughput measure the controller's timing-dependent tier mix and the shed
// fraction, not code speed — on the same machine, back-to-back saturation
// runs swing task p95 by 3x as the full/fallback population boundary shifts.
// Such scenarios are held to their absolute SLOs only (always a hard gate);
// ratio comparisons are recorded but never enforced.
func saturatedScenario(r *workload.ScenarioResult) bool {
	return r.Outcomes["shed"] > 0 || r.TierChanges > 0
}

// compareLoad pairs current scenarios with baseline scenarios by name.
// Scenarios absent from the baseline are skipped — a new scenario has
// nothing to regress against.
func compareLoad(cur, base *workload.LoadSummary) []LoadComparison {
	var out []LoadComparison
	for i := range cur.Scenarios {
		c := &cur.Scenarios[i]
		b := base.Scenario(c.Name)
		if b == nil {
			continue
		}
		sat := saturatedScenario(c) || saturatedScenario(b)
		latency := func(metric string, baseV, curV float64) {
			if baseV <= 0 {
				return
			}
			out = append(out, LoadComparison{
				Scenario: c.Name, Metric: metric,
				Baseline: baseV, Current: curV,
				Ratio: curV / baseV,
				Gated: !sat && (baseV >= loadLatencyFloorSeconds || curV >= loadLatencyFloorSeconds),
			})
		}
		latency("task_p50_seconds", b.TaskSeconds.P50, c.TaskSeconds.P50)
		latency("task_p95_seconds", b.TaskSeconds.P95, c.TaskSeconds.P95)
		latency("task_p99_seconds", b.TaskSeconds.P99, c.TaskSeconds.P99)
		latency("queued_p99_seconds", b.QueuedSeconds.P99, c.QueuedSeconds.P99)
		if b.ThroughputRPS > 0 && c.ThroughputRPS > 0 {
			out = append(out, LoadComparison{
				Scenario: c.Name, Metric: "throughput_rps",
				Baseline: b.ThroughputRPS, Current: c.ThroughputRPS,
				Ratio: b.ThroughputRPS / c.ThroughputRPS,
				Gated: !sat,
			})
		}
	}
	return out
}

// gateLoad enforces the two load gates: every scenario must pass its own
// SLOs (absolute, machine-independent — always a hard failure), and no gated
// baseline comparison may regress past the hard tier.
func gateLoad(w io.Writer, cur *workload.LoadSummary, comps []LoadComparison) (failed bool) {
	for _, sc := range cur.Scenarios {
		if sc.Pass {
			continue
		}
		fmt.Fprintf(w, "::error::load scenario %s violated its SLOs: %s\n",
			sc.Name, strings.Join(sc.Violations, "; "))
		failed = true
	}
	for _, c := range comps {
		switch {
		case c.Gated && c.Ratio > loadFailRatio:
			fmt.Fprintf(w, "::error::%s %s regressed %.1f%% vs baseline (%.4g -> %.4g), above the %.0f%% load limit\n",
				c.Scenario, c.Metric, (c.Ratio-1)*100, c.Baseline, c.Current, (loadFailRatio-1)*100)
			failed = true
		case c.Gated && c.Ratio > loadWarnRatio:
			fmt.Fprintf(w, "::warning::%s %s is %.1f%% worse than baseline (%.4g -> %.4g); may be runner noise\n",
				c.Scenario, c.Metric, (c.Ratio-1)*100, c.Baseline, c.Current)
		}
	}
	return failed
}

// writeLoadTable renders the human-readable SLO table — the $GITHUB_STEP_SUMMARY
// payload of the load-slo job.
func writeLoadTable(w io.Writer, cur *workload.LoadSummary, comps []LoadComparison) {
	fmt.Fprintln(w, "## Load / SLO summary")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Scenario | Offered | Throughput | Task p50/p95/p99 | Queued p99 | Dead-letter | Degraded | Shed | Abandoned | Max tier | Breaker opens | SLO |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|---|---|")
	for _, sc := range cur.Scenarios {
		verdict := "✅ pass"
		if !sc.Pass {
			verdict = "❌ FAIL"
		}
		tier := "—"
		if sc.TierChanges > 0 {
			tier = fmt.Sprintf("%d (%d moves)", sc.BrownoutMaxTier, sc.TierChanges)
		}
		fmt.Fprintf(w, "| %s | %d | %.2f req/s | %s / %s / %s | %s | %d | %d | %d | %d | %s | %d | %s |\n",
			sc.Name, sc.Offered, sc.ThroughputRPS,
			fmtSeconds(sc.TaskSeconds.P50), fmtSeconds(sc.TaskSeconds.P95), fmtSeconds(sc.TaskSeconds.P99),
			fmtSeconds(sc.QueuedSeconds.P99),
			sc.Outcomes["dead_letter"], sc.Outcomes["degraded"],
			sc.Outcomes["shed"], sc.Outcomes["abandoned"], tier, sc.BreakerOpens, verdict)
	}
	for _, sc := range cur.Scenarios {
		for _, v := range sc.Violations {
			fmt.Fprintf(w, "\n- **%s**: %s", sc.Name, v)
		}
	}
	fmt.Fprintln(w)
	if len(comps) == 0 {
		return
	}
	saturated := map[string]bool{}
	for i := range cur.Scenarios {
		saturated[cur.Scenarios[i].Name] = saturatedScenario(&cur.Scenarios[i])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| Scenario | Metric | Baseline | Current | Ratio |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, c := range comps {
		note := ""
		switch {
		case !c.Gated && saturated[c.Scenario]:
			note = " (saturated; SLO-gated only)"
		case !c.Gated:
			note = " (below noise floor)"
		case c.Ratio > loadFailRatio:
			note = " ❌"
		case c.Ratio > loadWarnRatio:
			note = " ⚠️"
		}
		fmt.Fprintf(w, "| %s | %s | %.4g | %.4g | %.2fx%s |\n",
			c.Scenario, c.Metric, c.Baseline, c.Current, c.Ratio, note)
	}
}

func fmtSeconds(v float64) string {
	if v < 1 {
		return fmt.Sprintf("%.0fms", v*1000)
	}
	return fmt.Sprintf("%.2fs", v)
}

// runLoadMode is benchsummary's second life: gate a fresh BENCH_load.json
// against its committed baseline. It never parses benchmark text.
func runLoadMode(loadPath, baselinePath, outPath string, warnOnly bool) {
	cur, err := readLoadSummary(loadPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(cur.Scenarios) == 0 {
		fmt.Fprintf(os.Stderr, "benchsummary: %s has no scenarios\n", loadPath)
		os.Exit(1)
	}
	var comps []LoadComparison
	if baselinePath != "" {
		base, err := readLoadSummary(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		comps = compareLoad(cur, base)
	}
	failed := gateLoad(os.Stdout, cur, comps)

	if outPath != "" {
		doc := loadDoc{LoadSummary: *cur, Comparisons: comps}
		raw, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary:", err)
			os.Exit(1)
		}
	}
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsummary: step summary:", err)
		} else {
			writeLoadTable(f, cur, comps)
			f.Close()
		}
	} else {
		writeLoadTable(os.Stdout, cur, comps)
	}

	pass := 0
	for _, sc := range cur.Scenarios {
		if sc.Pass {
			pass++
		}
	}
	fmt.Printf("load gate: %d/%d scenario(s) met their SLOs, %d baseline comparison(s)\n",
		pass, len(cur.Scenarios), len(comps))
	if failed {
		if warnOnly {
			fmt.Println("::warning::load gate failed but -warn-only is set")
			return
		}
		os.Exit(1)
	}
}
