// Command lakesim runs the data-lake serving simulation: a platform is
// initialized on inventory data, incremental datasets arrive on a paced
// stream, and a worker pool screens each arrival for noisy labels with the
// chosen detector, reporting queueing delay, process time and detection
// quality per task — the deployment scenario of §I and §IV-A.
//
// Usage:
//
//	lakesim -dataset cifar100 -eta 0.2 -workers 2 -interval 100ms
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"enld/internal/experiments"
	"enld/internal/lake"
	"enld/internal/metrics"
)

// appendJournal records each completed task in the audit journal at path,
// if one was requested.
func appendJournal(path string, reports []lake.Report) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	j, err := lake.NewJournal(f)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		if rep.Err != nil || rep.Result == nil {
			continue
		}
		if _, err := j.AppendDetection(rep.TaskID, rep.Result.Noisy, rep.Result.Clean, "lakesim"); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	var (
		preset   = flag.String("dataset", "cifar100", "workload preset: emnist, cifar100, tinyimagenet")
		eta      = flag.Float64("eta", 0.2, "pair-noise rate in [0, 1)")
		method   = flag.String("method", "enld", "default, cl-1, cl-2, topofilter, enld, losstrack, incv, coteaching")
		seed     = flag.Uint64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 1.0, "dataset size factor")
		shards   = flag.Int("shards", 0, "incremental dataset count (0 = paper count)")
		workers  = flag.Int("workers", 2, "concurrent detection workers")
		interval = flag.Duration("interval", 50*time.Millisecond, "arrival pacing between datasets")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall simulation deadline")
		journal  = flag.String("journal", "", "append an audit journal of detection decisions to this file")
		httpAddr = flag.String("http", "", "serve a JSON status endpoint on this address (e.g. :8080)")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, DataScale: *scale, Shards: *shards}
	wb, err := experiments.BuildWorkbench(*preset, *eta, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakesim:", err)
		os.Exit(1)
	}
	fmt.Printf("platform ready: %s eta=%.2f, inventory=%d, setup=%s\n",
		*preset, *eta, len(wb.Inventory), wb.Platform.SetupTime.Round(time.Millisecond))

	tracker := lake.NewStatusTracker(nil)
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/statusz", tracker.Handler())
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "lakesim: http:", err)
			}
		}()
		fmt.Printf("status endpoint: http://%s/statusz\n", *httpAddr)
	}

	for _, d := range experiments.AllMethods(wb, *seed+3) {
		if d.Name() != *method {
			continue
		}
		svc, err := lake.NewService(d, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim:", err)
			os.Exit(1)
		}
		svc.OnReport = tracker.Record
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		reports := svc.Run(ctx, lake.Feed(ctx, wb.Shards, *interval))
		summarize(reports)
		if err := appendJournal(*journal, reports); err != nil {
			fmt.Fprintln(os.Stderr, "lakesim: journal:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "lakesim: unknown method %q\n", *method)
	os.Exit(2)
}

func summarize(reports []lake.Report) {
	var dets []metrics.Detection
	var queued, process time.Duration
	failures := 0
	for _, rep := range reports {
		if rep.Err != nil {
			failures++
			fmt.Printf("task %2d FAILED: %v\n", rep.TaskID, rep.Err)
			continue
		}
		dets = append(dets, rep.Detection)
		queued += rep.Queued
		process += rep.Process
		fmt.Printf("task %2d: size=%4d queued=%-8s process=%-8s P=%.4f R=%.4f F1=%.4f\n",
			rep.TaskID, rep.Size,
			rep.Queued.Round(time.Millisecond), rep.Process.Round(time.Millisecond),
			rep.Detection.Precision, rep.Detection.Recall, rep.Detection.F1)
	}
	if len(dets) == 0 {
		fmt.Println("no tasks completed")
		return
	}
	n := time.Duration(len(dets))
	fmt.Printf("\n%d tasks (%d failed): %s, mean queued %s, mean process %s\n",
		len(reports), failures, metrics.AggregateDetections(dets),
		(queued / n).Round(time.Millisecond), (process / n).Round(time.Millisecond))
}
