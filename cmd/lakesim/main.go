// Command lakesim runs the data-lake serving simulation: a platform is
// initialized on inventory data, incremental datasets arrive on a paced
// stream, and a worker pool screens each arrival for noisy labels with the
// chosen detector, reporting queueing delay, process time and detection
// quality per task — the deployment scenario of §I and §IV-A.
//
// The simulation can be run under deterministic fault injection (transient
// failures, panics, latency, corrupted shards) with the full resilience
// stack engaged — per-task deadlines, retry with backoff, a circuit breaker
// degrading to the default baseline, and journal-based crash recovery:
//
//	lakesim -dataset cifar100 -eta 0.2 -workers 2 -interval 100ms
//	lakesim -fail-rate 0.2 -panic-rate 0.05 -retries 2 \
//	        -breaker-threshold 3 -fallback \
//	        -platform lake.platform -journal lake.journal -resume
//
// The stream can also be served by a sharded cluster
// (internal/lake/cluster): -shards N runs the whole cluster in-process
// behind a rendezvous-hashing coordinator, while -shard-addr and
// -coordinator split worker and coordinator across processes:
//
//	lakesim -shards 4 -store seglog -store-dir /var/lake -http :8080
//	lakesim -shard-addr :9001 -shard-name s0            # worker process
//	lakesim -coordinator http://host:9001,http://host:9002
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"enld/internal/baselines"
	"enld/internal/core"
	"enld/internal/detect"
	"enld/internal/experiments"
	"enld/internal/fault"
	"enld/internal/lake"
	"enld/internal/lake/seglog"
	"enld/internal/metrics"
	"enld/internal/nn"
	"enld/internal/obs"
)

// buildWorkbench prepares the workload, restoring the platform from the
// inventory (preferred) or from platformPath when a previous run saved one
// (crash recovery: no setup-phase retraining) and saving it after a fresh
// setup otherwise. A snapshot that fails verification (torn write, bit rot,
// foreign file) is not fatal: the run warns, rebuilds from scratch and
// atomically replaces the bad snapshot, so a corrupt checkpoint degrades to
// a slow start instead of a crash loop.
func buildWorkbench(preset string, eta float64, cfg experiments.Config, platformPath string, inv lake.Inventory) (*experiments.Workbench, error) {
	if inv != nil {
		p, err := core.LoadPlatformInventory(inv)
		switch {
		case err == nil:
			fmt.Println("platform restored from inventory (setup skipped)")
			return experiments.BuildWorkbenchFrom(preset, eta, cfg, p)
		case errors.Is(err, lake.ErrNoSnapshot):
			// Fresh store: fall through to setup.
		default:
			fmt.Fprintf(os.Stderr, "lakesim: platform snapshot rejected, rebuilding from scratch: %v\n", err)
		}
	} else if platformPath != "" {
		if _, err := os.Stat(platformPath); err == nil {
			p, err := core.LoadPlatformFile(platformPath)
			if err == nil {
				fmt.Printf("platform restored from %s (setup skipped)\n", platformPath)
				return experiments.BuildWorkbenchFrom(preset, eta, cfg, p)
			}
			fmt.Fprintf(os.Stderr, "lakesim: platform snapshot rejected, rebuilding from scratch: %v\n", err)
		}
	}
	wb, err := experiments.BuildWorkbench(preset, eta, cfg)
	if err != nil {
		return nil, err
	}
	switch {
	case inv != nil:
		if err := core.SavePlatformInventory(wb.Platform, inv); err != nil {
			return nil, err
		}
		fmt.Println("platform saved to inventory")
	case platformPath != "":
		if err := core.SavePlatformFile(wb.Platform, platformPath); err != nil {
			return nil, err
		}
		fmt.Printf("platform saved to %s\n", platformPath)
	}
	return wb, nil
}

// openInventory builds the inventory storage the flags ask for. A nil
// return (no error) means durable storage is off.
func openInventory(backend, dir string, reg *obs.Registry) (lake.Inventory, error) {
	switch backend {
	case "memory":
		return lake.NewMemInventory(), nil
	case "seglog":
		if dir == "" {
			return nil, nil
		}
		lg, err := seglog.Open(dir, seglog.Options{})
		if err != nil {
			return nil, err
		}
		lg.SetObs(reg)
		if rec := lg.Stats().Recovery; rec.TornTail {
			fmt.Fprintf(os.Stderr, "lakesim: storage recovery dropped %d torn record(s), %d bytes at %s offset %d\n",
				rec.DroppedRecords, rec.DroppedBytes, rec.File, rec.Offset)
		}
		return lg, nil
	case "gob":
		if dir == "" {
			return nil, nil
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		return lake.OpenGobInventory(filepath.Join(dir, "inventory.gob"))
	default:
		return nil, fmt.Errorf("unknown -store backend %q (want seglog, gob or memory)", backend)
	}
}

func main() {
	var (
		preset   = flag.String("dataset", "cifar100", "workload preset: emnist, cifar100, tinyimagenet")
		eta      = flag.Float64("eta", 0.2, "pair-noise rate in [0, 1)")
		method   = flag.String("method", "enld", "default, cl-1, cl-2, topofilter, enld, losstrack, incv, coteaching")
		seed     = flag.Uint64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 1.0, "dataset size factor")
		datasets = flag.Int("datasets", 0, "incremental dataset count (0 = paper count)")
		workers  = flag.Int("workers", 2, "concurrent detection workers")
		taskW    = flag.Int("task-workers", 1, "data-parallel workers inside each detection task (0 = all cores); per-task results are identical at any count")
		useANN   = flag.Bool("ann", false, "use the approximate IVF k-NN index for ENLD's contrastive sampling (faster; detection quality within the guardrail budget of the exact default)")
		useF32   = flag.Bool("f32", false, "run ENLD's ranking-only forward passes in float32 (deterministic, but not bit-identical to the float64 default)")
		interval = flag.Duration("interval", 50*time.Millisecond, "arrival pacing between datasets")
		timeout  = flag.Duration("timeout", 10*time.Minute, "overall simulation deadline")
		journal  = flag.String("journal", "", "append an audit journal of detection decisions to this file")
		httpAddr = flag.String("http", "", "serve JSON status (/statusz) and Prometheus metrics (/metrics) on this address (e.g. :8080)")

		// Sharded cluster modes (internal/lake/cluster). -shards runs the
		// whole cluster in one process; -shard-addr turns this process into
		// one HTTP worker; -coordinator fronts remote workers. Journal and
		// resume are single-node features and do not apply to cluster runs.
		clusterShards = flag.Int("shards", 0, "run the stream through an in-process cluster of this many shard workers behind a rendezvous-hashing coordinator (0 = single service)")
		shardAddr     = flag.String("shard-addr", "", "serve this process as one HTTP shard worker on this address (e.g. :9001) until interrupted")
		shardName     = flag.String("shard-name", "", "cluster-wide name of this shard worker (default: the -shard-addr value)")
		coordinator   = flag.String("coordinator", "", "comma-separated shard worker base URLs (e.g. http://host:9001,http://host:9002); run as the coordinator over these HTTP shards")

		// Observability.
		keepRecent = flag.Int("keep-recent", 0, "recent task reports kept in /statusz (0 = default 20)")
		obsLedger  = flag.String("obs-ledger", "", "append a JSONL ledger of completed spans to this file")
		linger     = flag.Duration("linger", 0, "keep the HTTP endpoints serving this long after the run (for scraping final state)")

		// Fault injection (internal/fault): deterministic chaos on the
		// chosen detector.
		failRate    = flag.Float64("fail-rate", 0, "probability a detection call fails transiently")
		panicRate   = flag.Float64("panic-rate", 0, "probability a detection call panics")
		slowRate    = flag.Float64("slow-rate", 0, "probability a detection call is slowed by -slow-latency")
		slowLatency = flag.Duration("slow-latency", 200*time.Millisecond, "latency added to slowed calls")
		corruptRate = flag.Float64("corrupt-rate", 0, "probability a shard's labels are scrambled before detection")
		faultSeed   = flag.Uint64("fault-seed", 42, "seed for the fault-injection decision stream")

		// Resilience policy (internal/lake).
		taskTimeout = flag.Duration("task-timeout", 0, "per-task detector deadline (0 = none)")
		retries     = flag.Int("retries", 0, "max retries of transient failures per task")
		retryBase   = flag.Duration("retry-base", 20*time.Millisecond, "first retry backoff (doubles per retry)")
		breakerN    = flag.Int("breaker-threshold", 0, "consecutive failures tripping the circuit breaker (0 = no breaker)")
		breakerCool = flag.Duration("breaker-cooldown", time.Second, "open-breaker cooldown before a half-open probe")
		fallback    = flag.Bool("fallback", false, "degrade failed tasks to the default baseline detector")

		// Overload control (internal/lake): bounded admission with
		// deadline-aware shedding, and the brownout degradation ladder.
		queueDepth   = flag.Int("queue-depth", 0, "admission queue capacity (0 = legacy unbounded backpressure, nothing is shed)")
		maxQueueWait = flag.Duration("max-queue-wait", 0, "shed tasks whose predicted queue wait exceeds this (0 = only full-queue shedding; needs -queue-depth)")
		brownoutOn   = flag.Bool("brownout", false, "step detection down the degradation ladder (full ENLD -> ANN -> ANN+f32 -> fallback) under sustained pressure, recovering tier-by-tier")
		brQueueHigh  = flag.Int("brownout-queue-high", 0, "queue-depth pressure watermark (0 = half of -queue-depth)")
		brQueueLow   = flag.Int("brownout-queue-low", 0, "queue-depth calm watermark (0 = a quarter of the high watermark)")
		brP95High    = flag.Duration("brownout-p95-high", 0, "windowed task-latency p95 pressure watermark (0 = latency signal off)")
		brP95Low     = flag.Duration("brownout-p95-low", 0, "windowed task-latency p95 calm watermark")
		brInterval   = flag.Duration("brownout-interval", 250*time.Millisecond, "brownout evaluation cadence")

		// Crash recovery.
		platformPath = flag.String("platform", "", "platform snapshot file: loaded if present (skipping setup), saved after setup otherwise; ignored when -store-dir is set")
		resume       = flag.Bool("resume", false, "skip task IDs already recorded in the -journal file")

		// Durable inventory storage (internal/lake/seglog): every arriving
		// dataset and the platform snapshot go through the inventory, so an
		// accepted arrival survives a crash.
		storeKind = flag.String("store", "seglog", "inventory storage backend: seglog (crash-safe segment log), gob (atomic blob), memory")
		storeDir  = flag.String("store-dir", "", "directory for durable inventory storage (empty = durable storage off unless -store=memory)")

		// Numerical-health watchdog (internal/nn): NaN/Inf and
		// loss-divergence detection with checkpoint rollback on every
		// training run the platform performs.
		watchdog      = flag.Bool("watchdog", false, "enable the numerical-health watchdog on platform training")
		watchdogEvery = flag.Int("watchdog-every", 0, "batch cadence of gradient/weight scans (0 = default 16)")
		rollbackMax   = flag.Int("rollback-budget", 0, "max checkpoint rollbacks per training run (0 = default 3)")
	)
	flag.Parse()

	// An interrupt (Ctrl-C) or SIGTERM cancels the simulation and shuts the
	// status endpoint down gracefully instead of killing mid-task.
	rootCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One registry observes the whole run: platform setup, every detection
	// task, the lake service and the breaker all report into it, and the
	// /metrics endpoint serves it live.
	reg := obs.NewRegistry()
	if *obsLedger != "" {
		f, err := os.OpenFile(*obsLedger, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim: obs-ledger:", err)
			os.Exit(1)
		}
		defer f.Close()
		reg.SetSpanLedger(f)
	}

	cfg := experiments.Config{Seed: *seed, DataScale: *scale, Shards: *datasets, Workers: *taskW, Obs: reg, ANN: *useANN, Float32: *useF32}
	if *watchdog {
		cfg.Watchdog = nn.WatchdogConfig{
			Enabled:      true,
			Health:       nn.HealthConfig{CheckEvery: *watchdogEvery},
			MaxRollbacks: *rollbackMax,
		}
	}
	fl := clusterFlags{
		shards:      *clusterShards,
		shardAddr:   *shardAddr,
		shardName:   *shardName,
		coordinator: *coordinator,
		method:      *method,
		seed:        *seed,
		workers:     *workers,
		keepRecent:  *keepRecent,
		interval:    *interval,
		timeout:     *timeout,
		httpAddr:    *httpAddr,
		linger:      *linger,
		storeKind:   *storeKind,
		storeDir:    *storeDir,
		fallback:    *fallback,
	}
	if fl.clusterMode() {
		if *storeDir != "" && *storeKind != "seglog" {
			fmt.Fprintf(os.Stderr, "lakesim: cluster modes support only -store seglog (got %q)\n", *storeKind)
			os.Exit(2)
		}
		if *journal != "" || *resume {
			fmt.Fprintln(os.Stderr, "lakesim: -journal/-resume are single-node features; ignored in cluster mode")
		}
		fl.policy = lake.Policy{
			TaskTimeout:      *taskTimeout,
			MaxRetries:       *retries,
			RetryBase:        *retryBase,
			RetrySeed:        *seed,
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCool,
			Admission: lake.AdmissionConfig{
				QueueDepth:   *queueDepth,
				MaxQueueWait: *maxQueueWait,
			},
		}
		if *brownoutOn {
			high := *brQueueHigh
			if high == 0 && *queueDepth > 0 {
				high = *queueDepth / 2
				if high < 2 {
					high = 2
				}
			}
			low := *brQueueLow
			if low == 0 {
				low = high / 4
			}
			fl.brownout = true
			fl.brCfg = lake.BrownoutConfig{
				QueueHigh: high, QueueLow: low,
				P95High: *brP95High, P95Low: *brP95Low,
				Interval: *brInterval,
			}
		}
		fl.faultOn = *failRate > 0 || *panicRate > 0 || *slowRate > 0 || *corruptRate > 0
		fl.faultCfg = fault.Config{
			Seed:        *faultSeed,
			FailRate:    *failRate,
			PanicRate:   *panicRate,
			SlowRate:    *slowRate,
			Latency:     *slowLatency,
			CorruptRate: *corruptRate,
		}
		wb, err := buildWorkbench(*preset, *eta, cfg, *platformPath, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim:", err)
			os.Exit(1)
		}
		fmt.Printf("platform ready: %s eta=%.2f, inventory=%d, setup=%s\n",
			*preset, *eta, len(wb.Inventory), wb.Platform.SetupTime.Round(time.Millisecond))
		if fl.shardAddr != "" {
			err = runShardServer(rootCtx, wb, fl)
		} else {
			err = runCluster(rootCtx, wb, reg, fl)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim:", err)
			os.Exit(1)
		}
		return
	}

	inv, err := openInventory(*storeKind, *storeDir, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakesim: storage:", err)
		os.Exit(1)
	}
	if inv != nil {
		defer inv.Close()
		st := inv.Stats()
		fmt.Printf("storage: %s backend, %d dataset(s), %d segment(s)\n", st.Backend, st.Datasets, st.Segments)
	}

	wb, err := buildWorkbench(*preset, *eta, cfg, *platformPath, inv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lakesim:", err)
		os.Exit(1)
	}
	fmt.Printf("platform ready: %s eta=%.2f, inventory=%d, setup=%s\n",
		*preset, *eta, len(wb.Inventory), wb.Platform.SetupTime.Round(time.Millisecond))
	if *watchdog {
		h := wb.Platform.Health
		fmt.Printf("watchdog: checks=%d rollbacks=%d last-unhealthy-epoch=%d checkpoints=%d verify-failures=%d\n",
			h.HealthChecks, h.Rollbacks, h.LastUnhealthyEpoch, h.CheckpointsTaken, h.VerifyFailures)
	}

	// Recover the journal before serving: the intact prefix tells a
	// restarted run which tasks are already durable.
	var jnl *lake.Journal
	var jrec lake.JournalRecovery
	done := map[int]bool{}
	if *journal != "" {
		var entries []lake.Entry
		jnl, entries, jrec, err = lake.RecoverJournalFile(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim: journal:", err)
			os.Exit(1)
		}
		defer jnl.Close()
		if jrec.Torn {
			fmt.Fprintf(os.Stderr, "lakesim: journal recovery dropped a torn tail: %d bytes at offset %d of %s\n",
				jrec.DroppedBytes, jrec.Offset, jrec.File)
		}
		if *resume {
			done = lake.DoneTasks(entries)
			if len(done) > 0 {
				fmt.Printf("journal %s: %d entries recovered, skipping %d completed tasks\n",
					*journal, len(entries), len(done))
			}
		}
	}

	tracker := lake.NewStatusTracker(nil)
	tracker.SetKeepRecent(*keepRecent)
	if inv != nil {
		tracker.AttachInventory(inv)
	}
	if *journal != "" {
		tracker.SetJournalRecovery(jrec)
	}
	if *watchdog {
		h := wb.Platform.Health
		tracker.SetTrainingHealth(lake.TrainingHealth{
			HealthChecks:             h.HealthChecks,
			Rollbacks:                h.Rollbacks,
			LastUnhealthyEpoch:       h.LastUnhealthyEpoch,
			CheckpointsTaken:         h.CheckpointsTaken,
			CheckpointVerifyFailures: h.VerifyFailures,
		})
	}
	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/statusz", tracker.Handler())
		mux.Handle("/metrics", reg.Handler())
		// Explicit read/write timeouts keep a slow or stalled client from
		// pinning a connection (bare ListenAndServe has none), and Shutdown
		// drains in-flight requests on interrupt instead of dropping them.
		srv := &http.Server{
			Addr:              *httpAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      10 * time.Second,
			IdleTimeout:       time.Minute,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "lakesim: http:", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutCtx); err != nil {
				fmt.Fprintln(os.Stderr, "lakesim: http shutdown:", err)
			}
		}()
		fmt.Printf("status endpoint: http://%s/statusz\n", *httpAddr)
		fmt.Printf("metrics endpoint: http://%s/metrics\n", *httpAddr)
	}

	for _, d := range experiments.AllMethods(wb, *seed+3) {
		if d.Name() != *method {
			continue
		}
		detector := detect.Detector(d)
		var injector *fault.Injector
		if *failRate > 0 || *panicRate > 0 || *slowRate > 0 || *corruptRate > 0 {
			injector, err = fault.New(detector, fault.Config{
				Seed:        *faultSeed,
				FailRate:    *failRate,
				PanicRate:   *panicRate,
				SlowRate:    *slowRate,
				Latency:     *slowLatency,
				CorruptRate: *corruptRate,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "lakesim:", err)
				os.Exit(1)
			}
			detector = injector
			fmt.Printf("fault injection on: fail=%.2f panic=%.2f slow=%.2f corrupt=%.2f seed=%d\n",
				*failRate, *panicRate, *slowRate, *corruptRate, *faultSeed)
		}

		policy := lake.Policy{
			TaskTimeout:      *taskTimeout,
			MaxRetries:       *retries,
			RetryBase:        *retryBase,
			RetrySeed:        *seed,
			BreakerThreshold: *breakerN,
			BreakerCooldown:  *breakerCool,
			Admission: lake.AdmissionConfig{
				QueueDepth:   *queueDepth,
				MaxQueueWait: *maxQueueWait,
			},
		}
		if *fallback {
			policy.Fallback = baselines.Default{Model: wb.Platform.Model}
		}
		svc, err := lake.NewServiceWithPolicy(detector, *workers, policy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lakesim:", err)
			os.Exit(1)
		}
		if *queueDepth > 0 {
			fmt.Printf("admission: queue depth %d, max predicted wait %s\n", *queueDepth, *maxQueueWait)
		}
		if *brownoutOn {
			// The degradation ladder built on this run's platform, with tier 0
			// replaced by the detector under test (fault wrap included) so the
			// brownout degrades from exactly what the run is serving.
			ladder := experiments.BrownoutLadder(wb)
			ladder[0].Detector = detector
			high := *brQueueHigh
			if high == 0 && *queueDepth > 0 {
				high = *queueDepth / 2
				if high < 2 {
					high = 2
				}
			}
			low := *brQueueLow
			if low == 0 {
				low = high / 4
			}
			bcfg := lake.BrownoutConfig{
				QueueHigh: high, QueueLow: low,
				P95High: *brP95High, P95Low: *brP95Low,
				Interval: *brInterval,
			}
			if err := svc.SetBrownout(ladder, bcfg, func(from, to int) {
				fmt.Printf("brownout: tier %d (%s) -> %d (%s)\n", from, ladder[from].Name, to, ladder[to].Name)
			}); err != nil {
				fmt.Fprintln(os.Stderr, "lakesim:", err)
				os.Exit(1)
			}
			fmt.Printf("brownout on: %d-tier ladder, queue watermarks %d/%d, p95 watermarks %s/%s, interval %s\n",
				len(ladder), high, low, *brP95High, *brP95Low, *brInterval)
		}
		svc.SetObs(reg)
		tracker.AttachService(svc)
		if inv != nil {
			svc.SetInventory(inv)
		}
		if b := svc.Breaker(); b != nil {
			tracker.AttachBreaker(b)
			lake.ObserveBreaker(b, reg)
			b.OnTransition(func(from, to lake.BreakerState) {
				fmt.Printf("breaker: %s -> %s\n", from, to)
			})
		}
		svc.SkipCompleted(done)
		// Journal each task as it completes (not after the run), so a crash
		// mid-run loses at most the in-flight tasks.
		svc.OnReport = func(rep lake.Report) {
			tracker.Record(rep)
			if jnl == nil || rep.Err != nil || rep.Result == nil {
				return
			}
			note := "lakesim"
			if rep.Degraded {
				note = "lakesim-degraded"
			}
			if _, err := jnl.AppendDetection(rep.TaskID, rep.Result.Noisy, rep.Result.Clean, note); err != nil {
				fmt.Fprintln(os.Stderr, "lakesim: journal:", err)
			}
		}

		ctx, cancel := context.WithTimeout(rootCtx, *timeout)
		defer cancel()
		reports := svc.Run(ctx, lake.Feed(ctx, wb.Shards, *interval))
		summarize(reports, len(wb.Shards), len(done), svc)
		if inv != nil {
			st := inv.Stats()
			fmt.Printf("storage: %s backend, %d dataset(s) (%d samples), %d segment(s), %d live / %d dead bytes, %d append(s), %d compaction(s)\n",
				st.Backend, st.Datasets, st.Samples, st.Segments, st.LiveBytes, st.DeadBytes, st.Appends, st.Compactions)
		}
		if injector != nil {
			st := injector.Stats()
			fmt.Printf("faults injected: calls=%d failures=%d panics=%d slowdowns=%d corruptions=%d\n",
				st.Calls, st.Failures, st.Panics, st.Slowdowns, st.Corruptions)
		}
		if *linger > 0 && *httpAddr != "" {
			// Hold the endpoints open so a scraper can read the run's final
			// state; an interrupt ends the wait early.
			fmt.Printf("lingering %s for scrapes (Ctrl-C to stop)\n", *linger)
			select {
			case <-time.After(*linger):
			case <-rootCtx.Done():
			}
		}
		return
	}
	fmt.Fprintf(os.Stderr, "lakesim: unknown method %q\n", *method)
	os.Exit(2)
}

func summarize(reports []lake.Report, total, skipped int, svc *lake.Service) {
	breaker := svc.Breaker()
	var dets []metrics.Detection
	var queued, process time.Duration
	succeeded, degraded, deadLettered, shed, abandoned, retries := 0, 0, 0, 0, 0, 0
	for _, rep := range reports {
		retries += rep.Retries
		switch {
		case rep.Shed:
			shed++
			fmt.Printf("task %2d SHED at admission: %v\n", rep.TaskID, rep.Err)
			continue
		case rep.Abandoned:
			abandoned++
			fmt.Printf("task %2d ABANDONED at shutdown: %v\n", rep.TaskID, rep.Err)
			continue
		case rep.DeadLettered:
			deadLettered++
			fmt.Printf("task %2d DEAD-LETTERED after %d retries: %v\n", rep.TaskID, rep.Retries, rep.Err)
			continue
		case rep.Err != nil:
			deadLettered++
			fmt.Printf("task %2d FAILED: %v\n", rep.TaskID, rep.Err)
			continue
		case rep.Degraded:
			degraded++
		default:
			succeeded++
		}
		dets = append(dets, rep.Detection)
		queued += rep.Queued
		process += rep.Process
		tag := ""
		if rep.Degraded {
			tag = " DEGRADED"
		}
		if rep.Tier != "" && rep.Tier != lake.TierFull {
			tag += " tier=" + rep.Tier
		}
		if rep.Retries > 0 {
			tag += fmt.Sprintf(" (retries=%d)", rep.Retries)
		}
		fmt.Printf("task %2d: size=%4d queued=%-8s process=%-8s P=%.4f R=%.4f F1=%.4f%s\n",
			rep.TaskID, rep.Size,
			rep.Queued.Round(time.Millisecond), rep.Process.Round(time.Millisecond),
			rep.Detection.Precision, rep.Detection.Recall, rep.Detection.F1, tag)
	}

	fmt.Printf("\naccounting: %d tasks = %d succeeded + %d degraded + %d dead-lettered + %d shed + %d abandoned + %d skipped (recovered)",
		total, succeeded, degraded, deadLettered, shed, abandoned, skipped)
	if lost := total - succeeded - degraded - deadLettered - shed - abandoned - skipped; lost > 0 {
		fmt.Printf(" — %d LOST (cancelled before processing)", lost)
	}
	fmt.Println()
	if retries > 0 {
		fmt.Printf("transient retries consumed: %d\n", retries)
	}
	if ov := svc.OverloadStatus(); ov.QueueCapacity > 0 || ov.BrownoutTier >= 0 {
		fmt.Printf("overload: shed=%d abandoned=%d ewma_task=%.0fms", ov.TasksShed, ov.TasksAbandoned, ov.EWMATaskSeconds*1000)
		if ov.BrownoutTier >= 0 {
			fmt.Printf(" brownout tier=%d (%s) max_tier=%d changes=%d",
				ov.BrownoutTier, ov.BrownoutTierName, ov.BrownoutMaxTier, ov.TierChanges)
		}
		fmt.Println()
	}
	if breaker != nil {
		fmt.Printf("breaker: state=%s trips=%d\n", breaker.State(), breaker.Trips())
	}
	if len(dets) == 0 {
		fmt.Println("no tasks completed")
		return
	}
	n := time.Duration(len(dets))
	fmt.Printf("%d tasks (%d failed): %s, mean queued %s, mean process %s\n",
		len(reports), deadLettered, metrics.AggregateDetections(dets),
		(queued / n).Round(time.Millisecond), (process / n).Round(time.Millisecond))
}
