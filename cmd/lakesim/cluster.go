package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"enld/internal/baselines"
	"enld/internal/detect"
	"enld/internal/experiments"
	"enld/internal/fault"
	"enld/internal/lake"
	"enld/internal/lake/cluster"
	"enld/internal/lake/seglog"
	"enld/internal/metrics"
	"enld/internal/obs"
)

// clusterFlags carries the flag values the sharded modes need, resolved in
// main. Single-node-only features (journal/resume, inventory-backed platform
// snapshots) do not apply here: each shard keeps its own books.
type clusterFlags struct {
	shards      int    // -shards: in-process cluster size
	shardAddr   string // -shard-addr: serve one HTTP shard worker
	shardName   string // -shard-name: this worker's cluster-wide name
	coordinator string // -coordinator: comma-separated shard base URLs

	method     string
	seed       uint64
	workers    int
	keepRecent int
	interval   time.Duration
	timeout    time.Duration
	httpAddr   string
	linger     time.Duration
	storeKind  string
	storeDir   string

	policy   lake.Policy
	fallback bool

	brownout bool
	brCfg    lake.BrownoutConfig

	faultOn  bool
	faultCfg fault.Config
}

// clusterMode reports whether any sharded mode is requested.
func (fl clusterFlags) clusterMode() bool {
	return fl.shards > 0 || fl.shardAddr != "" || fl.coordinator != ""
}

// shardDetector resolves the run's method against the workbench and wraps it
// in this shard's own fault-injection stream (seed offset by the shard index
// so shards do not fail in lockstep).
func shardDetector(wb *experiments.Workbench, fl clusterFlags, shard int) (detect.Detector, error) {
	var det detect.Detector
	for _, d := range experiments.AllMethods(wb, fl.seed+3) {
		if d.Name() == fl.method {
			det = d
			break
		}
	}
	if det == nil {
		return nil, fmt.Errorf("unknown method %q", fl.method)
	}
	if fl.faultOn {
		cfg := fl.faultCfg
		cfg.Seed += uint64(shard) * 101
		inj, err := fault.New(det, cfg)
		if err != nil {
			return nil, err
		}
		det = inj
	}
	return det, nil
}

// newShardWorker builds one fully wired shard: its own registry, policy,
// optional brownout ladder and optional seglog inventory subdirectory
// (storeDir/<name>), so shards never contend on storage.
func newShardWorker(wb *experiments.Workbench, fl clusterFlags, shard int, name string) (*cluster.ShardWorker, error) {
	det, err := shardDetector(wb, fl, shard)
	if err != nil {
		return nil, err
	}
	policy := fl.policy
	if fl.fallback {
		policy.Fallback = baselines.Default{Model: wb.Platform.Model}
	}
	wcfg := cluster.WorkerConfig{
		Name:       name,
		Workers:    fl.workers,
		Policy:     policy,
		Registry:   obs.NewRegistry(),
		KeepRecent: fl.keepRecent,
	}
	if fl.brownout {
		ladder := experiments.BrownoutLadder(wb)
		ladder[0].Detector = det
		wcfg.Ladder = ladder
		wcfg.Brownout = fl.brCfg
	}
	if fl.storeKind == "seglog" && fl.storeDir != "" {
		lg, err := seglog.Open(fmt.Sprintf("%s/%s", fl.storeDir, name), seglog.Options{})
		if err != nil {
			return nil, err
		}
		lg.SetObs(wcfg.Registry)
		wcfg.Inventory = lg
	}
	return cluster.NewShardWorker(det, wcfg)
}

// runShardServer is -shard-addr mode: this process is one worker of a
// cluster whose coordinator lives elsewhere. It serves /submit, /statusz,
// /metrics, /drain and /healthz until interrupted, then drains.
func runShardServer(ctx context.Context, wb *experiments.Workbench, fl clusterFlags) error {
	name := fl.shardName
	if name == "" {
		name = fl.shardAddr
	}
	w, err := newShardWorker(wb, fl, 0, name)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              fl.shardAddr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("shard worker %s serving on %s (Ctrl-C to drain and exit)\n", name, fl.shardAddr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "lakesim: shard shutdown:", err)
	}
	if err := w.Drain(shutCtx); err != nil {
		return err
	}
	st, err := w.Status(context.Background())
	if err == nil {
		fmt.Printf("shard %s drained: processed=%d failed=%d shed=%d abandoned=%d\n",
			name, st.TasksProcessed, st.TasksFailed, st.TasksShed, st.TasksAbandoned)
	}
	return nil
}

// runCluster drives the arrival stream through a coordinator — over
// in-process workers (-shards N) or remote HTTP shards (-coordinator). The
// merged scatter/gather /statusz and /metrics views serve on -http.
func runCluster(ctx context.Context, wb *experiments.Workbench, reg *obs.Registry, fl clusterFlags) error {
	var shards []cluster.Shard
	var workers []*cluster.ShardWorker
	switch {
	case fl.coordinator != "":
		for _, u := range strings.Split(fl.coordinator, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				return fmt.Errorf("empty shard URL in -coordinator list %q", fl.coordinator)
			}
			shards = append(shards, cluster.NewHTTPShard(u, u))
		}
		fmt.Printf("coordinator over %d HTTP shard(s)\n", len(shards))
	default:
		for i := 0; i < fl.shards; i++ {
			w, err := newShardWorker(wb, fl, i, fmt.Sprintf("shard-%d", i))
			if err != nil {
				return err
			}
			workers = append(workers, w)
			shards = append(shards, w)
		}
		defer func() {
			drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for _, w := range workers {
				_ = w.Drain(drainCtx)
			}
		}()
		fmt.Printf("in-process cluster: %d shard(s), %d worker(s) each\n", len(shards), fl.workers)
	}

	policy := fl.policy
	coord, err := cluster.New(shards, cluster.Options{Policy: policy})
	if err != nil {
		return err
	}
	coord.SetObs(reg)

	if fl.httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/statusz", coord.StatusHandler())
		mux.Handle("/metrics", coord.MetricsHandler())
		srv := &http.Server{
			Addr:              fl.httpAddr,
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       10 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       time.Minute,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "lakesim: http:", err)
			}
		}()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutCtx)
		}()
		fmt.Printf("cluster status endpoint: http://%s/statusz\n", fl.httpAddr)
		fmt.Printf("cluster metrics endpoint: http://%s/metrics\n", fl.httpAddr)
	}

	runCtx, cancel := context.WithTimeout(ctx, fl.timeout)
	defer cancel()
	reports := coord.Run(runCtx, lake.Feed(runCtx, wb.Shards, fl.interval))
	summarizeCluster(reports, len(wb.Shards), coord)

	if fl.linger > 0 && fl.httpAddr != "" {
		fmt.Printf("lingering %s for scrapes (Ctrl-C to stop)\n", fl.linger)
		select {
		case <-time.After(fl.linger):
		case <-ctx.Done():
		}
	}
	return nil
}

// summarizeCluster prints per-task lines, the cluster accounting identity
// and the scatter/gather aggregate for a coordinator run.
func summarizeCluster(reports []lake.Report, total int, coord *cluster.Coordinator) {
	var dets []metrics.Detection
	var queued, process time.Duration
	completed, rerouted, shed, abandoned, deadLettered, retries := 0, 0, 0, 0, 0, 0
	for _, rep := range reports {
		retries += rep.Retries
		switch {
		case rep.Shed:
			shed++
			fmt.Printf("task %2d SHED at admission on %s: %v\n", rep.TaskID, rep.Shard, rep.Err)
			continue
		case rep.Abandoned:
			abandoned++
			fmt.Printf("task %2d ABANDONED at shutdown: %v\n", rep.TaskID, rep.Err)
			continue
		case rep.DeadLettered:
			deadLettered++
			fmt.Printf("task %2d DEAD-LETTERED: %v\n", rep.TaskID, rep.Err)
			continue
		case rep.Rerouted:
			rerouted++
		default:
			completed++
		}
		dets = append(dets, rep.Detection)
		queued += rep.Queued
		process += rep.Process
		tag := " shard=" + rep.Shard
		if rep.Rerouted {
			tag += " REROUTED"
		}
		if rep.Degraded {
			tag += " DEGRADED"
		}
		if rep.Retries > 0 {
			tag += fmt.Sprintf(" (retries=%d)", rep.Retries)
		}
		fmt.Printf("task %2d: size=%4d queued=%-8s process=%-8s P=%.4f R=%.4f F1=%.4f%s\n",
			rep.TaskID, rep.Size,
			rep.Queued.Round(time.Millisecond), rep.Process.Round(time.Millisecond),
			rep.Detection.Precision, rep.Detection.Recall, rep.Detection.F1, tag)
	}

	lost := total - completed - rerouted - shed - abandoned - deadLettered
	fmt.Printf("\ncluster accounting: offered=%d completed=%d rerouted=%d shed=%d abandoned=%d dead_letter=%d lost=%d\n",
		total, completed, rerouted, shed, abandoned, deadLettered, lost)
	if retries > 0 {
		fmt.Printf("transient retries consumed: %d\n", retries)
	}

	st := coord.Status(context.Background())
	fmt.Printf("cluster: %d/%d shard(s) up, placement=%s\n", st.ShardsUp, st.Shards, st.Placement)
	for _, sh := range st.PerShard {
		if !sh.Up {
			fmt.Printf("  %s: DOWN (%s)\n", sh.Name, sh.Error)
			continue
		}
		fmt.Printf("  %s: processed=%d failed=%d shed=%d abandoned=%d\n",
			sh.Name, sh.Status.TasksProcessed, sh.Status.TasksFailed, sh.Status.TasksShed, sh.Status.TasksAbandoned)
	}
	if len(dets) == 0 {
		fmt.Println("no tasks completed")
		return
	}
	n := time.Duration(len(dets))
	fmt.Printf("%d tasks (%d dead-lettered): %s, mean queued %s, mean process %s\n",
		len(reports), deadLettered, metrics.AggregateDetections(dets),
		(queued / n).Round(time.Millisecond), (process / n).Round(time.Millisecond))
}
