// Missing-label recovery (§V-H of the paper): missing labels are a special
// case of noisy labels. A fraction of an incremental dataset arrives with
// no label at all; during fine-grained detection ENLD assigns each unlabeled
// sample a pseudo label in every training step and the final label is chosen
// by majority vote. This example masks 25%/50%/75% of the labels and reports
// pseudo-label accuracy at each rate.
//
//	go run ./examples/missinglabels
package main

import (
	"fmt"
	"log"

	"enld"
)

func main() {
	const seed = 23
	rng := enld.NewRNG(seed)

	spec := enld.CIFAR100Like(seed).Scale(0.6)
	data, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	tm, err := enld.PairNoise(spec.Classes, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enld.ApplyNoise(data, tm, rng); err != nil {
		log.Fatal(err)
	}
	inventory, pool, err := enld.SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := enld.Shard(pool, enld.ShardSpec{
		Shards: 3, MinClasses: 10, MaxClasses: 10, Drift: 0.5,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	platform, err := enld.NewPlatform(inventory,
		enld.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed))
	if err != nil {
		log.Fatal(err)
	}
	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}

	for i, rate := range []float64{0.25, 0.50, 0.75} {
		shard := shards[i].Clone()
		masked, err := enld.MaskMissing(shard, rate, rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := detector.DetectFull(shard)
		if err != nil {
			log.Fatal(err)
		}
		// Score the voted pseudo labels against ground truth (synthetic data
		// retains true labels for evaluation).
		truth := map[int]int{}
		for _, smp := range shard {
			truth[smp.ID] = smp.True
		}
		correct := 0
		for id, label := range res.PseudoLabels {
			if label == truth[id] {
				correct++
			}
		}
		fmt.Printf("missing rate %.0f%%: %3d unlabeled of %3d; "+
			"pseudo labels recovered %d/%d correctly (%.1f%%)\n",
			rate*100, masked, len(shard),
			correct, len(res.PseudoLabels),
			100*float64(correct)/float64(len(res.PseudoLabels)))
	}
}
