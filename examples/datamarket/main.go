// Data-trading scenario (§I of the paper): a data marketplace prices
// incoming datasets by measured label quality. Each offered dataset is
// screened with ENLD; the detected noise rate discounts the price. After
// several transactions the platform runs the model update (Algorithm 4) on
// the clean inventory samples accumulated during detection, improving the
// general model it will use for future appraisals — demonstrated by
// before/after validation accuracy, as in Table II.
//
//	go run ./examples/datamarket
package main

import (
	"fmt"
	"log"
	"time"

	"enld"
)

func main() {
	const (
		seed         = 11
		pricePerUnit = 0.50 // dollars per clean sample
	)
	rng := enld.NewRNG(seed)

	spec := enld.CIFAR100Like(seed).Scale(0.6)
	data, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	tm, err := enld.PairNoise(spec.Classes, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enld.ApplyNoise(data, tm, rng); err != nil {
		log.Fatal(err)
	}
	inventory, pool, err := enld.SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	offers, err := enld.Shard(pool, enld.ShardSpec{
		Shards: 6, MinClasses: 10, MaxClasses: 10, Drift: 0.5,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	platform, err := enld.NewPlatform(inventory,
		enld.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("marketplace appraiser ready (setup %s)\n\n",
		platform.SetupTime.Round(time.Millisecond))

	// Held-out probe for measuring appraiser quality before/after update.
	var probe enld.Set
	for _, offer := range offers {
		probe = append(probe, offer...)
	}
	accBefore := platform.TrueAccuracy(probe)

	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}
	accumulated := map[int]bool{}
	var revenue float64
	for i, offer := range offers {
		res, err := detector.DetectFull(offer)
		if err != nil {
			log.Fatal(err)
		}
		cleanCount := len(res.Clean)
		noiseRate := float64(len(res.Noisy)) / float64(len(offer))
		price := pricePerUnit * float64(cleanCount)
		revenue += price
		fmt.Printf("offer %d: %3d samples, measured noise %5.1f%% -> pay $%.2f "+
			"(clean samples only, %s)\n",
			i, len(offer), 100*noiseRate, price, res.Process.Round(time.Millisecond))
		// Clean inventory evidence accumulates across appraisals.
		for id := range res.SelectedInventory {
			accumulated[id] = true
		}
	}
	fmt.Printf("\ntotal paid out: $%.2f\n", revenue)

	// Periodic maintenance: Algorithm 4's model update on the accumulated
	// clean inventory selection.
	fmt.Printf("\nmodel update on %d accumulated clean inventory samples...\n", len(accumulated))
	if err := platform.ModelUpdate(accumulated); err != nil {
		log.Fatal(err)
	}
	accAfter := platform.TrueAccuracy(probe)
	fmt.Printf("appraiser accuracy on held-out data: %.1f%% -> %.1f%%\n",
		100*accBefore, 100*accAfter)
}
