// Quickstart: generate a noisy benchmark, initialize an ENLD platform on
// inventory data, and screen one incremental dataset for noisy labels.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"enld"
)

func main() {
	const seed = 42

	// 1. A CIFAR100-like benchmark at reduced size, corrupted with 20% pair
	// noise (class i mislabelled as i+1).
	spec := enld.CIFAR100Like(seed).Scale(0.5)
	data, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	tm, err := enld.PairNoise(spec.Classes, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	rng := enld.NewRNG(seed)
	noisy, err := enld.ApplyNoise(data, tm, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d samples, %d classes, %d noisy labels\n",
		len(data), spec.Classes, noisy)

	// 2. Split into inventory (2/3) and an incremental pool (1/3); cut the
	// pool into small unbalanced incremental datasets as they would arrive
	// at a data platform.
	inventory, pool, err := enld.SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := enld.Shard(pool, enld.ShardSpec{
		Shards: 5, MinClasses: 10, MaxClasses: 10, Drift: 0.5,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// 3. One-off platform setup: train the general model, estimate the
	// mislabeling probabilities.
	start := time.Now()
	platform, err := enld.NewPlatform(inventory,
		enld.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform setup: %d inventory samples in %s\n",
		len(inventory), time.Since(start).Round(time.Millisecond))

	// 4. Screen each arriving dataset.
	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}
	for i, shard := range shards {
		res, err := detector.Detect(shard)
		if err != nil {
			log.Fatal(err)
		}
		// Ground truth is available here because the data is synthetic; a
		// real deployment would just act on res.Noisy.
		score := enld.EvaluateDetection(shard, res.Noisy)
		fmt.Printf("incremental dataset %d: %3d samples, %2d flagged noisy "+
			"(precision %.2f, recall %.2f) in %s\n",
			i, len(shard), len(res.Noisy),
			score.Precision, score.Recall, res.Process.Round(time.Millisecond))
	}
}
