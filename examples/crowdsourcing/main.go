// Crowdsourcing-platform scenario (§I of the paper): a labelling platform
// holds a vetted inventory and receives batches of crowd-contributed labels
// of varying quality. Each batch is screened on arrival through the
// data-lake service layer; contributors whose batches carry too much noise
// are flagged, and accepted samples flow into the inventory store.
//
//	go run ./examples/crowdsourcing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"enld"
)

// contributor models one crowd worker with a personal error rate.
type contributor struct {
	name string
	eta  float64
}

func main() {
	const seed = 7
	rng := enld.NewRNG(seed)

	// Vetted inventory: an EMNIST-like letter-recognition task.
	spec := enld.EMNISTLike(seed)
	data, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	inventory, pool, err := enld.SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		log.Fatal(err)
	}

	// The platform's persistent store holds the vetted inventory.
	store, err := enld.NewStore(enld.StoreMeta{
		Name: "letters", Classes: spec.Classes, FeatureDim: spec.FeatureDim,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := store.Add(inventory); err != nil {
		log.Fatal(err)
	}

	platform, err := enld.NewPlatform(inventory,
		enld.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform ready: %d vetted samples, setup %s\n",
		store.Len(), platform.SetupTime.Round(time.Millisecond))

	// Crowd batches: shard the pool, then re-corrupt each batch with its
	// contributor's personal error rate.
	shards, err := enld.Shard(pool, enld.ShardSpec{
		Shards: 6, MinClasses: 5, MaxClasses: 6, Drift: 0.35,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	contributors := []contributor{
		{"alice", 0.05}, {"bob", 0.15}, {"carol", 0.10},
		{"dave", 0.40}, {"erin", 0.08}, {"frank", 0.30},
	}
	for i := range shards {
		tm, err := enld.PairNoise(spec.Classes, contributors[i].eta)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := enld.ApplyNoise(shards[i], tm, rng); err != nil {
			log.Fatal(err)
		}
	}

	// Screen batches concurrently through the service layer.
	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}
	svc, err := enld.NewService(detector, 2)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	reports := svc.Run(ctx, enld.Feed(ctx, shards, 0))

	// Accept clean samples into the store; flag unreliable contributors.
	const rejectThreshold = 0.25
	for _, rep := range reports {
		if rep.Err != nil {
			log.Fatal(rep.Err)
		}
		c := contributors[rep.TaskID]
		noiseRate := float64(len(rep.Result.Noisy)) / float64(rep.Size)
		verdict := "accepted"
		if noiseRate > rejectThreshold {
			verdict = "REJECTED (unreliable contributor)"
		} else {
			var accepted enld.Set
			for _, smp := range shards[rep.TaskID] {
				if rep.Result.Clean[smp.ID] {
					accepted = append(accepted, smp)
				}
			}
			if err := store.Add(accepted); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("batch from %-6s: %3d labels, %5.1f%% flagged noisy "+
			"(true rate %4.1f%%) -> %s\n",
			c.name, rep.Size, 100*noiseRate, 100*c.eta, verdict)
	}
	fmt.Printf("store grew to %d samples\n", store.Len())
}
