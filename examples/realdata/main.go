// Real-data path: the synthetic benchmarks in the other examples stand in
// for image datasets, but the library also ingests real data. This example
// writes a CSV dataset to a temporary file (in a real deployment this would
// be your exported feature table, or LoadIDX over EMNIST's IDX files),
// loads it back with LoadCSV, compresses the raw columns with PCA, and runs
// the full platform + detection pipeline on the result.
//
//	go run ./examples/realdata
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"enld"
)

func main() {
	const seed = 31
	rng := enld.NewRNG(seed)

	// Stand-in for "your data": a 12-class tabular dataset with 40 raw
	// columns, only ~10 of which carry signal, exported to CSV.
	path := filepath.Join(os.TempDir(), "enld-realdata.csv")
	if err := writeCSVDataset(path, rng); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	raw, err := enld.LoadCSV(f, enld.CSVOptions{LabelColumn: -1, HasHeader: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d samples × %d raw columns from %s\n", len(raw), len(raw[0].X), path)

	// Compress the raw columns: fit PCA on everything (in production: on
	// the inventory only), keep 10 components.
	pca, err := enld.FitPCA(raw, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	data, err := pca.Apply(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PCA reduced features to %d dimensions\n", len(data[0].X))

	// Corrupt labels, split, and run the standard pipeline.
	const classes = 12
	tm, err := enld.PairNoise(classes, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := enld.ApplyNoise(data, tm, rng); err != nil {
		log.Fatal(err)
	}
	inventory, pool, err := enld.SplitRatio(data, 2.0/3.0, rng)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := enld.Shard(pool, enld.ShardSpec{Shards: 3, MinClasses: 6, MaxClasses: 8}, rng)
	if err != nil {
		log.Fatal(err)
	}
	platform, err := enld.NewPlatform(inventory, enld.DefaultPlatformConfig(classes, 10, seed))
	if err != nil {
		log.Fatal(err)
	}
	detector := &enld.ENLD{Platform: platform, Config: enld.DefaultENLDConfig(seed)}
	for i, shard := range shards {
		res, err := detector.Detect(shard)
		if err != nil {
			log.Fatal(err)
		}
		score := enld.EvaluateDetection(shard, res.Noisy)
		fmt.Printf("dataset %d: %3d samples, %2d flagged (P=%.2f R=%.2f)\n",
			i, len(shard), len(res.Noisy), score.Precision, score.Recall)
	}
}

// writeCSVDataset emits a header row plus samples of 12 Gaussian classes
// embedded in 40 columns: 10 informative, 30 noise.
func writeCSVDataset(path string, rng *enld.RNG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	const (
		classes     = 12
		perClass    = 60
		informative = 10
		total       = 40
	)
	// Header.
	for c := 0; c < total; c++ {
		fmt.Fprintf(f, "col%d,", c)
	}
	fmt.Fprintln(f, "label")
	// Class centers in the informative subspace.
	centers := make([][]float64, classes)
	for c := range centers {
		centers[c] = rng.NormVec(make([]float64, informative), 0, 4)
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			for d := 0; d < total; d++ {
				v := rng.Norm()
				if d < informative {
					v += centers[c][d]
				}
				fmt.Fprintf(f, "%.5f,", v)
			}
			fmt.Fprintf(f, "%d\n", c)
		}
	}
	return nil
}
