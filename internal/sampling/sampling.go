// Package sampling implements contrastive sampling (Algorithm 2 of the
// paper) and the alternative sample-selection policies of §V-A5 that the
// Fig. 10 experiment compares it against.
//
// All strategies answer the same question: given the ambiguous samples A of
// an incremental dataset and a pool of high-quality inventory samples H',
// which pool samples should join the fine-tuning set? Contrastive sampling
// estimates each ambiguous sample's true label from the conditional
// probability P̃(y*|ỹ) and picks the k nearest high-quality samples of that
// label in feature space; the baselines pick by confidence, entropy, or at
// random.
package sampling

import (
	"errors"
	"fmt"
	"sort"

	"enld/internal/ann"
	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/kdtree"
	"enld/internal/mat"
	"enld/internal/noise"
	"enld/internal/obs"
	"enld/internal/parallel"
)

// Request carries everything a strategy may need. Feature and confidence
// slices are parallel to their sample sets and must be computed under the
// *current* model, since fine-grained NLD re-samples after every iteration
// with updated representations.
type Request struct {
	// Ambiguous is the set A of samples whose predicted label disagrees
	// with their observed label, with features under the current model.
	Ambiguous         dataset.Set
	AmbiguousFeatures [][]float64

	// Pool is H', the high-quality inventory candidates restricted to
	// label(D), with per-sample features, max-confidence and entropy.
	// Contrastive sampling draws from this curated pool.
	Pool            dataset.Set
	PoolFeatures    [][]float64
	PoolConfidences []float64
	PoolEntropies   []float64
	// PoolPredicted is argmax M(x,θ) per pool sample; the Pseudo policy
	// substitutes it for the observed label.
	PoolPredicted []int

	// RawPool is the uncurated candidate set I_c the §V-A5 baseline
	// policies select from ("uniformly and randomly selects samples in
	// I_c", "... according to outputs of current model in I_c"): no
	// high-quality filter, so it contains noisy inventory samples. When
	// empty, baseline policies fall back to Pool.
	RawPool            dataset.Set
	RawPoolConfidences []float64
	RawPoolEntropies   []float64
	RawPoolPredicted   []int

	// Cond is the estimated conditional probability P̃(y* = j | ỹ = i).
	Cond noise.Conditional
	// K is the contrastive-samples-size hyperparameter: each strategy
	// selects (up to) K·|A| samples.
	K int

	RNG   *mat.RNG
	Meter *cost.Meter

	// Obs, when set, receives phase spans ("detect/estimate" for the
	// conditional-probability label draws, "detect/knn" for index build and
	// neighbor queries) and instruments the k-NN worker pool. Nil disables
	// all of it.
	Obs *obs.Registry

	// Workers bounds the parallel k-NN fan-out over ambiguous samples
	// (0 = all cores). Selection is identical at every worker count: the
	// label draws are consumed from the RNG sequentially before the
	// parallel section, each ambiguous sample's neighbors are written to
	// its own slot, and the result is assembled in input order.
	Workers int
}

// Validate checks the request's internal consistency.
func (r *Request) Validate() error {
	switch {
	case r.K <= 0:
		return fmt.Errorf("sampling: k = %d", r.K)
	case r.RNG == nil:
		return errors.New("sampling: nil RNG")
	case len(r.AmbiguousFeatures) != len(r.Ambiguous):
		return errors.New("sampling: ambiguous features length mismatch")
	case len(r.PoolFeatures) != len(r.Pool):
		return errors.New("sampling: pool features length mismatch")
	case len(r.PoolConfidences) != len(r.Pool):
		return errors.New("sampling: pool confidences length mismatch")
	case len(r.PoolEntropies) != len(r.Pool):
		return errors.New("sampling: pool entropies length mismatch")
	case len(r.PoolPredicted) != len(r.Pool):
		return errors.New("sampling: pool predictions length mismatch")
	case len(r.RawPoolConfidences) != len(r.RawPool):
		return errors.New("sampling: raw pool confidences length mismatch")
	case len(r.RawPoolEntropies) != len(r.RawPool):
		return errors.New("sampling: raw pool entropies length mismatch")
	case len(r.RawPoolPredicted) != len(r.RawPool):
		return errors.New("sampling: raw pool predictions length mismatch")
	}
	return nil
}

// rawView returns the candidate set baseline policies select from: RawPool
// when provided, else the curated pool.
func (r *Request) rawView() (dataset.Set, []float64, []float64, []int) {
	if len(r.RawPool) > 0 {
		return r.RawPool, r.RawPoolConfidences, r.RawPoolEntropies, r.RawPoolPredicted
	}
	return r.Pool, r.PoolConfidences, r.PoolEntropies, r.PoolPredicted
}

// budget returns the target selection size K·|A|, capped at poolSize.
func (r *Request) budget(poolSize int) int {
	b := r.K * len(r.Ambiguous)
	if b > poolSize {
		b = poolSize
	}
	return b
}

// Strategy selects contrastive samples for fine-tuning. The returned set may
// contain repeated samples: a pool sample chosen for several ambiguous
// samples appears once per choice, which re-weights it in the subsequent
// training exactly as §IV-D describes.
type Strategy interface {
	Name() string
	Select(r *Request) (dataset.Set, error)
}

// Contrastive is the paper's strategy (Algorithm 2). For each ambiguous
// sample it draws a candidate true label j ~ P̃(·|ỹ) restricted to the
// pool's labels, then takes the k nearest pool samples of label j by
// Euclidean distance in feature space, via per-class KD-trees.
type Contrastive struct {
	// SameLabel short-circuits the probability draw and uses j = ỹ directly.
	// This is the ENLD-4 ablation of §V-I.
	SameLabel bool
	// Brute disables the per-class KD-trees and scans the pool linearly —
	// the O(c·|A|·|H'|) baseline of §IV-D's implementation note, kept for
	// the complexity-ablation experiment and differential testing.
	Brute bool
	// ANN replaces the exact per-class KD-trees with the approximate IVF
	// index of internal/ann. Neighbor sets may differ from the exact path
	// (recall@k ≥ 0.95 by the ann package's guardrail test), so detection
	// results are close but not identical — the end-to-end F1 budget is
	// pinned by a core-level test. Mutually exclusive with Brute.
	ANN bool
}

// Name implements Strategy.
func (c Contrastive) Name() string {
	switch {
	case c.SameLabel:
		return "contrastive-samelabel"
	case c.Brute:
		return "contrastive-brute"
	case c.ANN:
		return "contrastive-ann"
	default:
		return "contrastive"
	}
}

// Select implements Strategy.
func (c Contrastive) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if c.Brute && c.ANN {
		return nil, errors.New("sampling: Contrastive.Brute and ANN are mutually exclusive")
	}
	if len(r.Ambiguous) == 0 || len(r.Pool) == 0 {
		return nil, nil
	}
	// Group pool points by label (§IV-D implementation note).
	byLabel := make(map[int][]kdtree.Point)
	for i, smp := range r.Pool {
		if smp.Observed == dataset.Missing {
			continue
		}
		byLabel[smp.Observed] = append(byLabel[smp.Observed], kdtree.Point{Vec: r.PoolFeatures[i], Payload: i})
	}
	poolLabels := make(map[int]bool, len(byLabel))
	for l := range byLabel {
		poolLabels[l] = true
	}
	// Draw every candidate label sequentially first so the RNG stream is
	// consumed in input order regardless of how the queries are scheduled.
	// (The index build below consumes no randomness, so drawing before it
	// leaves the RNG stream unchanged.)
	estSpan := r.Obs.StartSpan("detect/estimate")
	draws := make([]int, len(r.Ambiguous))
	for i, smp := range r.Ambiguous {
		if c.SameLabel {
			draws[i] = smp.Observed
		} else {
			draws[i] = r.Cond.Sample(smp.Observed, poolLabels, r.RNG)
		}
	}
	estSpan.End()
	// Build one index per label unless running the brute-force ablation —
	// exact KD-trees by default, approximate IVF when c.ANN — then fan the
	// k-NN queries out across workers. Each worker reuses its own scratch
	// (no per-query allocation) and writes each sample's neighbors to that
	// sample's slot, so assembly order is fixed.
	knnSpan := r.Obs.StartSpan("detect/knn")
	defer knnSpan.End()
	var index *kdtree.ClassIndex
	var annIndex *ann.ClassIndex
	switch {
	case c.ANN:
		var err error
		annIndex, err = ann.BuildClassIndex(byLabel)
		if err != nil {
			return nil, err
		}
	case !c.Brute:
		var err error
		index, err = kdtree.BuildClassIndex(byLabel)
		if err != nil {
			return nil, err
		}
	}
	pool := parallel.New(r.Workers).Instrument(r.Obs, "knn")
	perSample := make([]dataset.Set, len(r.Ambiguous))
	scratch := make([]kdtree.Scratch, pool.Workers())
	annScratch := make([]ann.Scratch, pool.Workers())
	errs := make([]error, pool.Workers())
	pool.ForEach(len(r.Ambiguous), func(worker, i int) {
		if errs[worker] != nil {
			return
		}
		j := draws[i]
		var nbrs []kdtree.Neighbor
		var err error
		switch {
		case c.Brute:
			nbrs = kdtree.BruteKNearest(byLabel[j], r.AmbiguousFeatures[i], r.K)
		case c.ANN:
			nbrs, err = annIndex.KNearestInto(&annScratch[worker], j, r.AmbiguousFeatures[i], r.K)
		default:
			nbrs, err = index.KNearestInto(&scratch[worker], j, r.AmbiguousFeatures[i], r.K)
		}
		if err != nil {
			errs[worker] = err
			return
		}
		if len(nbrs) > 0 {
			sel := make(dataset.Set, len(nbrs))
			for n, nb := range nbrs {
				sel[n] = r.Pool[nb.Point.Payload]
			}
			perSample[i] = sel
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if r.Meter != nil {
		r.Meter.KNNQueries += int64(len(r.Ambiguous))
	}
	out := make(dataset.Set, 0, r.K*len(r.Ambiguous))
	for _, sel := range perSample {
		out = append(out, sel...)
	}
	return out, nil
}

// Random selects K·|A| samples uniformly at random from the raw candidate
// set I_c (Random-ENLD).
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Select implements Strategy.
func (Random) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pool, _, _, _ := r.rawView()
	b := r.budget(len(pool))
	if b == 0 {
		return nil, nil
	}
	perm := r.RNG.Perm(len(pool))
	out := make(dataset.Set, 0, b)
	for _, idx := range perm[:b] {
		out = append(out, pool[idx])
	}
	return out, nil
}

// byScore returns the top-budget samples of pool ranked by score (descending
// when desc), breaking score ties by pool index for determinism.
func byScore(r *Request, pool dataset.Set, scores []float64, desc bool) dataset.Set {
	b := r.budget(len(pool))
	if b == 0 {
		return nil
	}
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		sa, sc := scores[idx[a]], scores[idx[c]]
		if sa != sc {
			if desc {
				return sa > sc
			}
			return sa < sc
		}
		return idx[a] < idx[c]
	})
	out := make(dataset.Set, 0, b)
	for _, i := range idx[:b] {
		out = append(out, pool[i])
	}
	return out
}

// HighestConfidence selects the I_c samples the current model is most
// confident about (HC-ENLD) — likely-clean references.
type HighestConfidence struct{}

// Name implements Strategy.
func (HighestConfidence) Name() string { return "highest-confidence" }

// Select implements Strategy.
func (HighestConfidence) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pool, conf, _, _ := r.rawView()
	return byScore(r, pool, conf, true), nil
}

// LeastConfidence selects the I_c samples the model is least confident about
// (LC-ENLD) — the active-learning uncertainty heuristic, which §V-D shows
// transfers poorly to noisy label detection.
type LeastConfidence struct{}

// Name implements Strategy.
func (LeastConfidence) Name() string { return "least-confidence" }

// Select implements Strategy.
func (LeastConfidence) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pool, conf, _, _ := r.rawView()
	return byScore(r, pool, conf, false), nil
}

// Entropy selects the I_c samples with the highest predictive entropy
// (Entropy-ENLD).
type Entropy struct{}

// Name implements Strategy.
func (Entropy) Name() string { return "entropy" }

// Select implements Strategy.
func (Entropy) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pool, _, ent, _ := r.rawView()
	return byScore(r, pool, ent, true), nil
}

// Pseudo selects the highest-confidence I_c samples and replaces their
// observed labels with the model's predictions (Pseudo-ENLD).
type Pseudo struct{}

// Name implements Strategy.
func (Pseudo) Name() string { return "pseudo" }

// Select implements Strategy.
func (Pseudo) Select(r *Request) (dataset.Set, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	pool, conf, _, pred := r.rawView()
	chosen := byScore(r, pool, conf, true)
	// byScore returns copies of the samples, so relabeling is safe, but the
	// predicted labels must be looked up by identity in the pool.
	predByID := make(map[int]int, len(pool))
	for i, smp := range pool {
		predByID[smp.ID] = pred[i]
	}
	for i := range chosen {
		chosen[i].Observed = predByID[chosen[i].ID]
	}
	return chosen, nil
}

// All returns every strategy of §V-A5 keyed by name, with the paper's
// contrastive sampling first.
func All() []Strategy {
	return []Strategy{
		Contrastive{},
		Random{},
		HighestConfidence{},
		LeastConfidence{},
		Entropy{},
		Pseudo{},
	}
}
