package sampling

import (
	"math"
	"testing"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/noise"
)

// makeRequest builds a request with a pool of two well-separated label
// clusters: label 0 near the origin, label 1 near (10, 10). One ambiguous
// sample sits on each cluster.
func makeRequest(k int) *Request {
	pool := dataset.Set{}
	var feats [][]float64
	var confs, ents []float64
	var preds []int
	rng := mat.NewRNG(42)
	for i := 0; i < 10; i++ {
		pool = append(pool, dataset.Sample{ID: i, X: []float64{0, 0}, Observed: 0, True: 0})
		feats = append(feats, []float64{rng.Norm() * 0.1, rng.Norm() * 0.1})
		confs = append(confs, 0.5+float64(i)/100)
		ents = append(ents, 1.0-float64(i)/100)
		preds = append(preds, 0)
	}
	for i := 10; i < 20; i++ {
		pool = append(pool, dataset.Sample{ID: i, X: []float64{10, 10}, Observed: 1, True: 1})
		feats = append(feats, []float64{10 + rng.Norm()*0.1, 10 + rng.Norm()*0.1})
		confs = append(confs, 0.9+float64(i)/1000)
		ents = append(ents, 0.1+float64(i)/1000)
		preds = append(preds, 1)
	}
	amb := dataset.Set{
		{ID: 100, X: []float64{0, 0}, Observed: 0, True: 0},
		{ID: 101, X: []float64{10, 10}, Observed: 1, True: 1},
	}
	ambFeats := [][]float64{{0.05, 0.05}, {10.05, 10.05}}
	cond := noise.Conditional{{1, 0}, {0, 1}} // labels are reliable
	return &Request{
		Ambiguous:         amb,
		AmbiguousFeatures: ambFeats,
		Pool:              pool,
		PoolFeatures:      feats,
		PoolConfidences:   confs,
		PoolEntropies:     ents,
		PoolPredicted:     preds,
		Cond:              cond,
		K:                 k,
		RNG:               mat.NewRNG(7),
	}
}

func TestRequestValidate(t *testing.T) {
	r := makeRequest(3)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := makeRequest(0)
	if err := bad.Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	bad = makeRequest(2)
	bad.RNG = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil rng accepted")
	}
	bad = makeRequest(2)
	bad.PoolFeatures = bad.PoolFeatures[:1]
	if err := bad.Validate(); err == nil {
		t.Error("mismatched features accepted")
	}
}

func TestContrastiveSelectsNearestOfEstimatedLabel(t *testing.T) {
	r := makeRequest(3)
	var meter cost.Meter
	r.Meter = &meter
	got, err := Contrastive{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	// 2 ambiguous × k=3.
	if len(got) != 6 {
		t.Fatalf("selected %d samples", len(got))
	}
	// With the identity conditional, ambiguous sample near cluster 0 must
	// draw label-0 pool samples, and near cluster 1 label-1 samples.
	for i, smp := range got {
		wantLabel := 0
		if i >= 3 {
			wantLabel = 1
		}
		if smp.Observed != wantLabel {
			t.Fatalf("selection %d has label %d, want %d", i, smp.Observed, wantLabel)
		}
	}
	if meter.KNNQueries != 2 {
		t.Fatalf("KNN queries = %d", meter.KNNQueries)
	}
}

func TestContrastiveNearestByFeature(t *testing.T) {
	r := makeRequest(1)
	got, err := Contrastive{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("selected %d", len(got))
	}
	// Each selected sample must be the feature-space nearest of its label.
	for which, amb := range r.AmbiguousFeatures {
		best, bestD := -1, math.Inf(1)
		for i := range r.Pool {
			if r.Pool[i].Observed != got[which].Observed {
				continue
			}
			if d := mat.SqDist(amb, r.PoolFeatures[i]); d < bestD {
				best, bestD = i, d
			}
		}
		if got[which].ID != r.Pool[best].ID {
			t.Fatalf("ambiguous %d: got ID %d, nearest is %d", which, got[which].ID, r.Pool[best].ID)
		}
	}
}

func TestContrastiveEmptyInputs(t *testing.T) {
	r := makeRequest(2)
	r.Ambiguous, r.AmbiguousFeatures = nil, nil
	got, err := Contrastive{}.Select(r)
	if err != nil || got != nil {
		t.Fatalf("empty ambiguous: %v, %v", got, err)
	}
	r = makeRequest(2)
	r.Pool, r.PoolFeatures, r.PoolConfidences, r.PoolEntropies, r.PoolPredicted =
		nil, nil, nil, nil, nil
	got, err = Contrastive{}.Select(r)
	if err != nil || got != nil {
		t.Fatalf("empty pool: %v, %v", got, err)
	}
}

func TestContrastiveSameLabelAblation(t *testing.T) {
	r := makeRequest(2)
	// Flip the conditional so estimated labels would cross clusters; the
	// SameLabel variant must ignore it.
	r.Cond = noise.Conditional{{0, 1}, {1, 0}}
	got, err := Contrastive{SameLabel: true}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, smp := range got {
		wantLabel := 0
		if i >= 2 {
			wantLabel = 1
		}
		if smp.Observed != wantLabel {
			t.Fatalf("SameLabel selection %d has label %d", i, smp.Observed)
		}
	}
	// The probabilistic variant with the flipped conditional must select the
	// *other* cluster.
	got, err = Contrastive{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, smp := range got {
		wantLabel := 1
		if i >= 2 {
			wantLabel = 0
		}
		if smp.Observed != wantLabel {
			t.Fatalf("flipped-cond selection %d has label %d", i, smp.Observed)
		}
	}
}

func TestRandomBudgetAndMembership(t *testing.T) {
	r := makeRequest(3)
	got, err := Random{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("selected %d", len(got))
	}
	seen := map[int]bool{}
	for _, smp := range got {
		if smp.ID < 0 || smp.ID >= 20 {
			t.Fatalf("selected non-pool sample %d", smp.ID)
		}
		if seen[smp.ID] {
			t.Fatalf("random selected %d twice", smp.ID)
		}
		seen[smp.ID] = true
	}
}

func TestRandomBudgetCappedAtPool(t *testing.T) {
	r := makeRequest(100) // 2*100 > pool of 20
	got, err := Random{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("selected %d, want full pool", len(got))
	}
}

func TestHighestConfidence(t *testing.T) {
	r := makeRequest(1) // budget 2
	got, err := HighestConfidence{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("selected %d", len(got))
	}
	// Highest confidences are the last pool entries (0.9 + i/1000).
	if got[0].ID != 19 || got[1].ID != 18 {
		t.Fatalf("HC selected IDs %d, %d", got[0].ID, got[1].ID)
	}
}

func TestLeastConfidence(t *testing.T) {
	r := makeRequest(1)
	got, err := LeastConfidence{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("LC selected IDs %d, %d", got[0].ID, got[1].ID)
	}
}

func TestEntropyPolicy(t *testing.T) {
	r := makeRequest(1)
	got, err := Entropy{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	// Highest entropies are pool entries 0 and 1 (1.0 - i/100).
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("Entropy selected IDs %d, %d", got[0].ID, got[1].ID)
	}
}

func TestPseudoRelabels(t *testing.T) {
	r := makeRequest(1)
	// Make the model disagree with observed labels for the top-confidence
	// samples.
	r.PoolPredicted[19] = 0
	r.PoolPredicted[18] = 0
	got, err := Pseudo{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range got {
		if smp.Observed != 0 {
			t.Fatalf("pseudo label not applied: %+v", smp)
		}
	}
	// The original pool must be untouched.
	if r.Pool[19].Observed != 1 {
		t.Fatal("Pseudo mutated the pool")
	}
}

func TestAllStrategiesRunAndAreNamed(t *testing.T) {
	names := map[string]bool{}
	for _, s := range All() {
		if s.Name() == "" {
			t.Fatal("unnamed strategy")
		}
		if names[s.Name()] {
			t.Fatalf("duplicate name %q", s.Name())
		}
		names[s.Name()] = true
		r := makeRequest(2)
		got, err := s.Select(r)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(got) == 0 {
			t.Fatalf("%s selected nothing", s.Name())
		}
	}
	if !names["contrastive"] {
		t.Fatal("contrastive strategy missing from All()")
	}
}

func TestStrategiesValidateRequests(t *testing.T) {
	for _, s := range All() {
		r := makeRequest(2)
		r.PoolEntropies = nil
		if _, err := s.Select(r); err == nil {
			t.Errorf("%s accepted invalid request", s.Name())
		}
	}
}

func TestContrastiveBruteMatchesKDTree(t *testing.T) {
	// The brute-force ablation must select the exact same samples when fed
	// the same RNG stream (both draw identical labels, then exact k-NN).
	a, err := Contrastive{}.Select(makeRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Contrastive{Brute: true}.Select(makeRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	// Compare as label multisets per rank group (ties in distance may order
	// differently between implementations, but labels and distances agree).
	for i := range a {
		if a[i].Observed != b[i].Observed {
			t.Fatalf("selection %d differs: label %d vs %d", i, a[i].Observed, b[i].Observed)
		}
	}
}

func TestContrastiveANNMatchesExactOnSeparatedPool(t *testing.T) {
	// On the small well-separated pool the IVF index finds the same
	// neighbors as the exact KD-trees (ten points per label means every
	// list of the candidate label is scanned), so the selections agree.
	a, err := Contrastive{}.Select(makeRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Contrastive{ANN: true}.Select(makeRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("selection %d differs: ID %d vs %d", i, a[i].ID, b[i].ID)
		}
	}
}

func TestContrastiveBruteANNExclusive(t *testing.T) {
	if _, err := (Contrastive{Brute: true, ANN: true}).Select(makeRequest(2)); err == nil {
		t.Fatal("Brute+ANN accepted")
	}
}

func TestContrastiveNames(t *testing.T) {
	if (Contrastive{}).Name() != "contrastive" {
		t.Error("default name")
	}
	if (Contrastive{SameLabel: true}).Name() != "contrastive-samelabel" {
		t.Error("samelabel name")
	}
	if (Contrastive{Brute: true}).Name() != "contrastive-brute" {
		t.Error("brute name")
	}
	if (Contrastive{ANN: true}).Name() != "contrastive-ann" {
		t.Error("ann name")
	}
}

func TestContrastiveSkipsMissingLabelPool(t *testing.T) {
	r := makeRequest(2)
	for i := range r.Pool {
		if r.Pool[i].Observed == 1 {
			r.Pool[i].Observed = dataset.Missing
		}
	}
	got, err := Contrastive{}.Select(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range got {
		if smp.Observed == dataset.Missing {
			t.Fatal("selected a missing-label sample")
		}
	}
}
