package sampling

import (
	"testing"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/noise"
)

// bigRequest builds a request with three label clusters, enough ambiguous
// samples that the parallel fan-out spans several chunks, and a genuinely
// noisy conditional so the sequential label pre-draws are load-bearing.
func bigRequest(k int, workers int) *Request {
	rng := mat.NewRNG(90)
	centers := [][]float64{{0, 0}, {8, 0}, {0, 8}}
	pool := dataset.Set{}
	var feats [][]float64
	var confs, ents []float64
	var preds []int
	id := 0
	for label, c := range centers {
		for i := 0; i < 40; i++ {
			pool = append(pool, dataset.Sample{ID: id, X: c, Observed: label, True: label})
			feats = append(feats, []float64{c[0] + rng.Norm(), c[1] + rng.Norm()})
			confs = append(confs, rng.Float64())
			ents = append(ents, rng.Float64())
			preds = append(preds, label)
			id++
		}
	}
	amb := dataset.Set{}
	var ambFeats [][]float64
	for i := 0; i < 33; i++ {
		label := i % 3
		c := centers[label]
		amb = append(amb, dataset.Sample{ID: 1000 + i, X: c, Observed: label, True: label})
		ambFeats = append(ambFeats, []float64{c[0] + rng.Norm(), c[1] + rng.Norm()})
	}
	cond := noise.Conditional{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	}
	return &Request{
		Ambiguous:         amb,
		AmbiguousFeatures: ambFeats,
		Pool:              pool,
		PoolFeatures:      feats,
		PoolConfidences:   confs,
		PoolEntropies:     ents,
		PoolPredicted:     preds,
		Cond:              cond,
		K:                 k,
		RNG:               mat.NewRNG(91),
		Workers:           workers,
	}
}

// TestContrastiveParallelIdentical is the sampling differential test: the
// selection (IDs, order) and the cost-meter counts must be identical at
// worker counts 1, 2 and 8 for every Contrastive variant.
func TestContrastiveParallelIdentical(t *testing.T) {
	variants := []Contrastive{{}, {SameLabel: true}, {Brute: true}}
	for _, c := range variants {
		run := func(workers int) (dataset.Set, cost.Meter) {
			r := bigRequest(3, workers)
			var m cost.Meter
			r.Meter = &m
			got, err := c.Select(r)
			if err != nil {
				t.Fatal(err)
			}
			return got, m
		}
		seq, seqMeter := run(1)
		if len(seq) == 0 {
			t.Fatalf("%s: sequential run selected nothing", c.Name())
		}
		for _, workers := range []int{2, 8} {
			par, parMeter := run(workers)
			if len(par) != len(seq) {
				t.Fatalf("%s workers=%d: %d selections, want %d", c.Name(), workers, len(par), len(seq))
			}
			for i := range seq {
				if par[i].ID != seq[i].ID || par[i].Observed != seq[i].Observed {
					t.Fatalf("%s workers=%d: selection %d is sample %d, want %d",
						c.Name(), workers, i, par[i].ID, seq[i].ID)
				}
			}
			if parMeter != seqMeter {
				t.Fatalf("%s workers=%d: meter %+v, want %+v", c.Name(), workers, parMeter, seqMeter)
			}
		}
	}
}

// TestContrastiveParallelEmptyAmbiguous pins the no-op edge case at several
// worker counts.
func TestContrastiveParallelEmptyAmbiguous(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := bigRequest(2, workers)
		r.Ambiguous = nil
		r.AmbiguousFeatures = nil
		got, err := Contrastive{}.Select(r)
		if err != nil || got != nil {
			t.Fatalf("workers=%d: %v, %v", workers, got, err)
		}
	}
}
