package fsio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	want := []byte("hello durable world")
	if err := WriteFileBytesAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileBytesAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytesAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("read back %q, want v2", got)
	}
}

// TestWriteFileAtomicFailedWriteKeepsPrevious is the crash-safety contract:
// a writer that dies partway through must leave the previous file intact and
// no temporary behind.
func TestWriteFileAtomicFailedWriteKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileBytesAtomic(path, []byte("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got err %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Fatalf("previous contents clobbered: %q", got)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("stray temporaries left behind: %v", names)
	}
}

func TestWriteFileAtomicMissingDir(t *testing.T) {
	err := WriteFileBytesAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
