// Package fsio provides the crash-safety file primitives shared by every
// durable writer in this repository: the nn snapshot files, the platform
// checkpoint, the lake inventory backends and the segment-log manifest all
// persist through the same tmp+fsync+rename sequence, so a crash at any
// instant leaves either the previous file intact or a stray temporary —
// never a torn file at the destination path.
package fsio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the output of write to path atomically: the bytes
// go to a temporary file in the same directory, are fsynced, and only then
// renamed over path, followed by a best-effort fsync of the directory so the
// rename itself is durable. If write (or any later step) fails, the
// temporary is removed and path is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("fsio: write %s: %w", path, err)
	}
	SyncDir(dir)
	return nil
}

// WriteFileBytesAtomic is WriteFileAtomic for callers that already hold the
// full contents in memory.
func WriteFileBytesAtomic(path string, data []byte) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("fsio: write %s: %w", path, err)
		}
		return nil
	})
}

// SyncDir fsyncs a directory so a just-completed rename or create within it
// survives power loss. Errors are swallowed: directory fsync is unsupported
// on some filesystems and the rename itself has already succeeded.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
