package cost

import (
	"strings"
	"testing"
	"time"
)

func TestMeterAdd(t *testing.T) {
	var m Meter
	m.Add(Meter{ForwardPasses: 3, TrainSampleVisits: 10, ParamUpdates: 2, KNNQueries: 100})
	m.Add(Meter{ForwardPasses: 1, TrainSampleVisits: 5})
	if m.ForwardPasses != 4 || m.TrainSampleVisits != 15 || m.ParamUpdates != 2 || m.KNNQueries != 100 {
		t.Fatalf("Meter = %+v", m)
	}
}

func TestMeterTotalWeighting(t *testing.T) {
	a := Meter{TrainSampleVisits: 100}
	b := Meter{ForwardPasses: 100}
	if a.Total() <= b.Total() {
		t.Fatal("training visits must dominate forward passes")
	}
	c := Meter{KNNQueries: 100}
	if b.Total() <= c.Total() {
		t.Fatal("forward passes must dominate knn queries")
	}
}

func TestMeterString(t *testing.T) {
	m := Meter{TrainSampleVisits: 7, ForwardPasses: 1, ParamUpdates: 2, KNNQueries: 3}
	s := m.String()
	for _, want := range []string{"train=7", "fwd=1", "updates=2", "knn=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Fatal("stopwatch did not advance")
	}
}
