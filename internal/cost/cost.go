// Package cost provides deterministic work accounting for the detection
// methods, so the efficiency comparisons of Fig. 8 and Fig. 12 can be
// reported both as wall-clock time (hardware-dependent) and as analytic
// counts (hardware-independent).
//
// The paper's headline efficiency claim — ENLD processes an incremental
// dataset 3.65×–4.97× faster than TopoFilter — comes from training-set size:
// ENLD fine-tunes on k·|A| contrastive samples while TopoFilter trains on
// the full label-related inventory subset. Counting sample visits exposes
// that ratio independent of the host machine.
package cost

import (
	"fmt"
	"time"
)

// Meter accumulates work counters. The zero value is ready to use.
// Meters are not safe for concurrent use; each detector run owns one.
type Meter struct {
	// ForwardPasses counts inference-only forward evaluations.
	ForwardPasses int64
	// TrainSampleVisits counts forward+backward passes during training —
	// the dominant cost in every method here.
	TrainSampleVisits int64
	// ParamUpdates counts optimizer steps (mini-batches applied).
	ParamUpdates int64
	// KNNQueries counts k-nearest-neighbour queries.
	KNNQueries int64
}

// Add merges other's counts into m.
func (m *Meter) Add(other Meter) {
	m.ForwardPasses += other.ForwardPasses
	m.TrainSampleVisits += other.TrainSampleVisits
	m.ParamUpdates += other.ParamUpdates
	m.KNNQueries += other.KNNQueries
}

// Total returns a single scalar work figure: training visits dominate, with
// forward passes weighted at a third (backprop roughly triples the cost of a
// forward evaluation) and k-NN queries at a hundredth.
func (m *Meter) Total() float64 {
	return float64(m.TrainSampleVisits) +
		float64(m.ForwardPasses)/3 +
		float64(m.KNNQueries)/100
}

// String renders the counters compactly.
func (m *Meter) String() string {
	return fmt.Sprintf("train=%d fwd=%d updates=%d knn=%d",
		m.TrainSampleVisits, m.ForwardPasses, m.ParamUpdates, m.KNNQueries)
}

// Timing separates one-off setup cost from per-request processing cost,
// matching the paper's "setup time" (model initialization) versus "process
// time" (waiting time for one incremental dataset's result) split in §V-A3.
type Timing struct {
	Setup   time.Duration
	Process time.Duration
}

// Stopwatch measures elapsed wall-clock time.
type Stopwatch struct{ start time.Time }

// StartStopwatch begins timing.
func StartStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Elapsed returns the time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }
