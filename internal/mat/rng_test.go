package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws in 100", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	child := r.Split()
	// The child stream must not replay the parent's continuation.
	parentNext := make([]uint64, 50)
	for i := range parentNext {
		parentNext[i] = r.Uint64()
	}
	for i := 0; i < 50; i++ {
		v := child.Uint64()
		for _, p := range parentNext {
			if v == p {
				t.Fatalf("child draw %d collides with parent stream", i)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormVec(t *testing.T) {
	r := NewRNG(17)
	v := r.NormVec(make([]float64, 50000), 3, 2)
	m := Mean(v)
	s := Std(v)
	if math.Abs(m-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", m)
	}
	if math.Abs(s-2) > 0.05 {
		t.Errorf("std = %v, want ~2", s)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(23)
	p := []int{5, 5, 7, 9, 1}
	orig := map[int]int{}
	for _, v := range p {
		orig[v]++
	}
	r.Shuffle(p)
	got := map[int]int{}
	for _, v := range p {
		got[v]++
	}
	for k, c := range orig {
		if got[k] != c {
			t.Fatalf("element %d count changed: %d -> %d", k, c, got[k])
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{0.2, 0.2}, // the paper's mixup setting
		{2, 5},
		{1, 1},
		{0.5, 3},
	}
	r := NewRNG(29)
	for _, c := range cases {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Beta(c.a, c.b)
			if v < 0 || v > 1 {
				t.Fatalf("Beta(%v,%v) out of range: %v", c.a, c.b, v)
			}
			sum += v
		}
		want := c.a / (c.a + c.b)
		if got := sum / n; math.Abs(got-want) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", c.a, c.b, got, want)
		}
	}
}

func TestGammaMeanVariance(t *testing.T) {
	r := NewRNG(31)
	for _, shape := range []float64{0.5, 1, 2.5, 9} {
		const n = 100000
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(shape)
			if v < 0 {
				t.Fatalf("Gamma(%v) negative: %v", shape, v)
			}
			sum += v
			sq += v * v
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("Gamma(%v) mean = %v", shape, mean)
		}
		if math.Abs(variance-shape) > 0.1*shape+0.05 {
			t.Errorf("Gamma(%v) variance = %v", shape, variance)
		}
	}
}

func TestBetaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Beta(0, 1) did not panic")
		}
	}()
	NewRNG(1).Beta(0, 1)
}

// Property: Perm always yields a bijection, for arbitrary seeds and sizes.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
