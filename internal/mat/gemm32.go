package mat

// float32 matrices and the forward-only GEMM they need.
//
// The float32 path exists for one purpose (DESIGN.md §4): forward passes
// whose outputs feed *ranking* — confidences and features consumed by
// argmax, top-k selection or neighbor distances — where a ~1e-7 relative
// perturbation cannot flip decisions that the detection pipeline's
// guardrail tests don't already tolerate. Training never runs in float32.
//
// Within the float32 path the determinism story is the same as float64:
// each output element accumulates by a sequential k-loop of single-rounded
// float32 multiplies and adds, the SIMD kernel (gemm_amd64.s) uses separate
// VMULPS/VADDPS so it rounds identically, and row splits cannot reorder any
// element's additions. float32 results are therefore bit-identical at any
// worker count and with SIMD on or off — they are simply a different,
// versioned numeric profile from the float64 reference.

// Matrix32 is a dense row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 allocates a zeroed rows×cols matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Resize reshapes m to rows×cols, reusing the backing array when it has
// capacity. Contents are unspecified after a resize; callers zero or fill.
func (m *Matrix32) Resize(rows, cols int) {
	m.Rows, m.Cols = rows, cols
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float32, need)
	} else {
		m.Data = m.Data[:need]
	}
}

// Row returns row i as a slice sharing the matrix's backing array.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Zero sets every element to zero.
func (m *Matrix32) Zero() { clear(m.Data) }

// From reshapes m to src's shape and fills it with src's values rounded to
// float32.
func (m *Matrix32) From(src *Matrix) {
	m.Resize(src.Rows, src.Cols)
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
}

// Round32 copies src into dst through float32 precision: dst[i] is src[i]
// rounded to the nearest float32, widened back. It is how float64 inputs
// enter the float32 forward path.
func Round32(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// PackNT32 is the float32 PackNT: dst = Bᵀ, reusing dst's backing array.
func PackNT32(dst, B *Matrix32) {
	if dst == B {
		panic("mat: PackNT32 destination aliases operand")
	}
	k, n := B.Cols, B.Rows
	dst.Resize(k, n)
	dd := dst.Data
	for j := 0; j < n; j++ {
		br := B.Row(j)
		for p, v := range br {
			dd[p*n+j] = v
		}
	}
}

// simdMinCols32 is the narrowest output the float32 vector kernel accepts.
const simdMinCols32 = 16

// Gemm32 computes C += A·B in float32, A (m×k), B (k×n), C (m×n).
// It panics on dimension mismatch or when C aliases A or B.
func Gemm32(C, A, B *Matrix32) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic("mat: Gemm32 dimension mismatch")
	}
	checkGemm32Alias(C, A, B)
	gemm32RowsNN(C, A, B, 0, C.Rows)
}

// Gemm32Rows computes rows [i0,i1) of C += A·B in float32. Disjoint row
// covers compose bit-identically, exactly as for GemmRows.
// It panics on dimension mismatch, an invalid row range, or aliasing.
func Gemm32Rows(C, A, B *Matrix32, i0, i1 int) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic("mat: Gemm32Rows dimension mismatch")
	}
	if i0 < 0 || i1 > C.Rows || i0 > i1 {
		panic("mat: Gemm32Rows invalid row range")
	}
	checkGemm32Alias(C, A, B)
	gemm32RowsNN(C, A, B, i0, i1)
}

// gemm32RowsNN dispatches between the AVX2 kernel and the scalar loop.
func gemm32RowsNN(C, A, B *Matrix32, i0, i1 int) {
	n, k := C.Cols, A.Cols
	if i0 >= i1 || n == 0 || k == 0 {
		return
	}
	if simdGemm && n >= simdMinCols32 {
		gemm32RowsSIMD(C, A, B, i0, i1)
		return
	}
	gemm32EdgeNN(C, A, B, i0, i1, 0, n, k)
}

// gemm32EdgeNN is the scalar float32 kernel: a per-element sequential p-loop
// with one float32 rounding per multiply and per add, matching the SIMD
// kernel's arithmetic exactly.
func gemm32EdgeNN(C, A, B *Matrix32, i0, i1, j0, j1, k int) {
	bd, bc := B.Data, B.Cols
	for i := i0; i < i1; i++ {
		ar := A.Row(i)[:k]
		cr := C.Row(i)
		for j := j0; j < j1; j++ {
			s := cr[j]
			for p := 0; p < k; p++ {
				s += ar[p] * bd[p*bc+j]
			}
			cr[j] = s
		}
	}
}

// Add32 adds src into dst element-wise (dst += src); the float32 bias add.
func Add32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mat: Add32 length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Relu32 clamps x to max(x, 0) in place; negatives and NaNs map to +0,
// like the float64 Relu.
func Relu32(x []float32) {
	for i, v := range x {
		if !(v > 0) {
			x[i] = 0
		}
	}
}

// ArgMax32 returns the index of the largest element of x (first on ties,
// like ArgMax), or -1 for an empty slice.
func ArgMax32(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// checkGemm32Alias mirrors checkGemmAlias for float32 operands.
func checkGemm32Alias(C, A, B *Matrix32) {
	if sliceOverlap(C.Data, A.Data) || sliceOverlap(C.Data, B.Data) {
		panic("mat: Gemm32 destination aliases an operand")
	}
}
