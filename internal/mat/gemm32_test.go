package mat

import (
	"math"
	"testing"
)

// randMatrix32 fills a rows×cols float32 matrix from the float64 generator.
func randMatrix32(rng *RNG, rows, cols int) *Matrix32 {
	src := randMatrix(rng, rows, cols)
	m := NewMatrix32(rows, cols)
	m.From(src)
	return m
}

// TestGemm32MatchesSequential checks the float32 product against a
// per-element sequential float32 reference, bit for bit.
func TestGemm32MatchesSequential(t *testing.T) {
	rng := NewRNG(53)
	for _, sz := range simdSizes {
		A := randMatrix32(rng, sz.m, sz.k)
		B := randMatrix32(rng, sz.k, sz.n)
		C := randMatrix32(rng, sz.m, sz.n)
		want := make([]float32, len(C.Data))
		copy(want, C.Data)
		for i := 0; i < sz.m; i++ {
			for j := 0; j < sz.n; j++ {
				s := want[i*sz.n+j]
				for p := 0; p < sz.k; p++ {
					s += A.Data[i*sz.k+p] * B.Data[p*sz.n+j]
				}
				want[i*sz.n+j] = s
			}
		}
		Gemm32(C, A, B)
		for i := range C.Data {
			if C.Data[i] != want[i] {
				t.Fatalf("Gemm32(%dx%dx%d) differs from sequential reference at %d: %v != %v",
					sz.m, sz.n, sz.k, i, C.Data[i], want[i])
			}
		}
	}
}

// TestGemm32SIMDMatchesGeneric pins bit-identity of the float32 AVX2 kernel
// against the scalar loop: VMULPS/VADDPS round once per operation, exactly
// like the scalar float32 `s += a*b`.
func TestGemm32SIMDMatchesGeneric(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(59)
	for _, sz := range simdSizes {
		A := randMatrix32(rng, sz.m, sz.k)
		B := randMatrix32(rng, sz.k, sz.n)
		seed := randMatrix32(rng, sz.m, sz.n)

		want := NewMatrix32(sz.m, sz.n)
		copy(want.Data, seed.Data)
		prev := SetSIMD(false)
		Gemm32(want, A, B)
		SetSIMD(true)
		got := NewMatrix32(sz.m, sz.n)
		copy(got.Data, seed.Data)
		Gemm32(got, A, B)
		SetSIMD(prev)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Gemm32(%dx%dx%d): SIMD differs from generic at %d: %v != %v",
					sz.m, sz.n, sz.k, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemm32RowsCoverMatchesFull mirrors the float64 row-cover test.
func TestGemm32RowsCoverMatchesFull(t *testing.T) {
	rng := NewRNG(61)
	for _, sz := range simdSizes {
		A := randMatrix32(rng, sz.m, sz.k)
		B := randMatrix32(rng, sz.k, sz.n)
		want := NewMatrix32(sz.m, sz.n)
		Gemm32(want, A, B)
		got := NewMatrix32(sz.m, sz.n)
		for lo := 0; lo < sz.m; lo += 3 {
			hi := min(lo+3, sz.m)
			Gemm32Rows(got, A, B, lo, hi)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("Gemm32Rows cover (%dx%dx%d) differs at %d", sz.m, sz.n, sz.k, i)
			}
		}
	}
}

// TestGemm32NearFloat64 bounds the float32 drift against the float64
// product: the ranking path's epsilon argument starts from this kernel-level
// agreement.
func TestGemm32NearFloat64(t *testing.T) {
	rng := NewRNG(67)
	A64 := randMatrix(rng, 16, 64)
	B64 := randMatrix(rng, 64, 32)
	C64 := NewMatrix(16, 32)
	Gemm(C64, A64, B64)

	var A32, B32 Matrix32
	A32.From(A64)
	B32.From(B64)
	C32 := NewMatrix32(16, 32)
	Gemm32(C32, &A32, &B32)
	for i := range C32.Data {
		diff := math.Abs(float64(C32.Data[i]) - C64.Data[i])
		scale := math.Max(1, math.Abs(C64.Data[i]))
		if diff/scale > 1e-4 {
			t.Fatalf("float32 product drifts beyond 1e-4 at %d: f32=%v f64=%v", i, C32.Data[i], C64.Data[i])
		}
	}
}

// TestPackNT32AndHelpers covers the float32 panel, Round32, Add32 and the
// Matrix32 plumbing.
func TestPackNT32AndHelpers(t *testing.T) {
	rng := NewRNG(71)
	B := randMatrix32(rng, 6, 9)
	var panel Matrix32
	PackNT32(&panel, B)
	if panel.Rows != 9 || panel.Cols != 6 {
		t.Fatalf("PackNT32 shape = %dx%d", panel.Rows, panel.Cols)
	}
	for p := 0; p < 9; p++ {
		for j := 0; j < 6; j++ {
			if panel.Row(p)[j] != B.Row(j)[p] {
				t.Fatalf("PackNT32[%d,%d] != B[%d,%d]", p, j, j, p)
			}
		}
	}
	mustPanic(t, "PackNT32 aliased", func() { PackNT32(&panel, &panel) })

	src := []float64{1.5, -2.25, 1e-45, math.Pi}
	dst := make([]float32, 4)
	Round32(dst, src)
	for i, v := range src {
		if dst[i] != float32(v) {
			t.Fatalf("Round32[%d] = %v, want %v", i, dst[i], float32(v))
		}
	}

	a := []float32{1, 2, 3}
	Add32(a, []float32{4, 5, 6})
	if a[0] != 5 || a[1] != 7 || a[2] != 9 {
		t.Fatalf("Add32 = %v", a)
	}
	mustPanic(t, "Add32 length", func() { Add32(a, []float32{1}) })

	m := NewMatrix32(2, 3)
	m.Data[4] = 7
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
	mustPanic(t, "Gemm32 mismatch", func() { Gemm32(NewMatrix32(2, 2), NewMatrix32(2, 3), NewMatrix32(2, 2)) })
	mustPanic(t, "Gemm32Rows bad range", func() {
		Gemm32Rows(NewMatrix32(2, 2), NewMatrix32(2, 2), NewMatrix32(2, 2), 1, 3)
	})
	back := make([]float32, 8)
	alias := &Matrix32{Rows: 2, Cols: 2, Data: back[:4]}
	other := &Matrix32{Rows: 2, Cols: 2, Data: back[2:6]}
	mustPanic(t, "Gemm32 alias", func() { Gemm32(alias, other, NewMatrix32(2, 2)) })
}
