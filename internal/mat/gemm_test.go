package mat

import "testing"

// randMatrix fills a rows×cols matrix with deterministic pseudo-random values.
func randMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	rng.NormVec(m.Data, 0, 1)
	return m
}

// gemmSizes exercises full 4×4 tiles, partial edge tiles on both axes, tiny
// and empty shapes, and a k of zero.
var gemmSizes = []struct{ m, n, k int }{
	{4, 4, 4},
	{8, 12, 16},
	{5, 7, 3},
	{1, 1, 1},
	{3, 9, 5},
	{13, 6, 11},
	{4, 4, 1},
	{0, 4, 4},
	{4, 0, 4},
	{4, 4, 0},
	{64, 48, 128},
}

func TestGemmMatchesSequential(t *testing.T) {
	rng := NewRNG(11)
	for _, sz := range gemmSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.k, sz.n)
		C := randMatrix(rng, sz.m, sz.n)
		want := C.Clone()
		// Reference: each output element as a sequential k-loop starting
		// from the prior C value, increasing p.
		for i := 0; i < sz.m; i++ {
			for j := 0; j < sz.n; j++ {
				s := want.At(i, j)
				for p := 0; p < sz.k; p++ {
					s += A.At(i, p) * B.At(p, j)
				}
				want.Set(i, j, s)
			}
		}
		Gemm(C, A, B)
		for i := range C.Data {
			if C.Data[i] != want.Data[i] {
				t.Fatalf("Gemm(%dx%dx%d) differs from sequential reference at %d: %v != %v",
					sz.m, sz.n, sz.k, i, C.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmNTMatchesMulVec checks the forward-pass kernel against the exact
// per-sample path: with C zeroed first (as ForwardBatch does), row i of C must
// equal MulVec(B, A.Row(i)) bit for bit — both accumulate each element from
// zero in increasing k order.
func TestGemmNTMatchesMulVec(t *testing.T) {
	rng := NewRNG(23)
	for _, sz := range gemmSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.n, sz.k) // transposed operand
		C := NewMatrix(sz.m, sz.n)
		want := NewMatrix(sz.m, sz.n)
		for i := 0; i < sz.m; i++ {
			B.MulVec(want.Row(i), A.Row(i))
		}
		GemmNT(C, A, B)
		for i := range C.Data {
			if C.Data[i] != want.Data[i] {
				t.Fatalf("GemmNT(%dx%dx%d) differs from MulVec at %d: %v != %v",
					sz.m, sz.n, sz.k, i, C.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmTNMatchesAddOuter checks the weight-gradient kernel against a series
// of per-sample AddOuter rank-one updates in batch-row order.
func TestGemmTNMatchesAddOuter(t *testing.T) {
	rng := NewRNG(37)
	for _, sz := range gemmSizes {
		A := randMatrix(rng, sz.k, sz.m) // k batch rows of deltas
		B := randMatrix(rng, sz.k, sz.n) // k batch rows of activations
		C := randMatrix(rng, sz.m, sz.n)
		want := C.Clone()
		for p := 0; p < sz.k; p++ {
			want.AddOuter(1, A.Row(p), B.Row(p))
		}
		GemmTN(C, A, B)
		for i := range C.Data {
			if C.Data[i] != want.Data[i] {
				t.Fatalf("GemmTN(%dx%dx%d) differs from AddOuter at %d: %v != %v",
					sz.m, sz.n, sz.k, i, C.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmMatchesMulVecT checks the delta-backprop usage: with C zeroed first
// (as BackwardBatch does), row i of C += A·B must match MulVecT(B, A.Row(i))
// bit for bit — both accumulate each element from zero in increasing k order.
func TestGemmMatchesMulVecT(t *testing.T) {
	rng := NewRNG(41)
	for _, sz := range gemmSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.k, sz.n)
		C := NewMatrix(sz.m, sz.n)
		want := NewMatrix(sz.m, sz.n)
		for i := 0; i < sz.m; i++ {
			B.MulVecT(want.Row(i), A.Row(i))
		}
		Gemm(C, A, B)
		for i := range C.Data {
			if C.Data[i] != want.Data[i] {
				t.Fatalf("Gemm(%dx%dx%d) differs from MulVecT at %d: %v != %v",
					sz.m, sz.n, sz.k, i, C.Data[i], want.Data[i])
			}
		}
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

func TestGemmDimensionPanics(t *testing.T) {
	a := NewMatrix(3, 4)
	b := NewMatrix(5, 2) // 4 != 5
	c := NewMatrix(3, 2)
	mustPanic(t, "Gemm mismatched k", func() { Gemm(c, a, b) })
	mustPanic(t, "GemmNT mismatched k", func() { GemmNT(c, a, b) })
	mustPanic(t, "GemmTN mismatched k", func() { GemmTN(c, a, b) })

	b2 := NewMatrix(4, 2)
	cBad := NewMatrix(2, 2) // wrong row count
	mustPanic(t, "Gemm wrong C rows", func() { Gemm(cBad, a, b2) })
}

func TestGemmAliasPanics(t *testing.T) {
	back := make([]float64, 32)
	a := &Matrix{Rows: 4, Cols: 4, Data: back[:16]}
	b := NewMatrix(4, 4)
	cAlias := &Matrix{Rows: 4, Cols: 4, Data: back[8:24]} // overlaps a's tail
	mustPanic(t, "Gemm aliased C/A", func() { Gemm(cAlias, a, b) })
	mustPanic(t, "GemmNT aliased C/A", func() { GemmNT(cAlias, a, b) })
	mustPanic(t, "GemmTN aliased C/A", func() { GemmTN(cAlias, a, b) })

	cAliasB := &Matrix{Rows: 4, Cols: 4, Data: b.Data}
	mustPanic(t, "Gemm aliased C/B", func() { Gemm(cAliasB, a, b) })
}

func TestGemmEmptyNoPanic(t *testing.T) {
	// Zero-dimension products must be no-ops, not panics.
	Gemm(&Matrix{}, &Matrix{}, &Matrix{})
	c := NewMatrix(2, 3)
	Gemm(c, &Matrix{Rows: 2, Cols: 0}, &Matrix{Rows: 0, Cols: 3})
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("empty Gemm modified C")
		}
	}
}
