package mat

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero Matrix is empty and unusable; construct one with NewMatrix or
// FromRows. Data is stored in a single backing slice so that row access is a
// cheap re-slice and the whole matrix can be serialized in one write.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix. It panics if either dimension
// is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. It returns an
// error if the rows are ragged or empty.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("mat: FromRows with no rows")
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: ragged row %d: got %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.Data[i*m.Cols+j] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets every element to 0. clear compiles to a runtime memclr, which
// is several times faster than the scalar store loop Fill generates.
func (m *Matrix) Zero() {
	clear(m.Data)
}

// MulVec computes dst = m · x where x has length m.Cols and dst has length
// m.Rows. It panics on dimension mismatch.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("mat: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecT computes dst = mᵀ · x where x has length m.Rows and dst has length
// m.Cols. This is the backward pass of a dense layer, so it runs as a series
// of Axpy operations over contiguous rows for cache friendliness.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("mat: MulVecT dimension mismatch")
	}
	clear(dst)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}

// AddOuter accumulates the rank-one update m += alpha · a·bᵀ, where a has
// length m.Rows and b has length m.Cols. Dense-layer weight gradients are
// exactly this shape.
func (m *Matrix) AddOuter(alpha float64, a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic("mat: AddOuter dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		Axpy(alpha*a[i], b, m.Row(i))
	}
}

// AddScaled accumulates m += alpha · other. It panics if shapes differ.
func (m *Matrix) AddScaled(alpha float64, other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	Axpy(alpha, other.Data, m.Data)
}

// ScaleAll multiplies every element by alpha.
func (m *Matrix) ScaleAll(alpha float64) {
	Scale(alpha, m.Data)
}

// Equal reports whether m and other have the same shape and elements within
// tolerance eps.
func (m *Matrix) Equal(other *Matrix, eps float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d > eps || d < -eps {
			return false
		}
	}
	return true
}
