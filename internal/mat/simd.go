package mat

import "os"

// SIMD dispatch state for the GEMM kernels.
//
// The AVX2 micro-kernels (gemm_amd64.s) vectorize across output columns j
// with a broadcast A-scalar, and use separate multiply and add instructions —
// never FMA. Each output element therefore sees exactly the two-rounding
// sequence of the scalar `c += a*b` for every p, in the same strictly
// increasing p order, so the SIMD paths are bit-identical to the pure-Go
// kernels (pinned by TestGemmSIMDMatchesGeneric) and the determinism contract
// of DESIGN.md §4 is preserved, not versioned.

// simdMinCols is the narrowest output the vector kernels accept: one
// register-width of columns.
const simdMinCols = 8

// simdGemm gates the assembly kernels at run time. It is written once at
// init (and by SetSIMD in tests); all other access is read-only, so
// concurrent GEMM calls race-detector-cleanly share it.
var simdGemm bool

func init() {
	simdGemm = simdAvailable && os.Getenv("ENLD_NOSIMD") == ""
}

// SIMDAvailable reports whether this binary has vector GEMM kernels for the
// current CPU (amd64 with AVX2 and OS-saved YMM state).
func SIMDAvailable() bool { return simdAvailable }

// SetSIMD enables or disables the vector kernels and returns the previous
// setting. Enabling is a no-op when the CPU lacks support. It is intended
// for tests and benchmarks that pin the generic path; it must not be called
// concurrently with matrix operations.
func SetSIMD(on bool) (prev bool) {
	prev = simdGemm
	simdGemm = on && simdAvailable
	return prev
}
