//go:build amd64

#include "textflag.h"

// AVX2 element-wise kernels for the vector hot paths: bias adds (Axpy),
// ReLU and its backward gate, and the momentum-SGD parameter update.
//
// Determinism: every kernel is purely element-wise — lane i of every vector
// operation touches only element i — and uses separate multiply and add
// instructions (no FMA), so each element undergoes exactly the same IEEE
// roundings, in the same order, as the scalar loop it replaces. Results are
// bit-identical to the pure-Go fallbacks, including NaN and signed-zero
// handling (pinned by the differential tests in vec_simd_test.go).
//
// All kernels require n to be a positive multiple of 4; the Go drivers
// handle the scalar tail.

// func axpyKern(alpha float64, x, y *float64, n uintptr)
//
// y[i] += alpha * x[i] for i in [0, n).
TEXT ·axpyKern(SB), NOSPLIT, $0-32
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	SHRQ $2, CX

axpy_loop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1     // alpha * x (one rounding)
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2     // y + alpha*x (one rounding)
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axpy_loop
	VZEROUPPER
	RET

// func reluKern(dst, src *float64, n uintptr)
//
// dst[i] = max(src[i], 0). MAXPD with the zero vector as the second source
// returns that second source (+0) when src[i] is NaN and returns +0 for
// src[i] = -0, matching the scalar `if v > 0 { v } else { 0 }` exactly.
TEXT ·reluKern(SB), NOSPLIT, $0-24
	MOVQ   dst+0(FP), DI
	MOVQ   src+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $2, CX
	VXORPD Y0, Y0, Y0

relu_loop:
	VMOVUPD (SI), Y1
	VMAXPD  Y0, Y1, Y2     // max(src, 0): src is first source, 0 second
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     relu_loop
	VZEROUPPER
	RET

// func gateKern(delta, pre *float64, n uintptr)
//
// delta[i] = 0 wherever pre[i] <= 0. The ordered LE predicate is false for
// NaN pre, which keeps delta — same as the scalar `if v <= 0 { d = 0 }`.
TEXT ·gateKern(SB), NOSPLIT, $0-24
	MOVQ   delta+0(FP), DI
	MOVQ   pre+8(FP), SI
	MOVQ   n+16(FP), CX
	SHRQ   $2, CX
	VXORPD Y0, Y0, Y0

gate_loop:
	VMOVUPD (SI), Y1
	VCMPPD  $2, Y0, Y1, Y2 // mask = (pre <= 0), ordered (predicate LE_OS)
	VMOVUPD (DI), Y3
	VANDNPD Y3, Y2, Y3     // delta &^= mask
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gate_loop
	VZEROUPPER
	RET

// func sgdKern(param, grad, vel *float64, n uintptr, lr, momentum, decay, inv float64)
//
// Per element, with the scalar update's exact rounding sequence:
//	d      = grad*inv + decay*param   (mul, mul, add)
//	v      = momentum*vel - lr*d      (mul, mul, sub)
//	vel    = v
//	param += v                        (add)
TEXT ·sgdKern(SB), NOSPLIT, $0-64
	MOVQ         param+0(FP), DI
	MOVQ         grad+8(FP), SI
	MOVQ         vel+16(FP), DX
	MOVQ         n+24(FP), CX
	SHRQ         $2, CX
	VBROADCASTSD lr+32(FP), Y12
	VBROADCASTSD momentum+40(FP), Y13
	VBROADCASTSD decay+48(FP), Y14
	VBROADCASTSD inv+56(FP), Y15

sgd_loop:
	VMOVUPD (SI), Y0
	VMULPD  Y15, Y0, Y0    // grad*inv
	VMOVUPD (DI), Y1
	VMULPD  Y14, Y1, Y2    // decay*param
	VADDPD  Y2, Y0, Y0     // d = grad*inv + decay*param
	VMOVUPD (DX), Y3
	VMULPD  Y13, Y3, Y3    // momentum*vel
	VMULPD  Y12, Y0, Y0    // lr*d
	VSUBPD  Y0, Y3, Y3     // v = momentum*vel - lr*d
	VMOVUPD Y3, (DX)
	VADDPD  Y3, Y1, Y1     // param += v
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	ADDQ    $32, DX
	DECQ    CX
	JNZ     sgd_loop
	VZEROUPPER
	RET
