package mat

import (
	"sync"
	"unsafe"
)

// Blocked matrix-matrix kernels.
//
// The three Gemm variants below are the batched counterparts of MulVec,
// MulVecT and AddOuter: one call computes a whole batch of samples against a
// weight matrix, loading each weight tile once per batch instead of once per
// sample, with a register tile of accumulators giving the independent
// floating-point chains a single dot product cannot.
//
// Determinism contract (DESIGN.md §4): every output element is accumulated by
// a fully sequential innermost k-loop — C[i,j] starts from its prior value
// and adds the products A[i,p]·B[p,j] in strictly increasing p order, exactly
// the order Dot, Axpy-series (MulVecT) and AddOuter-series use. Batched
// forward/backward passes built on these kernels are therefore bit-identical
// to their per-sample counterparts: the blocking only changes which elements
// are computed together, never the order of the additions inside one element.
//
// Two consequences of that contract shape the fast paths in this file:
//
//   - Row ranges compose. Output rows never share an accumulator, so
//     computing C in arbitrary disjoint row ranges ([i0,i1) via GemmRows /
//     GemmTNRows) produces bit-identical results to one full-matrix call.
//     That is what licenses splitting the M dimension across the worker pool
//     (gemm_par.go): each row is single-writer and its k-loop stays
//     sequential no matter which worker runs it.
//
//   - The A·Bᵀ product is computed by repacking Bᵀ once (PackNT) and running
//     the A·B kernel on the packed panel. Element (i,j) still sums
//     A[i,p]·B[j,p] in increasing p order — packing moves bytes, not the
//     addition order — and the packed layout is the one the SIMD micro-kernel
//     (gemm_amd64.s) can vectorize across j without touching per-element
//     accumulation order.
//
// All variants accumulate (C += ...); callers wanting a plain product zero C
// first. C must not share backing storage with A or B (the kernels read
// operand tiles while writing C), which is enforced with a panic.

// gemmTile is the register-tile edge: kernels compute gemmTile×gemmTile
// output elements at once, holding the partial sums in local variables.
const gemmTile = 4

// Gemm computes C += A·B where A is (m×k), B is (k×n) and C is (m×n).
// It panics on dimension mismatch or when C aliases A or B.
func Gemm(C, A, B *Matrix) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic("mat: Gemm dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	gemmRowsNN(C, A, B, 0, C.Rows)
}

// GemmRows computes rows [i0,i1) of C += A·B. A disjoint cover of [0,m) by
// GemmRows calls — in any order, from any goroutine — produces bit-identical
// results to one Gemm call: rows never share accumulators and each element's
// k-loop is sequential regardless of the split.
// It panics on dimension mismatch, an invalid row range, or aliasing.
func GemmRows(C, A, B *Matrix, i0, i1 int) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic("mat: GemmRows dimension mismatch")
	}
	if i0 < 0 || i1 > C.Rows || i0 > i1 {
		panic("mat: GemmRows invalid row range")
	}
	checkGemmAlias(C, A, B)
	gemmRowsNN(C, A, B, i0, i1)
}

// ntPanels recycles the scratch panels GemmNT packs Bᵀ into.
var ntPanels = sync.Pool{New: func() any { return new(Matrix) }}

// GemmNT computes C += A·Bᵀ where A is (m×k), B is (n×k) and C is (m×n).
// Both operands are walked along contiguous rows, which makes this the
// natural forward-pass kernel: Y += X·Wᵀ with row-major X and W.
//
// Internally B is repacked as Bᵀ (a k×n panel) and the product runs through
// the A·B row kernel; see PackNT for why results are unchanged. Callers that
// reuse one B across many calls (a weight matrix across batch chunks) should
// PackNT once themselves and call GemmRows directly.
// It panics on dimension mismatch or when C aliases A or B.
func GemmNT(C, A, B *Matrix) {
	if A.Cols != B.Cols || C.Rows != A.Rows || C.Cols != B.Rows {
		panic("mat: GemmNT dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	if C.Rows == 0 || C.Cols == 0 || A.Cols == 0 {
		return
	}
	bt := ntPanels.Get().(*Matrix)
	PackNT(bt, B)
	gemmRowsNN(C, A, bt, 0, C.Rows)
	ntPanels.Put(bt)
}

// PackNT resizes dst to (B.Cols × B.Rows) and fills dst[p,j] = B[j,p], i.e.
// dst = Bᵀ. A GemmNT product then becomes GemmRows against the panel:
// element (i,j) still accumulates A[i,p]·B[j,p] in strictly increasing p
// order — transposition moves bytes, never the order of additions — so
// PackNT+GemmRows is bit-identical to GemmNT. dst's backing array is reused
// when it has capacity.
func PackNT(dst, B *Matrix) {
	if dst == B {
		panic("mat: PackNT destination aliases operand")
	}
	k, n := B.Cols, B.Rows
	dst.Rows, dst.Cols = k, n
	need := k * n
	if cap(dst.Data) < need {
		dst.Data = make([]float64, need)
	} else {
		dst.Data = dst.Data[:need]
	}
	dd := dst.Data
	for j := 0; j < n; j++ {
		br := B.Row(j)
		for p, v := range br {
			dd[p*n+j] = v
		}
	}
}

// GemmTN computes C += Aᵀ·B where A is (k×m), B is (k×n) and C is (m×n).
// With k indexing batch rows this is the weight-gradient kernel:
// gW += deltaᵀ·X sums each sample's rank-one update in batch-row order,
// matching a sequence of per-sample AddOuter calls bit for bit.
// It panics on dimension mismatch or when C aliases A or B.
func GemmTN(C, A, B *Matrix) {
	if A.Rows != B.Rows || C.Rows != A.Cols || C.Cols != B.Cols {
		panic("mat: GemmTN dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	gemmRowsTN(C, A, B, 0, C.Rows)
}

// GemmTNRows computes rows [i0,i1) of C += Aᵀ·B (row i of C reads column i
// of A). Like GemmRows, any disjoint cover of [0,m) is bit-identical to one
// GemmTN call.
// It panics on dimension mismatch, an invalid row range, or aliasing.
func GemmTNRows(C, A, B *Matrix, i0, i1 int) {
	if A.Rows != B.Rows || C.Rows != A.Cols || C.Cols != B.Cols {
		panic("mat: GemmTNRows dimension mismatch")
	}
	if i0 < 0 || i1 > C.Rows || i0 > i1 {
		panic("mat: GemmTNRows invalid row range")
	}
	checkGemmAlias(C, A, B)
	gemmRowsTN(C, A, B, i0, i1)
}

// gemmRowsNN computes rows [i0,i1) of C += A·B, dispatching to the AVX2
// micro-kernel when available and falling back to the register-tiled scalar
// kernel otherwise. Both paths add the same products in the same per-element
// order.
func gemmRowsNN(C, A, B *Matrix, i0, i1 int) {
	n, k := C.Cols, A.Cols
	if i0 >= i1 || n == 0 || k == 0 {
		return
	}
	if simdGemm && n >= simdMinCols {
		gemmRowsNNSIMD(C, A, B, i0, i1)
		return
	}
	for ib := i0; ib < i1; ib += gemmTile {
		ie := min(ib+gemmTile, i1)
		for jb := 0; jb < n; jb += gemmTile {
			je := min(jb+gemmTile, n)
			if ie-ib == gemmTile && je-jb == gemmTile {
				gemmTileNN(C, A, B, ib, jb, k)
			} else {
				gemmEdgeNN(C, A, B, ib, ie, jb, je, k)
			}
		}
	}
}

// gemmRowsTN computes rows [i0,i1) of C += Aᵀ·B with the same dispatch rule
// as gemmRowsNN.
func gemmRowsTN(C, A, B *Matrix, i0, i1 int) {
	n, k := C.Cols, A.Rows
	if i0 >= i1 || n == 0 || k == 0 {
		return
	}
	if simdGemm && n >= simdMinCols {
		gemmRowsTNSIMD(C, A, B, i0, i1)
		return
	}
	for ib := i0; ib < i1; ib += gemmTile {
		ie := min(ib+gemmTile, i1)
		for jb := 0; jb < n; jb += gemmTile {
			je := min(jb+gemmTile, n)
			if ie-ib == gemmTile && je-jb == gemmTile {
				gemmTileTN(C, A, B, ib, jb, k)
			} else {
				gemmEdgeTN(C, A, B, ib, ie, jb, je, k)
			}
		}
	}
}

// gemmTileNN is the 4×4 register micro-kernel of Gemm: sixteen independent
// accumulator chains, each a sequential sum over p. Operand rows are trimmed
// to [:k] so the compiler can prove p < len and drop the bounds checks. The
// p-loop is unrolled — each accumulator still adds its products in strictly
// increasing p order.
func gemmTileNN(C, A, B *Matrix, i0, j0, k int) {
	a0, a1, a2, a3 := A.Row(i0)[:k], A.Row(i0 + 1)[:k], A.Row(i0 + 2)[:k], A.Row(i0 + 3)[:k]
	c0 := C.Row(i0)[j0 : j0+4 : j0+4]
	c1 := C.Row(i0 + 1)[j0 : j0+4 : j0+4]
	c2 := C.Row(i0 + 2)[j0 : j0+4 : j0+4]
	c3 := C.Row(i0 + 3)[j0 : j0+4 : j0+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	bd, bc := B.Data, B.Cols
	boff := j0
	p := 0
	for ; p+3 < k; p += 4 {
		br := bd[boff : boff+4 : boff+4]
		bs := bd[boff+bc : boff+bc+4 : boff+bc+4]
		bt := bd[boff+2*bc : boff+2*bc+4 : boff+2*bc+4]
		bu := bd[boff+3*bc : boff+3*bc+4 : boff+3*bc+4]
		boff += 4 * bc
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		e0, e1, e2, e3 := bs[0], bs[1], bs[2], bs[3]
		f0, f1, f2, f3 := bt[0], bt[1], bt[2], bt[3]
		g0, g1, g2, g3 := bu[0], bu[1], bu[2], bu[3]
		av, aw, ax, ay := a0[p], a0[p+1], a0[p+2], a0[p+3]
		c00 += av * b0
		c00 += aw * e0
		c00 += ax * f0
		c00 += ay * g0
		c01 += av * b1
		c01 += aw * e1
		c01 += ax * f1
		c01 += ay * g1
		c02 += av * b2
		c02 += aw * e2
		c02 += ax * f2
		c02 += ay * g2
		c03 += av * b3
		c03 += aw * e3
		c03 += ax * f3
		c03 += ay * g3
		av, aw, ax, ay = a1[p], a1[p+1], a1[p+2], a1[p+3]
		c10 += av * b0
		c10 += aw * e0
		c10 += ax * f0
		c10 += ay * g0
		c11 += av * b1
		c11 += aw * e1
		c11 += ax * f1
		c11 += ay * g1
		c12 += av * b2
		c12 += aw * e2
		c12 += ax * f2
		c12 += ay * g2
		c13 += av * b3
		c13 += aw * e3
		c13 += ax * f3
		c13 += ay * g3
		av, aw, ax, ay = a2[p], a2[p+1], a2[p+2], a2[p+3]
		c20 += av * b0
		c20 += aw * e0
		c20 += ax * f0
		c20 += ay * g0
		c21 += av * b1
		c21 += aw * e1
		c21 += ax * f1
		c21 += ay * g1
		c22 += av * b2
		c22 += aw * e2
		c22 += ax * f2
		c22 += ay * g2
		c23 += av * b3
		c23 += aw * e3
		c23 += ax * f3
		c23 += ay * g3
		av, aw, ax, ay = a3[p], a3[p+1], a3[p+2], a3[p+3]
		c30 += av * b0
		c30 += aw * e0
		c30 += ax * f0
		c30 += ay * g0
		c31 += av * b1
		c31 += aw * e1
		c31 += ax * f1
		c31 += ay * g1
		c32 += av * b2
		c32 += aw * e2
		c32 += ax * f2
		c32 += ay * g2
		c33 += av * b3
		c33 += aw * e3
		c33 += ax * f3
		c33 += ay * g3
	}
	for ; p+1 < k; p += 2 {
		br := bd[boff : boff+4 : boff+4]
		bs := bd[boff+bc : boff+bc+4 : boff+bc+4]
		boff += 2 * bc
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		e0, e1, e2, e3 := bs[0], bs[1], bs[2], bs[3]
		av, aw := a0[p], a0[p+1]
		c00 += av * b0
		c00 += aw * e0
		c01 += av * b1
		c01 += aw * e1
		c02 += av * b2
		c02 += aw * e2
		c03 += av * b3
		c03 += aw * e3
		av, aw = a1[p], a1[p+1]
		c10 += av * b0
		c10 += aw * e0
		c11 += av * b1
		c11 += aw * e1
		c12 += av * b2
		c12 += aw * e2
		c13 += av * b3
		c13 += aw * e3
		av, aw = a2[p], a2[p+1]
		c20 += av * b0
		c20 += aw * e0
		c21 += av * b1
		c21 += aw * e1
		c22 += av * b2
		c22 += aw * e2
		c23 += av * b3
		c23 += aw * e3
		av, aw = a3[p], a3[p+1]
		c30 += av * b0
		c30 += aw * e0
		c31 += av * b1
		c31 += aw * e1
		c32 += av * b2
		c32 += aw * e2
		c33 += av * b3
		c33 += aw * e3
	}
	if p < k {
		br := bd[boff : boff+4 : boff+4]
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		av := a0[p]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[p]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[p]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[p]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// gemmEdgeNN handles partial tiles with a per-element sequential p-loop.
func gemmEdgeNN(C, A, B *Matrix, i0, i1, j0, j1, k int) {
	bd, bc := B.Data, B.Cols
	for i := i0; i < i1; i++ {
		ar := A.Row(i)[:k]
		cr := C.Row(i)
		for j := j0; j < j1; j++ {
			s := cr[j]
			for p := 0; p < k; p++ {
				s += ar[p] * bd[p*bc+j]
			}
			cr[j] = s
		}
	}
}

// gemmTileTN is the 4×4 micro-kernel of GemmTN: per p both operand tiles are
// four consecutive elements of one row. The p-loop is unrolled — each
// accumulator still adds its products in strictly increasing p order.
func gemmTileTN(C, A, B *Matrix, i0, j0, k int) {
	c0 := C.Row(i0)[j0 : j0+4 : j0+4]
	c1 := C.Row(i0 + 1)[j0 : j0+4 : j0+4]
	c2 := C.Row(i0 + 2)[j0 : j0+4 : j0+4]
	c3 := C.Row(i0 + 3)[j0 : j0+4 : j0+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	ad, ac := A.Data, A.Cols
	bd, bc := B.Data, B.Cols
	aoff, boff := i0, j0
	p := 0
	for ; p+3 < k; p += 4 {
		ar := ad[aoff : aoff+4 : aoff+4]
		br := bd[boff : boff+4 : boff+4]
		as := ad[aoff+ac : aoff+ac+4 : aoff+ac+4]
		bs := bd[boff+bc : boff+bc+4 : boff+bc+4]
		at := ad[aoff+2*ac : aoff+2*ac+4 : aoff+2*ac+4]
		bt := bd[boff+2*bc : boff+2*bc+4 : boff+2*bc+4]
		au := ad[aoff+3*ac : aoff+3*ac+4 : aoff+3*ac+4]
		bu := bd[boff+3*bc : boff+3*bc+4 : boff+3*bc+4]
		aoff += 4 * ac
		boff += 4 * bc
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		e0, e1, e2, e3 := bs[0], bs[1], bs[2], bs[3]
		f0, f1, f2, f3 := bt[0], bt[1], bt[2], bt[3]
		g0, g1, g2, g3 := bu[0], bu[1], bu[2], bu[3]
		av, aw, ax, ay := ar[0], as[0], at[0], au[0]
		c00 += av * b0
		c00 += aw * e0
		c00 += ax * f0
		c00 += ay * g0
		c01 += av * b1
		c01 += aw * e1
		c01 += ax * f1
		c01 += ay * g1
		c02 += av * b2
		c02 += aw * e2
		c02 += ax * f2
		c02 += ay * g2
		c03 += av * b3
		c03 += aw * e3
		c03 += ax * f3
		c03 += ay * g3
		av, aw, ax, ay = ar[1], as[1], at[1], au[1]
		c10 += av * b0
		c10 += aw * e0
		c10 += ax * f0
		c10 += ay * g0
		c11 += av * b1
		c11 += aw * e1
		c11 += ax * f1
		c11 += ay * g1
		c12 += av * b2
		c12 += aw * e2
		c12 += ax * f2
		c12 += ay * g2
		c13 += av * b3
		c13 += aw * e3
		c13 += ax * f3
		c13 += ay * g3
		av, aw, ax, ay = ar[2], as[2], at[2], au[2]
		c20 += av * b0
		c20 += aw * e0
		c20 += ax * f0
		c20 += ay * g0
		c21 += av * b1
		c21 += aw * e1
		c21 += ax * f1
		c21 += ay * g1
		c22 += av * b2
		c22 += aw * e2
		c22 += ax * f2
		c22 += ay * g2
		c23 += av * b3
		c23 += aw * e3
		c23 += ax * f3
		c23 += ay * g3
		av, aw, ax, ay = ar[3], as[3], at[3], au[3]
		c30 += av * b0
		c30 += aw * e0
		c30 += ax * f0
		c30 += ay * g0
		c31 += av * b1
		c31 += aw * e1
		c31 += ax * f1
		c31 += ay * g1
		c32 += av * b2
		c32 += aw * e2
		c32 += ax * f2
		c32 += ay * g2
		c33 += av * b3
		c33 += aw * e3
		c33 += ax * f3
		c33 += ay * g3
	}
	for ; p+1 < k; p += 2 {
		ar := ad[aoff : aoff+4 : aoff+4]
		br := bd[boff : boff+4 : boff+4]
		as := ad[aoff+ac : aoff+ac+4 : aoff+ac+4]
		bs := bd[boff+bc : boff+bc+4 : boff+bc+4]
		aoff += 2 * ac
		boff += 2 * bc
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		e0, e1, e2, e3 := bs[0], bs[1], bs[2], bs[3]
		av, aw := ar[0], as[0]
		c00 += av * b0
		c00 += aw * e0
		c01 += av * b1
		c01 += aw * e1
		c02 += av * b2
		c02 += aw * e2
		c03 += av * b3
		c03 += aw * e3
		av, aw = ar[1], as[1]
		c10 += av * b0
		c10 += aw * e0
		c11 += av * b1
		c11 += aw * e1
		c12 += av * b2
		c12 += aw * e2
		c13 += av * b3
		c13 += aw * e3
		av, aw = ar[2], as[2]
		c20 += av * b0
		c20 += aw * e0
		c21 += av * b1
		c21 += aw * e1
		c22 += av * b2
		c22 += aw * e2
		c23 += av * b3
		c23 += aw * e3
		av, aw = ar[3], as[3]
		c30 += av * b0
		c30 += aw * e0
		c31 += av * b1
		c31 += aw * e1
		c32 += av * b2
		c32 += aw * e2
		c33 += av * b3
		c33 += aw * e3
	}
	if p < k {
		ar := ad[aoff : aoff+4 : aoff+4]
		br := bd[boff : boff+4 : boff+4]
		b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
		av := ar[0]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = ar[1]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = ar[2]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = ar[3]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// gemmEdgeTN handles partial GemmTN tiles with a per-element sequential
// p-loop.
func gemmEdgeTN(C, A, B *Matrix, i0, i1, j0, j1, k int) {
	ad, ac := A.Data, A.Cols
	bd, bc := B.Data, B.Cols
	for i := i0; i < i1; i++ {
		cr := C.Row(i)
		for j := j0; j < j1; j++ {
			s := cr[j]
			for p := 0; p < k; p++ {
				s += ad[p*ac+i] * bd[p*bc+j]
			}
			cr[j] = s
		}
	}
}

// checkGemmAlias panics when the destination shares backing storage with
// either operand. The kernels re-read operand tiles while C is being written,
// so aliasing would silently corrupt the product.
func checkGemmAlias(C, A, B *Matrix) {
	if sliceOverlap(C.Data, A.Data) || sliceOverlap(C.Data, B.Data) {
		panic("mat: Gemm destination aliases an operand")
	}
}

// sliceOverlap reports whether a and b share any element.
func sliceOverlap[T any](a, b []T) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	aHi := aLo + uintptr(len(a))*unsafe.Sizeof(a[0])
	bLo := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	bHi := bLo + uintptr(len(b))*unsafe.Sizeof(b[0])
	return aLo < bHi && bLo < aHi
}
