// Package mat provides the dense linear-algebra kernels, statistics helpers
// and deterministic random sources that the rest of the repository is built
// on. Everything operates on float64 slices; matrices are row-major.
//
// The package is deliberately small and allocation-conscious: the training
// loops in internal/nn call into these kernels on every mini-batch, so the
// hot paths (Dot, Axpy, GemV) avoid bounds-check-hostile patterns and never
// allocate.
package mat

import "math"

// RNG is a deterministic pseudo-random number generator based on SplitMix64.
// It is not safe for concurrent use; create one per goroutine with Split.
//
// SplitMix64 is chosen over math/rand because every stochastic component in
// this repository must be reproducible from a single seed across runs and
// platforms, including after the standard library reshuffles its generator.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from the last Box-Muller
	// draw; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from r's future output, which makes it safe to hand to a
// concurrently running worker.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// NormVec fills dst with independent normal variates of the given mean and
// standard deviation and returns dst.
func (r *RNG) NormVec(dst []float64, mean, std float64) []float64 {
	for i := range dst {
		dst[i] = mean + std*r.Norm()
	}
	return dst
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place with a Fisher-Yates shuffle.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Beta returns a variate from the Beta(a, b) distribution using Jöhnk's
// algorithm for small shape parameters and gamma sampling otherwise. The
// mixup augmentation in internal/nn draws Beta(0.2, 0.2) variates, which is
// exactly the small-shape regime Jöhnk's method handles well.
func (r *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic("mat: Beta with non-positive shape")
	}
	if a <= 1 && b <= 1 {
		// Jöhnk's algorithm.
		for {
			u := math.Pow(r.Float64(), 1/a)
			v := math.Pow(r.Float64(), 1/b)
			if s := u + v; s > 0 && s <= 1 {
				return u / s
			}
		}
	}
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Gamma returns a variate from the Gamma(shape, 1) distribution using the
// Marsaglia-Tsang method.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("mat: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		return r.Gamma(shape+1) * math.Pow(r.Float64(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
