//go:build amd64

package mat

// AVX2 feature detection and the Go-side drivers for the assembly
// micro-kernels in gemm_amd64.s.
//
// One strided kernel shape serves every GEMM variant: it computes a 4-row ×
// 8-column (16 columns for float32) block of C += A·B where consecutive A
// rows are aRow bytes apart, consecutive p elements of one A row are aP
// bytes apart, and consecutive p rows of B are bP bytes apart. The NN
// product uses (aRow, aP) = (A.Cols·8, 8); the TN product reads column i of
// A as an output row with (aRow, aP) = (8, A.Cols·8); the NT product packs
// Bᵀ first (PackNT) and runs the NN shape. All strides are in bytes.

// simdAvailable is true when the CPU and OS support the AVX2 kernels.
var simdAvailable = hasAVX2()

// hasAVX2 checks CPUID for AVX2 and XGETBV for OS-managed YMM state.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	// Leaf 1 ECX: bit 27 OSXSAVE, bit 28 AVX.
	_, _, c, _ := cpuidex(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28
	if c&osxsaveAVX != osxsaveAVX {
		return false
	}
	// XCR0 bits 1..2: SSE and YMM state enabled by the OS.
	lo, _ := xgetbv0()
	if lo&0x6 != 0x6 {
		return false
	}
	// Leaf 7 EBX: bit 5 AVX2.
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0.
func xgetbv0() (eax, edx uint32)

// gemmKern4x8 computes the 4×8 float64 block at c += a·b as described in the
// file comment: 4 strided A rows against 8 contiguous B columns over k steps
// of the shared p index, with separate VMULPD/VADDPD per step.
//
//go:noescape
func gemmKern4x8(c *float64, cStride uintptr, a *float64, aRow, aP uintptr, b *float64, bP uintptr, k uintptr)

// gemmKern4x16f is the float32 variant: a 4×16 block via two 8-lane YMM
// column vectors per row, separate VMULPS/VADDPS per step.
//
//go:noescape
func gemmKern4x16f(c *float32, cStride uintptr, a *float32, aRow, aP uintptr, b *float32, bP uintptr, k uintptr)

// gemmRowsNNSIMD computes rows [i0,i1) of C += A·B with the AVX2 kernel,
// delegating partial tiles (rows mod 4, columns mod 8) to the scalar edge
// kernel. Caller guarantees i0 < i1, C.Cols >= simdMinCols and A.Cols > 0.
func gemmRowsNNSIMD(C, A, B *Matrix, i0, i1 int) {
	n, k := C.Cols, A.Cols
	nv := n &^ 7
	cc, ac, bc := C.Cols, A.Cols, B.Cols
	cs, as, bs := uintptr(cc)*8, uintptr(ac)*8, uintptr(bc)*8
	i := i0
	for ; i+gemmTile <= i1; i += gemmTile {
		crow := i * cc
		arow := i * ac
		for j := 0; j < nv; j += 8 {
			gemmKern4x8(&C.Data[crow+j], cs, &A.Data[arow], as, 8, &B.Data[j], bs, uintptr(k))
		}
		if nv < n {
			gemmEdgeNN(C, A, B, i, i+gemmTile, nv, n, k)
		}
	}
	if i < i1 {
		gemmEdgeNN(C, A, B, i, i1, 0, n, k)
	}
}

// gemmRowsTNSIMD computes rows [i0,i1) of C += Aᵀ·B with the AVX2 kernel:
// output row i reads column i of A, so the kernel walks A with a row stride
// of one element and a p stride of one A row.
func gemmRowsTNSIMD(C, A, B *Matrix, i0, i1 int) {
	n, k := C.Cols, A.Rows
	nv := n &^ 7
	cc, ac, bc := C.Cols, A.Cols, B.Cols
	cs, bs := uintptr(cc)*8, uintptr(bc)*8
	ap := uintptr(ac) * 8
	i := i0
	for ; i+gemmTile <= i1; i += gemmTile {
		crow := i * cc
		for j := 0; j < nv; j += 8 {
			gemmKern4x8(&C.Data[crow+j], cs, &A.Data[i], 8, ap, &B.Data[j], bs, uintptr(k))
		}
		if nv < n {
			gemmEdgeTN(C, A, B, i, i+gemmTile, nv, n, k)
		}
	}
	if i < i1 {
		gemmEdgeTN(C, A, B, i, i1, 0, n, k)
	}
}

// gemm32RowsSIMD computes rows [i0,i1) of C += A·B in float32 with the AVX2
// kernel. Caller guarantees i0 < i1, C.Cols >= simdMinCols32 and A.Cols > 0.
func gemm32RowsSIMD(C, A, B *Matrix32, i0, i1 int) {
	n, k := C.Cols, A.Cols
	nv := n &^ 15
	cc, ac, bc := C.Cols, A.Cols, B.Cols
	cs, as, bs := uintptr(cc)*4, uintptr(ac)*4, uintptr(bc)*4
	i := i0
	for ; i+gemmTile <= i1; i += gemmTile {
		crow := i * cc
		arow := i * ac
		for j := 0; j < nv; j += 16 {
			gemmKern4x16f(&C.Data[crow+j], cs, &A.Data[arow], as, 4, &B.Data[j], bs, uintptr(k))
		}
		if nv < n {
			gemm32EdgeNN(C, A, B, i, i+gemmTile, nv, n, k)
		}
	}
	if i < i1 {
		gemm32EdgeNN(C, A, B, i, i1, 0, n, k)
	}
}
