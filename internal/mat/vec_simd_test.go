package mat

import (
	"math"
	"testing"
)

// vecLens crosses the dispatch threshold and every tail length mod 4.
var vecLens = []int{1, 3, 7, 8, 9, 12, 15, 33, 100, 128}

// specials seeds the element-wise tests with the values whose handling the
// SIMD kernels must reproduce exactly: NaN, infinities and both zeros.
var specials = []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), 1e-300, -1e-300}

// fillSpecial fills xs from the RNG and sprinkles special values.
func fillSpecial(rng *RNG, xs []float64) {
	for i := range xs {
		xs[i] = rng.Norm()
	}
	for i := 0; i < len(xs); i += 5 {
		xs[i] = specials[(i/5)%len(specials)]
	}
}

// sameFloat compares bit patterns, so NaN == NaN and +0 != -0.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestAxpySIMDMatchesScalar pins bit-identity of the AVX2 Axpy against the
// scalar loop across lengths and special values.
func TestAxpySIMDMatchesScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(131)
	for _, n := range vecLens {
		x := make([]float64, n)
		dst := make([]float64, n)
		fillSpecial(rng, x)
		fillSpecial(rng, dst)
		want := append([]float64(nil), dst...)
		got := append([]float64(nil), dst...)
		for _, alpha := range []float64{1, -0.75, 0} {
			prev := SetSIMD(false)
			Axpy(alpha, x, want)
			SetSIMD(true)
			Axpy(alpha, x, got)
			SetSIMD(prev)
			for i := range got {
				if !sameFloat(got[i], want[i]) {
					t.Fatalf("Axpy(%v, n=%d): SIMD differs at %d: %v != %v", alpha, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReluSIMDMatchesScalar pins Relu's NaN-to-zero and -0-to-+0 mapping on
// both paths, bit for bit.
func TestReluSIMDMatchesScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(137)
	for _, n := range vecLens {
		src := make([]float64, n)
		fillSpecial(rng, src)
		want := make([]float64, n)
		got := make([]float64, n)
		prev := SetSIMD(false)
		Relu(want, src)
		SetSIMD(true)
		Relu(got, src)
		SetSIMD(prev)
		for i := range got {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("Relu(n=%d): SIMD differs at %d (src=%v): %v != %v", n, i, src[i], got[i], want[i])
			}
		}
	}
}

// TestReluGateSIMDMatchesScalar pins the backward gate: deltas die exactly
// where pre <= 0, NaN pre keeps its delta.
func TestReluGateSIMDMatchesScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(139)
	for _, n := range vecLens {
		pre := make([]float64, n)
		delta := make([]float64, n)
		fillSpecial(rng, pre)
		fillSpecial(rng, delta)
		want := append([]float64(nil), delta...)
		got := append([]float64(nil), delta...)
		prev := SetSIMD(false)
		ReluGate(want, pre)
		SetSIMD(true)
		ReluGate(got, pre)
		SetSIMD(prev)
		for i := range got {
			if !sameFloat(got[i], want[i]) {
				t.Fatalf("ReluGate(n=%d): SIMD differs at %d (pre=%v): %v != %v", n, i, pre[i], got[i], want[i])
			}
		}
	}
}

// TestSGDStepSIMDMatchesScalar pins the five-rounding update sequence of the
// momentum-SGD kernel against the scalar loop.
func TestSGDStepSIMDMatchesScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(149)
	for _, n := range vecLens {
		param := make([]float64, n)
		grad := make([]float64, n)
		vel := make([]float64, n)
		for i := range param {
			param[i] = rng.Norm()
			grad[i] = rng.Norm()
			vel[i] = rng.Norm()
		}
		wantP := append([]float64(nil), param...)
		wantV := append([]float64(nil), vel...)
		gotP := append([]float64(nil), param...)
		gotV := append([]float64(nil), vel...)
		prev := SetSIMD(false)
		SGDStep(wantP, grad, wantV, 0.1, 0.9, 1e-4, 1.0/32)
		SetSIMD(true)
		SGDStep(gotP, grad, gotV, 0.1, 0.9, 1e-4, 1.0/32)
		SetSIMD(prev)
		for i := range gotP {
			if !sameFloat(gotP[i], wantP[i]) || !sameFloat(gotV[i], wantV[i]) {
				t.Fatalf("SGDStep(n=%d): SIMD differs at %d: param %v != %v, vel %v != %v",
					n, i, gotP[i], wantP[i], gotV[i], wantV[i])
			}
		}
	}
}

// TestVecKernelPanics pins the length validation of the element-wise ops.
func TestVecKernelPanics(t *testing.T) {
	mustPanic(t, "Relu length", func() { Relu(make([]float64, 2), make([]float64, 3)) })
	mustPanic(t, "ReluGate length", func() { ReluGate(make([]float64, 2), make([]float64, 3)) })
	mustPanic(t, "SGDStep length", func() {
		SGDStep(make([]float64, 2), make([]float64, 3), make([]float64, 2), 0.1, 0.9, 0, 1)
	})
}
