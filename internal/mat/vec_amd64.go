//go:build amd64

package mat

// Assembly element-wise kernels (vec_amd64.s). All require n to be a
// positive multiple of 4; the dispatchers in vec.go run the scalar tail.

//go:noescape
func axpyKern(alpha float64, x, y *float64, n uintptr)

//go:noescape
func reluKern(dst, src *float64, n uintptr)

//go:noescape
func gateKern(delta, pre *float64, n uintptr)

//go:noescape
func sgdKern(param, grad, vel *float64, n uintptr, lr, momentum, decay, inv float64)
