//go:build !amd64

package mat

// Stubs for platforms without vector kernels: simdAvailable stays false, so
// the SIMD drivers below are unreachable (the dispatchers in gemm.go and
// gemm32.go check simdGemm first).

var simdAvailable = false

func gemmRowsNNSIMD(C, A, B *Matrix, i0, i1 int) {
	panic("mat: SIMD kernel called without CPU support")
}

func gemmRowsTNSIMD(C, A, B *Matrix, i0, i1 int) {
	panic("mat: SIMD kernel called without CPU support")
}

func gemm32RowsSIMD(C, A, B *Matrix32, i0, i1 int) {
	panic("mat: SIMD kernel called without CPU support")
}
