package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{0}, []float64{5}, 0},
		{nil, nil, 0},
		{[]float64{-1, 1}, []float64{1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, dst)
	want := []float64{3, 4, 5}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", dst, want)
		}
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float64{1, -2, 4}
	Scale(0.5, x)
	if x[0] != 0.5 || x[1] != -1 || x[2] != 2 {
		t.Fatalf("Scale = %v", x)
	}
	dst := make([]float64, 3)
	Add(dst, []float64{1, 2, 3}, []float64{4, 5, 6})
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, []float64{1, 2, 3}, []float64{4, 5, 6})
	if dst[0] != -3 || dst[1] != -3 || dst[2] != -3 {
		t.Fatalf("Sub = %v", dst)
	}
}

func TestLerp(t *testing.T) {
	dst := make([]float64, 2)
	Lerp(dst, []float64{1, 0}, []float64{0, 1}, 0.25)
	if !almostEq(dst[0], 0.25, 1e-12) || !almostEq(dst[1], 0.75, 1e-12) {
		t.Fatalf("Lerp = %v", dst)
	}
	// t=1 returns a exactly, t=0 returns b exactly.
	Lerp(dst, []float64{3, 4}, []float64{-1, -2}, 1)
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("Lerp(t=1) = %v", dst)
	}
	Lerp(dst, []float64{3, 4}, []float64{-1, -2}, 0)
	if dst[0] != -1 || dst[1] != -2 {
		t.Fatalf("Lerp(t=0) = %v", dst)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := SqDist(a, b); got != 25 {
		t.Errorf("SqDist = %v", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := Norm2(b); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		x    []float64
		want int
	}{
		{nil, -1},
		{[]float64{1}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{5, 5, 5}, 0}, // ties resolve low
		{[]float64{-3, -1, -2}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.x); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestSumMeanStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(x); got != 40 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(x); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Std(x); got != 2 {
		t.Errorf("Std = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Std([]float64{3}); got != 0 {
		t.Errorf("Std(single) = %v", got)
	}
}

func TestSoftmaxBasic(t *testing.T) {
	dst := make([]float64, 3)
	Softmax(dst, []float64{0, 0, 0})
	for _, v := range dst {
		if !almostEq(v, 1.0/3, 1e-12) {
			t.Fatalf("uniform softmax = %v", dst)
		}
	}
	Softmax(dst, []float64{1000, 0, -1000})
	if dst[0] < 0.999 {
		t.Fatalf("softmax not stable for large logits: %v", dst)
	}
	if math.IsNaN(dst[2]) || dst[2] < 0 {
		t.Fatalf("softmax produced invalid value: %v", dst)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := make([]float64, 4)
	b := make([]float64, 4)
	logits := []float64{0.3, -1.2, 2.5, 0.9}
	shifted := make([]float64, 4)
	for i, v := range logits {
		shifted[i] = v + 100
	}
	Softmax(a, logits)
	Softmax(b, shifted)
	for i := range a {
		if !almostEq(a[i], b[i], 1e-12) {
			t.Fatalf("softmax not shift invariant: %v vs %v", a, b)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float64{0, 0}
	if got := LogSumExp(x); !almostEq(got, math.Log(2), 1e-12) {
		t.Errorf("LogSumExp = %v", got)
	}
	big := []float64{1e300, 1e300}
	if got := LogSumExp(big); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("LogSumExp overflowed: %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0, 0}); got != 0 {
		t.Errorf("Entropy(point mass) = %v", got)
	}
	u := []float64{0.25, 0.25, 0.25, 0.25}
	if got := Entropy(u); !almostEq(got, math.Log(4), 1e-12) {
		t.Errorf("Entropy(uniform) = %v, want %v", got, math.Log(4))
	}
}

// Property: softmax output is a probability vector whose argmax matches the
// logits' argmax.
func TestSoftmaxProperty(t *testing.T) {
	f := func(raw [6]float64) bool {
		logits := make([]float64, 6)
		for i, v := range raw {
			// Bound the logits so exp stays finite but keep sign variety.
			logits[i] = math.Mod(v, 50)
			if math.IsNaN(logits[i]) {
				logits[i] = 0
			}
		}
		dst := make([]float64, 6)
		Softmax(dst, logits)
		var sum float64
		for _, v := range dst {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return almostEq(sum, 1, 1e-9) && ArgMax(dst) == ArgMax(logits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist satisfies the triangle inequality and symmetry.
func TestDistProperty(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		clamp := func(x [4]float64) []float64 {
			out := make([]float64, 4)
			for i, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				out[i] = math.Mod(v, 1e6)
			}
			return out
		}
		av, bv, cv := clamp(a), clamp(b), clamp(c)
		dab, dba := Dist(av, bv), Dist(bv, av)
		if !almostEq(dab, dba, 1e-9) {
			return false
		}
		return Dist(av, cv) <= dab+Dist(bv, cv)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
