//go:build !amd64

package mat

// Stubs for the amd64 element-wise kernels. simdAvailable is false on these
// platforms, so the dispatchers never reach them.

func axpyKern(alpha float64, x, y *float64, n uintptr) {
	panic("mat: axpyKern without SIMD support")
}

func reluKern(dst, src *float64, n uintptr) {
	panic("mat: reluKern without SIMD support")
}

func gateKern(delta, pre *float64, n uintptr) {
	panic("mat: gateKern without SIMD support")
}

func sgdKern(param, grad, vel *float64, n uintptr, lr, momentum, decay, inv float64) {
	panic("mat: sgdKern without SIMD support")
}
