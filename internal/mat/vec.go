package mat

import "math"

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes dst[i] += alpha*x[i] for all i.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst[i] = a[i] + b[i].
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst[i] = a[i] - b[i].
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst and returns dst. It panics if lengths differ.
func Copy(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("mat: Copy length mismatch")
	}
	copy(dst, src)
	return dst
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Lerp computes dst[i] = t*a[i] + (1-t)*b[i], the convex combination used by
// mixup augmentation (Eq. 1 and Eq. 2 of the paper).
func Lerp(dst, a, b []float64, t float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Lerp length mismatch")
	}
	u := 1 - t
	for i := range dst {
		dst[i] = t*a[i] + u*b[i]
	}
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance ||a-b|| (Eq. 7 of the paper).
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest element of x, or -1 for empty x.
// Ties resolve to the lowest index, matching the deterministic behaviour the
// detection pipeline needs when comparing predicted and observed labels.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element of x. It panics on empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for empty x.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Std returns the population standard deviation of x, or 0 for fewer than
// two elements.
func Std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Softmax writes the softmax of logits into dst and returns dst. The
// computation subtracts the maximum logit first for numerical stability, so
// it is safe on arbitrarily large logits.
func Softmax(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic("mat: Softmax length mismatch")
	}
	m := Max(logits)
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float64) float64 {
	m := Max(x)
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Entropy returns the Shannon entropy (nats) of the probability vector p.
// Zero probabilities contribute zero, following the usual 0·log 0 = 0
// convention. The Entropy sampling policy of §V-A5 ranks samples by this
// value.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
