package mat

import "math"

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// simdMinVec is the shortest slice the element-wise vector kernels accept;
// below it the scalar loop wins on dispatch cost alone.
const simdMinVec = 8

// Axpy computes dst[i] += alpha*x[i] for all i. The AVX2 path performs the
// same one-multiply-one-add rounding per element as the scalar loop, so
// results are bit-identical with SIMD on or off.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic("mat: Axpy length mismatch")
	}
	i := 0
	if simdGemm && len(x) >= simdMinVec {
		nv := len(x) &^ 3
		axpyKern(alpha, &x[0], &dst[0], uintptr(nv))
		i = nv
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// Relu writes dst[i] = max(src[i], 0): positive values pass through
// unchanged, everything else — negatives, both zeros and NaN — maps to +0,
// exactly like the scalar branch `if v > 0 { v } else { 0 }` on every path.
func Relu(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mat: Relu length mismatch")
	}
	i := 0
	if simdGemm && len(src) >= simdMinVec {
		nv := len(src) &^ 3
		reluKern(&dst[0], &src[0], uintptr(nv))
		i = nv
	}
	for ; i < len(src); i++ {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReluGate zeroes dst[i] wherever pre[i] <= 0, the backward counterpart of
// Relu. A NaN pre-activation keeps its delta on both the scalar and the
// SIMD path (the ordered compare is false for NaN, like the scalar `<=`).
func ReluGate(dst, pre []float64) {
	if len(dst) != len(pre) {
		panic("mat: ReluGate length mismatch")
	}
	i := 0
	if simdGemm && len(pre) >= simdMinVec {
		nv := len(pre) &^ 3
		gateKern(&dst[0], &pre[0], uintptr(nv))
		i = nv
	}
	for ; i < len(pre); i++ {
		if pre[i] <= 0 {
			dst[i] = 0
		}
	}
}

// SGDStep applies one momentum-SGD update step element-wise:
//
//	d      := grad[i]*inv + decay*param[i]
//	vel[i]  = momentum*vel[i] - lr*d
//	param[i] += vel[i]
//
// The AVX2 path performs the same five roundings per element in the same
// order as the scalar loop, so updated parameters and velocities are
// bit-identical with SIMD on or off.
func SGDStep(param, grad, vel []float64, lr, momentum, decay, inv float64) {
	if len(grad) != len(param) || len(vel) != len(param) {
		panic("mat: SGDStep length mismatch")
	}
	i := 0
	if simdGemm && len(param) >= simdMinVec {
		nv := len(param) &^ 3
		sgdKern(&param[0], &grad[0], &vel[0], uintptr(nv), lr, momentum, decay, inv)
		i = nv
	}
	for ; i < len(param); i++ {
		d := grad[i]*inv + decay*param[i]
		v := momentum*vel[i] - lr*d
		vel[i] = v
		param[i] += v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add computes dst[i] = a[i] + b[i].
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Add length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst[i] = a[i] - b[i].
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Sub length mismatch")
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Copy copies src into dst and returns dst. It panics if lengths differ.
func Copy(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("mat: Copy length mismatch")
	}
	copy(dst, src)
	return dst
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Lerp computes dst[i] = t*a[i] + (1-t)*b[i], the convex combination used by
// mixup augmentation (Eq. 1 and Eq. 2 of the paper).
func Lerp(dst, a, b []float64, t float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("mat: Lerp length mismatch")
	}
	u := 1 - t
	for i := range dst {
		dst[i] = t*a[i] + u*b[i]
	}
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: SqDist length mismatch")
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance ||a-b|| (Eq. 7 of the paper).
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest element of x, or -1 for empty x.
// Ties resolve to the lowest index, matching the deterministic behaviour the
// detection pipeline needs when comparing predicted and observed labels.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// Max returns the largest element of x. It panics on empty input.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("mat: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for empty x.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Std returns the population standard deviation of x, or 0 for fewer than
// two elements.
func Std(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Softmax writes the softmax of logits into dst and returns dst. The
// computation subtracts the maximum logit first for numerical stability, so
// it is safe on arbitrarily large logits.
func Softmax(dst, logits []float64) []float64 {
	if len(dst) != len(logits) {
		panic("mat: Softmax length mismatch")
	}
	m := Max(logits)
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// LogSumExp returns log(sum(exp(x))) computed stably.
func LogSumExp(x []float64) float64 {
	m := Max(x)
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Entropy returns the Shannon entropy (nats) of the probability vector p.
// Zero probabilities contribute zero, following the usual 0·log 0 = 0
// convention. The Entropy sampling policy of §V-A5 ranks samples by this
// value.
func Entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
