package mat

import (
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("NewMatrix(3,4) = %+v", m)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatalf("FromRows content wrong: %v", m.Data)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("empty rows accepted")
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row did not return a mutable view")
	}
}

func TestSetAtClone(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	c := m.Clone()
	m.Set(1, 2, 0)
	if c.At(1, 2) != 7 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := make([]float64, 2)
	m.MulVecT(dst, []float64{1, 1})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("MulVecT = %v", dst)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, []float64{1, 2}, []float64{3, 4})
	// 2 * [1;2]·[3,4] = [[6,8],[12,16]]
	want := [][]float64{{6, 8}, {12, 16}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("AddOuter = %v", m.Data)
			}
		}
	}
}

func TestAddScaledAndScaleAll(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 1}})
	b, _ := FromRows([][]float64{{2, 3}})
	a.AddScaled(0.5, b)
	if a.At(0, 0) != 2 || a.At(0, 1) != 2.5 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
	a.ScaleAll(2)
	if a.At(0, 0) != 4 || a.At(0, 1) != 5 {
		t.Fatalf("ScaleAll = %v", a.Data)
	}
}

func TestMatrixEqual(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{1, 2.0000001}})
	if !a.Equal(b, 1e-6) {
		t.Error("Equal within eps failed")
	}
	if a.Equal(b, 1e-9) {
		t.Error("Equal outside eps passed")
	}
	c := NewMatrix(2, 1)
	if a.Equal(c, 1) {
		t.Error("Equal with shape mismatch passed")
	}
}

func TestZero(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero element")
		}
	}
}

// Property: MulVec and MulVecT are adjoint — yᵀ(Mx) == (Mᵀy)ᵀx.
func TestAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := r.Intn(8)+1, r.Intn(8)+1
		m := NewMatrix(rows, cols)
		r.NormVec(m.Data, 0, 1)
		x := r.NormVec(make([]float64, cols), 0, 1)
		y := r.NormVec(make([]float64, rows), 0, 1)
		mx := make([]float64, rows)
		m.MulVec(mx, x)
		mty := make([]float64, cols)
		m.MulVecT(mty, y)
		return almostEq(Dot(y, mx), Dot(mty, x), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AddOuter(alpha, a, b) then MulVec(x) equals old MulVec(x) plus
// alpha*a*(b·x) — the defining property of a rank-one update.
func TestAddOuterProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := r.Intn(6)+1, r.Intn(6)+1
		m := NewMatrix(rows, cols)
		r.NormVec(m.Data, 0, 1)
		a := r.NormVec(make([]float64, rows), 0, 1)
		b := r.NormVec(make([]float64, cols), 0, 1)
		x := r.NormVec(make([]float64, cols), 0, 1)
		before := make([]float64, rows)
		m.MulVec(before, x)
		m.AddOuter(0.7, a, b)
		after := make([]float64, rows)
		m.MulVec(after, x)
		bx := Dot(b, x)
		for i := range after {
			if !almostEq(after[i], before[i]+0.7*a[i]*bx, 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
