//go:build amd64

#include "textflag.h"

// AVX2 GEMM micro-kernels.
//
// Determinism: both kernels vectorize across output columns j only. For each
// p step a single A element is broadcast and multiplied against a vector of
// B columns with separate multiply and add instructions (no FMA), so every
// output element accumulates its products one at a time, in strictly
// increasing p order, with exactly the two IEEE roundings of the scalar
// `c += a*b`. Lane position never mixes distinct output elements, so the
// results are bit-identical to the pure-Go kernels.

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemmKern4x8(c *float64, cStride uintptr, a *float64, aRow, aP uintptr, b *float64, bP uintptr, k uintptr)
//
// C block: 4 rows (cStride bytes apart) × 8 columns (two YMM). A: 4 rows
// (aRow bytes apart), stepped along p by aP bytes. B: 8 contiguous columns,
// stepped along p by bP bytes. All strides in bytes. Accumulates C += A·B
// over k steps.
//
// Register plan: Y0..Y7 = C accumulators (row-major pairs), Y8/Y9 = B row,
// Y10 = broadcast A scalar, Y11 = product. SI/R13/R14/R15 = A row cursors,
// BX = B cursor, DX = C cursor (load/store), CX = k countdown.
TEXT ·gemmKern4x8(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ cStride+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R9
	MOVQ aP+32(FP), R10
	MOVQ b+40(FP), BX
	MOVQ bP+48(FP), R11
	MOVQ k+56(FP), CX

	// Load the 4×8 C block.
	MOVQ DI, DX
	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	ADDQ R8, DX
	VMOVUPD (DX), Y2
	VMOVUPD 32(DX), Y3
	ADDQ R8, DX
	VMOVUPD (DX), Y4
	VMOVUPD 32(DX), Y5
	ADDQ R8, DX
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7

	// A row cursors.
	MOVQ SI, R13
	ADDQ R9, R13
	MOVQ R13, R14
	ADDQ R9, R14
	MOVQ R14, R15
	ADDQ R9, R15

	TESTQ CX, CX
	JZ   kern4x8done

kern4x8loop:
	VMOVUPD (BX), Y8
	VMOVUPD 32(BX), Y9

	VBROADCASTSD (SI), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y0, Y0
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y1, Y1

	VBROADCASTSD (R13), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y2, Y2
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y3, Y3

	VBROADCASTSD (R14), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y4, Y4
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y5, Y5

	VBROADCASTSD (R15), Y10
	VMULPD Y8, Y10, Y11
	VADDPD Y11, Y6, Y6
	VMULPD Y9, Y10, Y11
	VADDPD Y11, Y7, Y7

	ADDQ R10, SI
	ADDQ R10, R13
	ADDQ R10, R14
	ADDQ R10, R15
	ADDQ R11, BX
	DECQ CX
	JNZ  kern4x8loop

kern4x8done:
	// Store the C block back.
	MOVQ c+0(FP), DX
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	ADDQ R8, DX
	VMOVUPD Y2, (DX)
	VMOVUPD Y3, 32(DX)
	ADDQ R8, DX
	VMOVUPD Y4, (DX)
	VMOVUPD Y5, 32(DX)
	ADDQ R8, DX
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func gemmKern4x16f(c *float32, cStride uintptr, a *float32, aRow, aP uintptr, b *float32, bP uintptr, k uintptr)
//
// float32 variant of gemmKern4x8: 4 rows × 16 columns (two 8-lane YMM per
// row), same register plan, same single-multiply single-add accumulation
// order per element.
TEXT ·gemmKern4x16f(SB), NOSPLIT, $0-64
	MOVQ c+0(FP), DI
	MOVQ cStride+8(FP), R8
	MOVQ a+16(FP), SI
	MOVQ aRow+24(FP), R9
	MOVQ aP+32(FP), R10
	MOVQ b+40(FP), BX
	MOVQ bP+48(FP), R11
	MOVQ k+56(FP), CX

	MOVQ DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ R8, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3
	ADDQ R8, DX
	VMOVUPS (DX), Y4
	VMOVUPS 32(DX), Y5
	ADDQ R8, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7

	MOVQ SI, R13
	ADDQ R9, R13
	MOVQ R13, R14
	ADDQ R9, R14
	MOVQ R14, R15
	ADDQ R9, R15

	TESTQ CX, CX
	JZ   kern4x16done

kern4x16loop:
	VMOVUPS (BX), Y8
	VMOVUPS 32(BX), Y9

	VBROADCASTSS (SI), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y1, Y1

	VBROADCASTSS (R13), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y3, Y3

	VBROADCASTSS (R14), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y4, Y4
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y5, Y5

	VBROADCASTSS (R15), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y6, Y6
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y7, Y7

	ADDQ R10, SI
	ADDQ R10, R13
	ADDQ R10, R14
	ADDQ R10, R15
	ADDQ R11, BX
	DECQ CX
	JNZ  kern4x16loop

kern4x16done:
	MOVQ c+0(FP), DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ R8, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)
	ADDQ R8, DX
	VMOVUPS Y4, (DX)
	VMOVUPS Y5, 32(DX)
	ADDQ R8, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)
	VZEROUPPER
	RET
