package mat

import (
	"testing"

	"enld/internal/parallel"
)

// simdSizes stresses the vector kernels' edge handling: rows mod 4, columns
// mod 8 (f64) and mod 16 (f32), k parities, and shapes on both sides of the
// parallel work threshold.
var simdSizes = []struct{ m, n, k int }{
	{4, 8, 1},
	{4, 8, 16},
	{8, 16, 32},
	{5, 9, 7},
	{7, 100, 64},
	{12, 20, 9},
	{13, 23, 31},
	{64, 100, 33},
	{64, 128, 48},
	{32, 96, 128},
	{1, 8, 4},
	{3, 64, 5},
}

// TestGemmSIMDMatchesGeneric pins the central claim of gemm_amd64.s: the
// AVX2 kernels produce bit-identical results to the pure-Go kernels for all
// three products, because both add the same products in the same per-element
// order with the same two roundings per step.
func TestGemmSIMDMatchesGeneric(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no SIMD kernels on this CPU")
	}
	rng := NewRNG(101)
	for _, sz := range simdSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.k, sz.n)
		Bt := randMatrix(rng, sz.n, sz.k)
		At := randMatrix(rng, sz.k, sz.m)
		seed := randMatrix(rng, sz.m, sz.n)

		type variant struct {
			name string
			run  func(C *Matrix)
		}
		variants := []variant{
			{"Gemm", func(C *Matrix) { Gemm(C, A, B) }},
			{"GemmNT", func(C *Matrix) { GemmNT(C, A, Bt) }},
			{"GemmTN", func(C *Matrix) { GemmTN(C, At, B) }},
		}
		for _, v := range variants {
			want := seed.Clone()
			prev := SetSIMD(false)
			v.run(want)
			SetSIMD(true)
			got := seed.Clone()
			v.run(got)
			SetSIMD(prev)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s(%dx%dx%d): SIMD differs from generic at %d: %v != %v",
						v.name, sz.m, sz.n, sz.k, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestGemmRowsCoverMatchesFull asserts any disjoint row cover — uneven
// splits included — reproduces the full-matrix product bit for bit, for both
// the NN and TN row kernels.
func TestGemmRowsCoverMatchesFull(t *testing.T) {
	rng := NewRNG(211)
	splits := [][]int{{0, 1}, {0, 3, 5}, {0, 4, 8, 12}, {0, 7}, {0, 2, 11}}
	for _, sz := range simdSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.k, sz.n)
		At := randMatrix(rng, sz.k, sz.m)
		seed := randMatrix(rng, sz.m, sz.n)

		wantNN := seed.Clone()
		Gemm(wantNN, A, B)
		wantTN := seed.Clone()
		GemmTN(wantTN, At, B)

		for _, cuts := range splits {
			gotNN := seed.Clone()
			gotTN := seed.Clone()
			for i, lo := range cuts {
				hi := sz.m
				if i+1 < len(cuts) {
					hi = cuts[i+1]
				}
				if lo > sz.m {
					lo = sz.m
				}
				if hi > sz.m {
					hi = sz.m
				}
				GemmRows(gotNN, A, B, lo, hi)
				GemmTNRows(gotTN, At, B, lo, hi)
			}
			for i := range gotNN.Data {
				if gotNN.Data[i] != wantNN.Data[i] {
					t.Fatalf("GemmRows cover %v (%dx%dx%d) differs at %d", cuts, sz.m, sz.n, sz.k, i)
				}
				if gotTN.Data[i] != wantTN.Data[i] {
					t.Fatalf("GemmTNRows cover %v (%dx%dx%d) differs at %d", cuts, sz.m, sz.n, sz.k, i)
				}
			}
		}
	}
}

// TestPackNT pins the panel layout GemmNT and the forward pass rely on:
// dst = Bᵀ exactly, with buffer reuse across differently-shaped packs.
func TestPackNT(t *testing.T) {
	rng := NewRNG(31)
	var panel Matrix
	for _, sz := range []struct{ n, k int }{{3, 5}, {8, 8}, {1, 7}, {16, 4}} {
		B := randMatrix(rng, sz.n, sz.k)
		PackNT(&panel, B)
		if panel.Rows != sz.k || panel.Cols != sz.n {
			t.Fatalf("PackNT shape = %dx%d, want %dx%d", panel.Rows, panel.Cols, sz.k, sz.n)
		}
		for p := 0; p < sz.k; p++ {
			for j := 0; j < sz.n; j++ {
				if panel.At(p, j) != B.At(j, p) {
					t.Fatalf("PackNT(%dx%d)[%d,%d] != B[%d,%d]", sz.n, sz.k, p, j, j, p)
				}
			}
		}
	}
	mustPanic(t, "PackNT aliased", func() { PackNT(&panel, &panel) })
}

// TestParallelGemmBitIdentical is the tentpole differential test: all three
// parallel products must be bit-identical to their sequential counterparts
// at worker counts 1, 2 and 8, on shapes below and above the sequential
// fallback threshold.
func TestParallelGemmBitIdentical(t *testing.T) {
	rng := NewRNG(307)
	for _, sz := range simdSizes {
		A := randMatrix(rng, sz.m, sz.k)
		B := randMatrix(rng, sz.k, sz.n)
		Bt := randMatrix(rng, sz.n, sz.k)
		At := randMatrix(rng, sz.k, sz.m)
		seed := randMatrix(rng, sz.m, sz.n)

		wantNN := seed.Clone()
		Gemm(wantNN, A, B)
		wantNT := seed.Clone()
		GemmNT(wantNT, A, Bt)
		wantTN := seed.Clone()
		GemmTN(wantTN, At, B)

		for _, workers := range []int{1, 2, 8} {
			pool := parallel.New(workers)
			gotNN := seed.Clone()
			ParallelGemm(pool, gotNN, A, B)
			gotNT := seed.Clone()
			ParallelGemmNT(pool, gotNT, A, Bt)
			gotTN := seed.Clone()
			ParallelGemmTN(pool, gotTN, At, B)
			for i := range gotNN.Data {
				if gotNN.Data[i] != wantNN.Data[i] {
					t.Fatalf("ParallelGemm(%dx%dx%d) w=%d differs at %d", sz.m, sz.n, sz.k, workers, i)
				}
				if gotNT.Data[i] != wantNT.Data[i] {
					t.Fatalf("ParallelGemmNT(%dx%dx%d) w=%d differs at %d", sz.m, sz.n, sz.k, workers, i)
				}
				if gotTN.Data[i] != wantTN.Data[i] {
					t.Fatalf("ParallelGemmTN(%dx%dx%d) w=%d differs at %d", sz.m, sz.n, sz.k, workers, i)
				}
			}
		}
	}
}

// TestParallelGemmNilPool pins the sequential fallback for a nil pool.
func TestParallelGemmNilPool(t *testing.T) {
	rng := NewRNG(401)
	A := randMatrix(rng, 8, 8)
	B := randMatrix(rng, 8, 8)
	want := NewMatrix(8, 8)
	Gemm(want, A, B)
	got := NewMatrix(8, 8)
	ParallelGemm(nil, got, A, B)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("nil-pool ParallelGemm differs at %d", i)
		}
	}
}

// TestGemmRowsPanics covers the row-range validation.
func TestGemmRowsPanics(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	c := NewMatrix(4, 4)
	mustPanic(t, "GemmRows bad range", func() { GemmRows(c, a, b, 3, 2) })
	mustPanic(t, "GemmRows range past end", func() { GemmRows(c, a, b, 0, 5) })
	mustPanic(t, "GemmTNRows bad range", func() { GemmTNRows(c, a, b, -1, 2) })
	bBad := NewMatrix(5, 2)
	mustPanic(t, "GemmRows mismatch", func() { GemmRows(c, a, bBad, 0, 4) })
	mustPanic(t, "GemmTNRows mismatch", func() { GemmTNRows(c, bBad, a, 0, 4) })
	mustPanic(t, "ParallelGemm mismatch", func() { ParallelGemm(nil, c, a, bBad) })
	mustPanic(t, "ParallelGemmNT mismatch", func() { ParallelGemmNT(nil, c, a, bBad) })
	mustPanic(t, "ParallelGemmTN mismatch", func() { ParallelGemmTN(nil, c, bBad, a) })
}
