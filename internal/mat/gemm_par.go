package mat

import "enld/internal/parallel"

// Parallel GEMM: the M dimension (output rows) split across a worker pool.
//
// Determinism (DESIGN.md §4): output rows never share an accumulator and the
// row-range kernels keep every element's k-loop sequential, so a disjoint
// row cover computes bit-identical results no matter which worker runs which
// chunk or in what order. The chunk boundaries come from ForEachChunk with a
// fixed chunk size, i.e. they depend only on the row count — never on the
// worker count — though for single-writer rows even that much is not needed
// for bit-identity.

// parGemmRowChunk is the row granularity of the parallel split: big enough
// that a chunk amortizes its dispatch, small enough that a 32–64 row batch
// still fans out.
const parGemmRowChunk = 8

// parGemmMinWork is the adaptive sequential fallback threshold, in
// multiply-add operations (m·n·k). Below it, pool dispatch costs more than
// the arithmetic saves — small products run inline on the calling goroutine.
// The threshold only selects the execution strategy; results are identical
// on both sides of it.
const parGemmMinWork = 64 * 1024

// parGemmRows fans rows [0, C.Rows) out over the pool, or runs sequentially
// for nil pools, single-worker pools and products below parGemmMinWork.
func parGemmRows(pool *parallel.Pool, C *Matrix, k int, rows func(i0, i1 int)) {
	m := C.Rows
	if pool == nil || pool.Workers() == 1 || m*C.Cols*k < parGemmMinWork {
		rows(0, m)
		return
	}
	pool.ForEachChunk(m, parGemmRowChunk, func(_, lo, hi int) {
		rows(lo, hi)
	})
}

// ParallelGemm computes C += A·B with output rows split across pool.
// Results are bit-identical to Gemm at any worker count. A nil pool runs
// sequentially.
func ParallelGemm(pool *parallel.Pool, C, A, B *Matrix) {
	if A.Cols != B.Rows || C.Rows != A.Rows || C.Cols != B.Cols {
		panic("mat: ParallelGemm dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	parGemmRows(pool, C, A.Cols, func(i0, i1 int) {
		gemmRowsNN(C, A, B, i0, i1)
	})
}

// ParallelGemmNT computes C += A·Bᵀ with output rows split across pool:
// Bᵀ is packed once (PackNT), then the row ranges run the A·B kernel against
// the shared read-only panel. Results are bit-identical to GemmNT at any
// worker count. A nil pool runs sequentially.
func ParallelGemmNT(pool *parallel.Pool, C, A, B *Matrix) {
	if A.Cols != B.Cols || C.Rows != A.Rows || C.Cols != B.Rows {
		panic("mat: ParallelGemmNT dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	if C.Rows == 0 || C.Cols == 0 || A.Cols == 0 {
		return
	}
	bt := ntPanels.Get().(*Matrix)
	PackNT(bt, B)
	parGemmRows(pool, C, A.Cols, func(i0, i1 int) {
		gemmRowsNN(C, A, bt, i0, i1)
	})
	ntPanels.Put(bt)
}

// ParallelGemmTN computes C += Aᵀ·B with output rows split across pool.
// Results are bit-identical to GemmTN at any worker count. A nil pool runs
// sequentially.
//
// Note this splits the *output* rows (columns of A), not the batch dimension
// k: per-chunk batch splits with an ordered reduction — the trainer's
// gradient pattern — remain the caller's job via GemmTNRows or GemmTN on row
// slices.
func ParallelGemmTN(pool *parallel.Pool, C, A, B *Matrix) {
	if A.Rows != B.Rows || C.Rows != A.Cols || C.Cols != B.Cols {
		panic("mat: ParallelGemmTN dimension mismatch")
	}
	checkGemmAlias(C, A, B)
	parGemmRows(pool, C, A.Rows, func(i0, i1 int) {
		gemmRowsTN(C, A, B, i0, i1)
	})
}
