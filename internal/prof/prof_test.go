package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartAllOutputs: every requested output file is created and non-empty
// after stop.
func TestStartAllOutputs(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	stop, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to flush.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i)
	}
	_ = x
	stop()
	for _, path := range []string{cpu, mem, tr} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

// TestStartEmptyPathsNoop: all-empty paths produce a non-nil no-op stop and
// no files.
func TestStartEmptyPathsNoop(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if stop == nil {
		t.Fatal("nil stop")
	}
	stop()
}

// TestStartTraceOnly: tracing works without CPU profiling.
func TestStartTraceOnly(t *testing.T) {
	tr := filepath.Join(t.TempDir(), "trace.out")
	stop, err := Start("", "", tr)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if st, err := os.Stat(tr); err != nil || st.Size() == 0 {
		t.Fatalf("trace output missing or empty: %v", err)
	}
}

// TestStartBadPathFails: an uncreatable trace path errors and does not leave
// CPU profiling running.
func TestStartBadPathFails(t *testing.T) {
	cpu := filepath.Join(t.TempDir(), "cpu.out")
	if _, err := Start(cpu, "", filepath.Join(t.TempDir(), "no", "such", "dir", "t.out")); err == nil {
		t.Fatal("bad trace path did not error")
	}
	// CPU profiling must have been stopped: a fresh Start succeeds.
	stop, err := Start(cpu, "", "")
	if err != nil {
		t.Fatalf("CPU profiler left running: %v", err)
	}
	stop()
}
