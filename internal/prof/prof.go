// Package prof wires the -cpuprofile/-memprofile flags of the CLIs to
// runtime/pprof. Inspect the output with the standard tooling, e.g.
//
//	go tool pprof -top cpu.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a stop
// function that ends it and, when memPath is non-empty, writes a heap profile
// (after a GC, so it reflects live memory). Empty paths disable the
// respective profile; stop is always non-nil and safe to defer. Exits through
// os.Exit skip deferred stops, so profiles cover successful runs only.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
	}, nil
}
