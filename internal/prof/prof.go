// Package prof wires the -cpuprofile/-memprofile/-trace flags of the CLIs to
// runtime/pprof and runtime/trace. Inspect the output with the standard
// tooling, e.g.
//
//	go tool pprof -top cpu.out
//	go tool trace trace.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins CPU profiling when cpuPath is non-empty and execution tracing
// when tracePath is non-empty, and returns a stop function that ends both
// and, when memPath is non-empty, writes a heap profile (after a GC, so it
// reflects live memory). Empty paths disable the respective output; stop is
// always non-nil and safe to defer. Exits through os.Exit skip deferred
// stops, so profiles cover successful runs only.
func Start(cpuPath, memPath, tracePath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			traceFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "prof:", err)
		}
	}, nil
}
