// Package plot renders small deterministic ASCII line charts. The
// experiment harness uses it to draw the paper's trajectory figures (Fig. 9,
// Fig. 13b) directly in the terminal next to their numeric tables, so a
// reproduction run can be eyeballed against the paper's curve shapes
// without any plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of y-values; x is implicit (0, 1, 2, ...).
type Series struct {
	Name string
	Y    []float64
}

// markers cycles through per-series point symbols.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Config controls chart geometry.
type Config struct {
	Width  int // plot columns (default 60)
	Height int // plot rows (default 12)
}

// Lines renders the series as an ASCII chart with a y-axis scale, x-axis
// index labels and a legend. Series of different lengths are allowed; NaN
// values are skipped. Rendering is fully deterministic.
func Lines(w io.Writer, title string, series []Series, cfg Config) {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 12
	}
	maxLen := 0
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if v < yMin {
				yMin = v
			}
			if v > yMax {
				yMax = v
			}
		}
	}
	if maxLen == 0 || math.IsInf(yMin, 1) {
		fmt.Fprintf(w, "%s: (no data)\n", title)
		return
	}
	if yMin == yMax {
		// Flat data: widen the range so the line sits mid-chart.
		yMin -= 0.5
		yMax += 0.5
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	toCol := func(i int) int {
		if maxLen == 1 {
			return 0
		}
		return i * (cfg.Width - 1) / (maxLen - 1)
	}
	toRow := func(v float64) int {
		frac := (v - yMin) / (yMax - yMin)
		r := int(math.Round(float64(cfg.Height-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= cfg.Height {
			r = cfg.Height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		prevCol, prevRow := -1, -1
		for i, v := range s.Y {
			if math.IsNaN(v) {
				prevCol = -1
				continue
			}
			col, row := toCol(i), toRow(v)
			if prevCol >= 0 {
				drawSegment(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = m
			prevCol, prevRow = col, row
		}
	}

	fmt.Fprintln(w, title)
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f", yMax)
		case cfg.Height - 1:
			label = fmt.Sprintf("%8.3f", yMin)
		case (cfg.Height - 1) / 2:
			label = fmt.Sprintf("%8.3f", (yMax+yMin)/2)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", cfg.Width))
	fmt.Fprintf(w, "%s  1%s%d\n", strings.Repeat(" ", 8),
		strings.Repeat(" ", cfg.Width-2-len(fmt.Sprint(maxLen))), maxLen)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
}

// drawSegment connects two points with a light dotted line, leaving existing
// non-space cells (markers) intact.
func drawSegment(grid [][]byte, c0, r0, c1, r1 int, ch byte) {
	steps := abs(c1-c0) + abs(r1-r0)
	if steps == 0 {
		return
	}
	for s := 1; s < steps; s++ {
		c := c0 + (c1-c0)*s/steps
		r := r0 + (r1-r0)*s/steps
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
