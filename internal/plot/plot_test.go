package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, title string, series []Series, cfg Config) string {
	t.Helper()
	var buf bytes.Buffer
	Lines(&buf, title, series, cfg)
	return buf.String()
}

func TestLinesBasic(t *testing.T) {
	out := render(t, "test chart", []Series{
		{Name: "rising", Y: []float64{0, 1, 2, 3}},
		{Name: "falling", Y: []float64{3, 2, 1, 0}},
	}, Config{Width: 20, Height: 6})
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* rising") || !strings.Contains(out, "o falling") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Axis labels show the data range.
	if !strings.Contains(out, "3.000") || !strings.Contains(out, "0.000") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestLinesRisingShape(t *testing.T) {
	out := render(t, "shape", []Series{{Name: "s", Y: []float64{0, 1, 2}}}, Config{Width: 11, Height: 5})
	lines := strings.Split(out, "\n")
	// Row 1 (after title) is the top of the plot: the last point belongs
	// there; the bottom plot row holds the first point.
	top := lines[1]
	bottom := lines[5]
	if !strings.Contains(top, "*") {
		t.Fatalf("max not at top:\n%s", out)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("min not at bottom:\n%s", out)
	}
	if strings.Index(bottom, "*") >= strings.Index(top, "*") {
		t.Fatalf("rising series not rising:\n%s", out)
	}
}

func TestLinesEmptyAndDegenerate(t *testing.T) {
	out := render(t, "empty", nil, Config{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart: %q", out)
	}
	out = render(t, "nan", []Series{{Name: "n", Y: []float64{math.NaN()}}}, Config{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("all-NaN chart: %q", out)
	}
	// Flat series must still render.
	out = render(t, "flat", []Series{{Name: "f", Y: []float64{2, 2, 2}}}, Config{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not drawn:\n%s", out)
	}
}

func TestLinesSkipsNaN(t *testing.T) {
	out := render(t, "gap", []Series{{Name: "g", Y: []float64{1, math.NaN(), 3}}}, Config{Width: 10, Height: 4})
	// Two data markers plus one in the legend.
	if strings.Count(out, "*") != 3 {
		t.Fatalf("expected 2 data markers + legend:\n%s", out)
	}
}

func TestLinesDeterministic(t *testing.T) {
	series := []Series{{Name: "a", Y: []float64{0.1, 0.5, 0.3, 0.9}}}
	a := render(t, "d", series, Config{})
	b := render(t, "d", series, Config{})
	if a != b {
		t.Fatal("rendering not deterministic")
	}
}

func TestLinesSinglePoint(t *testing.T) {
	out := render(t, "one", []Series{{Name: "p", Y: []float64{5}}}, Config{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestManySeriesMarkerCycle(t *testing.T) {
	series := make([]Series, 7)
	for i := range series {
		series[i] = Series{Name: string(rune('a' + i)), Y: []float64{float64(i), float64(i + 1)}}
	}
	out := render(t, "many", series, Config{Width: 12, Height: 8})
	// 7 series with 6 markers: the cycle reuses '*'.
	if !strings.Contains(out, "* a") || !strings.Contains(out, "* g") {
		t.Fatalf("marker cycle broken:\n%s", out)
	}
}
