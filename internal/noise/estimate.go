package noise

import (
	"fmt"

	"enld/internal/dataset"
)

// Classifier is the slice of model behaviour probability estimation needs:
// the predicted label argmax M(x, θ). internal/nn.Network satisfies it.
type Classifier interface {
	Predict(x []float64) int
}

// BatchClassifier is the batched fast path: models that can predict a whole
// input slice in one call (internal/nn.Network's blocked-GEMM batch kernels).
// EstimateJoint prefers it when available; predictions must equal per-sample
// Predict calls.
type BatchClassifier interface {
	PredictBatch(xs [][]float64, workers int) []int
}

// Joint is the estimated joint count matrix J of Eq. 3–4:
// J[i][j] = |{x : ỹ(x) = i, argmax M(x, θ) = j}|.
type Joint [][]int

// EstimateJoint counts the joint distribution of observed labels and model
// predictions over s (Eq. 3–4), following the assumption of [INCV] that the
// predicted label and the true label share a distribution. Samples with
// missing labels are skipped.
func EstimateJoint(s dataset.Set, model Classifier, classes int) (Joint, error) {
	return EstimateJointParallel(s, model, classes, 1)
}

// EstimateJointParallel is EstimateJoint with the model forward passes run in
// batches over the given worker count (0 = all cores) when the model supports
// it. Counts are identical at every worker count: predictions land in
// per-sample slots and the joint is accumulated sequentially.
func EstimateJointParallel(s dataset.Set, model Classifier, classes, workers int) (Joint, error) {
	if classes < 2 {
		return nil, fmt.Errorf("noise: estimate with %d classes", classes)
	}
	j := make(Joint, classes)
	for i := range j {
		j[i] = make([]int, classes)
	}
	labelled := make([]int, 0, len(s))
	xs := make([][]float64, 0, len(s))
	for i, smp := range s {
		if smp.Observed == dataset.Missing {
			continue
		}
		if smp.Observed < 0 || smp.Observed >= classes {
			return nil, fmt.Errorf("noise: observed label %d outside [0, %d)", smp.Observed, classes)
		}
		labelled = append(labelled, i)
		xs = append(xs, smp.X)
	}
	var preds []int
	if bc, ok := model.(BatchClassifier); ok {
		preds = bc.PredictBatch(xs, workers)
	} else {
		preds = make([]int, len(xs))
		for i, x := range xs {
			preds[i] = model.Predict(x)
		}
	}
	for n, i := range labelled {
		pred := preds[n]
		if pred < 0 || pred >= classes {
			return nil, fmt.Errorf("noise: model predicted %d outside [0, %d)", pred, classes)
		}
		j[s[i].Observed][pred]++
	}
	return j, nil
}

// Conditional is the estimated conditional probability matrix
// P̃[i][j] = P̃(y* = j | ỹ = i) of Eq. 5.
type Conditional [][]float64

// Conditional normalizes the joint counts row-wise (Eq. 5). Rows with no
// observations fall back to a point mass on the observed label itself, the
// only unbiased choice absent evidence.
func (j Joint) Conditional() Conditional {
	p := make(Conditional, len(j))
	for i, row := range j {
		p[i] = make([]float64, len(row))
		total := 0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			p[i][i] = 1
			continue
		}
		for k, c := range row {
			p[i][k] = float64(c) / float64(total)
		}
	}
	return p
}

// Sample draws a candidate true label for observed label i from P̃(·|ỹ=i),
// restricted to the allowed label set. This is random_label(i, P̃, ·) in
// Algorithm 2: contrastive sampling estimates the ambiguous sample's true
// label before querying neighbours of that label. If the restricted
// distribution has no mass, it falls back to i itself when allowed, else to
// the first allowed label.
func (p Conditional) Sample(i int, allowed map[int]bool, rnd interface{ Float64() float64 }) int {
	if i < 0 || i >= len(p) {
		return fallbackLabel(i, allowed)
	}
	var total float64
	for j, prob := range p[i] {
		if allowed == nil || allowed[j] {
			total += prob
		}
	}
	if total <= 0 {
		return fallbackLabel(i, allowed)
	}
	u := rnd.Float64() * total
	var acc float64
	for j, prob := range p[i] {
		if allowed != nil && !allowed[j] {
			continue
		}
		acc += prob
		if u < acc {
			return j
		}
	}
	return fallbackLabel(i, allowed)
}

func fallbackLabel(i int, allowed map[int]bool) int {
	if allowed == nil || allowed[i] {
		return i
	}
	best := -1
	for j := range allowed {
		if best == -1 || j < best {
			best = j
		}
	}
	if best == -1 {
		return i
	}
	return best
}

// TrueRate returns the empirical noise rate of s: the fraction of samples
// whose observed label differs from the true label (missing counts as
// noisy). Evaluation-only helper.
func TrueRate(s dataset.Set) float64 {
	if len(s) == 0 {
		return 0
	}
	noisy := 0
	for _, smp := range s {
		if smp.IsNoisy() {
			noisy++
		}
	}
	return float64(noisy) / float64(len(s))
}
