// Package noise implements label-noise generation and the probability
// estimation machinery of ENLD's initialization stage.
//
// Noise is modelled, exactly as in the paper (§III-A), by a label transition
// matrix T with T[i][j] = P(ỹ = j | y* = i). The evaluation uses pair
// asymmetric noise — T[i][i] = 1−η and T[i][(i+1) mod l] = η — and this
// package additionally provides symmetric noise and missing-label masking
// for the §V-H experiments.
package noise

import (
	"fmt"

	"enld/internal/dataset"
	"enld/internal/mat"
)

// TransitionMatrix is a row-stochastic matrix over labels:
// T[i][j] = P(ỹ = j | y* = i).
type TransitionMatrix [][]float64

// Identity returns the noise-free transition matrix for l classes.
func Identity(l int) TransitionMatrix {
	t := zeros(l)
	for i := range t {
		t[i][i] = 1
	}
	return t
}

// Pair returns the pair asymmetric noise matrix of the paper:
// T[i][i] = 1−eta, T[i][(i+1) mod l] = eta. It returns an error if eta is
// outside [0, 1) or l < 2.
func Pair(l int, eta float64) (TransitionMatrix, error) {
	if l < 2 {
		return nil, fmt.Errorf("noise: pair matrix needs >= 2 classes, got %d", l)
	}
	if eta < 0 || eta >= 1 {
		return nil, fmt.Errorf("noise: pair rate %v out of [0, 1)", eta)
	}
	t := zeros(l)
	for i := range t {
		t[i][i] = 1 - eta
		t[i][(i+1)%l] = eta
	}
	return t, nil
}

// Symmetric returns the uniform (symmetric) noise matrix: with probability
// eta the label flips to one of the other l−1 classes uniformly.
func Symmetric(l int, eta float64) (TransitionMatrix, error) {
	if l < 2 {
		return nil, fmt.Errorf("noise: symmetric matrix needs >= 2 classes, got %d", l)
	}
	if eta < 0 || eta >= 1 {
		return nil, fmt.Errorf("noise: symmetric rate %v out of [0, 1)", eta)
	}
	t := zeros(l)
	off := eta / float64(l-1)
	for i := range t {
		for j := range t[i] {
			if i == j {
				t[i][j] = 1 - eta
			} else {
				t[i][j] = off
			}
		}
	}
	return t, nil
}

func zeros(l int) TransitionMatrix {
	t := make(TransitionMatrix, l)
	for i := range t {
		t[i] = make([]float64, l)
	}
	return t
}

// Validate reports whether t is square and row-stochastic within tolerance.
func (t TransitionMatrix) Validate() error {
	l := len(t)
	for i, row := range t {
		if len(row) != l {
			return fmt.Errorf("noise: row %d has length %d, want %d", i, len(row), l)
		}
		var sum float64
		for _, v := range row {
			if v < 0 {
				return fmt.Errorf("noise: negative probability in row %d", i)
			}
			sum += v
		}
		if d := sum - 1; d > 1e-9 || d < -1e-9 {
			return fmt.Errorf("noise: row %d sums to %v", i, sum)
		}
	}
	return nil
}

// sampleRow draws a label from the categorical distribution in row.
func sampleRow(row []float64, rng *mat.RNG) int {
	u := rng.Float64()
	var acc float64
	for j, p := range row {
		acc += p
		if u < acc {
			return j
		}
	}
	return len(row) - 1
}

// Apply corrupts the observed labels of s in place according to t: each
// sample's Observed label is redrawn from T[y*]. True labels are untouched.
// It returns the number of samples whose observed label now differs from the
// true label.
func Apply(s dataset.Set, t TransitionMatrix, rng *mat.RNG) (noisy int, err error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	l := len(t)
	for i := range s {
		if s[i].True < 0 || s[i].True >= l {
			return noisy, fmt.Errorf("noise: sample %d has true label %d outside [0, %d)", s[i].ID, s[i].True, l)
		}
		s[i].Observed = sampleRow(t[s[i].True], rng)
		if s[i].Observed != s[i].True {
			noisy++
		}
	}
	return noisy, nil
}

// ApplyInstanceDependent corrupts labels with probability proportional to
// each sample's ambiguity: samples whose feature vector lies nearly as close
// to another class's mean as to their own flip most often, and they flip to
// that nearest competitor. This is the instance-dependent noise model of the
// broader label-noise literature (e.g. Chen et al., AAAI 2021, cited by the
// paper as [10]) — boundary samples are the ones human annotators actually
// mislabel. rate scales the overall corruption level; the expected fraction
// of flipped labels is roughly rate/2 (ambiguity averages ~0.5 on
// overlapping classes). Class means are estimated from the true labels of s
// itself. It returns the number of corrupted labels.
func ApplyInstanceDependent(s dataset.Set, classes int, rate float64, rng *mat.RNG) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("noise: instance-dependent rate %v out of [0, 1]", rate)
	}
	if len(s) == 0 {
		return 0, nil
	}
	dim := len(s[0].X)
	means := make([][]float64, classes)
	counts := make([]int, classes)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for _, smp := range s {
		if smp.True < 0 || smp.True >= classes {
			return 0, fmt.Errorf("noise: sample %d true label %d outside [0, %d)", smp.ID, smp.True, classes)
		}
		if len(smp.X) != dim {
			return 0, fmt.Errorf("noise: sample %d has dim %d, want %d", smp.ID, len(smp.X), dim)
		}
		mat.Axpy(1, smp.X, means[smp.True])
		counts[smp.True]++
	}
	for c := range means {
		if counts[c] > 0 {
			mat.Scale(1/float64(counts[c]), means[c])
		}
	}
	noisy := 0
	for i := range s {
		own := mat.Dist(s[i].X, means[s[i].True])
		// Nearest competitor class by mean distance.
		best, bestD := -1, 0.0
		for c := 0; c < classes; c++ {
			if c == s[i].True || counts[c] == 0 {
				continue
			}
			if d := mat.Dist(s[i].X, means[c]); best == -1 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == -1 {
			continue
		}
		// Ambiguity in (0, 1]: 1 when equidistant, → 0 when own class is
		// much closer.
		ambiguity := own / (own + bestD) * 2
		if ambiguity > 1 {
			ambiguity = 1
		}
		if rng.Float64() < rate*ambiguity {
			s[i].Observed = best
			noisy++
		} else {
			s[i].Observed = s[i].True
		}
	}
	return noisy, nil
}

// MaskMissing removes the observed label of a uniform fraction rate of the
// samples in s (setting Observed = dataset.Missing), returning how many were
// masked. This is the missing-label scenario of §V-H, where missing labels
// are treated as a special case of noisy labels.
func MaskMissing(s dataset.Set, rate float64, rng *mat.RNG) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("noise: missing rate %v out of [0, 1]", rate)
	}
	masked := 0
	for i := range s {
		if rng.Float64() < rate {
			s[i].Observed = dataset.Missing
			masked++
		}
	}
	return masked, nil
}
