package noise

import (
	"math"
	"testing"

	"enld/internal/dataset"
	"enld/internal/mat"
)

// FuzzApply checks that arbitrary (valid) noise rates and class counts never
// break the transition-matrix invariants: labels stay in range, true labels
// are untouched, and the empirical flip rate tracks eta.
func FuzzApply(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(4), false)
	f.Add(uint64(9), uint8(89), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed uint64, etaRaw, classesRaw uint8, symmetric bool) {
		eta := float64(etaRaw%95) / 100
		classes := int(classesRaw)%20 + 2
		var tm TransitionMatrix
		var err error
		if symmetric {
			tm, err = Symmetric(classes, eta)
		} else {
			tm, err = Pair(classes, eta)
		}
		if err != nil {
			t.Fatalf("matrix: %v", err)
		}
		if err := tm.Validate(); err != nil {
			t.Fatalf("validate: %v", err)
		}
		const n = 2000
		set := make(dataset.Set, n)
		for i := range set {
			set[i] = dataset.Sample{ID: i, True: i % classes, Observed: i % classes}
		}
		noisy, err := Apply(set, tm, mat.NewRNG(seed))
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		for i, s := range set {
			if s.True != i%classes {
				t.Fatal("true label mutated")
			}
			if s.Observed < 0 || s.Observed >= classes {
				t.Fatalf("observed label %d out of range", s.Observed)
			}
		}
		if rate := float64(noisy) / n; math.Abs(rate-eta) > 0.08 {
			t.Fatalf("empirical rate %v for eta %v", rate, eta)
		}
	})
}

// FuzzConditionalSample checks the estimated-probability sampler never
// returns a label outside the allowed set when the set is non-empty.
func FuzzConditionalSample(f *testing.F) {
	f.Add(uint64(3), uint8(5), uint8(2), uint8(0b1011))
	f.Fuzz(func(t *testing.T, seed uint64, classesRaw, rowRaw, allowedMask uint8) {
		classes := int(classesRaw)%8 + 2
		rng := mat.NewRNG(seed)
		// Random row-stochastic conditional.
		cond := make(Conditional, classes)
		for i := range cond {
			cond[i] = make([]float64, classes)
			var sum float64
			for j := range cond[i] {
				cond[i][j] = rng.Float64()
				sum += cond[i][j]
			}
			for j := range cond[i] {
				cond[i][j] /= sum
			}
		}
		allowed := map[int]bool{}
		for j := 0; j < classes; j++ {
			if allowedMask&(1<<uint(j%8)) != 0 {
				allowed[j] = true
			}
		}
		if len(allowed) == 0 {
			return
		}
		row := int(rowRaw) % classes
		for trial := 0; trial < 50; trial++ {
			got := cond.Sample(row, allowed, rng)
			if !allowed[got] {
				t.Fatalf("sampled %d outside allowed %v", got, allowed)
			}
		}
	})
}
