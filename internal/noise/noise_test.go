package noise

import (
	"math"
	"testing"
	"testing/quick"

	"enld/internal/dataset"
	"enld/internal/mat"
)

func TestPairMatrix(t *testing.T) {
	tm, err := Pair(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if tm[i][i] != 0.7 {
			t.Errorf("T[%d][%d] = %v", i, i, tm[i][i])
		}
		if tm[i][(i+1)%4] != 0.3 {
			t.Errorf("T[%d][%d] = %v", i, (i+1)%4, tm[i][(i+1)%4])
		}
	}
}

func TestPairErrors(t *testing.T) {
	if _, err := Pair(1, 0.1); err == nil {
		t.Error("1 class accepted")
	}
	if _, err := Pair(4, 1.0); err == nil {
		t.Error("eta=1 accepted")
	}
	if _, err := Pair(4, -0.1); err == nil {
		t.Error("negative eta accepted")
	}
}

func TestSymmetricMatrix(t *testing.T) {
	tm, err := Symmetric(5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm[0][0] != 0.6 {
		t.Errorf("diagonal %v", tm[0][0])
	}
	if tm[0][1] != 0.1 {
		t.Errorf("off-diagonal %v", tm[0][1])
	}
}

func TestIdentity(t *testing.T) {
	tm := Identity(3)
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	set := dataset.Set{{ID: 0, True: 1, Observed: 1}, {ID: 1, True: 2, Observed: 2}}
	n, err := Apply(set, tm, mat.NewRNG(1))
	if err != nil || n != 0 {
		t.Fatalf("identity noise corrupted %d labels, err=%v", n, err)
	}
}

func TestValidateRejectsBadMatrices(t *testing.T) {
	bad := TransitionMatrix{{0.5, 0.4}, {0.5, 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("non-stochastic row accepted")
	}
	neg := TransitionMatrix{{1.5, -0.5}, {0, 1}}
	if err := neg.Validate(); err == nil {
		t.Error("negative entry accepted")
	}
	ragged := TransitionMatrix{{1}, {0, 1}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestApplyPairRate(t *testing.T) {
	const n = 20000
	set := make(dataset.Set, n)
	for i := range set {
		set[i] = dataset.Sample{ID: i, True: i % 4, Observed: i % 4}
	}
	tm, _ := Pair(4, 0.3)
	noisy, err := Apply(set, tm, mat.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(noisy) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical noise rate %v, want ~0.3", rate)
	}
	// Pair noise only flips to (i+1) mod l.
	for _, s := range set {
		if s.Observed != s.True && s.Observed != (s.True+1)%4 {
			t.Fatalf("pair noise flipped %d -> %d", s.True, s.Observed)
		}
	}
	if got := TrueRate(set); math.Abs(got-rate) > 1e-12 {
		t.Fatalf("TrueRate %v != %v", got, rate)
	}
}

func TestApplyRejectsOutOfRangeTrueLabel(t *testing.T) {
	set := dataset.Set{{ID: 0, True: 7, Observed: 7}}
	tm, _ := Pair(4, 0.1)
	if _, err := Apply(set, tm, mat.NewRNG(1)); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestMaskMissing(t *testing.T) {
	const n = 10000
	set := make(dataset.Set, n)
	for i := range set {
		set[i] = dataset.Sample{ID: i, True: 0, Observed: 0}
	}
	masked, err := MaskMissing(set, 0.25, mat.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(masked)/n-0.25) > 0.02 {
		t.Fatalf("masked %d of %d", masked, n)
	}
	count := 0
	for _, s := range set {
		if s.IsMissing() {
			count++
		}
	}
	if count != masked {
		t.Fatalf("count %d != reported %d", count, masked)
	}
	if _, err := MaskMissing(set, 1.5, mat.NewRNG(1)); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

type constantModel struct{ label int }

func (m constantModel) Predict([]float64) int { return m.label }

// mapModel predicts by looking up the first feature value.
type mapModel map[float64]int

func (m mapModel) Predict(x []float64) int { return m[x[0]] }

func TestEstimateJoint(t *testing.T) {
	set := dataset.Set{
		{ID: 0, X: []float64{0}, Observed: 0},
		{ID: 1, X: []float64{1}, Observed: 0},
		{ID: 2, X: []float64{2}, Observed: 1},
		{ID: 3, X: []float64{3}, Observed: dataset.Missing},
	}
	model := mapModel{0: 0, 1: 1, 2: 1, 3: 0}
	j, err := EstimateJoint(set, model, 2)
	if err != nil {
		t.Fatal(err)
	}
	if j[0][0] != 1 || j[0][1] != 1 || j[1][1] != 1 || j[1][0] != 0 {
		t.Fatalf("joint = %v", j)
	}
}

func TestEstimateJointErrors(t *testing.T) {
	if _, err := EstimateJoint(nil, constantModel{}, 1); err == nil {
		t.Error("1 class accepted")
	}
	set := dataset.Set{{ID: 0, X: []float64{0}, Observed: 5}}
	if _, err := EstimateJoint(set, constantModel{}, 2); err == nil {
		t.Error("out-of-range observed label accepted")
	}
	set = dataset.Set{{ID: 0, X: []float64{0}, Observed: 0}}
	if _, err := EstimateJoint(set, constantModel{label: 9}, 2); err == nil {
		t.Error("out-of-range prediction accepted")
	}
}

func TestConditionalNormalization(t *testing.T) {
	j := Joint{{8, 2}, {0, 0}}
	p := j.Conditional()
	if p[0][0] != 0.8 || p[0][1] != 0.2 {
		t.Fatalf("row 0 = %v", p[0])
	}
	// Empty row falls back to point mass on itself.
	if p[1][1] != 1 || p[1][0] != 0 {
		t.Fatalf("row 1 = %v", p[1])
	}
}

func TestConditionalSample(t *testing.T) {
	p := Conditional{{0.5, 0.5, 0}, {0, 1, 0}, {0, 0, 1}}
	rng := mat.NewRNG(4)
	// Unrestricted sampling from row 1 always yields 1.
	for i := 0; i < 20; i++ {
		if got := p.Sample(1, nil, rng); got != 1 {
			t.Fatalf("Sample(1) = %d", got)
		}
	}
	// Restricted to {0}: row 0 has mass there.
	allowed := map[int]bool{0: true}
	for i := 0; i < 20; i++ {
		if got := p.Sample(0, allowed, rng); got != 0 {
			t.Fatalf("restricted Sample = %d", got)
		}
	}
	// Row 2 restricted to {0}: no mass → fallback to first allowed.
	if got := p.Sample(2, allowed, rng); got != 0 {
		t.Fatalf("fallback Sample = %d", got)
	}
	// Out-of-range observed label falls back gracefully.
	if got := p.Sample(9, nil, rng); got != 9 {
		t.Fatalf("out-of-range Sample = %d", got)
	}
	// Empty allowed set falls back to i.
	if got := p.Sample(1, map[int]bool{}, rng); got != 1 {
		t.Fatalf("empty-allowed Sample = %d", got)
	}
}

func TestConditionalSampleDistribution(t *testing.T) {
	p := Conditional{{0.7, 0.3}}
	rng := mat.NewRNG(5)
	const n = 50000
	count := 0
	for i := 0; i < n; i++ {
		if p.Sample(0, nil, rng) == 0 {
			count++
		}
	}
	if got := float64(count) / n; math.Abs(got-0.7) > 0.02 {
		t.Fatalf("sampled P(0) = %v, want ~0.7", got)
	}
}

// Property: Apply preserves true labels and sample count for arbitrary
// pair-noise rates.
func TestApplyProperty(t *testing.T) {
	f := func(seed uint64, etaRaw uint8) bool {
		eta := float64(etaRaw%90) / 100
		set := make(dataset.Set, 200)
		for i := range set {
			set[i] = dataset.Sample{ID: i, True: i % 5, Observed: i % 5}
		}
		tm, err := Pair(5, eta)
		if err != nil {
			return false
		}
		if _, err := Apply(set, tm, mat.NewRNG(seed)); err != nil {
			return false
		}
		for i, s := range set {
			if s.True != i%5 {
				return false
			}
			if s.Observed < 0 || s.Observed >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestApplyInstanceDependent(t *testing.T) {
	// Two overlapping classes: boundary samples must flip more often.
	sp := struct{ n int }{n: 2000}
	rng := mat.NewRNG(90)
	set := make(dataset.Set, 0, sp.n)
	for i := 0; i < sp.n; i++ {
		c := i % 2
		mean := -2.0
		if c == 1 {
			mean = 2.0
		}
		set = append(set, dataset.Sample{
			ID: i, X: []float64{mean + rng.Norm()*1.5}, Observed: c, True: c,
		})
	}
	noisy, err := ApplyInstanceDependent(set, 2, 0.6, mat.NewRNG(91))
	if err != nil {
		t.Fatal(err)
	}
	if noisy == 0 || noisy == sp.n {
		t.Fatalf("noisy = %d", noisy)
	}
	// Flip rate near the boundary (|x| < 0.5) must exceed the rate far from
	// it (|x| > 3).
	nearFlips, nearTotal, farFlips, farTotal := 0, 0, 0, 0
	for _, s := range set {
		x := s.X[0]
		if x < 0 {
			x = -x
		}
		switch {
		case x < 0.5:
			nearTotal++
			if s.IsNoisy() {
				nearFlips++
			}
		case x > 3:
			farTotal++
			if s.IsNoisy() {
				farFlips++
			}
		}
	}
	if nearTotal == 0 || farTotal == 0 {
		t.Fatal("bad test geometry")
	}
	nearRate := float64(nearFlips) / float64(nearTotal)
	farRate := float64(farFlips) / float64(farTotal)
	if nearRate <= farRate {
		t.Fatalf("boundary flip rate %v not above far rate %v", nearRate, farRate)
	}
	// Flips always go to the nearest competitor (the other class here).
	for _, s := range set {
		if s.IsNoisy() && s.Observed == s.True {
			t.Fatal("inconsistent noisy flag")
		}
	}
}

func TestApplyInstanceDependentErrors(t *testing.T) {
	set := dataset.Set{{ID: 0, X: []float64{1}, True: 0, Observed: 0}}
	if _, err := ApplyInstanceDependent(set, 2, 1.5, mat.NewRNG(1)); err == nil {
		t.Error("rate > 1 accepted")
	}
	bad := dataset.Set{{ID: 0, X: []float64{1}, True: 5, Observed: 5}}
	if _, err := ApplyInstanceDependent(bad, 2, 0.2, mat.NewRNG(1)); err == nil {
		t.Error("out-of-range true label accepted")
	}
	if n, err := ApplyInstanceDependent(nil, 2, 0.2, mat.NewRNG(1)); err != nil || n != 0 {
		t.Error("empty set not a no-op")
	}
	// Single-class data has no competitor: labels stay clean.
	single := dataset.Set{{ID: 0, X: []float64{1}, True: 0, Observed: 0}, {ID: 1, X: []float64{2}, True: 0, Observed: 0}}
	if n, err := ApplyInstanceDependent(single, 1, 0.9, mat.NewRNG(1)); err != nil || n != 0 {
		t.Errorf("single class flipped %d, err=%v", n, err)
	}
}
