// Package fault provides a deterministic, seed-driven chaos wrapper around
// any detect.Detector. It injects the failure modes a production data-lake
// service must survive — transient errors, panics, added latency and
// corrupted incremental shards — so every resilience path in internal/lake
// (retry, deadline, circuit breaker, fallback degradation) is exercisable in
// tests and in cmd/lakesim without depending on real flakiness.
//
// Determinism contract: the fault decisions of call k depend only on the
// configured seed and k. Every call draws one uniform variate per fault
// class under a lock, regardless of which faults fire, so the decision
// stream never shifts when rates change for a different class. Under a
// concurrent worker pool the assignment of call indices to tasks varies
// with scheduling, but the multiset of injected faults over n calls is
// reproducible from the seed alone — the property controlled-perturbation
// benchmarking needs.
package fault

import (
	"fmt"
	"sync"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
)

// Config sets the injection rates. All rates are probabilities in [0, 1];
// the zero value injects nothing and passes every call through unchanged.
type Config struct {
	// Seed drives all fault decisions; a fixed seed reproduces the fault
	// sequence exactly.
	Seed uint64
	// FailRate is the probability a call returns an injected transient
	// error instead of invoking the inner detector.
	FailRate float64
	// PanicRate is the probability a call panics, exercising the service's
	// panic containment.
	PanicRate float64
	// SlowRate is the probability a call sleeps for Latency before
	// proceeding, exercising per-task deadlines.
	SlowRate float64
	// Latency is the delay added to slowed calls (default 50ms when
	// SlowRate > 0).
	Latency time.Duration
	// CorruptRate is the probability the shard handed to the inner
	// detector has a fraction of its observed labels scrambled — the
	// detector still runs, but on damaged input.
	CorruptRate float64
	// CorruptFrac is the fraction of samples whose labels are scrambled in
	// a corrupted shard (default 0.5).
	CorruptFrac float64
}

// Error is an injected transient failure. It implements the Transient
// marker the lake service's retry policy looks for.
type Error struct {
	// Call is the 1-based injector call index that failed.
	Call int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected transient failure (call %d)", e.Call)
}

// Transient marks the failure as retryable.
func (e *Error) Transient() bool { return true }

// Stats counts what the injector has done so far.
type Stats struct {
	Calls       int
	Failures    int
	Panics      int
	Slowdowns   int
	Corruptions int
}

// Injector wraps a detector and injects faults per Config. It is safe for
// concurrent Detect calls (the lake service runs detectors from a worker
// pool).
type Injector struct {
	inner detect.Detector
	cfg   Config

	mu    sync.Mutex
	rng   *mat.RNG
	stats Stats
}

// New returns an injector wrapping inner. Rates outside [0, 1] and a nil
// inner detector are rejected.
func New(inner detect.Detector, cfg Config) (*Injector, error) {
	if inner == nil {
		return nil, fmt.Errorf("fault: nil inner detector")
	}
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"fail", cfg.FailRate},
		{"panic", cfg.PanicRate},
		{"slow", cfg.SlowRate},
		{"corrupt", cfg.CorruptRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return nil, fmt.Errorf("fault: %s rate %v outside [0, 1]", r.name, r.rate)
		}
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	if cfg.CorruptFrac <= 0 || cfg.CorruptFrac > 1 {
		cfg.CorruptFrac = 0.5
	}
	return &Injector{inner: inner, cfg: cfg, rng: mat.NewRNG(cfg.Seed)}, nil
}

// Name implements detect.Detector.
func (in *Injector) Name() string { return "fault(" + in.inner.Name() + ")" }

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Detect implements detect.Detector: it draws this call's fault decisions,
// applies them, and delegates to the inner detector when the call survives.
func (in *Injector) Detect(d dataset.Set) (*detect.Result, error) {
	in.mu.Lock()
	in.stats.Calls++
	call := in.stats.Calls
	slow := in.rng.Float64() < in.cfg.SlowRate
	corrupt := in.rng.Float64() < in.cfg.CorruptRate
	fail := in.rng.Float64() < in.cfg.FailRate
	panicNow := in.rng.Float64() < in.cfg.PanicRate
	if slow {
		in.stats.Slowdowns++
	}
	if fail {
		in.stats.Failures++
	} else if panicNow {
		in.stats.Panics++
	} else if corrupt {
		in.stats.Corruptions++
	}
	in.mu.Unlock()

	if slow {
		time.Sleep(in.cfg.Latency)
	}
	if fail {
		return nil, &Error{Call: call}
	}
	if panicNow {
		panic(fmt.Sprintf("fault: injected panic (call %d)", call))
	}
	if corrupt {
		d = corruptShard(d, in.cfg.Seed^(uint64(call)*0x9e3779b97f4a7c15), in.cfg.CorruptFrac)
	}
	return in.inner.Detect(d)
}

// corruptShard returns a copy of d with roughly frac of its observed labels
// scrambled by swapping labels between random sample pairs. Swapping keeps
// every label in-domain, so the damage models realistic in-lake corruption
// (rows attributed to the wrong record) rather than type errors.
func corruptShard(d dataset.Set, seed uint64, frac float64) dataset.Set {
	if len(d) < 2 {
		return d
	}
	out := d.Clone()
	rng := mat.NewRNG(seed)
	swaps := int(float64(len(out)) * frac / 2)
	if swaps < 1 {
		swaps = 1
	}
	for s := 0; s < swaps; s++ {
		i := rng.Intn(len(out))
		j := rng.Intn(len(out))
		out[i].Observed, out[j].Observed = out[j].Observed, out[i].Observed
	}
	return out
}
