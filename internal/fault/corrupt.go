package fault

import (
	"fmt"
	"math"
	"os"

	"enld/internal/mat"
	"enld/internal/nn"
)

// Model-state corruption injectors. The lake-serving chaos wrapper above
// damages detector *inputs*; these damage the *model and its checkpoints* —
// the failure modes the training stack's numerical-health watchdog and
// checksummed snapshots exist to survive. All are deterministic from their
// seed so recovery tests replay exactly.

// pickParam selects a seeded-uniform parameter position across all weight
// matrices of net.
func pickParam(n *nn.Network, seed uint64) (layer, index int) {
	rng := mat.NewRNG(seed)
	total := 0
	for _, w := range n.Weights {
		total += len(w.Data)
	}
	flat := rng.Intn(total)
	for l, w := range n.Weights {
		if flat < len(w.Data) {
			return l, flat
		}
		flat -= len(w.Data)
	}
	panic("fault: pickParam out of range")
}

// PokeNaN overwrites one seeded-random weight of net with NaN, modelling a
// poisoned reduction or a hardware fault escaping the kernels. It returns
// the damaged position.
func PokeNaN(n *nn.Network, seed uint64) (layer, index int) {
	layer, index = pickParam(n, seed)
	n.Weights[layer].Data[index] = math.NaN()
	return layer, index
}

// FlipWeightBit flips one seeded-random bit of one seeded-random weight —
// the classic silent-memory-corruption fault. Depending on the bit this
// yields anything from an invisible perturbation to an Inf/NaN or a
// finite-but-huge value that only loss-divergence checks catch.
func FlipWeightBit(n *nn.Network, seed uint64) (layer, index int, bit uint) {
	layer, index = pickParam(n, seed)
	rng := mat.NewRNG(seed ^ 0xd1b54a32d192ed03)
	bit = uint(rng.Intn(64))
	w := n.Weights[layer]
	w.Data[index] = math.Float64frombits(math.Float64bits(w.Data[index]) ^ (1 << bit))
	return layer, index, bit
}

// TearFile truncates path to frac of its current size, simulating a crash
// partway through a non-atomic checkpoint write. frac must be in [0, 1).
func TearFile(path string, frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("fault: tear fraction %v outside [0, 1)", frac)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("fault: tear %s: %w", path, err)
	}
	return os.Truncate(path, int64(float64(info.Size())*frac))
}

// TruncateAt cuts path to exactly offset bytes, simulating a crash at a
// chosen point of a write — the byte-precise sibling of TearFile for tests
// that aim at a specific record boundary. offset must be in [0, size].
func TruncateAt(path string, offset int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("fault: truncate %s: %w", path, err)
	}
	if offset < 0 || offset > info.Size() {
		return fmt.Errorf("fault: truncate %s at %d: outside [0, %d]", path, offset, info.Size())
	}
	return os.Truncate(path, offset)
}

// DuplicateTail re-appends the final n bytes of path, modelling a replayed
// or double-flushed write: an append that was retried after an unreported
// success leaves the same record twice at the log tail. n must be in
// (0, size].
func DuplicateTail(path string, n int64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("fault: duplicate tail %s: %w", path, err)
	}
	if n <= 0 || n > int64(len(data)) {
		return fmt.Errorf("fault: duplicate tail %s: %d bytes outside (0, %d]", path, n, len(data))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return fmt.Errorf("fault: duplicate tail %s: %w", path, err)
	}
	defer f.Close()
	if _, err := f.Write(data[int64(len(data))-n:]); err != nil {
		return fmt.Errorf("fault: duplicate tail %s: %w", path, err)
	}
	return nil
}

// CorruptFileByte XORs the byte at offset with 0xff, modelling a single
// flipped storage byte in an otherwise intact checkpoint.
func CorruptFileByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("fault: corrupt %s: %w", path, err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offset); err != nil {
		return fmt.Errorf("fault: corrupt %s at %d: %w", path, offset, err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, offset); err != nil {
		return fmt.Errorf("fault: corrupt %s at %d: %w", path, offset, err)
	}
	return nil
}
