package fault

import (
	"fmt"
	"math"
	"os"

	"enld/internal/mat"
	"enld/internal/nn"
)

// Model-state corruption injectors. The lake-serving chaos wrapper above
// damages detector *inputs*; these damage the *model and its checkpoints* —
// the failure modes the training stack's numerical-health watchdog and
// checksummed snapshots exist to survive. All are deterministic from their
// seed so recovery tests replay exactly.

// pickParam selects a seeded-uniform parameter position across all weight
// matrices of net.
func pickParam(n *nn.Network, seed uint64) (layer, index int) {
	rng := mat.NewRNG(seed)
	total := 0
	for _, w := range n.Weights {
		total += len(w.Data)
	}
	flat := rng.Intn(total)
	for l, w := range n.Weights {
		if flat < len(w.Data) {
			return l, flat
		}
		flat -= len(w.Data)
	}
	panic("fault: pickParam out of range")
}

// PokeNaN overwrites one seeded-random weight of net with NaN, modelling a
// poisoned reduction or a hardware fault escaping the kernels. It returns
// the damaged position.
func PokeNaN(n *nn.Network, seed uint64) (layer, index int) {
	layer, index = pickParam(n, seed)
	n.Weights[layer].Data[index] = math.NaN()
	return layer, index
}

// FlipWeightBit flips one seeded-random bit of one seeded-random weight —
// the classic silent-memory-corruption fault. Depending on the bit this
// yields anything from an invisible perturbation to an Inf/NaN or a
// finite-but-huge value that only loss-divergence checks catch.
func FlipWeightBit(n *nn.Network, seed uint64) (layer, index int, bit uint) {
	layer, index = pickParam(n, seed)
	rng := mat.NewRNG(seed ^ 0xd1b54a32d192ed03)
	bit = uint(rng.Intn(64))
	w := n.Weights[layer]
	w.Data[index] = math.Float64frombits(math.Float64bits(w.Data[index]) ^ (1 << bit))
	return layer, index, bit
}

// TearFile truncates path to frac of its current size, simulating a crash
// partway through a non-atomic checkpoint write. frac must be in [0, 1).
func TearFile(path string, frac float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("fault: tear fraction %v outside [0, 1)", frac)
	}
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("fault: tear %s: %w", path, err)
	}
	return os.Truncate(path, int64(float64(info.Size())*frac))
}

// CorruptFileByte XORs the byte at offset with 0xff, modelling a single
// flipped storage byte in an otherwise intact checkpoint.
func CorruptFileByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("fault: corrupt %s: %w", path, err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offset); err != nil {
		return fmt.Errorf("fault: corrupt %s at %d: %w", path, offset, err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, offset); err != nil {
		return fmt.Errorf("fault: corrupt %s at %d: %w", path, offset, err)
	}
	return nil
}
