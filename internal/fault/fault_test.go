package fault

import (
	"errors"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
)

// echo is a trivial inner detector marking everything clean and recording
// the labels it was handed.
type echo struct {
	lastLabels []int
}

func (*echo) Name() string { return "echo" }

func (e *echo) Detect(d dataset.Set) (*detect.Result, error) {
	res := detect.NewResult()
	e.lastLabels = e.lastLabels[:0]
	for _, smp := range d {
		e.lastLabels = append(e.lastLabels, smp.Observed)
		res.MarkClean(smp.ID)
	}
	return res, nil
}

func testShard(n int) dataset.Set {
	out := make(dataset.Set, n)
	for i := range out {
		out[i] = dataset.Sample{ID: i, X: []float64{float64(i)}, Observed: i % 5, True: i % 5}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := New(&echo{}, Config{FailRate: 1.5}); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := New(&echo{}, Config{PanicRate: -0.1}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestZeroConfigPassesThrough(t *testing.T) {
	in, err := New(&echo{}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		res, err := in.Detect(testShard(4))
		if err != nil || len(res.Clean) != 4 {
			t.Fatalf("call %d: res=%v err=%v", i, res, err)
		}
	}
	st := in.Stats()
	if st.Calls != 50 || st.Failures+st.Panics+st.Slowdowns+st.Corruptions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailRateDeterministic(t *testing.T) {
	run := func() []bool {
		in, _ := New(&echo{}, Config{Seed: 7, FailRate: 0.3})
		outcomes := make([]bool, 100)
		for i := range outcomes {
			_, err := in.Detect(testShard(3))
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d differs between identically seeded runs", i)
		}
		if a[i] {
			fails++
		}
	}
	// 0.3 rate over 100 calls: demand a loose band, not an exact count.
	if fails < 10 || fails > 60 {
		t.Fatalf("%d/100 failures at rate 0.3", fails)
	}
}

func TestInjectedErrorIsTransient(t *testing.T) {
	in, _ := New(&echo{}, Config{Seed: 1, FailRate: 1})
	_, err := in.Detect(testShard(3))
	if err == nil {
		t.Fatal("no error at rate 1")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("injected error %v not marked transient", err)
	}
}

func TestPanicInjection(t *testing.T) {
	in, _ := New(&echo{}, Config{Seed: 1, PanicRate: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at rate 1")
		}
	}()
	in.Detect(testShard(3))
}

func TestLatencyInjection(t *testing.T) {
	in, _ := New(&echo{}, Config{Seed: 1, SlowRate: 1, Latency: 20 * time.Millisecond})
	start := time.Now()
	if _, err := in.Detect(testShard(3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("call returned after %s, latency not injected", elapsed)
	}
	if st := in.Stats(); st.Slowdowns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptionScramblesCopyNotOriginal(t *testing.T) {
	inner := &echo{}
	in, _ := New(inner, Config{Seed: 3, CorruptRate: 1, CorruptFrac: 1})
	shard := testShard(40)
	orig := make([]int, len(shard))
	for i, smp := range shard {
		orig[i] = smp.Observed
	}
	if _, err := in.Detect(shard); err != nil {
		t.Fatal(err)
	}
	// The original shard is untouched...
	for i, smp := range shard {
		if smp.Observed != orig[i] {
			t.Fatal("corruption mutated the caller's shard")
		}
	}
	// ...but the inner detector saw scrambled labels.
	changed := 0
	for i, lbl := range inner.lastLabels {
		if lbl != orig[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("inner detector saw no corrupted labels")
	}
	if st := in.Stats(); st.Corruptions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultPriority(t *testing.T) {
	// A call that both fails and would corrupt counts only the failure, and
	// the inner detector is never invoked.
	inner := &echo{}
	in, _ := New(inner, Config{Seed: 1, FailRate: 1, CorruptRate: 1})
	if _, err := in.Detect(testShard(3)); err == nil {
		t.Fatal("no failure at rate 1")
	}
	st := in.Stats()
	if st.Failures != 1 || st.Corruptions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(inner.lastLabels) != 0 {
		t.Fatal("inner detector ran on a failed call")
	}
}

func TestName(t *testing.T) {
	in, _ := New(&echo{}, Config{})
	if in.Name() != "fault(echo)" {
		t.Fatalf("name = %q", in.Name())
	}
}
