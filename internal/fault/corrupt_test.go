package fault

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"enld/internal/mat"
	"enld/internal/nn"
)

func TestPokeNaNIsDeterministic(t *testing.T) {
	a := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
	b := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
	al, ai := PokeNaN(a, 9)
	bl, bi := PokeNaN(b, 9)
	if al != bl || ai != bi {
		t.Fatalf("same seed hit (%d,%d) and (%d,%d)", al, ai, bl, bi)
	}
	if !math.IsNaN(a.Weights[al].Data[ai]) {
		t.Fatalf("weight (%d,%d) = %v, want NaN", al, ai, a.Weights[al].Data[ai])
	}
	if err := a.CheckFinite(); err == nil {
		t.Fatal("poked network still passes CheckFinite")
	}
}

func TestPokeNaNCoversAllLayers(t *testing.T) {
	hit := map[int]bool{}
	for seed := uint64(0); seed < 64; seed++ {
		n := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
		l, _ := PokeNaN(n, seed)
		hit[l] = true
	}
	if len(hit) != 2 {
		t.Fatalf("64 seeds hit layers %v, want both layers", hit)
	}
}

func TestFlipWeightBitChangesExactlyOneBit(t *testing.T) {
	n := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
	orig := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
	l, i, bit := FlipWeightBit(n, 21)
	if bit > 63 {
		t.Fatalf("bit = %d out of range", bit)
	}
	got := math.Float64bits(n.Weights[l].Data[i])
	want := math.Float64bits(orig.Weights[l].Data[i])
	if got^want != 1<<bit {
		t.Fatalf("weight bits differ by %064b, want bit %d only", got^want, bit)
	}
	// Every other parameter is untouched.
	for ll := range n.Weights {
		for ii, v := range n.Weights[ll].Data {
			if ll == l && ii == i {
				continue
			}
			if v != orig.Weights[ll].Data[ii] {
				t.Fatalf("weight (%d,%d) changed", ll, ii)
			}
		}
	}
}

func TestTearFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(path, 0.4); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 40 {
		t.Fatalf("torn file is %d bytes, want 40", info.Size())
	}
	for _, frac := range []float64{-0.1, 1.0, 1.5} {
		if err := TearFile(path, frac); err == nil {
			t.Fatalf("tear with frac %v succeeded", frac)
		}
	}
	if err := TearFile(filepath.Join(t.TempDir(), "absent"), 0.5); err == nil {
		t.Fatal("tearing a missing file succeeded")
	}
}

func TestTruncateAt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateAt(path, 37); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 37 {
		t.Fatalf("truncated file is %d bytes, want 37", info.Size())
	}
	for _, off := range []int64{-1, 38, 1000} {
		if err := TruncateAt(path, off); err == nil {
			t.Fatalf("truncate at %d succeeded", off)
		}
	}
	if err := TruncateAt(filepath.Join(t.TempDir(), "absent"), 0); err == nil {
		t.Fatal("truncating a missing file succeeded")
	}
}

func TestDuplicateTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := DuplicateTail(path, 2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("file = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file = %v, want %v", got, want)
		}
	}
	for _, n := range []int64{0, -3, 7} {
		if err := DuplicateTail(path, n); err == nil {
			t.Fatalf("duplicating %d bytes succeeded", n)
		}
	}
	if err := DuplicateTail(filepath.Join(t.TempDir(), "absent"), 1); err == nil {
		t.Fatal("duplicating tail of a missing file succeeded")
	}
}

func TestCorruptFileByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFileByte(path, 2); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3 ^ 0xff, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("file = %v, want %v", got, want)
		}
	}
	if err := CorruptFileByte(path, 99); err == nil {
		t.Fatal("corrupting past EOF succeeded")
	}
}

// TestTornSnapshotRejected ties the injectors to the snapshot format: a
// checkpoint torn or bit-flipped on disk must be refused by nn.LoadFile.
func TestTornSnapshotRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.nn")
	net := nn.NewNetwork([]int{3, 5, 2}, mat.NewRNG(4))
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := TearFile(path, 0.6); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.LoadFile(path); err == nil {
		t.Fatal("torn snapshot loaded successfully")
	}

	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFileByte(path, 33); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.LoadFile(path); err == nil {
		t.Fatal("bit-flipped snapshot loaded successfully")
	}
}
