package obs

import (
	"bytes"
	"strings"
	"testing"
)

// parseRegistry renders reg and parses it back — the exact path a
// coordinator scrape takes.
func parseRegistry(t *testing.T, reg *Registry) Parsed {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return parsed
}

func shardRegistry(t *testing.T, tasks uint64, depth float64, lat ...float64) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("tasks_total", "t", Label{Key: "outcome", Value: "ok"}).Add(tasks)
	reg.Gauge("queue_depth", "g").Set(depth)
	h := reg.Histogram("task_seconds", "h", []float64{0.1, 1})
	for _, v := range lat {
		h.Observe(v)
	}
	return reg
}

func TestMergeExpositions(t *testing.T) {
	a := parseRegistry(t, shardRegistry(t, 3, 2, 0.05, 0.5))
	b := parseRegistry(t, shardRegistry(t, 4, 7, 5))

	coord := NewRegistry()
	coord.Gauge("cluster_shards", "g").Set(2)

	merged, err := MergeExpositions([]ShardExposition{
		{Shard: "s1", Parsed: b},
		{Shard: "s0", Parsed: a},
		{Shard: "", Parsed: parseRegistry(t, coord)},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Counters sum across shards.
	if v, ok := merged.Counter("tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 7 {
		t.Fatalf("merged counter = %v, %v; want 7, true", v, ok)
	}
	// Gauges survive per shard, labelled.
	if v, ok := merged.Gauge("queue_depth", map[string]string{"shard": "s0"}); !ok || v != 2 {
		t.Fatalf("shard s0 gauge = %v, %v; want 2, true", v, ok)
	}
	if v, ok := merged.Gauge("queue_depth", map[string]string{"shard": "s1"}); !ok || v != 7 {
		t.Fatalf("shard s1 gauge = %v, %v; want 7, true", v, ok)
	}
	// Pass-through part keeps its gauges unlabelled.
	if v, ok := merged.Gauge("cluster_shards", nil); !ok || v != 2 {
		t.Fatalf("pass-through gauge = %v, %v; want 2, true", v, ok)
	}
	// Histograms sum bucket-by-bucket; +Inf still equals count.
	h, ok := merged.Histogram("task_seconds", nil)
	if !ok {
		t.Fatal("merged histogram missing")
	}
	if h.Count != 3 || h.Buckets[len(h.Buckets)-1].Count != 3 {
		t.Fatalf("merged histogram count = %d, +Inf = %d; want 3, 3",
			h.Count, h.Buckets[len(h.Buckets)-1].Count)
	}
	if want := 0.05 + 0.5 + 5; h.Sum != want {
		t.Fatalf("merged histogram sum = %v; want %v", h.Sum, want)
	}
	if got := h.Buckets[0].Count; got != 1 {
		t.Fatalf("merged le=0.1 bucket = %d; want 1", got)
	}
}

// TestMergeDeterministic pins that shard scrape order does not change the
// merged result — parts are re-sorted by shard name before any float sums.
func TestMergeDeterministic(t *testing.T) {
	a := parseRegistry(t, shardRegistry(t, 3, 2, 0.1, 0.3, 0.7))
	b := parseRegistry(t, shardRegistry(t, 4, 7, 0.2, 0.9))
	render := func(parts []ShardExposition) string {
		merged, err := MergeExpositions(parts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteParsed(&buf, merged); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fwd := render([]ShardExposition{{Shard: "s0", Parsed: a}, {Shard: "s1", Parsed: b}})
	rev := render([]ShardExposition{{Shard: "s1", Parsed: b}, {Shard: "s0", Parsed: a}})
	if fwd != rev {
		t.Fatalf("merge depends on part order:\n%s\nvs\n%s", fwd, rev)
	}
}

// TestWriteParsedRoundTrip pins the acceptance requirement: the merged
// cluster exposition passes the same strict conformance parser the
// per-shard endpoints do, and parses back to the same values.
func TestWriteParsedRoundTrip(t *testing.T) {
	a := parseRegistry(t, shardRegistry(t, 3, 2, 0.05, 0.5))
	b := parseRegistry(t, shardRegistry(t, 4, 7, 5))
	merged, err := MergeExpositions([]ShardExposition{
		{Shard: "s0", Parsed: a}, {Shard: "s1", Parsed: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteParsed(&buf, merged); err != nil {
		t.Fatal(err)
	}
	again, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged exposition failed conformance parse: %v\n%s", err, buf.String())
	}
	if v, ok := again.Counter("tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 7 {
		t.Fatalf("round-trip counter = %v, %v; want 7, true", v, ok)
	}
	h, ok := again.Histogram("task_seconds", nil)
	if !ok || h.Count != 3 {
		t.Fatalf("round-trip histogram count = %v", h)
	}
	if v, ok := again.Gauge("queue_depth", map[string]string{"shard": "s1"}); !ok || v != 7 {
		t.Fatalf("round-trip gauge = %v, %v; want 7, true", v, ok)
	}
}

func TestMergeErrors(t *testing.T) {
	counterReg := NewRegistry()
	counterReg.Counter("m", "c").Add(1)
	gaugeReg := NewRegistry()
	gaugeReg.Gauge("m", "g").Set(1)
	if _, err := MergeExpositions([]ShardExposition{
		{Shard: "a", Parsed: parseRegistry(t, counterReg)},
		{Shard: "b", Parsed: parseRegistry(t, gaugeReg)},
	}); err == nil || !strings.Contains(err.Error(), "family m") {
		t.Fatalf("type conflict not rejected: %v", err)
	}

	h1 := NewRegistry()
	h1.Histogram("h", "h", []float64{0.1, 1}).Observe(0.5)
	h2 := NewRegistry()
	h2.Histogram("h", "h", []float64{0.2, 2}).Observe(0.5)
	if _, err := MergeExpositions([]ShardExposition{
		{Shard: "a", Parsed: parseRegistry(t, h1)},
		{Shard: "b", Parsed: parseRegistry(t, h2)},
	}); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Fatalf("bucket layout mismatch not rejected: %v", err)
	}

	g1 := NewRegistry()
	g1.Gauge("g", "g").Set(1)
	g2 := NewRegistry()
	g2.Gauge("g", "g").Set(2)
	if _, err := MergeExpositions([]ShardExposition{
		{Shard: "", Parsed: parseRegistry(t, g1)},
		{Shard: "", Parsed: parseRegistry(t, g2)},
	}); err == nil || !strings.Contains(err.Error(), "duplicate gauge") {
		t.Fatalf("gauge collision not rejected: %v", err)
	}
}
