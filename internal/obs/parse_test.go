package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestParseTextRoundTrip renders a populated registry and re-reads it: every
// family, label set, counter value, bucket layout and histogram sum/count
// must survive the trip.
func TestParseTextRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_tasks_total", "Tasks.", Label{Key: "outcome", Value: "ok"}).Add(7)
	reg.Counter("demo_tasks_total", "Tasks.", Label{Key: "outcome", Value: "dead_letter"}).Add(2)
	reg.Gauge("demo_depth", "Depth.").Set(3.5)
	h := reg.Histogram("demo_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if v, ok := p.Counter("demo_tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 7 {
		t.Errorf("counter ok = %v, %v; want 7, true", v, ok)
	}
	if v, ok := p.Counter("demo_tasks_total", map[string]string{"outcome": "dead_letter"}); !ok || v != 2 {
		t.Errorf("counter dead_letter = %v, %v; want 2, true", v, ok)
	}
	if v, ok := p.Gauge("demo_depth", nil); !ok || v != 3.5 {
		t.Errorf("gauge = %v, %v; want 3.5, true", v, ok)
	}
	s, ok := p.Histogram("demo_seconds", nil)
	if !ok {
		t.Fatal("histogram demo_seconds missing")
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 50; math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	wantCum := []uint64{1, 3, 4, 5}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %+v, want %d cumulative cells", s.Buckets, len(wantCum))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].LE, +1) {
		t.Errorf("last bucket bound = %v, want +Inf", s.Buckets[3].LE)
	}
}

// TestParseTextEscapedLabels round-trips a label value containing every
// escapable character.
func TestParseTextEscapedLabels(t *testing.T) {
	reg := NewRegistry()
	tricky := `a\b"c` + "\nd"
	reg.Counter("demo_total", "D.", Label{Key: "k", Value: tricky}).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Counter("demo_total", map[string]string{"k": tricky}); !ok || v != 1 {
		t.Errorf("escaped-label counter = %v, %v; want 1, true", v, ok)
	}
}

// TestParseTextRejectsMalformed checks the parser is loud, not lenient.
func TestParseTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": "demo_total 3\n",
		"bad value":          "# TYPE demo_total counter\ndemo_total three\n",
		"unterminated label": "# TYPE demo_total counter\ndemo_total{k=\"v 3\n",
		"malformed TYPE":     "# TYPE demo_total\ndemo_total 3\n",
		"non-cumulative histogram": "# TYPE demo_seconds histogram\n" +
			"demo_seconds_bucket{le=\"1\"} 5\ndemo_seconds_bucket{le=\"+Inf\"} 3\n" +
			"demo_seconds_sum 1\ndemo_seconds_count 3\n",
		"missing +Inf bucket": "# TYPE demo_seconds histogram\n" +
			"demo_seconds_bucket{le=\"1\"} 5\ndemo_seconds_sum 1\ndemo_seconds_count 5\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestParsedQuantile pins the interpolation against hand-computed values.
func TestParsedQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "Q.", []float64{1, 2, 4})
	// 10 observations: 5 in (0,1], 4 in (1,2], 1 in (2,4].
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := p.Histogram("q_seconds", nil)
	if !ok {
		t.Fatal("histogram missing")
	}
	cases := []struct{ q, want float64 }{
		{0.5, 1},   // rank 5 falls exactly on the first bucket boundary
		{0.9, 2},   // rank 9 closes the second bucket
		{0.95, 3},  // rank 9.5: halfway into (2,4]
		{0.2, 0.4}, // rank 2 of 5 inside (0,1]
		{1.0, 4},   // top of the finite layout
		{0.0, 0},   // bottom interpolates to the bucket floor
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}

	// An observation past every finite bound caps at the largest finite le.
	h.Observe(100)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p, err = ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ = p.Histogram("q_seconds", nil)
	if got := s.Quantile(1.0); got != 4 {
		t.Errorf("Quantile(1.0) with +Inf tail = %v, want 4 (largest finite bound)", got)
	}

	var empty *ParsedSeries
	if got := empty.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil series Quantile = %v, want NaN", got)
	}
}
