package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

func TestSpanRecordsHistogramAndRing(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("detect/finetune")
		sp.End()
	}
	h := r.Histogram(SpanFamily, spanFamilyHelp, DefBuckets, Label{Key: "span", Value: "detect/finetune"})
	if got := h.Count(); got != 3 {
		t.Fatalf("span histogram count = %d, want 3", got)
	}
	recent := r.RecentSpans()
	if len(recent) != 3 {
		t.Fatalf("recent spans = %d, want 3", len(recent))
	}
	for _, rec := range recent {
		if rec.Name != "detect/finetune" || rec.Duration < 0 || rec.Start.IsZero() {
			t.Fatalf("bad span record %+v", rec)
		}
	}
}

func TestSpanRingBoundedNewestFirst(t *testing.T) {
	r := NewRegistry()
	r.SetSpanRing(4)
	for i := 0; i < 10; i++ {
		sp := r.StartSpan("s" + strconv.Itoa(i))
		sp.End()
	}
	recent := r.RecentSpans()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(recent))
	}
	for i, want := range []string{"s9", "s8", "s7", "s6"} {
		if recent[i].Name != want {
			t.Fatalf("recent[%d] = %s, want %s (most recent first)", i, recent[i].Name, want)
		}
	}
	// A partially filled ring reports in order too.
	r.SetSpanRing(8)
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("t" + strconv.Itoa(i))
		sp.End()
	}
	recent = r.RecentSpans()
	if len(recent) != 3 || recent[0].Name != "t2" || recent[2].Name != "t0" {
		t.Fatalf("partial ring order wrong: %+v", recent)
	}
}

func TestSpanLedgerJSONL(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetSpanLedger(&buf)
	names := []string{"detect/split", "detect/knn", `weird "name"` + "\n"}
	for _, n := range names {
		sp := r.StartSpan(n)
		sp.End()
	}
	r.SetSpanLedger(nil)
	sp := r.StartSpan("after-detach")
	sp.End()

	sc := bufio.NewScanner(&buf)
	var got []spanEvent
	for sc.Scan() {
		var ev spanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad ledger line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != len(names) {
		t.Fatalf("ledger has %d events, want %d", len(got), len(names))
	}
	for i, ev := range got {
		if ev.Span != names[i] {
			t.Fatalf("event %d span = %q, want %q", i, ev.Span, names[i])
		}
		if ev.DurNS < 0 {
			t.Fatalf("event %d negative duration", i)
		}
		if _, err := time.Parse(time.RFC3339Nano, ev.TS); err != nil {
			t.Fatalf("event %d bad timestamp %q: %v", i, ev.TS, err)
		}
	}
}
