// Package obs is the stdlib-only observability subsystem: a metrics
// registry of counters, gauges and fixed-bucket histograms with a lock-free
// hot path, lightweight span tracing (see span.go) and a Prometheus
// text-exposition handler (see prometheus.go).
//
// The registry is injectable everywhere it is consumed: a nil *Registry is a
// valid value whose handles are nil, and every operation on a nil handle is
// a no-op that performs no allocation and no atomic traffic — library code
// takes a registry parameter instead of importing a global, and callers that
// do not care pass nil at zero cost (the CI bench gate pins the obs-on
// overhead; the nil path is free by construction).
//
// Series are pre-interned: registering a metric resolves its (name, labels)
// pair to a handle once, under a mutex, and the handle's hot-path operations
// (Counter.Inc, Gauge.Set, Histogram.Observe) are plain sync/atomic ops on
// uint64 words — float64 values travel as their IEEE-754 bit patterns.
// Registration is idempotent: the same (name, labels) pair always returns
// the same handle, so wiring code may re-register freely.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value pair of a metric series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; a nil Counter ignores all operations.
type Counter struct {
	bits uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.bits, n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.bits)
}

// Gauge is a float64 metric that can go up and down, stored as an IEEE-754
// bit pattern in a uint64. A nil Gauge ignores all operations.
type Gauge struct {
	bits uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// Histogram is a fixed-bucket histogram: observation counts per upper bound
// (Prometheus `le` semantics: v ≤ bound) plus an implicit +Inf bucket and a
// running sum. A nil Histogram ignores all operations.
type Histogram struct {
	// upper holds the finite bucket bounds, strictly increasing.
	upper []float64
	// counts has one non-cumulative cell per bound plus the +Inf cell.
	counts  []uint64
	sumBits uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound ≥ v is the bucket (le semantics); past the end is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	atomic.AddUint64(&h.counts[i], 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// NewHistogram returns a standalone histogram with the given finite bucket
// bounds (strictly increasing; +Inf is implicit), not attached to any
// registry. Consumers that need histogram mechanics without exposition — the
// lake service's brownout latency window, for instance — use this instead of
// inventing a second histogram type.
func NewHistogram(buckets []float64) *Histogram {
	buckets = checkBuckets("standalone", buckets)
	return &Histogram{upper: buckets, counts: make([]uint64, len(buckets)+1)}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state. Counts
// are per-bucket (non-cumulative), one cell per finite bound plus the +Inf
// cell last. Two snapshots of the same histogram subtract into the window of
// observations that arrived between them (Sub), which is how a controller
// reads "p95 over the last tick" from a cumulative instrument.
type HistogramSnapshot struct {
	Upper  []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram's current state. Each bucket cell is read
// with one atomic load; a snapshot taken while writers are active is a
// consistent-enough window boundary for control loops (cells may disagree by
// the handful of observations in flight during the copy).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(atomic.LoadUint64(&h.sumBits)),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadUint64(&h.counts[i])
		s.Count += s.Counts[i]
	}
	return s
}

// Sub returns the window between prev (taken earlier from the same
// histogram) and s: the observations recorded after prev. Mismatched bucket
// layouts return the zero snapshot; a cell that appears to regress (torn
// concurrent reads) clamps to zero rather than underflowing.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(s.Counts) != len(prev.Counts) && len(prev.Counts) != 0 {
		return HistogramSnapshot{}
	}
	out := HistogramSnapshot{Upper: s.Upper, Counts: make([]uint64, len(s.Counts)), Sum: s.Sum - prev.Sum}
	for i := range s.Counts {
		p := uint64(0)
		if i < len(prev.Counts) {
			p = prev.Counts[i]
		}
		if s.Counts[i] > p {
			out.Counts[i] = s.Counts[i] - p
		}
		out.Count += out.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile of the snapshot the way Prometheus's
// histogram_quantile does: locate the bucket holding the target rank, then
// interpolate linearly inside it. A rank landing in the +Inf bucket returns
// the largest finite bound (the layout cannot resolve beyond it); an empty
// snapshot returns NaN.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Upper) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := 0.0
	for i, upper := range s.Upper {
		inBucket := s.Counts[i]
		cum += inBucket
		if float64(cum) >= rank && inBucket > 0 {
			prev := cum - inBucket
			return lower + (upper-lower)*(rank-float64(prev))/float64(inBucket)
		}
		lower = upper
	}
	// Rank falls in the +Inf cell.
	return s.Upper[len(s.Upper)-1]
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += atomic.LoadUint64(&h.counts[i])
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&h.sumBits))
}

// DefBuckets is the default duration histogram, in seconds: sub-millisecond
// kernels through multi-second full-pipeline phases.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metric types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one (labels, value) member of a family. Exactly one of the
// value fields is non-nil, matching the family's type.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series of one metric name, sharing HELP/TYPE metadata.
type family struct {
	name    string
	help    string
	typ     string
	buckets []float64
	series  []*series
	byKey   map[string]*series
}

// Registry holds metric families and the span state of span.go. The zero
// value is not usable — construct with NewRegistry — but a nil *Registry is:
// every method no-ops (or returns a nil handle) on a nil receiver.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	// Span state (span.go): a cache from span name to its duration-histogram
	// series, a bounded ring of recent spans, and the optional JSONL ledger.
	spanMu    sync.RWMutex
	spanHists map[string]*Histogram
	ring      []SpanRecord
	ringNext  int
	ringSize  int

	ledgerMu sync.Mutex
	ledger   spanLedger
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families:  make(map[string]*family),
		spanHists: make(map[string]*Histogram),
		ringSize:  defaultSpanRing,
	}
}

// Counter returns the counter series (name, labels), registering it on
// first use. A nil registry returns a nil (no-op) handle. It panics if name
// was registered as a different type or with a different help string —
// metric identity is a programming invariant, not runtime input.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, typeCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge series (name, labels), registering it on first
// use. A nil registry returns a nil (no-op) handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, typeGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram series (name, labels) with the given
// finite bucket bounds (strictly increasing; +Inf is implicit), registering
// it on first use. A nil registry returns a nil (no-op) handle. Every series
// of a family shares one bucket layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.intern(name, help, typeHistogram, buckets, labels)
	return s.h
}

// intern resolves (name, labels) to its series, creating family and series
// as needed. This is the cold path: callers hold the returned handle and
// never come back per operation.
func (r *Registry) intern(name, help, typ string, buckets []float64, labels []Label) *series {
	checkName(name, "metric")
	key := labelKey(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		if typ == typeHistogram {
			buckets = checkBuckets(name, buckets)
		}
		f = &family{name: name, help: help, typ: typ, buckets: buckets, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	if f.help != help {
		panic(fmt.Sprintf("obs: %s help mismatch: %q vs %q", name, f.help, help))
	}
	if typ == typeHistogram && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: %s bucket layout mismatch", name))
	}
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...)}
	switch typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = &Histogram{upper: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// labelKey renders labels into the canonical interning key, sorting by key
// so registration order does not split series. Duplicate keys panic.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		checkName(l.Key, "label")
		if i > 0 && sorted[i-1].Key == l.Key {
			panic("obs: duplicate label key " + l.Key)
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

// checkName enforces the Prometheus identifier charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain ':', but
// none of ours do; the stricter check keeps exposition unescapable).
func checkName(name, kind string) {
	if name == "" {
		panic("obs: empty " + kind + " name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				panic(fmt.Sprintf("obs: invalid %s name %q", kind, name))
			}
		default:
			panic(fmt.Sprintf("obs: invalid %s name %q", kind, name))
		}
	}
}

// checkBuckets validates and copies a bucket layout.
func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " with no buckets")
	}
	out := append([]float64(nil), buckets...)
	for i, b := range out {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("obs: histogram " + name + " with non-finite bucket bound")
		}
		if i > 0 && out[i-1] >= b {
			panic("obs: histogram " + name + " buckets not strictly increasing")
		}
	}
	return out
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
