package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

// promSample is one parsed sample line.
type promSample struct {
	name   string // full sample name, e.g. foo_bucket
	labels map[string]string
	value  float64
}

// parsePrometheus is a small conformance parser for the text exposition
// format (version 0.0.4). It enforces the structural rules the format
// promises — HELP then TYPE before any sample of a family, samples
// contiguous per family, known types, parseable values, well-formed label
// escaping — and returns the families for semantic checks.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := make(map[string]*promFamily)
	var cur *promFamily
	sc := bufio.NewScanner(strings.NewReader(text))
	for line := 1; sc.Scan(); line++ {
		s := sc.Text()
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "# HELP "):
			rest := strings.TrimPrefix(s, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				t.Fatalf("line %d: HELP without a metric name", line)
			}
			if families[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", line, name)
			}
			cur = &promFamily{name: name, help: unescapeHelp(t, help)}
			families[name] = cur
		case strings.HasPrefix(s, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(s, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", line, s)
			}
			name, typ := fields[0], fields[1]
			if cur == nil || cur.name != name {
				t.Fatalf("line %d: TYPE %s without a preceding HELP", line, name)
			}
			if cur.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", line, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", line, typ)
			}
			cur.typ = typ
		case strings.HasPrefix(s, "#"):
			// Other comments are legal and ignored.
		default:
			sample := parseSampleLine(t, line, s)
			base := sample.name
			if cur != nil && cur.typ == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if cur == nil || base != cur.name {
				t.Fatalf("line %d: sample %s outside its family block (current %v)", line, sample.name, cur)
			}
			if cur.typ == "" {
				t.Fatalf("line %d: sample %s before TYPE", line, sample.name)
			}
			cur.samples = append(cur.samples, sample)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families
}

// parseSampleLine parses `name{k="v",...} value`, unescaping label values.
func parseSampleLine(t *testing.T, line int, s string) promSample {
	t.Helper()
	sample := promSample{labels: map[string]string{}}
	rest := s
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: malformed sample %q", line, s)
	} else {
		sample.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, `="`)
			if eq < 0 {
				t.Fatalf("line %d: malformed labels in %q", line, s)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					t.Fatalf("line %d: unterminated label value in %q", line, s)
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\\' {
					if len(rest) < 2 {
						t.Fatalf("line %d: dangling escape in %q", line, s)
					}
					switch rest[1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: unknown escape \\%c in %q", line, rest[1], s)
					}
					rest = rest[2:]
					continue
				}
				if c == '\n' {
					t.Fatalf("line %d: raw newline inside label value of %q", line, s)
				}
				val.WriteByte(c)
				rest = rest[1:]
			}
			if _, dup := sample.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %s in %q", line, key, s)
			}
			sample.labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = rest[1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", line, rest, err)
	}
	sample.value = v
	return sample
}

func unescapeHelp(t *testing.T, s string) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			t.Fatalf("dangling escape in HELP %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		default:
			t.Fatalf("unknown HELP escape \\%c", s[i])
		}
	}
	return b.String()
}

// checkHistogram enforces the per-series histogram invariants: cumulative
// non-decreasing buckets, a closing +Inf bucket equal to _count, and a _sum.
func checkHistogram(t *testing.T, f *promFamily) {
	t.Helper()
	type key = string
	seriesKey := func(labels map[string]string) key {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q;", k, labels[k])
		}
		return b.String()
	}
	type hseries struct {
		buckets []promSample // in exposition order
		sum     *float64
		count   *float64
	}
	byKey := map[key]*hseries{}
	get := func(labels map[string]string) *hseries {
		k := seriesKey(labels)
		if byKey[k] == nil {
			byKey[k] = &hseries{}
		}
		return byKey[k]
	}
	for _, s := range f.samples {
		switch s.name {
		case f.name + "_bucket":
			h := get(s.labels)
			h.buckets = append(h.buckets, s)
		case f.name + "_sum":
			v := s.value
			get(s.labels).sum = &v
		case f.name + "_count":
			v := s.value
			get(s.labels).count = &v
		default:
			t.Fatalf("histogram %s has stray sample %s", f.name, s.name)
		}
	}
	if len(byKey) == 0 {
		return
	}
	for k, h := range byKey {
		if h.sum == nil || h.count == nil {
			t.Fatalf("histogram %s{%s} missing _sum or _count", f.name, k)
		}
		if len(h.buckets) == 0 {
			t.Fatalf("histogram %s{%s} has no buckets", f.name, k)
		}
		prevBound := math.Inf(-1)
		prevCum := -1.0
		for _, b := range h.buckets {
			leStr, ok := b.labels["le"]
			if !ok {
				t.Fatalf("histogram %s{%s} bucket without le", f.name, k)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("histogram %s{%s} bad le %q: %v", f.name, k, leStr, err)
			}
			if le <= prevBound {
				t.Fatalf("histogram %s{%s} le bounds not increasing (%v after %v)", f.name, k, le, prevBound)
			}
			if b.value < prevCum {
				t.Fatalf("histogram %s{%s} buckets not cumulative (%v after %v)", f.name, k, b.value, prevCum)
			}
			prevBound, prevCum = le, b.value
		}
		last := h.buckets[len(h.buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("histogram %s{%s} does not close with +Inf", f.name, k)
		}
		if last.value != *h.count {
			t.Fatalf("histogram %s{%s}: +Inf bucket %v != _count %v", f.name, k, last.value, *h.count)
		}
	}
}

// TestExpositionConformance round-trips every metric kind — including hostile
// label values and span-derived series — through the /metrics handler and the
// conformance parser.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_tasks_total", "Tasks processed.", Label{Key: "outcome", Value: "ok"}).Add(7)
	r.Counter("test_tasks_total", "Tasks processed.", Label{Key: "outcome", Value: "dead_letter"})
	nasty := "a\\b\"c\nd"
	r.Counter("test_escapes_total", "Help with a \\ backslash\nand newline.", Label{Key: "v", Value: nasty}).Inc()
	r.Gauge("test_level", "Current level.").Set(-2.5)
	r.Gauge("test_nan", "A NaN gauge.").Set(math.NaN())
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10}, Label{Key: "op", Value: "x"})
	for _, v := range []float64{0.05, 0.1, 0.5, 20} {
		h.Observe(v)
	}
	sp := r.StartSpan("detect/split")
	sp.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	families := parsePrometheus(t, text)
	for name, wantType := range map[string]string{
		"test_tasks_total":     "counter",
		"test_escapes_total":   "counter",
		"test_level":           "gauge",
		"test_nan":             "gauge",
		"test_latency_seconds": "histogram",
		SpanFamily:             "histogram",
	} {
		f := families[name]
		if f == nil {
			t.Fatalf("family %s missing from exposition:\n%s", name, text)
		}
		if f.typ != wantType {
			t.Fatalf("family %s type %q, want %q", name, f.typ, wantType)
		}
		if f.help == "" {
			t.Fatalf("family %s has empty help", name)
		}
		if f.typ == "histogram" {
			checkHistogram(t, f)
		}
	}

	// Value and label round-trips.
	found := false
	for _, s := range families["test_tasks_total"].samples {
		if s.labels["outcome"] == "ok" {
			found = true
			if s.value != 7 {
				t.Fatalf("test_tasks_total{outcome=ok} = %v, want 7", s.value)
			}
		}
	}
	if !found {
		t.Fatal("outcome=ok series missing")
	}
	esc := families["test_escapes_total"]
	if got := esc.samples[0].labels["v"]; got != nasty {
		t.Fatalf("label escaping round-trip: got %q, want %q", got, nasty)
	}
	if want := "Help with a \\ backslash\nand newline."; esc.help != want {
		t.Fatalf("help escaping round-trip: got %q, want %q", esc.help, want)
	}
	if got := families["test_level"].samples[0].value; got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
	if got := families["test_nan"].samples[0].value; !math.IsNaN(got) {
		t.Fatalf("NaN gauge round-trip = %v", got)
	}
	// Histogram values: counts 0.05,0.1 ≤ 0.1 → 2; 0.5 ≤ 1 → 3; ≤ 10 → 3; +Inf 4.
	var cums []float64
	for _, s := range families["test_latency_seconds"].samples {
		if s.name == "test_latency_seconds_bucket" {
			cums = append(cums, s.value)
		}
		if s.name == "test_latency_seconds_sum" && math.Abs(s.value-20.65) > 1e-9 {
			t.Fatalf("histogram sum = %v, want 20.65", s.value)
		}
	}
	want := []float64{2, 3, 3, 4}
	if len(cums) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(cums), len(want))
	}
	for i := range want {
		if cums[i] != want[i] {
			t.Fatalf("cumulative bucket %d = %v, want %v", i, cums[i], want[i])
		}
	}

	// Families are sorted by name.
	var order []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			order = append(order, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(order) {
		t.Fatalf("families not sorted: %v", order)
	}
}

// TestEmptyExposition: a registry with no metrics (and the nil registry)
// serves a valid empty document.
func TestEmptyExposition(t *testing.T) {
	for _, r := range []*Registry{nil, NewRegistry()} {
		srv := httptest.NewServer(r.Handler())
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) != 0 {
			t.Fatalf("empty registry served %q", raw)
		}
		resp.Body.Close()
		srv.Close()
	}
}
