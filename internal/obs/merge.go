package obs

// Scatter/gather support for the sharded lake: a cluster coordinator
// scrapes every shard's /metrics exposition, parses each with ParseText,
// and merges them here into one cluster-wide exposition. Merge rules:
//
//   - counters and histograms are summed across shards per label set —
//     they are monotone totals, so the sum is the cluster total;
//   - gauges are point-in-time readings that cannot be meaningfully
//     summed, so each shard's gauge series instead gains a shard="<name>"
//     label and survives individually;
//   - a pass-through part (empty shard name, used for the coordinator's
//     own registry) contributes its gauges unlabelled.
//
// The merge is deterministic: parts are processed in shard-name order, so
// float64 sums accumulate in one fixed order no matter how the scrapes
// raced. WriteParsed renders the result back to conformant text that
// round-trips ParseText.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ShardExposition is one scrape to merge: a shard name and its parsed
// exposition. An empty Shard marks a pass-through part whose gauges keep
// their labels as-is.
type ShardExposition struct {
	Shard  string
	Parsed Parsed
}

// MergeExpositions merges per-shard expositions into one cluster view
// under the rules above. It errors on a family declared with different
// types or histogram bucket layouts across shards, and on gauge series
// that would collide after labelling — silent clobbering would make the
// merged view lie.
func MergeExpositions(parts []ShardExposition) (Parsed, error) {
	sorted := append([]ShardExposition(nil), parts...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	out := Parsed{}
	for _, part := range sorted {
		names := make([]string, 0, len(part.Parsed))
		for name := range part.Parsed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			src := part.Parsed[name]
			dst := out[name]
			if dst == nil {
				dst = &ParsedFamily{Name: name, Type: src.Type}
				out[name] = dst
			}
			if dst.Type != src.Type {
				return nil, fmt.Errorf("obs: merge: family %s is %s on shard %q but %s elsewhere",
					name, src.Type, part.Shard, dst.Type)
			}
			for _, s := range src.Series {
				if err := mergeSeries(dst, part.Shard, s); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// mergeSeries folds one source series into the destination family.
func mergeSeries(dst *ParsedFamily, shard string, s *ParsedSeries) error {
	switch dst.Type {
	case typeGauge:
		labels := cloneLabels(s.Labels)
		if shard != "" {
			if _, taken := labels["shard"]; !taken {
				labels["shard"] = shard
			}
		}
		if dst.find(labels) != nil {
			return fmt.Errorf("obs: merge: duplicate gauge series %s%s", dst.Name, mapKey(labels))
		}
		dst.Series = append(dst.Series, &ParsedSeries{Labels: labels, Value: s.Value})
		return nil
	case typeCounter:
		if have := dst.find(s.Labels); have != nil {
			have.Value += s.Value
			return nil
		}
		dst.Series = append(dst.Series, &ParsedSeries{Labels: cloneLabels(s.Labels), Value: s.Value})
		return nil
	case typeHistogram:
		have := dst.find(s.Labels)
		if have == nil {
			cp := &ParsedSeries{
				Labels:  cloneLabels(s.Labels),
				Buckets: append([]ParsedBucket(nil), s.Buckets...),
				Sum:     s.Sum,
				Count:   s.Count,
			}
			dst.Series = append(dst.Series, cp)
			return nil
		}
		if len(have.Buckets) != len(s.Buckets) {
			return fmt.Errorf("obs: merge: histogram %s has %d buckets on shard %q, %d elsewhere",
				dst.Name, len(s.Buckets), shard, len(have.Buckets))
		}
		for i := range s.Buckets {
			if have.Buckets[i].LE != s.Buckets[i].LE {
				return fmt.Errorf("obs: merge: histogram %s bucket layouts differ at le=%v vs le=%v",
					dst.Name, s.Buckets[i].LE, have.Buckets[i].LE)
			}
			// Cumulative counts of identical layouts sum bucket-by-bucket.
			have.Buckets[i].Count += s.Buckets[i].Count
		}
		have.Sum += s.Sum
		have.Count += s.Count
		return nil
	default:
		return fmt.Errorf("obs: merge: family %s has unsupported type %q", dst.Name, dst.Type)
	}
}

// find returns the series with exactly these labels, or nil.
func (f *ParsedFamily) find(labels map[string]string) *ParsedSeries {
	key := mapKey(labels)
	for _, s := range f.Series {
		if mapKey(s.Labels) == key {
			return s
		}
	}
	return nil
}

func cloneLabels(labels map[string]string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	return out
}

// WriteParsed renders a parsed (typically merged) exposition back to the
// 0.0.4 text format: families sorted by name, series sorted by label set,
// TYPE comment before samples, cumulative histogram buckets closing at
// +Inf — everything ParseText demands, so the merged cluster view passes
// the same conformance parser the per-shard endpoints do.
func WriteParsed(w io.Writer, p Parsed) error {
	names := make([]string, 0, len(p))
	for name := range p {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := p[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		series := append([]*ParsedSeries(nil), f.Series...)
		sort.SliceStable(series, func(i, j int) bool {
			return mapKey(series[i].Labels) < mapKey(series[j].Labels)
		})
		for _, s := range series {
			switch f.Type {
			case typeCounter, typeGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name,
					renderLabelMap(s.Labels, nil), formatFloat(s.Value)); err != nil {
					return err
				}
			case typeHistogram:
				for _, b := range s.Buckets {
					le := Label{Key: "le", Value: formatFloat(b.LE)}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n", f.Name,
						renderLabelMap(s.Labels, &le), strconv.FormatUint(b.Count, 10)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name,
					renderLabelMap(s.Labels, nil), formatFloat(s.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %s\n", f.Name,
					renderLabelMap(s.Labels, nil), strconv.FormatUint(s.Count, 10)); err != nil {
					return err
				}
			default:
				return fmt.Errorf("obs: render: family %s has unsupported type %q", f.Name, f.Type)
			}
		}
	}
	return nil
}

// renderLabelMap is renderLabels for the map-shaped label sets ParseText
// produces: keys sorted, values escaped, optional extra label appended.
func renderLabelMap(labels map[string]string, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	pairs := make([]Label, 0, len(labels))
	for k, v := range labels {
		pairs = append(pairs, Label{Key: k, Value: v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return renderLabels(pairs, extra)
}
