package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// ContentType is the Prometheus text exposition format version this package
// emits.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP and
// TYPE line each, series in registration order. Histograms emit cumulative
// `_bucket` series (le-labelled, closing with +Inf), `_sum` and `_count`;
// the +Inf bucket always equals `_count` because both are derived from one
// atomic snapshot of the per-bucket cells. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		// New series may be registered while we render; f.series only ever
		// appends, so a snapshot of the slice header is safe.
		r.mu.Lock()
		snapshot := f.series
		r.mu.Unlock()
		for _, s := range snapshot {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, nil), strconv.FormatUint(s.c.Value(), 10))
			case typeGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(s.g.Value()))
			case typeHistogram:
				writeHistogram(&b, f, s)
			}
		}
	}
	_, err := w.Write(b.Bytes())
	return err
}

// writeHistogram renders one histogram series from a single atomic read of
// its bucket cells, so the cumulative counts are internally consistent.
func writeHistogram(b *bytes.Buffer, f *family, s *series) {
	counts := make([]uint64, len(s.h.counts))
	for i := range counts {
		counts[i] = atomic.LoadUint64(&s.h.counts[i])
	}
	var cum uint64
	for i, bound := range f.buckets {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			renderLabels(s.labels, &Label{Key: "le", Value: formatFloat(bound)}), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
		renderLabels(s.labels, &Label{Key: "le", Value: "+Inf"}), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(s.labels, nil), formatFloat(s.h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(s.labels, nil), cum)
}

// renderLabels renders a label set (plus an optional extra label, for
// histogram le) as {k="v",...}, escaping values. Empty sets render as "".
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the text
// format's label-value rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline per the HELP-line rules.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// formatFloat renders a sample value: shortest round-trip representation,
// with the spellings the text format prescribes for the non-finite values.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — mount it as
// /metrics next to the JSON status endpoint. A nil registry serves an empty
// (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
