package obs

// A parser for the text exposition this package writes. It exists so the
// load-testing harness can scrape latency histograms and outcome counters
// the same way whether the registry is in-process (render + parse) or on the
// far side of a live /metrics endpoint — one code path, exercised against
// real exposition either way. It parses the subset of the 0.0.4 text format
// WritePrometheus emits (HELP/TYPE comments, counter/gauge/histogram
// families, escaped label values) and is strict about it: a malformed line
// is an error, not a skip, because silently dropping a sample would turn a
// wiring bug into a fake-green SLO gate.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsedBucket is one cumulative histogram bucket: the count of observations
// at or below LE.
type ParsedBucket struct {
	LE    float64
	Count uint64
}

// ParsedSeries is one labelled member of a parsed family. Counter and gauge
// series carry Value; histogram series carry Buckets (cumulative, ascending,
// ending at +Inf), Sum and Count.
type ParsedSeries struct {
	Labels  map[string]string
	Value   float64
	Buckets []ParsedBucket
	Sum     float64
	Count   uint64
}

// ParsedFamily groups the parsed series of one metric name.
type ParsedFamily struct {
	Name   string
	Type   string
	Series []*ParsedSeries
}

// Parsed is a scraped exposition, keyed by family name.
type Parsed map[string]*ParsedFamily

// ParseText parses a Prometheus text exposition (version 0.0.4, the subset
// WritePrometheus emits). Histogram component series (_bucket, _sum, _count)
// are folded back into one ParsedSeries per label set.
func ParseText(r io.Reader) (Parsed, error) {
	out := Parsed{}
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		switch {
		case strings.TrimSpace(text) == "":
			continue
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("obs: parse line %d: malformed TYPE comment %q", line, text)
			}
			types[fields[2]] = fields[3]
			continue
		case strings.HasPrefix(text, "#"):
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", line, err)
		}
		base, component := splitHistogramSample(name, types)
		typ, ok := types[base]
		if !ok {
			return nil, fmt.Errorf("obs: parse line %d: sample %q before its TYPE comment", line, name)
		}
		f := out[base]
		if f == nil {
			f = &ParsedFamily{Name: base, Type: typ}
			out[base] = f
		}
		if typ != typeHistogram {
			s := &ParsedSeries{Labels: labels, Value: value}
			f.Series = append(f.Series, s)
			continue
		}
		le, hasLE := labels["le"]
		delete(labels, "le")
		s := f.lookup(labels)
		switch component {
		case "bucket":
			if !hasLE {
				return nil, fmt.Errorf("obs: parse line %d: histogram bucket without le label", line)
			}
			bound, err := parseBound(le)
			if err != nil {
				return nil, fmt.Errorf("obs: parse line %d: %w", line, err)
			}
			s.Buckets = append(s.Buckets, ParsedBucket{LE: bound, Count: uint64(value)})
		case "sum":
			s.Sum = value
		case "count":
			s.Count = uint64(value)
		default:
			return nil, fmt.Errorf("obs: parse line %d: bare sample %q of histogram family %s", line, name, base)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range out {
		if f.Type != typeHistogram {
			continue
		}
		for _, s := range f.Series {
			sort.Slice(s.Buckets, func(i, j int) bool { return s.Buckets[i].LE < s.Buckets[j].LE })
			if err := s.checkHistogram(f.Name); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// splitHistogramSample maps a sample name onto its family: a _bucket/_sum/
// _count suffix belongs to a histogram family when one is declared under the
// trimmed name (a counter legitimately named *_count keeps its full name).
func splitHistogramSample(name string, types map[string]string) (base, component string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(name, suffix)
		if trimmed != name && types[trimmed] == typeHistogram {
			return trimmed, suffix[1:]
		}
	}
	return name, ""
}

// lookup finds or creates the histogram series with the given labels.
func (f *ParsedFamily) lookup(labels map[string]string) *ParsedSeries {
	key := mapKey(labels)
	for _, s := range f.Series {
		if mapKey(s.Labels) == key {
			return s
		}
	}
	s := &ParsedSeries{Labels: labels}
	f.Series = append(f.Series, s)
	return s
}

func mapKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(0)
	}
	return b.String()
}

// checkHistogram verifies the folded series is internally consistent:
// cumulative counts never decrease, the layout closes with +Inf, and the
// +Inf bucket equals _count.
func (s *ParsedSeries) checkHistogram(name string) error {
	if len(s.Buckets) == 0 {
		return fmt.Errorf("obs: histogram %s series with no buckets", name)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.LE, +1) {
		return fmt.Errorf("obs: histogram %s missing +Inf bucket", name)
	}
	var prev uint64
	for _, b := range s.Buckets {
		if b.Count < prev {
			return fmt.Errorf("obs: histogram %s bucket counts not cumulative", name)
		}
		prev = b.Count
	}
	if last.Count != s.Count {
		return fmt.Errorf("obs: histogram %s +Inf bucket %d != count %d", name, last.Count, s.Count)
	}
	return nil
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:nameEnd]
	labels := map[string]string{}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], labels)
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %w", line, err)
		}
	}
	value, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	return name, labels, value, nil
}

// parseLabels consumes `k="v",...}` into dst and returns the remainder of
// the line. Values may contain the \\, \" and \n escapes the writer emits.
func parseLabels(s string, dst map[string]string) (rest string, err error) {
	for {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || len(s) < eq+2 || s[eq+1] != '"' {
			return "", fmt.Errorf("malformed label at %q", s)
		}
		key := s[:eq]
		s = s[eq+2:]
		var b strings.Builder
		for {
			if s == "" {
				return "", fmt.Errorf("unterminated label value for %s", key)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c != '\\' {
				b.WriteByte(c)
				continue
			}
			if s == "" {
				return "", fmt.Errorf("dangling escape in label value for %s", key)
			}
			switch s[0] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", fmt.Errorf("unknown escape \\%c in label value for %s", s[0], key)
			}
			s = s[1:]
		}
		dst[key] = b.String()
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return s[1:], nil
		default:
			return "", fmt.Errorf("malformed label list at %q", s)
		}
	}
}

// parseBound parses an le label value, accepting the writer's +Inf spelling.
func parseBound(le string) (float64, error) {
	if le == "+Inf" {
		return math.Inf(+1), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le bound %q: %w", le, err)
	}
	return v, nil
}

// Counter returns the value of the named counter series, matching labels
// exactly (nil matches the unlabelled series). The second return is false
// when family or series is absent.
func (p Parsed) Counter(name string, labels map[string]string) (float64, bool) {
	return p.scalar(name, typeCounter, labels)
}

// Gauge is Counter for gauge families.
func (p Parsed) Gauge(name string, labels map[string]string) (float64, bool) {
	return p.scalar(name, typeGauge, labels)
}

func (p Parsed) scalar(name, typ string, labels map[string]string) (float64, bool) {
	f := p[name]
	if f == nil || f.Type != typ {
		return 0, false
	}
	key := mapKey(labels)
	for _, s := range f.Series {
		if mapKey(s.Labels) == key {
			return s.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram series, matching labels exactly.
func (p Parsed) Histogram(name string, labels map[string]string) (*ParsedSeries, bool) {
	f := p[name]
	if f == nil || f.Type != typeHistogram {
		return nil, false
	}
	key := mapKey(labels)
	for _, s := range f.Series {
		if mapKey(s.Labels) == key {
			return s, true
		}
	}
	return nil, false
}

// Quantile estimates the q-quantile (q in [0, 1]) of a parsed histogram the
// way Prometheus's histogram_quantile does: find the bucket the target rank
// falls in, then interpolate linearly inside it, assuming observations are
// uniform within a bucket. A rank landing in the +Inf bucket returns the
// highest finite bound (the histogram cannot resolve beyond it), and an
// empty histogram returns NaN.
func (s *ParsedSeries) Quantile(q float64) float64 {
	if s == nil || len(s.Buckets) == 0 || s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var prevCum uint64
	lower := 0.0
	for i, b := range s.Buckets {
		if float64(b.Count) >= rank && b.Count > prevCum {
			if math.IsInf(b.LE, +1) {
				// Beyond the finite layout: the best defensible answer is
				// the largest finite bound.
				if i == 0 {
					return math.NaN()
				}
				return s.Buckets[i-1].LE
			}
			inBucket := float64(b.Count - prevCum)
			return lower + (b.LE-lower)*(rank-float64(prevCum))/inBucket
		}
		if !math.IsInf(b.LE, +1) {
			lower = b.LE
		}
		prevCum = b.Count
	}
	return math.NaN()
}
