package obs

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration returned a different handle")
	}
	labelled := r.Counter("test_ops_total", "ops", Label{Key: "kind", Value: "a"})
	if labelled == c {
		t.Fatal("labelled series aliased the unlabelled one")
	}
	// Label order must not split the series.
	ab := r.Counter("test_multi_total", "m", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	ba := r.Counter("test_multi_total", "m", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if ab != ba {
		t.Fatal("label registration order split the series")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatal("gauge lost +Inf")
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "durations", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// le semantics: v == bound lands in that bound's bucket.
	want := []uint64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤2: {1.5}; ≤4: {3}; +Inf: {100}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	mustPanic(t, "type mismatch", func() { r.Gauge("test_x_total", "x") })
	mustPanic(t, "help mismatch", func() { r.Counter("test_x_total", "different") })
	r.Histogram("test_h", "h", []float64{1, 2})
	mustPanic(t, "bucket mismatch", func() { r.Histogram("test_h", "h", []float64{1, 3}) })
	mustPanic(t, "bad metric name", func() { r.Counter("bad name", "x") })
	mustPanic(t, "bad label name", func() { r.Counter("test_y_total", "y", Label{Key: "1bad", Value: "v"}) })
	mustPanic(t, "duplicate label", func() {
		r.Counter("test_z_total", "z", Label{Key: "a", Value: "1"}, Label{Key: "a", Value: "2"})
	})
	mustPanic(t, "unsorted buckets", func() { r.Histogram("test_h2", "h", []float64{2, 1}) })
	mustPanic(t, "no buckets", func() { r.Histogram("test_h3", "h", nil) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

// TestNilRegistryNoop pins the injectability contract: a nil registry hands
// out nil handles and every operation — metrics and spans alike — is a
// no-op.
func TestNilRegistryNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "d")
	h := r.Histogram("test_seconds", "s", DefBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated state")
	}
	sp := r.StartSpan("x")
	sp.End()
	r.SetSpanLedger(nil)
	r.SetSpanRing(4)
	if r.RecentSpans() != nil {
		t.Fatal("nil registry returned spans")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestNilPathAllocationFree pins the bench-gate claim: the disabled
// observability path allocates nothing.
func TestNilPathAllocationFree(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		g.Add(1)
		h.Observe(0.5)
		sp := r.StartSpan("x")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil path allocated %v objects per op", allocs)
	}
}

// TestConcurrentExactness drives every metric kind from many goroutines and
// checks the totals are exact — the atomic hot paths drop nothing. Run with
// -race this also proves the paths are data-race-free.
func TestConcurrentExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_seconds", "s", []float64{1, 10})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				sp := r.StartSpan("concurrent")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	spanH := r.Histogram(SpanFamily, spanFamilyHelp, DefBuckets, Label{Key: "span", Value: "concurrent"})
	if got := spanH.Count(); got != workers*perWorker {
		t.Fatalf("span histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramSnapshotQuantile pins the windowed-quantile path the lake
// brownout controller runs on: snapshot, delta, interpolated quantile.
func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})

	empty := h.Snapshot()
	if got := empty.Quantile(0.95); !math.IsNaN(got) {
		t.Fatalf("empty snapshot quantile = %v, want NaN", got)
	}

	// First window: 10 fast observations at 0.05s → p95 inside [0, 0.1].
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	w1 := h.Snapshot().Sub(empty)
	if w1.Count != 10 {
		t.Fatalf("window 1 count = %d, want 10", w1.Count)
	}
	if got := w1.Quantile(0.95); got <= 0 || got > 0.1 {
		t.Fatalf("window 1 p95 = %v, want in (0, 0.1]", got)
	}

	// Second window: 10 slow observations at 0.75s. The delta against the
	// first snapshot must see only the slow ones.
	base := h.Snapshot()
	for i := 0; i < 10; i++ {
		h.Observe(0.75)
	}
	w2 := h.Snapshot().Sub(base)
	if w2.Count != 10 {
		t.Fatalf("window 2 count = %d, want 10", w2.Count)
	}
	if got := w2.Quantile(0.95); got <= 0.5 || got > 1 {
		t.Fatalf("window 2 p95 = %v, want in (0.5, 1]", got)
	}
	if got := w2.Sum; math.Abs(got-7.5) > 1e-9 {
		t.Fatalf("window 2 sum = %v, want 7.5", got)
	}

	// An observation past every finite bound resolves to the largest bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.99); got != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want largest finite bound 2", got)
	}

	// Snapshot/Quantile agree with the exposition-side ParsedSeries.Quantile
	// on a mixed layout, so dashboards and the controller read the same p95.
	h3 := NewHistogram(DefBuckets)
	for _, v := range []float64{0.0004, 0.003, 0.02, 0.02, 0.3, 0.7, 4, 4, 4, 12} {
		h3.Observe(v)
	}
	snap := h3.Snapshot()
	reg := NewRegistry()
	rh := reg.Histogram("test_agree_seconds", "s", DefBuckets)
	for _, v := range []float64{0.0004, 0.003, 0.02, 0.02, 0.3, 0.7, 4, 4, 4, 12} {
		rh.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := parsed.Histogram("test_agree_seconds", nil)
	if !ok {
		t.Fatal("parsed histogram missing")
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got, want := snap.Quantile(q), ps.Quantile(q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("q=%v: snapshot %v vs parsed %v", q, got, want)
		}
	}
}

// TestHistogramSnapshotSubMismatch covers the defensive layout/regression
// clamps.
func TestHistogramSnapshotSubMismatch(t *testing.T) {
	a := NewHistogram([]float64{1}).Snapshot()
	b := NewHistogram([]float64{1, 2}).Snapshot()
	if got := b.Sub(a); got.Count != 0 || len(got.Counts) != 0 {
		t.Fatalf("mismatched layouts subtracted to %+v", got)
	}
	// A regressed cell clamps to zero instead of wrapping to 2^64.
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	later := h.Snapshot()
	h.Observe(0.5)
	prev := h.Snapshot()
	if got := later.Sub(prev); got.Count != 0 {
		t.Fatalf("regressed window count = %d, want clamp to 0", got.Count)
	}
}
