package obs

import (
	"encoding/json"
	"io"
	"time"
)

// SpanFamily is the histogram family every span duration is recorded into,
// one series per span name under the "span" label. Detection phases use
// names like "detect/finetune", so the whole per-phase latency profile of a
// request lives in one family.
const SpanFamily = "enld_span_duration_seconds"

const spanFamilyHelp = "Duration of traced spans, by span name."

// defaultSpanRing bounds the in-memory recent-span ring.
const defaultSpanRing = 256

// SpanRecord is one completed span.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Span is an in-flight traced section. The zero Span (from a nil registry)
// is valid and End on it is an allocation-free no-op, so callers trace
// unconditionally:
//
//	sp := reg.StartSpan("detect/finetune")
//	... work ...
//	sp.End()
type Span struct {
	r     *Registry
	name  string
	start time.Time
}

// StartSpan begins a span. A nil registry returns the zero Span.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now()}
}

// End completes the span: its duration is observed into the SpanFamily
// histogram, the span is appended to the bounded recent-span ring, and —
// when a ledger is attached — one JSONL event is written.
func (s Span) End() {
	if s.r == nil {
		return
	}
	d := time.Since(s.start)
	s.r.spanHist(s.name).Observe(d.Seconds())
	s.r.recordSpan(SpanRecord{Name: s.name, Start: s.start, Duration: d})
}

// spanHist returns the duration histogram of a span name, interning it on
// first use. The read path is a shared-lock map hit; only a name's first
// span takes the registration path.
func (r *Registry) spanHist(name string) *Histogram {
	r.spanMu.RLock()
	h := r.spanHists[name]
	r.spanMu.RUnlock()
	if h != nil {
		return h
	}
	h = r.Histogram(SpanFamily, spanFamilyHelp, DefBuckets, Label{Key: "span", Value: name})
	r.spanMu.Lock()
	r.spanHists[name] = h
	r.spanMu.Unlock()
	return h
}

// recordSpan appends to the ring and the ledger.
func (r *Registry) recordSpan(rec SpanRecord) {
	r.spanMu.Lock()
	if len(r.ring) < r.ringSize {
		r.ring = append(r.ring, rec)
	} else {
		r.ring[r.ringNext] = rec
	}
	r.ringNext = (r.ringNext + 1) % r.ringSize
	r.spanMu.Unlock()

	r.ledgerMu.Lock()
	w := r.ledger.w
	r.ledgerMu.Unlock()
	if w == nil {
		return
	}
	line, err := json.Marshal(spanEvent{
		TS:    rec.Start.UTC().Format(time.RFC3339Nano),
		Span:  rec.Name,
		DurNS: rec.Duration.Nanoseconds(),
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	r.ledgerMu.Lock()
	defer r.ledgerMu.Unlock()
	if r.ledger.w != nil {
		r.ledger.w.Write(line)
	}
}

// spanEvent is the JSONL ledger record.
type spanEvent struct {
	TS    string `json:"ts"`
	Span  string `json:"span"`
	DurNS int64  `json:"dur_ns"`
}

// spanLedger wraps the optional event sink.
type spanLedger struct {
	w io.Writer
}

// SetSpanLedger attaches (or, with nil, detaches) a JSONL event ledger:
// every completed span appends one {"ts", "span", "dur_ns"} line for
// post-run analysis. Writes are serialized; the writer need not be
// concurrency-safe. The caller owns the writer's lifecycle (flush/close
// after the run). No-op on a nil registry.
func (r *Registry) SetSpanLedger(w io.Writer) {
	if r == nil {
		return
	}
	r.ledgerMu.Lock()
	r.ledger.w = w
	r.ledgerMu.Unlock()
}

// SetSpanRing resizes the recent-span ring (default 256), clearing it.
// Non-positive n keeps the default. No-op on a nil registry.
func (r *Registry) SetSpanRing(n int) {
	if r == nil {
		return
	}
	if n <= 0 {
		n = defaultSpanRing
	}
	r.spanMu.Lock()
	r.ring = nil
	r.ringNext = 0
	r.ringSize = n
	r.spanMu.Unlock()
}

// RecentSpans returns a copy of the recent-span ring, most recent first.
// Nil on a nil registry.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.RLock()
	defer r.spanMu.RUnlock()
	out := make([]SpanRecord, 0, len(r.ring))
	for i := 1; i <= len(r.ring); i++ {
		out = append(out, r.ring[(r.ringNext-i+len(r.ring))%len(r.ring)])
	}
	return out
}
