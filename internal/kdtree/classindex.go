package kdtree

import (
	"fmt"
	"sort"
)

// ClassIndex maintains one KD-tree per label over a pool of labelled feature
// vectors. This is the "KD-Tree structures for each category in H" of
// §IV-D's implementation note: contrastive sampling queries the k nearest
// high-quality samples *of a specific candidate label*, so indexing per
// class both shrinks each tree and removes a post-filter.
type ClassIndex struct {
	trees map[int]*Tree
	sizes map[int]int
}

// BuildClassIndex groups points by their label and builds one tree per
// label. Labels with no points simply have no tree.
func BuildClassIndex(points map[int][]Point) (*ClassIndex, error) {
	ci := &ClassIndex{trees: make(map[int]*Tree), sizes: make(map[int]int)}
	for label, pts := range points {
		if len(pts) == 0 {
			continue
		}
		t, err := Build(pts)
		if err != nil {
			return nil, fmt.Errorf("kdtree: class %d: %w", label, err)
		}
		ci.trees[label] = t
		ci.sizes[label] = len(pts)
	}
	return ci, nil
}

// KNearest returns the k nearest points of the given label, nearest-first.
// It returns nil (no error) if the label has no indexed points, which the
// contrastive sampler treats as "no contrastive samples available for this
// candidate label".
func (ci *ClassIndex) KNearest(label int, query []float64, k int) ([]Neighbor, error) {
	t, ok := ci.trees[label]
	if !ok {
		return nil, nil
	}
	return t.KNearest(query, k)
}

// KNearestInto is KNearest with caller-provided scratch (see
// Tree.KNearestInto): the returned slice aliases s and is valid only until
// the next query through s. The parallel sampling fan-out issues one
// KNearestInto per ambiguous sample on a per-worker Scratch, eliminating
// per-query allocations.
func (ci *ClassIndex) KNearestInto(s *Scratch, label int, query []float64, k int) ([]Neighbor, error) {
	t, ok := ci.trees[label]
	if !ok {
		return nil, nil
	}
	return t.KNearestInto(s, query, k)
}

// Labels returns the labels that have at least one indexed point, sorted.
func (ci *ClassIndex) Labels() []int {
	out := make([]int, 0, len(ci.trees))
	for l := range ci.trees {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of indexed points for label.
func (ci *ClassIndex) Size(label int) int { return ci.sizes[label] }

// TotalSize returns the number of indexed points across all labels.
func (ci *ClassIndex) TotalSize() int {
	total := 0
	for _, n := range ci.sizes {
		total += n
	}
	return total
}
