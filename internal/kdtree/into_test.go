package kdtree

import (
	"testing"

	"enld/internal/mat"
)

func randPoints(n, dim int, seed uint64) []Point {
	rng := mat.NewRNG(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Vec: rng.NormVec(make([]float64, dim), 0, 1), Payload: i}
	}
	return pts
}

// TestKNearestIntoMatchesKNearest runs many queries through one reused
// Scratch and asserts every result equals the allocating API's.
func TestKNearestIntoMatchesKNearest(t *testing.T) {
	pts := randPoints(300, 8, 1)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(2)
	var s Scratch
	for q := 0; q < 50; q++ {
		query := rng.NormVec(make([]float64, 8), 0, 1)
		for _, k := range []int{1, 3, 7} {
			want, err := tree.KNearest(query, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tree.KNearestInto(&s, query, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: %d results, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Point.Payload != want[i].Point.Payload || got[i].SqDist != want[i].SqDist {
					t.Fatalf("query %d k=%d: result %d differs", q, k, i)
				}
			}
		}
	}
}

func TestKNearestIntoEdgeCases(t *testing.T) {
	pts := randPoints(10, 4, 3)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	if res, err := tree.KNearestInto(&s, make([]float64, 4), 0); err != nil || res != nil {
		t.Fatalf("k=0: %v, %v", res, err)
	}
	if _, err := tree.KNearestInto(&s, make([]float64, 3), 2); err != ErrDimensionMismatch {
		t.Fatalf("dimension mismatch not reported: %v", err)
	}
	// k larger than the tree returns everything.
	res, err := tree.KNearestInto(&s, make([]float64, 4), 100)
	if err != nil || len(res) != 10 {
		t.Fatalf("k>n: %d results, err %v", len(res), err)
	}
}

// TestKNearestIntoNoAllocs verifies the satellite claim: a warmed-up scratch
// serves queries without allocating.
func TestKNearestIntoNoAllocs(t *testing.T) {
	pts := randPoints(512, 8, 4)
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	query := mat.NewRNG(5).NormVec(make([]float64, 8), 0, 1)
	var s Scratch
	if _, err := tree.KNearestInto(&s, query, 5); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tree.KNearestInto(&s, query, 5); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("KNearestInto allocates %v per warmed-up query", allocs)
	}
}

func TestClassIndexKNearestInto(t *testing.T) {
	pts := randPoints(60, 4, 6)
	byLabel := map[int][]Point{}
	for i, p := range pts {
		byLabel[i%3] = append(byLabel[i%3], p)
	}
	ci, err := BuildClassIndex(byLabel)
	if err != nil {
		t.Fatal(err)
	}
	query := make([]float64, 4)
	var s Scratch
	for label := 0; label < 3; label++ {
		want, err := ci.KNearest(label, query, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ci.KNearestInto(&s, label, query, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("label %d: %d results, want %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i].Point.Payload != want[i].Point.Payload {
				t.Fatalf("label %d result %d differs", label, i)
			}
		}
	}
	if res, err := ci.KNearestInto(&s, 99, query, 4); err != nil || res != nil {
		t.Fatalf("missing label: %v, %v", res, err)
	}
}
