// Package kdtree implements a static k-d tree over float64 vectors with
// k-nearest-neighbour queries.
//
// Contrastive sampling (§IV-D of the paper) performs repeated k-nearest
// queries from ambiguous samples into the high-quality sample pool. The
// naive scan costs O(c·|A|·|H'|); the paper builds per-class KD-trees to cut
// the query cost to O(k·|A|·log|H'|), and so does this reproduction (see
// ClassIndex). A brute-force reference implementation is included both for
// differential testing and for the complexity benchmarks.
package kdtree

import (
	"errors"
	"sort"

	"enld/internal/mat"
)

// Point pairs a vector with an opaque payload index (typically the sample's
// position in its owning set).
type Point struct {
	Vec     []float64
	Payload int
}

// Tree is an immutable k-d tree. Build once, query from any number of
// goroutines concurrently.
type Tree struct {
	dim   int
	nodes []node
	root  int
}

type node struct {
	point       Point
	axis        int
	left, right int // -1 when absent
}

// ErrDimensionMismatch is returned for queries whose vector length differs
// from the tree's dimensionality.
var ErrDimensionMismatch = errors.New("kdtree: query dimension mismatch")

// Build constructs a tree over the given points. It returns an error if the
// points are empty or have inconsistent dimensions. The input slice is not
// retained; vectors are referenced, not copied.
func Build(points []Point) (*Tree, error) {
	if len(points) == 0 {
		return nil, errors.New("kdtree: no points")
	}
	dim := len(points[0].Vec)
	if dim == 0 {
		return nil, errors.New("kdtree: zero-dimensional points")
	}
	for _, p := range points {
		if len(p.Vec) != dim {
			return nil, errors.New("kdtree: inconsistent point dimensions")
		}
	}
	t := &Tree{dim: dim, nodes: make([]node, 0, len(points))}
	pts := make([]Point, len(points))
	copy(pts, points)
	t.root = t.build(pts, 0)
	return t, nil
}

// build recursively partitions pts by the median along the cycling axis and
// returns the index of the created node (-1 for empty).
func (t *Tree) build(pts []Point, depth int) int {
	if len(pts) == 0 {
		return -1
	}
	axis := depth % t.dim
	// nth_element-style partition: full sort is O(n log n) per level which
	// is fine for the static build sizes here and keeps the code simple.
	sort.Slice(pts, func(i, j int) bool { return pts[i].Vec[axis] < pts[j].Vec[axis] })
	mid := len(pts) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{point: pts[mid], axis: axis})
	left := t.build(pts[:mid], depth+1)
	right := t.build(pts[mid+1:], depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Len returns the number of points in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Neighbor is one k-NN result.
type Neighbor struct {
	Point  Point
	SqDist float64
}

// neighborHeap is a max-heap on squared distance, keeping the k best seen.
// It is hand-rolled rather than container/heap because the interface-based
// API boxes every Neighbor on Push, allocating per visited node; the
// concrete sift operations below make warmed-up KNearestInto queries
// allocation-free.
type neighborHeap []Neighbor

// push adds nb and restores the max-heap property.
func (h *neighborHeap) push(nb Neighbor) {
	*h = append(*h, nb)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].SqDist >= s[i].SqDist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the farthest neighbor.
func (h *neighborHeap) pop() Neighbor {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < n && s[l].SqDist > s[largest].SqDist {
			largest = l
		}
		if r := 2*i + 2; r < n && s[r].SqDist > s[largest].SqDist {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// Scratch holds the reusable buffers of KNearestInto queries. A zero
// Scratch is ready to use; buffers grow to fit and are reused across
// queries, so a caller issuing many queries (e.g. one parallel-sampling
// worker) allocates only on its first few. A Scratch must not be shared
// between concurrent queries.
type Scratch struct {
	heap neighborHeap
	out  []Neighbor
}

// KNearest returns the k points nearest to query in Euclidean distance,
// ordered nearest-first. If the tree holds fewer than k points, all points
// are returned. The returned slice is a fresh allocation owned by the
// caller; hot loops should prefer KNearestInto.
func (t *Tree) KNearest(query []float64, k int) ([]Neighbor, error) {
	var s Scratch
	res, err := t.KNearestInto(&s, query, k)
	if err != nil || res == nil {
		return nil, err
	}
	return append([]Neighbor(nil), res...), nil
}

// KNearestInto is KNearest with caller-provided scratch: the returned slice
// aliases s and is valid only until the next query through s. It performs no
// per-query allocations once s has warmed up.
func (t *Tree) KNearestInto(s *Scratch, query []float64, k int) ([]Neighbor, error) {
	if len(query) != t.dim {
		return nil, ErrDimensionMismatch
	}
	if k <= 0 {
		return nil, nil
	}
	s.heap = s.heap[:0]
	t.search(t.root, query, k, &s.heap)
	if cap(s.out) < len(s.heap) {
		s.out = make([]Neighbor, len(s.heap))
	}
	out := s.out[:len(s.heap)]
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = s.heap.pop()
	}
	return out, nil
}

func (t *Tree) search(idx int, query []float64, k int, h *neighborHeap) {
	if idx < 0 {
		return
	}
	n := &t.nodes[idx]
	d := mat.SqDist(query, n.point.Vec)
	if len(*h) < k {
		h.push(Neighbor{Point: n.point, SqDist: d})
	} else if d < (*h)[0].SqDist {
		h.pop()
		h.push(Neighbor{Point: n.point, SqDist: d})
	}
	diff := query[n.axis] - n.point.Vec[n.axis]
	first, second := n.left, n.right
	if diff > 0 {
		first, second = n.right, n.left
	}
	t.search(first, query, k, h)
	// Only descend the far side if the splitting plane is closer than the
	// current k-th best.
	if len(*h) < k || diff*diff < (*h)[0].SqDist {
		t.search(second, query, k, h)
	}
}

// BruteKNearest is the O(n) reference implementation used by differential
// tests and the complexity benchmarks.
func BruteKNearest(points []Point, query []float64, k int) []Neighbor {
	if k <= 0 || len(points) == 0 {
		return nil
	}
	all := make([]Neighbor, len(points))
	for i, p := range points {
		all[i] = Neighbor{Point: p, SqDist: mat.SqDist(query, p.Vec)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].SqDist != all[j].SqDist {
			return all[i].SqDist < all[j].SqDist
		}
		return all[i].Point.Payload < all[j].Point.Payload
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}
