package kdtree

import (
	"math"
	"testing"

	"enld/internal/mat"
)

// FuzzKNearest builds a tree from fuzzer-derived points and checks the
// query result against the brute-force scan. Run with
// `go test -fuzz FuzzKNearest ./internal/kdtree` to explore; the seed corpus
// runs in normal test mode.
func FuzzKNearest(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(3), uint8(2))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(200), uint8(9), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw, dimRaw uint8) {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%12 + 1
		dim := int(dimRaw)%8 + 1
		rng := mat.NewRNG(seed)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Vec: rng.NormVec(make([]float64, dim), 0, 2), Payload: i}
		}
		tree, err := Build(pts)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		query := rng.NormVec(make([]float64, dim), 0, 3)
		got, err := tree.KNearest(query, k)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		want := BruteKNearest(pts, query, k)
		if len(got) != len(want) {
			t.Fatalf("got %d results, want %d", len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].SqDist-want[i].SqDist) > 1e-9 {
				t.Fatalf("rank %d: dist %v, want %v", i, got[i].SqDist, want[i].SqDist)
			}
		}
		// Sorted nearest-first.
		for i := 1; i < len(got); i++ {
			if got[i].SqDist < got[i-1].SqDist {
				t.Fatal("results not sorted")
			}
		}
	})
}
