package kdtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"enld/internal/mat"
)

func randomPoints(n, dim int, seed uint64) []Point {
	rng := mat.NewRNG(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Vec: rng.NormVec(make([]float64, dim), 0, 1), Payload: i}
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty build accepted")
	}
	if _, err := Build([]Point{{Vec: nil}}); err == nil {
		t.Error("zero-dim build accepted")
	}
	if _, err := Build([]Point{{Vec: []float64{1}}, {Vec: []float64{1, 2}}}); err == nil {
		t.Error("ragged build accepted")
	}
}

func TestKNearestSmall(t *testing.T) {
	pts := []Point{
		{Vec: []float64{0, 0}, Payload: 0},
		{Vec: []float64{1, 0}, Payload: 1},
		{Vec: []float64{0, 1}, Payload: 2},
		{Vec: []float64{5, 5}, Payload: 3},
	}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.KNearest([]float64{0.1, 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Point.Payload != 0 {
		t.Fatalf("KNearest = %+v", got)
	}
	// Results are ordered nearest-first.
	if got[0].SqDist > got[1].SqDist {
		t.Fatal("results not sorted by distance")
	}
}

func TestKNearestExceedsSize(t *testing.T) {
	pts := randomPoints(3, 2, 1)
	tree, _ := Build(pts)
	got, err := tree.KNearest([]float64{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestKNearestZeroK(t *testing.T) {
	tree, _ := Build(randomPoints(5, 2, 2))
	got, err := tree.KNearest([]float64{0, 0}, 0)
	if err != nil || got != nil {
		t.Fatalf("k=0: %v, %v", got, err)
	}
}

func TestKNearestDimensionMismatch(t *testing.T) {
	tree, _ := Build(randomPoints(5, 3, 3))
	if _, err := tree.KNearest([]float64{0, 0}, 1); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
}

// TestDifferentialAgainstBruteForce is the core correctness test: the tree
// must return exactly the same neighbour set as the O(n) scan.
func TestDifferentialAgainstBruteForce(t *testing.T) {
	for _, dim := range []int{1, 2, 5, 16} {
		pts := randomPoints(300, dim, uint64(dim))
		tree, err := Build(pts)
		if err != nil {
			t.Fatal(err)
		}
		rng := mat.NewRNG(uint64(100 + dim))
		for trial := 0; trial < 30; trial++ {
			q := rng.NormVec(make([]float64, dim), 0, 1.5)
			for _, k := range []int{1, 3, 10} {
				got, err := tree.KNearest(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := BruteKNearest(pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("dim=%d k=%d: %d results, want %d", dim, k, len(got), len(want))
				}
				// Compare distance multisets (payload order may differ on ties).
				for i := range got {
					if math.Abs(got[i].SqDist-want[i].SqDist) > 1e-12 {
						t.Fatalf("dim=%d k=%d rank=%d: dist %v, want %v",
							dim, k, i, got[i].SqDist, want[i].SqDist)
					}
				}
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []Point{
		{Vec: []float64{1, 1}, Payload: 0},
		{Vec: []float64{1, 1}, Payload: 1},
		{Vec: []float64{1, 1}, Payload: 2},
	}
	tree, err := Build(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.KNearest([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("duplicates lost: %d results", len(got))
	}
	payloads := map[int]bool{}
	for _, n := range got {
		payloads[n.Point.Payload] = true
	}
	if len(payloads) != 3 {
		t.Fatalf("payloads %v", payloads)
	}
}

func TestTreeMetadata(t *testing.T) {
	pts := randomPoints(42, 4, 5)
	tree, _ := Build(pts)
	if tree.Len() != 42 || tree.Dim() != 4 {
		t.Fatalf("Len=%d Dim=%d", tree.Len(), tree.Dim())
	}
}

func TestClassIndex(t *testing.T) {
	points := map[int][]Point{
		0: randomPoints(50, 3, 10),
		2: randomPoints(30, 3, 11),
	}
	ci, err := BuildClassIndex(points)
	if err != nil {
		t.Fatal(err)
	}
	labels := ci.Labels()
	if len(labels) != 2 || labels[0] != 0 || labels[1] != 2 {
		t.Fatalf("Labels = %v", labels)
	}
	if ci.Size(0) != 50 || ci.Size(2) != 30 || ci.Size(1) != 0 {
		t.Fatal("sizes wrong")
	}
	if ci.TotalSize() != 80 {
		t.Fatalf("TotalSize = %d", ci.TotalSize())
	}
	q := []float64{0, 0, 0}
	got, err := ci.KNearest(0, q, 5)
	if err != nil || len(got) != 5 {
		t.Fatalf("class query: %d results, err=%v", len(got), err)
	}
	want := BruteKNearest(points[0], q, 5)
	for i := range got {
		if math.Abs(got[i].SqDist-want[i].SqDist) > 1e-12 {
			t.Fatal("class index disagrees with brute force")
		}
	}
	// Missing label returns nil, nil.
	got, err = ci.KNearest(7, q, 5)
	if err != nil || got != nil {
		t.Fatalf("missing label: %v, %v", got, err)
	}
	// Empty class slices are skipped.
	ci2, err := BuildClassIndex(map[int][]Point{3: {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ci2.Labels()) != 0 {
		t.Fatal("empty class indexed")
	}
}

// Property: for random point sets and queries, tree results always match the
// brute-force distances exactly.
func TestKNearestProperty(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw%10) + 1
		pts := randomPoints(n, 3, seed)
		tree, err := Build(pts)
		if err != nil {
			return false
		}
		q := mat.NewRNG(seed^0xdead).NormVec(make([]float64, 3), 0, 2)
		got, err := tree.KNearest(q, k)
		if err != nil {
			return false
		}
		want := BruteKNearest(pts, q, k)
		if len(got) != len(want) {
			return false
		}
		gd := make([]float64, len(got))
		wd := make([]float64, len(want))
		for i := range got {
			gd[i], wd[i] = got[i].SqDist, want[i].SqDist
		}
		sort.Float64s(gd)
		sort.Float64s(wd)
		for i := range gd {
			if math.Abs(gd[i]-wd[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
