// Package graph provides the k-NN graph and connected-component machinery
// that the TopoFilter baseline is built on.
//
// TopoFilter [Wu et al., NeurIPS 2020] collects clean data by building a
// k-nearest-neighbour graph over feature representations restricted to each
// observed class and keeping the largest connected component, on the theory
// that clean samples of a class form one dense cluster in latent space while
// mislabelled samples land as isolated vertices or small islands.
package graph

import (
	"errors"
	"sort"

	"enld/internal/kdtree"
)

// UnionFind is a disjoint-set forest with union by size and path halving.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and reports whether a merge
// happened (false when they were already joined).
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// ComponentSize returns the size of x's component.
func (uf *UnionFind) ComponentSize(x int) int {
	return uf.size[uf.Find(x)]
}

// Components groups element indices by component representative.
func (uf *UnionFind) Components() map[int][]int {
	out := make(map[int][]int)
	for i := range uf.parent {
		r := uf.Find(i)
		out[r] = append(out[r], i)
	}
	return out
}

// KNNComponents builds a k-NN graph over vecs and returns the vertex sets of
// its connected components, largest first by size.
//
// With mutual=false every vertex is joined to its k nearest neighbours
// (symmetrized), which yields large well-connected components. With
// mutual=true an edge joins i and j only when each is among the other's
// k nearest neighbours. Mutuality matters for noise filtering: a mislabelled
// outlier's own k-NN edges point into the clean cluster, but the cluster
// does not point back, so the outlier stays isolated — the behaviour
// TopoFilter's clean-component selection relies on. The cost is that mutual
// graphs fragment sparse clusters at small k, so TopoFilter-style callers
// should size k to the expected cluster density.
//
// It returns an error if vecs is empty or ragged, or k is non-positive.
func KNNComponents(vecs [][]float64, k int, mutual bool) ([][]int, error) {
	if len(vecs) == 0 {
		return nil, errors.New("graph: no vectors")
	}
	if k <= 0 {
		return nil, errors.New("graph: non-positive k")
	}
	pts := make([]kdtree.Point, len(vecs))
	for i, v := range vecs {
		pts[i] = kdtree.Point{Vec: v, Payload: i}
	}
	tree, err := kdtree.Build(pts)
	if err != nil {
		return nil, err
	}
	// First pass: record each vertex's k-NN set.
	nbrSets := make([]map[int]bool, len(vecs))
	for i, v := range vecs {
		// Query k+1 because the vertex itself is its own nearest neighbour.
		nbrs, err := tree.KNearest(v, k+1)
		if err != nil {
			return nil, err
		}
		set := make(map[int]bool, k)
		for _, nb := range nbrs {
			if nb.Point.Payload != i {
				set[nb.Point.Payload] = true
			}
		}
		nbrSets[i] = set
	}
	// Second pass: union pairs, requiring reciprocity in mutual mode.
	uf := NewUnionFind(len(vecs))
	for i, set := range nbrSets {
		for j := range set {
			if !mutual || nbrSets[j][i] {
				uf.Union(i, j)
			}
		}
	}
	comps := uf.Components()
	out := make([][]int, 0, len(comps))
	for _, members := range comps {
		out = append(out, members)
	}
	// Largest first; stable tie-break on first member for determinism.
	sortComponents(out)
	return out, nil
}

// sortComponents orders components by (size desc, first member asc) and each
// component's members ascending, giving a fully deterministic result.
func sortComponents(comps [][]int) {
	for i := range comps {
		sort.Ints(comps[i])
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
}
