package graph

import (
	"testing"
	"testing/quick"

	"enld/internal/mat"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	for i := 0; i < 5; i++ {
		if uf.Find(i) != i {
			t.Fatalf("singleton %d has root %d", i, uf.Find(i))
		}
		if uf.ComponentSize(i) != 1 {
			t.Fatal("singleton size != 1")
		}
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union reported merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 2)
	if uf.ComponentSize(3) != 4 {
		t.Fatalf("component size = %d", uf.ComponentSize(3))
	}
	if uf.Find(0) != uf.Find(3) {
		t.Fatal("0 and 3 not connected")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 wrongly connected")
	}
	comps := uf.Components()
	if len(comps) != 2 {
		t.Fatalf("%d components", len(comps))
	}
}

func TestKNNComponentsTwoClusters(t *testing.T) {
	rng := mat.NewRNG(1)
	var vecs [][]float64
	// Two tight clusters far apart: 30 points near (0,0), 20 near (100,100).
	for i := 0; i < 30; i++ {
		vecs = append(vecs, []float64{rng.Norm() * 0.5, rng.Norm() * 0.5})
	}
	for i := 0; i < 20; i++ {
		vecs = append(vecs, []float64{100 + rng.Norm()*0.5, 100 + rng.Norm()*0.5})
	}
	comps, err := KNNComponents(vecs, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2", len(comps))
	}
	if len(comps[0]) != 30 || len(comps[1]) != 20 {
		t.Fatalf("component sizes %d, %d", len(comps[0]), len(comps[1]))
	}
	// Largest-first ordering and membership correctness.
	for _, idx := range comps[0] {
		if idx >= 30 {
			t.Fatalf("far point %d in near cluster", idx)
		}
	}
}

func TestKNNComponentsIsolatesOutlier(t *testing.T) {
	rng := mat.NewRNG(2)
	var vecs [][]float64
	for i := 0; i < 25; i++ {
		vecs = append(vecs, []float64{rng.Norm() * 0.3, rng.Norm() * 0.3})
	}
	vecs = append(vecs, []float64{500, 500}) // the mislabelled outlier
	comps, err := KNNComponents(vecs, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Mutual k-NN: the outlier's edges into the cluster are not reciprocated,
	// so it must form its own singleton component — the property TopoFilter's
	// clean-component selection depends on.
	if len(comps[0]) != 25 {
		t.Fatalf("largest component %d, want 25", len(comps[0]))
	}
	last := comps[len(comps)-1]
	if len(last) != 1 || last[0] != 25 {
		t.Fatalf("outlier not isolated: %v", comps)
	}
}

func TestKNNComponentsSingleVertex(t *testing.T) {
	comps, err := KNNComponents([][]float64{{1, 2}}, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0]) != 1 {
		t.Fatalf("comps = %v", comps)
	}
}

func TestKNNComponentsErrors(t *testing.T) {
	if _, err := KNNComponents(nil, 2, false); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KNNComponents([][]float64{{1}}, 0, false); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KNNComponents([][]float64{{1}, {1, 2}}, 1, false); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestMutualSubsetOfDirected(t *testing.T) {
	// Mutual graphs can only have fewer or equal-size components merged, so
	// the directed construction's largest component is at least as large.
	rng := mat.NewRNG(9)
	vecs := make([][]float64, 40)
	for i := range vecs {
		vecs[i] = rng.NormVec(make([]float64, 3), 0, 1)
	}
	directed, err := KNNComponents(vecs, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	mutual, err := KNNComponents(vecs, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(mutual) < len(directed) {
		t.Fatalf("mutual graph has fewer components (%d) than directed (%d)",
			len(mutual), len(directed))
	}
	if len(directed[0]) < len(mutual[0]) {
		t.Fatalf("directed largest %d < mutual largest %d", len(directed[0]), len(mutual[0]))
	}
}

// Property: components partition the vertex set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw%5) + 1
		rng := mat.NewRNG(seed)
		vecs := make([][]float64, n)
		for i := range vecs {
			vecs[i] = rng.NormVec(make([]float64, 3), 0, 1)
		}
		comps, err := KNNComponents(vecs, k, seed%2 == 0)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		// Largest-first ordering.
		for i := 1; i < len(comps); i++ {
			if len(comps[i]) > len(comps[i-1]) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: union-find component sizes always sum to n.
func TestUnionFindProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, ops uint8) bool {
		n := int(nRaw%50) + 2
		uf := NewUnionFind(n)
		rng := mat.NewRNG(seed)
		for i := 0; i < int(ops); i++ {
			uf.Union(rng.Intn(n), rng.Intn(n))
		}
		total := 0
		for _, members := range uf.Components() {
			total += len(members)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
