package cluster

import (
	"context"
	"fmt"
	"sync"

	"enld/internal/detect"
	"enld/internal/lake"
	"enld/internal/obs"
)

// WorkerConfig wires one in-process shard. Every shard owns its full
// vertical slice: its own lake.Service (admission queue, brownout ladder,
// breaker, retries), its own obs.Registry, its own StatusTracker, and —
// when an Inventory is attached — its own durable segment-log directory.
type WorkerConfig struct {
	// Name is the shard's placement identity (required, unique per cluster).
	Name string
	// Workers is the shard-local worker-pool size (default 1).
	Workers int
	// Policy configures the shard-local resilience and admission behavior.
	Policy lake.Policy
	// Registry receives the shard's metrics; one is created when nil. Each
	// shard must have its OWN registry — families are merged, not shared,
	// across shards (see obs.MergeExpositions).
	Registry *obs.Registry
	// Inventory, when set, persists arrivals shard-locally (callers open
	// one seglog directory per shard).
	Inventory lake.Inventory
	// Ladder and Brownout, when a ladder is given, enable shard-local
	// brownout degradation.
	Ladder   []lake.TierDetector
	Brownout lake.BrownoutConfig
	// KeepRecent bounds the tracker's recent-report list (default 20).
	KeepRecent int
	// OnReport, when set, observes every report the shard files (after the
	// tracker records it) — the hook for per-shard journals.
	OnReport func(lake.Report)
}

// ShardWorker is the in-process Shard: a lake.Service pinned to a
// long-lived intake channel, with synchronous Submit implemented by
// matching the service's OnReport stream back to waiting submitters.
type ShardWorker struct {
	name    string
	svc     *lake.Service
	reg     *obs.Registry
	tracker *lake.StatusTracker

	intake chan lake.Request
	cancel context.CancelFunc
	// done closes once the service's Run has returned; after that every
	// accepted task has been filed and Submit fails fast.
	done chan struct{}

	mu       sync.Mutex
	stopped  bool
	inflight sync.WaitGroup
	waiters  map[int]chan lake.Report
}

// NewShardWorker builds and starts one in-process shard. The detector must
// be safe for concurrent Detect (the in-tree detectors are); distinct
// shards may share one detector instance.
func NewShardWorker(det detect.Detector, cfg WorkerConfig) (*ShardWorker, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("cluster: shard worker needs a name")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	svc, err := lake.NewServiceWithPolicy(det, workers, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %s: %w", cfg.Name, err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if len(cfg.Ladder) > 0 {
		if err := svc.SetBrownout(cfg.Ladder, cfg.Brownout, nil); err != nil {
			return nil, fmt.Errorf("cluster: shard %s: %w", cfg.Name, err)
		}
	}
	svc.SetObs(reg)
	if svc.Breaker() != nil {
		lake.ObserveBreaker(svc.Breaker(), reg)
	}
	if cfg.Inventory != nil {
		svc.SetInventory(cfg.Inventory)
	}

	tracker := lake.NewStatusTracker(nil)
	tracker.SetKeepRecent(cfg.KeepRecent)
	tracker.AttachService(svc)
	if svc.Breaker() != nil {
		tracker.AttachBreaker(svc.Breaker())
	}
	if cfg.Inventory != nil {
		tracker.AttachInventory(cfg.Inventory)
	}

	w := &ShardWorker{
		name:    cfg.Name,
		svc:     svc,
		reg:     reg,
		tracker: tracker,
		intake:  make(chan lake.Request),
		done:    make(chan struct{}),
		waiters: map[int]chan lake.Report{},
	}
	onReport := cfg.OnReport
	svc.OnReport = func(rep lake.Report) {
		rep.Shard = w.name
		tracker.Record(rep)
		w.resolve(rep)
		if onReport != nil {
			onReport(rep)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	go func() {
		defer close(w.done)
		svc.Run(ctx, w.intake)
	}()
	return w, nil
}

// Name implements Shard.
func (w *ShardWorker) Name() string { return w.name }

// Registry exposes the shard's own metrics registry (scatter/gather input).
func (w *ShardWorker) Registry() *obs.Registry { return w.reg }

// Tracker exposes the shard's status tracker for extra wiring (journal
// recovery, training health) before serving.
func (w *ShardWorker) Tracker() *lake.StatusTracker { return w.tracker }

// resolve hands a filed report to the submitter waiting on its task ID.
// Reports without a waiter (caller gave up on its context) are dropped
// here but remain in the tracker and metrics.
func (w *ShardWorker) resolve(rep lake.Report) {
	w.mu.Lock()
	ch := w.waiters[rep.TaskID]
	delete(w.waiters, rep.TaskID)
	w.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// Submit implements Shard: it hands the request to the shard-local service
// and blocks until that task's report is filed. The intake hand-off is
// unbuffered, so a successful send guarantees exactly one report — the
// zero-lost-task accounting identity extends across the cluster hop.
func (w *ShardWorker) Submit(ctx context.Context, req lake.Request) (lake.Report, error) {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return lake.Report{}, fmt.Errorf("cluster: shard %s: %w", w.name, ErrShardDown)
	}
	if _, dup := w.waiters[req.TaskID]; dup {
		w.mu.Unlock()
		return lake.Report{}, fmt.Errorf("cluster: shard %s: task %d already in flight", w.name, req.TaskID)
	}
	ch := make(chan lake.Report, 1)
	w.waiters[req.TaskID] = ch
	w.inflight.Add(1)
	w.mu.Unlock()
	defer w.inflight.Done()

	select {
	case w.intake <- req:
	case <-w.done:
		w.unregister(req.TaskID)
		return lake.Report{}, fmt.Errorf("cluster: shard %s: %w", w.name, ErrShardDown)
	case <-ctx.Done():
		w.unregister(req.TaskID)
		return lake.Report{}, ctx.Err()
	}

	select {
	case rep := <-ch:
		return rep, nil
	case <-w.done:
		// Run returned, so every accepted task has been filed — the report
		// either raced ahead of the close or will never come.
		select {
		case rep := <-ch:
			return rep, nil
		default:
			w.unregister(req.TaskID)
			return lake.Report{}, fmt.Errorf("cluster: shard %s: %w", w.name, ErrShardDown)
		}
	case <-ctx.Done():
		// The shard still owns the task and will file it into its own
		// accounting; this caller just stops waiting.
		w.unregister(req.TaskID)
		return lake.Report{}, ctx.Err()
	}
}

func (w *ShardWorker) unregister(taskID int) {
	w.mu.Lock()
	delete(w.waiters, taskID)
	w.mu.Unlock()
}

// Status implements Shard.
func (w *ShardWorker) Status(context.Context) (lake.Status, error) {
	return w.tracker.Snapshot(), nil
}

// Metrics implements Shard.
func (w *ShardWorker) Metrics(context.Context) ([]byte, error) {
	var buf []byte
	b := &sliceWriter{buf: &buf}
	if err := w.reg.WritePrometheus(b); err != nil {
		return nil, err
	}
	return buf, nil
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}

// stop flips the shard to refusing new submissions and waits until every
// in-flight Submit has completed its intake hand-off.
func (w *ShardWorker) stop() {
	w.mu.Lock()
	already := w.stopped
	w.stopped = true
	w.mu.Unlock()
	if already {
		return
	}
	// In-flight submitters either hand off to the still-running feeder or
	// bail on done/ctx; both terminate, so this wait is bounded.
	w.inflight.Wait()
	close(w.intake)
}

// Drain implements Shard: graceful shutdown. Queued and in-flight tasks
// finish and file their reports; new submissions fail with ErrShardDown.
func (w *ShardWorker) Drain(ctx context.Context) error {
	w.stop()
	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Kill simulates a crash: the service context is cancelled, so queued
// tasks drain as abandoned reports (never silently dropped) and waiting
// submitters see those reports or ErrShardDown — exactly the signal the
// coordinator reroutes on. The kill-one-shard CI run drives this path.
func (w *ShardWorker) Kill() {
	w.cancel()
	w.stop()
	<-w.done
}
