package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func TestRendezvousValidation(t *testing.T) {
	if _, err := NewRendezvous(nil); err == nil {
		t.Fatal("empty shard set accepted")
	}
	if _, err := NewRendezvous([]string{"a", ""}); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRendezvous([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
}

// TestRendezvousDeterministic pins the core placement contract: the same
// key maps to the same shard regardless of goroutine interleaving, shard
// slice order, or GOMAXPROCS — placement is a pure function of (names, key).
func TestRendezvousDeterministic(t *testing.T) {
	names := shardNames(5)
	r, err := NewRendezvous(names)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	want := make([]int, keys)
	wantRank := make([][]int, keys)
	for k := 0; k < keys; k++ {
		want[k] = r.Place(k)
		wantRank[k] = r.Rank(k)
		if want[k] != wantRank[k][0] {
			t.Fatalf("key %d: Place=%d but Rank[0]=%d", k, want[k], wantRank[k][0])
		}
	}

	// Same placement from a Rendezvous built over a permuted name slice:
	// identity is the name, not the index.
	perm := []string{names[3], names[0], names[4], names[1], names[2]}
	rp, err := NewRendezvous(perm)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < keys; k++ {
		if got, want := rp.Name(rp.Place(k)), r.Name(want[k]); got != want {
			t.Fatalf("key %d: permuted placement %s != %s", k, got, want)
		}
	}

	// Concurrent re-derivation under -race, one goroutine per P.
	var wg sync.WaitGroup
	errs := make(chan error, runtime.GOMAXPROCS(0))
	for g := 0; g < runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				if got := r.Place(k); got != want[k] {
					errs <- fmt.Errorf("key %d: concurrent Place %d != %d", k, got, want[k])
					return
				}
				rank := r.Rank(k)
				for i, idx := range rank {
					if idx != wantRank[k][i] {
						errs <- fmt.Errorf("key %d: concurrent Rank differs at %d", k, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestRendezvousBalance pins near-uniform spread: over 10k keys every shard
// stays within 15% of its fair share at N in {2, 4, 8}.
func TestRendezvousBalance(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		r, err := NewRendezvous(shardNames(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for k := 0; k < keys; k++ {
			counts[r.Place(k)]++
		}
		fair := float64(keys) / float64(n)
		for i, c := range counts {
			dev := (float64(c) - fair) / fair
			if dev < 0 {
				dev = -dev
			}
			if dev > 0.15 {
				t.Errorf("n=%d shard %d holds %d keys, %.1f%% off the fair share %.0f",
					n, i, c, dev*100, fair)
			}
		}
	}
}

// TestRendezvousMinimalDisruption pins HRW's defining property: growing or
// shrinking the shard set by one moves only ~1/N of the keys, and every
// moved key involves the added/removed shard — keys never shuffle between
// surviving shards.
func TestRendezvousMinimalDisruption(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		small, err := NewRendezvous(shardNames(n))
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewRendezvous(shardNames(n + 1))
		if err != nil {
			t.Fatal(err)
		}
		newName := big.Name(n)
		moved := 0
		for k := 0; k < keys; k++ {
			before, after := small.Name(small.Place(k)), big.Name(big.Place(k))
			if before == after {
				continue
			}
			moved++
			// Growing: every moved key must land on the new shard.
			if after != newName {
				t.Fatalf("n=%d→%d key %d moved %s→%s, between surviving shards",
					n, n+1, k, before, after)
			}
			// Shrinking (the same pair read in reverse): the moved key's
			// new owner must be its runner-up in the larger set.
			rank := big.Rank(k)
			if got := big.Name(rank[1]); got != before {
				t.Fatalf("n=%d+1 key %d: removal sent %s's key to %s, runner-up is %s",
					n, k, after, before, got)
			}
		}
		share := float64(moved) / keys
		fair := 1 / float64(n+1)
		if share < fair*0.5 || share > fair*1.5 {
			t.Errorf("n=%d→%d moved %.1f%% of keys, expected ~%.1f%%",
				n, n+1, share*100, fair*100)
		}
	}
}
