// Package cluster shards the lake across N workers: a Coordinator places
// datasets on ShardWorkers via rendezvous (highest-random-weight) hashing,
// reroutes around shards marked down, and merges per-shard /statusz and
// /metrics into one scatter/gather view. Workers run in-process behind the
// Shard interface or across processes over the HTTP transport in
// httpshard.go.
package cluster

import (
	"fmt"
	"sort"
)

// Rendezvous places integer keys on a fixed set of named shards by
// highest-random-weight hashing: every (shard, key) pair gets a
// deterministic score and the key lands on the highest-scoring shard.
// Placement depends only on the shard names and the key — not on slice
// order, process, or GOMAXPROCS — and removing one shard moves only the
// keys that shard owned (each to its runner-up), never keys between
// surviving shards. The zero value is unusable; build with NewRendezvous.
type Rendezvous struct {
	names []string
	// seeds caches the per-shard name hash so scoring a key is one mix per
	// shard, not a rehash of the name.
	seeds []uint64
}

// NewRendezvous builds a placement over the given shard names. Names must
// be non-empty and unique: the name is the shard's placement identity, so
// two shards sharing a name would shadow each other.
func NewRendezvous(names []string) (*Rendezvous, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: placement needs at least one shard")
	}
	seen := make(map[string]bool, len(names))
	r := &Rendezvous{
		names: append([]string(nil), names...),
		seeds: make([]uint64, len(names)),
	}
	for i, name := range r.names {
		if name == "" {
			return nil, fmt.Errorf("cluster: shard %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
		r.seeds[i] = fnv1a(name)
	}
	return r, nil
}

// Shards returns the number of shards.
func (r *Rendezvous) Shards() int { return len(r.names) }

// Name returns the name of shard i.
func (r *Rendezvous) Name(i int) string { return r.names[i] }

// Place returns the index of the shard that owns key.
func (r *Rendezvous) Place(key int) int {
	best, bestScore := 0, uint64(0)
	for i := range r.seeds {
		if s := r.score(i, key); s > bestScore || i == 0 {
			best, bestScore = i, s
		}
	}
	return best
}

// Rank returns every shard index ordered best-first for key: Rank(k)[0] is
// the owner, Rank(k)[1] the runner-up a downed owner's keys reroute to, and
// so on. The order is a pure function of the shard names and the key.
func (r *Rendezvous) Rank(key int) []int {
	type scored struct {
		idx   int
		score uint64
	}
	ranked := make([]scored, len(r.seeds))
	for i := range r.seeds {
		ranked[i] = scored{idx: i, score: r.score(i, key)}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		// Scores essentially never collide, but a deterministic tiebreak
		// (by name, the placement identity) keeps Rank a pure function of
		// the shard set even if they do.
		return r.names[ranked[a].idx] < r.names[ranked[b].idx]
	})
	out := make([]int, len(ranked))
	for i, s := range ranked {
		out[i] = s.idx
	}
	return out
}

// score mixes the cached name hash with the key through a splitmix64-style
// finalizer. FNV alone distributes sequential integer keys poorly; the
// finalizer's avalanche gives the near-uniform spread the balance property
// test pins.
func (r *Rendezvous) score(shard, key int) uint64 {
	x := r.seeds[shard] ^ (uint64(key) * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a is the 64-bit FNV-1a hash of s, spelled out so placement never
// depends on a hash implementation that could change underneath us.
func fnv1a(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
