package cluster

import (
	"enld/internal/lake"
	"enld/internal/obs"
)

// coordObs is the coordinator's own routing metrics — distinct from the
// per-shard lake families, which are merged (not shared) across shards.
// Every coordObs method is nil-safe, so an unobserved coordinator pays
// nothing.
type coordObs struct {
	placedC     map[string]*obs.Counter
	servedC     map[string]*obs.Counter
	reroutedOut map[string]*obs.Counter
	retries     map[string]*obs.Counter
	up          map[string]*obs.Gauge
	deadLetter  *obs.Counter
	abandon     *obs.Counter
	shards      *obs.Gauge
}

func newCoordObs(reg *obs.Registry, place *Rendezvous) *coordObs {
	if reg == nil {
		return nil
	}
	o := &coordObs{
		placedC:     map[string]*obs.Counter{},
		servedC:     map[string]*obs.Counter{},
		reroutedOut: map[string]*obs.Counter{},
		retries:     map[string]*obs.Counter{},
		up:          map[string]*obs.Gauge{},
		deadLetter: reg.Counter("enld_cluster_dead_letter_total",
			"Tasks dead-lettered at the coordinator because no shard could take them."),
		abandon: reg.Counter("enld_cluster_abandoned_total",
			"Tasks abandoned at the coordinator because the cluster shut down mid-dispatch."),
		shards: reg.Gauge("enld_cluster_shards",
			"Shards this coordinator places onto."),
	}
	o.shards.Set(float64(place.Shards()))
	// Pre-register every per-shard series so scrape-time deltas are
	// well-defined from the first exposition, not from first increment.
	for i := 0; i < place.Shards(); i++ {
		name := place.Name(i)
		label := obs.Label{Key: "shard", Value: name}
		o.placedC[name] = reg.Counter("enld_cluster_placed_total",
			"Tasks whose rendezvous owner is this shard.", label)
		o.servedC[name] = reg.Counter("enld_cluster_served_total",
			"Tasks whose final report came from this shard.", label)
		o.reroutedOut[name] = reg.Counter("enld_cluster_rerouted_total",
			"Tasks rerouted away from this shard (their owner) to a runner-up.", label)
		o.retries[name] = reg.Counter("enld_cluster_submit_retries_total",
			"Transport-level submission retries against this shard.", label)
		g := reg.Gauge("enld_cluster_shard_up",
			"1 while the shard's coordinator-side breaker is closed, 0 while it is open or probing.", label)
		g.Set(1)
		o.up[name] = g
	}
	return o
}

// watchBreaker mirrors one shard's down-marker breaker into its up gauge.
func (o *coordObs) watchBreaker(name string, b *lake.Breaker) {
	if o == nil {
		return
	}
	gauge := o.up[name]
	b.OnTransition(func(_, to lake.BreakerState) {
		if to == lake.BreakerClosed {
			gauge.Set(1)
		} else {
			gauge.Set(0)
		}
	})
}

func (o *coordObs) placed(name string) {
	if o == nil {
		return
	}
	o.placedC[name].Inc()
}

func (o *coordObs) served(name string) {
	if o == nil {
		return
	}
	o.servedC[name].Inc()
}

func (o *coordObs) rerouted(owner string) {
	if o == nil {
		return
	}
	o.reroutedOut[owner].Inc()
}

func (o *coordObs) retried(name string) {
	if o == nil {
		return
	}
	o.retries[name].Inc()
}

func (o *coordObs) deadLettered() {
	if o == nil {
		return
	}
	o.deadLetter.Inc()
}

func (o *coordObs) abandoned() {
	if o == nil {
		return
	}
	o.abandon.Inc()
}
