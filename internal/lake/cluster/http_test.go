package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"enld/internal/lake"
	"enld/internal/obs"
)

func newHTTPWorker(t *testing.T, name string) (*ShardWorker, *httptest.Server) {
	t.Helper()
	w, err := NewShardWorker(stubDetector{}, WorkerConfig{Name: name, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = w.Drain(ctx)
	})
	return w, srv
}

func TestHTTPShardRoundTrip(t *testing.T) {
	_, srv := newHTTPWorker(t, "h0")
	shard := NewHTTPShard("h0", srv.URL)

	ctx := context.Background()
	rep, err := shard.Submit(ctx, lake.Request{TaskID: 7, Data: testSet(7)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TaskID != 7 || rep.Err != nil || rep.Shard != "h0" {
		t.Fatalf("round-trip report: %+v", rep)
	}
	if rep.Result == nil || len(rep.Result.Noisy) != 1 || len(rep.Result.Clean) != 7 {
		t.Fatalf("result did not survive the wire: %+v", rep.Result)
	}
	if rep.Detection.F1 != 1 {
		t.Fatalf("detection lost on the wire: %+v", rep.Detection)
	}

	st, err := shard.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksProcessed != 1 {
		t.Fatalf("status over HTTP: %+v", st)
	}
	body, err := shard.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := parsed.Counter("enld_lake_tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 1 {
		t.Fatalf("scraped counter = %v, %v", v, ok)
	}
}

func TestHTTPClusterEndToEnd(t *testing.T) {
	_, srv0 := newHTTPWorker(t, "h0")
	_, srv1 := newHTTPWorker(t, "h1")
	coord, err := New([]Shard{
		NewHTTPShard("h0", srv0.URL),
		NewHTTPShard("h1", srv1.URL),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObs(obs.NewRegistry())

	reports := runTasks(t, coord, 16)
	if len(reports) != 16 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil || rep.Rerouted {
			t.Fatalf("task %d: %+v", rep.TaskID, rep)
		}
		if want := coord.Place(rep.TaskID); rep.Shard != want {
			t.Fatalf("task %d on %s, owner %s", rep.TaskID, rep.Shard, want)
		}
	}
	var buf bytes.Buffer
	if err := coord.WriteMetrics(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	merged, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged HTTP exposition failed conformance parse: %v", err)
	}
	if v, ok := merged.Counter("enld_lake_tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 16 {
		t.Fatalf("merged ok = %v, %v; want 16", v, ok)
	}
	st := coord.Status(context.Background())
	if st.Aggregate.TasksProcessed != 16 || st.ShardsUp != 2 {
		t.Fatalf("cluster status over HTTP: %+v", st)
	}
}

// TestHTTPShardDownReroutes kills one worker's HTTP listener mid-cluster
// and checks its keys reroute to the survivor with explicit accounting.
func TestHTTPShardDownReroutes(t *testing.T) {
	_, srv0 := newHTTPWorker(t, "h0")
	_, srv1 := newHTTPWorker(t, "h1")
	coord, err := New([]Shard{
		NewHTTPShard("h0", srv0.URL),
		NewHTTPShard("h1", srv1.URL),
	}, Options{Policy: lake.Policy{BreakerCooldown: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	coord.SetObs(obs.NewRegistry())
	srv0.CloseClientConnections()
	srv0.Close()

	reports := runTasks(t, coord, 12)
	if len(reports) != 12 {
		t.Fatalf("got %d reports", len(reports))
	}
	rerouted := 0
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("task %d failed: %v", rep.TaskID, rep.Err)
		}
		if rep.Shard != "h1" {
			t.Fatalf("task %d served by %s with h0 down", rep.TaskID, rep.Shard)
		}
		if coord.Place(rep.TaskID) == "h0" {
			if !rep.Rerouted {
				t.Fatalf("task %d owned by dead h0 but not marked rerouted", rep.TaskID)
			}
			rerouted++
		} else if rep.Rerouted {
			t.Fatalf("task %d owned by h1 marked rerouted", rep.TaskID)
		}
	}
	if rerouted == 0 {
		t.Fatal("no key owned by the dead shard in the sample")
	}
	// Status still renders: the dead shard appears with an error, not a gap.
	st := coord.Status(context.Background())
	if st.ShardsUp != 1 {
		t.Fatalf("shards_up = %d", st.ShardsUp)
	}
	var deadEntry *ShardStatus
	for i := range st.PerShard {
		if st.PerShard[i].Name == "h0" {
			deadEntry = &st.PerShard[i]
		}
	}
	if deadEntry == nil || deadEntry.Error == "" || deadEntry.Status != nil {
		t.Fatalf("dead shard entry: %+v", deadEntry)
	}
	// Merged metrics survive a failed scrape.
	var buf bytes.Buffer
	if err := coord.WriteMetrics(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("partial merged exposition failed conformance parse: %v", err)
	}
}

func TestHTTPDrainEndpoint(t *testing.T) {
	_, srv := newHTTPWorker(t, "h0")
	shard := NewHTTPShard("h0", srv.URL)
	ctx := context.Background()
	if _, err := shard.Submit(ctx, lake.Request{TaskID: 1, Data: testSet(1)}); err != nil {
		t.Fatal(err)
	}
	if err := shard.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Submit(ctx, lake.Request{TaskID: 2, Data: testSet(2)}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("submit after drain over HTTP: %v, want ErrShardDown", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"task_id": 3,`},
		{"trailing", `{"task_id": 3, "data": []} garbage`},
		{"unknown-field", `{"task_id": 3, "data": [], "extra": 1}`},
		{"negative-task", `{"task_id": -5, "data": []}`},
		{"wrong-type", `{"task_id": "three", "data": []}`},
	}
	for _, tc := range cases {
		if _, err := decodeSubmit(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.body)
		}
	}
	if _, err := decodeReport(strings.NewReader(`{"task_id": 1} x`)); err == nil {
		t.Error("report decode accepted trailing garbage")
	}
	if _, err := decodeStatus(strings.NewReader(`[1,2,3]`)); err == nil {
		t.Error("status decode accepted a JSON array")
	}
	// A valid minimal exchange still decodes.
	req, err := decodeSubmit(strings.NewReader(`{"task_id": 3, "data": [{"id": 1, "x": [0.5], "observed": 0, "true": 1}]}`))
	if err != nil || req.TaskID != 3 || len(req.Data) != 1 {
		t.Fatalf("minimal submit rejected: %+v, %v", req, err)
	}
}
