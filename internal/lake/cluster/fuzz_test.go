package cluster

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzWireDecode hammers the shard HTTP decode path — the one place
// untrusted bytes enter the cluster. The decoders must reject malformed
// JSON, truncated bodies and oversized payloads with an error, never a
// panic or a hang; whatever they do accept must be internally consistent
// enough to re-encode.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"task_id": 3, "data": [{"id": 1, "x": [0.5, 1.5], "observed": 0, "true": 1}]}`))
	f.Add([]byte(`{"task_id": 0, "data": []}`))
	f.Add([]byte(`{"task_id": 3,`))
	f.Add([]byte(`{"task_id": -1, "data": null}`))
	f.Add([]byte(`{"task_id": 2, "size": 8, "noisy_ids": [1, 2], "clean_ids": [3], "detection": {"Precision": 1, "Recall": 0.5, "F1": 0.66}, "queued_ns": 100, "process_ns": 200, "error": "boom", "tier": "full"}`))
	f.Add([]byte(`{"store_name": "cluster", "tasks_processed": 9, "recent": [{"task_id": 1, "shard": "s0", "rerouted": true}]}`))
	f.Add([]byte(strings.Repeat("[", 10000)))
	f.Add([]byte("{\"task_id\": 1, \"data\": [{\"x\": [" + strings.Repeat("1,", 4096) + "1]}]}"))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeSubmit(bytes.NewReader(data)); err == nil {
			if req.TaskID < 0 {
				t.Fatalf("accepted negative task id %d", req.TaskID)
			}
			// An accepted submission must re-encode: the server round-trips
			// accepted requests back into wire structs.
			for _, s := range req.Data {
				_ = s.ID
			}
		}
		if rep, err := decodeReport(bytes.NewReader(data)); err == nil {
			// Re-encoding an accepted report must not panic.
			_ = encodeReport(rep)
		}
		_, _ = decodeStatus(bytes.NewReader(data))
	})
}
