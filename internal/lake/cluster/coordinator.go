package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"enld/internal/lake"
	"enld/internal/obs"
)

// Options tunes the coordinator.
type Options struct {
	// MaxInflight bounds concurrently dispatched tasks across the cluster
	// (default 4 × shards): the coordinator is a router, not a queue — the
	// per-shard admission queues are where load control happens.
	MaxInflight int
	// Policy is the inter-node fault story, reusing the lake's resilience
	// vocabulary: MaxRetries/RetryBase/RetryMax/RetrySeed drive transport
	// retries against one shard before falling back to the rendezvous
	// runner-up, and BreakerThreshold/BreakerCooldown drive the per-shard
	// down-marker (defaults: threshold 1, cooldown 3s — a shard that fails
	// one submission is down until a probe says otherwise). A task that
	// exhausts every shard dead-letters at the coordinator.
	Policy lake.Policy
}

// Coordinator routes a request stream across shards by rendezvous
// placement, reroutes around shards marked down, and aggregates the
// shards' status and metrics into one scatter/gather view. It implements
// the same Run contract as lake.Service, so workload.Play and the load
// harness drive a cluster unchanged.
type Coordinator struct {
	shards   []Shard
	place    *Rendezvous
	breakers []*lake.Breaker
	opts     Options
	retries  int
	backoffs []time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand

	o   *coordObs
	reg *obs.Registry
}

// New builds a coordinator over the given shards. Shard names must be
// unique — they are the placement identity.
func New(shards []Shard, opts Options) (*Coordinator, error) {
	names := make([]string, len(shards))
	for i, s := range shards {
		names[i] = s.Name()
	}
	place, err := NewRendezvous(names)
	if err != nil {
		return nil, err
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 4 * len(shards)
	}
	threshold := opts.Policy.BreakerThreshold
	if threshold <= 0 {
		threshold = 1
	}
	cooldown := opts.Policy.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 3 * time.Second
	}
	c := &Coordinator{
		shards:   shards,
		place:    place,
		breakers: make([]*lake.Breaker, len(shards)),
		opts:     opts,
		retries:  opts.Policy.MaxRetries,
		rng:      rand.New(rand.NewSource(int64(opts.Policy.RetrySeed) + 1)),
	}
	for i := range shards {
		c.breakers[i] = lake.NewBreaker(threshold, cooldown)
	}
	// Precompute the retry backoff ladder from the policy so dispatch
	// stays allocation-light.
	base := opts.Policy.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := opts.Policy.RetryMax
	if max <= 0 {
		max = 2 * time.Second
	}
	for d := base; len(c.backoffs) < c.retries; d *= 2 {
		if d > max {
			d = max
		}
		c.backoffs = append(c.backoffs, d)
	}
	return c, nil
}

// SetObs registers the coordinator's own routing metrics on reg. Call
// before Run.
func (c *Coordinator) SetObs(reg *obs.Registry) {
	c.reg = reg
	c.o = newCoordObs(reg, c.place)
	for i, b := range c.breakers {
		c.o.watchBreaker(c.place.Name(i), b)
	}
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Place returns the name of the shard that owns key — exposed so tests and
// audits can check reports against the placement contract.
func (c *Coordinator) Place(key int) string {
	return c.place.Name(c.place.Place(key))
}

// Run consumes the request stream, dispatching each task to its rendezvous
// owner (or, when the owner is down, the runner-up) and returns one report
// per request, sorted by task ID — the exact contract of lake.Service.Run,
// which is what makes the coordinator a drop-in Submitter for the load
// harness. No request is ever silently dropped: the returned reports
// partition into ok/degraded/dead-lettered/shed/abandoned, with Rerouted
// marking tasks served away from their owner.
func (c *Coordinator) Run(ctx context.Context, requests <-chan lake.Request) []lake.Report {
	sem := make(chan struct{}, c.opts.MaxInflight)
	var mu sync.Mutex
	var reports []lake.Report
	var wg sync.WaitGroup

	file := func(rep lake.Report) {
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	}

	for req := range requests {
		sem <- struct{}{}
		wg.Add(1)
		go func(req lake.Request) {
			defer func() { <-sem; wg.Done() }()
			file(c.dispatch(ctx, req))
		}(req)
	}
	wg.Wait()

	sort.Slice(reports, func(i, j int) bool { return reports[i].TaskID < reports[j].TaskID })
	return reports
}

// dispatch routes one task: rendezvous owner first, then each runner-up in
// rank order as shards prove unavailable. Submission errors against one
// shard burn the policy's transient retries before moving on; a shard
// whose breaker is open is skipped outright. When every shard is
// exhausted the task dead-letters at the coordinator — visibly, in both
// the report and the cluster metrics.
func (c *Coordinator) dispatch(ctx context.Context, req lake.Request) lake.Report {
	order := c.place.Rank(req.TaskID)
	primary := order[0]
	c.o.placed(c.place.Name(primary))
	var errs []error
	for _, idx := range order {
		name := c.place.Name(idx)
		br := c.breakers[idx]
		if !br.Allow() {
			errs = append(errs, fmt.Errorf("shard %s: breaker open", name))
			continue
		}
		rep, err := c.submitShard(ctx, idx, req)
		if err == nil && rep.Abandoned && ctx.Err() == nil {
			// The shard shut down underneath a queued task. Its own books
			// say "abandoned"; cluster-wide the task is still ours to
			// place, so treat it as a shard failure and reroute.
			err = fmt.Errorf("shard %s abandoned task %d: %w", name, rep.TaskID, ErrShardDown)
		}
		if err == nil {
			br.Success()
			rep.Shard = name
			if idx != primary {
				rep.Rerouted = true
				c.o.rerouted(c.place.Name(primary))
			}
			c.o.served(name)
			return rep
		}
		br.Failure()
		errs = append(errs, err)
		if ctx.Err() != nil {
			break
		}
	}
	if ctx.Err() != nil {
		// Shutdown mid-dispatch: accounted, not lost.
		c.o.abandoned()
		return lake.Report{
			TaskID:    req.TaskID,
			Size:      len(req.Data),
			Abandoned: true,
			Err:       fmt.Errorf("cluster: task %d abandoned at shutdown: %w", req.TaskID, ctx.Err()),
		}
	}
	c.o.deadLettered()
	return lake.Report{
		TaskID:       req.TaskID,
		Size:         len(req.Data),
		DeadLettered: true,
		Err:          fmt.Errorf("cluster: task %d: no shard available: %w", req.TaskID, errors.Join(errs...)),
	}
}

// submitShard submits to one shard, burning the policy's retry budget on
// transient (transport-class) failures. ErrShardDown fails immediately —
// the shard stays down until its breaker half-opens.
func (c *Coordinator) submitShard(ctx context.Context, idx int, req lake.Request) (lake.Report, error) {
	var last error
	for attempt := 0; ; attempt++ {
		rep, err := c.shards[idx].Submit(ctx, req)
		if err == nil {
			rep.Retries += attempt
			return rep, nil
		}
		last = err
		if attempt >= c.retries || !transient(err) || ctx.Err() != nil {
			return lake.Report{}, last
		}
		c.o.retried(c.place.Name(idx))
		select {
		case <-time.After(c.jitter(c.backoffs[attempt])):
		case <-ctx.Done():
			return lake.Report{}, last
		}
	}
}

// jitter spreads a backoff over [d/2, d) so synchronized rerouted tasks do
// not thundering-herd a recovering shard.
func (c *Coordinator) jitter(d time.Duration) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}
