package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/lake"
	"enld/internal/metrics"
)

// The HTTP transport: a ShardWorker serves POST /submit, GET /statusz,
// GET /metrics and POST /drain; HTTPShard is the coordinator-side client
// implementing Shard over those endpoints. The wire format is JSON with
// strict, size-capped decoding on both sides — the decode path is fuzzed
// (FuzzWireDecode), because it is the one place untrusted bytes enter the
// cluster.

// Wire-format size caps. Submissions carry feature vectors, so their cap is
// generous; status and report documents are small.
const (
	maxSubmitBytes = 64 << 20
	maxReplyBytes  = 8 << 20
)

// wireSample is dataset.Sample on the wire.
type wireSample struct {
	ID       int       `json:"id"`
	X        []float64 `json:"x"`
	Observed int       `json:"observed"`
	True     int       `json:"true"`
}

// wireRequest is lake.Request on the wire.
type wireRequest struct {
	TaskID int          `json:"task_id"`
	Data   []wireSample `json:"data"`
}

// wireReport is lake.Report on the wire. The detector's partition travels
// as ID lists; durations travel as integer nanoseconds.
type wireReport struct {
	TaskID       int               `json:"task_id"`
	Size         int               `json:"size"`
	NoisyIDs     []int             `json:"noisy_ids,omitempty"`
	CleanIDs     []int             `json:"clean_ids,omitempty"`
	Detection    metrics.Detection `json:"detection"`
	QueuedNS     int64             `json:"queued_ns"`
	ProcessNS    int64             `json:"process_ns"`
	Error        string            `json:"error,omitempty"`
	Retries      int               `json:"retries,omitempty"`
	Degraded     bool              `json:"degraded,omitempty"`
	DeadLettered bool              `json:"dead_lettered,omitempty"`
	Shed         bool              `json:"shed,omitempty"`
	Abandoned    bool              `json:"abandoned,omitempty"`
	Tier         string            `json:"tier,omitempty"`
	Shard        string            `json:"shard,omitempty"`
}

// decodeStrict decodes one JSON document from r into v: unknown fields and
// trailing garbage are errors, and r is expected to be size-capped by the
// caller. Strictness here is load-bearing — a lenient decode would let a
// version-skewed or corrupted peer silently drop fields.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON document")
	}
	return nil
}

// decodeSubmit parses and validates a wire submission body.
func decodeSubmit(r io.Reader) (lake.Request, error) {
	var wire wireRequest
	if err := decodeStrict(io.LimitReader(r, maxSubmitBytes+1), &wire); err != nil {
		return lake.Request{}, fmt.Errorf("cluster: decode submit: %w", err)
	}
	if wire.TaskID < 0 {
		return lake.Request{}, fmt.Errorf("cluster: decode submit: negative task id %d", wire.TaskID)
	}
	data := make(dataset.Set, len(wire.Data))
	for i, s := range wire.Data {
		data[i] = dataset.Sample{ID: s.ID, X: s.X, Observed: s.Observed, True: s.True}
	}
	return lake.Request{TaskID: wire.TaskID, Data: data}, nil
}

// decodeReport parses a wire report body back into a lake.Report.
func decodeReport(r io.Reader) (lake.Report, error) {
	var wire wireReport
	if err := decodeStrict(io.LimitReader(r, maxReplyBytes+1), &wire); err != nil {
		return lake.Report{}, fmt.Errorf("cluster: decode report: %w", err)
	}
	rep := lake.Report{
		TaskID:       wire.TaskID,
		Size:         wire.Size,
		Detection:    wire.Detection,
		Queued:       time.Duration(wire.QueuedNS),
		Process:      time.Duration(wire.ProcessNS),
		Retries:      wire.Retries,
		Degraded:     wire.Degraded,
		DeadLettered: wire.DeadLettered,
		Shed:         wire.Shed,
		Abandoned:    wire.Abandoned,
		Tier:         wire.Tier,
		Shard:        wire.Shard,
	}
	if wire.Error != "" {
		rep.Err = errors.New(wire.Error)
	}
	if wire.NoisyIDs != nil || wire.CleanIDs != nil {
		res := &detect.Result{
			Noisy: make(map[int]bool, len(wire.NoisyIDs)),
			Clean: make(map[int]bool, len(wire.CleanIDs)),
		}
		for _, id := range wire.NoisyIDs {
			res.Noisy[id] = true
		}
		for _, id := range wire.CleanIDs {
			res.Clean[id] = true
		}
		res.Process = rep.Process
		rep.Result = res
	}
	return rep, nil
}

// decodeStatus parses a /statusz body.
func decodeStatus(r io.Reader) (lake.Status, error) {
	var st lake.Status
	// Status documents are produced by several repo versions; unknown
	// fields are tolerated here (decodeStrict is for the task-bearing
	// paths) but size and trailing-garbage limits still hold.
	dec := json.NewDecoder(io.LimitReader(r, maxReplyBytes+1))
	if err := dec.Decode(&st); err != nil {
		return lake.Status{}, fmt.Errorf("cluster: decode status: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return lake.Status{}, fmt.Errorf("cluster: decode status: trailing data")
	}
	return st, nil
}

func encodeReport(rep lake.Report) wireReport {
	wire := wireReport{
		TaskID:       rep.TaskID,
		Size:         rep.Size,
		Detection:    rep.Detection,
		QueuedNS:     int64(rep.Queued),
		ProcessNS:    int64(rep.Process),
		Retries:      rep.Retries,
		Degraded:     rep.Degraded,
		DeadLettered: rep.DeadLettered,
		Shed:         rep.Shed,
		Abandoned:    rep.Abandoned,
		Tier:         rep.Tier,
		Shard:        rep.Shard,
	}
	if rep.Err != nil {
		wire.Error = rep.Err.Error()
	}
	if rep.Result != nil {
		wire.NoisyIDs = sortedIDs(rep.Result.Noisy)
		wire.CleanIDs = sortedIDs(rep.Result.Clean)
	}
	return wire
}

func sortedIDs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	// Deterministic wire bytes for identical results.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Handler serves this worker as an HTTP shard: POST /submit, GET /statusz,
// GET /metrics, POST /drain, GET /healthz.
func (w *ShardWorker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		lreq, err := decodeSubmit(http.MaxBytesReader(rw, req.Body, maxSubmitBytes))
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := w.Submit(req.Context(), lreq)
		switch {
		case errors.Is(err, ErrShardDown):
			http.Error(rw, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(encodeReport(rep))
	})
	mux.Handle("/statusz", w.tracker.Handler())
	mux.Handle("/metrics", w.reg.Handler())
	mux.HandleFunc("/drain", func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if err := w.Drain(req.Context()); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(rw, "drained")
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// HTTPShard is the coordinator-side client for a worker serving Handler().
type HTTPShard struct {
	name   string
	base   string
	client *http.Client
}

// NewHTTPShard points a Shard at a worker's base URL (e.g.
// "http://10.0.0.7:9001"). The name is the placement identity and must
// match across coordinator restarts, or keys reshuffle. Submit carries no
// client timeout — a queued task legitimately waits — while Status,
// Metrics and Drain are bounded per call by the passed context.
func NewHTTPShard(name, baseURL string) *HTTPShard {
	return &HTTPShard{name: name, base: baseURL, client: &http.Client{}}
}

// Name implements Shard.
func (s *HTTPShard) Name() string { return s.name }

// Submit implements Shard over POST /submit. Transport and server-side
// errors come back as transient errors, so the coordinator's retry policy
// treats an inter-node blip exactly like an in-shard one; a 503 (drained
// or killed worker) maps to ErrShardDown so the breaker routes around it
// without burning retries.
func (s *HTTPShard) Submit(ctx context.Context, req lake.Request) (lake.Report, error) {
	wire := wireRequest{TaskID: req.TaskID, Data: make([]wireSample, len(req.Data))}
	for i, smp := range req.Data {
		wire.Data[i] = wireSample{ID: smp.ID, X: smp.X, Observed: smp.Observed, True: smp.True}
	}
	body, err := json.Marshal(wire)
	if err != nil {
		return lake.Report{}, fmt.Errorf("cluster: shard %s: encode submit: %w", s.name, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/submit", bytes.NewReader(body))
	if err != nil {
		return lake.Report{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(hreq)
	if err != nil {
		return lake.Report{}, transportErr{fmt.Errorf("cluster: shard %s: %w", s.name, err)}
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return lake.Report{}, fmt.Errorf("cluster: shard %s: %w", s.name, ErrShardDown)
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return lake.Report{}, transportErr{fmt.Errorf("cluster: shard %s: submit: %s: %s",
			s.name, resp.Status, bytes.TrimSpace(msg))}
	}
	rep, err := decodeReport(resp.Body)
	if err != nil {
		return lake.Report{}, transportErr{fmt.Errorf("cluster: shard %s: %w", s.name, err)}
	}
	return rep, nil
}

// Status implements Shard over GET /statusz.
func (s *HTTPShard) Status(ctx context.Context) (lake.Status, error) {
	body, err := s.get(ctx, "/statusz", maxReplyBytes)
	if err != nil {
		return lake.Status{}, err
	}
	return decodeStatus(bytes.NewReader(body))
}

// Metrics implements Shard over GET /metrics.
func (s *HTTPShard) Metrics(ctx context.Context) ([]byte, error) {
	return s.get(ctx, "/metrics", maxReplyBytes)
}

// Drain implements Shard over POST /drain.
func (s *HTTPShard) Drain(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/drain", nil)
	if err != nil {
		return err
	}
	resp, err := s.client.Do(hreq)
	if err != nil {
		return transportErr{fmt.Errorf("cluster: shard %s: %w", s.name, err)}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: shard %s: drain: %s", s.name, resp.Status)
	}
	return nil
}

func (s *HTTPShard) get(ctx context.Context, path string, limit int64) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(hreq)
	if err != nil {
		return nil, transportErr{fmt.Errorf("cluster: shard %s: %w", s.name, err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %s: %s: %s", s.name, path, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, limit+1))
}
