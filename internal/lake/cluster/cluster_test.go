package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/lake"
	"enld/internal/obs"
)

// stubDetector is a fast deterministic detector: a sample is noisy when its
// observed label disagrees with the true one.
type stubDetector struct{ delay time.Duration }

func (d stubDetector) Name() string { return "stub" }

func (d stubDetector) Detect(set dataset.Set) (*detect.Result, error) {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	res := &detect.Result{Noisy: map[int]bool{}, Clean: map[int]bool{}}
	for _, s := range set {
		if s.Observed != s.True {
			res.Noisy[s.ID] = true
		} else {
			res.Clean[s.ID] = true
		}
	}
	return res, nil
}

func testSet(task int) dataset.Set {
	set := make(dataset.Set, 8)
	for i := range set {
		label := i % 2
		observed := label
		if i == 0 {
			observed = 1 - label
		}
		set[i] = dataset.Sample{ID: task*100 + i, X: []float64{float64(i), float64(task)}, Observed: observed, True: label}
	}
	return set
}

func newTestCluster(t *testing.T, n int, delay time.Duration, opts Options) (*Coordinator, []*ShardWorker, *obs.Registry) {
	t.Helper()
	workers := make([]*ShardWorker, n)
	shards := make([]Shard, n)
	for i := range workers {
		w, err := NewShardWorker(stubDetector{delay: delay}, WorkerConfig{
			Name:    fmt.Sprintf("shard-%d", i),
			Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		shards[i] = w
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, w := range workers {
			_ = w.Drain(ctx)
		}
	})
	coord, err := New(shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord.SetObs(reg)
	return coord, workers, reg
}

func runTasks(t *testing.T, coord *Coordinator, n int) []lake.Report {
	t.Helper()
	requests := make(chan lake.Request)
	go func() {
		defer close(requests)
		for task := 0; task < n; task++ {
			requests <- lake.Request{TaskID: task, Data: testSet(task)}
		}
	}()
	return coord.Run(context.Background(), requests)
}

func TestClusterEndToEnd(t *testing.T) {
	coord, _, _ := newTestCluster(t, 4, 0, Options{})
	const tasks = 40
	reports := runTasks(t, coord, tasks)
	if len(reports) != tasks {
		t.Fatalf("got %d reports for %d tasks", len(reports), tasks)
	}
	for i, rep := range reports {
		if rep.TaskID != i {
			t.Fatalf("reports not sorted: index %d holds task %d", i, rep.TaskID)
		}
		if rep.Err != nil {
			t.Fatalf("task %d failed: %v", rep.TaskID, rep.Err)
		}
		if rep.Rerouted {
			t.Fatalf("task %d rerouted in a healthy cluster", rep.TaskID)
		}
		if want := coord.Place(rep.TaskID); rep.Shard != want {
			t.Fatalf("task %d served by %s, rendezvous owner is %s", rep.TaskID, rep.Shard, want)
		}
		if rep.Result == nil || len(rep.Result.Noisy) != 1 {
			t.Fatalf("task %d: unexpected result %+v", rep.TaskID, rep.Result)
		}
		if rep.Detection.F1 != 1 {
			t.Fatalf("task %d: F1 = %v", rep.TaskID, rep.Detection.F1)
		}
	}
	st := coord.Status(context.Background())
	if st.Shards != 4 || st.ShardsUp != 4 {
		t.Fatalf("status shards=%d up=%d, want 4/4", st.Shards, st.ShardsUp)
	}
	if st.Aggregate.TasksProcessed != tasks {
		t.Fatalf("aggregate processed %d, want %d", st.Aggregate.TasksProcessed, tasks)
	}
	used := 0
	for _, sh := range st.PerShard {
		if sh.Status == nil {
			t.Fatalf("shard %s has no status", sh.Name)
		}
		if sh.Status.TasksProcessed > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("only %d shards served work; placement is not spreading", used)
	}
}

// accounting partitions reports into the cluster accounting classes and
// checks each report lands in exactly one.
type accounting struct {
	completed, rerouted, shed, abandoned, deadLetter int
}

func account(t *testing.T, reports []lake.Report) accounting {
	t.Helper()
	var a accounting
	for _, rep := range reports {
		classes := 0
		switch {
		case rep.Shed:
			a.shed++
			classes++
		case rep.Abandoned:
			a.abandoned++
			classes++
		case rep.DeadLettered:
			a.deadLetter++
			classes++
		case rep.Rerouted:
			a.rerouted++
			classes++
		default:
			a.completed++
			classes++
		}
		if classes != 1 {
			t.Fatalf("task %d in %d accounting classes: %+v", rep.TaskID, classes, rep)
		}
	}
	return a
}

// TestClusterKillShardZeroLost is the composed failure drill the ISSUE
// pins: kill one shard mid-run and prove every offered task is accounted —
// completed + rerouted + shed + abandoned + dead-letter = offered, zero
// silent drops — while the merged /metrics view still passes the strict
// conformance parser.
func TestClusterKillShardZeroLost(t *testing.T) {
	coord, workers, _ := newTestCluster(t, 4, 2*time.Millisecond, Options{})
	const tasks = 60
	// Kill the owner of the last task, so work keeps arriving for the dead
	// shard after the kill and the reroute path must carry it.
	victim := coord.Place(tasks - 1)
	requests := make(chan lake.Request)
	go func() {
		defer close(requests)
		for task := 0; task < tasks; task++ {
			if task == tasks/3 {
				for _, w := range workers {
					if w.Name() == victim {
						w.Kill()
					}
				}
			}
			requests <- lake.Request{TaskID: task, Data: testSet(task)}
			time.Sleep(time.Millisecond)
		}
	}()
	reports := coord.Run(context.Background(), requests)

	if len(reports) != tasks {
		t.Fatalf("lost tasks: %d reports for %d offered", len(reports), tasks)
	}
	a := account(t, reports)
	if got := a.completed + a.rerouted + a.shed + a.abandoned + a.deadLetter; got != tasks {
		t.Fatalf("accounting identity broken: %+v sums to %d, offered %d", a, got, tasks)
	}
	if a.rerouted == 0 {
		t.Fatalf("no task rerouted despite killing shard %s: %+v", victim, a)
	}
	if a.deadLetter != 0 || a.abandoned != 0 {
		t.Fatalf("tasks fell through with three healthy shards: %+v", a)
	}
	for _, rep := range reports {
		if rep.Rerouted {
			if rep.Err != nil {
				t.Fatalf("rerouted task %d carries error: %v", rep.TaskID, rep.Err)
			}
			if rep.Shard == victim {
				t.Fatalf("task %d rerouted onto the dead shard", rep.TaskID)
			}
			if coord.Place(rep.TaskID) != victim {
				t.Fatalf("task %d rerouted but its owner %s is alive", rep.TaskID, coord.Place(rep.TaskID))
			}
		}
	}

	// The merged exposition must still satisfy the conformance parser with
	// a dead shard in the scatter set.
	var buf bytes.Buffer
	if err := coord.WriteMetrics(context.Background(), &buf); err != nil {
		t.Fatalf("merged metrics with dead shard: %v", err)
	}
	merged, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged exposition failed conformance parse: %v", err)
	}
	reroutedTotal := 0.0
	if fam := merged["enld_cluster_rerouted_total"]; fam != nil {
		for _, s := range fam.Series {
			reroutedTotal += s.Value
		}
	}
	if int(reroutedTotal) != a.rerouted {
		t.Fatalf("metrics count %v rerouted, reports say %d", reroutedTotal, a.rerouted)
	}
	st := coord.Status(context.Background())
	if st.ShardsUp != 3 {
		t.Fatalf("shards_up = %d after killing one of four", st.ShardsUp)
	}
}

func TestClusterMetricsMerge(t *testing.T) {
	coord, workers, _ := newTestCluster(t, 2, 0, Options{})
	reports := runTasks(t, coord, 20)
	if len(reports) != 20 {
		t.Fatalf("got %d reports", len(reports))
	}
	var buf bytes.Buffer
	if err := coord.WriteMetrics(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	merged, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("conformance parse: %v\n%s", err, buf.String())
	}
	// Counters sum across shards to the cluster total.
	if v, ok := merged.Counter("enld_lake_tasks_total", map[string]string{"outcome": "ok"}); !ok || v != 20 {
		t.Fatalf("merged ok counter = %v, %v; want 20", v, ok)
	}
	h, ok := merged.Histogram("enld_lake_task_seconds", nil)
	if !ok || h.Count != 20 {
		t.Fatalf("merged latency histogram count = %v", h)
	}
	// Gauges survive per shard, labelled with the shard name.
	for _, w := range workers {
		if _, ok := merged.Gauge("enld_lake_queue_depth", map[string]string{"shard": w.Name()}); !ok {
			t.Fatalf("merged view missing queue_depth gauge for %s", w.Name())
		}
	}
	// Coordinator routing families pass through.
	if v, ok := merged.Gauge("enld_cluster_shards", nil); !ok || v != 2 {
		t.Fatalf("enld_cluster_shards = %v, %v; want 2", v, ok)
	}
	served := 0.0
	for _, w := range workers {
		if v, ok := merged.Counter("enld_cluster_served_total", map[string]string{"shard": w.Name()}); ok {
			served += v
		}
	}
	if served != 20 {
		t.Fatalf("served counters sum to %v, want 20", served)
	}
}

func TestShardWorkerDrain(t *testing.T) {
	w, err := NewShardWorker(stubDetector{}, WorkerConfig{Name: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := w.Submit(ctx, lake.Request{TaskID: 1, Data: testSet(1)})
	if err != nil || rep.Err != nil {
		t.Fatalf("submit: %v / %v", err, rep.Err)
	}
	if rep.Shard != "solo" {
		t.Fatalf("report shard = %q", rep.Shard)
	}
	if err := w.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Submit(ctx, lake.Request{TaskID: 2, Data: testSet(2)}); !errors.Is(err, ErrShardDown) {
		t.Fatalf("submit after drain: %v, want ErrShardDown", err)
	}
	// Drain is idempotent, and a drained shard still answers status.
	if err := w.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := w.Status(ctx)
	if err != nil || st.TasksProcessed != 1 {
		t.Fatalf("status after drain: %+v, %v", st, err)
	}
}

func TestCoordinatorAllShardsDownDeadLetters(t *testing.T) {
	coord, workers, reg := newTestCluster(t, 2, 0, Options{})
	for _, w := range workers {
		w.Kill()
	}
	reports := runTasks(t, coord, 3)
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		if !rep.DeadLettered || rep.Err == nil {
			t.Fatalf("task %d not dead-lettered with every shard down: %+v", rep.TaskID, rep)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := parsed.Counter("enld_cluster_dead_letter_total", nil); !ok || v != 3 {
		t.Fatalf("dead letter counter = %v, %v; want 3", v, ok)
	}
}

func TestCoordinatorShutdownAbandons(t *testing.T) {
	coord, _, _ := newTestCluster(t, 2, 50*time.Millisecond, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	requests := make(chan lake.Request)
	go func() {
		defer close(requests)
		for task := 0; task < 8; task++ {
			requests <- lake.Request{TaskID: task, Data: testSet(task)}
		}
		cancel()
	}()
	reports := coord.Run(ctx, requests)
	if len(reports) != 8 {
		t.Fatalf("got %d reports for 8 offered", len(reports))
	}
	a := account(t, reports)
	if a.completed+a.rerouted+a.shed+a.abandoned+a.deadLetter != 8 {
		t.Fatalf("accounting identity broken at shutdown: %+v", a)
	}
}
