package cluster

import (
	"context"
	"errors"

	"enld/internal/lake"
)

// ErrShardDown reports a shard that cannot accept submissions: it was
// drained, killed, or its transport is unreachable. The coordinator treats
// it as a routing signal — the task is not lost, it reroutes to the
// rendezvous runner-up.
var ErrShardDown = errors.New("cluster: shard down")

// Shard is one worker of the sharded lake, in-process (ShardWorker) or
// remote (HTTPShard). The coordinator only ever talks through this
// interface, so the cluster topology is a wiring decision, not a code one.
type Shard interface {
	// Name is the shard's stable placement identity: rendezvous hashing
	// scores names, so renaming a shard reassigns its keys.
	Name() string
	// Submit runs one task to completion on the shard and returns its
	// report. A non-nil error means the shard could not account for the
	// task at all (down, unreachable, malformed exchange) and the caller
	// still owns it; task-level failures (dead-letter, shed) travel inside
	// the report with a nil error.
	Submit(ctx context.Context, req lake.Request) (lake.Report, error)
	// Status returns the shard's /statusz snapshot for scatter/gather.
	Status(ctx context.Context) (lake.Status, error)
	// Metrics returns the shard's Prometheus text exposition for
	// scatter/gather merging.
	Metrics(ctx context.Context) ([]byte, error)
	// Drain stops intake, waits for queued and in-flight work to finish,
	// and leaves the shard answering Status/Metrics but refusing Submit
	// with ErrShardDown.
	Drain(ctx context.Context) error
}

// transportErr wraps an inter-node failure so the coordinator's retry
// policy classifies it as transient, exactly like an in-shard timeout: the
// next attempt may reach a recovered shard or a healed network.
type transportErr struct{ err error }

func (e transportErr) Error() string   { return e.err.Error() }
func (e transportErr) Unwrap() error   { return e.err }
func (e transportErr) Transient() bool { return true }

// transient reports whether the coordinator should burn a retry on err
// before falling back to the rendezvous runner-up. ErrShardDown is
// deliberately not transient: a down shard stays down until its breaker
// half-opens, so retrying it only adds latency.
func transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
