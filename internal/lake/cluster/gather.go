package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"enld/internal/lake"
	"enld/internal/obs"
)

// ShardStatus is one shard's slice of the cluster status view.
type ShardStatus struct {
	Name string `json:"name"`
	// Up mirrors the coordinator-side breaker: false means submissions are
	// currently routing around this shard.
	Up bool `json:"up"`
	// Error is why the status scrape failed, when it did; a down shard
	// still appears in the view rather than vanishing from it.
	Error  string       `json:"error,omitempty"`
	Status *lake.Status `json:"status,omitempty"`
}

// ClusterStatus is the scatter/gather /statusz document: every shard's own
// status plus a cluster-wide aggregate.
type ClusterStatus struct {
	Shards    int    `json:"shards"`
	ShardsUp  int    `json:"shards_up"`
	Placement string `json:"placement"`
	// Aggregate merges the per-shard statuses: counters are summed, the
	// mean columns are weighted by each shard's completed-task count, and
	// Recent interleaves the newest reports across shards (each stamped
	// with its shard name).
	Aggregate lake.Status   `json:"aggregate"`
	PerShard  []ShardStatus `json:"per_shard"`
}

// Status gathers every shard's /statusz concurrently and merges them. A
// shard whose scrape fails contributes an error entry, never a gap.
func (c *Coordinator) Status(ctx context.Context) ClusterStatus {
	out := ClusterStatus{
		Shards:    len(c.shards),
		Placement: "rendezvous-hrw",
		PerShard:  make([]ShardStatus, len(c.shards)),
	}
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			entry := ShardStatus{Name: sh.Name(), Up: c.breakers[i].State() == lake.BreakerClosed}
			st, err := sh.Status(ctx)
			if err != nil {
				entry.Error = err.Error()
			} else {
				entry.Status = &st
			}
			out.PerShard[i] = entry
		}(i, sh)
	}
	wg.Wait()
	sort.Slice(out.PerShard, func(i, j int) bool { return out.PerShard[i].Name < out.PerShard[j].Name })
	for _, entry := range out.PerShard {
		if entry.Up {
			out.ShardsUp++
		}
	}
	out.Aggregate = mergeStatuses(out.PerShard)
	return out
}

// mergeStatuses folds per-shard statuses into one cluster aggregate.
func mergeStatuses(shards []ShardStatus) lake.Status {
	var agg lake.Status
	var f1Sum, procSum, queueSum float64
	var okTotal int
	for _, entry := range shards {
		st := entry.Status
		if st == nil {
			continue
		}
		agg.StoreSamples += st.StoreSamples
		agg.TasksProcessed += st.TasksProcessed
		agg.TasksFailed += st.TasksFailed
		agg.TasksDegraded += st.TasksDegraded
		agg.TasksDeadLetter += st.TasksDeadLetter
		agg.TotalRetries += st.TotalRetries
		agg.TasksShed += st.TasksShed
		agg.TasksAbandoned += st.TasksAbandoned
		if st.KeepRecent > agg.KeepRecent {
			agg.KeepRecent = st.KeepRecent
		}
		// The per-shard means are averages over tasks that produced scored
		// output; weight them back by that population to aggregate.
		ok := st.TasksProcessed - st.TasksFailed - st.TasksShed - st.TasksAbandoned
		if ok > 0 {
			f1Sum += st.MeanF1 * float64(ok)
			procSum += st.MeanProcessSec * float64(ok)
			queueSum += st.MeanQueuedSec * float64(ok)
			okTotal += ok
		}
		agg.Recent = append(agg.Recent, st.Recent...)
	}
	if okTotal > 0 {
		agg.MeanF1 = f1Sum / float64(okTotal)
		agg.MeanProcessSec = procSum / float64(okTotal)
		agg.MeanQueuedSec = queueSum / float64(okTotal)
	}
	// Newest first across shards, bounded like a single shard's view.
	sort.SliceStable(agg.Recent, func(i, j int) bool { return agg.Recent[i].TaskID > agg.Recent[j].TaskID })
	if agg.KeepRecent > 0 && len(agg.Recent) > agg.KeepRecent {
		agg.Recent = agg.Recent[:agg.KeepRecent]
	}
	agg.StoreName = "cluster"
	return agg
}

// WriteMetrics renders the merged cluster exposition: every shard's
// /metrics parsed and merged (counters and histograms summed, gauges
// labelled shard="name") plus the coordinator's own routing families
// passed through unlabelled. The output round-trips obs.ParseText — the
// same conformance bar the per-shard endpoints meet. A shard whose scrape
// fails is skipped with its name recorded in the error only if every
// scrape fails; partial views stay serveable because a cluster dashboard
// that goes blank when one shard dies is worse than one missing a shard.
func (c *Coordinator) WriteMetrics(ctx context.Context, w io.Writer) error {
	type scrape struct {
		name string
		body []byte
		err  error
	}
	scrapes := make([]scrape, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			body, err := sh.Metrics(ctx)
			scrapes[i] = scrape{name: sh.Name(), body: body, err: err}
		}(i, sh)
	}
	wg.Wait()

	var parts []obs.ShardExposition
	var failed []error
	for _, s := range scrapes {
		if s.err != nil {
			failed = append(failed, fmt.Errorf("shard %s: %w", s.name, s.err))
			continue
		}
		parsed, err := obs.ParseText(bytes.NewReader(s.body))
		if err != nil {
			failed = append(failed, fmt.Errorf("shard %s: %w", s.name, err))
			continue
		}
		parts = append(parts, obs.ShardExposition{Shard: s.name, Parsed: parsed})
	}
	if c.reg != nil {
		var buf bytes.Buffer
		if err := c.reg.WritePrometheus(&buf); err != nil {
			return err
		}
		own, err := obs.ParseText(&buf)
		if err != nil {
			return err
		}
		parts = append(parts, obs.ShardExposition{Parsed: own})
	}
	if len(parts) == 0 {
		if len(failed) > 0 {
			return fmt.Errorf("cluster: every metrics scrape failed: %v", failed)
		}
		return nil
	}
	merged, err := obs.MergeExpositions(parts)
	if err != nil {
		return err
	}
	return obs.WriteParsed(w, merged)
}

// StatusHandler serves the scatter/gather ClusterStatus as JSON — the
// cluster-mode /statusz.
func (c *Coordinator) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Status(req.Context()))
	})
}

// MetricsHandler serves the merged exposition — the cluster-mode /metrics.
func (c *Coordinator) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		if err := c.WriteMetrics(req.Context(), w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
