// Package lake simulates the data-platform side of the paper's deployment
// scenario (§I, §IV-A): an inventory store holding the platform's labelled
// data, a stream of incremental datasets arriving over time, and a service
// that runs a noisy-label detector over each arrival while recording the
// setup-versus-process timing split of §V-A3.
package lake

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"enld/internal/dataset"
)

// StoreMeta describes the task whose data a store holds.
type StoreMeta struct {
	Name       string
	Classes    int
	FeatureDim int
}

// Store is the platform's inventory: a labelled sample collection with
// class-level access and gob persistence. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	meta    StoreMeta
	samples dataset.Set
	byID    map[int]int // sample ID → index in samples
}

// NewStore returns an empty store for the described task.
func NewStore(meta StoreMeta) (*Store, error) {
	if meta.Classes < 2 || meta.FeatureDim < 1 {
		return nil, fmt.Errorf("lake: invalid store meta %+v", meta)
	}
	return &Store{meta: meta, byID: make(map[int]int)}, nil
}

// Meta returns the store's task description.
func (s *Store) Meta() StoreMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.meta
}

// Add inserts samples, rejecting dimension mismatches, out-of-range labels
// and duplicate IDs. On error the store is unchanged.
func (s *Store) Add(set dataset.Set) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, smp := range set {
		if len(smp.X) != s.meta.FeatureDim {
			return fmt.Errorf("lake: sample %d has dim %d, store expects %d", smp.ID, len(smp.X), s.meta.FeatureDim)
		}
		if smp.Observed != dataset.Missing && (smp.Observed < 0 || smp.Observed >= s.meta.Classes) {
			return fmt.Errorf("lake: sample %d label %d out of range", smp.ID, smp.Observed)
		}
		if _, dup := s.byID[smp.ID]; dup {
			return fmt.Errorf("lake: duplicate sample ID %d", smp.ID)
		}
	}
	for _, smp := range set {
		s.byID[smp.ID] = len(s.samples)
		s.samples = append(s.samples, smp)
	}
	return nil
}

// Len returns the number of stored samples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.samples)
}

// All returns a copy of the stored samples.
func (s *Store) All() dataset.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.samples.Clone()
}

// Get returns the sample with the given ID.
func (s *Store) Get(id int) (dataset.Sample, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, ok := s.byID[id]
	if !ok {
		return dataset.Sample{}, false
	}
	return s.samples[idx], true
}

// ByLabel returns copies of the samples observed as label.
func (s *Store) ByLabel(label int) dataset.Set {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out dataset.Set
	for _, smp := range s.samples {
		if smp.Observed == label {
			out = append(out, smp)
		}
	}
	return out
}

// Relabel updates the observed label of the sample with the given ID — the
// store-side effect of accepting a detection result or a pseudo label.
func (s *Store) Relabel(id, label int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("lake: relabel unknown ID %d", id)
	}
	if label != dataset.Missing && (label < 0 || label >= s.meta.Classes) {
		return fmt.Errorf("lake: relabel %d to out-of-range label %d", id, label)
	}
	s.samples[idx].Observed = label
	return nil
}

// Remove deletes the samples with the given IDs, returning how many were
// present — the store-side effect of dropping detected-noisy data.
func (s *Store) Remove(ids map[int]bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(ids) == 0 {
		return 0
	}
	kept := s.samples[:0]
	removed := 0
	for _, smp := range s.samples {
		if ids[smp.ID] {
			removed++
			continue
		}
		kept = append(kept, smp)
	}
	s.samples = kept
	s.byID = make(map[int]int, len(kept))
	for i, smp := range kept {
		s.byID[smp.ID] = i
	}
	return removed
}

// LabelHistogram returns observed-label counts, sorted by label.
func (s *Store) LabelHistogram() []LabelCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	counts := map[int]int{}
	for _, smp := range s.samples {
		counts[smp.Observed]++
	}
	out := make([]LabelCount, 0, len(counts))
	for l, c := range counts {
		out = append(out, LabelCount{Label: l, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelCount pairs a label with its sample count.
type LabelCount struct {
	Label int
	Count int
}

// storeSnapshot is the gob wire format.
type storeSnapshot struct {
	Meta    StoreMeta
	Samples dataset.Set
}

// Save writes the store to w in gob format.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := storeSnapshot{Meta: s.meta, Samples: s.samples.Clone()}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("lake: save: %w", err)
	}
	return nil
}

// LoadStore reads a store previously written by Save.
func LoadStore(r io.Reader) (*Store, error) {
	var snap storeSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("lake: load: %w", err)
	}
	st, err := NewStore(snap.Meta)
	if err != nil {
		return nil, err
	}
	if err := st.Add(snap.Samples); err != nil {
		return nil, errors.New("lake: load: corrupt snapshot: " + err.Error())
	}
	return st, nil
}
