package lake

import (
	"time"

	"enld/internal/obs"
)

// lakeObs holds the service's pre-interned metric handles.
type lakeObs struct {
	reg            *obs.Registry
	tasksOK        *obs.Counter
	tasksDegraded  *obs.Counter
	tasksDead      *obs.Counter
	tasksShed      *obs.Counter
	tasksAbandoned *obs.Counter
	retries        *obs.Counter
	taskSeconds    *obs.Histogram
	queuedSeconds  *obs.Histogram
	inflight       *obs.Gauge
	queueDepth     *obs.Gauge
	brownoutTier   *obs.Gauge
	brownoutMax    *obs.Gauge
}

// f1Buckets spans the [0, 1] detection-F1 range; the load harness reads
// per-tier quality as sum/count (the mean) so bucket placement only affects
// dashboard resolution.
var f1Buckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// taskBuckets spans detection-task latencies: sub-millisecond degraded
// fallbacks up to multi-minute full ENLD runs.
var taskBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// SetObs attaches an observability registry to the service: per-outcome task
// counters (enld_lake_tasks_total{outcome=...}), a retry counter, and task
// latency / queue-wait histograms. Every outcome series is registered up
// front so scrapes show zeros instead of absent series. Call before Run; a
// nil registry detaches. Metrics are recorded from worker goroutines — the
// registry's hot path is lock-free, so this adds no serialization.
func (s *Service) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.obs = nil
		return
	}
	outcome := func(v string) *obs.Counter {
		return reg.Counter("enld_lake_tasks_total",
			"Completed lake detection tasks, by outcome.",
			obs.Label{Key: "outcome", Value: v})
	}
	s.obs = &lakeObs{
		reg:            reg,
		tasksOK:        outcome("ok"),
		tasksDegraded:  outcome("degraded"),
		tasksDead:      outcome("dead_letter"),
		tasksShed:      outcome("shed"),
		tasksAbandoned: outcome("abandoned"),
		retries: reg.Counter("enld_lake_retries_total",
			"Extra primary detection attempts consumed by transient failures."),
		taskSeconds: reg.Histogram("enld_lake_task_seconds",
			"End-to-end processing time of one lake task (queue wait excluded).", taskBuckets),
		queuedSeconds: reg.Histogram("enld_lake_queued_seconds",
			"Time a lake task waited in the queue before a worker picked it up.", taskBuckets),
		inflight: reg.Gauge("enld_lake_inflight_tasks",
			"Lake tasks currently being processed by a worker. Pinned at the worker count when the service is saturated — the load harness reads this to tell queueing delay from processing delay."),
		queueDepth: reg.Gauge("enld_lake_queue_depth",
			"Admitted-but-not-started lake tasks in the bounded admission queue (0 without bounded admission)."),
		brownoutTier: reg.Gauge("enld_lake_brownout_tier",
			"Active brownout degradation tier (ladder index; 0 is full quality)."),
		brownoutMax: reg.Gauge("enld_lake_brownout_max_tier",
			"Deepest brownout tier reached since the service started."),
	}
	// Pre-register the brownout transition and per-tier quality series for a
	// ladder already installed, so scrapes show them at zero from the start.
	if b := s.brownout; b != nil {
		s.obs.tierTransitions("down")
		s.obs.tierTransitions("up")
		for _, rung := range b.ladder {
			s.obs.tierTasks(rung.Name)
			s.obs.tierF1(rung.Name)
		}
	}
}

// tierTransitions interns the brownout transition counter for one direction.
// Registry interning returns the same handle on every call, so these per-call
// lookups are safe; they run once per tier change, never per task.
func (o *lakeObs) tierTransitions(direction string) *obs.Counter {
	return o.reg.Counter("enld_lake_brownout_transitions_total",
		"Brownout tier transitions, by direction (down = degrade, up = recover).",
		obs.Label{Key: "direction", Value: direction})
}

// tierTasks interns the per-tier completed-task counter.
func (o *lakeObs) tierTasks(tier string) *obs.Counter {
	return o.reg.Counter("enld_lake_tier_tasks_total",
		"Completed lake tasks, by brownout tier served.",
		obs.Label{Key: "tier", Value: tier})
}

// tierF1 interns the per-tier detection-F1 histogram. Mean F1 for a tier is
// sum/count; the load harness reads it to enforce per-tier quality floors.
func (o *lakeObs) tierF1(tier string) *obs.Histogram {
	return o.reg.Histogram("enld_lake_detection_f1",
		"Detection F1 of completed lake tasks scored against ground truth, by brownout tier.",
		f1Buckets, obs.Label{Key: "tier", Value: tier})
}

// brownoutTransition records one tier change from the controller goroutine.
func (o *lakeObs) brownoutTransition(b *brownout, from, to int) {
	if o == nil {
		return
	}
	direction := "down"
	if to < from {
		direction = "up"
	}
	o.tierTransitions(direction).Inc()
	o.brownoutTier.Set(float64(to))
	o.brownoutMax.Set(float64(b.maxTier.Load()))
}

// taskStarted/taskFinished bracket one worker's processing of a task for the
// in-flight gauge. Nil-safe like every obs handle.
func (o *lakeObs) taskStarted() {
	if o == nil {
		return
	}
	o.inflight.Add(1)
}

func (o *lakeObs) taskFinished() {
	if o == nil {
		return
	}
	o.inflight.Add(-1)
}

// record files one finished task. elapsed is the worker's wall-clock
// processing time (attempts, backoff and fallback included — unlike
// Report.Process, which only the successful detector call stamps). Shed and
// abandoned tasks count in the outcome taxonomy but deliberately skip the
// latency histograms: no detector work ran, and folding their zeros in would
// deflate the very percentiles the overload SLOs are judged on.
func (o *lakeObs) record(rep Report, elapsed time.Duration) {
	if o == nil {
		return
	}
	switch {
	case rep.Shed:
		o.tasksShed.Inc()
		return
	case rep.Abandoned:
		o.tasksAbandoned.Inc()
		return
	case rep.DeadLettered:
		o.tasksDead.Inc()
	case rep.Degraded:
		o.tasksDegraded.Inc()
	default:
		o.tasksOK.Inc()
	}
	o.retries.Add(uint64(rep.Retries))
	o.taskSeconds.Observe(elapsed.Seconds())
	o.queuedSeconds.Observe(rep.Queued.Seconds())
	if rep.Tier != "" {
		o.tierTasks(rep.Tier).Inc()
		if rep.Result != nil {
			o.tierF1(rep.Tier).Observe(rep.Detection.F1)
		}
	}
}

// setQueueDepth mirrors the admission-queue occupancy into the gauge.
func (s *Service) setQueueDepth(n int64) {
	if s.obs == nil {
		return
	}
	s.obs.queueDepth.Set(float64(n))
}

// ObserveBreaker exports a breaker's behaviour through the registry:
// enld_lake_breaker_transitions_total{from,to} counts state changes,
// enld_lake_breaker_state gauges the current state (0 closed, 1 open,
// 2 half-open), and enld_lake_breaker_last_transition_timestamp_seconds
// stamps the most recent change. The four reachable transitions are
// registered up front so scrapes show them at zero. Nil breaker or registry
// is a no-op.
func ObserveBreaker(b *Breaker, reg *obs.Registry) {
	if b == nil || reg == nil {
		return
	}
	transitions := func(from, to BreakerState) *obs.Counter {
		return reg.Counter("enld_lake_breaker_transitions_total",
			"Circuit breaker state transitions.",
			obs.Label{Key: "from", Value: from.String()},
			obs.Label{Key: "to", Value: to.String()})
	}
	for _, t := range [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
		{BreakerHalfOpen, BreakerOpen},
	} {
		transitions(t[0], t[1])
	}
	state := reg.Gauge("enld_lake_breaker_state",
		"Current circuit breaker state: 0 closed, 1 open, 2 half-open.")
	last := reg.Gauge("enld_lake_breaker_last_transition_timestamp_seconds",
		"Unix time of the breaker's most recent state transition.")
	state.Set(float64(b.State()))
	b.OnTransition(func(from, to BreakerState) {
		transitions(from, to).Inc()
		state.Set(float64(to))
		last.Set(float64(time.Now().UnixNano()) / 1e9)
	})
}
