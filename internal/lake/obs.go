package lake

import (
	"time"

	"enld/internal/obs"
)

// lakeObs holds the service's pre-interned metric handles.
type lakeObs struct {
	reg           *obs.Registry
	tasksOK       *obs.Counter
	tasksDegraded *obs.Counter
	tasksDead     *obs.Counter
	retries       *obs.Counter
	taskSeconds   *obs.Histogram
	queuedSeconds *obs.Histogram
	inflight      *obs.Gauge
}

// taskBuckets spans detection-task latencies: sub-millisecond degraded
// fallbacks up to multi-minute full ENLD runs.
var taskBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// SetObs attaches an observability registry to the service: per-outcome task
// counters (enld_lake_tasks_total{outcome=...}), a retry counter, and task
// latency / queue-wait histograms. Every outcome series is registered up
// front so scrapes show zeros instead of absent series. Call before Run; a
// nil registry detaches. Metrics are recorded from worker goroutines — the
// registry's hot path is lock-free, so this adds no serialization.
func (s *Service) SetObs(reg *obs.Registry) {
	if reg == nil {
		s.obs = nil
		return
	}
	outcome := func(v string) *obs.Counter {
		return reg.Counter("enld_lake_tasks_total",
			"Completed lake detection tasks, by outcome.",
			obs.Label{Key: "outcome", Value: v})
	}
	s.obs = &lakeObs{
		reg:           reg,
		tasksOK:       outcome("ok"),
		tasksDegraded: outcome("degraded"),
		tasksDead:     outcome("dead_letter"),
		retries: reg.Counter("enld_lake_retries_total",
			"Extra primary detection attempts consumed by transient failures."),
		taskSeconds: reg.Histogram("enld_lake_task_seconds",
			"End-to-end processing time of one lake task (queue wait excluded).", taskBuckets),
		queuedSeconds: reg.Histogram("enld_lake_queued_seconds",
			"Time a lake task waited in the queue before a worker picked it up.", taskBuckets),
		inflight: reg.Gauge("enld_lake_inflight_tasks",
			"Lake tasks currently being processed by a worker. Pinned at the worker count when the service is saturated — the load harness reads this to tell queueing delay from processing delay."),
	}
}

// taskStarted/taskFinished bracket one worker's processing of a task for the
// in-flight gauge. Nil-safe like every obs handle.
func (o *lakeObs) taskStarted() {
	if o == nil {
		return
	}
	o.inflight.Add(1)
}

func (o *lakeObs) taskFinished() {
	if o == nil {
		return
	}
	o.inflight.Add(-1)
}

// record files one completed task. elapsed is the worker's wall-clock
// processing time (attempts, backoff and fallback included — unlike
// Report.Process, which only the successful detector call stamps).
func (o *lakeObs) record(rep Report, elapsed time.Duration) {
	if o == nil {
		return
	}
	switch {
	case rep.DeadLettered:
		o.tasksDead.Inc()
	case rep.Degraded:
		o.tasksDegraded.Inc()
	default:
		o.tasksOK.Inc()
	}
	o.retries.Add(uint64(rep.Retries))
	o.taskSeconds.Observe(elapsed.Seconds())
	o.queuedSeconds.Observe(rep.Queued.Seconds())
}

// ObserveBreaker exports a breaker's behaviour through the registry:
// enld_lake_breaker_transitions_total{from,to} counts state changes,
// enld_lake_breaker_state gauges the current state (0 closed, 1 open,
// 2 half-open), and enld_lake_breaker_last_transition_timestamp_seconds
// stamps the most recent change. The four reachable transitions are
// registered up front so scrapes show them at zero. Nil breaker or registry
// is a no-op.
func ObserveBreaker(b *Breaker, reg *obs.Registry) {
	if b == nil || reg == nil {
		return
	}
	transitions := func(from, to BreakerState) *obs.Counter {
		return reg.Counter("enld_lake_breaker_transitions_total",
			"Circuit breaker state transitions.",
			obs.Label{Key: "from", Value: from.String()},
			obs.Label{Key: "to", Value: to.String()})
	}
	for _, t := range [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
		{BreakerHalfOpen, BreakerOpen},
	} {
		transitions(t[0], t[1])
	}
	state := reg.Gauge("enld_lake_breaker_state",
		"Current circuit breaker state: 0 closed, 1 open, 2 half-open.")
	last := reg.Gauge("enld_lake_breaker_last_transition_timestamp_seconds",
		"Unix time of the breaker's most recent state transition.")
	state.Set(float64(b.State()))
	b.OnTransition(func(from, to BreakerState) {
		transitions(from, to).Inc()
		state.Set(float64(to))
		last.Set(float64(time.Now().UnixNano()) / 1e9)
	})
}
