package lake

import (
	"context"
	"strings"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/obs"
)

// funcDetector runs fn on every Detect call and returns an empty result.
type funcDetector func()

func (funcDetector) Name() string { return "func" }

func (f funcDetector) Detect(dataset.Set) (*detect.Result, error) {
	f()
	return detect.NewResult(), nil
}

func lakeCounter(reg *obs.Registry, outcome string) *obs.Counter {
	return reg.Counter("enld_lake_tasks_total",
		"Completed lake detection tasks, by outcome.",
		obs.Label{Key: "outcome", Value: outcome})
}

// TestServiceObsOutcomes: ok, degraded and dead-letter outcomes land in the
// right counter series, retries accumulate, and the latency histograms see
// every task.
func TestServiceObsOutcomes(t *testing.T) {
	// Primary fails transiently twice then succeeds; with one retry allowed
	// and a fallback, the task sequence covers all three outcomes is too
	// intricate — exercise ok + retries here, degraded/dead below.
	det := &transientFail{n: 2}
	svc, err := NewServiceWithPolicy(det, 2, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.SetObs(reg)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(3, 4), 0))
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}

	if got := lakeCounter(reg, "ok").Value(); got != 3 {
		t.Fatalf("ok counter = %d, want 3", got)
	}
	for _, outcome := range []string{"degraded", "dead_letter"} {
		if got := lakeCounter(reg, outcome).Value(); got != 0 {
			t.Fatalf("%s counter = %d, want 0 (pre-registered at zero)", outcome, got)
		}
	}
	retries := reg.Counter("enld_lake_retries_total",
		"Extra primary detection attempts consumed by transient failures.")
	if got := retries.Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
	taskSec := reg.Histogram("enld_lake_task_seconds",
		"End-to-end processing time of one lake task (queue wait excluded).", taskBuckets)
	if got := taskSec.Count(); got != 3 {
		t.Fatalf("task histogram count = %d, want 3", got)
	}
	queued := reg.Histogram("enld_lake_queued_seconds",
		"Time a lake task waited in the queue before a worker picked it up.", taskBuckets)
	if got := queued.Count(); got != 3 {
		t.Fatalf("queued histogram count = %d, want 3", got)
	}
	// The lake pool drains a channel via Run (no chunked fan-out), so its
	// task counter legitimately stays zero — but Instrument must have
	// registered both series, and the busy gauge must have returned to zero.
	busy := reg.Gauge("enld_pool_busy_workers",
		"Workers currently executing, by pool name.",
		obs.Label{Key: "pool", Value: "lake"})
	if got := busy.Value(); got != 0 {
		t.Fatalf("lake pool busy gauge = %v after drain, want 0", got)
	}
	inflight := reg.Gauge("enld_lake_inflight_tasks",
		"Lake tasks currently being processed by a worker. Pinned at the worker count when the service is saturated — the load harness reads this to tell queueing delay from processing delay.")
	if got := inflight.Value(); got != 0 {
		t.Fatalf("inflight gauge = %v after drain, want 0", got)
	}
}

// TestServiceObsInflight: the in-flight gauge rises while a worker holds a
// task and returns to zero once the run drains.
func TestServiceObsInflight(t *testing.T) {
	release := make(chan struct{})
	observed := make(chan float64, 1)
	reg := obs.NewRegistry()
	det := funcDetector(func() { // blocks until released, sampling the gauge
		observed <- reg.Gauge("enld_lake_inflight_tasks",
			"Lake tasks currently being processed by a worker. Pinned at the worker count when the service is saturated — the load harness reads this to tell queueing delay from processing delay.").Value()
		<-release
	})
	svc, err := NewService(det, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetObs(reg)
	ctx := context.Background()
	done := make(chan []Report, 1)
	go func() { done <- svc.Run(ctx, Feed(ctx, shards(1, 4), 0)) }()
	if got := <-observed; got != 1 {
		t.Fatalf("inflight gauge mid-task = %v, want 1", got)
	}
	close(release)
	if reports := <-done; len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
}

// TestServiceObsDegradedAndDead: a hard-failing primary degrades to the
// fallback; without a fallback it dead-letters.
func TestServiceObsDegradedAndDead(t *testing.T) {
	primary := &switchable{}
	primary.set(true)

	svc, _ := NewServiceWithPolicy(primary, 1, Policy{Fallback: flagOdd{}})
	reg := obs.NewRegistry()
	svc.SetObs(reg)
	ctx := context.Background()
	svc.Run(ctx, Feed(ctx, shards(2, 4), 0))
	if got := lakeCounter(reg, "degraded").Value(); got != 2 {
		t.Fatalf("degraded counter = %d, want 2", got)
	}

	svc2, _ := NewServiceWithPolicy(primary, 1, Policy{})
	reg2 := obs.NewRegistry()
	svc2.SetObs(reg2)
	svc2.Run(ctx, Feed(ctx, shards(2, 4), 0))
	if got := lakeCounter(reg2, "dead_letter").Value(); got != 2 {
		t.Fatalf("dead-letter counter = %d, want 2", got)
	}
}

// TestServiceObsBrownoutSeries: with a brownout ladder installed before
// SetObs, the tier and transition series are pre-registered, tier-stamped
// completions land in the per-tier counters and F1 histograms, an escalation
// shows up in the transition counter and tier gauges, and every family is
// present in the Prometheus exposition.
func TestServiceObsBrownoutSeries(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{delay: 15 * time.Millisecond}, 1, Policy{
		Admission: AdmissionConfig{QueueDepth: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBrownout([]TierDetector{
		{Name: TierFull, Detector: flagOdd{delay: 15 * time.Millisecond}},
		{Name: TierFallback, Detector: flagAll{delay: time.Millisecond}},
	}, BrownoutConfig{
		QueueHigh: 2, QueueLow: 0,
		Interval:      2 * time.Millisecond,
		EscalateAfter: 1, RecoverAfter: 1000,
	}, nil); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc.SetObs(reg)
	ctx := context.Background()
	data := shards(24, 4)
	// Same pacing as the differential test: arrivals outrun the 15ms tier-0
	// detector so the controller escalates mid-run and both tiers serve tasks.
	reports := svc.Run(ctx, Feed(ctx, data, 2*time.Millisecond))

	perTier := map[string]int{}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
		perTier[rep.Tier]++
	}
	for tier, want := range perTier {
		if got := svc.obs.tierTasks(tier).Value(); got != uint64(want) {
			t.Fatalf("tier %s task counter = %d, want %d", tier, got, want)
		}
		if got := svc.obs.tierF1(tier).Count(); got != uint64(want) {
			t.Fatalf("tier %s F1 histogram count = %d, want %d", tier, got, want)
		}
	}
	if got := svc.obs.tierTransitions("down").Value(); got == 0 {
		t.Fatal("controller escalated but the down-transition counter is zero")
	}
	st := svc.OverloadStatus()
	maxGauge := reg.Gauge("enld_lake_brownout_max_tier",
		"Deepest brownout tier reached since the service started.")
	if got := maxGauge.Value(); got != float64(st.BrownoutMaxTier) {
		t.Fatalf("max-tier gauge = %v, status says %d", got, st.BrownoutMaxTier)
	}
	tierGauge := reg.Gauge("enld_lake_brownout_tier",
		"Active brownout degradation tier (ladder index; 0 is full quality).")
	if got := tierGauge.Value(); got < 1 {
		t.Fatalf("tier gauge = %v after escalation with recovery disabled, want >= 1", got)
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"enld_lake_tier_tasks_total",
		"enld_lake_detection_f1",
		"enld_lake_brownout_transitions_total",
		"enld_lake_brownout_tier",
		"enld_lake_brownout_max_tier",
		"enld_lake_queue_depth",
	} {
		if !strings.Contains(expo.String(), family) {
			t.Fatalf("exposition missing %s:\n%s", family, expo.String())
		}
	}
}

// TestObserveBreakerTransitions: breaker state changes surface as labelled
// transition counters and state/timestamp gauges, and metrics coexist with a
// previously registered OnTransition hook.
func TestObserveBreakerTransitions(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	var hookCalls int
	b.OnTransition(func(from, to BreakerState) { hookCalls++ })

	reg := obs.NewRegistry()
	ObserveBreaker(b, reg)

	state := reg.Gauge("enld_lake_breaker_state",
		"Current circuit breaker state: 0 closed, 1 open, 2 half-open.")
	if got := state.Value(); got != 0 {
		t.Fatalf("initial state gauge = %v, want 0 (closed)", got)
	}

	b.Failure()
	b.Failure() // trips: closed → open
	clock = clock.Add(2 * time.Hour)
	if !b.Allow() { // cooldown elapsed: open → half-open, probe admitted
		t.Fatal("probe not admitted after cooldown")
	}
	b.Success() // half-open → closed

	wantTransitions := map[[2]BreakerState]uint64{
		{BreakerClosed, BreakerOpen}:     1,
		{BreakerOpen, BreakerHalfOpen}:   1,
		{BreakerHalfOpen, BreakerClosed}: 1,
		{BreakerHalfOpen, BreakerOpen}:   0,
	}
	for tr, want := range wantTransitions {
		c := reg.Counter("enld_lake_breaker_transitions_total",
			"Circuit breaker state transitions.",
			obs.Label{Key: "from", Value: tr[0].String()},
			obs.Label{Key: "to", Value: tr[1].String()})
		if got := c.Value(); got != want {
			t.Fatalf("transition %s→%s = %d, want %d", tr[0], tr[1], got, want)
		}
	}
	if got := state.Value(); got != 0 {
		t.Fatalf("final state gauge = %v, want 0 (closed)", got)
	}
	last := reg.Gauge("enld_lake_breaker_last_transition_timestamp_seconds",
		"Unix time of the breaker's most recent state transition.")
	if last.Value() <= 0 {
		t.Fatal("last-transition timestamp never set")
	}
	if hookCalls != 3 {
		t.Fatalf("pre-existing hook saw %d transitions, want 3 (observer list broken)", hookCalls)
	}
}

// TestKeepRecentConfigurable: SetKeepRecent bounds the recent list and is
// reported in the snapshot.
func TestKeepRecentConfigurable(t *testing.T) {
	tr := NewStatusTracker(nil)
	tr.SetKeepRecent(3)
	for i := 0; i < 10; i++ {
		tr.Record(Report{TaskID: i, Size: 4})
	}
	st := tr.Snapshot()
	if st.KeepRecent != 3 {
		t.Fatalf("snapshot keep_recent = %d, want 3", st.KeepRecent)
	}
	if len(st.Recent) != 3 {
		t.Fatalf("recent has %d entries, want 3", len(st.Recent))
	}
	if st.Recent[0].TaskID != 9 {
		t.Fatalf("recent[0] task = %d, want 9 (most recent first)", st.Recent[0].TaskID)
	}
	tr.SetKeepRecent(0) // below 1 restores the default
	if st := tr.Snapshot(); st.KeepRecent != defaultKeepRecent {
		t.Fatalf("keep_recent after reset = %d, want %d", st.KeepRecent, defaultKeepRecent)
	}
}
