package lake

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"enld/internal/detect"
)

// Policy configures the service's resilience behaviour. The zero value
// disables everything — no per-task deadline, no retries, no circuit
// breaker, no fallback — preserving the plain fail-fast path.
type Policy struct {
	// TaskTimeout bounds each detector attempt. A stuck detector becomes a
	// report error instead of a wedged worker; the abandoned attempt's
	// goroutine is left to finish in the background. 0 disables.
	TaskTimeout time.Duration
	// MaxRetries is how many extra primary attempts a transient failure
	// (fault.Error, timeouts) earns before the task degrades or
	// dead-letters. 0 disables retries.
	MaxRetries int
	// RetryBase is the first backoff delay; each retry doubles it, capped
	// at RetryMax, plus uniform jitter in [0, RetryBase) drawn from
	// RetrySeed. Defaults: 20ms base, 1s cap.
	RetryBase time.Duration
	RetryMax  time.Duration
	RetrySeed uint64
	// BreakerThreshold trips the circuit breaker after that many
	// consecutive primary-task failures; BreakerCooldown is how long the
	// breaker stays open before probing half-open recovery. Threshold 0
	// disables the breaker. Default cooldown: 1s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Fallback, when set, handles a task whose primary path failed (or was
	// skipped by an open breaker). Fallback results are flagged Degraded in
	// the report — never silently passed off as primary output.
	Fallback detect.Detector
	// Admission bounds the admission queue and enables deadline-aware load
	// shedding (see AdmissionConfig). The zero value keeps the legacy
	// unbounded, backpressuring behaviour.
	Admission AdmissionConfig
}

// normalized fills policy defaults.
func (p Policy) normalized() (Policy, error) {
	if p.TaskTimeout < 0 || p.MaxRetries < 0 || p.BreakerThreshold < 0 {
		return p, fmt.Errorf("lake: negative policy field: %+v", p)
	}
	var err error
	if p.Admission, err = p.Admission.normalized(); err != nil {
		return p, err
	}
	if p.RetryBase <= 0 {
		p.RetryBase = 20 * time.Millisecond
	}
	if p.RetryMax <= 0 {
		p.RetryMax = time.Second
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	return p, nil
}

// backoff returns the delay before retry attempt (0-based): base·2^attempt
// capped at max. Jitter is added by the caller.
func (p Policy) backoff(attempt int) time.Duration {
	d := p.RetryBase
	for i := 0; i < attempt && d < p.RetryMax; i++ {
		d *= 2
	}
	if d > p.RetryMax {
		d = p.RetryMax
	}
	return d
}

// transientErr reports whether err is worth retrying: either it marks
// itself transient (fault-injected or network-style hiccups) or it is a
// per-task deadline expiry (a stuck attempt may succeed on retry).
func transientErr(err error) bool {
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) && tr.Transient() {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// BreakerState is one of the circuit breaker's three states.
type BreakerState int

// Breaker states: Closed (primary serving normally), Open (primary
// bypassed, cooling down), HalfOpen (one probe allowed through).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Breaker is a circuit breaker over the primary detector. After threshold
// consecutive failures it opens: tasks skip the primary path (degrading to
// the fallback) until cooldown elapses, then a single half-open probe tests
// recovery — success closes the breaker, failure reopens it. It is safe for
// concurrent use by the service's workers.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probing     bool
	trips       int

	// now is the clock, swappable in tests.
	now func() time.Time
	// observers watch every state change, in registration order. Called
	// with the breaker lock held; keep them fast and non-reentrant.
	observers []func(from, to BreakerState)
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures and cooling down for cooldown before probing.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// OnTransition registers a state-change observer (e.g. a StatusTracker or
// ObserveBreaker's metric recorder). Observers accumulate: registering a
// second one does not displace the first.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.observers = append(b.observers, fn)
}

// State returns the current state, accounting for cooldown expiry.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow reports whether a primary attempt may proceed. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Success records a successful primary task, closing a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state == BreakerHalfOpen {
		b.probing = false
		b.transition(BreakerClosed)
	}
}

// Failure records a failed primary task, opening the breaker when the
// consecutive-failure threshold is reached or a half-open probe fails.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch {
	case b.state == BreakerHalfOpen:
		b.probing = false
		b.open()
	case b.state == BreakerClosed && b.consecutive >= b.threshold:
		b.open()
	}
}

// open moves to BreakerOpen, stamping the cooldown clock. Callers hold mu.
func (b *Breaker) open() {
	b.openedAt = b.now()
	b.trips++
	b.transition(BreakerOpen)
}

// transition changes state and notifies the observers. Callers hold mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if from != to {
		for _, fn := range b.observers {
			fn(from, to)
		}
	}
}
