package lake

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/fault"
)

// transientFail errors with a Transient marker for the first n calls, then
// succeeds by marking everything clean.
type transientFail struct {
	mu    sync.Mutex
	n     int
	calls int
}

type transientErrVal struct{}

func (transientErrVal) Error() string   { return "transient boom" }
func (transientErrVal) Transient() bool { return true }

func (f *transientFail) Name() string { return "transient-fail" }

func (f *transientFail) Detect(d dataset.Set) (*detect.Result, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.n
	f.mu.Unlock()
	if fail {
		return nil, transientErrVal{}
	}
	res := detect.NewResult()
	for _, smp := range d {
		res.MarkClean(smp.ID)
	}
	return res, nil
}

// switchable fails (non-transiently) while broken is set.
type switchable struct {
	mu     sync.Mutex
	broken bool
}

func (s *switchable) Name() string { return "switchable" }

func (s *switchable) set(broken bool) {
	s.mu.Lock()
	s.broken = broken
	s.mu.Unlock()
}

func (s *switchable) Detect(d dataset.Set) (*detect.Result, error) {
	s.mu.Lock()
	broken := s.broken
	s.mu.Unlock()
	if broken {
		return nil, errors.New("hard failure")
	}
	res := detect.NewResult()
	for _, smp := range d {
		res.MarkClean(smp.ID)
	}
	return res, nil
}

// stuck never returns until released.
type stuck struct{ release chan struct{} }

func (s stuck) Name() string { return "stuck" }
func (s stuck) Detect(dataset.Set) (*detect.Result, error) {
	<-s.release
	return detect.NewResult(), nil
}

func fastPolicy() Policy {
	return Policy{MaxRetries: 3, RetryBase: time.Millisecond, RetryMax: 4 * time.Millisecond}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	det := &transientFail{n: 2}
	svc, err := NewServiceWithPolicy(det, 1, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(1, 4), 0))
	if len(reports) != 1 {
		t.Fatalf("%d reports", len(reports))
	}
	rep := reports[0]
	if rep.Err != nil {
		t.Fatalf("retried task failed: %v", rep.Err)
	}
	if rep.Retries != 2 {
		t.Fatalf("retries = %d", rep.Retries)
	}
	if rep.Degraded || rep.DeadLettered {
		t.Fatalf("flags = %+v", rep)
	}
}

func TestRetryBudgetExhaustedDeadLetters(t *testing.T) {
	det := &transientFail{n: 100}
	svc, _ := NewServiceWithPolicy(det, 1, fastPolicy())
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(1, 4), 0))
	rep := reports[0]
	if rep.Err == nil || !rep.DeadLettered {
		t.Fatalf("exhausted task not dead-lettered: %+v", rep)
	}
	if rep.Retries != 3 {
		t.Fatalf("retries = %d", rep.Retries)
	}
}

func TestNonTransientErrorNotRetried(t *testing.T) {
	det := &switchable{}
	det.set(true)
	svc, _ := NewServiceWithPolicy(det, 1, fastPolicy())
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(1, 4), 0))
	rep := reports[0]
	if rep.Err == nil || rep.Retries != 0 {
		t.Fatalf("hard failure retried: %+v", rep)
	}
}

func TestTaskTimeoutUnwedgesWorker(t *testing.T) {
	det := stuck{release: make(chan struct{})}
	defer close(det.release)
	svc, _ := NewServiceWithPolicy(det, 1, Policy{TaskTimeout: 10 * time.Millisecond})
	ctx := context.Background()
	start := time.Now()
	reports := svc.Run(ctx, Feed(ctx, shards(2, 2), 0))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stuck detector wedged the worker for %s", elapsed)
	}
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, rep := range reports {
		if !errors.Is(rep.Err, context.DeadlineExceeded) {
			t.Fatalf("timeout not reported: %v", rep.Err)
		}
	}
}

func TestFallbackDegradesFailedTask(t *testing.T) {
	primary := &switchable{}
	primary.set(true)
	svc, _ := NewServiceWithPolicy(primary, 1, Policy{Fallback: flagOdd{}})
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(3, 4), 0))
	if len(reports) != 3 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("fallback did not rescue task %d: %v", rep.TaskID, rep.Err)
		}
		if !rep.Degraded {
			t.Fatalf("fallback result not flagged degraded: %+v", rep)
		}
		// flagOdd is exact on this workload: the degraded path still
		// produces a scored result.
		if rep.Detection.F1 != 1 {
			t.Fatalf("degraded F1 = %v", rep.Detection.F1)
		}
	}
}

func TestFallbackFailureDeadLettersWithBothErrors(t *testing.T) {
	primary := &switchable{}
	primary.set(true)
	svc, _ := NewServiceWithPolicy(primary, 1, Policy{Fallback: failing{}})
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(1, 2), 0))
	rep := reports[0]
	if !rep.DeadLettered || rep.Err == nil {
		t.Fatalf("not dead-lettered: %+v", rep)
	}
	msg := rep.Err.Error()
	if !strings.Contains(msg, "hard failure") || !strings.Contains(msg, "fallback") {
		t.Fatalf("dead-letter error lost causes: %v", msg)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(2, time.Minute)
	clock := time.Unix(0, 0)
	b.now = func() time.Time { return clock }
	var transitions []string
	b.OnTransition(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after threshold", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call before cooldown")
	}
	// Cooldown elapses: exactly one probe passes.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: reopen.
	b.Failure()
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%v trips=%d", b.State(), b.Trips())
	}
	// Next cooldown, probe succeeds: closed again.
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v", b.State())
	}
	want := []string{"closed>open", "open>half-open", "half-open>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestServiceBreakerTripsAndRecovers(t *testing.T) {
	primary := &switchable{}
	primary.set(true)
	policy := Policy{
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
		Fallback:         flagOdd{},
	}
	// One worker keeps the failure sequence strictly consecutive.
	svc, err := NewServiceWithPolicy(primary, 1, policy)
	if err != nil {
		t.Fatal(err)
	}
	healAfter := 6
	var mu sync.Mutex
	degradedBeforeHeal := 0
	n := 0
	svc.OnReport = func(rep Report) {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n < healAfter && rep.Degraded {
			degradedBeforeHeal++
		}
		if n == healAfter {
			// Primary heals while the breaker is open; the next half-open
			// probe should close it.
			primary.set(false)
		}
	}
	ctx := context.Background()
	// Pace arrivals past the cooldown so the breaker gets a probe window.
	reports := svc.Run(ctx, Feed(ctx, shards(14, 4), 10*time.Millisecond))
	if len(reports) != 14 {
		t.Fatalf("%d reports", len(reports))
	}
	if svc.Breaker().Trips() == 0 {
		t.Fatal("breaker never tripped")
	}
	if degradedBeforeHeal == 0 {
		t.Fatal("open breaker produced no degraded tasks")
	}
	if svc.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker did not recover: %v", svc.Breaker().State())
	}
	// After recovery the tail of the stream is served by the primary again.
	last := reports[len(reports)-1]
	if last.Err != nil || last.Degraded {
		t.Fatalf("post-recovery task not primary-served: %+v", last)
	}
	// No task was lost: succeeded, degraded or dead-lettered only.
	for _, rep := range reports {
		if rep.Err != nil && !rep.DeadLettered {
			t.Fatalf("task %d failed without dead-letter flag: %v", rep.TaskID, rep.Err)
		}
	}
}

func TestSkipCompletedDropsRecoveredTasks(t *testing.T) {
	svc, _ := NewService(flagOdd{}, 2)
	svc.SkipCompleted(map[int]bool{0: true, 2: true, 4: true})
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(6, 2), 0))
	if len(reports) != 3 {
		t.Fatalf("%d reports after skipping 3 of 6", len(reports))
	}
	for _, rep := range reports {
		if rep.TaskID%2 == 0 {
			t.Fatalf("skipped task %d was processed", rep.TaskID)
		}
	}
}

func TestServiceZeroRequests(t *testing.T) {
	svc, _ := NewService(flagOdd{}, 2)
	requests := make(chan Request)
	close(requests)
	reports := svc.Run(context.Background(), requests)
	if len(reports) != 0 {
		t.Fatalf("%d reports from empty stream", len(reports))
	}
}

func TestServiceCancelMidFeed(t *testing.T) {
	svc, _ := NewService(flagOdd{delay: 2 * time.Millisecond}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	requests := make(chan Request)
	go func() {
		for i := 0; ; i++ {
			select {
			case requests <- Request{TaskID: i, Data: shards(1, 2)[0]}:
			case <-ctx.Done():
				close(requests)
				return
			}
			if i == 4 {
				cancel()
			}
		}
	}()
	reports := svc.Run(ctx, requests)
	// In-flight tasks are finished, queued ones reported as Abandoned (not
	// silently dropped), and the service returns instead of hanging.
	processed := 0
	for _, rep := range reports {
		if rep.Abandoned {
			if rep.Err == nil {
				t.Fatalf("abandoned task %d carries no error", rep.TaskID)
			}
			continue
		}
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
		processed++
	}
	if processed == 0 {
		t.Fatal("no tasks processed before cancel")
	}
	if got := svc.OverloadStatus().TasksAbandoned; got != len(reports)-processed {
		t.Fatalf("status reports %d abandoned, reports carry %d", got, len(reports)-processed)
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := NewServiceWithPolicy(flagOdd{}, 1, Policy{MaxRetries: -1}); err == nil {
		t.Error("negative retries accepted")
	}
	if _, err := NewServiceWithPolicy(flagOdd{}, 1, Policy{TaskTimeout: -time.Second}); err == nil {
		t.Error("negative timeout accepted")
	}
}

// TestChaosZeroLostTasks is the acceptance scenario: 20% transient failures
// plus occasional panics and slowdowns, served with retries, deadline and a
// fallback. Every task ID must appear in the final reports as succeeded,
// degraded or dead-lettered — nothing lost, nothing silently relabelled as
// primary output.
func TestChaosZeroLostTasks(t *testing.T) {
	inj, err := fault.New(flagOdd{}, fault.Config{
		Seed:      11,
		FailRate:  0.2,
		PanicRate: 0.05,
		SlowRate:  0.1,
		Latency:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	policy := Policy{
		TaskTimeout:      time.Second,
		MaxRetries:       2,
		RetryBase:        time.Millisecond,
		RetryMax:         4 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  20 * time.Millisecond,
		Fallback:         flagOdd{},
	}
	svc, err := NewServiceWithPolicy(inj, 4, policy)
	if err != nil {
		t.Fatal(err)
	}
	const tasks = 40
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(tasks, 4), 0))
	if len(reports) != tasks {
		t.Fatalf("%d reports for %d tasks", len(reports), tasks)
	}
	seen := map[int]bool{}
	succeeded, degraded, dead := 0, 0, 0
	for _, rep := range reports {
		if seen[rep.TaskID] {
			t.Fatalf("task %d reported twice", rep.TaskID)
		}
		seen[rep.TaskID] = true
		switch {
		case rep.DeadLettered:
			dead++
		case rep.Err != nil:
			t.Fatalf("task %d failed without dead-letter flag: %v", rep.TaskID, rep.Err)
		case rep.Degraded:
			degraded++
		default:
			succeeded++
		}
	}
	for id := 0; id < tasks; id++ {
		if !seen[id] {
			t.Fatalf("task %d lost", id)
		}
	}
	if succeeded+degraded+dead != tasks {
		t.Fatalf("accounting broken: %d+%d+%d != %d", succeeded, degraded, dead, tasks)
	}
	if succeeded == 0 {
		t.Fatal("chaos run had zero primary successes")
	}
	t.Logf("chaos: %d succeeded, %d degraded, %d dead-lettered", succeeded, degraded, dead)
}
