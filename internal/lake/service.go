package lake

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/obs"
	"enld/internal/parallel"
)

// Request is one incoming noisy-label detection task.
type Request struct {
	// TaskID identifies the request in reports.
	TaskID int
	// Data is the incremental dataset to screen.
	Data dataset.Set
}

// Report is the outcome of one processed request.
type Report struct {
	TaskID int
	Size   int
	// Result is the detector's partition of the dataset.
	Result *detect.Result
	// Detection scores the result against ground truth when the request's
	// samples carry true labels (synthetic workloads always do).
	Detection metrics.Detection
	// Queued is how long the request waited before a worker picked it up;
	// Process is the detector's own processing time.
	Queued  time.Duration
	Process time.Duration
	Err     error
	// Retries is how many extra primary attempts the task consumed on
	// transient failures before succeeding, degrading or dead-lettering.
	Retries int
	// Degraded marks a result produced by the fallback detector after the
	// primary path failed or was bypassed by an open circuit breaker. A
	// degraded result is real output, but never ENLD-quality output.
	Degraded bool
	// DeadLettered marks a task that exhausted every path — retries and
	// fallback included — and carries only an error. No task is silently
	// dropped: it either succeeds, degrades, dead-letters, is shed at
	// admission, or is abandoned at shutdown.
	DeadLettered bool
	// Shed marks a task rejected at admission by the overload shedder: the
	// queue was full, or the task's predicted queue wait already exceeded
	// its deadline. A shed task consumed no detector work and is not a
	// failure of the detection path — it is the service declining work it
	// could not serve in time (see AdmissionConfig).
	Shed bool
	// Abandoned marks a task that was admitted to the queue but never
	// processed because the service shut down first. Counting these keeps
	// zero-lost-task audits exact: every admitted task appears in the
	// reports as ok, degraded, dead-lettered, shed or abandoned.
	Abandoned bool
	// Tier names the brownout ladder rung the task was served at, stamped
	// at admission ("" when brownout is not configured). A task keeps its
	// admission tier even if the controller moves while it is queued.
	Tier string
	// Shard names the cluster shard that finally served (or accounted) the
	// task; empty outside cluster mode (see internal/lake/cluster).
	Shard string
	// Rerouted marks a task served by a shard other than its rendezvous
	// owner because the owner was down or failed the submission.
	Rerouted bool
}

// ErrBreakerOpen reports a task bypassing the primary detector because the
// circuit breaker is open.
var ErrBreakerOpen = errors.New("lake: circuit breaker open")

// Service processes detection requests with a fixed detector and a bounded
// worker pool, in the arrival order the platform scenario prescribes.
// Workers run concurrently, so the detector must be safe for concurrent
// Detect calls (every detector in this repository is: each call clones the
// shared general model).
type Service struct {
	detector detect.Detector
	workers  int
	policy   Policy
	breaker  *Breaker

	// retryMu guards retryRNG, the shared jitter source.
	retryMu  sync.Mutex
	retryRNG *mat.RNG

	// skip holds task IDs already completed in a previous incarnation
	// (recovered from the journal); Run drops them without processing.
	skip map[int]bool

	// obs holds the metric handles attached by SetObs; nil means unobserved.
	obs *lakeObs

	// inventory, when set, durably records every arriving dataset before a
	// worker may process it.
	inventory Inventory

	// Overload control: ewma estimates task service time for the admission
	// shedder, queueLen tracks admitted-but-not-started tasks, latency feeds
	// the brownout controller's windowed p95, and brownout (nil when not
	// configured) holds the degradation ladder and its state machine.
	ewma      *serviceEWMA
	queueLen  atomic.Int64
	latency   *obs.Histogram
	brownout  *brownout
	shed      atomic.Int64
	abandoned atomic.Int64

	// OnReport, when set, is invoked from worker goroutines as each task
	// completes — before Run returns — so live dashboards (StatusTracker)
	// can observe progress. The callback must be safe for concurrent use.
	OnReport func(Report)
}

// NewService returns a service running detector on workers goroutines with
// the zero (fail-fast) policy.
func NewService(detector detect.Detector, workers int) (*Service, error) {
	return NewServiceWithPolicy(detector, workers, Policy{})
}

// NewServiceWithPolicy returns a service with resilience behaviour per
// policy.
func NewServiceWithPolicy(detector detect.Detector, workers int, policy Policy) (*Service, error) {
	if detector == nil {
		return nil, errors.New("lake: nil detector")
	}
	if workers < 1 {
		return nil, fmt.Errorf("lake: worker count %d", workers)
	}
	policy, err := policy.normalized()
	if err != nil {
		return nil, err
	}
	s := &Service{
		detector: detector,
		workers:  workers,
		policy:   policy,
		retryRNG: mat.NewRNG(policy.RetrySeed ^ 0xd1b54a32d192ed03),
		ewma:     newServiceEWMA(policy.Admission.EWMAAlpha, policy.Admission.InitialServiceTime),
		latency:  obs.NewHistogram(taskBuckets),
	}
	if policy.BreakerThreshold > 0 {
		s.breaker = NewBreaker(policy.BreakerThreshold, policy.BreakerCooldown)
	}
	return s, nil
}

// SetBrownout installs a degradation ladder and enables the brownout
// controller: during Run a control loop watches queue depth and the p95 of
// task service time over each evaluation window and steps the active tier
// down the ladder under pressure (and back up, tier-by-tier, when it
// clears). Tasks are stamped with the active tier at admission and keep it:
// a tier change never alters the result of a task already admitted. Call
// before Run. onChange, when non-nil, observes transitions (ladder indexes).
func (s *Service) SetBrownout(ladder []TierDetector, cfg BrownoutConfig, onChange func(from, to int)) error {
	b, err := newBrownout(ladder, cfg)
	if err != nil {
		return err
	}
	b.onTierChange = onChange
	s.brownout = b
	return nil
}

// OverloadStatus is the live overload-control block of /statusz: admission
// queue occupancy, shed/abandoned accounting and the brownout tier.
type OverloadStatus struct {
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// EWMATaskSeconds is the shedder's current service-time estimate.
	EWMATaskSeconds float64 `json:"ewma_task_seconds"`
	TasksShed       int     `json:"tasks_shed"`
	TasksAbandoned  int     `json:"tasks_abandoned"`
	// Brownout state; Tier is -1 when no ladder is configured.
	BrownoutTier     int    `json:"brownout_tier"`
	BrownoutTierName string `json:"brownout_tier_name,omitempty"`
	BrownoutMaxTier  int    `json:"brownout_max_tier"`
	TierChanges      int    `json:"tier_changes"`
}

// OverloadStatus returns the service's live overload-control state. Safe for
// concurrent use while Run is active.
func (s *Service) OverloadStatus() OverloadStatus {
	st := OverloadStatus{
		QueueDepth:      int(s.queueLen.Load()),
		QueueCapacity:   s.policy.Admission.QueueDepth,
		EWMATaskSeconds: s.ewma.value(),
		TasksShed:       int(s.shed.Load()),
		TasksAbandoned:  int(s.abandoned.Load()),
		BrownoutTier:    -1,
	}
	if b := s.brownout; b != nil {
		tier := b.activeTier()
		st.BrownoutTier = tier
		st.BrownoutTierName = b.ladder[tier].Name
		st.BrownoutMaxTier = int(b.maxTier.Load())
		st.TierChanges = int(b.tierChanges.Load())
	}
	return st
}

// Breaker returns the service's circuit breaker, or nil when the policy
// disables it. Callers may observe state and register transition hooks.
func (s *Service) Breaker() *Breaker { return s.breaker }

// SkipCompleted marks task IDs as already completed (e.g. recovered from a
// journal after a crash); Run drops matching requests without reprocessing.
// Call before Run.
func (s *Service) SkipCompleted(ids map[int]bool) {
	if len(ids) == 0 {
		return
	}
	s.skip = make(map[int]bool, len(ids))
	for id, done := range ids {
		if done {
			s.skip[id] = true
		}
	}
}

// SetInventory attaches durable storage: every arriving dataset is appended
// to inv before a worker may process it, so an accepted arrival survives a
// crash even if its detection never ran. A task whose durable append fails
// is dead-lettered with the storage error — processing data the platform
// could not retain would fake durability. Call before Run; nil detaches.
func (s *Service) SetInventory(inv Inventory) {
	s.inventory = inv
}

// stamped is one admitted task: the request, its admission time, and the
// brownout tier it was admitted at (the tier it keeps even if the controller
// moves while it waits).
type stamped struct {
	req     Request
	arrived time.Time
	tier    int
}

// Run consumes requests until the channel closes or ctx is cancelled, and
// returns one report per accepted request, ordered by TaskID. A cancelled
// context stops admission and waits for in-flight tasks; tasks already
// admitted but never started are reported as Abandoned rather than silently
// dropped, so the accounting identity holds: every accepted task appears in
// the reports exactly once (ok, degraded, dead-lettered, shed or abandoned).
//
// The worker pool is the shared parallel.Pool: Run blocks in Pool.Run while
// a feeder goroutine stamps arrivals onto the work channel; closing the
// channel releases the workers. With Policy.Admission configured the work
// channel is the bounded admission queue and the feeder sheds instead of
// blocking (see AdmissionConfig); otherwise it is an unbuffered hand-off
// whose backpressure blocks the submitter, exactly the legacy behaviour.
func (s *Service) Run(ctx context.Context, requests <-chan Request) []Report {
	admission := s.policy.Admission
	work := make(chan stamped, admission.QueueDepth)
	var mu sync.Mutex
	var reports []Report

	// file routes one finished report to the observer hook and the result
	// slice. Callers record metrics first.
	file := func(rep Report) {
		if s.OnReport != nil {
			s.OnReport(rep)
		}
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	}

	go func() {
		defer close(work)
		for {
			select {
			case <-ctx.Done():
				return
			case req, ok := <-requests:
				if !ok {
					return
				}
				if s.skip[req.TaskID] {
					continue
				}
				tier := s.brownout.activeTier()
				// Reject-early shedding runs before the durable append: a
				// task the service refuses to serve should not consume a
				// storage write.
				if admission.QueueDepth > 0 {
					if rep, shed := s.admit(req, tier, admission); shed {
						s.obs.record(rep, 0)
						file(rep)
						continue
					}
				}
				if s.inventory != nil {
					if _, err := s.inventory.AppendDataset(fmt.Sprintf("task-%d", req.TaskID), req.Data); err != nil {
						rep := Report{
							TaskID:       req.TaskID,
							Size:         len(req.Data),
							Tier:         s.tierName(tier),
							DeadLettered: true,
							Err:          fmt.Errorf("lake: task %d: durable append: %w", req.TaskID, err),
						}
						s.obs.record(rep, 0)
						file(rep)
						continue
					}
				}
				st := stamped{req: req, arrived: time.Now(), tier: tier}
				if admission.QueueDepth > 0 {
					// admit reserved the slot: queueLen ≤ QueueDepth bounds
					// channel occupancy, so this send cannot block.
					s.setQueueDepth(s.queueLen.Add(1))
					work <- st
					continue
				}
				select {
				case work <- st:
				case <-ctx.Done():
					// The hand-off never happened: this task was accepted
					// but will never run. Account for it.
					rep := s.abandonReport(st)
					s.obs.record(rep, 0)
					file(rep)
					return
				}
			}
		}
	}()

	stopCtl := s.startBrownout()

	pool := parallel.New(s.workers)
	if s.obs != nil {
		pool.Instrument(s.obs.reg, "lake")
	}
	pool.Run(func(int) {
		for st := range work {
			if admission.QueueDepth > 0 {
				s.setQueueDepth(s.queueLen.Add(-1))
			}
			if ctx.Err() != nil {
				// Shutting down: drain the queue with accounting instead of
				// either processing doomed tasks or dropping them silently.
				rep := s.abandonReport(st)
				s.obs.record(rep, 0)
				file(rep)
				continue
			}
			queued := time.Since(st.arrived)
			s.obs.taskStarted()
			began := time.Now()
			rep := s.process(ctx, st.req, st.tier)
			rep.Queued = queued
			elapsed := time.Since(began)
			s.obs.taskFinished()
			s.ewma.observe(elapsed)
			s.latency.Observe(elapsed.Seconds())
			s.obs.record(rep, elapsed)
			file(rep)
		}
	})
	stopCtl()

	sortReports(reports)
	return reports
}

// admit runs the deadline-aware shedding decision for one arriving task.
// It returns (report, true) when the task is shed. Only the feeder
// goroutine calls it, so the depth read cannot race another admission;
// workers may decrement depth concurrently, which only makes the estimate
// conservative (a stale-high depth sheds a borderline task one tick early).
func (s *Service) admit(req Request, tier int, a AdmissionConfig) (Report, bool) {
	depth := s.queueLen.Load()
	if int(depth) >= a.QueueDepth {
		return s.shedReport(req, tier, fmt.Sprintf("admission queue full (%d tasks)", depth)), true
	}
	if a.MaxQueueWait > 0 {
		predicted := time.Duration(float64(depth) * s.ewma.value() / float64(s.workers) * float64(time.Second))
		if predicted > a.MaxQueueWait {
			return s.shedReport(req, tier, fmt.Sprintf(
				"predicted queue wait %s exceeds %s (depth %d, ewma task %s)",
				predicted.Round(time.Millisecond), a.MaxQueueWait, depth,
				time.Duration(s.ewma.value()*float64(time.Second)).Round(time.Millisecond))), true
		}
	}
	return Report{}, false
}

// shedReport builds the outcome=shed report for a rejected task.
func (s *Service) shedReport(req Request, tier int, reason string) Report {
	s.shed.Add(1)
	return Report{
		TaskID: req.TaskID,
		Size:   len(req.Data),
		Tier:   s.tierName(tier),
		Shed:   true,
		Err:    fmt.Errorf("lake: task %d: shed: %s", req.TaskID, reason),
	}
}

// abandonReport builds the outcome=abandoned report for an admitted task the
// shutdown overtook.
func (s *Service) abandonReport(st stamped) Report {
	s.abandoned.Add(1)
	return Report{
		TaskID:    st.req.TaskID,
		Size:      len(st.req.Data),
		Tier:      s.tierName(st.tier),
		Abandoned: true,
		Err:       fmt.Errorf("lake: task %d: abandoned at shutdown before processing", st.req.TaskID),
	}
}

// tierName resolves a ladder index to its label value ("" without brownout).
func (s *Service) tierName(tier int) string {
	if s.brownout == nil {
		return ""
	}
	return s.brownout.ladder[tier].Name
}

// startBrownout launches the brownout control loop and returns its stop
// function (a no-op closure when brownout is not configured).
func (s *Service) startBrownout() func() {
	b := s.brownout
	if b == nil {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(b.cfg.Interval)
		defer ticker.Stop()
		prev := s.latency.Snapshot()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				snap := s.latency.Snapshot()
				win := snap.Sub(prev)
				prev = snap
				from, to, changed := b.step(int(s.queueLen.Load()), win.Quantile(0.95))
				if changed {
					s.obs.brownoutTransition(b, from, to)
				}
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// process runs one request through the full resilience pipeline: primary
// detector (breaker-gated, deadline-bounded, retried on transient errors),
// then the fallback detector, then the dead-letter report. A panicking
// detector is contained: the panic becomes an attempt error rather than
// killing the worker pool. With brownout configured the primary detector is
// the one serving the task's admission tier.
func (s *Service) process(ctx context.Context, req Request, tier int) Report {
	rep := Report{TaskID: req.TaskID, Size: len(req.Data), Tier: s.tierName(tier)}
	primary := s.detector
	if s.brownout != nil {
		primary = s.brownout.ladder[tier].Detector
	}

	primaryErr := ErrBreakerOpen
	if s.breaker == nil || s.breaker.Allow() {
		var res *detect.Result
		res, rep.Retries, primaryErr = s.attemptWithRetry(ctx, primary, req)
		if primaryErr == nil {
			if s.breaker != nil {
				s.breaker.Success()
			}
			fill(&rep, req, res)
			return rep
		}
		if s.breaker != nil {
			s.breaker.Failure()
		}
	}

	if s.policy.Fallback != nil {
		res, err := s.attempt(s.policy.Fallback, req)
		if err == nil {
			rep.Degraded = true
			fill(&rep, req, res)
			return rep
		}
		primaryErr = errors.Join(primaryErr, fmt.Errorf("fallback: %w", err))
	}

	rep.DeadLettered = true
	rep.Err = fmt.Errorf("lake: task %d: %w", req.TaskID, primaryErr)
	return rep
}

// fill completes a report from a successful detection result.
func fill(rep *Report, req Request, res *detect.Result) {
	rep.Result = res
	rep.Process = res.Process
	rep.Detection = metrics.EvaluateDetection(req.Data, res.Noisy)
}

// attemptWithRetry runs the primary detector, retrying transient failures
// up to the policy's budget with exponential backoff and jitter. It returns
// the retry count actually consumed.
func (s *Service) attemptWithRetry(ctx context.Context, det detect.Detector, req Request) (*detect.Result, int, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var res *detect.Result
		res, err = s.attempt(det, req)
		if err == nil {
			return res, attempt, nil
		}
		if attempt >= s.policy.MaxRetries || !transientErr(err) {
			return nil, attempt, err
		}
		delay := s.policy.backoff(attempt) + s.jitter()
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			// Shutting down: don't burn the backoff budget, report the
			// last failure.
			return nil, attempt, err
		}
	}
}

// jitter draws a uniform delay in [0, RetryBase) to decorrelate concurrent
// workers' retry schedules.
func (s *Service) jitter() time.Duration {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	return time.Duration(s.retryRNG.Float64() * float64(s.policy.RetryBase))
}

// attempt runs one deadline-bounded detector call. With no TaskTimeout the
// call runs inline; otherwise it runs in a goroutine and a timeout converts
// a stuck detector into a report error — the abandoned goroutine finishes
// (and is discarded) in the background instead of wedging the worker.
func (s *Service) attempt(det detect.Detector, req Request) (*detect.Result, error) {
	if s.policy.TaskTimeout <= 0 {
		return runDetect(det, req)
	}
	type outcome struct {
		res *detect.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runDetect(det, req)
		done <- outcome{res: res, err: err}
	}()
	timer := time.NewTimer(s.policy.TaskTimeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("detector %w after %s", context.DeadlineExceeded, s.policy.TaskTimeout)
	}
}

// runDetect invokes the detector with panic containment. Errors are
// returned raw; the dead-letter path prefixes the task ID exactly once.
func runDetect(det detect.Detector, req Request) (res *detect.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("detector panic: %v", r)
		}
	}()
	return det.Detect(req.Data)
}

func sortReports(reports []Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].TaskID < reports[j].TaskID })
}

// Feed converts pre-sharded incremental datasets into a request channel,
// optionally pacing arrivals by interval (0 means as fast as consumed).
// The channel closes after the last shard. Cancel ctx to stop early.
func Feed(ctx context.Context, shards []dataset.Set, interval time.Duration) <-chan Request {
	out := make(chan Request)
	go func() {
		defer close(out)
		for i, shard := range shards {
			if interval > 0 && i > 0 {
				select {
				case <-time.After(interval):
				case <-ctx.Done():
					return
				}
			}
			select {
			case out <- Request{TaskID: i, Data: shard}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
