package lake

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/metrics"
)

// Request is one incoming noisy-label detection task.
type Request struct {
	// TaskID identifies the request in reports.
	TaskID int
	// Data is the incremental dataset to screen.
	Data dataset.Set
}

// Report is the outcome of one processed request.
type Report struct {
	TaskID int
	Size   int
	// Result is the detector's partition of the dataset.
	Result *detect.Result
	// Detection scores the result against ground truth when the request's
	// samples carry true labels (synthetic workloads always do).
	Detection metrics.Detection
	// Queued is how long the request waited before a worker picked it up;
	// Process is the detector's own processing time.
	Queued  time.Duration
	Process time.Duration
	Err     error
}

// Service processes detection requests with a fixed detector and a bounded
// worker pool, in the arrival order the platform scenario prescribes.
// Workers run concurrently, so the detector must be safe for concurrent
// Detect calls (every detector in this repository is: each call clones the
// shared general model).
type Service struct {
	detector detect.Detector
	workers  int

	// OnReport, when set, is invoked from worker goroutines as each task
	// completes — before Run returns — so live dashboards (StatusTracker)
	// can observe progress. The callback must be safe for concurrent use.
	OnReport func(Report)
}

// NewService returns a service running detector on workers goroutines.
func NewService(detector detect.Detector, workers int) (*Service, error) {
	if detector == nil {
		return nil, errors.New("lake: nil detector")
	}
	if workers < 1 {
		return nil, fmt.Errorf("lake: worker count %d", workers)
	}
	return &Service{detector: detector, workers: workers}, nil
}

// Run consumes requests until the channel closes or ctx is cancelled, and
// returns one report per processed request, ordered by TaskID. A cancelled
// context abandons queued requests but waits for in-flight ones.
func (s *Service) Run(ctx context.Context, requests <-chan Request) []Report {
	type stamped struct {
		req     Request
		arrived time.Time
	}
	work := make(chan stamped)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var reports []Report

	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for st := range work {
				queued := time.Since(st.arrived)
				rep := s.process(st.req)
				rep.Queued = queued
				if s.OnReport != nil {
					s.OnReport(rep)
				}
				mu.Lock()
				reports = append(reports, rep)
				mu.Unlock()
			}
		}()
	}

feed:
	for {
		select {
		case <-ctx.Done():
			break feed
		case req, ok := <-requests:
			if !ok {
				break feed
			}
			work <- stamped{req: req, arrived: time.Now()}
		}
	}
	close(work)
	wg.Wait()

	sortReports(reports)
	return reports
}

// process runs the detector on one request. A panicking detector is
// contained: the panic becomes the report's error rather than killing the
// platform's worker pool.
func (s *Service) process(req Request) (rep Report) {
	rep = Report{TaskID: req.TaskID, Size: len(req.Data)}
	defer func() {
		if r := recover(); r != nil {
			rep.Err = fmt.Errorf("lake: task %d: detector panic: %v", req.TaskID, r)
		}
	}()
	res, err := s.detector.Detect(req.Data)
	if err != nil {
		rep.Err = fmt.Errorf("lake: task %d: %w", req.TaskID, err)
		return rep
	}
	rep.Result = res
	rep.Process = res.Process
	rep.Detection = metrics.EvaluateDetection(req.Data, res.Noisy)
	return rep
}

func sortReports(reports []Report) {
	for i := 1; i < len(reports); i++ {
		for j := i; j > 0 && reports[j].TaskID < reports[j-1].TaskID; j-- {
			reports[j], reports[j-1] = reports[j-1], reports[j]
		}
	}
}

// Feed converts pre-sharded incremental datasets into a request channel,
// optionally pacing arrivals by interval (0 means as fast as consumed).
// The channel closes after the last shard. Cancel ctx to stop early.
func Feed(ctx context.Context, shards []dataset.Set, interval time.Duration) <-chan Request {
	out := make(chan Request)
	go func() {
		defer close(out)
		for i, shard := range shards {
			if interval > 0 && i > 0 {
				select {
				case <-time.After(interval):
				case <-ctx.Done():
					return
				}
			}
			select {
			case out <- Request{TaskID: i, Data: shard}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
