package lake

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/parallel"
)

// Request is one incoming noisy-label detection task.
type Request struct {
	// TaskID identifies the request in reports.
	TaskID int
	// Data is the incremental dataset to screen.
	Data dataset.Set
}

// Report is the outcome of one processed request.
type Report struct {
	TaskID int
	Size   int
	// Result is the detector's partition of the dataset.
	Result *detect.Result
	// Detection scores the result against ground truth when the request's
	// samples carry true labels (synthetic workloads always do).
	Detection metrics.Detection
	// Queued is how long the request waited before a worker picked it up;
	// Process is the detector's own processing time.
	Queued  time.Duration
	Process time.Duration
	Err     error
	// Retries is how many extra primary attempts the task consumed on
	// transient failures before succeeding, degrading or dead-lettering.
	Retries int
	// Degraded marks a result produced by the fallback detector after the
	// primary path failed or was bypassed by an open circuit breaker. A
	// degraded result is real output, but never ENLD-quality output.
	Degraded bool
	// DeadLettered marks a task that exhausted every path — retries and
	// fallback included — and carries only an error. No task is silently
	// dropped: it either succeeds, degrades, or dead-letters.
	DeadLettered bool
}

// ErrBreakerOpen reports a task bypassing the primary detector because the
// circuit breaker is open.
var ErrBreakerOpen = errors.New("lake: circuit breaker open")

// Service processes detection requests with a fixed detector and a bounded
// worker pool, in the arrival order the platform scenario prescribes.
// Workers run concurrently, so the detector must be safe for concurrent
// Detect calls (every detector in this repository is: each call clones the
// shared general model).
type Service struct {
	detector detect.Detector
	workers  int
	policy   Policy
	breaker  *Breaker

	// retryMu guards retryRNG, the shared jitter source.
	retryMu  sync.Mutex
	retryRNG *mat.RNG

	// skip holds task IDs already completed in a previous incarnation
	// (recovered from the journal); Run drops them without processing.
	skip map[int]bool

	// obs holds the metric handles attached by SetObs; nil means unobserved.
	obs *lakeObs

	// inventory, when set, durably records every arriving dataset before a
	// worker may process it.
	inventory Inventory

	// OnReport, when set, is invoked from worker goroutines as each task
	// completes — before Run returns — so live dashboards (StatusTracker)
	// can observe progress. The callback must be safe for concurrent use.
	OnReport func(Report)
}

// NewService returns a service running detector on workers goroutines with
// the zero (fail-fast) policy.
func NewService(detector detect.Detector, workers int) (*Service, error) {
	return NewServiceWithPolicy(detector, workers, Policy{})
}

// NewServiceWithPolicy returns a service with resilience behaviour per
// policy.
func NewServiceWithPolicy(detector detect.Detector, workers int, policy Policy) (*Service, error) {
	if detector == nil {
		return nil, errors.New("lake: nil detector")
	}
	if workers < 1 {
		return nil, fmt.Errorf("lake: worker count %d", workers)
	}
	policy, err := policy.normalized()
	if err != nil {
		return nil, err
	}
	s := &Service{
		detector: detector,
		workers:  workers,
		policy:   policy,
		retryRNG: mat.NewRNG(policy.RetrySeed ^ 0xd1b54a32d192ed03),
	}
	if policy.BreakerThreshold > 0 {
		s.breaker = NewBreaker(policy.BreakerThreshold, policy.BreakerCooldown)
	}
	return s, nil
}

// Breaker returns the service's circuit breaker, or nil when the policy
// disables it. Callers may observe state and register transition hooks.
func (s *Service) Breaker() *Breaker { return s.breaker }

// SkipCompleted marks task IDs as already completed (e.g. recovered from a
// journal after a crash); Run drops matching requests without reprocessing.
// Call before Run.
func (s *Service) SkipCompleted(ids map[int]bool) {
	if len(ids) == 0 {
		return
	}
	s.skip = make(map[int]bool, len(ids))
	for id, done := range ids {
		if done {
			s.skip[id] = true
		}
	}
}

// SetInventory attaches durable storage: every arriving dataset is appended
// to inv before a worker may process it, so an accepted arrival survives a
// crash even if its detection never ran. A task whose durable append fails
// is dead-lettered with the storage error — processing data the platform
// could not retain would fake durability. Call before Run; nil detaches.
func (s *Service) SetInventory(inv Inventory) {
	s.inventory = inv
}

// Run consumes requests until the channel closes or ctx is cancelled, and
// returns one report per processed request, ordered by TaskID. A cancelled
// context abandons queued requests but waits for in-flight ones.
//
// The worker pool is the shared parallel.Pool: Run blocks in Pool.Run while
// a feeder goroutine stamps arrivals onto the work channel; closing the
// channel releases the workers.
func (s *Service) Run(ctx context.Context, requests <-chan Request) []Report {
	type stamped struct {
		req     Request
		arrived time.Time
	}
	work := make(chan stamped)
	var mu sync.Mutex
	var reports []Report

	go func() {
		defer close(work)
		for {
			select {
			case <-ctx.Done():
				return
			case req, ok := <-requests:
				if !ok {
					return
				}
				if s.skip[req.TaskID] {
					continue
				}
				if s.inventory != nil {
					if _, err := s.inventory.AppendDataset(fmt.Sprintf("task-%d", req.TaskID), req.Data); err != nil {
						rep := Report{
							TaskID:       req.TaskID,
							Size:         len(req.Data),
							DeadLettered: true,
							Err:          fmt.Errorf("lake: task %d: durable append: %w", req.TaskID, err),
						}
						s.obs.record(rep, 0)
						if s.OnReport != nil {
							s.OnReport(rep)
						}
						mu.Lock()
						reports = append(reports, rep)
						mu.Unlock()
						continue
					}
				}
				select {
				case work <- stamped{req: req, arrived: time.Now()}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	pool := parallel.New(s.workers)
	if s.obs != nil {
		pool.Instrument(s.obs.reg, "lake")
	}
	pool.Run(func(int) {
		for st := range work {
			queued := time.Since(st.arrived)
			s.obs.taskStarted()
			began := time.Now()
			rep := s.process(ctx, st.req)
			rep.Queued = queued
			s.obs.taskFinished()
			s.obs.record(rep, time.Since(began))
			if s.OnReport != nil {
				s.OnReport(rep)
			}
			mu.Lock()
			reports = append(reports, rep)
			mu.Unlock()
		}
	})

	sortReports(reports)
	return reports
}

// process runs one request through the full resilience pipeline: primary
// detector (breaker-gated, deadline-bounded, retried on transient errors),
// then the fallback detector, then the dead-letter report. A panicking
// detector is contained: the panic becomes an attempt error rather than
// killing the worker pool.
func (s *Service) process(ctx context.Context, req Request) Report {
	rep := Report{TaskID: req.TaskID, Size: len(req.Data)}

	primaryErr := ErrBreakerOpen
	if s.breaker == nil || s.breaker.Allow() {
		var res *detect.Result
		res, rep.Retries, primaryErr = s.attemptWithRetry(ctx, req)
		if primaryErr == nil {
			if s.breaker != nil {
				s.breaker.Success()
			}
			fill(&rep, req, res)
			return rep
		}
		if s.breaker != nil {
			s.breaker.Failure()
		}
	}

	if s.policy.Fallback != nil {
		res, err := s.attempt(s.policy.Fallback, req)
		if err == nil {
			rep.Degraded = true
			fill(&rep, req, res)
			return rep
		}
		primaryErr = errors.Join(primaryErr, fmt.Errorf("fallback: %w", err))
	}

	rep.DeadLettered = true
	rep.Err = fmt.Errorf("lake: task %d: %w", req.TaskID, primaryErr)
	return rep
}

// fill completes a report from a successful detection result.
func fill(rep *Report, req Request, res *detect.Result) {
	rep.Result = res
	rep.Process = res.Process
	rep.Detection = metrics.EvaluateDetection(req.Data, res.Noisy)
}

// attemptWithRetry runs the primary detector, retrying transient failures
// up to the policy's budget with exponential backoff and jitter. It returns
// the retry count actually consumed.
func (s *Service) attemptWithRetry(ctx context.Context, req Request) (*detect.Result, int, error) {
	var err error
	for attempt := 0; ; attempt++ {
		var res *detect.Result
		res, err = s.attempt(s.detector, req)
		if err == nil {
			return res, attempt, nil
		}
		if attempt >= s.policy.MaxRetries || !transientErr(err) {
			return nil, attempt, err
		}
		delay := s.policy.backoff(attempt) + s.jitter()
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			// Shutting down: don't burn the backoff budget, report the
			// last failure.
			return nil, attempt, err
		}
	}
}

// jitter draws a uniform delay in [0, RetryBase) to decorrelate concurrent
// workers' retry schedules.
func (s *Service) jitter() time.Duration {
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	return time.Duration(s.retryRNG.Float64() * float64(s.policy.RetryBase))
}

// attempt runs one deadline-bounded detector call. With no TaskTimeout the
// call runs inline; otherwise it runs in a goroutine and a timeout converts
// a stuck detector into a report error — the abandoned goroutine finishes
// (and is discarded) in the background instead of wedging the worker.
func (s *Service) attempt(det detect.Detector, req Request) (*detect.Result, error) {
	if s.policy.TaskTimeout <= 0 {
		return runDetect(det, req)
	}
	type outcome struct {
		res *detect.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := runDetect(det, req)
		done <- outcome{res: res, err: err}
	}()
	timer := time.NewTimer(s.policy.TaskTimeout)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("detector %w after %s", context.DeadlineExceeded, s.policy.TaskTimeout)
	}
}

// runDetect invokes the detector with panic containment. Errors are
// returned raw; the dead-letter path prefixes the task ID exactly once.
func runDetect(det detect.Detector, req Request) (res *detect.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("detector panic: %v", r)
		}
	}()
	return det.Detect(req.Data)
}

func sortReports(reports []Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].TaskID < reports[j].TaskID })
}

// Feed converts pre-sharded incremental datasets into a request channel,
// optionally pacing arrivals by interval (0 means as fast as consumed).
// The channel closes after the last shard. Cancel ctx to stop early.
func Feed(ctx context.Context, shards []dataset.Set, interval time.Duration) <-chan Request {
	out := make(chan Request)
	go func() {
		defer close(out)
		for i, shard := range shards {
			if interval > 0 && i > 0 {
				select {
				case <-time.After(interval):
				case <-ctx.Done():
					return
				}
			}
			select {
			case out <- Request{TaskID: i, Data: shard}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
