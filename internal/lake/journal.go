package lake

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// EntryKind classifies journal entries.
type EntryKind string

// Journal entry kinds.
const (
	// EntryDetection records the outcome of one detection task.
	EntryDetection EntryKind = "detection"
	// EntryRelabel records an accepted label correction.
	EntryRelabel EntryKind = "relabel"
	// EntryRemoval records samples dropped from the inventory.
	EntryRemoval EntryKind = "removal"
	// EntryModelUpdate records an Algorithm-4 general-model update.
	EntryModelUpdate EntryKind = "model-update"
)

// Entry is one durable record of a platform decision. Data-quality
// judgements are destructive downstream (samples get dropped, labels
// rewritten, models replaced), so the platform journals every decision for
// audit and replay.
type Entry struct {
	Seq  uint64
	Time time.Time
	Kind EntryKind

	// TaskID identifies the detection task for EntryDetection entries.
	TaskID int
	// NoisyIDs / CleanIDs carry the partition of a detection entry, the
	// removed IDs of a removal entry, or the affected ID of a relabel.
	NoisyIDs []int
	CleanIDs []int
	// Label is the new label of a relabel entry.
	Label int
	// Note carries free-form context (model name, operator, reason).
	Note string
}

// Journal is an append-only gob log of platform decisions. It is safe for
// concurrent use. Entries receive monotonically increasing sequence numbers
// on append.
type Journal struct {
	mu  sync.Mutex
	enc *gob.Encoder
	w   io.Writer
	seq uint64
}

// NewJournal returns a journal appending to w. If w also implements
// io.Reader the caller is responsible for positioning; Journal never reads.
func NewJournal(w io.Writer) (*Journal, error) {
	if w == nil {
		return nil, errors.New("lake: nil journal writer")
	}
	return &Journal{enc: gob.NewEncoder(w), w: w}, nil
}

// Append writes an entry, assigning its sequence number and timestamp, and
// returns the assigned sequence.
func (j *Journal) Append(e Entry) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if err := j.enc.Encode(e); err != nil {
		j.seq--
		return 0, fmt.Errorf("lake: journal append: %w", err)
	}
	return e.Seq, nil
}

// appendPreserving re-encodes an already-sequenced entry during recovery
// compaction, keeping its original Seq and Time, and advances the journal's
// counter so subsequent Appends continue the sequence.
func (j *Journal) appendPreserving(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(e); err != nil {
		return fmt.Errorf("lake: journal rewrite seq %d: %w", e.Seq, err)
	}
	j.seq = e.Seq
	return nil
}

// Close closes the underlying writer when it is an io.Closer (journals
// opened by RecoverJournalFile own their file); otherwise it is a no-op.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// JournalRecovery reports what RecoverJournalFile found and, when the tail
// was torn, what it dropped — so operators see the damage instead of a
// silent truncation.
type JournalRecovery struct {
	// Entries is the count of intact entries recovered.
	Entries int `json:"entries"`
	// Torn reports that a damaged tail was dropped.
	Torn bool `json:"torn"`
	// DroppedBytes is the size of the dropped tail; Offset the byte
	// position the damage started at. (The compacting rewrite re-encodes
	// the same entries through the same encoder, so the intact prefix is
	// byte-identical and the offset is exact.)
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	Offset       int64 `json:"offset,omitempty"`
	// File is the journal path, for log and /statusz context.
	File string `json:"file,omitempty"`
}

// RecoverJournalFile opens the journal at path for crash-safe resumption.
// It reads the intact entry prefix (tolerating a torn trailing record from
// a crash mid-append), rewrites that prefix to a temporary file, atomically
// renames it over path, and returns a Journal that keeps appending to the
// compacted file with sequence numbers continuing where the prefix ended.
// The returned JournalRecovery accounts for any dropped tail.
//
// The rewrite is not optional bookkeeping: a gob stream cannot be extended
// by a fresh encoder (the decoder rejects the duplicate type definitions),
// so reopening a journal for O_APPEND would corrupt it for every future
// reader. Compaction both drops torn bytes and restarts a single coherent
// encoder stream. A missing file starts an empty journal. Callers should
// Close the returned journal when done.
func RecoverJournalFile(path string) (*Journal, []Entry, JournalRecovery, error) {
	var entries []Entry
	rec := JournalRecovery{File: path}
	var origSize int64
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		origSize = int64(len(data))
		entries, rec.Torn, err = ReadJournalLenient(bytes.NewReader(data))
		if err != nil {
			return nil, nil, rec, fmt.Errorf("lake: recover journal %s: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh journal.
	default:
		return nil, nil, rec, fmt.Errorf("lake: recover journal: %w", err)
	}
	rec.Entries = len(entries)

	tmp := path + ".recover"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, rec, fmt.Errorf("lake: recover journal: %w", err)
	}
	j, err := NewJournal(f)
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, rec, err
	}
	for _, e := range entries {
		if err := j.appendPreserving(e); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, nil, rec, err
		}
	}
	if rec.Torn {
		if pos, err := f.Seek(0, io.SeekCurrent); err == nil {
			rec.Offset = pos
			rec.DroppedBytes = origSize - pos
		}
	}
	// Rename over the damaged original; the open handle follows the file,
	// so the journal keeps appending to the now-canonical path.
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, nil, rec, fmt.Errorf("lake: recover journal: %w", err)
	}
	return j, entries, rec, nil
}

// AppendDetection journals a detection task's outcome.
func (j *Journal) AppendDetection(taskID int, noisy, clean map[int]bool, note string) (uint64, error) {
	return j.Append(Entry{
		Kind:     EntryDetection,
		TaskID:   taskID,
		NoisyIDs: sortedIDs(noisy),
		CleanIDs: sortedIDs(clean),
		Note:     note,
	})
}

// ReadJournalLenient decodes entries from r until EOF, tolerating a
// truncated trailing record: a decode error after a valid prefix is treated
// as a torn write (crash mid-append) and reported via torn=true rather than
// an error, with the intact prefix returned. A sequence regression is still
// a hard error — that is corruption replay must not paper over.
func ReadJournalLenient(r io.Reader) (entries []Entry, torn bool, err error) {
	entries, err = ReadJournal(r)
	if err == nil {
		return entries, false, nil
	}
	if errors.Is(err, errSeqRegression) {
		return entries, false, err
	}
	return entries, true, nil
}

// errSeqRegression tags non-monotonic sequence numbers, which lenient
// recovery must not tolerate.
var errSeqRegression = errors.New("journal sequence regression")

// DoneTasks returns the set of task IDs with a detection entry — the tasks
// a restarted service may skip because their outcome is already durable.
func DoneTasks(entries []Entry) map[int]bool {
	done := make(map[int]bool)
	for _, e := range entries {
		if e.Kind == EntryDetection {
			done[e.TaskID] = true
		}
	}
	return done
}

// ReadJournal decodes all entries from r until EOF, verifying that sequence
// numbers are strictly increasing. A truncated trailing record (torn write)
// is reported via err while still returning the entries read before it.
func ReadJournal(r io.Reader) ([]Entry, error) {
	dec := gob.NewDecoder(r)
	var out []Entry
	var lastSeq uint64
	for {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, fmt.Errorf("lake: journal read after seq %d: %w", lastSeq, err)
		}
		if e.Seq <= lastSeq {
			return out, fmt.Errorf("lake: %w: %d after %d", errSeqRegression, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		out = append(out, e)
	}
}

// Replay applies journal entries to a store: removal entries drop samples,
// relabel entries rewrite labels. Detection and model-update entries are
// informational and skipped. It returns how many entries mutated the store.
func Replay(entries []Entry, store *Store) (applied int, err error) {
	for _, e := range entries {
		switch e.Kind {
		case EntryRemoval:
			ids := make(map[int]bool, len(e.NoisyIDs))
			for _, id := range e.NoisyIDs {
				ids[id] = true
			}
			if store.Remove(ids) > 0 {
				applied++
			}
		case EntryRelabel:
			for _, id := range e.NoisyIDs {
				if err := store.Relabel(id, e.Label); err != nil {
					return applied, fmt.Errorf("lake: replay seq %d: %w", e.Seq, err)
				}
			}
			applied++
		case EntryDetection, EntryModelUpdate:
			// Informational only.
		default:
			return applied, fmt.Errorf("lake: replay seq %d: unknown kind %q", e.Seq, e.Kind)
		}
	}
	return applied, nil
}

func sortedIDs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
