package lake

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// EntryKind classifies journal entries.
type EntryKind string

// Journal entry kinds.
const (
	// EntryDetection records the outcome of one detection task.
	EntryDetection EntryKind = "detection"
	// EntryRelabel records an accepted label correction.
	EntryRelabel EntryKind = "relabel"
	// EntryRemoval records samples dropped from the inventory.
	EntryRemoval EntryKind = "removal"
	// EntryModelUpdate records an Algorithm-4 general-model update.
	EntryModelUpdate EntryKind = "model-update"
)

// Entry is one durable record of a platform decision. Data-quality
// judgements are destructive downstream (samples get dropped, labels
// rewritten, models replaced), so the platform journals every decision for
// audit and replay.
type Entry struct {
	Seq  uint64
	Time time.Time
	Kind EntryKind

	// TaskID identifies the detection task for EntryDetection entries.
	TaskID int
	// NoisyIDs / CleanIDs carry the partition of a detection entry, the
	// removed IDs of a removal entry, or the affected ID of a relabel.
	NoisyIDs []int
	CleanIDs []int
	// Label is the new label of a relabel entry.
	Label int
	// Note carries free-form context (model name, operator, reason).
	Note string
}

// Journal is an append-only gob log of platform decisions. It is safe for
// concurrent use. Entries receive monotonically increasing sequence numbers
// on append.
type Journal struct {
	mu  sync.Mutex
	enc *gob.Encoder
	w   io.Writer
	seq uint64
}

// NewJournal returns a journal appending to w. If w also implements
// io.Reader the caller is responsible for positioning; Journal never reads.
func NewJournal(w io.Writer) (*Journal, error) {
	if w == nil {
		return nil, errors.New("lake: nil journal writer")
	}
	return &Journal{enc: gob.NewEncoder(w), w: w}, nil
}

// Append writes an entry, assigning its sequence number and timestamp, and
// returns the assigned sequence.
func (j *Journal) Append(e Entry) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	e.Seq = j.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	if err := j.enc.Encode(e); err != nil {
		j.seq--
		return 0, fmt.Errorf("lake: journal append: %w", err)
	}
	return e.Seq, nil
}

// AppendDetection journals a detection task's outcome.
func (j *Journal) AppendDetection(taskID int, noisy, clean map[int]bool, note string) (uint64, error) {
	return j.Append(Entry{
		Kind:     EntryDetection,
		TaskID:   taskID,
		NoisyIDs: sortedIDs(noisy),
		CleanIDs: sortedIDs(clean),
		Note:     note,
	})
}

// ReadJournal decodes all entries from r until EOF, verifying that sequence
// numbers are strictly increasing. A truncated trailing record (torn write)
// is reported via err while still returning the entries read before it.
func ReadJournal(r io.Reader) ([]Entry, error) {
	dec := gob.NewDecoder(r)
	var out []Entry
	var lastSeq uint64
	for {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, fmt.Errorf("lake: journal read after seq %d: %w", lastSeq, err)
		}
		if e.Seq <= lastSeq {
			return out, fmt.Errorf("lake: journal sequence regression: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		out = append(out, e)
	}
}

// Replay applies journal entries to a store: removal entries drop samples,
// relabel entries rewrite labels. Detection and model-update entries are
// informational and skipped. It returns how many entries mutated the store.
func Replay(entries []Entry, store *Store) (applied int, err error) {
	for _, e := range entries {
		switch e.Kind {
		case EntryRemoval:
			ids := make(map[int]bool, len(e.NoisyIDs))
			for _, id := range e.NoisyIDs {
				ids[id] = true
			}
			if store.Remove(ids) > 0 {
				applied++
			}
		case EntryRelabel:
			for _, id := range e.NoisyIDs {
				if err := store.Relabel(id, e.Label); err != nil {
					return applied, fmt.Errorf("lake: replay seq %d: %w", e.Seq, err)
				}
			}
			applied++
		case EntryDetection, EntryModelUpdate:
			// Informational only.
		default:
			return applied, fmt.Errorf("lake: replay seq %d: unknown kind %q", e.Seq, e.Kind)
		}
	}
	return applied, nil
}

func sortedIDs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
