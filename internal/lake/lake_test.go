package lake

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
)

func testMeta() StoreMeta {
	return StoreMeta{Name: "t", Classes: 3, FeatureDim: 2}
}

func sample(id, label int) dataset.Sample {
	return dataset.Sample{ID: id, X: []float64{1, 2}, Observed: label, True: label}
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(StoreMeta{Classes: 1, FeatureDim: 2}); err == nil {
		t.Error("1-class store accepted")
	}
	if _, err := NewStore(StoreMeta{Classes: 3, FeatureDim: 0}); err == nil {
		t.Error("0-dim store accepted")
	}
}

func TestStoreAddAndQuery(t *testing.T) {
	st, err := NewStore(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1), sample(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
	got, ok := st.Get(2)
	if !ok || got.Observed != 1 {
		t.Fatalf("Get(2) = %+v, %v", got, ok)
	}
	if _, ok := st.Get(99); ok {
		t.Fatal("Get(99) found")
	}
	if byLabel := st.ByLabel(1); len(byLabel) != 2 {
		t.Fatalf("ByLabel(1) = %d", len(byLabel))
	}
	hist := st.LabelHistogram()
	if len(hist) != 2 || hist[0].Label != 0 || hist[0].Count != 1 || hist[1].Count != 2 {
		t.Fatalf("histogram = %v", hist)
	}
}

func TestStoreAddRejections(t *testing.T) {
	st, _ := NewStore(testMeta())
	if err := st.Add(dataset.Set{{ID: 1, X: []float64{1}, Observed: 0}}); err == nil {
		t.Error("wrong dim accepted")
	}
	if err := st.Add(dataset.Set{{ID: 1, X: []float64{1, 2}, Observed: 9}}); err == nil {
		t.Error("out-of-range label accepted")
	}
	if err := st.Add(dataset.Set{sample(1, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(dataset.Set{sample(1, 1)}); err == nil {
		t.Error("duplicate ID accepted")
	}
	// Atomicity: a batch with one bad sample must not be partially applied.
	if err := st.Add(dataset.Set{sample(5, 0), {ID: 6, X: []float64{1}, Observed: 0}}); err == nil {
		t.Error("bad batch accepted")
	}
	if _, ok := st.Get(5); ok {
		t.Error("partial batch applied")
	}
	// Missing labels are allowed.
	if err := st.Add(dataset.Set{{ID: 7, X: []float64{1, 2}, Observed: dataset.Missing}}); err != nil {
		t.Errorf("missing label rejected: %v", err)
	}
}

func TestStoreRelabelAndRemove(t *testing.T) {
	st, _ := NewStore(testMeta())
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1), sample(3, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Relabel(2, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := st.Get(2)
	if got.Observed != 2 {
		t.Fatal("relabel lost")
	}
	if err := st.Relabel(2, 9); err == nil {
		t.Error("out-of-range relabel accepted")
	}
	if err := st.Relabel(99, 0); err == nil {
		t.Error("unknown relabel accepted")
	}
	if n := st.Remove(map[int]bool{1: true, 99: true}); n != 1 {
		t.Fatalf("Remove = %d", n)
	}
	if st.Len() != 2 {
		t.Fatalf("Len after remove = %d", st.Len())
	}
	if _, ok := st.Get(1); ok {
		t.Fatal("removed sample still present")
	}
	// Index rebuilt correctly.
	if got, ok := st.Get(3); !ok || got.Observed != 2 {
		t.Fatal("index corrupted after remove")
	}
	if n := st.Remove(nil); n != 0 {
		t.Fatal("Remove(nil) != 0")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, _ := NewStore(testMeta())
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.Meta() != st.Meta() {
		t.Fatal("round trip lost data")
	}
	if _, err := LoadStore(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// flagOdd is a trivial detector marking odd IDs noisy.
type flagOdd struct{ delay time.Duration }

func (flagOdd) Name() string { return "flag-odd" }

func (f flagOdd) Detect(d dataset.Set) (*detect.Result, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	res := detect.NewResult()
	for _, smp := range d {
		if smp.ID%2 == 1 {
			res.MarkNoisy(smp.ID)
		} else {
			res.MarkClean(smp.ID)
		}
	}
	res.Process = f.delay
	return res, nil
}

// failing always errors.
type failing struct{}

func (failing) Name() string { return "failing" }
func (failing) Detect(dataset.Set) (*detect.Result, error) {
	return nil, errors.New("boom")
}

func shards(n, size int) []dataset.Set {
	out := make([]dataset.Set, n)
	id := 0
	for i := range out {
		for j := 0; j < size; j++ {
			s := sample(id, id%3)
			if id%2 == 1 {
				s.True = (s.Observed + 1) % 3 // odd IDs are genuinely noisy
			}
			out[i] = append(out[i], s)
			id++
		}
	}
	return out
}

func TestServiceProcessesAllRequests(t *testing.T) {
	svc, err := NewService(flagOdd{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(7, 4), 0))
	if len(reports) != 7 {
		t.Fatalf("%d reports", len(reports))
	}
	for i, rep := range reports {
		if rep.TaskID != i {
			t.Fatalf("reports not ordered: %v", rep.TaskID)
		}
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
		if rep.Size != 4 {
			t.Fatalf("size = %d", rep.Size)
		}
		// flagOdd is exactly right on this workload.
		if rep.Detection.F1 != 1 {
			t.Fatalf("task %d F1 = %v", rep.TaskID, rep.Detection.F1)
		}
	}
}

func TestServiceReportsErrors(t *testing.T) {
	svc, _ := NewService(failing{}, 1)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(2, 3), 0))
	if len(reports) != 2 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err == nil {
			t.Fatal("error not reported")
		}
	}
}

func TestServiceContextCancel(t *testing.T) {
	svc, _ := NewService(flagOdd{delay: 5 * time.Millisecond}, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(8 * time.Millisecond)
		cancel()
	}()
	reports := svc.Run(ctx, Feed(ctx, shards(100, 2), 0))
	if len(reports) == 0 || len(reports) >= 100 {
		t.Fatalf("cancel processed %d tasks", len(reports))
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil, 1); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewService(flagOdd{}, 0); err == nil {
		t.Error("0 workers accepted")
	}
}

func TestFeedPacing(t *testing.T) {
	ctx := context.Background()
	start := time.Now()
	ch := Feed(ctx, shards(3, 1), 2*time.Millisecond)
	n := 0
	for range ch {
		n++
	}
	if n != 3 {
		t.Fatalf("fed %d", n)
	}
	if time.Since(start) < 4*time.Millisecond {
		t.Fatal("pacing not applied")
	}
}

func TestServiceOnReportCallback(t *testing.T) {
	svc, err := NewService(flagOdd{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[int]bool{}
	svc.OnReport = func(rep Report) {
		mu.Lock()
		seen[rep.TaskID] = true
		mu.Unlock()
	}
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(5, 2), 0))
	if len(reports) != 5 || len(seen) != 5 {
		t.Fatalf("reports=%d callbacks=%d", len(reports), len(seen))
	}
}

// realDetector adapts a shared nn.Network the way baselines do, to verify
// the service's concurrency contract end-to-end under the race detector.
type realDetector struct{ model *nn.Network }

func (realDetector) Name() string { return "real" }

func (r realDetector) Detect(d dataset.Set) (*detect.Result, error) {
	res := detect.NewResult()
	scores := detect.Score(r.model.Clone(), d, &res.Meter)
	for i, smp := range d {
		if scores.Predicted[i] == smp.Observed {
			res.MarkClean(smp.ID)
		} else {
			res.MarkNoisy(smp.ID)
		}
	}
	return res, nil
}

func TestServiceConcurrentModelAccess(t *testing.T) {
	model := nn.NewNetwork([]int{2, 4, 3}, mat.NewRNG(1))
	svc, err := NewService(realDetector{model: model}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(12, 5), 0))
	if len(reports) != 12 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatal(rep.Err)
		}
	}
}

// panicking blows up on every call.
type panicking struct{}

func (panicking) Name() string { return "panicking" }
func (panicking) Detect(dataset.Set) (*detect.Result, error) {
	panic("detector bug")
}

func TestServiceContainsDetectorPanic(t *testing.T) {
	svc, _ := NewService(panicking{}, 2)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(4, 2), 0))
	if len(reports) != 4 {
		t.Fatalf("%d reports after panics", len(reports))
	}
	for _, rep := range reports {
		if rep.Err == nil {
			t.Fatal("panic not converted to error")
		}
	}
}
