package lake

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/metrics"
)

func trackerWithData(t *testing.T) *StatusTracker {
	t.Helper()
	st, err := NewStore(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1)}); err != nil {
		t.Fatal(err)
	}
	tr := NewStatusTracker(st)
	res := detect.NewResult()
	res.MarkNoisy(5)
	res.MarkClean(6)
	tr.Record(Report{
		TaskID: 0, Size: 2, Result: res,
		Detection: metrics.Detection{F1: 0.8},
		Process:   100 * time.Millisecond, Queued: 10 * time.Millisecond,
	})
	tr.Record(Report{TaskID: 1, Size: 3, Err: errFake, Retries: 2, DeadLettered: true})
	return tr
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestSnapshot(t *testing.T) {
	tr := trackerWithData(t)
	st := tr.Snapshot()
	if st.StoreName != "t" || st.StoreSamples != 2 {
		t.Fatalf("store stats: %+v", st)
	}
	if st.TasksProcessed != 2 || st.TasksFailed != 1 {
		t.Fatalf("task stats: %+v", st)
	}
	if st.MeanF1 != 0.8 {
		t.Fatalf("mean f1 = %v", st.MeanF1)
	}
	if len(st.Recent) != 2 || st.Recent[0].TaskID != 1 {
		t.Fatalf("recent = %+v", st.Recent)
	}
	if st.Recent[1].Noisy != 1 {
		t.Fatalf("noisy count = %d", st.Recent[1].Noisy)
	}
	// Error fidelity: the summary carries the cause, not just a bit.
	if st.Recent[0].Error != "fake" || !st.Recent[0].Failed || !st.Recent[0].DeadLettered {
		t.Fatalf("failed summary = %+v", st.Recent[0])
	}
	if st.Recent[1].Error != "" {
		t.Fatalf("successful summary has error %q", st.Recent[1].Error)
	}
	if st.TotalRetries != 2 || st.TasksDeadLetter != 1 || st.TasksDegraded != 0 {
		t.Fatalf("resilience stats: %+v", st)
	}
}

func TestSnapshotDegradedAndBreaker(t *testing.T) {
	tr := NewStatusTracker(nil)
	tr.Record(Report{TaskID: 0, Degraded: true, Detection: metrics.Detection{F1: 0.5}})
	b := NewBreaker(1, time.Minute)
	b.Failure()
	tr.AttachBreaker(b)
	st := tr.Snapshot()
	if st.TasksDegraded != 1 {
		t.Fatalf("degraded = %d", st.TasksDegraded)
	}
	if st.Breaker == nil || st.Breaker.State != "open" || st.Breaker.Trips != 1 {
		t.Fatalf("breaker status = %+v", st.Breaker)
	}
	if !st.Recent[0].Degraded {
		t.Fatalf("recent = %+v", st.Recent[0])
	}
}

func TestSnapshotNilStore(t *testing.T) {
	tr := NewStatusTracker(nil)
	st := tr.Snapshot()
	if st.StoreName != "" || st.StoreSamples != 0 {
		t.Fatalf("nil store stats: %+v", st)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	tr := trackerWithData(t)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TasksProcessed != 2 {
		t.Fatalf("decoded %+v", st)
	}
}

func TestHandlerRejectsPost(t *testing.T) {
	tr := NewStatusTracker(nil)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewStatusTracker(nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr.Record(Report{TaskID: id, Detection: metrics.Detection{F1: 0.5}})
			tr.Snapshot()
		}(i)
	}
	wg.Wait()
	if st := tr.Snapshot(); st.TasksProcessed != 20 {
		t.Fatalf("processed %d", st.TasksProcessed)
	}
}

func TestRecentBounded(t *testing.T) {
	tr := NewStatusTracker(nil)
	for i := 0; i < 50; i++ {
		tr.Record(Report{TaskID: i})
	}
	st := tr.Snapshot()
	if len(st.Recent) != 20 {
		t.Fatalf("recent = %d", len(st.Recent))
	}
	if st.Recent[0].TaskID != 49 {
		t.Fatalf("most recent = %d", st.Recent[0].TaskID)
	}
}

func TestSnapshotTrainingHealth(t *testing.T) {
	tr := NewStatusTracker(nil)
	if tr.Snapshot().Training != nil {
		t.Fatal("training health present before SetTrainingHealth")
	}
	tr.SetTrainingHealth(TrainingHealth{
		HealthChecks: 40, Rollbacks: 2, LastUnhealthyEpoch: 7,
		CheckpointsTaken: 9, CheckpointVerifyFailures: 1,
	})
	st := tr.Snapshot()
	if st.Training == nil {
		t.Fatal("training health missing from snapshot")
	}
	if st.Training.Rollbacks != 2 || st.Training.LastUnhealthyEpoch != 7 || st.Training.CheckpointVerifyFailures != 1 {
		t.Fatalf("training health = %+v", st.Training)
	}

	// The snapshot holds a copy: later mutation does not leak into it.
	tr.SetTrainingHealth(TrainingHealth{Rollbacks: 99})
	if st.Training.Rollbacks != 2 {
		t.Fatal("snapshot aliases tracker state")
	}

	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	th, ok := decoded["training_health"].(map[string]any)
	if !ok {
		t.Fatalf("training_health missing from JSON: %s", data)
	}
	if th["rollbacks"].(float64) != 99 {
		t.Fatalf("training_health JSON = %v", th)
	}
	for _, key := range []string{"health_checks", "last_unhealthy_epoch", "checkpoints_taken", "checkpoint_verify_failures"} {
		if _, ok := th[key]; !ok {
			t.Fatalf("training_health JSON lacks %q: %v", key, th)
		}
	}
}

// TestSnapshotStorageAndJournalRecovery: /statusz surfaces the inventory
// backend's live statistics and the journal's recovery report.
func TestSnapshotStorageAndJournalRecovery(t *testing.T) {
	tr := NewStatusTracker(nil)
	inv := NewMemInventory()
	if _, err := inv.AppendDataset("a", dataset.Set{sample(1, 0), sample(2, 1)}); err != nil {
		t.Fatal(err)
	}
	tr.AttachInventory(inv)
	tr.SetJournalRecovery(JournalRecovery{Entries: 3, Torn: true, DroppedBytes: 17, Offset: 240, File: "j"})

	st := tr.Snapshot()
	if st.Storage == nil || st.Storage.Backend != "memory" || st.Storage.Datasets != 1 || st.Storage.Samples != 2 {
		t.Fatalf("storage section = %+v", st.Storage)
	}
	if st.JournalRecovery == nil || !st.JournalRecovery.Torn || st.JournalRecovery.DroppedBytes != 17 {
		t.Fatalf("journal recovery section = %+v", st.JournalRecovery)
	}

	// Live re-read: a later append shows up in the next snapshot.
	if _, err := inv.AppendDataset("b", dataset.Set{sample(3, 0)}); err != nil {
		t.Fatal(err)
	}
	if st := tr.Snapshot(); st.Storage.Datasets != 2 {
		t.Fatalf("snapshot is stale: %+v", st.Storage)
	}

	// The sections survive the JSON round trip the endpoint serves.
	var decoded Status
	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Storage == nil || decoded.Storage.Samples != 3 || decoded.JournalRecovery.Offset != 240 {
		t.Fatalf("decoded = %+v / %+v", decoded.Storage, decoded.JournalRecovery)
	}
}

// TestSnapshotOverloadBlock: /statusz surfaces the live overload-control
// state — queue occupancy, shed/abandoned accounting, brownout tier — and the
// JSON wire shape stays stable for dashboards.
func TestSnapshotOverloadBlock(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{}, 2, Policy{
		Admission: AdmissionConfig{QueueDepth: 16, MaxQueueWait: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBrownout([]TierDetector{
		{Name: TierFull, Detector: flagOdd{}},
		{Name: TierFallback, Detector: flagAll{}},
	}, BrownoutConfig{QueueHigh: 8, QueueLow: 2}, nil); err != nil {
		t.Fatal(err)
	}

	tr := NewStatusTracker(nil)
	tr.AttachService(svc)
	tr.Record(Report{TaskID: 0, Tier: TierFull, Detection: metrics.Detection{F1: 0.9}})
	tr.Record(Report{TaskID: 1, Tier: TierFull, Shed: true, Err: errFake})
	tr.Record(Report{TaskID: 2, Tier: TierFull, Abandoned: true, Err: errFake})
	svc.shed.Add(1)
	svc.abandoned.Add(1)

	st := tr.Snapshot()
	if st.TasksShed != 1 || st.TasksAbandoned != 1 {
		t.Fatalf("shed/abandoned counts: %+v", st)
	}
	// Shed and abandoned are their own outcome classes, not failures.
	if st.TasksFailed != 0 {
		t.Fatalf("shed/abandoned counted as failures: %+v", st)
	}
	if st.Overload == nil || st.Overload.QueueCapacity != 16 || st.Overload.TasksShed != 1 {
		t.Fatalf("overload section = %+v", st.Overload)
	}
	if st.Overload.BrownoutTier != 0 || st.Overload.BrownoutTierName != TierFull {
		t.Fatalf("brownout fields = %+v", st.Overload)
	}

	// Pin the exact JSON key shape the endpoint serves.
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tasks_shed", "tasks_abandoned", "overload"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("status JSON missing %q: %v", key, keysOf(raw))
		}
	}
	var ov map[string]json.RawMessage
	if err := json.Unmarshal(raw["overload"], &ov); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"queue_depth", "queue_capacity", "ewma_task_seconds",
		"tasks_shed", "tasks_abandoned",
		"brownout_tier", "brownout_tier_name", "brownout_max_tier", "tier_changes",
	} {
		if _, ok := ov[key]; !ok {
			t.Fatalf("overload JSON missing %q: %v", key, keysOf(ov))
		}
	}
	var recent []map[string]json.RawMessage
	if err := json.Unmarshal(raw["recent"], &recent); err != nil {
		t.Fatal(err)
	}
	// Most recent first: task 2 (abandoned), task 1 (shed), task 0 (ok).
	if _, ok := recent[0]["abandoned"]; !ok {
		t.Fatalf("recent[0] missing abandoned flag: %v", keysOf(recent[0]))
	}
	if _, ok := recent[1]["shed"]; !ok {
		t.Fatalf("recent[1] missing shed flag: %v", keysOf(recent[1]))
	}
	if _, ok := recent[2]["tier"]; !ok {
		t.Fatalf("recent[2] missing tier: %v", keysOf(recent[2]))
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
