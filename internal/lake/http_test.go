package lake

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/metrics"
)

func trackerWithData(t *testing.T) *StatusTracker {
	t.Helper()
	st, err := NewStore(testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1)}); err != nil {
		t.Fatal(err)
	}
	tr := NewStatusTracker(st)
	res := detect.NewResult()
	res.MarkNoisy(5)
	res.MarkClean(6)
	tr.Record(Report{
		TaskID: 0, Size: 2, Result: res,
		Detection: metrics.Detection{F1: 0.8},
		Process:   100 * time.Millisecond, Queued: 10 * time.Millisecond,
	})
	tr.Record(Report{TaskID: 1, Size: 3, Err: errFake, Retries: 2, DeadLettered: true})
	return tr
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestSnapshot(t *testing.T) {
	tr := trackerWithData(t)
	st := tr.Snapshot()
	if st.StoreName != "t" || st.StoreSamples != 2 {
		t.Fatalf("store stats: %+v", st)
	}
	if st.TasksProcessed != 2 || st.TasksFailed != 1 {
		t.Fatalf("task stats: %+v", st)
	}
	if st.MeanF1 != 0.8 {
		t.Fatalf("mean f1 = %v", st.MeanF1)
	}
	if len(st.Recent) != 2 || st.Recent[0].TaskID != 1 {
		t.Fatalf("recent = %+v", st.Recent)
	}
	if st.Recent[1].Noisy != 1 {
		t.Fatalf("noisy count = %d", st.Recent[1].Noisy)
	}
	// Error fidelity: the summary carries the cause, not just a bit.
	if st.Recent[0].Error != "fake" || !st.Recent[0].Failed || !st.Recent[0].DeadLettered {
		t.Fatalf("failed summary = %+v", st.Recent[0])
	}
	if st.Recent[1].Error != "" {
		t.Fatalf("successful summary has error %q", st.Recent[1].Error)
	}
	if st.TotalRetries != 2 || st.TasksDeadLetter != 1 || st.TasksDegraded != 0 {
		t.Fatalf("resilience stats: %+v", st)
	}
}

func TestSnapshotDegradedAndBreaker(t *testing.T) {
	tr := NewStatusTracker(nil)
	tr.Record(Report{TaskID: 0, Degraded: true, Detection: metrics.Detection{F1: 0.5}})
	b := NewBreaker(1, time.Minute)
	b.Failure()
	tr.AttachBreaker(b)
	st := tr.Snapshot()
	if st.TasksDegraded != 1 {
		t.Fatalf("degraded = %d", st.TasksDegraded)
	}
	if st.Breaker == nil || st.Breaker.State != "open" || st.Breaker.Trips != 1 {
		t.Fatalf("breaker status = %+v", st.Breaker)
	}
	if !st.Recent[0].Degraded {
		t.Fatalf("recent = %+v", st.Recent[0])
	}
}

func TestSnapshotNilStore(t *testing.T) {
	tr := NewStatusTracker(nil)
	st := tr.Snapshot()
	if st.StoreName != "" || st.StoreSamples != 0 {
		t.Fatalf("nil store stats: %+v", st)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	tr := trackerWithData(t)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TasksProcessed != 2 {
		t.Fatalf("decoded %+v", st)
	}
}

func TestHandlerRejectsPost(t *testing.T) {
	tr := NewStatusTracker(nil)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestTrackerConcurrent(t *testing.T) {
	tr := NewStatusTracker(nil)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tr.Record(Report{TaskID: id, Detection: metrics.Detection{F1: 0.5}})
			tr.Snapshot()
		}(i)
	}
	wg.Wait()
	if st := tr.Snapshot(); st.TasksProcessed != 20 {
		t.Fatalf("processed %d", st.TasksProcessed)
	}
}

func TestRecentBounded(t *testing.T) {
	tr := NewStatusTracker(nil)
	for i := 0; i < 50; i++ {
		tr.Record(Report{TaskID: i})
	}
	st := tr.Snapshot()
	if len(st.Recent) != 20 {
		t.Fatalf("recent = %d", len(st.Recent))
	}
	if st.Recent[0].TaskID != 49 {
		t.Fatalf("most recent = %d", st.Recent[0].TaskID)
	}
}

func TestSnapshotTrainingHealth(t *testing.T) {
	tr := NewStatusTracker(nil)
	if tr.Snapshot().Training != nil {
		t.Fatal("training health present before SetTrainingHealth")
	}
	tr.SetTrainingHealth(TrainingHealth{
		HealthChecks: 40, Rollbacks: 2, LastUnhealthyEpoch: 7,
		CheckpointsTaken: 9, CheckpointVerifyFailures: 1,
	})
	st := tr.Snapshot()
	if st.Training == nil {
		t.Fatal("training health missing from snapshot")
	}
	if st.Training.Rollbacks != 2 || st.Training.LastUnhealthyEpoch != 7 || st.Training.CheckpointVerifyFailures != 1 {
		t.Fatalf("training health = %+v", st.Training)
	}

	// The snapshot holds a copy: later mutation does not leak into it.
	tr.SetTrainingHealth(TrainingHealth{Rollbacks: 99})
	if st.Training.Rollbacks != 2 {
		t.Fatal("snapshot aliases tracker state")
	}

	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	th, ok := decoded["training_health"].(map[string]any)
	if !ok {
		t.Fatalf("training_health missing from JSON: %s", data)
	}
	if th["rollbacks"].(float64) != 99 {
		t.Fatalf("training_health JSON = %v", th)
	}
	for _, key := range []string{"health_checks", "last_unhealthy_epoch", "checkpoints_taken", "checkpoint_verify_failures"} {
		if _, ok := th[key]; !ok {
			t.Fatalf("training_health JSON lacks %q: %v", key, th)
		}
	}
}

// TestSnapshotStorageAndJournalRecovery: /statusz surfaces the inventory
// backend's live statistics and the journal's recovery report.
func TestSnapshotStorageAndJournalRecovery(t *testing.T) {
	tr := NewStatusTracker(nil)
	inv := NewMemInventory()
	if _, err := inv.AppendDataset("a", dataset.Set{sample(1, 0), sample(2, 1)}); err != nil {
		t.Fatal(err)
	}
	tr.AttachInventory(inv)
	tr.SetJournalRecovery(JournalRecovery{Entries: 3, Torn: true, DroppedBytes: 17, Offset: 240, File: "j"})

	st := tr.Snapshot()
	if st.Storage == nil || st.Storage.Backend != "memory" || st.Storage.Datasets != 1 || st.Storage.Samples != 2 {
		t.Fatalf("storage section = %+v", st.Storage)
	}
	if st.JournalRecovery == nil || !st.JournalRecovery.Torn || st.JournalRecovery.DroppedBytes != 17 {
		t.Fatalf("journal recovery section = %+v", st.JournalRecovery)
	}

	// Live re-read: a later append shows up in the next snapshot.
	if _, err := inv.AppendDataset("b", dataset.Set{sample(3, 0)}); err != nil {
		t.Fatal(err)
	}
	if st := tr.Snapshot(); st.Storage.Datasets != 2 {
		t.Fatalf("snapshot is stale: %+v", st.Storage)
	}

	// The sections survive the JSON round trip the endpoint serves.
	var decoded Status
	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Storage == nil || decoded.Storage.Samples != 3 || decoded.JournalRecovery.Offset != 240 {
		t.Fatalf("decoded = %+v / %+v", decoded.Storage, decoded.JournalRecovery)
	}
}
