package lake

import (
	"bytes"
	"context"
	"encoding/gob"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"enld/internal/dataset"
)

func TestJournalAppendRead(t *testing.T) {
	var buf bytes.Buffer
	j, err := NewJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	seq1, err := j.AppendDetection(7, map[int]bool{3: true, 1: true}, map[int]bool{2: true}, "test")
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != 1 {
		t.Fatalf("first seq = %d", seq1)
	}
	seq2, err := j.Append(Entry{Kind: EntryModelUpdate, Note: "update"})
	if err != nil {
		t.Fatal(err)
	}
	if seq2 != 2 {
		t.Fatalf("second seq = %d", seq2)
	}

	entries, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	det := entries[0]
	if det.Kind != EntryDetection || det.TaskID != 7 {
		t.Fatalf("entry 0 = %+v", det)
	}
	// IDs are sorted.
	if len(det.NoisyIDs) != 2 || det.NoisyIDs[0] != 1 || det.NoisyIDs[1] != 3 {
		t.Fatalf("noisy IDs = %v", det.NoisyIDs)
	}
	if det.Time.IsZero() {
		t.Fatal("timestamp not assigned")
	}
}

func TestNewJournalNilWriter(t *testing.T) {
	if _, err := NewJournal(nil); err == nil {
		t.Fatal("nil writer accepted")
	}
}

func TestReadJournalTruncated(t *testing.T) {
	var buf bytes.Buffer
	j, _ := NewJournal(&buf)
	if _, err := j.Append(Entry{Kind: EntryDetection}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Entry{Kind: EntryDetection}); err != nil {
		t.Fatal(err)
	}
	// Torn write: cut the log mid-record.
	data := buf.Bytes()
	cut := data[:len(data)-3]
	entries, err := ReadJournal(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("torn record not reported")
	}
	if len(entries) != 1 {
		t.Fatalf("recovered %d entries before torn record", len(entries))
	}
}

func TestReadJournalLenientToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	j, _ := NewJournal(&buf)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := j.AppendDetection(i, map[int]bool{i: true}, nil, "t"); err != nil {
			t.Fatal(err)
		}
	}
	// Crash mid-append: cut the log inside the final record.
	data := buf.Bytes()
	cut := data[:len(data)-4]
	entries, torn, err := ReadJournalLenient(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn tail not flagged")
	}
	if len(entries) != n-1 {
		t.Fatalf("recovered %d intact entries, want %d", len(entries), n-1)
	}
	// An intact log reads clean.
	entries, torn, err = ReadJournalLenient(bytes.NewReader(data))
	if err != nil || torn || len(entries) != n {
		t.Fatalf("intact log: entries=%d torn=%v err=%v", len(entries), torn, err)
	}
}

func TestReadJournalLenientRejectsSeqRegression(t *testing.T) {
	// A regressing sequence is corruption, not a torn write; lenient
	// recovery must still fail hard.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, seq := range []uint64{1, 2, 1} {
		if err := enc.Encode(Entry{Seq: seq, Kind: EntryDetection}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ReadJournalLenient(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("sequence regression tolerated")
	}
}

func TestDoneTasks(t *testing.T) {
	entries := []Entry{
		{Seq: 1, Kind: EntryDetection, TaskID: 0},
		{Seq: 2, Kind: EntryRelabel, TaskID: 9, NoisyIDs: []int{1}},
		{Seq: 3, Kind: EntryDetection, TaskID: 4},
	}
	done := DoneTasks(entries)
	if len(done) != 2 || !done[0] || !done[4] {
		t.Fatalf("done = %v", done)
	}
}

func TestRecoverJournalFileCrashRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")

	// First incarnation journals 4 detections, then "crashes" mid-append
	// (simulated by truncating the file inside the last record).
	j1, entries, jrec, err := RecoverJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || jrec.Torn || jrec.Entries != 0 {
		t.Fatalf("fresh journal: %d entries, recovery %+v", len(entries), jrec)
	}
	for i := 0; i < 4; i++ {
		if _, err := j1.AppendDetection(i, map[int]bool{10 + i: true}, nil, "run1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Restart: recovery returns the 3 intact entries, reports exactly what
	// the torn tail cost, and the journal keeps appending with the sequence
	// continuing.
	j2, entries, jrec, err := RecoverJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
	// The compacting rewrite re-encodes the intact prefix byte-identically,
	// so offset + dropped bytes must equal the damaged file's exact size.
	if !jrec.Torn || jrec.Entries != 3 || jrec.Offset+jrec.DroppedBytes != info.Size()-5 {
		t.Fatalf("journal recovery stats = %+v (truncated size %d)", jrec, info.Size()-5)
	}
	done := DoneTasks(entries)
	if len(done) != 3 || !done[0] || !done[1] || !done[2] {
		t.Fatalf("done = %v", done)
	}
	seq, err := j2.AppendDetection(3, map[int]bool{13: true}, nil, "run2")
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("resumed seq = %d, want 4", seq)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// The compacted-and-extended file reads back as one coherent stream.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	all, torn, err := ReadJournalLenient(f)
	if err != nil || torn {
		t.Fatalf("reread: torn=%v err=%v", torn, err)
	}
	if len(all) != 4 || all[3].Note != "run2" {
		t.Fatalf("reread entries = %+v", all)
	}

	// A restarted service skips the recovered task IDs.
	svc, _ := NewService(flagOdd{}, 2)
	svc.SkipCompleted(done)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(6, 2), 0))
	if len(reports) != 3 {
		t.Fatalf("restarted service processed %d tasks, want 3", len(reports))
	}
	for _, rep := range reports {
		if done[rep.TaskID] {
			t.Fatalf("already-journaled task %d reprocessed", rep.TaskID)
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	j, _ := NewJournal(&buf)
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			if _, err := j.Append(Entry{Kind: EntryDetection, TaskID: task}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	entries, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("%d entries", len(entries))
	}
	// Sequence numbers strictly increase (checked by ReadJournal) and cover
	// 1..n exactly.
	if entries[n-1].Seq != n {
		t.Fatalf("last seq = %d", entries[n-1].Seq)
	}
}

func TestReplay(t *testing.T) {
	st, _ := NewStore(testMeta())
	if err := st.Add(dataset.Set{sample(1, 0), sample(2, 1), sample(3, 2)}); err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Seq: 1, Kind: EntryDetection, TaskID: 0, NoisyIDs: []int{1}},
		{Seq: 2, Kind: EntryRelabel, NoisyIDs: []int{2}, Label: 0},
		{Seq: 3, Kind: EntryRemoval, NoisyIDs: []int{1}},
		{Seq: 4, Kind: EntryModelUpdate},
	}
	applied, err := Replay(entries, st)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d", applied)
	}
	if _, ok := st.Get(1); ok {
		t.Fatal("removal not replayed")
	}
	got, _ := st.Get(2)
	if got.Observed != 0 {
		t.Fatal("relabel not replayed")
	}
}

func TestReplayErrors(t *testing.T) {
	st, _ := NewStore(testMeta())
	if _, err := Replay([]Entry{{Seq: 1, Kind: "bogus"}}, st); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Replay([]Entry{{Seq: 1, Kind: EntryRelabel, NoisyIDs: []int{99}, Label: 0}}, st); err == nil {
		t.Fatal("relabel of unknown ID accepted")
	}
}

func TestJournalStoreRoundTrip(t *testing.T) {
	// End-to-end: journal decisions, then rebuild a fresh store copy by
	// replaying the log over the original snapshot.
	orig, _ := NewStore(testMeta())
	if err := orig.Add(dataset.Set{sample(1, 0), sample(2, 1), sample(3, 2)}); err != nil {
		t.Fatal(err)
	}
	var snapshot bytes.Buffer
	if err := orig.Save(&snapshot); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	j, _ := NewJournal(&log)
	if _, err := j.Append(Entry{Kind: EntryRemoval, NoisyIDs: []int{3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(Entry{Kind: EntryRelabel, NoisyIDs: []int{1}, Label: 2}); err != nil {
		t.Fatal(err)
	}
	orig.Remove(map[int]bool{3: true})
	if err := orig.Relabel(1, 2); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadStore(&snapshot)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(&log)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(entries, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() {
		t.Fatal("replayed store size differs")
	}
	a, _ := restored.Get(1)
	b, _ := orig.Get(1)
	if a.Observed != b.Observed {
		t.Fatal("replayed store content differs")
	}
}
