// The composed storage crash test lives in an external test package: the
// seglog backend imports lake, so package lake's own tests cannot import it
// back.
package lake_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/lake"
	"enld/internal/lake/seglog"
	"enld/internal/mat"
	"enld/internal/nn"
)

// e2eDetector marks odd IDs noisy (the workload's ground truth).
type e2eDetector struct{}

func (e2eDetector) Name() string { return "e2e-odd" }

func (e2eDetector) Detect(d dataset.Set) (*detect.Result, error) {
	res := detect.NewResult()
	for _, smp := range d {
		if smp.ID%2 == 1 {
			res.MarkNoisy(smp.ID)
		} else {
			res.MarkClean(smp.ID)
		}
	}
	return res, nil
}

// e2eShards builds n incremental datasets of size samples each.
func e2eShards(n, size int) []dataset.Set {
	out := make([]dataset.Set, n)
	id := 0
	for i := range out {
		for j := 0; j < size; j++ {
			s := dataset.Sample{ID: id, X: []float64{float64(id), 1}, Observed: id % 3, True: id % 3}
			if id%2 == 1 {
				s.True = (s.Observed + 1) % 3
			}
			out[i] = append(out[i], s)
			id++
		}
	}
	return out
}

// e2ePlatform trains a small deterministic platform.
func e2ePlatform(t *testing.T, seed uint64) *core.Platform {
	t.Helper()
	sp := dataset.Spec{
		Name: "e2e", Classes: 3, FeatureDim: 5, PerClass: 30,
		Separation: 4, Spread: 1, Seed: seed,
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := dataset.SplitRatio(full, 2.0/3.0, mat.NewRNG(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPlatformConfig(sp.Classes, sp.FeatureDim, seed+3)
	cfg.Epochs = 4
	cfg.Watchdog = nn.WatchdogConfig{Enabled: true}
	p, err := core.NewPlatform(inv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrashRecoveryComposesSeglogAndJournal is the storage engine's
// composed crash scenario: the process dies in the middle of a segment-log
// compaction (new segments on disk, manifest not yet swapped) AND with a
// torn record at the journal tail. The restarted incarnation must recover a
// bit-identical platform snapshot from the log, keep every durably appended
// arrival, and finish the workload with zero lost tasks — every task
// covered exactly once across both incarnations.
func TestCrashRecoveryComposesSeglogAndJournal(t *testing.T) {
	storeDir := t.TempDir()
	jpath := filepath.Join(t.TempDir(), "journal")
	ctx := context.Background()
	allShards := e2eShards(6, 4)

	// First incarnation: platform into the inventory, 3 of 6 tasks served
	// with durable arrival storage, each journaled.
	inv1, err := seglog.Open(storeDir, seglog.Options{SegmentTargetBytes: 2048, AutoCompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	p1 := e2ePlatform(t, 11)
	if err := core.SavePlatformInventory(p1, inv1); err != nil {
		t.Fatal(err)
	}
	wantSnap, err := inv1.LoadPlatform()
	if err != nil {
		t.Fatal(err)
	}

	j1, entries, _, err := lake.RecoverJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal has %d entries", len(entries))
	}
	svc1, err := lake.NewService(e2eDetector{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc1.SetInventory(inv1)
	for _, rep := range svc1.Run(ctx, lake.Feed(ctx, allShards[:3], 0)) {
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
		if _, err := j1.AppendDetection(rep.TaskID, rep.Result.Noisy, rep.Result.Clean, "run1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-saving the platform supersedes the first snapshot record — the
	// dead bytes that make compaction do real work.
	if err := core.SavePlatformInventory(p1, inv1); err != nil {
		t.Fatal(err)
	}

	// Crash mid-compaction: capture the disk state after the new segments
	// are written but before the manifest swap commits them.
	var crashedStore string
	inv1.SetCompactionHook(func(stage string) {
		if stage == "segments-written" {
			crashedStore = copyTree(t, storeDir)
		}
	})
	if err := inv1.Compact(); err != nil {
		t.Fatal(err)
	}
	if crashedStore == "" {
		t.Fatal("compaction hook never fired")
	}
	inv1.Close()

	// ...and with a torn journal tail: the crash cut the last record.
	info, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Restart on the crashed state. The journal recovers 2 intact entries
	// and accounts for the torn third...
	j2, entries, jrec, err := lake.RecoverJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || !jrec.Torn || jrec.DroppedBytes <= 0 {
		t.Fatalf("journal recovery: %d entries, stats %+v", len(entries), jrec)
	}
	defer j2.Close()
	done := lake.DoneTasks(entries)

	// ...the segment log recovers from the half-finished compaction (the
	// uncommitted new segments are swept as strays)...
	inv2, err := seglog.Open(crashedStore, seglog.Options{SegmentTargetBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	if inv2.StraysRemoved() == 0 {
		t.Fatal("crashed compaction left no strays to sweep")
	}

	// ...with the platform snapshot bit-identical to the first
	// incarnation's...
	gotSnap, err := inv2.LoadPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Fatalf("platform snapshot differs after crash recovery: %d vs %d bytes", len(gotSnap), len(wantSnap))
	}
	if _, err := core.LoadPlatformInventory(inv2); err != nil {
		t.Fatalf("recovered platform unusable: %v", err)
	}

	// ...and every durably appended arrival intact.
	metas, err := inv2.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	arrived := map[string]bool{}
	for _, m := range metas {
		arrived[m.Name] = true
	}
	for i := 0; i < 3; i++ {
		if !arrived[fmt.Sprintf("task-%d", i)] {
			t.Fatalf("arrival task-%d lost in crash: %v", i, arrived)
		}
	}

	// The restarted service skips the journaled tasks and completes the
	// rest: zero lost tasks across both incarnations.
	svc2, err := lake.NewService(e2eDetector{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc2.SetInventory(inv2)
	svc2.SkipCompleted(done)
	covered := map[int]bool{}
	for id := range done {
		covered[id] = true
	}
	for _, rep := range svc2.Run(ctx, lake.Feed(ctx, allShards, 0)) {
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
		if covered[rep.TaskID] {
			t.Fatalf("task %d processed twice", rep.TaskID)
		}
		covered[rep.TaskID] = true
		if _, err := j2.AppendDetection(rep.TaskID, rep.Result.Noisy, rep.Result.Clean, "run2"); err != nil {
			t.Fatal(err)
		}
	}
	if len(covered) != 6 {
		t.Fatalf("covered %d of 6 tasks: %v", len(covered), covered)
	}
}

// copyTree clones every regular file of src into a fresh directory.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}
