package seglog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enld/internal/fault"
	"enld/internal/mat"
)

// tortureHistorySize is the dataset count of the torture log. Short mode
// scales it down; full runs exercise the 10k-dataset history the storage
// benchmarks also use.
func tortureHistorySize(t testing.TB) int {
	if testing.Short() {
		return 1000
	}
	return 10000
}

// buildTortureLog appends n one-sample datasets (interleaved with periodic
// platform snapshots) into dir across many small segments, and returns the
// appended dataset IDs in order. Per-append fsync is off — torture injects
// its own damage; it does not need the real thing to be slow.
func buildTortureLog(t testing.TB, dir string, n int) []uint64 {
	t.Helper()
	l, err := Open(dir, Options{SegmentTargetBytes: 64 << 10, NoSyncEachAppend: true, AutoCompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		id, err := l.AppendDataset(fmt.Sprintf("d%d", i), testSet(i, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if i%512 == 511 {
			if err := l.SavePlatform([]byte(fmt.Sprintf("snap-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// verifyPrefixOrLoud is the torture postcondition: after arbitrary damage,
// opening the log must either fail loudly with segment/offset context, or
// succeed with a consistent prefix of the original history and accurate
// dropped-record accounting. Silent corruption — success with a gap, a
// reordering, or an unaccounted drop — is the one forbidden outcome.
// It returns "loud" or "recovered" for outcome bookkeeping.
func verifyPrefixOrLoud(t *testing.T, dir string, ids []uint64, sizeBefore, sizeAfter int64) string {
	t.Helper()
	l, err := Open(dir, Options{SegmentTargetBytes: 64 << 10})
	if err != nil {
		var ce *CorruptionError
		if errors.As(err, &ce) {
			if ce.Segment == "" || ce.Reason == "" {
				t.Fatalf("corruption error without context: %+v", ce)
			}
			return "loud"
		}
		// Non-corruption open errors are acceptable only when they name the
		// damage (manifest errors carry the directory and cause).
		if !strings.Contains(err.Error(), dir) && !strings.Contains(err.Error(), "seglog") {
			t.Fatalf("open failed without context: %v", err)
		}
		return "loud"
	}
	defer l.Close()

	metas, err := l.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) > len(ids) {
		t.Fatalf("recovered %d datasets from a %d-dataset history", len(metas), len(ids))
	}
	for i, m := range metas {
		if m.ID != ids[i] {
			t.Fatalf("recovered dataset %d has ID %d, want prefix ID %d — not a consistent prefix", i, m.ID, ids[i])
		}
	}
	rec := l.Stats().Recovery
	if len(metas) < len(ids) && !rec.TornTail {
		t.Fatalf("lost %d datasets with no torn-tail accounting: %+v", len(ids)-len(metas), rec)
	}
	if rec.TornTail {
		if rec.DroppedRecords < 1 || rec.DroppedBytes < 1 || rec.File == "" {
			t.Fatalf("torn tail with empty accounting: %+v", rec)
		}
		if rec.DroppedBytes > sizeAfter {
			t.Fatalf("dropped %d bytes from a %d-byte damaged file", rec.DroppedBytes, sizeAfter)
		}
	}
	return "recovered"
}

// segmentFiles lists the log's segment files in manifest order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m.Segments
}

// TestTortureInjectors drives every fault injector against random positions
// of a large multi-segment history and checks the prefix-or-loud
// postcondition each time.
func TestTortureInjectors(t *testing.T) {
	n := tortureHistorySize(t)
	master := t.TempDir()
	ids := buildTortureLog(t, master, n)

	trials := 8
	if testing.Short() {
		trials = 4
	}
	rng := mat.NewRNG(1312)
	injectors := []struct {
		name   string
		inject func(t *testing.T, path string, size int64)
	}{
		{"tear", func(t *testing.T, path string, size int64) {
			if err := fault.TearFile(path, 0.1+0.8*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-byte", func(t *testing.T, path string, size int64) {
			if err := fault.CorruptFileByte(path, int64(rng.Uint64()%uint64(size))); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate-at", func(t *testing.T, path string, size int64) {
			if err := fault.TruncateAt(path, int64(rng.Uint64()%uint64(size))); err != nil {
				t.Fatal(err)
			}
		}},
		{"duplicate-tail", func(t *testing.T, path string, size int64) {
			if err := fault.DuplicateTail(path, 1+int64(rng.Uint64()%uint64(size))); err != nil {
				t.Fatal(err)
			}
		}},
	}

	outcomes := map[string]int{}
	for _, inj := range injectors {
		inj := inj
		t.Run(inj.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				dir := copyDir(t, master)
				segs := segmentFiles(t, dir)
				// Aim half the trials at the active segment (where lenient
				// recovery applies), half anywhere.
				var target string
				if trial%2 == 0 {
					target = segs[len(segs)-1]
				} else {
					target = segs[rng.Intn(len(segs))]
				}
				path := filepath.Join(dir, target)
				info, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if info.Size() == 0 {
					continue
				}
				inj.inject(t, path, info.Size())
				after, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				out := verifyPrefixOrLoud(t, dir, ids, info.Size(), after.Size())
				outcomes[inj.name+"/"+out]++
			}
		})
	}
	t.Logf("torture outcomes: %v", outcomes)
}

// TestTortureCompactionCrash kills a compaction of the large history (half
// the datasets removed) at every stage and checks each crash state recovers
// the exact live set.
func TestTortureCompactionCrash(t *testing.T) {
	n := tortureHistorySize(t)
	master := t.TempDir()
	ids := buildTortureLog(t, master, n)

	l, err := Open(master, Options{SegmentTargetBytes: 64 << 10, NoSyncEachAppend: true, AutoCompactRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(7707)
	removed := map[uint64]bool{}
	for _, id := range ids {
		if rng.Float64() < 0.5 {
			if err := l.RemoveDataset(id); err != nil {
				t.Fatal(err)
			}
			removed[id] = true
		}
	}
	var want []uint64
	for _, id := range ids {
		if !removed[id] {
			want = append(want, id)
		}
	}

	crashes := map[string]string{}
	l.SetCompactionHook(func(stage string) {
		crashes[stage] = copyDir(t, master)
	})
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, stage := range []string{"segments-written", "manifest-swapped", "old-segments-deleted"} {
		dir, ok := crashes[stage]
		if !ok {
			t.Fatalf("compaction never reached stage %s", stage)
		}
		l2, err := Open(dir, Options{SegmentTargetBytes: 64 << 10})
		if err != nil {
			t.Fatalf("crash at %s: %v", stage, err)
		}
		metas, err := l2.Datasets()
		if err != nil {
			t.Fatal(err)
		}
		if len(metas) != len(want) {
			t.Fatalf("crash at %s: %d datasets recovered, want %d", stage, len(metas), len(want))
		}
		for i, m := range metas {
			if m.ID != want[i] {
				t.Fatalf("crash at %s: dataset %d has ID %d, want %d", stage, i, m.ID, want[i])
			}
		}
		l2.Close()
	}
}
