// Package seglog implements the lake's append-only segment-log inventory
// backend: every mutation (dataset arrival, dataset removal, platform
// snapshot) is one CRC-framed record appended to the active segment file,
// segments rotate at a size target, a manifest names the live segments, and
// background compaction folds dead records (removed datasets, superseded
// platform snapshots) into fresh segments — crash-safely at every step.
//
// The record frame reuses the shape of the internal/nn snapshot header
// (magic, version, length, CRC32 — see nn/snapshot.go), so the same class
// of damage is rejected the same way across the repository:
//
//	offset  size  field
//	0       6     magic "ENLDSG"
//	6       2     format version, big-endian uint16
//	8       8     payload length, big-endian uint64
//	16      4     CRC-32 (IEEE) of the payload, big-endian uint32
//	20      n     gob-encoded record payload
//
// Recovery is lenient exactly once, at the tail of the final segment: a
// record truncated by a torn append, or a corrupted record that is the last
// frame of the log, is dropped and counted. Corruption anywhere else —
// interior records, sealed segments, bad magic, out-of-order sequence
// numbers — fails loudly with segment and byte-offset context, because a
// damaged interior is not a crash artifact and replay must not paper over
// it.
package seglog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"enld/internal/dataset"
)

const (
	recordMagic   = "ENLDSG"
	recordVersion = 1
	headerSize    = len(recordMagic) + 2 + 8 + 4
	// maxRecordBytes bounds the declared payload length so a corrupted or
	// hostile header cannot drive a huge allocation.
	maxRecordBytes = 1 << 30
)

// recordKind tags what a record mutates.
type recordKind uint8

const (
	// kindDataset appends an incremental dataset arrival.
	kindDataset recordKind = 1
	// kindPlatform replaces the platform snapshot.
	kindPlatform recordKind = 2
	// kindRemove tombstones a dataset.
	kindRemove recordKind = 3
)

// record is the gob payload of one frame. Every record carries a
// log-unique, strictly increasing sequence number; recovery rejects
// regressions (a duplicated or replayed frame) loudly.
type record struct {
	Seq  uint64
	Kind recordKind
	// ID is the dataset ID for kindDataset and kindRemove.
	ID   uint64
	Name string
	// Samples carries the dataset of a kindDataset record.
	Samples dataset.Set
	// Snapshot carries the platform blob of a kindPlatform record.
	Snapshot []byte
}

// encodeRecord renders rec as one framed record.
func encodeRecord(rec record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("seglog: encode record seq %d: %w", rec.Seq, err)
	}
	out := make([]byte, headerSize, headerSize+payload.Len())
	copy(out, recordMagic)
	binary.BigEndian.PutUint16(out[6:], recordVersion)
	binary.BigEndian.PutUint64(out[8:], uint64(payload.Len()))
	binary.BigEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// recordAt pairs a decoded record with its frame position.
type recordAt struct {
	rec record
	// off is the frame's byte offset in its segment; size its framed
	// length (header + payload).
	off  int64
	size int64
}

// SegmentScan reports what reading one segment found beyond the records
// themselves.
type SegmentScan struct {
	// Records is the count of intact records.
	Records int
	// LiveEnd is the byte offset one past the last intact record — the
	// truncation point a lenient recovery restores the segment to.
	LiveEnd int64
	// TornTail reports that a damaged tail was dropped (lenient scans
	// only).
	TornTail bool
	// DroppedRecords and DroppedBytes account for the dropped tail: the
	// byte count is exact, the record count is the number of frames
	// definitely present in the dropped region (at least 1).
	DroppedRecords int
	DroppedBytes   int64
	// DroppedAt is the byte offset the damage started at.
	DroppedAt int64
}

// CorruptionError is a hard recovery failure: structural damage at a known
// position that leniency must not absorb.
type CorruptionError struct {
	Segment string
	Offset  int64
	Reason  string
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("seglog: segment %s: corrupt record at offset %d: %s", e.Segment, e.Offset, e.Reason)
}

// errTornFrame tags a frame whose damage is consistent with a torn append:
// the distinction between "drop leniently" and "fail loudly".
var errTornFrame = errors.New("torn frame")

// readFrame decodes the frame at data[off:]. A frame that is structurally
// torn (incomplete header, or payload shorter than declared) or that is the
// final frame with a checksum/decode failure returns errTornFrame; other
// damage returns a *CorruptionError.
func readFrame(segment string, data []byte, off int64) (record, int64, error) {
	rem := int64(len(data)) - off
	if rem < int64(headerSize) {
		return record{}, 0, fmt.Errorf("%w: %d trailing bytes, need %d for a header", errTornFrame, rem, headerSize)
	}
	hdr := data[off:]
	if string(hdr[:len(recordMagic)]) != recordMagic {
		return record{}, 0, &CorruptionError{Segment: segment, Offset: off, Reason: "bad magic"}
	}
	if v := binary.BigEndian.Uint16(hdr[6:]); v != recordVersion {
		return record{}, 0, &CorruptionError{Segment: segment, Offset: off,
			Reason: fmt.Sprintf("unsupported record version %d (this build reads version %d)", v, recordVersion)}
	}
	plen := binary.BigEndian.Uint64(hdr[8:])
	if plen > maxRecordBytes {
		return record{}, 0, &CorruptionError{Segment: segment, Offset: off,
			Reason: fmt.Sprintf("declared payload size %d exceeds the %d-byte limit", plen, int64(maxRecordBytes))}
	}
	size := int64(headerSize) + int64(plen)
	if rem < size {
		return record{}, 0, fmt.Errorf("%w: frame declares %d payload bytes, only %d present", errTornFrame, plen, rem-int64(headerSize))
	}
	payload := data[off+int64(headerSize) : off+size]
	final := off+size == int64(len(data))
	if want, got := binary.BigEndian.Uint32(hdr[16:]), crc32.ChecksumIEEE(payload); got != want {
		reason := fmt.Sprintf("checksum mismatch (header %08x, payload %08x)", want, got)
		if final {
			return record{}, 0, fmt.Errorf("%w: final frame %s", errTornFrame, reason)
		}
		return record{}, 0, &CorruptionError{Segment: segment, Offset: off, Reason: reason}
	}
	var rec record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		reason := fmt.Sprintf("payload decode: %v", err)
		if final {
			return record{}, 0, fmt.Errorf("%w: final frame %s", errTornFrame, reason)
		}
		return record{}, 0, &CorruptionError{Segment: segment, Offset: off, Reason: reason}
	}
	return rec, size, nil
}

// readSegment scans every frame of one segment image. With lenientTail a
// torn or corrupted final frame is dropped and accounted in the scan;
// without it (sealed segments) any damage is a *CorruptionError. The
// returned records carry their frame offsets for dead-byte accounting.
func readSegment(segment string, data []byte, lenientTail bool) ([]recordAt, SegmentScan, error) {
	var recs []recordAt
	var scan SegmentScan
	off := int64(0)
	for off < int64(len(data)) {
		rec, size, err := readFrame(segment, data, off)
		if err != nil {
			if errors.Is(err, errTornFrame) && lenientTail {
				scan.TornTail = true
				scan.DroppedRecords = 1
				scan.DroppedBytes = int64(len(data)) - off
				scan.DroppedAt = off
				break
			}
			var ce *CorruptionError
			if errors.As(err, &ce) {
				return recs, scan, ce
			}
			// A torn frame in a sealed segment: sealed segments are
			// immutable after rotation, so a short tail there is not a
			// crash artifact.
			return recs, scan, &CorruptionError{Segment: segment, Offset: off, Reason: err.Error()}
		}
		recs = append(recs, recordAt{rec: rec, off: off, size: size})
		off += size
		scan.Records++
		scan.LiveEnd = off
	}
	return recs, scan, nil
}
