package seglog

import (
	"time"

	"enld/internal/obs"
)

// logObs holds the log's pre-interned metric handles.
type logObs struct {
	appendSeconds     *obs.Histogram
	compactionSeconds *obs.Histogram
	segments          *obs.Gauge
	liveBytes         *obs.Gauge
	deadBytes         *obs.Gauge
	droppedRecords    *obs.Counter
}

// storageBuckets spans append latencies (dominated by the per-append fsync,
// tens of microseconds to tens of milliseconds on spinning disks) up to
// whole-log compaction times.
var storageBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10}

// SetObs attaches an observability registry to the log: append and
// compaction latency histograms, segment-count and live/dead-byte gauges,
// and a counter of records dropped by torn-tail recovery. Gauges are primed
// from current state (including the recovery stats of the open that built
// this log). A nil registry detaches.
func (l *Log) SetObs(reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if reg == nil {
		l.obs = nil
		return
	}
	l.obs = &logObs{
		appendSeconds: reg.Histogram("enld_storage_append_seconds",
			"Latency of one durable segment-log append (fsync included).", storageBuckets),
		compactionSeconds: reg.Histogram("enld_storage_compaction_seconds",
			"Wall-clock duration of one segment-log compaction.", storageBuckets),
		segments: reg.Gauge("enld_storage_segments",
			"Segment files currently named by the segment-log manifest."),
		liveBytes: reg.Gauge("enld_storage_live_bytes",
			"Bytes of live (reachable) records in the segment log."),
		deadBytes: reg.Gauge("enld_storage_dead_bytes",
			"Bytes of dead (compactable) records in the segment log."),
		droppedRecords: reg.Counter("enld_storage_recovery_dropped_records_total",
			"Records dropped by lenient torn-tail recovery at open."),
	}
	l.obs.segments.Set(float64(len(l.segments)))
	l.obs.liveBytes.Set(float64(l.liveBytes))
	l.obs.deadBytes.Set(float64(l.deadBytes))
	l.obs.droppedRecords.Add(uint64(l.recovery.DroppedRecords))
}

// recordAppend files one append's latency. Nil-safe.
func (o *logObs) recordAppend(d time.Duration) {
	if o == nil {
		return
	}
	o.appendSeconds.Observe(d.Seconds())
}

// recordCompaction files one compaction's duration. Nil-safe.
func (o *logObs) recordCompaction(d time.Duration) {
	if o == nil {
		return
	}
	o.compactionSeconds.Observe(d.Seconds())
}

// setSegments updates the segment-count gauge. Nil-safe.
func (o *logObs) setSegments(n int) {
	if o == nil {
		return
	}
	o.segments.Set(float64(n))
}

// updateObsGauges refreshes the byte gauges from current state. Callers
// hold the mutex.
func (l *Log) updateObsGauges() {
	if l.obs == nil {
		return
	}
	l.obs.segments.Set(float64(len(l.segments)))
	l.obs.liveBytes.Set(float64(l.liveBytes))
	l.obs.deadBytes.Set(float64(l.deadBytes))
}
