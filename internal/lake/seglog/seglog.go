package seglog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"enld/internal/dataset"
	"enld/internal/fsio"
	"enld/internal/lake"
)

// Options tunes a Log. The zero value is production-ready.
type Options struct {
	// SegmentTargetBytes rotates the active segment once it reaches this
	// size (default 4 MiB). Records are never split: a segment holds at
	// least one record however large.
	SegmentTargetBytes int64
	// NoSyncEachAppend skips the per-append fsync, leaving durability to
	// segment rotation and Close. Crash-window appends may then be lost
	// (but never corrupt the log — the torn tail is dropped on recovery).
	// For benchmarks and bulk loads; leave false in production.
	NoSyncEachAppend bool
	// AutoCompactRatio starts a background compaction when dead bytes
	// exceed this fraction of the log (default 0.5; negative disables).
	AutoCompactRatio float64
	// AutoCompactMinBytes is the dead-byte floor below which auto
	// compaction never triggers (default 1 MiB), so small logs don't churn.
	AutoCompactMinBytes int64
}

func (o Options) withDefaults() Options {
	if o.SegmentTargetBytes <= 0 {
		o.SegmentTargetBytes = 4 << 20
	}
	if o.AutoCompactRatio == 0 {
		o.AutoCompactRatio = 0.5
	}
	if o.AutoCompactMinBytes <= 0 {
		o.AutoCompactMinBytes = 1 << 20
	}
	return o
}

// datasetEntry is the in-memory index of one live dataset.
type datasetEntry struct {
	name    string
	samples dataset.Set
	// seq is the record's sequence number; bytes its framed size, counted
	// dead when the dataset is removed.
	seq   uint64
	bytes int64
}

// Log is the append-only segment-log inventory. It implements
// lake.Inventory. All samples are additionally indexed in memory (like the
// other backends — the log is the durability layer, not an out-of-core
// store), so reads never touch disk. It is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	closed bool

	// manifest state (mirrored on disk).
	segments   []string
	nextSeg    uint64
	nextSeq    uint64
	nextID     uint64
	sealedSize map[string]int64 // sealed segment name → byte size

	// active segment.
	active     *os.File
	activeName string
	activeSize int64

	// live state.
	order    []uint64
	datasets map[uint64]datasetEntry
	platform []byte
	// platformSeq/platformBytes locate the live platform record for
	// dead-byte accounting when it is superseded.
	platformSeq   uint64
	platformBytes int64

	liveBytes int64
	deadBytes int64

	appends     uint64
	compactions uint64
	recovery    lake.RecoveryStats
	// straysRemoved counts crash artifacts swept at open.
	straysRemoved int

	// compactPending dedups background compaction triggers; compactWG
	// tracks the in-flight goroutine so Close can wait for it.
	compactPending bool
	compactWG      sync.WaitGroup
	// compactHook, when set by tests, is called at each named stage of a
	// compaction so crash states can be captured between stages.
	compactHook func(stage string)

	obs *logObs
}

// Open opens (or creates) a segment log in dir. Recovery reads every
// manifest-named segment, drops and counts a torn tail on the active
// segment, fails loudly on interior corruption, and sweeps stray files left
// by a crashed rotation or compaction.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("seglog: open %s: %w", dir, err)
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		datasets:   make(map[uint64]datasetEntry),
		sealedSize: make(map[string]int64),
	}

	m, err := readManifest(dir)
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		if m, err = initFresh(dir); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	l.segments = append([]string(nil), m.Segments...)
	l.nextSeg = m.NextSegment
	l.nextSeq = m.MinNextSeq
	l.nextID = m.MinNextDatasetID
	if l.nextSeq == 0 {
		l.nextSeq = 1
	}
	if l.nextID == 0 {
		l.nextID = 1
	}

	if err := l.recover(); err != nil {
		return nil, err
	}

	// Sweep crash artifacts only after recovery committed to this manifest
	// view, so a failed open never deletes anything.
	if l.straysRemoved, err = sweepStrays(dir, m); err != nil {
		l.closeFiles()
		return nil, err
	}
	return l, nil
}

// initFresh initializes an empty log directory: first the initial segment
// file, then the manifest naming it. A crash between the two leaves an
// empty stray segment and no manifest, which the next Open recognizes and
// redoes; non-empty segments without a manifest are refused loudly (that is
// data loss from outside interference, not a crash artifact).
func initFresh(dir string) (manifest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return manifest{}, fmt.Errorf("seglog: open %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".log" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return manifest{}, fmt.Errorf("seglog: open %s: %w", dir, err)
		}
		if info.Size() > 0 {
			return manifest{}, fmt.Errorf("seglog: %s has segment %s but no manifest; refusing to initialize over existing data", dir, e.Name())
		}
	}
	first := segmentFileName(1)
	f, err := os.OpenFile(filepath.Join(dir, first), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return manifest{}, fmt.Errorf("seglog: init %s: %w", dir, err)
	}
	if err := f.Close(); err != nil {
		return manifest{}, fmt.Errorf("seglog: init %s: %w", dir, err)
	}
	fsio.SyncDir(dir)
	m := manifest{
		Segments:         []string{first},
		NextSegment:      2,
		MinNextSeq:       1,
		MinNextDatasetID: 1,
	}
	if err := writeManifest(dir, m); err != nil {
		return manifest{}, err
	}
	return m, nil
}

// recover replays every manifest-named segment into the in-memory state and
// reopens the active segment for appending, truncated past any dropped
// tail.
func (l *Log) recover() error {
	lastSeq := uint64(0)
	for i, name := range l.segments {
		path := filepath.Join(l.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("seglog: recover %s: manifest names segment %s: %w", l.dir, name, err)
		}
		isActive := i == len(l.segments)-1
		recs, scan, err := readSegment(name, data, isActive)
		if err != nil {
			return err
		}
		for _, ra := range recs {
			if ra.rec.Seq <= lastSeq {
				return &CorruptionError{Segment: name, Offset: ra.off,
					Reason: fmt.Sprintf("sequence regression: %d after %d (duplicated or reordered record)", ra.rec.Seq, lastSeq)}
			}
			lastSeq = ra.rec.Seq
			if err := l.apply(ra, name); err != nil {
				return err
			}
		}
		if isActive {
			if scan.TornTail {
				l.recovery = lake.RecoveryStats{
					TornTail:       true,
					DroppedRecords: scan.DroppedRecords,
					DroppedBytes:   scan.DroppedBytes,
					Offset:         scan.DroppedAt,
					File:           name,
				}
				// Make the drop physical before appending anything.
				if err := os.Truncate(path, scan.LiveEnd); err != nil {
					return fmt.Errorf("seglog: recover %s: truncating torn tail of %s: %w", l.dir, name, err)
				}
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("seglog: recover %s: reopening active segment: %w", l.dir, err)
			}
			l.active = f
			l.activeName = name
			l.activeSize = scan.LiveEnd
		} else {
			l.sealedSize[name] = int64(len(data))
		}
	}
	if lastSeq >= l.nextSeq {
		l.nextSeq = lastSeq + 1
	}
	return nil
}

// apply folds one recovered record into the in-memory state.
func (l *Log) apply(ra recordAt, segment string) error {
	rec := ra.rec
	switch rec.Kind {
	case kindDataset:
		if _, dup := l.datasets[rec.ID]; dup {
			return &CorruptionError{Segment: segment, Offset: ra.off,
				Reason: fmt.Sprintf("dataset %d appended twice", rec.ID)}
		}
		l.datasets[rec.ID] = datasetEntry{name: rec.Name, samples: rec.Samples, seq: rec.Seq, bytes: ra.size}
		l.order = append(l.order, rec.ID)
		l.liveBytes += ra.size
		if rec.ID >= l.nextID {
			l.nextID = rec.ID + 1
		}
	case kindRemove:
		ent, ok := l.datasets[rec.ID]
		if !ok {
			return &CorruptionError{Segment: segment, Offset: ra.off,
				Reason: fmt.Sprintf("tombstone for unknown dataset %d", rec.ID)}
		}
		delete(l.datasets, rec.ID)
		for i, id := range l.order {
			if id == rec.ID {
				l.order = append(l.order[:i], l.order[i+1:]...)
				break
			}
		}
		// The removed dataset's record and the tombstone itself are both
		// dead weight now.
		l.liveBytes -= ent.bytes
		l.deadBytes += ent.bytes + ra.size
		if rec.ID >= l.nextID {
			l.nextID = rec.ID + 1
		}
	case kindPlatform:
		if l.platform != nil {
			l.deadBytes += l.platformBytes
		}
		l.platform = rec.Snapshot
		l.platformSeq = rec.Seq
		l.liveBytes += ra.size - l.platformBytes
		l.platformBytes = ra.size
	default:
		return &CorruptionError{Segment: segment, Offset: ra.off,
			Reason: fmt.Sprintf("unknown record kind %d", rec.Kind)}
	}
	return nil
}

// closeFiles releases the active segment handle (recovery-failure path).
func (l *Log) closeFiles() {
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
}

// appendRecord frames rec, assigns its sequence number, rotates the active
// segment if it is full, writes and (by default) fsyncs. Callers hold the
// mutex. On a write failure the segment is truncated back so a half-written
// frame never survives into the next append.
func (l *Log) appendRecord(rec record) (recordAt, error) {
	if l.closed {
		return recordAt{}, lake.ErrInventoryClosed
	}
	began := time.Now()
	rec.Seq = l.nextSeq
	frame, err := encodeRecord(rec)
	if err != nil {
		return recordAt{}, err
	}
	if l.activeSize > 0 && l.activeSize+int64(len(frame)) > l.opts.SegmentTargetBytes {
		if err := l.rotate(); err != nil {
			return recordAt{}, err
		}
	}
	off := l.activeSize
	if _, err := l.active.Write(frame); err != nil {
		// Cut the possibly half-written frame off; if even that fails the
		// next open's lenient tail read drops it.
		l.active.Truncate(off)
		return recordAt{}, fmt.Errorf("seglog: append to %s: %w", l.activeName, err)
	}
	if !l.opts.NoSyncEachAppend {
		if err := l.active.Sync(); err != nil {
			return recordAt{}, fmt.Errorf("seglog: append to %s: %w", l.activeName, err)
		}
	}
	l.activeSize += int64(len(frame))
	l.nextSeq++
	l.appends++
	l.obs.recordAppend(time.Since(began))
	return recordAt{rec: rec, off: off, size: int64(len(frame))}, nil
}

// rotate seals the active segment and starts the next one: fsync + close
// the old file, create the new one, then commit it with a manifest update.
// A crash between file creation and manifest write leaves a stray the next
// open sweeps.
func (l *Log) rotate() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("seglog: rotate %s: %w", l.activeName, err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("seglog: rotate %s: %w", l.activeName, err)
	}
	l.sealedSize[l.activeName] = l.activeSize

	name := segmentFileName(l.nextSeg)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: rotate: create %s: %w", name, err)
	}
	fsio.SyncDir(l.dir)
	m := manifest{
		Segments:         append(append([]string(nil), l.segments...), name),
		NextSegment:      l.nextSeg + 1,
		MinNextSeq:       l.nextSeq,
		MinNextDatasetID: l.nextID,
	}
	if err := writeManifest(l.dir, m); err != nil {
		f.Close()
		os.Remove(filepath.Join(l.dir, name))
		return err
	}
	l.segments = m.Segments
	l.nextSeg = m.NextSegment
	l.active = f
	l.activeName = name
	l.activeSize = 0
	l.obs.setSegments(len(l.segments))
	return nil
}

// AppendDataset implements lake.Inventory.
func (l *Log) AppendDataset(name string, set dataset.Set) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, lake.ErrInventoryClosed
	}
	id := l.nextID
	clone := set.Clone()
	ra, err := l.appendRecord(record{Kind: kindDataset, ID: id, Name: name, Samples: clone})
	if err != nil {
		return 0, err
	}
	l.nextID = id + 1
	l.datasets[id] = datasetEntry{name: name, samples: clone, seq: ra.rec.Seq, bytes: ra.size}
	l.order = append(l.order, id)
	l.liveBytes += ra.size
	l.updateObsGauges()
	l.maybeCompact()
	return id, nil
}

// Datasets implements lake.Inventory.
func (l *Log) Datasets() ([]lake.DatasetMeta, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]lake.DatasetMeta, 0, len(l.order))
	for _, id := range l.order {
		ent := l.datasets[id]
		out = append(out, lake.DatasetMeta{ID: id, Name: ent.name, Size: len(ent.samples)})
	}
	return out, nil
}

// LoadDataset implements lake.Inventory.
func (l *Log) LoadDataset(id uint64) (dataset.Set, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ent, ok := l.datasets[id]
	if !ok {
		return nil, fmt.Errorf("seglog: no dataset %d", id)
	}
	return ent.samples.Clone(), nil
}

// RemoveDataset implements lake.Inventory.
func (l *Log) RemoveDataset(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return lake.ErrInventoryClosed
	}
	ent, ok := l.datasets[id]
	if !ok {
		return fmt.Errorf("seglog: no dataset %d", id)
	}
	ra, err := l.appendRecord(record{Kind: kindRemove, ID: id})
	if err != nil {
		return err
	}
	delete(l.datasets, id)
	for i, v := range l.order {
		if v == id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	l.liveBytes -= ent.bytes
	l.deadBytes += ent.bytes + ra.size
	l.updateObsGauges()
	l.maybeCompact()
	return nil
}

// SavePlatform implements lake.Inventory.
func (l *Log) SavePlatform(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return lake.ErrInventoryClosed
	}
	clone := append([]byte(nil), snapshot...)
	ra, err := l.appendRecord(record{Kind: kindPlatform, Snapshot: clone})
	if err != nil {
		return err
	}
	if l.platform != nil {
		l.deadBytes += l.platformBytes
	}
	l.platform = clone
	l.platformSeq = ra.rec.Seq
	l.liveBytes += ra.size - l.platformBytes
	l.platformBytes = ra.size
	l.updateObsGauges()
	l.maybeCompact()
	return nil
}

// LoadPlatform implements lake.Inventory.
func (l *Log) LoadPlatform() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.platform == nil {
		return nil, lake.ErrNoSnapshot
	}
	return append([]byte(nil), l.platform...), nil
}

// Stats implements lake.Inventory.
func (l *Log) Stats() lake.InventoryStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := lake.InventoryStats{
		Backend:     "seglog",
		Datasets:    len(l.order),
		HasPlatform: l.platform != nil,
		Segments:    len(l.segments),
		LiveBytes:   l.liveBytes,
		DeadBytes:   l.deadBytes,
		Appends:     l.appends,
		Compactions: l.compactions,
		Recovery:    l.recovery,
	}
	for _, id := range l.order {
		st.Samples += len(l.datasets[id].samples)
	}
	return st
}

// StraysRemoved reports how many crash artifacts (stray segments, manifest
// temporaries) the opening sweep removed.
func (l *Log) StraysRemoved() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.straysRemoved
}

// Close waits for any in-flight compaction, fsyncs and closes the active
// segment. Mutations after Close return lake.ErrInventoryClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	// Wait with the lock released: the compaction goroutine needs it.
	l.compactWG.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	if err != nil {
		return fmt.Errorf("seglog: close %s: %w", l.dir, err)
	}
	return nil
}

// SetCompactionHook installs fn to be called at each named compaction
// stage ("segments-written", "manifest-swapped", "old-segments-deleted"),
// each reached with the stage's files fsync'd — the seam crash-recovery
// tests use to capture mid-compaction disk states. Nil removes the hook.
// The hook runs with the log mutex held; it must not call back into the
// log.
func (l *Log) SetCompactionHook(fn func(stage string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactHook = fn
}

// liveRecords returns every live record in sequence order — the compaction
// working set. Callers hold the mutex.
func (l *Log) liveRecords() []record {
	out := make([]record, 0, len(l.order)+1)
	for id, ent := range l.datasets {
		out = append(out, record{Seq: ent.seq, Kind: kindDataset, ID: id, Name: ent.name, Samples: ent.samples})
	}
	if l.platform != nil {
		out = append(out, record{Seq: l.platformSeq, Kind: kindPlatform, Snapshot: l.platform})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
