package seglog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"enld/internal/fsio"
)

// manifestName is the manifest's file name inside the log directory.
const manifestName = "MANIFEST"

// manifest names the live segment files in order and carries the counters
// that only the manifest can make durable: compaction folds records away,
// so the maximum dataset ID and sequence number seen in the segments can
// regress across a compaction — the manifest floors both so IDs and
// sequence numbers are never reused.
//
// The manifest is the log's commit point: it is only ever replaced
// atomically (tmp+fsync+rename), and a segment file not named by it does
// not exist as far as recovery is concerned. That single rule is what makes
// rotation and compaction crash-safe — at every instant the manifest on
// disk names one consistent set of segments.
type manifest struct {
	Version int `json:"version"`
	// Segments lists live segment file names, oldest first; the last one
	// is the active (appendable) segment.
	Segments []string `json:"segments"`
	// NextSegment is the number the next created segment file will take.
	// Segment numbers are never reused, so stray files from a crashed
	// rotation or compaction can always be told apart from live ones.
	NextSegment uint64 `json:"next_segment"`
	// MinNextSeq floors the next record sequence number.
	MinNextSeq uint64 `json:"min_next_seq"`
	// MinNextDatasetID floors the next dataset ID.
	MinNextDatasetID uint64 `json:"min_next_dataset_id"`
}

const manifestVersion = 1

// writeManifest atomically replaces the manifest in dir.
func writeManifest(dir string, m manifest) error {
	m.Version = manifestVersion
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("seglog: encode manifest: %w", err)
	}
	if err := fsio.WriteFileBytesAtomic(filepath.Join(dir, manifestName), append(data, '\n')); err != nil {
		return fmt.Errorf("seglog: write manifest: %w", err)
	}
	return nil
}

// readManifest loads the manifest from dir. A missing manifest returns
// os.ErrNotExist; a malformed one is a loud error (the atomic writer never
// leaves a torn manifest, so damage is not a crash artifact).
func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("seglog: corrupt manifest in %s: %w", dir, err)
	}
	if m.Version != manifestVersion {
		return manifest{}, fmt.Errorf("seglog: manifest in %s has version %d (this build reads version %d)", dir, m.Version, manifestVersion)
	}
	if len(m.Segments) == 0 {
		return manifest{}, fmt.Errorf("seglog: manifest in %s names no segments", dir)
	}
	seen := make(map[string]bool, len(m.Segments))
	for _, name := range m.Segments {
		if filepath.Base(name) != name || filepath.Ext(name) != ".log" {
			return manifest{}, fmt.Errorf("seglog: manifest in %s names invalid segment %q", dir, name)
		}
		if seen[name] {
			return manifest{}, fmt.Errorf("seglog: manifest in %s names segment %q twice", dir, name)
		}
		seen[name] = true
	}
	return m, nil
}

// segmentFileName renders the canonical name of segment n.
func segmentFileName(n uint64) string {
	return fmt.Sprintf("seg-%08d.log", n)
}

// sweepStrays removes files in dir that look like log artifacts but are not
// named by the manifest: segments written by a crashed rotation or
// compaction, manifest temporaries from a crashed atomic write. It returns
// how many files it removed. Unknown files are left alone.
func sweepStrays(dir string, m manifest) (int, error) {
	live := make(map[string]bool, len(m.Segments)+1)
	for _, name := range m.Segments {
		live[name] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("seglog: sweep %s: %w", dir, err)
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || live[name] || name == manifestName {
			continue
		}
		stray := (filepath.Ext(name) == ".log" && len(name) == len(segmentFileName(0))) ||
			matchesTempPattern(name)
		if !stray {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, fmt.Errorf("seglog: sweep %s: %w", dir, err)
		}
		removed++
	}
	if removed > 0 {
		fsio.SyncDir(dir)
	}
	return removed, nil
}

// matchesTempPattern reports whether name looks like an fsio atomic-write
// temporary (MANIFEST.tmp-* or seg-*.log.tmp-*).
func matchesTempPattern(name string) bool {
	ok, _ := filepath.Match(manifestName+".tmp-*", name)
	if ok {
		return true
	}
	ok, _ = filepath.Match("seg-*.log.tmp-*", name)
	return ok
}
