package seglog

import (
	"testing"
)

// benchAppend measures one durable dataset append (8 samples per record).
func benchAppend(b *testing.B, opts Options) {
	l, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	set := testSet(0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendDataset("bench", set); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeglogAppend is the storage hot path the CI gate tracks: the
// nosync variant measures framing + write + in-memory indexing (the code
// the log adds over the filesystem); the fsync variant adds the per-append
// durability barrier and is dominated by the disk, so it stays ungated.
func BenchmarkSeglogAppend(b *testing.B) {
	b.Run("nosync", func(b *testing.B) {
		benchAppend(b, Options{NoSyncEachAppend: true, AutoCompactRatio: -1})
	})
	b.Run("fsync", func(b *testing.B) {
		benchAppend(b, Options{AutoCompactRatio: -1})
	})
}

// BenchmarkSeglogRecovery10k measures a full open — manifest read, segment
// replay, index rebuild — of a 10k-dataset history, the recovery-time
// budget the CI gate tracks.
func BenchmarkSeglogRecovery10k(b *testing.B) {
	dir := b.TempDir()
	ids := buildTortureLog(b, dir, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, Options{SegmentTargetBytes: 64 << 10})
		if err != nil {
			b.Fatal(err)
		}
		if got := l.Stats().Datasets; got != len(ids) {
			b.Fatalf("recovered %d datasets, want %d", got, len(ids))
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeglogCompact10k measures compacting the 10k-dataset history
// with half its records dead. Informational (not gated): compaction is a
// background amortized cost.
func BenchmarkSeglogCompact10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		ids := buildTortureLog(b, dir, 10000)
		l, err := Open(dir, Options{SegmentTargetBytes: 64 << 10, NoSyncEachAppend: true, AutoCompactRatio: -1})
		if err != nil {
			b.Fatal(err)
		}
		for j, id := range ids {
			if j%2 == 0 {
				if err := l.RemoveDataset(id); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StartTimer()
		if err := l.Compact(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		l.Close()
		b.StartTimer()
	}
}
