package seglog

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"enld/internal/fsio"
	"enld/internal/lake"
)

// maybeCompact schedules a background compaction when the dead-byte ratio
// crosses the configured threshold. Callers hold the mutex. At most one
// compaction is pending or running at a time.
func (l *Log) maybeCompact() {
	if l.compactPending || l.closed || l.opts.AutoCompactRatio < 0 {
		return
	}
	if l.deadBytes < l.opts.AutoCompactMinBytes {
		return
	}
	total := l.liveBytes + l.deadBytes
	if total == 0 || float64(l.deadBytes)/float64(total) < l.opts.AutoCompactRatio {
		return
	}
	l.compactPending = true
	l.compactWG.Add(1)
	go func() {
		defer l.compactWG.Done()
		// Best effort: a failed background compaction leaves the log fully
		// usable (dead bytes just stick around until the next trigger), so
		// the error is surfaced through stats, not a crash.
		l.Compact()
		l.mu.Lock()
		l.compactPending = false
		l.mu.Unlock()
	}()
}

// Compact rewrites every live record into fresh segments and atomically
// swaps the manifest to them. Sequence numbers are preserved, so a
// compacted log replays identically; new segments take never-before-used
// numbers, so a crash at ANY point leaves either the old manifest (strays
// swept at next open) or the new one (old segments deleted, or swept if the
// deletion itself crashed) — never a mix.
//
// Compaction holds the log mutex for the duration. Appends block behind it;
// with in-memory state this is a bounded pause (the 10k-dataset torture
// history compacts in well under a second), accepted in exchange for not
// needing a side-log protocol.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return lake.ErrInventoryClosed
	}
	began := time.Now()
	live := l.liveRecords()

	// Stage 1: write the survivors into fresh segments. Invisible to
	// recovery until the manifest names them.
	var (
		names    []string
		sizes    = make(map[string]int64)
		cur      *os.File
		curName  string
		curSize  int64
		newBytes int64
	)
	abort := func(err error) error {
		if cur != nil {
			cur.Close()
		}
		for _, n := range names {
			os.Remove(filepath.Join(l.dir, n))
		}
		return err
	}
	nextSeg := l.nextSeg
	open := func() error {
		curName = segmentFileName(nextSeg)
		nextSeg++
		f, err := os.OpenFile(filepath.Join(l.dir, curName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("seglog: compact: create %s: %w", curName, err)
		}
		cur = f
		curSize = 0
		names = append(names, curName)
		return nil
	}
	seal := func() error {
		if err := cur.Sync(); err != nil {
			return fmt.Errorf("seglog: compact: sync %s: %w", curName, err)
		}
		if err := cur.Close(); err != nil {
			return fmt.Errorf("seglog: compact: close %s: %w", curName, err)
		}
		sizes[curName] = curSize
		cur = nil
		return nil
	}
	if err := open(); err != nil {
		return abort(err)
	}
	newAt := make(map[uint64]int64, len(live)) // seq → framed size
	for _, rec := range live {
		frame, err := encodeRecord(rec)
		if err != nil {
			return abort(err)
		}
		if curSize > 0 && curSize+int64(len(frame)) > l.opts.SegmentTargetBytes {
			if err := seal(); err != nil {
				cur = nil
				return abort(err)
			}
			if err := open(); err != nil {
				return abort(err)
			}
		}
		if _, err := cur.Write(frame); err != nil {
			return abort(fmt.Errorf("seglog: compact: write %s: %w", curName, err))
		}
		curSize += int64(len(frame))
		newAt[rec.Seq] = int64(len(frame))
		newBytes += int64(len(frame))
	}
	if err := seal(); err != nil {
		cur = nil
		return abort(err)
	}
	fsio.SyncDir(l.dir)
	l.hook("segments-written")

	// Stage 2: the commit point — swap the manifest to the new segments.
	// The last new segment becomes the active one.
	old := l.segments
	m := manifest{
		Segments:         names,
		NextSegment:      nextSeg,
		MinNextSeq:       l.nextSeq,
		MinNextDatasetID: l.nextID,
	}
	if err := writeManifest(l.dir, m); err != nil {
		return abort(err)
	}
	l.hook("manifest-swapped")

	// Stage 3: adopt the new active segment and drop the old files. From
	// here failures are non-fatal — the old segments are already dead, and
	// a crashed deletion is swept at the next open.
	if l.active != nil {
		l.active.Close()
	}
	activeName := names[len(names)-1]
	f, err := os.OpenFile(filepath.Join(l.dir, activeName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("seglog: compact: reopening active segment %s: %w", activeName, err)
	}
	l.active = f
	l.activeName = activeName
	l.activeSize = sizes[activeName]
	l.segments = names
	l.nextSeg = nextSeg
	l.sealedSize = sizes
	delete(l.sealedSize, activeName)
	for id, ent := range l.datasets {
		if sz, ok := newAt[ent.seq]; ok && sz != ent.bytes {
			ent.bytes = sz
			l.datasets[id] = ent
		}
	}
	if l.platform != nil {
		if sz, ok := newAt[l.platformSeq]; ok {
			l.platformBytes = sz
		}
	}
	l.liveBytes = newBytes
	l.deadBytes = 0
	l.compactions++

	for _, name := range old {
		os.Remove(filepath.Join(l.dir, name))
	}
	fsio.SyncDir(l.dir)
	l.hook("old-segments-deleted")

	l.obs.recordCompaction(time.Since(began))
	l.updateObsGauges()
	return nil
}

// hook invokes the test-only compaction stage hook.
func (l *Log) hook(stage string) {
	if l.compactHook != nil {
		l.compactHook(stage)
	}
}
