package seglog

import (
	"bytes"
	"encoding/binary"
	"testing"

	"enld/internal/dataset"
)

// fuzzFrame builds one valid frame for seeding.
func fuzzFrame(t testing.TB, rec record) []byte {
	t.Helper()
	frame, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// FuzzReadSegment throws arbitrary bytes at the segment scanner and checks
// the parsing invariants damage must never break:
//
//   - no panic, whatever the input;
//   - a lenient scan never errors on a structurally torn tail, and the
//     prefix it accepts re-reads strictly (what recovery keeps after
//     truncation must itself be a valid segment);
//   - accepted frames tile the prefix exactly: contiguous offsets from 0 to
//     LiveEnd, dropped bytes covering the remainder;
//   - a strict scan of the same bytes accepts at least as much as nothing —
//     it either errors or agrees with the lenient scan record-for-record.
func FuzzReadSegment(f *testing.F) {
	one := fuzzFrame(f, record{Seq: 1, Kind: kindDataset, ID: 1, Name: "a",
		Samples: dataset.Set{{ID: 7, X: []float64{1, 2}, Observed: 1, True: 0}}})
	two := fuzzFrame(f, record{Seq: 2, Kind: kindPlatform, Snapshot: []byte("snap")})
	tomb := fuzzFrame(f, record{Seq: 3, Kind: kindRemove, ID: 1})

	f.Add([]byte{})
	f.Add(one)
	f.Add(append(append(append([]byte{}, one...), two...), tomb...))
	// Torn tail: a frame cut inside its payload, and one cut inside the
	// header.
	f.Add(append(append([]byte{}, one...), two[:len(two)-3]...))
	f.Add(append(append([]byte{}, one...), two[:headerSize-5]...))
	// Bad magic after a valid frame.
	f.Add(append(append([]byte{}, one...), []byte("XXLDSGgarbage-that-is-long-enough")...))
	// Flipped CRC byte mid-stream.
	flipped := append(append([]byte{}, one...), two...)
	flipped[16] ^= 0xff
	f.Add(flipped)
	// Duplicated final frame (sequence regression is the log's job, but the
	// scanner must still parse it cleanly).
	f.Add(append(append([]byte{}, two...), two...))
	// Oversize declared length.
	big := append([]byte{}, one[:headerSize]...)
	binary.BigEndian.PutUint64(big[8:], maxRecordBytes+1)
	f.Add(big)
	// Version from the future.
	future := append([]byte{}, one...)
	binary.BigEndian.PutUint16(future[6:], recordVersion+1)
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, scan, err := readSegment("fuzz", data, true)
		if err == nil {
			if scan.LiveEnd < 0 || scan.LiveEnd > int64(len(data)) {
				t.Fatalf("LiveEnd %d outside [0, %d]", scan.LiveEnd, len(data))
			}
			if scan.Records != len(recs) {
				t.Fatalf("scan counts %d records, returned %d", scan.Records, len(recs))
			}
			off := int64(0)
			for i, ra := range recs {
				if ra.off != off || ra.size <= int64(headerSize) {
					t.Fatalf("frame %d at offset %d size %d, want contiguous from %d", i, ra.off, ra.size, off)
				}
				off += ra.size
			}
			if off != scan.LiveEnd {
				t.Fatalf("frames end at %d, LiveEnd %d", off, scan.LiveEnd)
			}
			if scan.TornTail {
				if scan.DroppedAt != scan.LiveEnd || scan.DroppedBytes != int64(len(data))-scan.LiveEnd {
					t.Fatalf("drop accounting %+v does not cover [%d, %d)", scan, scan.LiveEnd, len(data))
				}
				if scan.DroppedBytes <= 0 || scan.DroppedRecords < 1 {
					t.Fatalf("torn tail with empty accounting: %+v", scan)
				}
			} else if scan.LiveEnd != int64(len(data)) {
				t.Fatalf("clean scan stopped at %d of %d bytes", scan.LiveEnd, len(data))
			}

			// The kept prefix must be strictly valid: recovery truncates to
			// LiveEnd and later reopens treat it as sealed.
			strictRecs, strictScan, strictErr := readSegment("fuzz", data[:scan.LiveEnd], false)
			if strictErr != nil {
				t.Fatalf("accepted prefix rejected by strict scan: %v", strictErr)
			}
			if len(strictRecs) != len(recs) || strictScan.LiveEnd != scan.LiveEnd {
				t.Fatalf("strict rescan: %d records to %d, lenient had %d to %d",
					len(strictRecs), strictScan.LiveEnd, len(recs), scan.LiveEnd)
			}
			for i := range recs {
				if !bytes.Equal(frameBytes(data, recs[i]), frameBytes(data, strictRecs[i])) {
					t.Fatalf("frame %d differs between scans", i)
				}
			}
		}

		// Strict mode must never be more permissive than lenient mode.
		sRecs, _, sErr := readSegment("fuzz", data, false)
		if sErr == nil && err != nil {
			t.Fatalf("strict scan accepted what lenient rejected: %v", err)
		}
		if sErr == nil && len(sRecs) != len(recs) {
			t.Fatalf("strict scan found %d records, lenient %d", len(sRecs), len(recs))
		}
	})
}

// frameBytes slices a frame's raw bytes out of the segment image.
func frameBytes(data []byte, ra recordAt) []byte {
	return data[ra.off : ra.off+ra.size]
}
