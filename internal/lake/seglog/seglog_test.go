package seglog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"enld/internal/dataset"
	"enld/internal/fault"
	"enld/internal/lake"
)

var _ lake.Inventory = (*Log)(nil)

// testSet builds a small dataset whose sample IDs start at base.
func testSet(base, n int) dataset.Set {
	out := make(dataset.Set, n)
	for i := range out {
		out[i] = dataset.Sample{ID: base + i, X: []float64{float64(i), 1}, Observed: i % 2, True: i % 2}
	}
	return out
}

// copyDir clones every regular file of src into a fresh directory — the
// crash-state capture used by the compaction-stage tests.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mustOpen opens a log and fails the test on error.
func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// activePath returns the log's active segment file path.
func activePath(t *testing.T, dir string) string {
	t.Helper()
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, m.Segments[len(m.Segments)-1])
}

func TestLogReopenDurability(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	id1, err := l.AppendDataset("a", testSet(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := l.AppendDataset("b", testSet(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SavePlatform([]byte("snap-v1")); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveDataset(id1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	metas, err := l2.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].ID != id2 || metas[0].Name != "b" || metas[0].Size != 2 {
		t.Fatalf("reopened metas = %+v", metas)
	}
	set, err := l2.LoadDataset(id2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0].ID != 100 {
		t.Fatalf("reloaded dataset: %d samples, first ID %d", len(set), set[0].ID)
	}
	snap, err := l2.LoadPlatform()
	if err != nil || string(snap) != "snap-v1" {
		t.Fatalf("reloaded platform = %q, %v", snap, err)
	}
	id3, err := l2.AppendDataset("c", testSet(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if id3 <= id2 {
		t.Fatalf("IDs regressed across reopen: %d then %d", id2, id3)
	}
	st := l2.Stats()
	if st.Backend != "seglog" || st.Datasets != 2 || st.DeadBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLogRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentTargetBytes: 2048})
	for i := 0; i < 20; i++ {
		if _, err := l.AppendDataset("d", testSet(i*10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("no rotation after 20 appends at a 2 KiB target: %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{SegmentTargetBytes: 2048})
	defer l2.Close()
	metas, _ := l2.Datasets()
	if len(metas) != 20 {
		t.Fatalf("recovered %d datasets across segments, want 20", len(metas))
	}
}

// TestLogTornTailDropped: a torn final record is dropped, counted, and the
// rest of the log survives — the lenient half of the recovery contract.
func TestLogTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("keep", testSet(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDataset("torn", testSet(50, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := activePath(t, dir)
	if err := fault.TearFile(path, 0.6); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	metas, _ := l2.Datasets()
	if len(metas) != 1 || metas[0].Name != "keep" {
		t.Fatalf("after torn tail, metas = %+v", metas)
	}
	rec := l2.Stats().Recovery
	if !rec.TornTail || rec.DroppedRecords != 1 || rec.DroppedBytes <= 0 || rec.File == "" {
		t.Fatalf("recovery stats = %+v", rec)
	}
	// The drop is physical: appending after recovery and reopening again
	// must not resurrect or trip over the torn frame.
	if _, err := l2.AppendDataset("after", testSet(90, 2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := mustOpen(t, dir, Options{})
	defer l3.Close()
	metas, _ = l3.Datasets()
	if len(metas) != 2 || metas[1].Name != "after" {
		t.Fatalf("after reopen, metas = %+v", metas)
	}
	if l3.Stats().Recovery.TornTail {
		t.Fatal("second recovery still reports a torn tail")
	}
}

// TestLogInteriorCorruptionLoud: a flipped byte in a non-final record must
// fail the open with segment and offset context — never a silent drop.
func TestLogInteriorCorruptionLoud(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("a", testSet(0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDataset("b", testSet(50, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := activePath(t, dir)
	// Flip a byte inside the first record's payload.
	if err := fault.CorruptFileByte(path, int64(headerSize)+4); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("open err = %v, want CorruptionError", err)
	}
	if ce.Offset != 0 || !strings.Contains(ce.Reason, "checksum") {
		t.Fatalf("corruption context = %+v", ce)
	}
}

// TestLogSealedSegmentNeverLenient: damage at the tail of a sealed (rotated)
// segment is interior damage, not a crash artifact.
func TestLogSealedSegmentNeverLenient(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentTargetBytes: 1024})
	for i := 0; i < 10; i++ {
		if _, err := l.AppendDataset("d", testSet(i*10, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) < 2 {
		t.Fatalf("need a sealed segment, have %d", len(m.Segments))
	}
	if err := fault.TearFile(filepath.Join(dir, m.Segments[0]), 0.5); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{SegmentTargetBytes: 1024})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("open err = %v, want CorruptionError", err)
	}
	if ce.Segment != m.Segments[0] {
		t.Fatalf("corruption blamed on %s, want %s", ce.Segment, m.Segments[0])
	}
}

// TestLogDuplicateRecordLoud: a re-appended (duplicated) final frame is a
// sequence regression and must fail loudly with its offset.
func TestLogDuplicateRecordLoud(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("a", testSet(0, 3)); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(activePath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDataset("b", testSet(50, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := activePath(t, dir)
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.DuplicateTail(path, after.Size()-before.Size()); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("open err = %v, want CorruptionError", err)
	}
	if ce.Offset != after.Size() || !strings.Contains(ce.Reason, "regression") {
		t.Fatalf("duplicate-record context = %+v", ce)
	}
}

// TestLogTruncateMidRecordDropped: truncation inside the final record (the
// torn-append shape TruncateAt injects) drops exactly that record.
func TestLogTruncateMidRecordDropped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("keep", testSet(0, 3)); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(activePath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendDataset("cut", testSet(50, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := activePath(t, dir)
	if err := fault.TruncateAt(path, before.Size()+int64(headerSize)+2); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	metas, _ := l2.Datasets()
	if len(metas) != 1 || metas[0].Name != "keep" {
		t.Fatalf("after truncation, metas = %+v", metas)
	}
	rec := l2.Stats().Recovery
	if !rec.TornTail || rec.Offset != before.Size() {
		t.Fatalf("recovery stats = %+v, want drop at %d", rec, before.Size())
	}
}

// TestLogCompactionFoldsDeadRecords: compaction reclaims removed datasets
// and superseded platform snapshots, and the compacted log replays
// identically.
func TestLogCompactionFoldsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentTargetBytes: 2048, AutoCompactRatio: -1})
	var ids []uint64
	for i := 0; i < 12; i++ {
		id, err := l.AppendDataset("d", testSet(i*10, 5))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:8] {
		if err := l.RemoveDataset(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := l.SavePlatform([]byte(strings.Repeat("s", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("no dead bytes to compact")
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.DeadBytes != 0 || after.LiveBytes >= before.LiveBytes+before.DeadBytes || after.Compactions != 1 {
		t.Fatalf("compaction accounting: before %+v, after %+v", before, after)
	}
	// The compacted log keeps accepting appends and replays identically.
	idNew, err := l.AppendDataset("post", testSet(900, 2))
	if err != nil {
		t.Fatal(err)
	}
	if idNew <= ids[len(ids)-1] {
		t.Fatalf("post-compaction ID regressed: %d after %d", idNew, ids[len(ids)-1])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{SegmentTargetBytes: 2048})
	defer l2.Close()
	metas, _ := l2.Datasets()
	if len(metas) != 5 {
		t.Fatalf("recovered %d datasets after compaction, want 5", len(metas))
	}
	snap, err := l2.LoadPlatform()
	if err != nil || len(snap) != 102 {
		t.Fatalf("platform after compaction: %d bytes, %v", len(snap), err)
	}
}

// TestLogCompactionCrashStages reopens crash-state copies captured at each
// compaction stage: before the manifest swap the old state must recover
// (new segments swept as strays), after it the new state must recover (old
// segments swept). Either way, the same live data.
func TestLogCompactionCrashStages(t *testing.T) {
	for _, stage := range []string{"segments-written", "manifest-swapped", "old-segments-deleted"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{SegmentTargetBytes: 2048, AutoCompactRatio: -1})
			var ids []uint64
			for i := 0; i < 12; i++ {
				id, err := l.AppendDataset("d", testSet(i*10, 5))
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			for _, id := range ids[:6] {
				if err := l.RemoveDataset(id); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.SavePlatform([]byte("snap")); err != nil {
				t.Fatal(err)
			}

			var crashed string
			l.compactHook = func(s string) {
				if s == stage {
					crashed = copyDir(t, dir)
				}
			}
			if err := l.Compact(); err != nil {
				t.Fatal(err)
			}
			if crashed == "" {
				t.Fatalf("stage %s never reached", stage)
			}
			l.Close()

			l2 := mustOpen(t, crashed, Options{SegmentTargetBytes: 2048})
			defer l2.Close()
			metas, _ := l2.Datasets()
			if len(metas) != 6 {
				t.Fatalf("crash at %s: recovered %d datasets, want 6", stage, len(metas))
			}
			for i, m := range metas {
				if m.ID != ids[6+i] {
					t.Fatalf("crash at %s: metas = %+v", stage, metas)
				}
			}
			snap, err := l2.LoadPlatform()
			if err != nil || string(snap) != "snap" {
				t.Fatalf("crash at %s: platform = %q, %v", stage, snap, err)
			}
			// IDs must not be reused after recovery from the crash state.
			idNew, err := l2.AppendDataset("post", testSet(0, 1))
			if err != nil {
				t.Fatal(err)
			}
			if idNew <= ids[len(ids)-1] {
				t.Fatalf("crash at %s: ID reuse: %d after %d", stage, idNew, ids[len(ids)-1])
			}
		})
	}
}

// TestLogAutoCompaction: crossing the dead-byte ratio triggers a background
// compaction without any explicit call.
func TestLogAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{AutoCompactRatio: 0.3, AutoCompactMinBytes: 1})
	var ids []uint64
	for i := 0; i < 10; i++ {
		id, err := l.AppendDataset("d", testSet(i*10, 5))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids[:8] {
		if err := l.RemoveDataset(id); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits for the background compaction.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if got := l2.Stats(); got.Datasets != 2 {
		t.Fatalf("after auto compaction, stats = %+v", got)
	}
}

// TestLogFreshInitCrashRedone: a crash between creating the first segment
// and writing the manifest leaves an empty stray; the next open must
// re-initialize, while a NON-empty unmanifested segment must refuse.
func TestLogFreshInitCrashRedone(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentFileName(1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("a", testSet(0, 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, segmentFileName(1)), []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("open over unmanifested data succeeded")
	}
}

// TestLogStraySweep: files a crashed rotation or atomic write would leave
// are removed at open; unknown files are left alone.
func TestLogStraySweep(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	if _, err := l.AppendDataset("a", testSet(0, 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	for _, name := range []string{segmentFileName(99), manifestName + ".tmp-123", "seg-00000042.log.tmp-7"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stray"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	keep := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("mine"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if got := l2.StraysRemoved(); got != 3 {
		t.Fatalf("swept %d strays, want 3", got)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed an unrelated file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(99))); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray segment survived the sweep")
	}
}
