package lake

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/fault"
	"enld/internal/mat"
	"enld/internal/nn"
)

// buildRecoveryPlatform trains a small watchdog-guarded platform; everything
// is deterministic from seed, so a restarted incarnation rebuilds the exact
// same model when its on-disk checkpoint turns out to be unusable.
func buildRecoveryPlatform(t *testing.T, seed uint64) *core.Platform {
	t.Helper()
	sp := dataset.Spec{
		Name: "recovery", Classes: 4, FeatureDim: 6, PerClass: 40,
		Separation: 4, Spread: 1, Seed: seed,
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	inv, _, err := dataset.SplitRatio(full, 2.0/3.0, mat.NewRNG(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPlatformConfig(sp.Classes, sp.FeatureDim, seed+3)
	cfg.Epochs = 6
	cfg.Watchdog = nn.WatchdogConfig{Enabled: true}
	p, err := core.NewPlatform(inv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCrashRecoveryComposesJournalAndCheckpoint extends the journal
// crash-restart scenario with model-state recovery: the process dies with a
// torn record at the journal tail AND a torn platform checkpoint on disk.
// The restarted incarnation must end up with zero lost tasks and a
// verified-good model — the journal yields the completed work, the
// checkpoint's integrity checking rejects the torn file, and the
// deterministic rebuild reproduces the original model bit for bit.
func TestCrashRecoveryComposesJournalAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	ppath := filepath.Join(dir, "platform.gob")
	ctx := context.Background()

	// First incarnation: train the platform, persist it, journal 3 of the 6
	// detection tasks.
	p1 := buildRecoveryPlatform(t, 7)
	if err := core.SavePlatformFile(p1, ppath); err != nil {
		t.Fatal(err)
	}
	j1, entries, jrec, err := RecoverJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || jrec.Torn {
		t.Fatalf("fresh journal: %d entries, recovery %+v", len(entries), jrec)
	}
	svc, _ := NewService(flagOdd{}, 2)
	for _, rep := range svc.Run(ctx, Feed(ctx, shards(6, 2)[:3], 0)) {
		if _, err := j1.AppendDetection(rep.TaskID, map[int]bool{}, nil, "run1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: the last journal record is torn mid-write, and the platform
	// checkpoint is torn as well (a non-atomic writer died mid-rewrite).
	info, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	if err := fault.TearFile(ppath, 0.6); err != nil {
		t.Fatal(err)
	}

	// Restart. The journal recovers its intact prefix and accounts for the
	// dropped tail...
	j2, entries, jrec, err := RecoverJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("recovered %d journal entries, want 2", len(entries))
	}
	if !jrec.Torn || jrec.Entries != 2 || jrec.DroppedBytes <= 0 || jrec.Offset <= 0 {
		t.Fatalf("journal recovery stats = %+v", jrec)
	}
	done := DoneTasks(entries)

	// ...the torn checkpoint is rejected rather than half-loaded...
	if _, err := core.LoadPlatformFile(ppath); err == nil {
		t.Fatal("torn platform checkpoint loaded successfully")
	}

	// ...so the service falls back to the deterministic rebuild, which must
	// reproduce the first incarnation's model exactly.
	p2 := buildRecoveryPlatform(t, 7)
	if err := p2.Model.CheckFinite(); err != nil {
		t.Fatalf("rebuilt model unhealthy: %v", err)
	}
	for l := range p1.Model.Weights {
		for i, v := range p1.Model.Weights[l].Data {
			if p2.Model.Weights[l].Data[i] != v {
				t.Fatalf("rebuilt model differs at layer %d index %d", l, i)
			}
		}
	}
	if err := core.SavePlatformFile(p2, ppath); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadPlatformFile(ppath); err != nil {
		t.Fatalf("re-persisted checkpoint unreadable: %v", err)
	}

	// The restarted service skips journaled work and finishes the rest:
	// every task is covered exactly once across both incarnations.
	svc2, _ := NewService(flagOdd{}, 2)
	svc2.SkipCompleted(done)
	reports := svc2.Run(ctx, Feed(ctx, shards(6, 2), 0))
	covered := map[int]bool{}
	for id := range done {
		covered[id] = true
	}
	for _, rep := range reports {
		if covered[rep.TaskID] {
			t.Fatalf("task %d processed twice", rep.TaskID)
		}
		covered[rep.TaskID] = true
		if _, err := j2.AppendDetection(rep.TaskID, map[int]bool{}, nil, "run2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if len(covered) != 6 {
		t.Fatalf("covered %d of 6 tasks: %v", len(covered), covered)
	}
}
