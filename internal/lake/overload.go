package lake

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"enld/internal/detect"
)

// AdmissionConfig bounds the service's admission queue and enables
// deadline-aware load shedding. The zero value keeps the legacy behaviour:
// an unbuffered hand-off channel whose backpressure blocks the submitter and
// no task is ever shed.
//
// With QueueDepth > 0 the service holds at most QueueDepth admitted-but-not-
// started tasks. On submit it estimates the new task's queue wait as
//
//	predicted = depth × EWMA(service time) / workers
//
// where depth is the current queue length and the EWMA tracks recent task
// wall-clock times (attempts, backoff and fallback included). A task whose
// predicted wait exceeds MaxQueueWait — its predicted start would already be
// past its deadline — is shed immediately (outcome=shed) instead of queued
// to time out: rejecting early costs the client one round trip; queueing a
// doomed task costs it the full deadline and poisons every task behind it.
// A full queue sheds likewise.
type AdmissionConfig struct {
	// QueueDepth is the admission queue capacity. 0 disables bounded
	// admission and shedding entirely.
	QueueDepth int
	// MaxQueueWait sheds tasks whose predicted queue wait exceeds it. 0
	// leaves only queue-full shedding active.
	MaxQueueWait time.Duration
	// EWMAAlpha is the service-time smoothing factor in (0, 1]; higher
	// weights recent tasks more. Default 0.2.
	EWMAAlpha float64
	// InitialServiceTime seeds the EWMA before any task completes, so the
	// very first predictions are not zero. Default 50ms.
	InitialServiceTime time.Duration
}

// normalized fills admission defaults and rejects nonsense.
func (a AdmissionConfig) normalized() (AdmissionConfig, error) {
	if a.QueueDepth < 0 || a.MaxQueueWait < 0 || a.InitialServiceTime < 0 {
		return a, fmt.Errorf("lake: negative admission field: %+v", a)
	}
	if a.EWMAAlpha < 0 || a.EWMAAlpha > 1 {
		return a, fmt.Errorf("lake: admission EWMA alpha %v outside (0, 1]", a.EWMAAlpha)
	}
	if a.EWMAAlpha == 0 {
		a.EWMAAlpha = 0.2
	}
	if a.InitialServiceTime == 0 {
		a.InitialServiceTime = 50 * time.Millisecond
	}
	return a, nil
}

// Validate reports whether the admission config is sound (the check applied
// when a policy is installed), without filling defaults.
func (a AdmissionConfig) Validate() error {
	_, err := a.normalized()
	return err
}

// serviceEWMA is a lock-free exponentially weighted moving average of task
// service times, in seconds, shared by the worker pool (writers) and the
// feeder (reader).
type serviceEWMA struct {
	alpha float64
	bits  uint64
}

func newServiceEWMA(alpha float64, seed time.Duration) *serviceEWMA {
	return &serviceEWMA{alpha: alpha, bits: math.Float64bits(seed.Seconds())}
}

// observe folds one completed task's service time into the average.
func (e *serviceEWMA) observe(d time.Duration) {
	s := d.Seconds()
	for {
		old := atomic.LoadUint64(&e.bits)
		next := math.Float64bits(e.alpha*s + (1-e.alpha)*math.Float64frombits(old))
		if atomic.CompareAndSwapUint64(&e.bits, old, next) {
			return
		}
	}
}

// value returns the current estimate in seconds.
func (e *serviceEWMA) value() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.bits))
}

// TierDetector is one rung of the brownout degradation ladder: a stable name
// (the {tier=...} label value in metrics and the key of per-tier SLO floors)
// and the detector serving that tier. Rung 0 is the full-quality primary;
// each later rung trades detection quality for speed.
type TierDetector struct {
	Name     string
	Detector detect.Detector
}

// Canonical tier names of the ENLD degradation ladder. A ladder is free to
// use other names; these are what the built-in constructors and the
// workload SLO examples use.
const (
	TierFull       = "full"
	TierANN        = "ann"
	TierANNFloat32 = "ann-f32"
	TierFallback   = "fallback"
)

// BrownoutConfig tunes the brownout controller: when the service is
// saturated it steps the active tier down the ladder (cheaper detection)
// and when pressure clears it recovers tier-by-tier. Pressure is read from
// two signals — admission queue depth and the p95 of task service time over
// the last evaluation window — with an explicit hysteresis band between the
// high and low watermarks so an oscillating load cannot flap the tier.
type BrownoutConfig struct {
	// QueueHigh/QueueLow are the queue-depth watermarks: depth ≥ QueueHigh
	// counts as pressure, depth ≤ QueueLow as calm, anything between holds
	// the current tier. QueueHigh 0 disables the depth signal.
	QueueHigh int
	QueueLow  int
	// P95High/P95Low are the task-latency watermarks over the last window.
	// P95High 0 disables the latency signal.
	P95High time.Duration
	P95Low  time.Duration
	// Interval is the evaluation cadence. Default 250ms.
	Interval time.Duration
	// EscalateAfter is how many consecutive pressured evaluations trigger
	// one step down the ladder (default 2); RecoverAfter is how many
	// consecutive calm evaluations trigger one step back up (default 4 —
	// recovery is deliberately slower than escalation).
	EscalateAfter int
	RecoverAfter  int
}

// normalized fills brownout defaults and rejects nonsense.
func (b BrownoutConfig) normalized() (BrownoutConfig, error) {
	if b.QueueHigh < 0 || b.QueueLow < 0 || b.P95High < 0 || b.P95Low < 0 {
		return b, fmt.Errorf("lake: negative brownout watermark: %+v", b)
	}
	if b.QueueHigh == 0 && b.P95High == 0 {
		return b, fmt.Errorf("lake: brownout needs at least one pressure signal (QueueHigh or P95High)")
	}
	if b.QueueHigh > 0 && b.QueueLow > b.QueueHigh {
		return b, fmt.Errorf("lake: brownout queue watermarks inverted (low %d > high %d)", b.QueueLow, b.QueueHigh)
	}
	if b.P95High > 0 && b.P95Low > b.P95High {
		return b, fmt.Errorf("lake: brownout p95 watermarks inverted (low %s > high %s)", b.P95Low, b.P95High)
	}
	if b.Interval <= 0 {
		b.Interval = 250 * time.Millisecond
	}
	if b.EscalateAfter <= 0 {
		b.EscalateAfter = 2
	}
	if b.RecoverAfter <= 0 {
		b.RecoverAfter = 4
	}
	return b, nil
}

// Validate reports whether the brownout config is sound (the check applied
// by SetBrownout), without filling defaults.
func (b BrownoutConfig) Validate() error {
	_, err := b.normalized()
	return err
}

// brownoutFSM is the pure tier state machine, separated from clocks and
// metrics so its transition table is unit-testable. One observe call
// corresponds to one evaluation tick.
type brownoutFSM struct {
	cfg   BrownoutConfig
	tiers int
	tier  int
	hot   int // consecutive pressured ticks
	cool  int // consecutive calm ticks
}

func newBrownoutFSM(cfg BrownoutConfig, tiers int) *brownoutFSM {
	return &brownoutFSM{cfg: cfg, tiers: tiers}
}

// observe feeds one evaluation window (current queue depth, window p95 task
// seconds — NaN when no task completed in the window) and returns the active
// tier plus whether this tick changed it.
//
// The hysteresis contract: pressure requires a signal at or above its high
// watermark; calm requires every enabled signal at or below its low
// watermark; readings inside the band reset both streaks and hold the tier.
// Escalation and recovery both move exactly one rung per trigger, and each
// move resets both streaks, so a sustained condition steps through tiers at
// EscalateAfter (or RecoverAfter) ticks per rung instead of jumping.
func (m *brownoutFSM) observe(depth int, p95 float64) (tier int, changed bool) {
	pressured := (m.cfg.QueueHigh > 0 && depth >= m.cfg.QueueHigh) ||
		(m.cfg.P95High > 0 && !math.IsNaN(p95) && p95 >= m.cfg.P95High.Seconds())
	calm := (m.cfg.QueueHigh == 0 || depth <= m.cfg.QueueLow) &&
		(m.cfg.P95High == 0 || math.IsNaN(p95) || p95 <= m.cfg.P95Low.Seconds())

	switch {
	case pressured:
		m.cool = 0
		m.hot++
		if m.hot >= m.cfg.EscalateAfter && m.tier < m.tiers-1 {
			m.tier++
			m.hot = 0
			return m.tier, true
		}
	case calm:
		m.hot = 0
		m.cool++
		if m.cool >= m.cfg.RecoverAfter && m.tier > 0 {
			m.tier--
			m.cool = 0
			return m.tier, true
		}
	default:
		// Inside the hysteresis band: hold the tier, restart both streaks.
		m.hot, m.cool = 0, 0
	}
	return m.tier, false
}

// brownout is the controller wired into a running service: the ladder, the
// FSM, the atomic active tier the feeder stamps tasks with, and transition
// accounting.
type brownout struct {
	ladder []TierDetector
	cfg    BrownoutConfig
	fsm    *brownoutFSM

	tier        atomic.Int32
	maxTier     atomic.Int32
	tierChanges atomic.Int64

	// OnTierChange, when set, observes every tier transition (from, to are
	// ladder indexes). Called from the controller goroutine.
	onTierChange func(from, to int)
}

func newBrownout(ladder []TierDetector, cfg BrownoutConfig) (*brownout, error) {
	if len(ladder) < 2 {
		return nil, fmt.Errorf("lake: brownout ladder needs at least two tiers, got %d", len(ladder))
	}
	seen := make(map[string]bool, len(ladder))
	for i, rung := range ladder {
		if rung.Detector == nil {
			return nil, fmt.Errorf("lake: brownout tier %d (%q) has a nil detector", i, rung.Name)
		}
		if rung.Name == "" {
			return nil, fmt.Errorf("lake: brownout tier %d has no name", i)
		}
		if seen[rung.Name] {
			return nil, fmt.Errorf("lake: duplicate brownout tier name %q", rung.Name)
		}
		seen[rung.Name] = true
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	return &brownout{
		ladder: append([]TierDetector(nil), ladder...),
		cfg:    cfg,
		fsm:    newBrownoutFSM(cfg, len(ladder)),
	}, nil
}

// activeTier returns the tier the feeder stamps new admissions with.
func (b *brownout) activeTier() int {
	if b == nil {
		return 0
	}
	return int(b.tier.Load())
}

// step runs one FSM evaluation and publishes a change to the atomic tier.
// Only the controller goroutine calls it.
func (b *brownout) step(depth int, p95 float64) (from, to int, changed bool) {
	from = int(b.tier.Load())
	to, changed = b.fsm.observe(depth, p95)
	if !changed {
		return from, to, false
	}
	b.tier.Store(int32(to))
	if int32(to) > b.maxTier.Load() {
		b.maxTier.Store(int32(to))
	}
	b.tierChanges.Add(1)
	if b.onTierChange != nil {
		b.onTierChange(from, to)
	}
	return from, to, true
}
