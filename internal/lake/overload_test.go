package lake

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"enld/internal/dataset"
	"enld/internal/detect"
)

func TestAdmissionConfigValidation(t *testing.T) {
	for _, bad := range []AdmissionConfig{
		{QueueDepth: -1},
		{MaxQueueWait: -time.Second},
		{InitialServiceTime: -time.Millisecond},
		{EWMAAlpha: -0.1},
		{EWMAAlpha: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := (AdmissionConfig{QueueDepth: 8}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	got, err := AdmissionConfig{QueueDepth: 8}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got.EWMAAlpha != 0.2 || got.InitialServiceTime != 50*time.Millisecond {
		t.Fatalf("defaults not filled: %+v", got)
	}
}

func TestServiceEWMAConverges(t *testing.T) {
	e := newServiceEWMA(0.5, 100*time.Millisecond)
	if got := e.value(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("seed = %v, want 0.1", got)
	}
	for i := 0; i < 40; i++ {
		e.observe(time.Second)
	}
	if got := e.value(); math.Abs(got-1) > 1e-6 {
		t.Fatalf("ewma after 40 1s observations = %v, want ≈1", got)
	}
}

func TestBrownoutConfigValidation(t *testing.T) {
	for _, bad := range []BrownoutConfig{
		{},                          // no pressure signal at all
		{QueueHigh: -1},             // negative watermark
		{QueueHigh: 2, QueueLow: 5}, // inverted depth band
		{P95High: time.Second, P95Low: 2 * time.Second}, // inverted p95 band
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := (BrownoutConfig{QueueHigh: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	got, err := BrownoutConfig{QueueHigh: 4}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != 250*time.Millisecond || got.EscalateAfter != 2 || got.RecoverAfter != 4 {
		t.Fatalf("defaults not filled: %+v", got)
	}
}

// TestBrownoutFSMTransitions walks the hysteresis contract through the exact
// boundary readings: escalation needs EscalateAfter consecutive pressured
// ticks, recovery needs RecoverAfter consecutive calm ones, in-band readings
// reset both streaks (no flapping), and every move is one rung.
func TestBrownoutFSMTransitions(t *testing.T) {
	cfg, err := BrownoutConfig{
		QueueHigh: 10, QueueLow: 2,
		P95High: time.Second, P95Low: 200 * time.Millisecond,
		EscalateAfter: 2, RecoverAfter: 3,
	}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	fsm := newBrownoutFSM(cfg, 4)
	nan := math.NaN()

	steps := []struct {
		name    string
		depth   int
		p95     float64
		tier    int
		changed bool
	}{
		{"calm baseline", 0, 0.05, 0, false},
		{"pressure 1/2 (depth at high watermark)", 10, 0.05, 0, false},
		{"in-band resets the hot streak", 5, 0.5, 0, false},
		{"pressure 1/2 again", 12, 0.05, 0, false},
		{"pressure 2/2 → tier 1", 12, 0.05, 1, true},
		{"pressure 1/2 (streak reset by the move)", 12, 0.05, 1, false},
		{"pressure 2/2 via p95 alone → tier 2", 0, 1.5, 2, true},
		{"pressure 1/2", 11, nan, 2, false},
		{"pressure 2/2 → tier 3", 11, nan, 3, true},
		{"pressure pinned at bottom tier", 11, 2.0, 3, false},
		{"pressure still pinned", 11, 2.0, 3, false},
		{"calm 1/3 (both at low watermarks)", 2, 0.2, 3, false},
		{"calm 2/3 (NaN p95 counts calm)", 0, nan, 3, false},
		{"in-band depth resets the cool streak", 5, 0.05, 3, false},
		{"calm 1/3", 1, 0.05, 3, false},
		{"calm 2/3", 1, 0.05, 3, false},
		{"calm 3/3 → tier 2", 1, 0.05, 2, true},
		{"calm 1/3 (streak reset by the move)", 1, 0.05, 2, false},
		{"calm 2/3", 1, 0.05, 2, false},
		{"calm 3/3 → tier 1", 1, 0.05, 1, true},
		{"calm ×3 → tier 0", 1, 0.05, 1, false},
		{"...", 1, 0.05, 1, false},
		{"recovered to full", 1, 0.05, 0, true},
		{"calm pinned at tier 0", 0, 0.01, 0, false},
	}
	for i, st := range steps {
		tier, changed := fsm.observe(st.depth, st.p95)
		if tier != st.tier || changed != st.changed {
			t.Fatalf("step %d (%s): got tier %d changed %v, want tier %d changed %v",
				i, st.name, tier, changed, st.tier, st.changed)
		}
	}
}

// TestBrownoutFSMNoFlapOnOscillation feeds a load oscillating across the
// hysteresis band faster than either streak requirement and checks the tier
// never moves.
func TestBrownoutFSMNoFlapOnOscillation(t *testing.T) {
	cfg, _ := BrownoutConfig{QueueHigh: 10, QueueLow: 2, EscalateAfter: 2, RecoverAfter: 2}.normalized()
	fsm := newBrownoutFSM(cfg, 3)
	for i := 0; i < 50; i++ {
		depth := 1
		if i%2 == 0 {
			depth = 11
		}
		if tier, changed := fsm.observe(depth, math.NaN()); changed || tier != 0 {
			t.Fatalf("tick %d: oscillating load moved the tier to %d", i, tier)
		}
	}
}

func TestBrownoutLadderValidation(t *testing.T) {
	det := flagOdd{}
	for name, ladder := range map[string][]TierDetector{
		"single rung":  {{Name: TierFull, Detector: det}},
		"nil detector": {{Name: TierFull, Detector: det}, {Name: TierFallback}},
		"unnamed rung": {{Name: TierFull, Detector: det}, {Detector: det}},
		"duplicate":    {{Name: TierFull, Detector: det}, {Name: TierFull, Detector: det}},
	} {
		if _, err := newBrownout(ladder, BrownoutConfig{QueueHigh: 1}); err == nil {
			t.Errorf("%s ladder accepted", name)
		}
	}
}

// TestServiceShedsOnPredictedWait pins the deadline-aware shedder: with the
// EWMA seeded at 50ms, any queued task predicts a wait beyond the 1ms budget,
// so everything that arrives while the single worker is busy is shed — and
// every arrival is accounted exactly once.
func TestServiceShedsOnPredictedWait(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{delay: 10 * time.Millisecond}, 1, Policy{
		Admission: AdmissionConfig{QueueDepth: 8, MaxQueueWait: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 12
	reports := svc.Run(ctx, Feed(ctx, shards(n, 2), 0))
	if len(reports) != n {
		t.Fatalf("%d reports for %d arrivals", len(reports), n)
	}
	var ok, shed int
	for _, rep := range reports {
		switch {
		case rep.Shed:
			shed++
			if rep.Err == nil || !strings.Contains(rep.Err.Error(), "shed") {
				t.Fatalf("shed task %d error = %v", rep.TaskID, rep.Err)
			}
			if rep.Result != nil {
				t.Fatalf("shed task %d carries a result", rep.TaskID)
			}
		case rep.Err == nil:
			ok++
		default:
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("ok = %d, shed = %d; want both non-zero", ok, shed)
	}
	st := svc.OverloadStatus()
	if st.TasksShed != shed {
		t.Fatalf("status reports %d shed, reports carry %d", st.TasksShed, shed)
	}
	if st.BrownoutTier != -1 {
		t.Fatalf("brownout tier = %d without a ladder, want -1", st.BrownoutTier)
	}
}

// TestServiceShedsOnFullQueue pins the queue-capacity backstop with the
// deadline check disabled.
func TestServiceShedsOnFullQueue(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{delay: 20 * time.Millisecond}, 1, Policy{
		Admission: AdmissionConfig{QueueDepth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 10
	reports := svc.Run(ctx, Feed(ctx, shards(n, 2), 0))
	if len(reports) != n {
		t.Fatalf("%d reports for %d arrivals", len(reports), n)
	}
	full := 0
	for _, rep := range reports {
		if rep.Shed && strings.Contains(rep.Err.Error(), "queue full") {
			full++
		}
	}
	if full == 0 {
		t.Fatal("no queue-full shed despite a 1-deep queue and a slow worker")
	}
}

// flagAll marks every sample noisy — a deliberately different answer from
// flagOdd, so the differential test can tell which detector served a task.
type flagAll struct{ delay time.Duration }

func (flagAll) Name() string { return "flag-all" }

func (f flagAll) Detect(d dataset.Set) (*detect.Result, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	res := detect.NewResult()
	for _, smp := range d {
		res.MarkNoisy(smp.ID)
	}
	return res, nil
}

// TestBrownoutDifferentialTierStamping is the differential check: a task is
// served by the detector of the tier it was admitted at, even when the
// controller changes tier while the task waits in the queue. Every report's
// result must match a fresh run of its stamped tier's detector on the same
// data — no report may show tier A's label with tier B's output.
func TestBrownoutDifferentialTierStamping(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{delay: 15 * time.Millisecond}, 1, Policy{
		Admission: AdmissionConfig{QueueDepth: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBrownout([]TierDetector{
		{Name: TierFull, Detector: flagOdd{delay: 15 * time.Millisecond}},
		{Name: TierFallback, Detector: flagAll{delay: time.Millisecond}},
	}, BrownoutConfig{
		QueueHigh: 2, QueueLow: 0,
		Interval:      2 * time.Millisecond,
		EscalateAfter: 1, RecoverAfter: 1000,
	}, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := shards(24, 4)
	// Pace arrivals: a 2ms cadence against a 15ms tier-0 detector builds the
	// queue past the watermark while admissions are still flowing, so tasks
	// get stamped on both sides of the escalation.
	reports := svc.Run(ctx, Feed(ctx, data, 2*time.Millisecond))
	if len(reports) != len(data) {
		t.Fatalf("%d reports for %d arrivals", len(reports), len(data))
	}
	tiers := map[string]int{}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
		tiers[rep.Tier]++
		want, err := tierOracle(rep.Tier).Detect(data[rep.TaskID])
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Result.Noisy) != len(want.Noisy) {
			t.Fatalf("task %d (tier %s): %d noisy, its tier's detector says %d",
				rep.TaskID, rep.Tier, len(rep.Result.Noisy), len(want.Noisy))
		}
		for id := range want.Noisy {
			if !rep.Result.Noisy[id] {
				t.Fatalf("task %d (tier %s): sample %d missing from noisy set", rep.TaskID, rep.Tier, id)
			}
		}
	}
	if tiers[TierFull] == 0 || tiers[TierFallback] == 0 {
		t.Fatalf("both tiers should have served tasks, got %v", tiers)
	}
	st := svc.OverloadStatus()
	if st.BrownoutMaxTier < 1 || st.TierChanges < 1 {
		t.Fatalf("controller never escalated: %+v", st)
	}
}

// tierOracle returns an independent instance of the detector a tier name
// maps to in the differential test's ladder.
func tierOracle(tier string) detect.Detector {
	if tier == TierFallback {
		return flagAll{}
	}
	return flagOdd{}
}

// TestBrownoutRecoversTierByTier runs the controller over an idle service and
// checks a forced deep tier walks back rung by rung rather than jumping.
func TestBrownoutRecoversTierByTier(t *testing.T) {
	svc, err := NewServiceWithPolicy(flagOdd{}, 1, Policy{
		Admission: AdmissionConfig{QueueDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var transitions [][2]int
	var mu sync.Mutex
	if err := svc.SetBrownout([]TierDetector{
		{Name: TierFull, Detector: flagOdd{}},
		{Name: TierANN, Detector: flagOdd{}},
		{Name: TierFallback, Detector: flagAll{}},
	}, BrownoutConfig{
		QueueHigh: 1000, QueueLow: 1,
		Interval:      time.Millisecond,
		EscalateAfter: 1, RecoverAfter: 2,
	}, func(from, to int) {
		mu.Lock()
		transitions = append(transitions, [2]int{from, to})
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Force the deepest tier, then let an idle-but-open run recover it.
	svc.brownout.tier.Store(2)
	svc.brownout.fsm.tier = 2

	requests := make(chan Request)
	go func() {
		requests <- Request{TaskID: 0, Data: shards(1, 2)[0]}
		// Keep the service alive long enough for the 1ms-cadence controller
		// to tick through both recovery steps (RecoverAfter=2 each).
		time.Sleep(40 * time.Millisecond)
		close(requests)
	}()
	svc.Run(context.Background(), requests)

	if got := svc.brownout.activeTier(); got != 0 {
		t.Fatalf("tier after idle run = %d, want full recovery to 0", got)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, tr := range transitions {
		if tr[0]-tr[1] != 1 {
			t.Fatalf("recovery jumped %d → %d; must move one rung at a time", tr[0], tr[1])
		}
	}
	if len(transitions) != 2 {
		t.Fatalf("%d transitions recorded, want 2 (2→1, 1→0)", len(transitions))
	}
}
