package lake

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"enld/internal/dataset"
	"enld/internal/fsio"
)

// Inventory is the platform's durable storage: the incremental dataset
// arrivals it has absorbed plus the current platform snapshot (the trained
// general model and its estimates, serialized by the core package). The
// paper's deployment scenario (§I, §IV-A) runs indefinitely, so an
// implementation must survive crashes at any instant: a successful return
// from a mutating call means the mutation is durable, and reopening after a
// kill yields a consistent prefix of the accepted mutations.
//
// Three backends implement it: GobInventory (the original single-blob gob
// format, rewritten atomically on every mutation — simple, compatible,
// O(world) per save), MemInventory (volatile, for tests and benchmarks) and
// seglog.Log (append-only CRC-framed segment log with background compaction
// — the scaling backend).
type Inventory interface {
	// AppendDataset durably appends one incremental dataset arrival and
	// returns its assigned ID. IDs are unique and increase with append
	// order.
	AppendDataset(name string, set dataset.Set) (uint64, error)
	// Datasets lists the live datasets in append order.
	Datasets() ([]DatasetMeta, error)
	// LoadDataset returns the samples of one stored dataset.
	LoadDataset(id uint64) (dataset.Set, error)
	// RemoveDataset durably drops a dataset (e.g. after its samples were
	// screened and folded into the platform inventory halves). Removing an
	// unknown ID is an error.
	RemoveDataset(id uint64) error
	// SavePlatform durably replaces the platform snapshot.
	SavePlatform(snapshot []byte) error
	// LoadPlatform returns the current platform snapshot, or ErrNoSnapshot
	// when none has been saved.
	LoadPlatform() ([]byte, error)
	// Stats reports storage counters for monitoring.
	Stats() InventoryStats
	// Close releases the backend's resources; mutating a closed inventory
	// is an error.
	Close() error
}

// ErrNoSnapshot reports a LoadPlatform on an inventory that has never saved
// a platform snapshot.
var ErrNoSnapshot = errors.New("lake: inventory holds no platform snapshot")

// ErrInventoryClosed reports an operation on a closed inventory.
var ErrInventoryClosed = errors.New("lake: inventory is closed")

// DatasetMeta describes one stored dataset.
type DatasetMeta struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	// Size is the dataset's sample count.
	Size int `json:"size"`
}

// InventoryStats reports a backend's storage counters. Fields that a
// backend has no notion of (segments for the gob blob, bytes for the
// in-memory store) stay zero.
type InventoryStats struct {
	// Backend names the implementation: "gob", "memory" or "seglog".
	Backend string `json:"backend"`
	// Datasets is the live dataset count; Samples the live sample total.
	Datasets int `json:"datasets"`
	Samples  int `json:"samples"`
	// HasPlatform reports whether a platform snapshot is stored.
	HasPlatform bool `json:"has_platform"`
	// Segments is the on-disk segment-file count (1 for the gob blob).
	Segments int `json:"segments,omitempty"`
	// LiveBytes is the on-disk bytes still reachable; DeadBytes the bytes
	// held by superseded or removed records that compaction can reclaim.
	LiveBytes int64 `json:"live_bytes,omitempty"`
	DeadBytes int64 `json:"dead_bytes,omitempty"`
	// Appends and Compactions count mutations and compaction runs since
	// open.
	Appends     uint64 `json:"appends,omitempty"`
	Compactions uint64 `json:"compactions,omitempty"`
	// Recovery carries what the last open dropped (torn tail) — zero for
	// a clean open.
	Recovery RecoveryStats `json:"recovery"`
}

// RecoveryStats accounts for what a lenient recovery dropped. A consistent
// store reports the damage it survived instead of silently truncating.
type RecoveryStats struct {
	// TornTail reports that a truncated or corrupted tail record was
	// dropped.
	TornTail bool `json:"torn_tail,omitempty"`
	// DroppedRecords counts record frames dropped at the tail (exact for
	// framed backends; at least 1 when TornTail is set).
	DroppedRecords int `json:"dropped_records,omitempty"`
	// DroppedBytes counts the bytes discarded from the damage offset to
	// the end of the log.
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// Offset is the byte offset the damage started at, within the file
	// named by File.
	Offset int64  `json:"offset,omitempty"`
	File   string `json:"file,omitempty"`
}

// ---------------------------------------------------------------------------
// In-memory backend.

// MemInventory is a volatile Inventory for tests and benchmarks. It is safe
// for concurrent use.
type MemInventory struct {
	mu       sync.Mutex
	nextID   uint64
	order    []uint64
	datasets map[uint64]memDataset
	platform []byte
	appends  uint64
	closed   bool
}

type memDataset struct {
	name    string
	samples dataset.Set
}

// NewMemInventory returns an empty in-memory inventory.
func NewMemInventory() *MemInventory {
	return &MemInventory{datasets: make(map[uint64]memDataset)}
}

// AppendDataset implements Inventory.
func (m *MemInventory) AppendDataset(name string, set dataset.Set) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, ErrInventoryClosed
	}
	m.nextID++
	id := m.nextID
	m.datasets[id] = memDataset{name: name, samples: set.Clone()}
	m.order = append(m.order, id)
	m.appends++
	return id, nil
}

// Datasets implements Inventory.
func (m *MemInventory) Datasets() ([]DatasetMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DatasetMeta, 0, len(m.order))
	for _, id := range m.order {
		d := m.datasets[id]
		out = append(out, DatasetMeta{ID: id, Name: d.name, Size: len(d.samples)})
	}
	return out, nil
}

// LoadDataset implements Inventory.
func (m *MemInventory) LoadDataset(id uint64) (dataset.Set, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.datasets[id]
	if !ok {
		return nil, fmt.Errorf("lake: inventory has no dataset %d", id)
	}
	return d.samples.Clone(), nil
}

// RemoveDataset implements Inventory.
func (m *MemInventory) RemoveDataset(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrInventoryClosed
	}
	if _, ok := m.datasets[id]; !ok {
		return fmt.Errorf("lake: inventory has no dataset %d", id)
	}
	delete(m.datasets, id)
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.appends++
	return nil
}

// SavePlatform implements Inventory.
func (m *MemInventory) SavePlatform(snapshot []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrInventoryClosed
	}
	m.platform = append([]byte(nil), snapshot...)
	m.appends++
	return nil
}

// LoadPlatform implements Inventory.
func (m *MemInventory) LoadPlatform() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.platform == nil {
		return nil, ErrNoSnapshot
	}
	return append([]byte(nil), m.platform...), nil
}

// Stats implements Inventory.
func (m *MemInventory) Stats() InventoryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := InventoryStats{
		Backend:     "memory",
		Datasets:    len(m.order),
		HasPlatform: m.platform != nil,
		Appends:     m.appends,
	}
	for _, id := range m.order {
		st.Samples += len(m.datasets[id].samples)
	}
	return st
}

// Close implements Inventory.
func (m *MemInventory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Gob-blob backend.

// GobInventory is the original persistence model kept as the compatibility
// backend: the whole inventory is one gob blob, atomically rewritten on
// every mutation. Durable and torn-write-safe (via the shared tmp+rename
// helper) but O(inventory) per save — the scaling ceiling the segment log
// removes.
type GobInventory struct {
	mu      sync.Mutex
	path    string
	blob    gobBlob
	appends uint64
	closed  bool
}

// gobBlob is the gob wire format of the whole inventory.
type gobBlob struct {
	NextID   uint64
	Order    []uint64
	Names    map[uint64]string
	Samples  map[uint64]dataset.Set
	Platform []byte
}

// OpenGobInventory opens (or creates) a gob-blob inventory at path. A
// structurally damaged blob is rejected loudly: the atomic writer never
// leaves a torn file, so damage means external interference, not a crash
// artifact. Plain gob carries no checksum, so silent bit rot inside values
// is undetectable here — use the seglog backend when that matters.
func OpenGobInventory(path string) (*GobInventory, error) {
	inv := &GobInventory{path: path}
	f, err := os.Open(path)
	switch {
	case err == nil:
		defer f.Close()
		if err := gob.NewDecoder(f).Decode(&inv.blob); err != nil {
			return nil, fmt.Errorf("lake: open gob inventory %s: corrupt blob: %w", path, err)
		}
	case errors.Is(err, os.ErrNotExist):
		// Fresh inventory.
	default:
		return nil, fmt.Errorf("lake: open gob inventory %s: %w", path, err)
	}
	if inv.blob.Names == nil {
		inv.blob.Names = make(map[uint64]string)
	}
	if inv.blob.Samples == nil {
		inv.blob.Samples = make(map[uint64]dataset.Set)
	}
	return inv, nil
}

// persist rewrites the whole blob atomically. Callers hold the mutex.
func (g *GobInventory) persist() error {
	return fsio.WriteFileAtomic(g.path, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(g.blob); err != nil {
			return fmt.Errorf("lake: save gob inventory %s: %w", g.path, err)
		}
		return nil
	})
}

// AppendDataset implements Inventory.
func (g *GobInventory) AppendDataset(name string, set dataset.Set) (uint64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return 0, ErrInventoryClosed
	}
	g.blob.NextID++
	id := g.blob.NextID
	g.blob.Order = append(g.blob.Order, id)
	g.blob.Names[id] = name
	g.blob.Samples[id] = set.Clone()
	if err := g.persist(); err != nil {
		delete(g.blob.Names, id)
		delete(g.blob.Samples, id)
		g.blob.Order = g.blob.Order[:len(g.blob.Order)-1]
		g.blob.NextID--
		return 0, err
	}
	g.appends++
	return id, nil
}

// Datasets implements Inventory.
func (g *GobInventory) Datasets() ([]DatasetMeta, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]DatasetMeta, 0, len(g.blob.Order))
	for _, id := range g.blob.Order {
		out = append(out, DatasetMeta{ID: id, Name: g.blob.Names[id], Size: len(g.blob.Samples[id])})
	}
	return out, nil
}

// LoadDataset implements Inventory.
func (g *GobInventory) LoadDataset(id uint64) (dataset.Set, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	set, ok := g.blob.Samples[id]
	if !ok {
		return nil, fmt.Errorf("lake: inventory has no dataset %d", id)
	}
	return set.Clone(), nil
}

// RemoveDataset implements Inventory.
func (g *GobInventory) RemoveDataset(id uint64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrInventoryClosed
	}
	set, ok := g.blob.Samples[id]
	if !ok {
		return fmt.Errorf("lake: inventory has no dataset %d", id)
	}
	name := g.blob.Names[id]
	idx := -1
	for i, v := range g.blob.Order {
		if v == id {
			idx = i
			break
		}
	}
	delete(g.blob.Samples, id)
	delete(g.blob.Names, id)
	g.blob.Order = append(g.blob.Order[:idx], g.blob.Order[idx+1:]...)
	if err := g.persist(); err != nil {
		g.blob.Samples[id] = set
		g.blob.Names[id] = name
		g.blob.Order = append(g.blob.Order[:idx], append([]uint64{id}, g.blob.Order[idx:]...)...)
		return err
	}
	g.appends++
	return nil
}

// SavePlatform implements Inventory.
func (g *GobInventory) SavePlatform(snapshot []byte) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrInventoryClosed
	}
	prev := g.blob.Platform
	g.blob.Platform = append([]byte(nil), snapshot...)
	if err := g.persist(); err != nil {
		g.blob.Platform = prev
		return err
	}
	g.appends++
	return nil
}

// LoadPlatform implements Inventory.
func (g *GobInventory) LoadPlatform() ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.blob.Platform == nil {
		return nil, ErrNoSnapshot
	}
	return append([]byte(nil), g.blob.Platform...), nil
}

// Stats implements Inventory.
func (g *GobInventory) Stats() InventoryStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := InventoryStats{
		Backend:     "gob",
		Datasets:    len(g.blob.Order),
		HasPlatform: g.blob.Platform != nil,
		Segments:    1,
		Appends:     g.appends,
	}
	for _, id := range g.blob.Order {
		st.Samples += len(g.blob.Samples[id])
	}
	if info, err := os.Stat(g.path); err == nil {
		st.LiveBytes = info.Size()
	}
	return st
}

// Close implements Inventory.
func (g *GobInventory) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	return nil
}

// ---------------------------------------------------------------------------
// Store bridging.

// StoreFromInventory rebuilds an in-memory Store working set from the live
// datasets of inv, in append order. Datasets sharing a name supersede each
// other — only the newest copy is loaded. That rule is what makes
// PersistStore crash-safe: its append-new-then-remove-old sequence can die
// between the two steps, and the restart then sees both copies but loads
// only the newer one. Duplicate sample IDs across *differently named*
// datasets are still rejected by Store.Add, surfacing ingestion bugs
// instead of masking them.
func StoreFromInventory(inv Inventory, meta StoreMeta) (*Store, error) {
	st, err := NewStore(meta)
	if err != nil {
		return nil, err
	}
	metas, err := inv.Datasets()
	if err != nil {
		return nil, err
	}
	SortDatasetMetas(metas)
	newest := make(map[string]uint64, len(metas))
	for _, dm := range metas {
		newest[dm.Name] = dm.ID
	}
	for _, dm := range metas {
		if newest[dm.Name] != dm.ID {
			continue // superseded by a later same-name dataset
		}
		set, err := inv.LoadDataset(dm.ID)
		if err != nil {
			return nil, err
		}
		if err := st.Add(set); err != nil {
			return nil, fmt.Errorf("lake: restoring dataset %d (%s): %w", dm.ID, dm.Name, err)
		}
	}
	return st, nil
}

// PersistStore durably writes the store's current samples to inv as one
// dataset under name, superseding any previous dataset of that name. The
// new copy is appended before the old ones are removed, so a crash at any
// point leaves at least one complete copy; StoreFromInventory's
// newest-name-wins rule picks the right one on restart, and the next
// PersistStore sweeps leftover older copies.
func PersistStore(st *Store, inv Inventory, name string) (uint64, error) {
	id, err := inv.AppendDataset(name, st.All())
	if err != nil {
		return 0, err
	}
	metas, err := inv.Datasets()
	if err != nil {
		return id, err
	}
	for _, dm := range metas {
		if dm.Name == name && dm.ID != id {
			if err := inv.RemoveDataset(dm.ID); err != nil {
				return id, err
			}
		}
	}
	return id, nil
}

// SortDatasetMetas orders metas by ID (append order); helper for callers
// that aggregate across backends.
func SortDatasetMetas(metas []DatasetMeta) {
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
}
