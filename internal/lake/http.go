package lake

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Status aggregates a running platform's state for the monitoring endpoint.
type Status struct {
	// Store statistics.
	StoreName    string       `json:"store_name"`
	StoreSamples int          `json:"store_samples"`
	Labels       []LabelCount `json:"labels,omitempty"`

	// Task statistics.
	TasksProcessed int     `json:"tasks_processed"`
	TasksFailed    int     `json:"tasks_failed"`
	MeanF1         float64 `json:"mean_f1"`
	MeanProcessSec float64 `json:"mean_process_sec"`
	MeanQueuedSec  float64 `json:"mean_queued_sec"`

	// Resilience statistics: degraded tasks served by the fallback
	// detector, dead-lettered tasks that exhausted every path, and total
	// transient-failure retries consumed across all tasks.
	TasksDegraded   int `json:"tasks_degraded"`
	TasksDeadLetter int `json:"tasks_dead_lettered"`
	TotalRetries    int `json:"total_retries"`
	// Overload statistics: tasks shed at admission (a load-control decision,
	// counted apart from failures) and tasks abandoned at shutdown.
	TasksShed      int `json:"tasks_shed"`
	TasksAbandoned int `json:"tasks_abandoned"`
	// Overload reports the service's live overload-control state — queue
	// occupancy, shed counts and the active brownout tier — when a service
	// is attached.
	Overload *OverloadStatus `json:"overload,omitempty"`
	// Breaker reports the circuit breaker, when one is attached.
	Breaker *BreakerStatus `json:"breaker,omitempty"`

	// Training reports the numerical-health watchdog of the platform's
	// training stack, when one is wired in.
	Training *TrainingHealth `json:"training_health,omitempty"`

	// Storage reports the inventory backend's live statistics, when one is
	// attached — segment counts, live/dead bytes, and what the last
	// recovery dropped.
	Storage *InventoryStats `json:"storage,omitempty"`
	// JournalRecovery reports what the journal's crash recovery found (and,
	// on a torn tail, dropped), when a journal recovery has been published.
	JournalRecovery *JournalRecovery `json:"journal_recovery,omitempty"`

	// KeepRecent is the configured bound of the Recent list.
	KeepRecent int `json:"keep_recent"`
	// Recent holds the newest task reports, most recent first.
	Recent []ReportSummary `json:"recent,omitempty"`
}

// TrainingHealth is the JSON shape of the training stack's numerical-health
// watchdog counters (mirrors nn.WatchdogStats without importing it, keeping
// the serving layer decoupled from the training stack).
type TrainingHealth struct {
	// HealthChecks counts executed NaN/Inf/divergence checks.
	HealthChecks int `json:"health_checks"`
	// Rollbacks counts checkpoint restorations after a failed check.
	Rollbacks int `json:"rollbacks"`
	// LastUnhealthyEpoch is the most recent epoch flagged unhealthy, -1 if
	// none ever was.
	LastUnhealthyEpoch int `json:"last_unhealthy_epoch"`
	// CheckpointsTaken counts good-state checkpoints captured.
	CheckpointsTaken int `json:"checkpoints_taken"`
	// CheckpointVerifyFailures counts checkpoints rejected at restore or
	// load time because their integrity checksum no longer matched.
	CheckpointVerifyFailures int `json:"checkpoint_verify_failures"`
}

// BreakerStatus is the JSON shape of the circuit breaker's state.
type BreakerStatus struct {
	State string `json:"state"`
	Trips int    `json:"trips"`
}

// ReportSummary is the JSON shape of one processed task.
type ReportSummary struct {
	TaskID     int     `json:"task_id"`
	Size       int     `json:"size"`
	Noisy      int     `json:"noisy"`
	F1         float64 `json:"f1"`
	ProcessSec float64 `json:"process_sec"`
	QueuedSec  float64 `json:"queued_sec"`
	Failed     bool    `json:"failed,omitempty"`
	// Error carries the failure cause, not just the Failed bit, so the
	// status endpoint shows why a task failed.
	Error        string `json:"error,omitempty"`
	Retries      int    `json:"retries,omitempty"`
	Degraded     bool   `json:"degraded,omitempty"`
	DeadLettered bool   `json:"dead_lettered,omitempty"`
	Shed         bool   `json:"shed,omitempty"`
	Abandoned    bool   `json:"abandoned,omitempty"`
	Tier         string `json:"tier,omitempty"`
	// Shard and Rerouted carry cluster placement outcomes when the report
	// came through a coordinator (see internal/lake/cluster).
	Shard    string `json:"shard,omitempty"`
	Rerouted bool   `json:"rerouted,omitempty"`
}

// StatusTracker accumulates task reports and serves them over HTTP. It is
// safe for concurrent use: workers record reports while the endpoint reads.
type StatusTracker struct {
	mu        sync.Mutex
	store     *Store
	breaker   *Breaker
	training  *TrainingHealth
	inventory Inventory
	service   *Service
	jrecovery *JournalRecovery
	reports   []Report
	// keepRecent bounds the recent-report ring.
	keepRecent int
}

// defaultKeepRecent is the recent-report bound when none is configured.
const defaultKeepRecent = 20

// NewStatusTracker returns a tracker over an optional store (nil is allowed;
// store statistics are then omitted).
func NewStatusTracker(store *Store) *StatusTracker {
	return &StatusTracker{store: store, keepRecent: defaultKeepRecent}
}

// SetKeepRecent bounds the recent-report list served by Snapshot (default
// 20). Values below 1 restore the default.
func (t *StatusTracker) SetKeepRecent(n int) {
	if n < 1 {
		n = defaultKeepRecent
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keepRecent = n
}

// AttachBreaker makes snapshots report the circuit breaker's live state and
// trip count. A nil breaker (policy without one) is ignored.
func (t *StatusTracker) AttachBreaker(b *Breaker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.breaker = b
}

// SetTrainingHealth publishes the training stack's watchdog counters into
// the status JSON. Call it after platform setup and again after any model
// update; the latest value wins.
func (t *StatusTracker) SetTrainingHealth(h TrainingHealth) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.training = &h
}

// AttachInventory makes snapshots report the storage backend's live
// statistics (Inventory.Stats is re-read at every snapshot). A nil
// inventory detaches.
func (t *StatusTracker) AttachInventory(inv Inventory) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.inventory = inv
}

// AttachService makes snapshots report the service's live overload-control
// state (Service.OverloadStatus is re-read at every snapshot): admission
// queue depth and capacity, the shedder's service-time estimate, and the
// brownout tier. A nil service detaches.
func (t *StatusTracker) AttachService(svc *Service) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.service = svc
}

// SetJournalRecovery publishes what the journal's crash recovery found, so
// a dropped torn tail is visible on /statusz instead of only in logs.
func (t *StatusTracker) SetJournalRecovery(rec JournalRecovery) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jrecovery = &rec
}

// Record adds a processed task report.
func (t *StatusTracker) Record(rep Report) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reports = append(t.reports, rep)
}

// Snapshot builds the current status.
func (t *StatusTracker) Snapshot() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{KeepRecent: t.keepRecent}
	if t.store != nil {
		meta := t.store.Meta()
		st.StoreName = meta.Name
		st.StoreSamples = t.store.Len()
		st.Labels = t.store.LabelHistogram()
	}
	if t.breaker != nil {
		st.Breaker = &BreakerStatus{State: t.breaker.State().String(), Trips: t.breaker.Trips()}
	}
	if t.training != nil {
		h := *t.training
		st.Training = &h
	}
	if t.inventory != nil {
		s := t.inventory.Stats()
		st.Storage = &s
	}
	if t.jrecovery != nil {
		r := *t.jrecovery
		st.JournalRecovery = &r
	}
	if t.service != nil {
		ov := t.service.OverloadStatus()
		st.Overload = &ov
	}
	var f1Sum float64
	var procSum, queueSum time.Duration
	ok := 0
	for _, rep := range t.reports {
		st.TasksProcessed++
		st.TotalRetries += rep.Retries
		if rep.Degraded {
			st.TasksDegraded++
		}
		if rep.DeadLettered {
			st.TasksDeadLetter++
		}
		// Shed and abandoned tasks carry an explanatory error but are their
		// own outcome classes, not detection failures.
		if rep.Shed {
			st.TasksShed++
			continue
		}
		if rep.Abandoned {
			st.TasksAbandoned++
			continue
		}
		if rep.Err != nil {
			st.TasksFailed++
			continue
		}
		ok++
		f1Sum += rep.Detection.F1
		procSum += rep.Process
		queueSum += rep.Queued
	}
	if ok > 0 {
		st.MeanF1 = f1Sum / float64(ok)
		st.MeanProcessSec = procSum.Seconds() / float64(ok)
		st.MeanQueuedSec = queueSum.Seconds() / float64(ok)
	}
	// Most recent first, bounded.
	recent := append([]Report(nil), t.reports...)
	sort.SliceStable(recent, func(i, j int) bool { return recent[i].TaskID > recent[j].TaskID })
	if len(recent) > t.keepRecent {
		recent = recent[:t.keepRecent]
	}
	for _, rep := range recent {
		rs := ReportSummary{
			TaskID:       rep.TaskID,
			Size:         rep.Size,
			F1:           rep.Detection.F1,
			ProcessSec:   rep.Process.Seconds(),
			QueuedSec:    rep.Queued.Seconds(),
			Failed:       rep.Err != nil && !rep.Shed && !rep.Abandoned,
			Retries:      rep.Retries,
			Degraded:     rep.Degraded,
			DeadLettered: rep.DeadLettered,
			Shed:         rep.Shed,
			Abandoned:    rep.Abandoned,
			Tier:         rep.Tier,
			Shard:        rep.Shard,
			Rerouted:     rep.Rerouted,
		}
		if rep.Err != nil {
			rs.Error = rep.Err.Error()
		}
		if rep.Result != nil {
			rs.Noisy = len(rep.Result.Noisy)
		}
		st.Recent = append(st.Recent, rs)
	}
	return st
}

// Handler returns an http.Handler serving the status as JSON at any path.
// Mount it on a mux (e.g. /statusz) to monitor a running lake simulation.
func (t *StatusTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
