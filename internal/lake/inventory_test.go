package lake

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"enld/internal/dataset"
	"enld/internal/fault"
)

// invSet builds a small dataset whose sample IDs start at base.
func invSet(base, n int) dataset.Set {
	out := make(dataset.Set, n)
	for i := range out {
		out[i] = dataset.Sample{ID: base + i, X: []float64{float64(i), 1}, Observed: i % 2, True: i % 2}
	}
	return out
}

// openBackends returns one fresh inventory per persistent backend plus the
// in-memory one, with reopen functions for the durable ones.
func openBackends(t *testing.T) map[string]Inventory {
	t.Helper()
	gobInv, err := OpenGobInventory(filepath.Join(t.TempDir(), "inv.gob"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Inventory{
		"memory": NewMemInventory(),
		"gob":    gobInv,
	}
}

// TestInventoryContract exercises the Inventory interface semantics every
// backend must share: append order, ID uniqueness, load round-trips,
// removal, platform snapshot replacement and closed-state errors.
func TestInventoryContract(t *testing.T) {
	for name, inv := range openBackends(t) {
		t.Run(name, func(t *testing.T) {
			id1, err := inv.AppendDataset("a", invSet(0, 3))
			if err != nil {
				t.Fatal(err)
			}
			id2, err := inv.AppendDataset("b", invSet(100, 5))
			if err != nil {
				t.Fatal(err)
			}
			if id2 <= id1 {
				t.Fatalf("IDs not increasing: %d then %d", id1, id2)
			}
			metas, err := inv.Datasets()
			if err != nil {
				t.Fatal(err)
			}
			if len(metas) != 2 || metas[0].Name != "a" || metas[1].Name != "b" || metas[1].Size != 5 {
				t.Fatalf("metas = %+v", metas)
			}
			set, err := inv.LoadDataset(id2)
			if err != nil {
				t.Fatal(err)
			}
			if len(set) != 5 || set[0].ID != 100 {
				t.Fatalf("loaded %d samples, first ID %d", len(set), set[0].ID)
			}
			if _, err := inv.LoadDataset(9999); err == nil {
				t.Fatal("loading unknown dataset succeeded")
			}

			if _, err := inv.LoadPlatform(); !errors.Is(err, ErrNoSnapshot) {
				t.Fatalf("fresh LoadPlatform err = %v, want ErrNoSnapshot", err)
			}
			if err := inv.SavePlatform([]byte("snap-v1")); err != nil {
				t.Fatal(err)
			}
			if err := inv.SavePlatform([]byte("snap-v2")); err != nil {
				t.Fatal(err)
			}
			snap, err := inv.LoadPlatform()
			if err != nil {
				t.Fatal(err)
			}
			if string(snap) != "snap-v2" {
				t.Fatalf("platform snapshot = %q, want snap-v2", snap)
			}

			if err := inv.RemoveDataset(id1); err != nil {
				t.Fatal(err)
			}
			if err := inv.RemoveDataset(id1); err == nil {
				t.Fatal("double remove succeeded")
			}
			metas, err = inv.Datasets()
			if err != nil {
				t.Fatal(err)
			}
			if len(metas) != 1 || metas[0].ID != id2 {
				t.Fatalf("after remove, metas = %+v", metas)
			}

			st := inv.Stats()
			if st.Datasets != 1 || st.Samples != 5 || !st.HasPlatform {
				t.Fatalf("stats = %+v", st)
			}

			if err := inv.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := inv.AppendDataset("c", invSet(0, 1)); !errors.Is(err, ErrInventoryClosed) {
				t.Fatalf("append after close err = %v", err)
			}
			if err := inv.SavePlatform(nil); !errors.Is(err, ErrInventoryClosed) {
				t.Fatalf("save platform after close err = %v", err)
			}
		})
	}
}

// TestGobInventoryReopen checks the gob backend's durability: a reopened
// inventory sees every accepted mutation, and appended IDs keep increasing
// across incarnations.
func TestGobInventoryReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inv.gob")
	inv, err := OpenGobInventory(path)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := inv.AppendDataset("a", invSet(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := inv.SavePlatform([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}

	inv2, err := OpenGobInventory(path)
	if err != nil {
		t.Fatal(err)
	}
	defer inv2.Close()
	id2, err := inv2.AppendDataset("b", invSet(50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id1 {
		t.Fatalf("reopened IDs regressed: %d then %d", id1, id2)
	}
	set, err := inv2.LoadDataset(id1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("reloaded dataset has %d samples, want 4", len(set))
	}
	snap, err := inv2.LoadPlatform()
	if err != nil || string(snap) != "snap" {
		t.Fatalf("reloaded platform = %q, %v", snap, err)
	}
	if st := inv2.Stats(); st.Backend != "gob" || st.LiveBytes <= 0 || st.Segments != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGobInventoryTornBlobRejected: the gob backend writes atomically, so a
// structurally damaged blob means external interference and must be a loud
// open error. (Silent single-bit rot is undetectable in plain gob — that
// detection gap is precisely what the CRC-framed segment log closes.)
func TestGobInventoryTornBlobRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inv.gob")
	inv, err := OpenGobInventory(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.AppendDataset("a", invSet(0, 4)); err != nil {
		t.Fatal(err)
	}
	inv.Close()
	if err := fault.TearFile(path, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenGobInventory(path); err == nil {
		t.Fatal("torn gob blob opened successfully")
	}
}

// TestStorePersistRestoreRoundTrip drives the Store bridge: persist a store
// into an inventory, restore it, and confirm supersede-by-name semantics
// (the crash-window artifact of PersistStore: two same-name copies resolve
// to the newest).
func TestStorePersistRestoreRoundTrip(t *testing.T) {
	inv := NewMemInventory()
	meta := StoreMeta{Name: "t", Classes: 2, FeatureDim: 2}
	st, err := NewStore(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(invSet(0, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := PersistStore(st, inv, "store"); err != nil {
		t.Fatal(err)
	}

	// Mutate and persist again: the old copy must be superseded.
	if err := st.Add(invSet(100, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := PersistStore(st, inv, "store"); err != nil {
		t.Fatal(err)
	}
	metas, _ := inv.Datasets()
	if len(metas) != 1 {
		t.Fatalf("after re-persist, %d datasets live, want 1", len(metas))
	}

	got, err := StoreFromInventory(inv, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 8 {
		t.Fatalf("restored store has %d samples, want 8", got.Len())
	}

	// Simulate the PersistStore crash window: a stale same-name copy left
	// behind. Restore must pick the newest, not fail or double-count.
	if _, err := inv.AppendDataset("store", st.All()); err != nil {
		t.Fatal(err)
	}
	got, err = StoreFromInventory(inv, meta)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 8 {
		t.Fatalf("restored store has %d samples after crash artifact, want 8", got.Len())
	}
}

// TestServiceDurableAppend: with an inventory attached, every arrival is
// durably recorded before processing — the storage layer sees one dataset
// per task.
func TestServiceDurableAppend(t *testing.T) {
	inv := NewMemInventory()
	svc, err := NewService(flagOdd{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetInventory(inv)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(4, 3), 0))
	if len(reports) != 4 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("task %d: %v", rep.TaskID, rep.Err)
		}
	}
	metas, err := inv.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 4 {
		t.Fatalf("inventory has %d datasets, want 4", len(metas))
	}
	names := map[string]bool{}
	for _, m := range metas {
		names[m.Name] = true
		if m.Size != 3 {
			t.Fatalf("dataset %s has %d samples, want 3", m.Name, m.Size)
		}
	}
	for i := 0; i < 4; i++ {
		if !names[fmt.Sprintf("task-%d", i)] {
			t.Fatalf("missing task-%d in %v", i, names)
		}
	}
}

// TestServiceDurableAppendFailureDeadLetters: a task whose durable append
// fails must not be processed as if it were stored — it dead-letters with
// the storage error.
func TestServiceDurableAppendFailureDeadLetters(t *testing.T) {
	inv := NewMemInventory()
	if err := inv.Close(); err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(flagOdd{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetInventory(inv)
	ctx := context.Background()
	reports := svc.Run(ctx, Feed(ctx, shards(3, 2), 0))
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3 (no task silently dropped)", len(reports))
	}
	for _, rep := range reports {
		if !rep.DeadLettered || !errors.Is(rep.Err, ErrInventoryClosed) {
			t.Fatalf("task %d: dead-lettered=%v err=%v", rep.TaskID, rep.DeadLettered, rep.Err)
		}
	}
}
