package dataset

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"enld/internal/mat"
)

// buildIDX writes a valid IDX image+label pair for testing.
func buildIDX(t *testing.T, images [][]byte, rows, cols int, labels []byte) (img, lbl *bytes.Buffer) {
	t.Helper()
	img = &bytes.Buffer{}
	for _, v := range []uint32{idxMagicImages, uint32(len(images)), uint32(rows), uint32(cols)} {
		if err := binary.Write(img, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, im := range images {
		img.Write(im)
	}
	lbl = &bytes.Buffer{}
	for _, v := range []uint32{idxMagicLabels, uint32(len(labels))} {
		if err := binary.Write(lbl, binary.BigEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	lbl.Write(labels)
	return img, lbl
}

func TestLoadIDX(t *testing.T) {
	images := [][]byte{
		{0, 128, 255, 0},
		{255, 255, 0, 0},
	}
	img, lbl := buildIDX(t, images, 2, 2, []byte{3, 7})
	set, err := LoadIDX(img, lbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("%d samples", len(set))
	}
	if set[0].Observed != 3 || set[1].Observed != 7 {
		t.Fatalf("labels %d, %d", set[0].Observed, set[1].Observed)
	}
	if set[0].X[2] != 1 || set[0].X[0] != 0 {
		t.Fatalf("pixel scaling: %v", set[0].X)
	}
	if math.Abs(set[0].X[1]-128.0/255) > 1e-12 {
		t.Fatalf("pixel scaling: %v", set[0].X[1])
	}
}

func TestLoadIDXErrors(t *testing.T) {
	images := [][]byte{{1, 2, 3, 4}}
	img, lbl := buildIDX(t, images, 2, 2, []byte{1, 2}) // label count mismatch
	if _, err := LoadIDX(img, lbl); err == nil {
		t.Error("count mismatch accepted")
	}
	// Bad magic.
	bad := &bytes.Buffer{}
	binary.Write(bad, binary.BigEndian, uint32(0xdeadbeef))
	_, lbl2 := buildIDX(t, images, 2, 2, []byte{1})
	if _, err := LoadIDX(bad, lbl2); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated image payload.
	img3, lbl3 := buildIDX(t, [][]byte{{1, 2}}, 2, 2, []byte{1}) // 2 bytes for 4-pixel image
	if _, err := LoadIDX(img3, lbl3); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestLoadCSV(t *testing.T) {
	in := strings.NewReader("f1,f2,label\n1.5,2.5,0\n3.0,4.0,2\n")
	set, err := LoadCSV(in, CSVOptions{LabelColumn: -1, HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("%d samples", len(set))
	}
	if set[0].X[0] != 1.5 || set[0].X[1] != 2.5 || set[0].Observed != 0 {
		t.Fatalf("sample 0: %+v", set[0])
	}
	if set[1].Observed != 2 {
		t.Fatalf("sample 1 label %d", set[1].Observed)
	}
}

func TestLoadCSVLabelFirst(t *testing.T) {
	in := strings.NewReader("1,0.5,0.6\n0,0.7,0.8\n")
	set, err := LoadCSV(in, CSVOptions{LabelColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	if set[0].Observed != 1 || set[0].X[0] != 0.5 {
		t.Fatalf("sample 0: %+v", set[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := LoadCSV(strings.NewReader("a,b\n"), CSVOptions{LabelColumn: 1}); err == nil {
		t.Error("non-numeric label accepted")
	}
	if _, err := LoadCSV(strings.NewReader("x,1\n"), CSVOptions{LabelColumn: 1}); err == nil {
		t.Error("non-numeric feature accepted")
	}
	if _, err := LoadCSV(strings.NewReader("1,2\n"), CSVOptions{LabelColumn: 5}); err == nil {
		t.Error("out-of-range label column accepted")
	}
}

func TestFitPCARecoversVarianceDirection(t *testing.T) {
	// Data spread along (1, 1, 0) with small noise elsewhere: the first
	// component must align with it.
	rng := mat.NewRNG(100)
	set := make(Set, 400)
	for i := range set {
		tv := rng.Norm() * 5
		set[i] = Sample{ID: i, X: []float64{
			tv + rng.Norm()*0.1,
			tv + rng.Norm()*0.1,
			rng.Norm() * 0.1,
		}}
	}
	p, err := FitPCA(set, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	c0 := p.Components[0]
	// Alignment with (1,1,0)/sqrt(2) up to sign.
	want := 1 / math.Sqrt2
	dot := c0[0]*want + c0[1]*want
	if math.Abs(math.Abs(dot)-1) > 0.01 {
		t.Fatalf("first component %v not aligned with (1,1,0)", c0)
	}
	// Components are unit length and orthogonal.
	if math.Abs(mat.Norm2(c0)-1) > 1e-9 {
		t.Fatal("component not unit")
	}
	if math.Abs(mat.Dot(p.Components[0], p.Components[1])) > 1e-6 {
		t.Fatal("components not orthogonal")
	}
	// Explained variance is decreasing.
	ev, err := p.ExplainedVariance(set)
	if err != nil {
		t.Fatal(err)
	}
	if ev[0] < ev[1] {
		t.Fatalf("variance not sorted: %v", ev)
	}
}

func TestPCAProjectAndApply(t *testing.T) {
	rng := mat.NewRNG(101)
	set := make(Set, 50)
	for i := range set {
		set[i] = Sample{ID: i, X: rng.NormVec(make([]float64, 6), 0, 1), Observed: i % 3, True: i % 3}
	}
	p, err := FitPCA(set, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := p.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced) != len(set) || len(reduced[0].X) != 2 {
		t.Fatalf("reduced shape %d × %d", len(reduced), len(reduced[0].X))
	}
	// Labels and IDs preserved; originals untouched.
	if reduced[3].ID != set[3].ID || reduced[3].Observed != set[3].Observed {
		t.Fatal("metadata lost")
	}
	if len(set[0].X) != 6 {
		t.Fatal("original mutated")
	}
	if _, err := p.Project([]float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFitPCAErrors(t *testing.T) {
	rng := mat.NewRNG(1)
	if _, err := FitPCA(Set{{X: []float64{1}}}, 1, rng); err == nil {
		t.Error("single sample accepted")
	}
	two := Set{{X: []float64{1, 2}}, {X: []float64{3, 4}}}
	if _, err := FitPCA(two, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FitPCA(two, 3, rng); err == nil {
		t.Error("k > dim accepted")
	}
	ragged := Set{{X: []float64{1, 2}}, {X: []float64{3}}}
	if _, err := FitPCA(ragged, 1, rng); err == nil {
		t.Error("ragged accepted")
	}
}

func TestPCAEndToEndWithIDX(t *testing.T) {
	// The documented real-data path: IDX pixels → PCA → compact features.
	rng := mat.NewRNG(102)
	const n, rows, cols = 60, 4, 4
	images := make([][]byte, n)
	labels := make([]byte, n)
	for i := range images {
		img := make([]byte, rows*cols)
		// Two "classes": bright top half versus bright bottom half.
		labels[i] = byte(i % 2)
		for px := range img {
			base := 30
			if (labels[i] == 0) == (px < rows*cols/2) {
				base = 220
			}
			img[px] = byte(base + rng.Intn(30))
		}
		images[i] = img
	}
	imgBuf, lblBuf := buildIDX(t, images, rows, cols, labels)
	set, err := LoadIDX(imgBuf, lblBuf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FitPCA(set, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := p.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	// The two classes must separate along the leading components: a
	// nearest-class-mean rule should be near perfect.
	means := classMeansOf(reduced, 2, 2)
	correct := 0
	for _, s := range reduced {
		d0, d1 := mat.SqDist(s.X, means[0]), mat.SqDist(s.X, means[1])
		pred := 0
		if d1 < d0 {
			pred = 1
		}
		if pred == s.True {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(reduced)); acc < 0.95 {
		t.Fatalf("PCA features do not separate classes: acc %v", acc)
	}
}
