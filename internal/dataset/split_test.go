package dataset

import (
	"testing"

	"enld/internal/mat"
)

func genSmall(t *testing.T) Set {
	t.Helper()
	sp := Spec{Name: "small", Classes: 8, FeatureDim: 6, PerClass: 30, Separation: 3, Spread: 1, Seed: 5}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestSplitRatioPartition(t *testing.T) {
	set := genSmall(t)
	rng := mat.NewRNG(1)
	inv, inc, err := SplitRatio(set, 2.0/3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv)+len(inc) != len(set) {
		t.Fatalf("partition sizes %d + %d != %d", len(inv), len(inc), len(set))
	}
	// 2:1 ratio within one sample.
	if want := len(set) * 2 / 3; abs(len(inv)-want) > 1 {
		t.Fatalf("inventory size %d, want ~%d", len(inv), want)
	}
	seen := map[int]bool{}
	for _, s := range inv {
		seen[s.ID] = true
	}
	for _, s := range inc {
		if seen[s.ID] {
			t.Fatalf("sample %d in both splits", s.ID)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSplitRatioErrors(t *testing.T) {
	rng := mat.NewRNG(1)
	if _, _, err := SplitRatio(nil, 0.5, rng); err == nil {
		t.Error("empty set accepted")
	}
	set := genSmall(t)
	for _, r := range []float64{0, 1, -0.5, 2} {
		if _, _, err := SplitRatio(set, r, rng); err == nil {
			t.Errorf("ratio %v accepted", r)
		}
	}
}

func TestSplitRatioExtremesNonEmpty(t *testing.T) {
	set := Set{{ID: 0}, {ID: 1}}
	rng := mat.NewRNG(2)
	a, b, err := SplitRatio(set, 0.01, rng)
	if err != nil || len(a) == 0 || len(b) == 0 {
		t.Fatalf("extreme low ratio: %d/%d err=%v", len(a), len(b), err)
	}
	a, b, err = SplitRatio(set, 0.99, rng)
	if err != nil || len(a) == 0 || len(b) == 0 {
		t.Fatalf("extreme high ratio: %d/%d err=%v", len(a), len(b), err)
	}
}

func TestShardBasics(t *testing.T) {
	set := genSmall(t)
	rng := mat.NewRNG(3)
	shards, err := Shard(set, ShardSpec{Shards: 4, MinClasses: 3, MaxClasses: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("%d shards", len(shards))
	}
	totalSeen := map[int]int{}
	for i, sh := range shards {
		if len(sh) == 0 {
			t.Fatalf("shard %d empty", i)
		}
		classes := map[int]bool{}
		for _, s := range sh {
			classes[s.True] = true
			totalSeen[s.ID]++
		}
		if len(classes) < 3 || len(classes) > 4 {
			t.Fatalf("shard %d has %d classes", i, len(classes))
		}
	}
	for id, n := range totalSeen {
		if n > 1 {
			t.Fatalf("sample %d appears in %d shards", id, n)
		}
	}
}

func TestShardUnbalanced(t *testing.T) {
	// Shards must not all have identical per-class counts — unbalance is the
	// point of the paper's incremental split.
	sp := Spec{Name: "u", Classes: 10, FeatureDim: 4, PerClass: 100, Separation: 3, Spread: 1, Seed: 9}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Shard(set, ShardSpec{Shards: 5, MinClasses: 4, MaxClasses: 6}, mat.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]bool{}
	for _, sh := range shards {
		perClass := map[int]int{}
		for _, s := range sh {
			perClass[s.True]++
		}
		for _, n := range perClass {
			counts[n] = true
		}
	}
	if len(counts) < 3 {
		t.Fatalf("shard class counts suspiciously uniform: %v", counts)
	}
}

func TestShardErrors(t *testing.T) {
	set := genSmall(t)
	rng := mat.NewRNG(5)
	cases := []ShardSpec{
		{Shards: 0, MinClasses: 2, MaxClasses: 3},
		{Shards: 2, MinClasses: 0, MaxClasses: 3},
		{Shards: 2, MinClasses: 4, MaxClasses: 3},
		{Shards: 2, MinClasses: 2, MaxClasses: 100}, // more classes than pool has
	}
	for i, spec := range cases {
		if _, err := Shard(set, spec, rng); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Shard(nil, ShardSpec{Shards: 1, MinClasses: 1, MaxClasses: 1}, rng); err == nil {
		t.Error("empty pool accepted")
	}
}

func TestToExamples(t *testing.T) {
	s := Set{
		{ID: 0, X: []float64{1, 2}, Observed: 0, True: 0},
		{ID: 1, X: []float64{3, 4}, Observed: Missing, True: 1},
		{ID: 2, X: []float64{5, 6}, Observed: 2, True: 1},
	}
	ex := ToExamples(s, 3)
	if len(ex) != 2 {
		t.Fatalf("ToExamples kept %d", len(ex))
	}
	if ex[1].Target[2] != 1 {
		t.Fatal("target not one-hot on observed label")
	}
	exT := ToExamplesTrue(s, 3)
	if len(exT) != 3 {
		t.Fatalf("ToExamplesTrue kept %d", len(exT))
	}
	if exT[2].Target[1] != 1 {
		t.Fatal("true target wrong")
	}
}

func TestShardDrift(t *testing.T) {
	sp := Spec{Name: "drift", Classes: 4, FeatureDim: 6, PerClass: 80, Separation: 3, Spread: 1, Seed: 60}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	spec := ShardSpec{Shards: 2, MinClasses: 4, MaxClasses: 4, Drift: 2.0}
	drifted, err := Shard(set, spec, mat.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	spec.Drift = 0
	plain, err := Shard(set, spec, mat.NewRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	// Drifted samples must not share backing arrays with the pool (the pool
	// must stay unmodified).
	byID := map[int][]float64{}
	for _, s := range set {
		byID[s.ID] = s.X
	}
	moved := 0
	for _, s := range drifted[0] {
		orig := byID[s.ID]
		if &orig[0] == &s.X[0] {
			t.Fatalf("drifted sample %d aliases pool storage", s.ID)
		}
		if mat.Dist(orig, s.X) > 1e-9 {
			moved++
		}
	}
	if moved != len(drifted[0]) {
		t.Fatalf("only %d/%d samples drifted", moved, len(drifted[0]))
	}
	// Within one (shard, class) slice the offset is shared: differences
	// between original and drifted vectors must be identical per class.
	perClassOffset := map[int][]float64{}
	for _, s := range drifted[0] {
		diff := make([]float64, len(s.X))
		mat.Sub(diff, s.X, byID[s.ID])
		if prev, ok := perClassOffset[s.True]; ok {
			if mat.Dist(prev, diff) > 1e-9 {
				t.Fatalf("class %d has inconsistent drift offsets", s.True)
			}
		} else {
			perClassOffset[s.True] = diff
		}
	}
	// Undrifted shards share storage with the pool (no needless copying).
	shared := 0
	for _, s := range plain[0] {
		if &byID[s.ID][0] == &s.X[0] {
			shared++
		}
	}
	if shared != len(plain[0]) {
		t.Fatalf("plain shard copied storage: %d/%d shared", shared, len(plain[0]))
	}
}
