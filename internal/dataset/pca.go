package dataset

import (
	"errors"
	"fmt"

	"enld/internal/mat"
)

// PCA is a fitted principal-component projection. Raw pixel inputs from
// LoadIDX are hundreds of dimensions; the detection pipeline's k-NN queries
// and MLP models work best on compact feature vectors, so PCA bridges the
// two: fit on the inventory, project everything.
type PCA struct {
	Mean       []float64
	Components [][]float64 // row per component, unit length
}

// FitPCA computes the top-k principal components of the samples' feature
// vectors using orthogonal (power) iteration on the covariance operator.
// It never materializes the covariance matrix, so high input dimensions are
// fine. Deterministic given the rng seed.
func FitPCA(s Set, k int, rng *mat.RNG) (*PCA, error) {
	if len(s) < 2 {
		return nil, errors.New("dataset: pca needs at least 2 samples")
	}
	dim := len(s[0].X)
	if k < 1 || k > dim {
		return nil, fmt.Errorf("dataset: pca components %d out of [1, %d]", k, dim)
	}
	mean := make([]float64, dim)
	for _, smp := range s {
		if len(smp.X) != dim {
			return nil, errors.New("dataset: pca on ragged vectors")
		}
		mat.Axpy(1, smp.X, mean)
	}
	mat.Scale(1/float64(len(s)), mean)

	centered := make([][]float64, len(s))
	for i, smp := range s {
		c := make([]float64, dim)
		mat.Sub(c, smp.X, mean)
		centered[i] = c
	}

	p := &PCA{Mean: mean}
	// Deflation: find each component by power iteration, then remove its
	// variance contribution from the centered data.
	work := make([]float64, dim)
	for comp := 0; comp < k; comp++ {
		v := rng.NormVec(make([]float64, dim), 0, 1)
		normalize(v)
		for iter := 0; iter < 100; iter++ {
			// work = Cov·v = (1/n) Σ x (xᵀ v)
			clear(work)
			for _, x := range centered {
				mat.Axpy(mat.Dot(x, v), x, work)
			}
			mat.Scale(1/float64(len(centered)), work)
			n := mat.Norm2(work)
			if n < 1e-12 {
				// No variance left; pad with an arbitrary unit vector
				// orthogonal to nothing in particular.
				break
			}
			mat.Scale(1/n, work)
			delta := mat.Dist(work, v)
			copy(v, work)
			if delta < 1e-10 {
				break
			}
		}
		p.Components = append(p.Components, append([]float64(nil), v...))
		// Deflate: remove the component from every centered vector.
		for _, x := range centered {
			mat.Axpy(-mat.Dot(x, v), v, x)
		}
	}
	return p, nil
}

// Project returns the k-dimensional projection of x.
func (p *PCA) Project(x []float64) ([]float64, error) {
	if len(x) != len(p.Mean) {
		return nil, fmt.Errorf("dataset: pca project dim %d, want %d", len(x), len(p.Mean))
	}
	centered := make([]float64, len(x))
	mat.Sub(centered, x, p.Mean)
	out := make([]float64, len(p.Components))
	for i, comp := range p.Components {
		out[i] = mat.Dot(centered, comp)
	}
	return out, nil
}

// Apply returns a copy of s with every feature vector projected.
func (p *PCA) Apply(s Set) (Set, error) {
	out := make(Set, len(s))
	for i, smp := range s {
		x, err := p.Project(smp.X)
		if err != nil {
			return nil, err
		}
		smp.X = x
		out[i] = smp
	}
	return out, nil
}

// ExplainedVariance returns, per fitted component, the variance of the data
// along it — useful for choosing k.
func (p *PCA) ExplainedVariance(s Set) ([]float64, error) {
	out := make([]float64, len(p.Components))
	if len(s) == 0 {
		return out, nil
	}
	centered := make([]float64, len(p.Mean))
	for _, smp := range s {
		if len(smp.X) != len(p.Mean) {
			return nil, errors.New("dataset: explained variance on mismatched vectors")
		}
		mat.Sub(centered, smp.X, p.Mean)
		for i, comp := range p.Components {
			d := mat.Dot(centered, comp)
			out[i] += d * d
		}
	}
	for i := range out {
		out[i] /= float64(len(s))
	}
	return out, nil
}

func normalize(v []float64) {
	if n := mat.Norm2(v); n > 0 {
		mat.Scale(1/n, v)
	}
}
