// Package dataset provides the labeled-sample types used throughout the
// repository and synthetic dataset generators standing in for the paper's
// image benchmarks (EMNIST letters, CIFAR-100, Tiny-ImageNet).
//
// The generators produce Gaussian-mixture classification problems in feature
// space whose difficulty profile matches the role each image dataset plays in
// the paper's evaluation: EMNIST-like data is nearly separable (the easy
// task), CIFAR100-like data has groups of confusable classes (the medium
// task), and TinyImageNet-like data has heavy class overlap (the hard task).
// Pair-asymmetric label noise flips class i to class i+1; the generators
// place consecutive class means inside the same confusable group so that
// pair noise is genuinely hard to detect from confidences alone, as it is
// for real image data.
package dataset

import (
	"errors"
	"fmt"

	"enld/internal/mat"
)

// Missing is the Observed label value of a sample whose label is absent
// (the missing-label scenario of §V-H).
const Missing = -1

// Sample is one labeled example.
//
// Observed is the possibly corrupted label ỹ visible to detection methods.
// True is the ground-truth label y*, retained only for evaluation; no
// detector may read it. ID identifies the sample within its original
// dataset so selection results can be mapped back.
type Sample struct {
	ID       int
	X        []float64
	Observed int
	True     int
}

// IsMissing reports whether the sample's label is absent.
func (s Sample) IsMissing() bool { return s.Observed == Missing }

// IsNoisy reports whether the observed label differs from the true label.
// Missing labels count as noisy for ground-truth bookkeeping.
func (s Sample) IsNoisy() bool { return s.Observed != s.True }

// Set is an ordered collection of samples.
type Set []Sample

// Labels returns the set of observed labels present in s, as a map.
// Missing labels are excluded. This is label(D) in the paper's Algorithm 1.
func (s Set) Labels() map[int]bool {
	out := make(map[int]bool)
	for _, smp := range s {
		if smp.Observed != Missing {
			out[smp.Observed] = true
		}
	}
	return out
}

// ByObserved groups sample indices by observed label. Missing labels are
// excluded.
func (s Set) ByObserved() map[int][]int {
	out := make(map[int][]int)
	for i, smp := range s {
		if smp.Observed != Missing {
			out[smp.Observed] = append(out[smp.Observed], i)
		}
	}
	return out
}

// NoisyIDs returns the IDs of samples whose observed label differs from the
// true label — the ground truth D_N used by evaluation metrics.
func (s Set) NoisyIDs() map[int]bool {
	out := make(map[int]bool)
	for _, smp := range s {
		if smp.IsNoisy() {
			out[smp.ID] = true
		}
	}
	return out
}

// Clone returns a deep copy of the set. Sample feature vectors are shared
// (they are never mutated); label fields are copied.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Spec describes a synthetic Gaussian-mixture classification dataset.
type Spec struct {
	Name       string
	Classes    int
	FeatureDim int
	PerClass   int // samples generated per class
	// Separation scales the distance between group centers; Spread is the
	// intra-class standard deviation. Their ratio controls task difficulty.
	Separation float64
	Spread     float64
	// GroupSize is the number of mutually confusable classes per group;
	// consecutive class indices share a group. Zero or one disables grouping.
	GroupSize int
	// WithinGroup scales the distance between class means inside one group,
	// relative to Separation. Smaller values make pair noise harder.
	WithinGroup float64
	Seed        uint64
}

// Validate reports whether the spec is well-formed.
func (sp Spec) Validate() error {
	switch {
	case sp.Classes < 2:
		return fmt.Errorf("dataset: %s: need at least 2 classes, got %d", sp.Name, sp.Classes)
	case sp.FeatureDim < 1:
		return fmt.Errorf("dataset: %s: feature dim %d", sp.Name, sp.FeatureDim)
	case sp.PerClass < 1:
		return fmt.Errorf("dataset: %s: per-class count %d", sp.Name, sp.PerClass)
	case sp.Separation <= 0 || sp.Spread <= 0:
		return fmt.Errorf("dataset: %s: non-positive separation or spread", sp.Name)
	}
	return nil
}

// Generate materializes the dataset described by the spec. Labels start
// clean (Observed == True); apply noise with the noise package.
func (sp Spec) Generate() (Set, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	rng := mat.NewRNG(sp.Seed)
	means := sp.classMeans(rng)
	set := make(Set, 0, sp.Classes*sp.PerClass)
	id := 0
	for c := 0; c < sp.Classes; c++ {
		for i := 0; i < sp.PerClass; i++ {
			x := make([]float64, sp.FeatureDim)
			for d := range x {
				x[d] = means[c][d] + sp.Spread*rng.Norm()
			}
			set = append(set, Sample{ID: id, X: x, Observed: c, True: c})
			id++
		}
	}
	return set, nil
}

// classMeans places class means. With grouping enabled, group centers are
// drawn far apart and member means cluster around their center, so classes
// within a group (including every pair-noise pair i, i+1 inside a group) are
// mutually confusable while distinct groups stay separable.
func (sp Spec) classMeans(rng *mat.RNG) [][]float64 {
	means := make([][]float64, sp.Classes)
	group := sp.GroupSize
	if group <= 1 {
		for c := range means {
			means[c] = rng.NormVec(make([]float64, sp.FeatureDim), 0, sp.Separation)
		}
		return means
	}
	within := sp.WithinGroup
	if within <= 0 {
		within = 0.35
	}
	// Reject same-group mean placements closer than 3 spreads: two Gaussian
	// classes at that distance still overlap heavily (Bayes error ≈ 7%) but
	// remain learnable, matching real confusable image classes. Without the
	// floor, random placement occasionally produces two essentially
	// identical classes — a degenerate regime no image benchmark has, which
	// would make whole-class detection impossible for every method.
	minSep := 3 * sp.Spread
	var center []float64
	var groupStart int
	for c := range means {
		if c%group == 0 {
			center = rng.NormVec(make([]float64, sp.FeatureDim), 0, sp.Separation)
			groupStart = c
		}
		m := make([]float64, sp.FeatureDim)
		for attempt := 0; ; attempt++ {
			for d := range m {
				m[d] = center[d] + within*sp.Separation*rng.Norm()
			}
			if attempt >= 100 || sepFromAll(m, means[groupStart:c], minSep) {
				break
			}
		}
		means[c] = m
	}
	return means
}

// sepFromAll reports whether m is at least minSep away from every mean in
// prev.
func sepFromAll(m []float64, prev [][]float64, minSep float64) bool {
	for _, p := range prev {
		if mat.Dist(m, p) < minSep {
			return false
		}
	}
	return true
}

// Scale multiplies the per-class sample count, returning a copy of the spec.
// Experiment configs use this to trade fidelity for runtime.
func (sp Spec) Scale(factor float64) Spec {
	out := sp
	out.PerClass = int(float64(sp.PerClass) * factor)
	if out.PerClass < 1 {
		out.PerClass = 1
	}
	return out
}

// The presets below mirror the paper's three benchmarks. PerClass values are
// sized for minutes-scale CPU experiments; the paper-scale counts (EMNIST
// letters: 4800/class, CIFAR-100: 500/class, Tiny-ImageNet: 500/class) are
// reachable via Scale.

// EMNISTLike returns the easy 26-class benchmark standing in for EMNIST
// letters.
func EMNISTLike(seed uint64) Spec {
	return Spec{
		Name:       "emnist",
		Classes:    26,
		FeatureDim: 24,
		PerClass:   90,
		Separation: 5.0,
		Spread:     1.0,
		GroupSize:  0,
		Seed:       seed,
	}
}

// CIFAR100Like returns the medium 100-class benchmark standing in for
// CIFAR-100, with 5-class confusable groups mirroring its superclasses.
func CIFAR100Like(seed uint64) Spec {
	return Spec{
		Name:        "cifar100",
		Classes:     100,
		FeatureDim:  48,
		PerClass:    80,
		Separation:  4.0,
		Spread:      1.0,
		GroupSize:   5,
		WithinGroup: 0.30,
		Seed:        seed,
	}
}

// TinyImageNetLike returns the hard 200-class benchmark standing in for
// Tiny-ImageNet: more classes, tighter groups, heavier overlap.
func TinyImageNetLike(seed uint64) Spec {
	return Spec{
		Name:        "tinyimagenet",
		Classes:     200,
		FeatureDim:  64,
		PerClass:    40,
		Separation:  3.5,
		Spread:      1.1,
		GroupSize:   5,
		WithinGroup: 0.22,
		Seed:        seed,
	}
}

// Presets returns the three paper benchmarks keyed by name.
func Presets(seed uint64) map[string]Spec {
	return map[string]Spec{
		"emnist":       EMNISTLike(seed),
		"cifar100":     CIFAR100Like(seed),
		"tinyimagenet": TinyImageNetLike(seed),
	}
}

// ErrEmptySet is returned by splitters handed no data.
var ErrEmptySet = errors.New("dataset: empty sample set")
