package dataset

import (
	"fmt"
	"sort"

	"enld/internal/mat"
	"enld/internal/nn"
)

// SplitRatio partitions s into two disjoint sets with |first| ≈ ratio·|s|,
// shuffled by rng. The paper's inventory/incremental split uses ratio 2/3
// (I : D = 2 : 1), and model initialization splits I uniformly into I_t and
// I_c with ratio 1/2.
func SplitRatio(s Set, ratio float64, rng *mat.RNG) (first, second Set, err error) {
	if len(s) == 0 {
		return nil, nil, ErrEmptySet
	}
	if ratio <= 0 || ratio >= 1 {
		return nil, nil, fmt.Errorf("dataset: split ratio %v out of (0,1)", ratio)
	}
	order := rng.Perm(len(s))
	cut := int(float64(len(s)) * ratio)
	if cut == 0 {
		cut = 1
	}
	if cut == len(s) {
		cut = len(s) - 1
	}
	first = make(Set, 0, cut)
	second = make(Set, 0, len(s)-cut)
	for i, idx := range order {
		if i < cut {
			first = append(first, s[idx])
		} else {
			second = append(second, s[idx])
		}
	}
	return first, second, nil
}

// ShardSpec controls how the incremental pool is cut into unbalanced
// incremental datasets (§V-A1: 10 shards of 5–6 classes for EMNIST, 20
// shards of 10 classes for CIFAR-100, 20 shards of 20 classes for
// Tiny-ImageNet).
type ShardSpec struct {
	Shards     int
	MinClasses int
	MaxClasses int
	// Drift is the standard deviation of a per-(shard, class) feature-space
	// offset applied to the shard's samples. It models the paper's central
	// premise that incremental datasets have a *changed distribution*
	// relative to the inventory (§I: "the noisy label detection model
	// trained on the inventory dataset usually cannot well adapt to
	// specific incremental datasets"): each arriving batch samples the
	// class slightly differently — new capture conditions, new sources.
	// Zero disables the shift.
	Drift float64
}

// Shard cuts pool into spec.Shards unbalanced incremental datasets. Each
// shard draws a random subset of the pool's classes (between MinClasses and
// MaxClasses of them); each class's samples are split across the shards that
// selected it in random proportions, which produces the unbalanced class
// distributions the paper evaluates on. Samples of classes no shard selected
// are dropped, mirroring the fact that an incremental dataset covers only
// part of the inventory's label space.
func Shard(pool Set, spec ShardSpec, rng *mat.RNG) ([]Set, error) {
	if len(pool) == 0 {
		return nil, ErrEmptySet
	}
	if spec.Shards < 1 {
		return nil, fmt.Errorf("dataset: shard count %d", spec.Shards)
	}
	if spec.MinClasses < 1 || spec.MaxClasses < spec.MinClasses {
		return nil, fmt.Errorf("dataset: shard class range [%d, %d]", spec.MinClasses, spec.MaxClasses)
	}
	byClass := make(map[int][]int) // true class -> pool indices
	for i, smp := range pool {
		byClass[smp.True] = append(byClass[smp.True], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	if spec.MaxClasses > len(classes) {
		return nil, fmt.Errorf("dataset: shard wants up to %d classes, pool has %d", spec.MaxClasses, len(classes))
	}

	// Pick the class subset of each shard.
	shardClasses := make([][]int, spec.Shards)
	classShards := make(map[int][]int) // class -> shards that picked it
	for sh := 0; sh < spec.Shards; sh++ {
		n := spec.MinClasses
		if spec.MaxClasses > spec.MinClasses {
			n += rng.Intn(spec.MaxClasses - spec.MinClasses + 1)
		}
		perm := rng.Perm(len(classes))
		for _, pi := range perm[:n] {
			c := classes[pi]
			shardClasses[sh] = append(shardClasses[sh], c)
			classShards[c] = append(classShards[c], sh)
		}
	}

	// Distribute each class's samples over its shards in random proportions,
	// drifting each (shard, class) slice when requested.
	shards := make([]Set, spec.Shards)
	for _, c := range classes {
		owners := classShards[c]
		if len(owners) == 0 {
			continue
		}
		idxs := byClass[c]
		perm := rng.Perm(len(idxs))
		// Random positive weights produce the unbalanced split.
		weights := make([]float64, len(owners))
		var total float64
		for i := range weights {
			weights[i] = 0.25 + rng.Float64()
			total += weights[i]
		}
		start := 0
		for i, sh := range owners {
			count := int(float64(len(idxs)) * weights[i] / total)
			if i == len(owners)-1 {
				count = len(idxs) - start
			}
			var offset []float64
			if spec.Drift > 0 && count > 0 {
				dim := len(pool[idxs[perm[start]]].X)
				offset = rng.NormVec(make([]float64, dim), 0, spec.Drift)
			}
			for _, pi := range perm[start : start+count] {
				smp := pool[idxs[pi]]
				if offset != nil {
					shifted := make([]float64, len(smp.X))
					mat.Add(shifted, smp.X, offset)
					smp.X = shifted
				}
				shards[sh] = append(shards[sh], smp)
			}
			start += count
		}
	}
	return shards, nil
}

// ToExamples converts samples to nn training examples with one-hot targets
// on the observed labels. Samples with missing labels are skipped, since a
// hard target cannot be formed for them.
func ToExamples(s Set, classes int) []nn.Example {
	out := make([]nn.Example, 0, len(s))
	for _, smp := range s {
		if smp.Observed == Missing {
			continue
		}
		out = append(out, nn.Example{X: smp.X, Target: nn.OneHot(smp.Observed, classes)})
	}
	return out
}

// ToExamplesTrue converts samples to nn training examples targeting the
// ground-truth labels. Only evaluation code (e.g. the Fig. 3 experiment,
// which adds true-labelled samples by construction) may use this.
func ToExamplesTrue(s Set, classes int) []nn.Example {
	out := make([]nn.Example, 0, len(s))
	for _, smp := range s {
		out = append(out, nn.Example{X: smp.X, Target: nn.OneHot(smp.True, classes)})
	}
	return out
}
