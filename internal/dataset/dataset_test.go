package dataset

import (
	"testing"
	"testing/quick"

	"enld/internal/mat"
)

func TestSpecValidate(t *testing.T) {
	good := EMNISTLike(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Spec{
		{Name: "c", Classes: 1, FeatureDim: 4, PerClass: 10, Separation: 1, Spread: 1},
		{Name: "d", Classes: 3, FeatureDim: 0, PerClass: 10, Separation: 1, Spread: 1},
		{Name: "p", Classes: 3, FeatureDim: 4, PerClass: 0, Separation: 1, Spread: 1},
		{Name: "s", Classes: 3, FeatureDim: 4, PerClass: 10, Separation: 0, Spread: 1},
		{Name: "s2", Classes: 3, FeatureDim: 4, PerClass: 10, Separation: 1, Spread: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("spec %q validated", c.Name)
		}
	}
}

func TestGenerateShapeAndCleanLabels(t *testing.T) {
	sp := Spec{Name: "t", Classes: 4, FeatureDim: 8, PerClass: 25, Separation: 3, Spread: 1, Seed: 1}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 100 {
		t.Fatalf("generated %d samples", len(set))
	}
	ids := map[int]bool{}
	perClass := map[int]int{}
	for _, s := range set {
		if len(s.X) != 8 {
			t.Fatalf("feature dim %d", len(s.X))
		}
		if s.Observed != s.True {
			t.Fatal("generated sample is pre-noised")
		}
		if ids[s.ID] {
			t.Fatalf("duplicate ID %d", s.ID)
		}
		ids[s.ID] = true
		perClass[s.True]++
	}
	for c := 0; c < 4; c++ {
		if perClass[c] != 25 {
			t.Fatalf("class %d has %d samples", c, perClass[c])
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	sp := CIFAR100Like(7).Scale(0.1)
	a, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := sp.Generate()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		for d := range a[i].X {
			if a[i].X[d] != b[i].X[d] {
				t.Fatal("same seed produced different data")
			}
		}
	}
}

func TestGenerateSeparation(t *testing.T) {
	// With high separation/spread ratio, a nearest-class-mean rule should be
	// nearly perfect — the property that makes the EMNIST-like task "easy".
	sp := Spec{Name: "sep", Classes: 6, FeatureDim: 12, PerClass: 50, Separation: 6, Spread: 1, Seed: 2}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	means := classMeansOf(set, sp.Classes, sp.FeatureDim)
	correct := 0
	for _, s := range set {
		best, bestD := -1, 0.0
		for c, m := range means {
			d := mat.SqDist(s.X, m)
			if best == -1 || d < bestD {
				best, bestD = c, d
			}
		}
		if best == s.True {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(set)); acc < 0.99 {
		t.Fatalf("nearest-mean accuracy %v on well-separated data", acc)
	}
}

func classMeansOf(set Set, classes, dim int) [][]float64 {
	means := make([][]float64, classes)
	counts := make([]int, classes)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for _, s := range set {
		mat.Axpy(1, s.X, means[s.True])
		counts[s.True]++
	}
	for c := range means {
		if counts[c] > 0 {
			mat.Scale(1/float64(counts[c]), means[c])
		}
	}
	return means
}

func TestGroupingMakesNeighboursConfusable(t *testing.T) {
	// With grouping, consecutive classes inside a group must be much closer
	// than classes from different groups — this is what makes pair noise
	// hard, mirroring CIFAR-100 superclasses.
	sp := Spec{Name: "g", Classes: 10, FeatureDim: 16, PerClass: 40,
		Separation: 4, Spread: 1, GroupSize: 5, WithinGroup: 0.3, Seed: 3}
	set, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	means := classMeansOf(set, sp.Classes, sp.FeatureDim)
	within := mat.Dist(means[0], means[1])  // same group
	across := mat.Dist(means[0], means[5])  // different groups
	within2 := mat.Dist(means[5], means[6]) // same group
	across2 := mat.Dist(means[4], means[5]) // adjacent indices, different groups
	if within >= across || within2 >= across2 {
		t.Fatalf("grouping not confusable: within=%v across=%v within2=%v across2=%v",
			within, across, within2, across2)
	}
}

func TestScale(t *testing.T) {
	sp := EMNISTLike(1)
	if got := sp.Scale(0.5).PerClass; got != sp.PerClass/2 {
		t.Errorf("Scale(0.5) PerClass = %d", got)
	}
	if got := sp.Scale(0.00001).PerClass; got != 1 {
		t.Errorf("Scale tiny PerClass = %d", got)
	}
}

func TestPresets(t *testing.T) {
	p := Presets(1)
	if len(p) != 3 {
		t.Fatalf("presets: %d", len(p))
	}
	wantClasses := map[string]int{"emnist": 26, "cifar100": 100, "tinyimagenet": 200}
	for name, sp := range p {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sp.Classes != wantClasses[name] {
			t.Errorf("%s classes = %d, want %d", name, sp.Classes, wantClasses[name])
		}
	}
}

func TestSetHelpers(t *testing.T) {
	s := Set{
		{ID: 0, Observed: 1, True: 1},
		{ID: 1, Observed: 2, True: 1}, // noisy
		{ID: 2, Observed: Missing, True: 3},
		{ID: 3, Observed: 1, True: 1},
	}
	labels := s.Labels()
	if !labels[1] || !labels[2] || labels[3] || labels[Missing] {
		t.Fatalf("Labels = %v", labels)
	}
	by := s.ByObserved()
	if len(by[1]) != 2 || len(by[2]) != 1 {
		t.Fatalf("ByObserved = %v", by)
	}
	noisy := s.NoisyIDs()
	if !noisy[1] || !noisy[2] || noisy[0] || noisy[3] {
		t.Fatalf("NoisyIDs = %v", noisy)
	}
	if !s[2].IsMissing() || s[0].IsMissing() {
		t.Fatal("IsMissing wrong")
	}
	c := s.Clone()
	c[0].Observed = 9
	if s[0].Observed == 9 {
		t.Fatal("Clone shares label storage")
	}
}

// Property: generation never produces out-of-range labels or ragged vectors.
func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, classes, perClass uint8) bool {
		sp := Spec{
			Name:       "prop",
			Classes:    int(classes%10) + 2,
			FeatureDim: 6,
			PerClass:   int(perClass%20) + 1,
			Separation: 2,
			Spread:     1,
			Seed:       seed,
		}
		set, err := sp.Generate()
		if err != nil {
			return false
		}
		for _, s := range set {
			if s.True < 0 || s.True >= sp.Classes || len(s.X) != 6 {
				return false
			}
		}
		return len(set) == sp.Classes*sp.PerClass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
