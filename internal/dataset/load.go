package dataset

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file contains loaders for real datasets. The repository's experiments
// run on synthetic benchmarks (the evaluation environment has no dataset
// downloads), but the library is usable on the paper's actual data: EMNIST
// ships in IDX format (LoadIDX), and tabular/pre-embedded datasets load from
// CSV (LoadCSV). Raw pixel vectors are high-dimensional; pair the loaders
// with PCA (pca.go) to obtain the compact feature vectors the pipeline
// expects.

// LoadIDX reads an IDX image file and an IDX label file (the MNIST/EMNIST
// container format) and returns samples whose features are row-major pixel
// intensities scaled to [0, 1]. Observed and True are both set to the file's
// labels; apply noise afterwards for controlled experiments, or treat the
// labels as observed-only for real noisy data.
func LoadIDX(images, labels io.Reader) (Set, error) {
	imgs, rows, cols, err := readIDXImages(images)
	if err != nil {
		return nil, err
	}
	lbls, err := readIDXLabels(labels)
	if err != nil {
		return nil, err
	}
	if len(imgs) != len(lbls) {
		return nil, fmt.Errorf("dataset: idx: %d images but %d labels", len(imgs), len(lbls))
	}
	dim := rows * cols
	set := make(Set, len(imgs))
	for i, img := range imgs {
		x := make([]float64, dim)
		for d, px := range img {
			x[d] = float64(px) / 255
		}
		set[i] = Sample{ID: i, X: x, Observed: int(lbls[i]), True: int(lbls[i])}
	}
	return set, nil
}

const (
	idxMagicImages = 0x00000803
	idxMagicLabels = 0x00000801
)

func readIDXImages(r io.Reader) (images [][]byte, rows, cols int, err error) {
	br := bufio.NewReader(r)
	var header [4]uint32
	for i := range header {
		if err := binary.Read(br, binary.BigEndian, &header[i]); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: idx image header: %w", err)
		}
	}
	if header[0] != idxMagicImages {
		return nil, 0, 0, fmt.Errorf("dataset: idx image magic %#x", header[0])
	}
	count, rows, cols := int(header[1]), int(header[2]), int(header[3])
	if count < 0 || rows <= 0 || cols <= 0 || rows*cols > 1<<20 {
		return nil, 0, 0, fmt.Errorf("dataset: idx image dims %dx%dx%d", count, rows, cols)
	}
	images = make([][]byte, count)
	for i := range images {
		buf := make([]byte, rows*cols)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: idx image %d: %w", i, err)
		}
		images[i] = buf
	}
	return images, rows, cols, nil
}

func readIDXLabels(r io.Reader) ([]byte, error) {
	br := bufio.NewReader(r)
	var header [2]uint32
	for i := range header {
		if err := binary.Read(br, binary.BigEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("dataset: idx label header: %w", err)
		}
	}
	if header[0] != idxMagicLabels {
		return nil, fmt.Errorf("dataset: idx label magic %#x", header[0])
	}
	count := int(header[1])
	buf := make([]byte, count)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("dataset: idx labels: %w", err)
	}
	return buf, nil
}

// CSVOptions controls LoadCSV.
type CSVOptions struct {
	// LabelColumn is the index of the label column; the remaining columns
	// are features. Negative counts from the end (-1 = last column).
	LabelColumn int
	// HasHeader skips the first row.
	HasHeader bool
}

// LoadCSV reads samples from CSV: one row per sample, numeric feature
// columns plus one integer label column. Feature vectors keep the column
// order with the label column removed.
func LoadCSV(r io.Reader, opts CSVOptions) (Set, error) {
	reader := csv.NewReader(r)
	reader.ReuseRecord = false
	var set Set
	rowNum := 0
	for {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", rowNum, err)
		}
		rowNum++
		if opts.HasHeader && rowNum == 1 {
			continue
		}
		labelCol := opts.LabelColumn
		if labelCol < 0 {
			labelCol = len(record) + labelCol
		}
		if labelCol < 0 || labelCol >= len(record) {
			return nil, fmt.Errorf("dataset: csv row %d: label column %d out of %d columns", rowNum, opts.LabelColumn, len(record))
		}
		label, err := strconv.Atoi(record[labelCol])
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: label %q: %w", rowNum, record[labelCol], err)
		}
		x := make([]float64, 0, len(record)-1)
		for col, cell := range record {
			if col == labelCol {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d col %d: %w", rowNum, col, err)
			}
			x = append(x, v)
		}
		set = append(set, Sample{ID: len(set), X: x, Observed: label, True: label})
	}
	if len(set) == 0 {
		return nil, ErrEmptySet
	}
	dim := len(set[0].X)
	for _, smp := range set {
		if len(smp.X) != dim {
			return nil, fmt.Errorf("dataset: csv: ragged rows (%d vs %d features)", len(smp.X), dim)
		}
	}
	return set, nil
}
