package metrics

import (
	"errors"
	"math"
)

// PairedComparison summarizes a paired sign test between two methods
// evaluated on the same incremental datasets.
type PairedComparison struct {
	// Wins counts datasets where A strictly beat B; Losses the reverse;
	// Ties the rest.
	Wins, Losses, Ties int
	// PValue is the two-sided sign-test p-value under the null hypothesis
	// that wins and losses are equally likely (ties dropped).
	PValue float64
}

// SignTest runs a two-sided paired sign test on per-dataset scores of two
// methods. It returns an error if the slices differ in length or are empty.
// The experiment harness uses it to report whether ENLD's advantage over a
// baseline across incremental datasets is statistically meaningful rather
// than an artifact of a few shards.
func SignTest(a, b []float64) (PairedComparison, error) {
	if len(a) != len(b) {
		return PairedComparison{}, errors.New("metrics: sign test with mismatched lengths")
	}
	if len(a) == 0 {
		return PairedComparison{}, errors.New("metrics: sign test with no observations")
	}
	var cmp PairedComparison
	for i := range a {
		switch {
		case a[i] > b[i]:
			cmp.Wins++
		case a[i] < b[i]:
			cmp.Losses++
		default:
			cmp.Ties++
		}
	}
	n := cmp.Wins + cmp.Losses
	if n == 0 {
		cmp.PValue = 1
		return cmp, nil
	}
	// Two-sided binomial tail: P(X <= min) + P(X >= max) for X ~ Bin(n, ½).
	k := cmp.Wins
	if cmp.Losses < k {
		k = cmp.Losses
	}
	var tail float64
	for i := 0; i <= k; i++ {
		tail += binomPMF(n, i)
	}
	p := 2 * tail
	if cmp.Wins == cmp.Losses {
		// Symmetric case double-counts the centre term.
		p -= binomPMF(n, k)
	}
	if p > 1 {
		p = 1
	}
	cmp.PValue = p
	return cmp, nil
}

// binomPMF returns C(n, k) / 2^n computed in log space for stability.
func binomPMF(n, k int) float64 {
	return math.Exp(lnChoose(n, k) - float64(n)*math.Ln2)
}

// lnChoose returns ln C(n, k) via log-gamma.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
