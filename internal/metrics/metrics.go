// Package metrics implements the evaluation metrics of §V-A3: precision,
// recall and F1 of a detected noisy-label set against the ground truth, plus
// the aggregation helpers (mean, standard deviation across incremental
// datasets) the figures report.
package metrics

import (
	"fmt"
	"math"

	"enld/internal/dataset"
)

// Detection summarizes one noisy-label detection result:
// P = |D_N ∩ D̃_N| / |D̃_N|, R = |D_N ∩ D̃_N| / |D_N|, F1 = 2PR/(P+R).
type Detection struct {
	Precision float64
	Recall    float64
	F1        float64
	// TruePositives, Detected and Actual carry the raw counts behind the
	// ratios, which the training-process figures use directly.
	TruePositives int
	Detected      int
	Actual        int
}

// EvaluateDetection scores a detected noisy set (given by sample IDs)
// against the ground-truth noisy IDs of d. Conventions for the degenerate
// cases follow the usual information-retrieval ones: empty detection has
// precision 1 if nothing was noisy, else 0; recall is 1 when nothing was
// actually noisy.
func EvaluateDetection(d dataset.Set, detectedNoisy map[int]bool) Detection {
	truth := d.NoisyIDs()
	det := Detection{Detected: len(detectedNoisy), Actual: len(truth)}
	for id := range detectedNoisy {
		if truth[id] {
			det.TruePositives++
		}
	}
	switch {
	case det.Detected > 0:
		det.Precision = float64(det.TruePositives) / float64(det.Detected)
	case det.Actual == 0:
		det.Precision = 1
	}
	if det.Actual > 0 {
		det.Recall = float64(det.TruePositives) / float64(det.Actual)
	} else {
		det.Recall = 1
	}
	if det.Precision+det.Recall > 0 {
		det.F1 = 2 * det.Precision * det.Recall / (det.Precision + det.Recall)
	}
	return det
}

// Summary aggregates a metric across incremental datasets.
type Summary struct {
	Mean float64
	Std  float64
	N    int
}

// Summarize computes mean and population standard deviation.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values)}
	if len(values) == 0 {
		return s
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / float64(len(values))
	if len(values) > 1 {
		var sq float64
		for _, v := range values {
			d := v - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(len(values)))
	}
	return s
}

// Aggregate summarizes a slice of Detection results field-wise. This is how
// the figures report "average precision, recall and f1 score of N
// incremental datasets".
type Aggregate struct {
	Precision Summary
	Recall    Summary
	F1        Summary
}

// AggregateDetections builds an Aggregate from per-dataset detections.
func AggregateDetections(ds []Detection) Aggregate {
	p := make([]float64, len(ds))
	r := make([]float64, len(ds))
	f := make([]float64, len(ds))
	for i, d := range ds {
		p[i], r[i], f[i] = d.Precision, d.Recall, d.F1
	}
	return Aggregate{Precision: Summarize(p), Recall: Summarize(r), F1: Summarize(f)}
}

// String renders the aggregate in the form the experiment tables print.
func (a Aggregate) String() string {
	return fmt.Sprintf("P=%.4f±%.4f R=%.4f±%.4f F1=%.4f±%.4f",
		a.Precision.Mean, a.Precision.Std,
		a.Recall.Mean, a.Recall.Std,
		a.F1.Mean, a.F1.Std)
}

// ConfusionMatrix counts (true label, predicted label) pairs.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix returns a zeroed classes×classes matrix.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	c := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	return c
}

// Add records one (trueLabel, predicted) observation. Out-of-range labels
// are ignored, which lets callers feed missing labels without pre-filtering.
func (c *ConfusionMatrix) Add(trueLabel, predicted int) {
	if trueLabel < 0 || trueLabel >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return
	}
	c.Counts[trueLabel][predicted]++
}

// Accuracy returns the fraction of on-diagonal observations, or 0 if empty.
func (c *ConfusionMatrix) Accuracy() float64 {
	total, diag := 0, 0
	for i, row := range c.Counts {
		for j, n := range row {
			total += n
			if i == j {
				diag += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// PerClassRecall returns recall per true class (NaN-free: classes with no
// observations report 0).
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i, row := range c.Counts {
		total := 0
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[i] = float64(row[i]) / float64(total)
		}
	}
	return out
}
