package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"enld/internal/dataset"
)

func noisySet() dataset.Set {
	// IDs 1 and 3 are noisy; ID 4 is missing (counts as noisy).
	return dataset.Set{
		{ID: 0, Observed: 0, True: 0},
		{ID: 1, Observed: 1, True: 0},
		{ID: 2, Observed: 2, True: 2},
		{ID: 3, Observed: 0, True: 1},
		{ID: 4, Observed: dataset.Missing, True: 2},
	}
}

func TestEvaluateDetectionExact(t *testing.T) {
	d := noisySet()
	det := EvaluateDetection(d, map[int]bool{1: true, 3: true, 4: true})
	if det.Precision != 1 || det.Recall != 1 || det.F1 != 1 {
		t.Fatalf("perfect detection scored %+v", det)
	}
}

func TestEvaluateDetectionPartial(t *testing.T) {
	d := noisySet()
	// Detect one true noisy (1) and one clean (0): P=0.5, R=1/3.
	det := EvaluateDetection(d, map[int]bool{1: true, 0: true})
	if det.Precision != 0.5 {
		t.Errorf("precision = %v", det.Precision)
	}
	if math.Abs(det.Recall-1.0/3) > 1e-12 {
		t.Errorf("recall = %v", det.Recall)
	}
	wantF1 := 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0/3)
	if math.Abs(det.F1-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", det.F1, wantF1)
	}
	if det.TruePositives != 1 || det.Detected != 2 || det.Actual != 3 {
		t.Errorf("counts %+v", det)
	}
}

func TestEvaluateDetectionDegenerate(t *testing.T) {
	clean := dataset.Set{{ID: 0, Observed: 1, True: 1}}
	// Nothing noisy, nothing detected: P=R=1.
	det := EvaluateDetection(clean, nil)
	if det.Precision != 1 || det.Recall != 1 {
		t.Errorf("clean/empty scored %+v", det)
	}
	// Nothing noisy, something detected: P=0, R=1.
	det = EvaluateDetection(clean, map[int]bool{0: true})
	if det.Precision != 0 || det.Recall != 1 || det.F1 != 0 {
		t.Errorf("false positive on clean scored %+v", det)
	}
	// Something noisy, nothing detected: P=0 (by convention), R=0.
	noisy := dataset.Set{{ID: 0, Observed: 1, True: 0}}
	det = EvaluateDetection(noisy, nil)
	if det.Precision != 0 || det.Recall != 0 || det.F1 != 0 {
		t.Errorf("empty detection on noisy scored %+v", det)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 || s.Std != 2 || s.N != 8 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s := Summarize(nil); s.Mean != 0 || s.Std != 0 || s.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
	if s := Summarize([]float64{3}); s.Std != 0 {
		t.Fatalf("single-value std = %v", s.Std)
	}
}

func TestAggregateDetections(t *testing.T) {
	agg := AggregateDetections([]Detection{
		{Precision: 1, Recall: 0.5, F1: 2.0 / 3},
		{Precision: 0.5, Recall: 1, F1: 2.0 / 3},
	})
	if agg.Precision.Mean != 0.75 || agg.Recall.Mean != 0.75 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfusionMatrix(t *testing.T) {
	c := NewConfusionMatrix(3)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(-1, 0)              // ignored
	c.Add(0, 5)               // ignored
	c.Add(dataset.Missing, 0) // ignored
	if got := c.Accuracy(); got != 0.75 {
		t.Fatalf("accuracy = %v", got)
	}
	rec := c.PerClassRecall()
	if rec[0] != 0.5 || rec[1] != 1 || rec[2] != 1 {
		t.Fatalf("per-class recall = %v", rec)
	}
	empty := NewConfusionMatrix(2)
	if empty.Accuracy() != 0 {
		t.Fatal("empty accuracy != 0")
	}
	if r := empty.PerClassRecall(); r[0] != 0 || r[1] != 0 {
		t.Fatal("empty recall != 0")
	}
}

// Property: precision and recall are always in [0,1] and F1 is their
// harmonic mean (or 0 when both are 0).
func TestDetectionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, detRaw uint8) bool {
		n := int(nRaw%30) + 1
		d := make(dataset.Set, n)
		for i := range d {
			d[i] = dataset.Sample{ID: i, Observed: int(seed>>uint(i%8)) % 3, True: i % 3}
		}
		detected := map[int]bool{}
		for i := 0; i < int(detRaw%uint8(n+1)); i++ {
			detected[i] = true
		}
		det := EvaluateDetection(d, detected)
		if det.Precision < 0 || det.Precision > 1 || det.Recall < 0 || det.Recall > 1 {
			return false
		}
		if det.Precision+det.Recall == 0 {
			return det.F1 == 0
		}
		want := 2 * det.Precision * det.Recall / (det.Precision + det.Recall)
		return math.Abs(det.F1-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
