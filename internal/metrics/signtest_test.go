package metrics

import (
	"math"
	"testing"
)

func TestSignTestErrors(t *testing.T) {
	if _, err := SignTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := SignTest(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestSignTestAllTies(t *testing.T) {
	cmp, err := SignTest([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ties != 3 || cmp.PValue != 1 {
		t.Fatalf("%+v", cmp)
	}
}

func TestSignTestClearWinner(t *testing.T) {
	a := make([]float64, 12)
	b := make([]float64, 12)
	for i := range a {
		a[i] = 1
		b[i] = 0
	}
	cmp, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Wins != 12 || cmp.Losses != 0 {
		t.Fatalf("%+v", cmp)
	}
	// 12/12 wins: two-sided p = 2 * (1/2)^12 ≈ 0.00049.
	want := 2 * math.Pow(0.5, 12)
	if math.Abs(cmp.PValue-want) > 1e-12 {
		t.Fatalf("p = %v, want %v", cmp.PValue, want)
	}
}

func TestSignTestBalanced(t *testing.T) {
	a := []float64{1, 0, 1, 0}
	b := []float64{0, 1, 0, 1}
	cmp, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Wins != 2 || cmp.Losses != 2 {
		t.Fatalf("%+v", cmp)
	}
	// Perfectly balanced: p must be 1 (and never exceed it).
	if math.Abs(cmp.PValue-1) > 1e-12 {
		t.Fatalf("p = %v", cmp.PValue)
	}
}

func TestSignTestKnownValue(t *testing.T) {
	// 5 wins, 1 loss: two-sided p = 2*(C(6,0)+C(6,1))/2^6 = 2*7/64 = 0.21875.
	a := []float64{1, 1, 1, 1, 1, 0}
	b := []float64{0, 0, 0, 0, 0, 1}
	cmp, err := SignTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.PValue-0.21875) > 1e-12 {
		t.Fatalf("p = %v, want 0.21875", cmp.PValue)
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		var sum float64
		for k := 0; k <= n; k++ {
			sum += binomPMF(n, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: pmf sums to %v", n, sum)
		}
	}
	if binomPMF(5, 9) != 0 || binomPMF(5, -1) != 0 {
		t.Fatal("out-of-range pmf not zero")
	}
}
