// Package ann implements an approximate k-nearest-neighbour index over
// float64 vectors using inverted file lists (IVF): points are partitioned
// into nlist clusters by a deterministic k-means, and a query scans only the
// points of the nprobe clusters whose centroids are nearest.
//
// The exact per-class KD-trees of package kdtree remain the default for
// contrastive sampling (§IV-D); this index is the opt-in fast path for large
// high-quality pools, where scanning a fixed fraction of the clusters beats
// the tree's backtracking. Approximation is bounded by two guardrails in the
// test suite: recall@k ≥ 0.95 against the brute-force reference on clustered
// feature distributions, and an end-to-end detection-F1 budget in
// internal/core.
//
// Everything here is deterministic: the k-means seeds centroids at evenly
// spaced input indices, runs a fixed number of Lloyd iterations, and breaks
// every assignment tie toward the lowest index; queries order candidates by
// (distance, payload) exactly like kdtree.BruteKNearest. Two builds over the
// same points yield identical indexes, and results do not depend on worker
// count — queries share the immutable index and write only per-query
// scratch.
package ann

import (
	"errors"

	"enld/internal/kdtree"
	"enld/internal/mat"
)

// lloydIters is the fixed number of k-means refinement passes. The clusters
// only steer which lists a query scans — they never affect which candidate
// wins within the scanned set — so a handful of iterations is enough and
// keeps the build cost a small multiple of one brute pass over the points.
const lloydIters = 4

// Params sets the index shape. The zero value selects defaults from the
// point count at build time.
type Params struct {
	// NList is the number of inverted lists (clusters); 0 means ~√n.
	NList int
	// NProbe is the number of nearest lists a query scans; 0 means
	// max(2, ⌈NList/3⌉). Queries probe further lists past NProbe only when
	// the scanned lists hold fewer than k candidates, so k results are
	// always returned when the index holds at least k points.
	NProbe int
}

func (p Params) withDefaults(n int) Params {
	if p.NList <= 0 {
		p.NList = isqrtCeil(n)
	}
	if p.NList > n {
		p.NList = n
	}
	if p.NProbe <= 0 {
		p.NProbe = (p.NList + 2) / 3
		if p.NProbe < 2 {
			p.NProbe = 2
		}
	}
	if p.NProbe > p.NList {
		p.NProbe = p.NList
	}
	return p
}

// isqrtCeil returns ⌈√n⌉ without floating point (exact for all list sizes).
func isqrtCeil(n int) int {
	if n <= 1 {
		return n
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Index is an immutable IVF index. Build once, query from any number of
// goroutines concurrently (one Scratch per goroutine).
type Index struct {
	dim       int
	nprobe    int
	points    []kdtree.Point
	centroids []float64 // nlist × dim, row-major
	lists     [][]int32 // per-centroid member indices, ascending
}

// Build constructs an index over the given points. Like kdtree.Build it
// errors on empty input or inconsistent dimensions; vectors are referenced,
// not copied.
func Build(points []kdtree.Point, params Params) (*Index, error) {
	if len(points) == 0 {
		return nil, errors.New("ann: no points")
	}
	dim := len(points[0].Vec)
	if dim == 0 {
		return nil, errors.New("ann: zero-dimensional points")
	}
	for _, p := range points {
		if len(p.Vec) != dim {
			return nil, errors.New("ann: inconsistent point dimensions")
		}
	}
	n := len(points)
	params = params.withDefaults(n)
	nlist := params.NList

	idx := &Index{
		dim:       dim,
		nprobe:    params.NProbe,
		points:    append([]kdtree.Point(nil), points...),
		centroids: make([]float64, nlist*dim),
	}
	// Seed centroid i at the evenly spaced input point ⌊i·n/nlist⌋. The seed
	// depends only on input order, making the whole build reproducible.
	for i := 0; i < nlist; i++ {
		copy(idx.centroids[i*dim:(i+1)*dim], points[i*n/nlist].Vec)
	}

	assign := make([]int32, n)
	counts := make([]int, nlist)
	for it := 0; it < lloydIters; it++ {
		for i, p := range points {
			assign[i] = int32(idx.nearestCentroid(p.Vec))
		}
		// Recompute each centroid as the mean of its members, summing in
		// ascending point order. Empty clusters keep their previous centroid.
		next := make([]float64, nlist*dim)
		clear(counts)
		for i, p := range points {
			c := int(assign[i])
			counts[c]++
			row := next[c*dim : (c+1)*dim]
			for d, v := range p.Vec {
				row[d] += v
			}
		}
		for c := 0; c < nlist; c++ {
			row := idx.centroids[c*dim : (c+1)*dim]
			if counts[c] == 0 {
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range row {
				row[d] = next[c*dim+d] * inv
			}
		}
	}
	// Final assignment under the refined centroids builds the lists.
	idx.lists = make([][]int32, nlist)
	for i, p := range points {
		c := idx.nearestCentroid(p.Vec)
		idx.lists[c] = append(idx.lists[c], int32(i))
	}
	return idx, nil
}

// nearestCentroid returns the index of the centroid nearest to v, lowest
// index on ties.
func (x *Index) nearestCentroid(v []float64) int {
	best, bestD := 0, mat.SqDist(v, x.centroids[:x.dim])
	for c := 1; c*x.dim < len(x.centroids); c++ {
		if d := mat.SqDist(v, x.centroids[c*x.dim:(c+1)*x.dim]); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Len returns the number of indexed points.
func (x *Index) Len() int { return len(x.points) }

// Dim returns the index's dimensionality.
func (x *Index) Dim() int { return x.dim }

// Lists returns the number of inverted lists (for benchmarks and tests).
func (x *Index) Lists() int { return len(x.lists) }

// Scratch holds the reusable buffers of KNearestInto queries; the zero value
// is ready. A Scratch must not be shared between concurrent queries.
type Scratch struct {
	order []int
	cdist []float64
	heap  []kdtree.Neighbor
	out   []kdtree.Neighbor
}

// heapPush adds nb to the max-heap on squared distance.
func heapPush(h *[]kdtree.Neighbor, nb kdtree.Neighbor) {
	*h = append(*h, nb)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].SqDist >= s[i].SqDist {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// heapPop removes and returns the farthest neighbor.
func heapPop(h *[]kdtree.Neighbor) kdtree.Neighbor {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		largest := i
		if l := 2*i + 1; l < n && s[l].SqDist > s[largest].SqDist {
			largest = l
		}
		if r := 2*i + 2; r < n && s[r].SqDist > s[largest].SqDist {
			largest = r
		}
		if largest == i {
			break
		}
		s[i], s[largest] = s[largest], s[i]
		i = largest
	}
	return top
}

// KNearest returns (approximately) the k nearest points to query,
// nearest-first with ties broken by payload. The returned slice is a fresh
// allocation; hot loops should prefer KNearestInto.
func (x *Index) KNearest(query []float64, k int) ([]kdtree.Neighbor, error) {
	var s Scratch
	res, err := x.KNearestInto(&s, query, k)
	if err != nil || res == nil {
		return nil, err
	}
	return append([]kdtree.Neighbor(nil), res...), nil
}

// KNearestInto is KNearest with caller-provided scratch: the returned slice
// aliases s and is valid only until the next query through s.
//
// The query ranks every centroid by distance, then scans the member lists of
// the nprobe nearest — continuing down the ranking past nprobe only while
// fewer than k candidates have been seen, so an index holding ≥ k points
// always returns k results.
func (x *Index) KNearestInto(s *Scratch, query []float64, k int) ([]kdtree.Neighbor, error) {
	if len(query) != x.dim {
		return nil, kdtree.ErrDimensionMismatch
	}
	if k <= 0 {
		return nil, nil
	}
	nlist := len(x.lists)
	if cap(s.order) < nlist {
		s.order = make([]int, nlist)
		s.cdist = make([]float64, nlist)
	}
	order, cdist := s.order[:nlist], s.cdist[:nlist]
	for c := 0; c < nlist; c++ {
		order[c] = c
		cdist[c] = mat.SqDist(query, x.centroids[c*x.dim:(c+1)*x.dim])
	}
	// Typed insertion sort by (distance, index): nlist is ~√n, and avoiding
	// sort.Slice keeps warmed-up queries reflection- and allocation-free.
	for a := 1; a < nlist; a++ {
		c := order[a]
		b := a - 1
		for b >= 0 && (cdist[order[b]] > cdist[c] || (cdist[order[b]] == cdist[c] && order[b] > c)) {
			order[b+1] = order[b]
			b--
		}
		order[b+1] = c
	}
	// Scan the ranked lists, keeping the k best in a bounded max-heap; a
	// candidate evicts the current worst only on strictly smaller distance,
	// so the kept set is a deterministic function of the fixed scan order.
	s.heap = s.heap[:0]
	seen := 0
	for rank, c := range order {
		if rank >= x.nprobe && seen >= k {
			break
		}
		for _, i := range x.lists[c] {
			p := x.points[i]
			d := mat.SqDist(query, p.Vec)
			if len(s.heap) < k {
				heapPush(&s.heap, kdtree.Neighbor{Point: p, SqDist: d})
			} else if d < s.heap[0].SqDist {
				heapPop(&s.heap)
				heapPush(&s.heap, kdtree.Neighbor{Point: p, SqDist: d})
			}
		}
		seen += len(x.lists[c])
	}
	if k > len(s.heap) {
		k = len(s.heap)
	}
	if cap(s.out) < k {
		s.out = make([]kdtree.Neighbor, k)
	}
	out := s.out[:k]
	for i := k - 1; i >= 0; i-- {
		out[i] = heapPop(&s.heap)
	}
	// Heap order is by distance only; settle distance ties by payload so the
	// result order matches kdtree.BruteKNearest's documented contract.
	for a := 1; a < k; a++ {
		nb := out[a]
		b := a - 1
		for b >= 0 && out[b].SqDist == nb.SqDist && out[b].Point.Payload > nb.Point.Payload {
			out[b+1] = out[b]
			b--
		}
		out[b+1] = nb
	}
	return out, nil
}
