package ann

import (
	"fmt"
	"sort"

	"enld/internal/kdtree"
)

// ClassIndex maintains one IVF index per label, mirroring
// kdtree.ClassIndex: contrastive sampling queries the k nearest high-quality
// samples of a specific candidate label, so indexing per class shrinks each
// index and removes a post-filter. The two class indexes are drop-in
// replacements for one another in sampling.Contrastive.
type ClassIndex struct {
	indexes map[int]*Index
	sizes   map[int]int
}

// BuildClassIndex groups points by their label and builds one IVF index per
// label with default parameters. Labels with no points have no index.
func BuildClassIndex(points map[int][]kdtree.Point) (*ClassIndex, error) {
	ci := &ClassIndex{indexes: make(map[int]*Index), sizes: make(map[int]int)}
	for label, pts := range points {
		if len(pts) == 0 {
			continue
		}
		x, err := Build(pts, Params{})
		if err != nil {
			return nil, fmt.Errorf("ann: class %d: %w", label, err)
		}
		ci.indexes[label] = x
		ci.sizes[label] = len(pts)
	}
	return ci, nil
}

// KNearest returns the (approximately) k nearest points of the given label,
// nearest-first, or nil if the label has no indexed points.
func (ci *ClassIndex) KNearest(label int, query []float64, k int) ([]kdtree.Neighbor, error) {
	x, ok := ci.indexes[label]
	if !ok {
		return nil, nil
	}
	return x.KNearest(query, k)
}

// KNearestInto is KNearest with caller-provided scratch: the returned slice
// aliases s and is valid only until the next query through s.
func (ci *ClassIndex) KNearestInto(s *Scratch, label int, query []float64, k int) ([]kdtree.Neighbor, error) {
	x, ok := ci.indexes[label]
	if !ok {
		return nil, nil
	}
	return x.KNearestInto(s, query, k)
}

// Labels returns the labels that have at least one indexed point, sorted.
func (ci *ClassIndex) Labels() []int {
	out := make([]int, 0, len(ci.indexes))
	for l := range ci.indexes {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Size returns the number of indexed points for label.
func (ci *ClassIndex) Size(label int) int { return ci.sizes[label] }

// TotalSize returns the number of indexed points across all labels.
func (ci *ClassIndex) TotalSize() int {
	total := 0
	for _, n := range ci.sizes {
		total += n
	}
	return total
}
