package ann

import (
	"testing"

	"enld/internal/kdtree"
	"enld/internal/mat"
)

// clusteredPoints draws n points from `centers` Gaussian blobs — the shape
// of the feature distributions contrastive sampling indexes (per-class
// activations of a trained network cluster by true label).
func clusteredPoints(rng *mat.RNG, n, dim, centers int, spread float64) []kdtree.Point {
	means := make([][]float64, centers)
	for c := range means {
		means[c] = make([]float64, dim)
		rng.NormVec(means[c], 0, 4)
	}
	pts := make([]kdtree.Point, n)
	for i := range pts {
		v := make([]float64, dim)
		m := means[i%centers]
		rng.NormVec(v, 0, spread)
		for d := range v {
			v[d] += m[d]
		}
		pts[i] = kdtree.Point{Vec: v, Payload: i}
	}
	return pts
}

// TestRecallAtK is the approximation guardrail from DESIGN.md §4: with
// default parameters the IVF index must find ≥ 95% of the true k nearest
// neighbors on clustered data, averaged over queries.
func TestRecallAtK(t *testing.T) {
	rng := mat.NewRNG(7)
	const n, dim, k, queries = 2000, 16, 10, 200
	pts := clusteredPoints(rng, n, dim, 12, 1)
	idx, err := Build(pts, Params{})
	if err != nil {
		t.Fatal(err)
	}

	var s Scratch
	hits, total := 0, 0
	for q := 0; q < queries; q++ {
		query := make([]float64, dim)
		rng.NormVec(query, 0, 4)
		got, err := idx.KNearestInto(&s, query, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("query %d: got %d neighbors, want %d", q, len(got), k)
		}
		want := kdtree.BruteKNearest(pts, query, k)
		exact := make(map[int]bool, k)
		for _, nb := range want {
			exact[nb.Point.Payload] = true
		}
		for _, nb := range got {
			if exact[nb.Point.Payload] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	t.Logf("recall@%d = %.4f over %d queries (nlist=%d)", k, recall, queries, idx.Lists())
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, want >= 0.95", k, recall)
	}
}

// TestFullProbeIsExact: probing every list degenerates to brute force, so
// results must match the reference bit-for-bit (same order, same distances).
func TestFullProbeIsExact(t *testing.T) {
	rng := mat.NewRNG(11)
	pts := clusteredPoints(rng, 300, 8, 5, 1)
	idx, err := Build(pts, Params{NList: 8, NProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	for q := 0; q < 50; q++ {
		query := make([]float64, 8)
		rng.NormVec(query, 0, 4)
		got, err := idx.KNearestInto(&s, query, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := kdtree.BruteKNearest(pts, query, 7)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d neighbors", q, len(got), len(want))
		}
		for i := range want {
			if got[i].Point.Payload != want[i].Point.Payload || got[i].SqDist != want[i].SqDist {
				t.Fatalf("query %d neighbor %d: got payload %d dist %v, want payload %d dist %v",
					q, i, got[i].Point.Payload, got[i].SqDist, want[i].Point.Payload, want[i].SqDist)
			}
		}
	}
}

// TestBuildDeterminism: two builds over the same points answer every query
// identically, and KNearest matches KNearestInto.
func TestBuildDeterminism(t *testing.T) {
	rng := mat.NewRNG(13)
	pts := clusteredPoints(rng, 500, 12, 6, 1)
	a, err := Build(pts, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(pts, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb Scratch
	for q := 0; q < 40; q++ {
		query := make([]float64, 12)
		rng.NormVec(query, 0, 4)
		ra, _ := a.KNearestInto(&sa, query, 5)
		rb, _ := b.KNearestInto(&sb, query, 5)
		rc, _ := a.KNearest(query, 5)
		if len(ra) != len(rb) || len(ra) != len(rc) {
			t.Fatalf("query %d: result lengths differ", q)
		}
		for i := range ra {
			if ra[i].Point.Payload != rb[i].Point.Payload || ra[i].SqDist != rb[i].SqDist {
				t.Fatalf("query %d: builds disagree at %d", q, i)
			}
			if ra[i].Point.Payload != rc[i].Point.Payload {
				t.Fatalf("query %d: KNearest disagrees with KNearestInto at %d", q, i)
			}
		}
	}
}

// TestSmallIndexes: an index always returns min(k, n) results, even when the
// default nprobe covers a fraction of the lists — tiny per-class pools are
// common in early ENLD iterations.
func TestSmallIndexes(t *testing.T) {
	rng := mat.NewRNG(17)
	for _, n := range []int{1, 2, 3, 5, 9, 40} {
		pts := clusteredPoints(rng, n, 4, 2, 1)
		idx, err := Build(pts, Params{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		query := make([]float64, 4)
		rng.NormVec(query, 0, 4)
		for _, k := range []int{1, 3, n, n + 5} {
			got, err := idx.KNearest(query, k)
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			want := k
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("n=%d k=%d: got %d neighbors, want %d", n, k, len(got), want)
			}
		}
	}
}

// TestErrorsAndEdgeCases mirrors the kdtree package's input validation.
func TestErrorsAndEdgeCases(t *testing.T) {
	if _, err := Build(nil, Params{}); err == nil {
		t.Fatal("Build accepted no points")
	}
	if _, err := Build([]kdtree.Point{{Vec: nil}}, Params{}); err == nil {
		t.Fatal("Build accepted zero-dimensional points")
	}
	if _, err := Build([]kdtree.Point{{Vec: []float64{1}}, {Vec: []float64{1, 2}}}, Params{}); err == nil {
		t.Fatal("Build accepted inconsistent dimensions")
	}
	idx, err := Build([]kdtree.Point{{Vec: []float64{1, 2}, Payload: 0}}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.KNearest([]float64{1}, 1); err != kdtree.ErrDimensionMismatch {
		t.Fatalf("dimension mismatch: got %v", err)
	}
	if got, err := idx.KNearest([]float64{1, 2}, 0); err != nil || got != nil {
		t.Fatalf("k=0: got %v, %v", got, err)
	}
}

// TestClassIndex exercises the per-label wrapper against the kdtree version.
func TestClassIndex(t *testing.T) {
	rng := mat.NewRNG(19)
	byLabel := map[int][]kdtree.Point{
		0: clusteredPoints(rng, 120, 6, 3, 1),
		2: clusteredPoints(rng, 80, 6, 3, 1),
		5: nil,
	}
	ci, err := BuildClassIndex(byLabel)
	if err != nil {
		t.Fatal(err)
	}
	if got := ci.Labels(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Labels() = %v", got)
	}
	if ci.Size(0) != 120 || ci.Size(2) != 80 || ci.Size(5) != 0 || ci.TotalSize() != 200 {
		t.Fatalf("sizes: %d %d %d total %d", ci.Size(0), ci.Size(2), ci.Size(5), ci.TotalSize())
	}
	query := make([]float64, 6)
	rng.NormVec(query, 0, 4)
	var s Scratch
	if nbrs, err := ci.KNearestInto(&s, 7, query, 3); err != nil || nbrs != nil {
		t.Fatalf("unindexed label: got %v, %v", nbrs, err)
	}
	nbrs, err := ci.KNearestInto(&s, 0, query, 3)
	if err != nil || len(nbrs) != 3 {
		t.Fatalf("label 0: got %d neighbors, %v", len(nbrs), err)
	}
	plain, err := ci.KNearest(0, query, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nbrs {
		if plain[i].Point.Payload != nbrs[i].Point.Payload {
			t.Fatalf("KNearest disagrees with KNearestInto at %d", i)
		}
	}
}
