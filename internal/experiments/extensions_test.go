package experiments

import "testing"

func TestRunExt1LossTracking(t *testing.T) {
	fig, err := RunExt1(quickCfg(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 { // 5 standard methods + losstrack + incv + coteaching
		t.Fatalf("%d rows", len(fig.Rows))
	}
	lt := fig.Score("losstrack", 0.2)
	cv := fig.Score("incv", 0.2)
	ct := fig.Score("coteaching", 0.2)
	enld := fig.Score("enld", 0.2)
	t.Logf("losstrack=%.4f incv=%.4f coteaching=%.4f enld=%.4f", lt, cv, ct, enld)
	if lt < 0 || cv < 0 || ct < 0 {
		t.Fatal("extension method missing")
	}
	// §I's claim: loss tracking on incremental data does not beat ENLD.
	if lt > enld+0.05 {
		t.Errorf("losstrack %.4f unexpectedly above ENLD %.4f", lt, enld)
	}
}

func TestRunExt2SymmetricNoise(t *testing.T) {
	fig, err := RunExt2(quickCfg(31))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	enld := fig.Score("enld", 0.2)
	def := fig.Score("default", 0.2)
	t.Logf("symmetric noise: enld=%.4f default=%.4f topofilter=%.4f",
		enld, def, fig.Score("topofilter", 0.2))
	if enld <= 0 {
		t.Fatal("ENLD failed under symmetric noise")
	}
	// Symmetric noise is the easier regime; methods should do at least
	// reasonably well.
	if enld < 0.5 {
		t.Errorf("ENLD F1 %.4f suspiciously low under symmetric noise", enld)
	}
}

func TestRunExt3IndexAblation(t *testing.T) {
	cfg := quickCfg(32)
	cfg.Shards = 2
	res, err := RunExt3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 { // 3 scales × 2 index kinds
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Exactness: at each scale both index kinds must detect identically
	// (same F1), since both return exact nearest neighbours.
	for i := 0; i < len(res.Rows); i += 2 {
		kd, br := res.Rows[i], res.Rows[i+1]
		if kd.Index != "kdtree" || br.Index != "brute" {
			t.Fatalf("row ordering: %+v %+v", kd, br)
		}
		if diff := kd.F1.Mean - br.F1.Mean; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("scale %.2f: kdtree F1 %.6f != brute F1 %.6f",
				kd.DataScale, kd.F1.Mean, br.F1.Mean)
		}
	}
	// Pool size grows with scale.
	if res.Rows[0].PoolSize >= res.Rows[4].PoolSize {
		t.Errorf("pool did not grow with scale: %d -> %d",
			res.Rows[0].PoolSize, res.Rows[4].PoolSize)
	}
}

func TestUnknownNoiseKindRejected(t *testing.T) {
	cfg := quickCfg(40)
	cfg.Noise = "bogus"
	if _, err := BuildWorkbench("emnist", 0.2, cfg); err == nil {
		t.Fatal("unknown noise kind accepted")
	}
}
