package experiments

import (
	"testing"

	"enld/internal/core"
	"enld/internal/lake"
)

func TestTierLadderConfigs(t *testing.T) {
	base := core.DefaultConfig(7)
	base.ANN = true // overridden: rung 0 must be the exact full-quality path
	cfgs := base.TierLadder()
	if len(cfgs) != 3 {
		t.Fatalf("%d tier configs, want 3", len(cfgs))
	}
	if cfgs[0].ANN || cfgs[0].Float32 {
		t.Fatalf("rung 0 not full quality: %+v", cfgs[0])
	}
	if !cfgs[1].ANN || cfgs[1].Float32 {
		t.Fatalf("rung 1 not ANN-only: %+v", cfgs[1])
	}
	if !cfgs[2].ANN || !cfgs[2].Float32 {
		t.Fatalf("rung 2 not ANN+float32: %+v", cfgs[2])
	}
	// Everything else carries over unchanged.
	for i, cfg := range cfgs {
		cfg.ANN, cfg.Float32 = base.ANN, base.Float32
		if cfg != base {
			t.Fatalf("rung %d changed more than the speed knobs: %+v", i, cfg)
		}
	}
}

func TestBrownoutLadderShape(t *testing.T) {
	wb, err := BuildWorkbench("emnist", 0.2, quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	ladder := BrownoutLadder(wb)
	wantNames := []string{lake.TierFull, lake.TierANN, lake.TierANNFloat32, lake.TierFallback}
	if len(ladder) != len(wantNames) {
		t.Fatalf("%d rungs, want %d", len(ladder), len(wantNames))
	}
	for i, rung := range ladder {
		if rung.Name != wantNames[i] {
			t.Fatalf("rung %d named %q, want %q", i, rung.Name, wantNames[i])
		}
		if rung.Detector == nil {
			t.Fatalf("rung %d has nil detector", i)
		}
	}
	// The ladder must be accepted by the service's validator and each ENLD
	// rung must carry the right speed profile.
	svc, err := lake.NewService(ladder[0].Detector, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.SetBrownout(ladder, lake.BrownoutConfig{QueueHigh: 4}, nil); err != nil {
		t.Fatal(err)
	}
	e1, ok := ladder[1].Detector.(*core.ENLD)
	if !ok || !e1.Config.ANN || e1.Config.Float32 {
		t.Fatalf("ann rung misconfigured: %+v", ladder[1].Detector)
	}
	e2, ok := ladder[2].Detector.(*core.ENLD)
	if !ok || !e2.Config.ANN || !e2.Config.Float32 {
		t.Fatalf("ann-f32 rung misconfigured: %+v", ladder[2].Detector)
	}
}
