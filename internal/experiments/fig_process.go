package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"enld/internal/core"
	"enld/internal/metrics"
	"enld/internal/plot"
)

// IterationPoint is one iteration of the fine-grained NLD trajectory,
// aggregated over shards.
type IterationPoint struct {
	Iteration int
	Precision metrics.Summary
	Recall    metrics.Summary
	F1        metrics.Summary
	Ambiguous metrics.Summary
}

// TrajectoryResult holds per-eta iteration trajectories — the data behind
// Fig. 9 (P/R/F1 over iterations, mean ± std over shards) and Fig. 13(b)
// (ambiguous-sample counts over iterations).
type TrajectoryResult struct {
	ID     string
	Title  string
	Series map[float64][]IterationPoint // eta → per-iteration points
}

// runTrajectories executes ENLD on every shard of the preset at each eta,
// recording per-iteration detection metrics and ambiguous counts.
func runTrajectories(id, title, preset string, cfg Config) (*TrajectoryResult, error) {
	cfg = cfg.normalized()
	out := &TrajectoryResult{ID: id, Title: title, Series: map[float64][]IterationPoint{}}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench(preset, eta, cfg)
		if err != nil {
			return nil, err
		}
		iters := wb.ENLDCfg.Iterations
		perIter := make([][]metrics.Detection, iters)
		ambig := make([][]float64, iters)
		for _, shard := range wb.Shards {
			e := &core.ENLD{Platform: wb.Platform, Config: wb.ENLDCfg}
			res, err := e.DetectFull(shard)
			if err != nil {
				return nil, err
			}
			for i, snap := range res.Snapshots {
				perIter[i] = append(perIter[i], metrics.EvaluateDetection(shard, snap.Noisy))
				ambig[i] = append(ambig[i], float64(snap.AmbiguousCount))
			}
		}
		points := make([]IterationPoint, iters)
		for i := 0; i < iters; i++ {
			agg := metrics.AggregateDetections(perIter[i])
			points[i] = IterationPoint{
				Iteration: i + 1,
				Precision: agg.Precision,
				Recall:    agg.Recall,
				F1:        agg.F1,
				Ambiguous: metrics.Summarize(ambig[i]),
			}
		}
		out.Series[eta] = points
	}
	out.render(cfg.Out)
	return out, nil
}

// RunFig9 reproduces Fig. 9: the noisy-label detection process of ENLD over
// fine-grained NLD iterations on the CIFAR100-like benchmark.
func RunFig9(cfg Config) (*TrajectoryResult, error) {
	return runTrajectories("fig9", "ENLD detection process over iterations (CIFAR100-like)", "cifar100", cfg)
}

// RunFig13b reproduces Fig. 13(b): the number of ambiguous samples during
// fine-grained NLD on the CIFAR100-like benchmark. It shares the trajectory
// machinery with Fig. 9; consumers read the Ambiguous summaries.
func RunFig13b(cfg Config) (*TrajectoryResult, error) {
	return runTrajectories("fig13b", "ambiguous samples over iterations (CIFAR100-like)", "cifar100", cfg)
}

func (r *TrajectoryResult) render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eta\titer\tprecision\trecall\tf1\t|A|")
	for _, eta := range sortedKeys(r.Series) {
		for _, p := range r.Series[eta] {
			fmt.Fprintf(tw, "%.1f\t%d\t%.4f±%.3f\t%.4f±%.3f\t%.4f±%.3f\t%.1f±%.1f\n",
				eta, p.Iteration,
				p.Precision.Mean, p.Precision.Std,
				p.Recall.Mean, p.Recall.Std,
				p.F1.Mean, p.F1.Std,
				p.Ambiguous.Mean, p.Ambiguous.Std)
		}
	}
	tw.Flush()
	// ASCII rendition of the figure itself: F1 curves per eta (Fig. 9's
	// rightmost panels), and ambiguous-count curves (Fig. 13b).
	var f1Series, ambSeries []plot.Series
	for _, eta := range sortedKeys(r.Series) {
		f1 := plot.Series{Name: fmt.Sprintf("eta=%.1f", eta)}
		amb := plot.Series{Name: fmt.Sprintf("eta=%.1f", eta)}
		for _, p := range r.Series[eta] {
			f1.Y = append(f1.Y, p.F1.Mean)
			amb.Y = append(amb.Y, p.Ambiguous.Mean)
		}
		f1Series = append(f1Series, f1)
		ambSeries = append(ambSeries, amb)
	}
	plot.Lines(w, "f1 score over iterations", f1Series, plot.Config{})
	plot.Lines(w, "ambiguous samples over iterations", ambSeries, plot.Config{})
	fmt.Fprintln(w)
}

func sortedKeys(m map[float64][]IterationPoint) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
