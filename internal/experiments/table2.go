package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"enld/internal/core"
	"enld/internal/dataset"
)

// Table2Row is one noise-rate column of Table II: held-out true-label
// accuracy of the general model before and after the model update.
type Table2Row struct {
	Eta      float64
	Before   float64
	After    float64
	Selected int // |S_c| accumulated across the detection tasks
}

// Table2Result holds the model-update study.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table II: on the CIFAR100-like benchmark at each
// noise rate, run ENLD over every incremental dataset while accumulating the
// clean inventory selection S_c, then perform Algorithm 4's model update and
// compare the general model's accuracy on the held-out incremental pool
// before and after.
func RunTable2(cfg Config) (*Table2Result, error) {
	cfg = cfg.normalized()
	out := &Table2Result{}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		// Held-out pool: the union of all incremental shards.
		var holdout dataset.Set
		for _, shard := range wb.Shards {
			holdout = append(holdout, shard...)
		}
		selected := map[int]bool{}
		for _, shard := range wb.Shards {
			e := &core.ENLD{Platform: wb.Platform, Config: wb.ENLDCfg}
			res, err := e.DetectFull(shard)
			if err != nil {
				return nil, err
			}
			for id := range res.SelectedInventory {
				selected[id] = true
			}
		}
		before := wb.Platform.TrueAccuracy(holdout)
		if err := wb.Platform.ModelUpdate(selected); err != nil {
			return nil, err
		}
		after := wb.Platform.TrueAccuracy(holdout)
		out.Rows = append(out.Rows, Table2Row{
			Eta: eta, Before: before, After: after, Selected: len(selected),
		})
	}
	out.render(cfg.Out)
	return out, nil
}

func (r *Table2Result) render(w io.Writer) {
	fmt.Fprintln(w, "== table2: validation accuracy before/after model update (CIFAR100-like) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eta\torigin model\tupdated model\t|S_c|")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.1f\t%.2f%%\t%.2f%%\t%d\n",
			row.Eta, row.Before*100, row.After*100, row.Selected)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
