package experiments

import (
	"enld/internal/core"
	"enld/internal/sampling"
)

// AblationVariants returns the §V-I configurations keyed by the paper's
// names, derived from a base config:
//
//	enld-origin — the full method;
//	enld-1 — random selection instead of contrastive sampling;
//	enld-2 — no majority voting (clean on first agreement);
//	enld-3 — no merging of D's clean samples into C;
//	enld-4 — query nearest samples of the same observed label, skipping the
//	         estimated-probability label draw.
func AblationVariants(base core.Config) map[string]core.Config {
	v1 := base
	v1.Strategy = sampling.Random{}
	v2 := base
	v2.DisableMajorityVoting = true
	v3 := base
	v3.DisableCleanMerge = true
	v4 := base
	v4.Strategy = sampling.Contrastive{SameLabel: true}
	return map[string]core.Config{
		"enld-origin": base,
		"enld-1":      v1,
		"enld-2":      v2,
		"enld-3":      v3,
		"enld-4":      v4,
	}
}

// ablationOrder fixes the rendering order.
var ablationOrder = []string{"enld-origin", "enld-1", "enld-2", "enld-3", "enld-4"}

// RunFig14 reproduces Fig. 14: the ablation study on the CIFAR100-like
// benchmark across noise rates.
func RunFig14(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: "fig14", Title: "ablation study (CIFAR100-like)"}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		variants := AblationVariants(wb.ENLDCfg)
		for _, name := range ablationOrder {
			e := &core.ENLD{Platform: wb.Platform, Config: variants[name]}
			agg, proc, work, _, err := runDetector(e, wb.Shards)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, MethodScore{
				Method: name, Eta: eta, Agg: agg,
				SetupTime: wb.Platform.SetupTime, MeanProcess: proc, MeanWork: work,
			})
		}
	}
	out.render(cfg.Out)
	return out, nil
}
