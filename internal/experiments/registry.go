package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"enld/internal/parallel"
)

// Runner executes one experiment and renders it to cfg.Out. The untyped
// return value is the experiment's structured result (a *FigureResult,
// *Fig3Result, *Fig8Result, *Fig13aResult, *TrajectoryResult or
// *Table2Result depending on the experiment).
type Runner func(cfg Config) (interface{}, error)

// registry maps experiment IDs (as used in DESIGN.md's per-experiment
// index) to runners.
var registry = map[string]Runner{
	"fig3":   func(c Config) (interface{}, error) { return RunFig3(c) },
	"fig4":   func(c Config) (interface{}, error) { return RunFig4(c) },
	"fig5":   func(c Config) (interface{}, error) { return RunFig5(c) },
	"fig6":   func(c Config) (interface{}, error) { return RunFig6(c) },
	"fig7":   func(c Config) (interface{}, error) { return RunFig7(c) },
	"fig8":   func(c Config) (interface{}, error) { return RunFig8(c) },
	"fig9":   func(c Config) (interface{}, error) { return RunFig9(c) },
	"fig10":  func(c Config) (interface{}, error) { return RunFig10(c) },
	"fig11":  func(c Config) (interface{}, error) { return RunFig11(c) },
	"fig12":  func(c Config) (interface{}, error) { return RunFig12(c) },
	"fig13a": func(c Config) (interface{}, error) { return RunFig13a(c) },
	"fig13b": func(c Config) (interface{}, error) { return RunFig13b(c) },
	"fig14":  func(c Config) (interface{}, error) { return RunFig14(c) },
	"tab2":   func(c Config) (interface{}, error) { return RunTable2(c) },
	"ext1":   func(c Config) (interface{}, error) { return RunExt1(c) },
	"ext2":   func(c Config) (interface{}, error) { return RunExt2(c) },
	"ext3":   func(c Config) (interface{}, error) { return RunExt3(c) },
}

// IDs returns the known experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (interface{}, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(cfg)
}

// RunConcurrent executes the experiments with the given IDs, at most workers
// at a time (0 = all cores). Experiments are independent (each builds its own
// workbench from cfg.Seed), so running them concurrently changes nothing but
// wall-clock time: each renders into a private buffer and the buffers are
// flushed to cfg.Out in input order. Results are parallel to ids. On error
// the flushed output and the results gathered so far are still returned along
// with the first failing experiment's error.
func RunConcurrent(ids []string, cfg Config, workers int) ([]interface{}, error) {
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
		}
	}
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	results := make([]interface{}, len(ids))
	errs := make([]error, len(ids))
	bufs := make([]bytes.Buffer, len(ids))
	pool := parallel.New(workers)
	// Chunk size 1: workers claim whole experiments dynamically, which
	// balances the wildly uneven experiment durations.
	pool.ForEachChunk(len(ids), 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sub := cfg
			sub.Out = &bufs[i]
			results[i], errs[i] = registry[ids[i]](sub)
		}
	})
	var firstErr error
	for i, id := range ids {
		if _, err := out.Write(bufs[i].Bytes()); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: writing %s output: %w", id, err)
		}
		if errs[i] != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s: %w", id, errs[i])
		}
	}
	return results, firstErr
}
