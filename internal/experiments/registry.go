package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and renders it to cfg.Out. The untyped
// return value is the experiment's structured result (a *FigureResult,
// *Fig3Result, *Fig8Result, *Fig13aResult, *TrajectoryResult or
// *Table2Result depending on the experiment).
type Runner func(cfg Config) (interface{}, error)

// registry maps experiment IDs (as used in DESIGN.md's per-experiment
// index) to runners.
var registry = map[string]Runner{
	"fig3":   func(c Config) (interface{}, error) { return RunFig3(c) },
	"fig4":   func(c Config) (interface{}, error) { return RunFig4(c) },
	"fig5":   func(c Config) (interface{}, error) { return RunFig5(c) },
	"fig6":   func(c Config) (interface{}, error) { return RunFig6(c) },
	"fig7":   func(c Config) (interface{}, error) { return RunFig7(c) },
	"fig8":   func(c Config) (interface{}, error) { return RunFig8(c) },
	"fig9":   func(c Config) (interface{}, error) { return RunFig9(c) },
	"fig10":  func(c Config) (interface{}, error) { return RunFig10(c) },
	"fig11":  func(c Config) (interface{}, error) { return RunFig11(c) },
	"fig12":  func(c Config) (interface{}, error) { return RunFig12(c) },
	"fig13a": func(c Config) (interface{}, error) { return RunFig13a(c) },
	"fig13b": func(c Config) (interface{}, error) { return RunFig13b(c) },
	"fig14":  func(c Config) (interface{}, error) { return RunFig14(c) },
	"tab2":   func(c Config) (interface{}, error) { return RunTable2(c) },
	"ext1":   func(c Config) (interface{}, error) { return RunExt1(c) },
	"ext2":   func(c Config) (interface{}, error) { return RunExt2(c) },
	"ext3":   func(c Config) (interface{}, error) { return RunExt3(c) },
}

// IDs returns the known experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (interface{}, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(cfg)
}
