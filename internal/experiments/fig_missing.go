package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/noise"
)

// MissingRow is one missing-rate entry of Fig. 13(a).
type MissingRow struct {
	MissingRate float64
	// PseudoF1 is the macro-F1 of the voted pseudo labels against the true
	// labels of the masked samples.
	PseudoF1 metrics.Summary
	// DetectionF1 is the noisy-label detection F1 over the samples that
	// still carry observed labels.
	DetectionF1 metrics.Summary
}

// Fig13aResult holds the missing-label study of §V-H.
type Fig13aResult struct {
	Eta  float64
	Rows []MissingRow
}

// RunFig13a reproduces Fig. 13(a): with noise rate 0.2 on the CIFAR100-like
// benchmark, mask 25%/50%/75% of each incremental dataset's labels, let ENLD
// vote pseudo labels for the masked samples, and report pseudo-label quality
// alongside detection quality on the remaining labelled samples.
func RunFig13a(cfg Config) (*Fig13aResult, error) {
	cfg = cfg.normalized()
	const eta = 0.2
	out := &Fig13aResult{Eta: eta}
	wb, err := BuildWorkbench("cifar100", eta, cfg)
	if err != nil {
		return nil, err
	}
	for _, rate := range []float64{0.25, 0.50, 0.75} {
		var pseudoF1s, detF1s []float64
		maskRNG := mat.NewRNG(cfg.Seed ^ uint64(rate*1000))
		for _, shard := range wb.Shards {
			masked := shard.Clone()
			if _, err := noise.MaskMissing(masked, rate, maskRNG); err != nil {
				return nil, err
			}
			e := &core.ENLD{Platform: wb.Platform, Config: wb.ENLDCfg}
			res, err := e.DetectFull(masked)
			if err != nil {
				return nil, err
			}
			pseudoF1s = append(pseudoF1s, pseudoMacroF1(masked, res.PseudoLabels, wb.Spec.Classes))
			detF1s = append(detF1s, labelledDetectionF1(masked, res.Noisy))
		}
		out.Rows = append(out.Rows, MissingRow{
			MissingRate: rate,
			PseudoF1:    metrics.Summarize(pseudoF1s),
			DetectionF1: metrics.Summarize(detF1s),
		})
	}
	out.render(cfg.Out)
	return out, nil
}

// pseudoMacroF1 computes the macro-averaged F1 of pseudo labels against true
// labels over the masked samples (classes without masked samples are
// skipped).
func pseudoMacroF1(set dataset.Set, pseudo map[int]int, classes int) float64 {
	tp := make([]int, classes)
	fp := make([]int, classes)
	fn := make([]int, classes)
	seen := make([]bool, classes)
	for _, smp := range set {
		if smp.Observed != dataset.Missing {
			continue
		}
		pred, ok := pseudo[smp.ID]
		if !ok || pred < 0 || pred >= classes {
			fn[smp.True]++
			seen[smp.True] = true
			continue
		}
		seen[smp.True] = true
		seen[pred] = true
		if pred == smp.True {
			tp[pred]++
		} else {
			fp[pred]++
			fn[smp.True]++
		}
	}
	var sum float64
	n := 0
	for c := 0; c < classes; c++ {
		if !seen[c] {
			continue
		}
		n++
		denom := 2*tp[c] + fp[c] + fn[c]
		if denom > 0 {
			sum += 2 * float64(tp[c]) / float64(denom)
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// labelledDetectionF1 scores detection over the still-labelled subset only.
func labelledDetectionF1(set dataset.Set, noisy map[int]bool) float64 {
	var labelled dataset.Set
	for _, smp := range set {
		if smp.Observed != dataset.Missing {
			labelled = append(labelled, smp)
		}
	}
	filtered := map[int]bool{}
	ids := map[int]bool{}
	for _, smp := range labelled {
		ids[smp.ID] = true
	}
	for id := range noisy {
		if ids[id] {
			filtered[id] = true
		}
	}
	return metrics.EvaluateDetection(labelled, filtered).F1
}

func (r *Fig13aResult) render(w io.Writer) {
	fmt.Fprintf(w, "== fig13a: missing-label study at eta=%.1f (CIFAR100-like) ==\n", r.Eta)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "missing rate\tpseudo-label f1\tdetection f1")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.0f%%\t%.4f±%.3f\t%.4f±%.3f\n",
			row.MissingRate*100,
			row.PseudoF1.Mean, row.PseudoF1.Std,
			row.DetectionF1.Mean, row.DetectionF1.Std)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
