package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/kdtree"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/nn"
)

// LossRow is one (strategy, eta) cell of Fig. 3: the mean evaluation loss on
// D_test after one epoch of training with samples added by the strategy.
type LossRow struct {
	Strategy string
	Eta      float64
	Loss     metrics.Summary
}

// Fig3Result holds the Fig. 3 comparison of sample-adding strategies.
type Fig3Result struct {
	Rows []LossRow
}

// Loss returns the mean loss of a strategy at a noise rate, or -1 if absent.
func (r *Fig3Result) Loss(strategy string, eta float64) float64 {
	for _, row := range r.Rows {
		if row.Strategy == strategy && row.Eta == eta {
			return row.Loss.Mean
		}
	}
	return -1
}

// RunFig3 reproduces Fig. 3: for each noise rate, the evaluation loss on the
// true-labelled validation set D_test (the noisy samples of each incremental
// dataset) of (a) the untouched general model ("origin"), and after one
// epoch of fine-tuning on |D_test| added true-labelled inventory samples
// chosen (b) at random, (c) nearest in representation space ("nearest-only"),
// or (d) nearest with matching true label ("nearest-related"). The paper
// uses this to justify contrastive sampling (Corollary 3): nearest-related
// additions lower the loss the most.
func RunFig3(cfg Config) (*Fig3Result, error) {
	cfg = cfg.normalized()
	out := &Fig3Result{}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		losses := map[string][]float64{}
		rng := mat.NewRNG(cfg.Seed ^ 0xf00d)
		icScores := detect.Score(wb.Platform.Model, wb.Platform.Ic, nil)
		index, icByClass, err := trueLabelIndex(wb.Platform.Ic, icScores)
		if err != nil {
			return nil, err
		}
		for _, shard := range wb.Shards {
			dTest := noisyValidation(shard)
			if len(dTest) == 0 {
				continue
			}
			testExamples := dataset.ToExamplesTrue(dTest, wb.Spec.Classes)
			losses["origin"] = append(losses["origin"], nn.MeanLoss(wb.Platform.Model, testExamples))

			testScores := detect.Score(wb.Platform.Model, dTest, nil)
			for _, strat := range []string{"random", "nearest-only", "nearest-related"} {
				added := addSamples(strat, dTest, testScores, wb.Platform.Ic, index, icByClass, rng)
				model := wb.Platform.Model.Clone()
				trainer := nn.NewTrainer(model, nn.NewSGD(0.01, 0.9, 0))
				if len(added) > 0 {
					if _, err := trainer.Run(dataset.ToExamplesTrue(added, wb.Spec.Classes), nn.TrainConfig{
						Epochs: 1, BatchSize: 32, Seed: rng.Uint64(),
					}); err != nil {
						return nil, err
					}
				}
				losses[strat] = append(losses[strat], nn.MeanLoss(model, testExamples))
			}
		}
		for strat, vals := range losses {
			out.Rows = append(out.Rows, LossRow{Strategy: strat, Eta: eta, Loss: metrics.Summarize(vals)})
		}
	}
	sort.SliceStable(out.Rows, func(i, j int) bool {
		if out.Rows[i].Eta != out.Rows[j].Eta {
			return out.Rows[i].Eta < out.Rows[j].Eta
		}
		return out.Rows[i].Strategy < out.Rows[j].Strategy
	})
	out.render(cfg.Out)
	return out, nil
}

// noisyValidation extracts D_test: the genuinely noisy samples of the shard
// (evaluation-only access to true labels, as in the paper's experiment).
func noisyValidation(shard dataset.Set) dataset.Set {
	var out dataset.Set
	for _, smp := range shard {
		if smp.IsNoisy() {
			out = append(out, smp)
		}
	}
	return out
}

// trueLabelIndex builds a KD-tree over I_c features plus a per-true-label
// point index.
func trueLabelIndex(ic dataset.Set, scores *detect.Scores) (*kdtree.Tree, map[int][]kdtree.Point, error) {
	pts := make([]kdtree.Point, len(ic))
	byClass := map[int][]kdtree.Point{}
	for i := range ic {
		p := kdtree.Point{Vec: scores.Features[i], Payload: i}
		pts[i] = p
		byClass[ic[i].True] = append(byClass[ic[i].True], p)
	}
	tree, err := kdtree.Build(pts)
	if err != nil {
		return nil, nil, err
	}
	return tree, byClass, nil
}

// addSamples selects |dTest| inventory samples per the Fig. 3 strategy.
func addSamples(strategy string, dTest dataset.Set, testScores *detect.Scores,
	ic dataset.Set, tree *kdtree.Tree, byClass map[int][]kdtree.Point, rng *mat.RNG) dataset.Set {
	out := make(dataset.Set, 0, len(dTest))
	switch strategy {
	case "random":
		perm := rng.Perm(len(ic))
		n := len(dTest)
		if n > len(perm) {
			n = len(perm)
		}
		for _, i := range perm[:n] {
			out = append(out, ic[i])
		}
	case "nearest-only":
		for i := range dTest {
			nbrs, err := tree.KNearest(testScores.Features[i], 1)
			if err != nil || len(nbrs) == 0 {
				continue
			}
			out = append(out, ic[nbrs[0].Point.Payload])
		}
	case "nearest-related":
		for i := range dTest {
			pts := byClass[dTest[i].True]
			if len(pts) == 0 {
				continue
			}
			nbrs := kdtree.BruteKNearest(pts, testScores.Features[i], 1)
			out = append(out, ic[nbrs[0].Point.Payload])
		}
	}
	return out
}

func (r *Fig3Result) render(w io.Writer) {
	fmt.Fprintln(w, "== fig3: evaluation loss after one epoch of strategy-added true-labelled samples ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eta\tstrategy\tloss")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.1f\t%s\t%.4f±%.3f\n", row.Eta, row.Strategy, row.Loss.Mean, row.Loss.Std)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
