package experiments

import (
	"enld/internal/core"
	"enld/internal/sampling"
)

// RunFig10 reproduces Fig. 10: fine-grained NLD with each sample-selection
// policy of §V-A5 (contrastive, random, highest/least confidence, entropy,
// pseudo) on the CIFAR100-like benchmark across noise rates.
func RunFig10(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: "fig10", Title: "sample-selection strategies (CIFAR100-like)"}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		for _, strat := range sampling.All() {
			ecfg := wb.ENLDCfg
			ecfg.Strategy = strat
			e := &core.ENLD{Platform: wb.Platform, Config: ecfg}
			agg, proc, work, _, err := runDetector(e, wb.Shards)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, MethodScore{
				Method: strat.Name(), Eta: eta, Agg: agg,
				SetupTime: wb.Platform.SetupTime, MeanProcess: proc, MeanWork: work,
			})
		}
	}
	out.render(cfg.Out)
	return out, nil
}
