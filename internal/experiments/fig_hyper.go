package experiments

import (
	"fmt"

	"enld/internal/core"
)

// RunFig11 reproduces Fig. 11: ENLD's detection quality for contrastive
// sample sizes k ∈ {1, 2, 3, 4} on the CIFAR100-like benchmark across noise
// rates. Method names are "k=1" … "k=4".
func RunFig11(cfg Config) (*FigureResult, error) {
	return runKSweep("fig11", "contrastive sample size k sweep (CIFAR100-like)", cfg)
}

// RunFig12 reproduces Fig. 12: the process-time side of the k sweep. It
// returns the same structure as Fig. 11 — consumers read MeanProcess and
// MeanWork; the paper's observation that k = 2 can cost *more* time than
// k = 3 (fewer contrastive samples converge more slowly) is checked in the
// experiment tests.
func RunFig12(cfg Config) (*FigureResult, error) {
	return runKSweep("fig12", "process time and f1 versus k (CIFAR100-like)", cfg)
}

func runKSweep(id, title string, cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: id, Title: title}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range []int{1, 2, 3, 4} {
			ecfg := wb.ENLDCfg
			ecfg.K = k
			e := &core.ENLD{Platform: wb.Platform, Config: ecfg}
			agg, proc, work, _, err := runDetector(e, wb.Shards)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, MethodScore{
				Method: fmt.Sprintf("k=%d", k), Eta: eta, Agg: agg,
				SetupTime: wb.Platform.SetupTime, MeanProcess: proc, MeanWork: work,
			})
		}
	}
	out.render(cfg.Out)
	return out, nil
}
