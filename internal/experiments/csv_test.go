package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enld/internal/metrics"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFigureResultCSV(t *testing.T) {
	dir := t.TempDir()
	fig := &FigureResult{
		ID: "figtest",
		Rows: []MethodScore{
			{Method: "enld", Eta: 0.2,
				Agg: metrics.Aggregate{
					Precision: metrics.Summary{Mean: 0.9, Std: 0.01},
					Recall:    metrics.Summary{Mean: 0.8, Std: 0.02},
					F1:        metrics.Summary{Mean: 0.85, Std: 0.015},
				},
				SetupTime: 2 * time.Second, MeanProcess: 500 * time.Millisecond, MeanWork: 1234},
		},
	}
	if err := fig.CSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "figtest.csv"))
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0] != "method" || rows[1][0] != "enld" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][6] != "0.85" {
		t.Fatalf("f1 cell = %q", rows[1][6])
	}
	if rows[1][9] != "0.5" { // process seconds
		t.Fatalf("process cell = %q", rows[1][9])
	}
}

func TestTrajectoryCSV(t *testing.T) {
	dir := t.TempDir()
	tr := &TrajectoryResult{
		ID: "trajtest",
		Series: map[float64][]IterationPoint{
			0.1: {{Iteration: 1, F1: metrics.Summary{Mean: 0.7}}},
			0.2: {{Iteration: 1, F1: metrics.Summary{Mean: 0.6}}},
		},
	}
	if err := tr.CSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "trajtest.csv"))
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Rows ordered by eta.
	if rows[1][0] != "0.1" || rows[2][0] != "0.2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExportCSVDispatch(t *testing.T) {
	dir := t.TempDir()
	fig := &FigureResult{ID: "dispatch"}
	if err := ExportCSV(fig, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "dispatch.csv")); err != nil {
		t.Fatal("csv not written through dispatcher")
	}
	// Non-exporting results and empty dirs are no-ops.
	if err := ExportCSV(struct{}{}, dir); err != nil {
		t.Fatal(err)
	}
	if err := ExportCSV(fig, ""); err != nil {
		t.Fatal(err)
	}
}

func TestAllResultTypesExport(t *testing.T) {
	dir := t.TempDir()
	results := []CSVExporter{
		&FigureResult{ID: "a"},
		&TrajectoryResult{ID: "b", Series: map[float64][]IterationPoint{}},
		&Fig8Result{},
		&Fig3Result{},
		&Fig13aResult{},
		&Table2Result{},
		&Ext3Result{},
	}
	for _, r := range results {
		if err := r.CSV(dir); err != nil {
			t.Fatalf("%T: %v", r, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(results) {
		t.Fatalf("%d files for %d results", len(entries), len(results))
	}
}

func TestFigureResultMarkdown(t *testing.T) {
	fig := &FigureResult{
		ID: "md",
		Rows: []MethodScore{
			{Method: "enld", Eta: 0.1, Agg: metrics.Aggregate{F1: metrics.Summary{Mean: 0.9}}},
			{Method: "enld", Eta: 0.2, Agg: metrics.Aggregate{F1: metrics.Summary{Mean: 0.8}}},
			{Method: "default", Eta: 0.1, Agg: metrics.Aggregate{F1: metrics.Summary{Mean: 0.5}}},
		},
		VsENLD: map[string]metrics.PairedComparison{
			"default": {Wins: 5, Losses: 1, PValue: 0.2},
		},
	}
	md := fig.Markdown()
	for _, want := range []string{"| method |", "η=0.1", "| enld | 0.900 | 0.800 |", "Sign test ENLD vs default"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// Methods missing an eta render a dash.
	if !strings.Contains(md, "| default | 0.500 | — |") {
		t.Fatalf("missing-cell dash absent:\n%s", md)
	}
}

func TestTable2Markdown(t *testing.T) {
	r := &Table2Result{Rows: []Table2Row{{Eta: 0.2, Before: 0.5285, After: 0.5706, Selected: 42}}}
	md := r.Markdown()
	if !strings.Contains(md, "| 0.2 | 52.85% | 57.06% | 42 |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestFig8Markdown(t *testing.T) {
	r := &Fig8Result{
		Rows:             []TimingRow{{Dataset: "emnist", Method: "enld", Setup: time.Second, MeanProcess: 300 * time.Millisecond, MeanWork: 100}},
		SpeedupWallclock: map[string]float64{"emnist": 2.5},
		SpeedupWork:      map[string]float64{"emnist": 3.0},
	}
	md := r.Markdown()
	if !strings.Contains(md, "| emnist | enld | 1s | 300ms | 100 |") {
		t.Fatalf("markdown:\n%s", md)
	}
	if !strings.Contains(md, "Speedup on emnist: 2.50× wall-clock, 3.00× analytic work.") {
		t.Fatalf("speedup line missing:\n%s", md)
	}
}
