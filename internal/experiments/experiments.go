// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic substrates of this repository.
// Each Run* function corresponds to one artifact (see DESIGN.md §3 for the
// full index), prints the same rows/series the paper reports, and returns a
// structured result so tests and benchmarks can assert on shapes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"enld/internal/baselines"
	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/metrics"
	"enld/internal/nn"
	"enld/internal/obs"
)

// Config holds the knobs shared by every experiment runner.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed uint64
	// DataScale multiplies the per-class sample counts of the dataset
	// presets. 1.0 is the repository default (already reduced from paper
	// scale); smaller values speed up tests and benches.
	DataScale float64
	// Shards overrides the number of incremental datasets (0 = the paper's
	// count for the preset: 10 for EMNIST, 20 for the others).
	Shards int
	// Etas are the noise rates to sweep; nil means the paper's
	// {0.1, 0.2, 0.3, 0.4}.
	Etas []float64
	// PlatformEpochs overrides general-model training epochs (0 = 30).
	PlatformEpochs int
	// Iterations overrides ENLD's t (0 = the paper's per-dataset default:
	// 5 for EMNIST, 17 for CIFAR-100 and Tiny-ImageNet).
	Iterations int
	// Noise selects the corruption model; empty means the paper's pair
	// asymmetric noise. Symmetric noise is an extension experiment (ext2).
	Noise NoiseKind
	// Workers bounds the data-parallel workers inside each experiment's
	// training/scoring/k-NN hot paths (0 = all cores). Experiment outputs
	// are identical at every worker count.
	Workers int
	// ANN switches ENLD's contrastive sampling to the approximate IVF k-NN
	// index (core.Config.ANN): faster neighbor queries, detection quality
	// within the guardrail budget of the exact default.
	ANN bool
	// Float32 switches ENLD's ranking-only forward passes to the float32
	// numeric profile (core.Config.Float32): deterministic, but not
	// bit-identical to the float64 default.
	Float32 bool
	// Watchdog enables the numerical-health watchdog (NaN/Inf detection and
	// checkpoint rollback) for every training run the platform performs.
	Watchdog nn.WatchdogConfig
	// Obs, when set, is attached to the workbench platform so every training
	// run, probability estimation and detection phase reports metrics and
	// spans into it. Nil (the default) disables observability entirely.
	Obs *obs.Registry
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
}

// NoiseKind names a label-corruption model.
type NoiseKind string

// Supported noise kinds.
const (
	NoisePair      NoiseKind = "pair"
	NoiseSymmetric NoiseKind = "symmetric"
)

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.DataScale <= 0 {
		c.DataScale = 1
	}
	if len(c.Etas) == 0 {
		c.Etas = []float64{0.1, 0.2, 0.3, 0.4}
	}
	if c.PlatformEpochs <= 0 {
		c.PlatformEpochs = 30
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// MethodScore is one (method, noise rate) cell of a Fig. 4/5/6/7-style
// comparison: detection quality aggregated over the incremental datasets,
// plus the timing and analytic-work averages behind Fig. 8.
type MethodScore struct {
	Method      string
	Eta         float64
	Agg         metrics.Aggregate
	SetupTime   time.Duration
	MeanProcess time.Duration
	MeanWork    float64
}

// FigureResult is a generic experiment outcome: named rows of scores.
type FigureResult struct {
	ID    string
	Title string
	Rows  []MethodScore
	// VsENLD holds, per baseline method, a paired sign test of ENLD's
	// per-shard F1 against that method's across all noise rates (method
	// comparisons only; nil elsewhere).
	VsENLD map[string]metrics.PairedComparison
}

// Score returns the mean F1 of a method at a noise rate, or -1 if absent.
func (f *FigureResult) Score(method string, eta float64) float64 {
	for _, r := range f.Rows {
		if r.Method == method && r.Eta == eta {
			return r.Agg.F1.Mean
		}
	}
	return -1
}

// MeanF1 averages a method's F1 across all noise rates in the result.
func (f *FigureResult) MeanF1(method string) float64 {
	var sum float64
	n := 0
	for _, r := range f.Rows {
		if r.Method == method {
			sum += r.Agg.F1.Mean
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// MeanProcess averages a method's per-task process time across noise rates.
func (f *FigureResult) MeanProcess(method string) time.Duration {
	var sum time.Duration
	n := 0
	for _, r := range f.Rows {
		if r.Method == method {
			sum += r.MeanProcess
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// MeanWork averages a method's analytic work across noise rates.
func (f *FigureResult) MeanWork(method string) float64 {
	var sum float64
	n := 0
	for _, r := range f.Rows {
		if r.Method == method {
			sum += r.MeanWork
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// render prints the figure as a method × eta grid of P/R/F1 rows.
func (f *FigureResult) render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "method\teta\tprecision\trecall\tf1\tprocess\twork")
	rows := append([]MethodScore(nil), f.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Method != rows[j].Method {
			return rows[i].Method < rows[j].Method
		}
		return rows[i].Eta < rows[j].Eta
	})
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.4f±%.3f\t%.4f±%.3f\t%.4f±%.3f\t%s\t%.0f\n",
			r.Method, r.Eta,
			r.Agg.Precision.Mean, r.Agg.Precision.Std,
			r.Agg.Recall.Mean, r.Agg.Recall.Std,
			r.Agg.F1.Mean, r.Agg.F1.Std,
			r.MeanProcess.Round(time.Millisecond), r.MeanWork)
	}
	tw.Flush()
	if len(f.VsENLD) > 0 {
		methods := make([]string, 0, len(f.VsENLD))
		for m := range f.VsENLD {
			methods = append(methods, m)
		}
		sort.Strings(methods)
		for _, m := range methods {
			cmp := f.VsENLD[m]
			fmt.Fprintf(w, "sign test enld vs %s: %d wins / %d losses / %d ties (p = %.4f)\n",
				m, cmp.Wins, cmp.Losses, cmp.Ties, cmp.PValue)
		}
	}
	fmt.Fprintln(w)
}

// runDetector applies d to every shard and aggregates detection metrics,
// process time and analytic work. The per-shard detections are returned for
// paired significance testing.
func runDetector(d detect.Detector, shards []dataset.Set) (metrics.Aggregate, time.Duration, float64, []metrics.Detection, error) {
	var dets []metrics.Detection
	var totalProcess time.Duration
	var totalWork float64
	for _, shard := range shards {
		res, err := d.Detect(shard)
		if err != nil {
			return metrics.Aggregate{}, 0, 0, nil, fmt.Errorf("%s: %w", d.Name(), err)
		}
		dets = append(dets, metrics.EvaluateDetection(shard, res.Noisy))
		totalProcess += res.Process
		totalWork += res.Meter.Total()
	}
	n := time.Duration(len(shards))
	return metrics.AggregateDetections(dets), totalProcess / n, totalWork / float64(len(shards)), dets, nil
}

// StandardMethods builds the §V-A4 method set for a prepared workbench:
// Default, CL-1, CL-2, TopoFilter and ENLD.
func StandardMethods(wb *Workbench, topoSeed uint64) []detect.Detector {
	return standardMethods(wb.Platform, wb.Inventory, wb.ENLDCfg, topoSeed)
}

// standardMethods builds the §V-A4 method set sharing the platform's general
// model: Default, CL-1, CL-2, TopoFilter and ENLD.
func standardMethods(p *core.Platform, inventory dataset.Set, enldCfg core.Config, topoSeed uint64) []detect.Detector {
	return []detect.Detector{
		baselines.Default{Model: p.Model},
		baselines.ConfidentLearning{Model: p.Model, Variant: baselines.PruneByClass, Calibration: p.Ic},
		baselines.ConfidentLearning{Model: p.Model, Variant: baselines.PruneByNoiseRate, Calibration: p.Ic},
		baselines.TopoFilter{
			Arch: p.Config.Arch, InputDim: p.Config.InputDim, Classes: p.Config.Classes,
			Inventory: inventory, Config: baselines.DefaultTopoFilterConfig(topoSeed),
		},
		&core.ENLD{Platform: p, Config: enldCfg},
	}
}
