package experiments

import (
	"fmt"

	"enld/internal/core"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/noise"
)

// Workbench is one fully prepared evaluation setting: a noisy task split
// into inventory and incremental shards, with a platform initialized on the
// inventory.
type Workbench struct {
	Preset    string
	Eta       float64
	Spec      dataset.Spec
	Platform  *core.Platform
	Inventory dataset.Set // full I (both halves), for TopoFilter
	Shards    []dataset.Set
	ENLDCfg   core.Config
}

// presetShardSpec returns the paper's incremental split for each benchmark
// (§V-A1).
func presetShardSpec(preset string) (dataset.ShardSpec, int) {
	// Drift models the distribution change of arriving datasets (§I); the
	// harder benchmarks drift more, mirroring how far Tiny-ImageNet batches
	// stray from any fixed training distribution.
	switch preset {
	case "emnist":
		return dataset.ShardSpec{Shards: 10, MinClasses: 5, MaxClasses: 6, Drift: 0.35}, 5
	case "cifar100":
		return dataset.ShardSpec{Shards: 20, MinClasses: 10, MaxClasses: 10, Drift: 0.55}, 17
	case "tinyimagenet":
		return dataset.ShardSpec{Shards: 20, MinClasses: 20, MaxClasses: 20, Drift: 0.65}, 17
	default:
		return dataset.ShardSpec{Shards: 10, MinClasses: 5, MaxClasses: 6, Drift: 0.35}, 5
	}
}

// BuildWorkbench prepares the named preset ("emnist", "cifar100",
// "tinyimagenet") at noise rate eta under cfg.
func BuildWorkbench(preset string, eta float64, cfg Config) (*Workbench, error) {
	return buildWorkbench(preset, eta, cfg, nil)
}

// BuildWorkbenchFrom is BuildWorkbench with a previously saved platform
// (core.LoadPlatform) substituted for the setup phase — the crash-recovery
// path: a restarted service resumes serving without retraining the general
// model. Dataset generation is deterministic from cfg.Seed, so the rebuilt
// shards are byte-identical to the original run's, which is what makes
// journal-based task skipping sound. The platform must match the preset's
// class count and feature dimension.
func BuildWorkbenchFrom(preset string, eta float64, cfg Config, platform *core.Platform) (*Workbench, error) {
	if platform == nil {
		return nil, fmt.Errorf("experiments: nil platform")
	}
	return buildWorkbench(preset, eta, cfg, platform)
}

func buildWorkbench(preset string, eta float64, cfg Config, platform *core.Platform) (*Workbench, error) {
	cfg = cfg.normalized()
	specs := dataset.Presets(cfg.Seed)
	spec, ok := specs[preset]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown preset %q", preset)
	}
	spec = spec.Scale(cfg.DataScale)

	full, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	rng := mat.NewRNG(cfg.Seed ^ 0x517cc1b727220a95)
	if eta > 0 {
		var tm noise.TransitionMatrix
		var err error
		switch cfg.Noise {
		case "", NoisePair:
			tm, err = noise.Pair(spec.Classes, eta)
		case NoiseSymmetric:
			tm, err = noise.Symmetric(spec.Classes, eta)
		default:
			return nil, fmt.Errorf("experiments: unknown noise kind %q", cfg.Noise)
		}
		if err != nil {
			return nil, err
		}
		if _, err := noise.Apply(full, tm, rng); err != nil {
			return nil, err
		}
	}
	inventory, pool, err := dataset.SplitRatio(full, 2.0/3.0, rng)
	if err != nil {
		return nil, err
	}
	shardSpec, iterations := presetShardSpec(preset)
	if cfg.Shards > 0 {
		shardSpec.Shards = cfg.Shards
	}
	if cfg.Iterations > 0 {
		iterations = cfg.Iterations
	}
	shards, err := dataset.Shard(pool, shardSpec, rng)
	if err != nil {
		return nil, err
	}

	if platform == nil {
		pcfg := core.DefaultPlatformConfig(spec.Classes, spec.FeatureDim, cfg.Seed+1)
		pcfg.Epochs = cfg.PlatformEpochs
		pcfg.Workers = cfg.Workers
		pcfg.Watchdog = cfg.Watchdog
		platform, err = core.NewPlatformObserved(inventory, pcfg, cfg.Obs)
		if err != nil {
			return nil, err
		}
	} else if platform.Config.Classes != spec.Classes || platform.Config.InputDim != spec.FeatureDim {
		return nil, fmt.Errorf("experiments: saved platform (classes=%d dim=%d) does not match preset %q (classes=%d dim=%d)",
			platform.Config.Classes, platform.Config.InputDim, preset, spec.Classes, spec.FeatureDim)
	} else if cfg.Obs != nil {
		// A restored platform carries no registry (Save/Load drop it);
		// re-attach the caller's.
		platform.Obs = cfg.Obs
	}

	ecfg := core.DefaultConfig(cfg.Seed + 2)
	ecfg.Iterations = iterations
	ecfg.Workers = cfg.Workers
	ecfg.ANN = cfg.ANN
	ecfg.Float32 = cfg.Float32
	return &Workbench{
		Preset:    preset,
		Eta:       eta,
		Spec:      spec,
		Platform:  platform,
		Inventory: inventory,
		Shards:    shards,
		ENLDCfg:   ecfg,
	}, nil
}
