package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"enld/internal/core"
	"enld/internal/metrics"
	"enld/internal/sampling"
)

// Ext3Row is one (scale, index kind) cell of the indexing ablation.
type Ext3Row struct {
	DataScale   float64
	Index       string // "kdtree" or "brute"
	PoolSize    int    // mean |H'| candidate pool per task
	MeanProcess time.Duration
	F1          metrics.Summary
}

// Ext3Result reports the contrastive-sampling index ablation.
type Ext3Result struct {
	Rows []Ext3Row
}

// RunExt3 is an extension quantifying §IV-D's implementation note: it runs
// ENLD with per-class KD-trees versus a brute-force linear scan at growing
// inventory scales and reports the per-task process time of each. Detection
// quality must be identical (both return exact nearest neighbours); only
// the time may differ, increasingly so as |H'| grows.
func RunExt3(cfg Config) (*Ext3Result, error) {
	cfg = cfg.normalized()
	out := &Ext3Result{}
	const eta = 0.2
	for _, scale := range []float64{0.5, 1.0, 2.0} {
		sc := cfg
		sc.DataScale = cfg.DataScale * scale
		wb, err := BuildWorkbench("cifar100", eta, sc)
		if err != nil {
			return nil, err
		}
		poolSize := len(wb.Platform.Ic)
		for _, variant := range []struct {
			name  string
			strat sampling.Strategy
		}{
			{"kdtree", sampling.Contrastive{}},
			{"brute", sampling.Contrastive{Brute: true}},
		} {
			ecfg := wb.ENLDCfg
			ecfg.Strategy = variant.strat
			e := &core.ENLD{Platform: wb.Platform, Config: ecfg}
			agg, proc, _, _, err := runDetector(e, wb.Shards)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, Ext3Row{
				DataScale:   sc.DataScale,
				Index:       variant.name,
				PoolSize:    poolSize,
				MeanProcess: proc,
				F1:          agg.F1,
			})
		}
	}
	out.render(cfg.Out)
	return out, nil
}

func (r *Ext3Result) render(w io.Writer) {
	fmt.Fprintln(w, "== ext3: contrastive-sampling index ablation (KD-tree vs brute force) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "data scale\tindex\t|I_c|\tmean process\tf1")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%.2f\t%s\t%d\t%s\t%.4f±%.3f\n",
			row.DataScale, row.Index, row.PoolSize,
			row.MeanProcess.Round(time.Millisecond),
			row.F1.Mean, row.F1.Std)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
