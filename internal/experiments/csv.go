package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"
)

// writeCSV writes header+rows to <dir>/<name>.csv. A missing directory is
// created. Experiments call this when Config.CSVDir is set, so runs can feed
// external plotting without parsing the text tables.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: csv dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("experiments: csv create: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func dtoa(d time.Duration) string { return strconv.FormatFloat(d.Seconds(), 'g', 8, 64) }

// CSV exports the figure's rows.
func (f *FigureResult) CSV(dir string) error {
	header := []string{"method", "eta", "precision", "precision_std",
		"recall", "recall_std", "f1", "f1_std", "setup_s", "process_s", "work"}
	var rows [][]string
	for _, r := range f.Rows {
		rows = append(rows, []string{
			r.Method, ftoa(r.Eta),
			ftoa(r.Agg.Precision.Mean), ftoa(r.Agg.Precision.Std),
			ftoa(r.Agg.Recall.Mean), ftoa(r.Agg.Recall.Std),
			ftoa(r.Agg.F1.Mean), ftoa(r.Agg.F1.Std),
			dtoa(r.SetupTime), dtoa(r.MeanProcess), ftoa(r.MeanWork),
		})
	}
	return writeCSV(dir, f.ID, header, rows)
}

// CSV exports the trajectory series.
func (r *TrajectoryResult) CSV(dir string) error {
	header := []string{"eta", "iteration", "precision", "precision_std",
		"recall", "recall_std", "f1", "f1_std", "ambiguous", "ambiguous_std"}
	var rows [][]string
	for _, eta := range sortedKeys(r.Series) {
		for _, p := range r.Series[eta] {
			rows = append(rows, []string{
				ftoa(eta), strconv.Itoa(p.Iteration),
				ftoa(p.Precision.Mean), ftoa(p.Precision.Std),
				ftoa(p.Recall.Mean), ftoa(p.Recall.Std),
				ftoa(p.F1.Mean), ftoa(p.F1.Std),
				ftoa(p.Ambiguous.Mean), ftoa(p.Ambiguous.Std),
			})
		}
	}
	return writeCSV(dir, r.ID, header, rows)
}

// CSV exports the timing rows and speedups.
func (r *Fig8Result) CSV(dir string) error {
	header := []string{"dataset", "method", "setup_s", "process_s", "work"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Dataset, row.Method, dtoa(row.Setup), dtoa(row.MeanProcess), ftoa(row.MeanWork),
		})
	}
	return writeCSV(dir, "fig8", header, rows)
}

// CSV exports the loss rows.
func (r *Fig3Result) CSV(dir string) error {
	header := []string{"eta", "strategy", "loss", "loss_std"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			ftoa(row.Eta), row.Strategy, ftoa(row.Loss.Mean), ftoa(row.Loss.Std),
		})
	}
	return writeCSV(dir, "fig3", header, rows)
}

// CSV exports the missing-label rows.
func (r *Fig13aResult) CSV(dir string) error {
	header := []string{"missing_rate", "pseudo_f1", "pseudo_f1_std", "detection_f1", "detection_f1_std"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			ftoa(row.MissingRate),
			ftoa(row.PseudoF1.Mean), ftoa(row.PseudoF1.Std),
			ftoa(row.DetectionF1.Mean), ftoa(row.DetectionF1.Std),
		})
	}
	return writeCSV(dir, "fig13a", header, rows)
}

// CSV exports the model-update rows.
func (r *Table2Result) CSV(dir string) error {
	header := []string{"eta", "accuracy_before", "accuracy_after", "selected"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			ftoa(row.Eta), ftoa(row.Before), ftoa(row.After), strconv.Itoa(row.Selected),
		})
	}
	return writeCSV(dir, "tab2", header, rows)
}

// CSV exports the index-ablation rows.
func (r *Ext3Result) CSV(dir string) error {
	header := []string{"data_scale", "index", "pool_size", "process_s", "f1", "f1_std"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			ftoa(row.DataScale), row.Index, strconv.Itoa(row.PoolSize),
			dtoa(row.MeanProcess), ftoa(row.F1.Mean), ftoa(row.F1.Std),
		})
	}
	return writeCSV(dir, "ext3", header, rows)
}

// CSVExporter is implemented by every experiment result type.
type CSVExporter interface {
	CSV(dir string) error
}

// ExportCSV writes the result's CSV to dir if the result supports it.
func ExportCSV(result interface{}, dir string) error {
	if dir == "" {
		return nil
	}
	if exp, ok := result.(CSVExporter); ok {
		return exp.CSV(dir)
	}
	return nil
}
