package experiments

import "io"

// RunExt2 is an extension beyond the paper's evaluation: the standard method
// comparison under *symmetric* (uniform) label noise instead of the paper's
// pair asymmetric noise, on the CIFAR100-like benchmark. Symmetric noise
// spreads corrupted labels over all classes, so confidence-only methods face
// easier evidence (a mislabelled sample rarely lands on a plausible class)
// while the estimated conditional probability P̃ carries less structure for
// contrastive sampling to exploit. The experiment measures how much of
// ENLD's advantage survives when the noise model stops being adversarial.
func RunExt2(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	cfg.Noise = NoiseSymmetric
	inner := cfg
	inner.Out = io.Discard
	fig, err := runMethodComparison("ext2", "methods under symmetric noise (CIFAR100-like)", "cifar100", inner)
	if err != nil {
		return nil, err
	}
	fig.render(cfg.Out)
	return fig, nil
}
