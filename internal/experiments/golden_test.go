package experiments

import (
	"math"
	"testing"
)

// TestGoldenRegression pins the end-to-end pipeline to exact metric values
// for one fixed configuration. Every stochastic component is seeded, so any
// change to data generation, noise injection, training order, sampling or
// selection logic shifts these numbers — which is the point: an uninspected
// diff here means the algorithm changed, not just the code.
//
// When an intentional algorithm change lands, re-derive the constants by
// running the test with -run TestGoldenRegression -v and copying the logged
// values.
func TestGoldenRegression(t *testing.T) {
	cfg := Config{
		Seed:           12345,
		DataScale:      0.5,
		Shards:         2,
		Etas:           []float64{0.2},
		PlatformEpochs: 10,
		Iterations:     3,
	}
	wb, err := BuildWorkbench("emnist", 0.2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var f1s []float64
	for _, d := range StandardMethods(wb, cfg.Seed+3) {
		agg, _, _, _, err := runDetector(d, wb.Shards)
		if err != nil {
			t.Fatal(err)
		}
		f1s = append(f1s, agg.F1.Mean)
		t.Logf("%s F1 = %.10f", d.Name(), agg.F1.Mean)
	}
	// Order: default, cl-1, cl-2, topofilter, enld.
	golden := []float64{
		0.4810606061, // default
		0.7166666667, // cl-1
		0.7166666667, // cl-2
		0.8533333333, // topofilter
		0.7352941176, // enld
	}
	if len(f1s) != len(golden) {
		t.Fatalf("%d methods", len(f1s))
	}
	for i, want := range golden {
		if math.Abs(f1s[i]-want) > 1e-6 {
			t.Errorf("method %d: F1 %.10f, golden %.10f (algorithm behaviour changed; "+
				"if intentional, update the golden values)", i, f1s[i], want)
		}
	}
}
