package experiments

import (
	"enld/internal/baselines"
	"enld/internal/core"
	"enld/internal/lake"
)

// BrownoutLadder builds the lake service's brownout degradation ladder from a
// prepared workbench: full ENLD, ENLD on the approximate ANN index, ENLD on
// ANN plus the float32 ranking profile, and the Default baseline as the
// last-resort fallback rung. Every rung shares the workbench platform's
// general model, so switching tiers costs no retraining — exactly why these
// four make a viable brownout ladder: each step down keeps serving real
// detections, just cheaper ones.
func BrownoutLadder(wb *Workbench) []lake.TierDetector {
	cfgs := wb.ENLDCfg.TierLadder()
	names := []string{lake.TierFull, lake.TierANN, lake.TierANNFloat32}
	ladder := make([]lake.TierDetector, 0, len(cfgs)+1)
	for i, cfg := range cfgs {
		ladder = append(ladder, lake.TierDetector{
			Name:     names[i],
			Detector: &core.ENLD{Platform: wb.Platform, Config: cfg},
		})
	}
	return append(ladder, lake.TierDetector{
		Name:     lake.TierFallback,
		Detector: baselines.Default{Model: wb.Platform.Model},
	})
}
