package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Markdown renders the figure as a GitHub-flavoured Markdown table, one row
// per method with a column per noise rate, matching the layout EXPERIMENTS.md
// uses for paper-versus-measured comparisons.
func (f *FigureResult) Markdown() string {
	etas := map[float64]bool{}
	methods := []string{}
	seen := map[string]bool{}
	for _, r := range f.Rows {
		etas[r.Eta] = true
		if !seen[r.Method] {
			seen[r.Method] = true
			methods = append(methods, r.Method)
		}
	}
	etaList := make([]float64, 0, len(etas))
	for e := range etas {
		etaList = append(etaList, e)
	}
	sort.Float64s(etaList)
	sort.Strings(methods)

	var b strings.Builder
	b.WriteString("| method |")
	for _, e := range etaList {
		fmt.Fprintf(&b, " η=%.1f F1 |", e)
	}
	b.WriteString(" mean F1 | mean process | mean work |\n|---|")
	for range etaList {
		b.WriteString("---|")
	}
	b.WriteString("---|---|---|\n")
	for _, m := range methods {
		fmt.Fprintf(&b, "| %s |", m)
		for _, e := range etaList {
			if v := f.Score(m, e); v >= 0 {
				fmt.Fprintf(&b, " %.3f |", v)
			} else {
				b.WriteString(" — |")
			}
		}
		fmt.Fprintf(&b, " %.3f | %s | %.0f |\n",
			f.MeanF1(m), f.MeanProcess(m).Round(time.Millisecond), f.MeanWork(m))
	}
	if len(f.VsENLD) > 0 {
		b.WriteString("\n")
		names := make([]string, 0, len(f.VsENLD))
		for m := range f.VsENLD {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			cmp := f.VsENLD[m]
			fmt.Fprintf(&b, "Sign test ENLD vs %s: %d/%d/%d wins/losses/ties, p = %.4f.\n",
				m, cmp.Wins, cmp.Losses, cmp.Ties, cmp.PValue)
		}
	}
	return b.String()
}

// Markdown renders the Fig. 8 timing table.
func (r *Fig8Result) Markdown() string {
	var b strings.Builder
	b.WriteString("| dataset | method | setup | mean process | mean work |\n|---|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %.0f |\n",
			row.Dataset, row.Method,
			row.Setup.Round(time.Millisecond),
			row.MeanProcess.Round(time.Millisecond),
			row.MeanWork)
	}
	b.WriteString("\n")
	for _, ds := range []string{"emnist", "cifar100", "tinyimagenet"} {
		if s, ok := r.SpeedupWallclock[ds]; ok {
			fmt.Fprintf(&b, "Speedup on %s: %.2f× wall-clock, %.2f× analytic work.\n",
				ds, s, r.SpeedupWork[ds])
		}
	}
	return b.String()
}

// MarkdownExporter is implemented by results that render Markdown tables.
type MarkdownExporter interface {
	Markdown() string
}

// ExportMarkdown returns the result's Markdown rendering, or "" if the
// result type has none.
func ExportMarkdown(result interface{}) string {
	if exp, ok := result.(MarkdownExporter); ok {
		return exp.Markdown()
	}
	return ""
}

// Markdown renders the Table II accuracies.
func (r *Table2Result) Markdown() string {
	var b strings.Builder
	b.WriteString("| η | origin model | updated model | \\|S_c\\| |\n|---|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "| %.1f | %.2f%% | %.2f%% | %d |\n",
			row.Eta, row.Before*100, row.After*100, row.Selected)
	}
	return b.String()
}
