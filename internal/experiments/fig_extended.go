package experiments

import (
	"enld/internal/baselines"
	"enld/internal/detect"
)

// AllMethods is StandardMethods plus the extension detectors: loss tracking
// (O2U-style), iterative cross-validation (INCV-style) and Co-teaching.
func AllMethods(wb *Workbench, seed uint64) []detect.Detector {
	return append(StandardMethods(wb, seed),
		baselines.LossTrack{
			Arch:      wb.Platform.Config.Arch,
			InputDim:  wb.Spec.FeatureDim,
			Classes:   wb.Spec.Classes,
			Inventory: wb.Inventory,
			Config:    baselines.DefaultLossTrackConfig(seed + 1),
		},
		baselines.INCV{
			Arch:      wb.Platform.Config.Arch,
			InputDim:  wb.Spec.FeatureDim,
			Classes:   wb.Spec.Classes,
			Inventory: wb.Inventory,
			Config:    baselines.DefaultINCVConfig(seed + 2),
		},
		baselines.CoTeaching{
			Arch:      wb.Platform.Config.Arch,
			InputDim:  wb.Spec.FeatureDim,
			Classes:   wb.Spec.Classes,
			Inventory: wb.Inventory,
			Config:    baselines.DefaultCoTeachingConfig(seed + 3),
		})
}

// RunExt1 is an extension beyond the paper's comparison set: the §V-A4
// methods plus loss-tracking and cross-validation detectors (the O2U-Net / small-loss and INCV families, which
// the paper discusses as related work in §II but does not evaluate) on the
// CIFAR100-like benchmark. The paper argues in §I that directly adopting
// loss-tracking methods to incremental data performs poorly because of the
// limited sample diversity of each arrival; this experiment measures that
// claim.
func RunExt1(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: "ext1", Title: "extended comparison: loss tracking, INCV, co-teaching (CIFAR100-like)"}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench("cifar100", eta, cfg)
		if err != nil {
			return nil, err
		}
		detectors := AllMethods(wb, cfg.Seed+3)
		for _, d := range detectors {
			agg, proc, work, _, err := runDetector(d, wb.Shards)
			if err != nil {
				return nil, err
			}
			setup := wb.Platform.SetupTime
			switch d.Name() {
			case "topofilter", "losstrack", "incv", "coteaching":
				setup = 0 // per-request training methods have no setup phase
			}
			out.Rows = append(out.Rows, MethodScore{
				Method: d.Name(), Eta: eta, Agg: agg,
				SetupTime: setup, MeanProcess: proc, MeanWork: work,
			})
		}
	}
	out.render(cfg.Out)
	return out, nil
}
