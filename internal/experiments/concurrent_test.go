package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunConcurrentMatchesSequential runs the same experiment set through
// RunConcurrent at 1 and 2 workers and through sequential Run, asserting the
// structured results agree and the rendered output stays in input order.
// (Byte-for-byte output comparison is impossible — renders include wall-clock
// process times — so the assertion is on the deterministic metrics.)
func TestRunConcurrentMatchesSequential(t *testing.T) {
	ids := []string{"fig3", "fig4"}
	// Leaner than quickCfg: this test runs each experiment three times
	// (sequential reference plus two concurrent worker counts).
	cfg := Config{
		Seed:           5,
		DataScale:      0.3,
		Shards:         2,
		Etas:           []float64{0.2},
		PlatformEpochs: 8,
		Iterations:     2,
	}

	seqFig3, err := Run("fig3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqFig4, err := Run("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2} {
		var buf bytes.Buffer
		ccfg := cfg
		ccfg.Out = &buf
		results, err := RunConcurrent(ids, ccfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		f3, ok := results[0].(*Fig3Result)
		if !ok {
			t.Fatalf("workers=%d: result 0 is %T", workers, results[0])
		}
		f4, ok := results[1].(*FigureResult)
		if !ok {
			t.Fatalf("workers=%d: result 1 is %T", workers, results[1])
		}
		want3 := seqFig3.(*Fig3Result)
		if len(f3.Rows) != len(want3.Rows) {
			t.Fatalf("workers=%d: fig3 has %d rows, want %d", workers, len(f3.Rows), len(want3.Rows))
		}
		for i, row := range want3.Rows {
			if f3.Rows[i].Loss.Mean != row.Loss.Mean {
				t.Errorf("workers=%d: fig3 row %d loss %.10f, want %.10f",
					workers, i, f3.Rows[i].Loss.Mean, row.Loss.Mean)
			}
		}
		want4 := seqFig4.(*FigureResult)
		for _, row := range want4.Rows {
			if got := f4.Score(row.Method, row.Eta); got != row.Agg.F1.Mean {
				t.Errorf("workers=%d: fig4 %s@%.1f F1 %.10f, want %.10f",
					workers, row.Method, row.Eta, got, row.Agg.F1.Mean)
			}
		}
		// Rendered output must appear in input order even when fig4 (the
		// slower experiment) is claimed first.
		out := buf.String()
		i3, i4 := strings.Index(out, "fig3"), strings.Index(out, "fig4")
		if i3 < 0 || i4 < 0 || i3 > i4 {
			t.Errorf("workers=%d: output out of order (fig3 at %d, fig4 at %d)", workers, i3, i4)
		}
	}
}

// TestRunConcurrentUnknownID pins the fail-fast path: an unknown ID is
// rejected before any experiment starts.
func TestRunConcurrentUnknownID(t *testing.T) {
	if _, err := RunConcurrent([]string{"fig4", "nope"}, quickCfg(6), 2); err == nil {
		t.Fatal("unknown id accepted")
	}
}
