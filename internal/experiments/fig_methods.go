package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"enld/internal/baselines"
	"enld/internal/core"
	"enld/internal/metrics"
	"enld/internal/nn"
)

// runMethodComparison sweeps the §V-A4 method set over cfg.Etas on one
// preset — the engine behind Figs. 4, 5 and 7.
func runMethodComparison(id, title, preset string, cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: id, Title: title, VsENLD: map[string]metrics.PairedComparison{}}
	perShardF1 := map[string][]float64{}
	for _, eta := range cfg.Etas {
		wb, err := BuildWorkbench(preset, eta, cfg)
		if err != nil {
			return nil, err
		}
		for _, d := range standardMethods(wb.Platform, wb.Inventory, wb.ENLDCfg, cfg.Seed+3) {
			agg, proc, work, dets, err := runDetector(d, wb.Shards)
			if err != nil {
				return nil, err
			}
			for _, det := range dets {
				perShardF1[d.Name()] = append(perShardF1[d.Name()], det.F1)
			}
			setup := wb.Platform.SetupTime
			if d.Name() == "topofilter" {
				setup = 0 // TopoFilter needs no platform initialization
			}
			out.Rows = append(out.Rows, MethodScore{
				Method: d.Name(), Eta: eta, Agg: agg,
				SetupTime: setup, MeanProcess: proc, MeanWork: work,
			})
		}
	}
	// Paired sign tests of ENLD against every baseline over the identical
	// shard set, pooled across noise rates.
	enldF1 := perShardF1["enld"]
	for method, f1s := range perShardF1 {
		if method == "enld" || len(f1s) != len(enldF1) {
			continue
		}
		if cmp, err := metrics.SignTest(enldF1, f1s); err == nil {
			out.VsENLD[method] = cmp
		}
	}
	out.render(cfg.Out)
	return out, nil
}

// RunFig4 reproduces Fig. 4: detection quality of all methods on the
// EMNIST-like benchmark across noise rates.
func RunFig4(cfg Config) (*FigureResult, error) {
	return runMethodComparison("fig4", "methods on EMNIST-like", "emnist", cfg)
}

// RunFig5 reproduces Fig. 5: the same comparison on the CIFAR100-like
// benchmark.
func RunFig5(cfg Config) (*FigureResult, error) {
	return runMethodComparison("fig5", "methods on CIFAR100-like", "cifar100", cfg)
}

// RunFig7 reproduces Fig. 7: the same comparison on the TinyImageNet-like
// benchmark.
func RunFig7(cfg Config) (*FigureResult, error) {
	return runMethodComparison("fig7", "methods on TinyImageNet-like", "tinyimagenet", cfg)
}

// RunFig6 reproduces Fig. 6: ENLD versus TopoFilter on the CIFAR100-like
// benchmark under the two alternative architectures (SimDenseNet121,
// SimResNet164). Method names are suffixed with the architecture.
func RunFig6(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	out := &FigureResult{ID: "fig6", Title: "ENLD vs TopoFilter across architectures (CIFAR100-like)"}
	for _, arch := range []nn.Arch{nn.SimDenseNet121, nn.SimResNet164} {
		for _, eta := range cfg.Etas {
			wb, err := buildWorkbenchWithArch("cifar100", eta, cfg, arch)
			if err != nil {
				return nil, err
			}
			topo := baselines.TopoFilter{
				Arch: arch, InputDim: wb.Spec.FeatureDim, Classes: wb.Spec.Classes,
				Inventory: wb.Inventory,
				Config:    baselines.DefaultTopoFilterConfig(cfg.Seed + 3),
			}
			enld := &core.ENLD{Platform: wb.Platform, Config: wb.ENLDCfg}

			aggT, procT, workT, _, err := runDetector(topo, wb.Shards)
			if err != nil {
				return nil, err
			}
			aggE, procE, workE, _, err := runDetector(enld, wb.Shards)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows,
				MethodScore{Method: "topofilter/" + string(arch), Eta: eta, Agg: aggT, MeanProcess: procT, MeanWork: workT},
				MethodScore{Method: "enld/" + string(arch), Eta: eta, Agg: aggE, SetupTime: wb.Platform.SetupTime, MeanProcess: procE, MeanWork: workE},
			)
		}
	}
	out.render(cfg.Out)
	return out, nil
}

// buildWorkbenchWithArch is BuildWorkbench with an architecture override.
func buildWorkbenchWithArch(preset string, eta float64, cfg Config, arch nn.Arch) (*Workbench, error) {
	// Rebuild with a platform of the requested architecture: reuse
	// BuildWorkbench for the data pipeline, then retrain the platform.
	cfg = cfg.normalized()
	wb, err := BuildWorkbench(preset, eta, cfg)
	if err != nil {
		return nil, err
	}
	pcfg := wb.Platform.Config
	pcfg.Arch = arch
	platform, err := core.NewPlatform(wb.Inventory, pcfg)
	if err != nil {
		return nil, err
	}
	wb.Platform = platform
	return wb, nil
}

// TimingRow is one (dataset, method) entry of Fig. 8.
type TimingRow struct {
	Dataset     string
	Method      string
	Setup       time.Duration
	MeanProcess time.Duration
	MeanWork    float64
}

// Fig8Result is the setup/process-time comparison of Fig. 8, plus the
// derived ENLD-vs-TopoFilter speedups the paper headlines.
type Fig8Result struct {
	Rows []TimingRow
	// SpeedupWallclock and SpeedupWork are TopoFilter's mean process cost
	// divided by ENLD's, per dataset, in wall-clock and analytic terms.
	SpeedupWallclock map[string]float64
	SpeedupWork      map[string]float64
}

// RunFig8 reproduces Fig. 8: setup and process time of every method on
// every dataset, sweeping cfg.Etas and averaging.
func RunFig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.normalized()
	res := &Fig8Result{
		SpeedupWallclock: map[string]float64{},
		SpeedupWork:      map[string]float64{},
	}
	figs := []struct {
		preset string
		run    func(Config) (*FigureResult, error)
	}{
		{"emnist", RunFig4},
		{"cifar100", RunFig5},
		{"tinyimagenet", RunFig7},
	}
	quiet := cfg
	quiet.Out = io.Discard
	for _, f := range figs {
		fig, err := f.run(quiet)
		if err != nil {
			return nil, err
		}
		perMethod := map[string]*TimingRow{}
		order := []string{}
		for _, row := range fig.Rows {
			tr, ok := perMethod[row.Method]
			if !ok {
				tr = &TimingRow{Dataset: f.preset, Method: row.Method, Setup: row.SetupTime}
				perMethod[row.Method] = tr
				order = append(order, row.Method)
			}
			tr.MeanProcess += row.MeanProcess / time.Duration(len(cfg.Etas))
			tr.MeanWork += row.MeanWork / float64(len(cfg.Etas))
		}
		for _, m := range order {
			res.Rows = append(res.Rows, *perMethod[m])
		}
		if topo, enld := perMethod["topofilter"], perMethod["enld"]; topo != nil && enld != nil {
			if enld.MeanProcess > 0 {
				res.SpeedupWallclock[f.preset] = float64(topo.MeanProcess) / float64(enld.MeanProcess)
			}
			if enld.MeanWork > 0 {
				res.SpeedupWork[f.preset] = topo.MeanWork / enld.MeanWork
			}
		}
	}
	res.render(cfg.Out)
	return res, nil
}

func (r *Fig8Result) render(w io.Writer) {
	fmt.Fprintln(w, "== fig8: setup and process time per method and dataset ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tmethod\tsetup\tmean process\tmean work")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.0f\n",
			row.Dataset, row.Method,
			row.Setup.Round(time.Millisecond),
			row.MeanProcess.Round(time.Millisecond),
			row.MeanWork)
	}
	tw.Flush()
	for _, ds := range []string{"emnist", "cifar100", "tinyimagenet"} {
		if s, ok := r.SpeedupWallclock[ds]; ok {
			fmt.Fprintf(w, "speedup %s: %.2fx wall-clock, %.2fx analytic work\n",
				ds, s, r.SpeedupWork[ds])
		}
	}
	fmt.Fprintln(w)
}
