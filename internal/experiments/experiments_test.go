package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast: few shards, one eta, reduced data.
func quickCfg(seed uint64) Config {
	return Config{
		Seed:           seed,
		DataScale:      0.6,
		Shards:         3,
		Etas:           []float64{0.2},
		PlatformEpochs: 20,
		Iterations:     4,
	}
}

func TestBuildWorkbench(t *testing.T) {
	wb, err := BuildWorkbench("emnist", 0.2, quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if wb.Platform == nil || len(wb.Shards) != 3 {
		t.Fatalf("workbench malformed: %d shards", len(wb.Shards))
	}
	for i, shard := range wb.Shards {
		if len(shard) == 0 {
			t.Fatalf("shard %d empty", i)
		}
	}
	if wb.ENLDCfg.Iterations != 4 {
		t.Fatalf("iterations = %d", wb.ENLDCfg.Iterations)
	}
	if _, err := BuildWorkbench("nope", 0.2, quickCfg(1)); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestRunFig4QuickShapes(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(2)
	cfg.Out = &buf
	fig, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 methods × 1 eta.
	if len(fig.Rows) != 5 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	for _, m := range []string{"default", "cl-1", "cl-2", "topofilter", "enld"} {
		if fig.Score(m, 0.2) < 0 {
			t.Fatalf("method %s missing", m)
		}
	}
	// Central claim on the easy benchmark: ENLD is competitive with the best
	// baseline.
	enld := fig.Score("enld", 0.2)
	if enld < 0.6 {
		t.Fatalf("ENLD F1 = %v", enld)
	}
	if !strings.Contains(buf.String(), "fig4") {
		t.Fatal("no rendering produced")
	}
}

func TestRunFig5QualitativeOrdering(t *testing.T) {
	fig, err := RunFig5(quickCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	enld := fig.Score("enld", 0.2)
	def := fig.Score("default", 0.2)
	topo := fig.Score("topofilter", 0.2)
	t.Logf("enld=%.4f topofilter=%.4f default=%.4f cl1=%.4f cl2=%.4f",
		enld, topo, def, fig.Score("cl-1", 0.2), fig.Score("cl-2", 0.2))
	// Training-based methods must beat the confidence-only floor on the
	// grouped (confusable) benchmark.
	if enld <= def-0.02 {
		t.Fatalf("ENLD %.4f not above Default %.4f", enld, def)
	}
	// ENLD at least matches TopoFilter (paper: slightly better on average).
	if enld < topo-0.05 {
		t.Fatalf("ENLD %.4f well below TopoFilter %.4f", enld, topo)
	}
	// Efficiency claim: ENLD processes faster than TopoFilter.
	if fig.MeanProcess("enld") >= fig.MeanProcess("topofilter") {
		t.Fatalf("ENLD process %v not faster than TopoFilter %v",
			fig.MeanProcess("enld"), fig.MeanProcess("topofilter"))
	}
}

func TestRunFig8Speedups(t *testing.T) {
	cfg := quickCfg(4)
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 { // 3 datasets × 5 methods
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, ds := range []string{"emnist", "cifar100", "tinyimagenet"} {
		s, ok := res.SpeedupWallclock[ds]
		if !ok {
			t.Fatalf("no speedup for %s", ds)
		}
		if s <= 1 {
			t.Errorf("%s: ENLD not faster than TopoFilter (%.2fx)", ds, s)
		}
	}
}

func TestRunFig9Trajectory(t *testing.T) {
	res, err := RunFig9(quickCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	points := res.Series[0.2]
	if len(points) != 4 {
		t.Fatalf("%d iterations", len(points))
	}
	// Fig. 9 shape: precision/F1 rise from the first iteration to the last;
	// recall starts high.
	first, last := points[0], points[len(points)-1]
	if last.F1.Mean < first.F1.Mean-0.02 {
		t.Errorf("F1 fell: %.4f -> %.4f", first.F1.Mean, last.F1.Mean)
	}
	if first.Recall.Mean < 0.5 {
		t.Errorf("early recall %.4f not high", first.Recall.Mean)
	}
	// Fig. 13(b) shape: ambiguous count shrinks.
	if last.Ambiguous.Mean > first.Ambiguous.Mean {
		t.Errorf("ambiguous grew: %.1f -> %.1f", first.Ambiguous.Mean, last.Ambiguous.Mean)
	}
}

func TestRunFig10Strategies(t *testing.T) {
	fig, err := RunFig10(quickCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 6 { // 6 strategies × 1 eta
		t.Fatalf("%d rows", len(fig.Rows))
	}
	contrastive := fig.Score("contrastive", 0.2)
	random := fig.Score("random", 0.2)
	t.Logf("contrastive=%.4f random=%.4f hc=%.4f lc=%.4f entropy=%.4f pseudo=%.4f",
		contrastive, random, fig.Score("highest-confidence", 0.2),
		fig.Score("least-confidence", 0.2), fig.Score("entropy", 0.2),
		fig.Score("pseudo", 0.2))
	if contrastive < random-0.02 {
		t.Fatalf("contrastive %.4f below random %.4f", contrastive, random)
	}
}

func TestRunFig11KSweep(t *testing.T) {
	fig, err := RunFig11(quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	for _, k := range []string{"k=1", "k=2", "k=3", "k=4"} {
		if fig.Score(k, 0.2) < 0 {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestRunFig3LossOrdering(t *testing.T) {
	cfg := quickCfg(8)
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	origin := res.Loss("origin", 0.2)
	related := res.Loss("nearest-related", 0.2)
	random := res.Loss("random", 0.2)
	t.Logf("origin=%.4f random=%.4f nearest-only=%.4f nearest-related=%.4f",
		origin, random, res.Loss("nearest-only", 0.2), related)
	if origin < 0 || related < 0 || random < 0 {
		t.Fatal("missing strategies")
	}
	// Fig. 3's conclusion: nearest-related lowers the loss below origin.
	if related >= origin {
		t.Errorf("nearest-related %.4f did not improve on origin %.4f", related, origin)
	}
}

func TestRunFig13aMissing(t *testing.T) {
	res, err := RunFig13a(quickCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// §V-H shape: higher missing rate, lower (or equal) pseudo-label quality.
	if res.Rows[2].PseudoF1.Mean > res.Rows[0].PseudoF1.Mean+0.05 {
		t.Errorf("pseudo F1 rose with missing rate: %.4f -> %.4f",
			res.Rows[0].PseudoF1.Mean, res.Rows[2].PseudoF1.Mean)
	}
	for _, row := range res.Rows {
		if row.PseudoF1.Mean <= 0 {
			t.Errorf("missing rate %.2f: zero pseudo F1", row.MissingRate)
		}
	}
}

func TestRunFig14Ablations(t *testing.T) {
	fig, err := RunFig14(quickCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 5 {
		t.Fatalf("%d rows", len(fig.Rows))
	}
	origin := fig.Score("enld-origin", 0.2)
	noContrastive := fig.Score("enld-1", 0.2)
	t.Logf("origin=%.4f enld-1=%.4f enld-2=%.4f enld-3=%.4f enld-4=%.4f",
		origin, noContrastive, fig.Score("enld-2", 0.2),
		fig.Score("enld-3", 0.2), fig.Score("enld-4", 0.2))
	// The paper's strongest ablation finding: removing contrastive sampling
	// hurts.
	if noContrastive > origin+0.03 {
		t.Errorf("removing contrastive sampling helped: %.4f vs %.4f", noContrastive, origin)
	}
}

func TestRunTable2(t *testing.T) {
	res, err := RunTable2(quickCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	t.Logf("before=%.4f after=%.4f |S_c|=%d", row.Before, row.After, row.Selected)
	if row.Selected == 0 {
		t.Fatal("no inventory selected")
	}
	// Table II shape: the update must not wreck generalization.
	if row.After < row.Before-0.05 {
		t.Errorf("update degraded accuracy: %.4f -> %.4f", row.Before, row.After)
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 17 {
		t.Fatalf("%d experiments registered", len(ids))
	}
	if _, err := Run("nope", quickCfg(1)); err == nil {
		t.Fatal("unknown id accepted")
	}
	// One registry round-trip on the cheapest experiment.
	if _, err := Run("fig11", quickCfg(12)); err != nil {
		t.Fatal(err)
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.DataScale != 1 || len(c.Etas) != 4 || c.PlatformEpochs != 30 || c.Out == nil {
		t.Fatalf("normalized = %+v", c)
	}
}
