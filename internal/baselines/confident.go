package baselines

import (
	"fmt"
	"sort"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/nn"
)

// CLVariant selects the pruning rule of Confident Learning
// [Northcutt et al., JAIR 2021]. The paper reports the two variants with the
// highest F1 as CL-1 and CL-2.
type CLVariant int

const (
	// PruneByClass (CL-1) estimates, per observed class i, how many of its
	// samples are mislabelled (the off-diagonal mass of row i of the
	// confident joint) and prunes that many samples with the lowest
	// self-confidence p(ỹ = i; x).
	PruneByClass CLVariant = iota
	// PruneByNoiseRate (CL-2) prunes, per off-diagonal cell (i, j) of the
	// confident joint, the C[i][j] samples of observed class i with the
	// largest margin p(j; x) − p(i; x).
	PruneByNoiseRate
)

// ConfidentLearning detects noisy labels from the general model's softmax
// outputs alone, with no additional training. Class thresholds
// t_j = E[p(j; x) | ỹ = j] define the confident joint: sample x with
// observed label i counts toward cell (i, j) when p(j; x) ≥ t_j and j is the
// largest such confident class.
type ConfidentLearning struct {
	Model   *nn.Network
	Variant CLVariant
	// Calibration optionally supplies extra labelled data (the paper uses
	// I_c together with D, §V-A4) for estimating the class thresholds.
	// Confidence thresholds from a small incremental dataset alone are
	// noisy; calibrating on the inventory stabilizes them.
	Calibration dataset.Set
}

// Name implements detect.Detector.
func (c ConfidentLearning) Name() string {
	if c.Variant == PruneByClass {
		return "cl-1"
	}
	return "cl-2"
}

// Detect implements detect.Detector.
func (c ConfidentLearning) Detect(set dataset.Set) (*detect.Result, error) {
	sw := cost.StartStopwatch()
	res := detect.NewResult()
	// Clone before scoring: scratch buffers are not safe for concurrent
	// use across the lake service's worker pool.
	model := c.Model.Clone()
	scores := detect.Score(model, set, &res.Meter)
	classes := model.Classes()

	// Class thresholds: mean confidence of class j over samples observed as
	// j, estimated on the calibration data (I_c) together with D per §V-A4.
	// Classes absent everywhere keep threshold +inf (never confident).
	thresh := make([]float64, classes)
	counts := make([]int, classes)
	accumulate := func(smp dataset.Sample, conf []float64) {
		if smp.Observed == dataset.Missing {
			return
		}
		thresh[smp.Observed] += conf[smp.Observed]
		counts[smp.Observed]++
	}
	for i, smp := range set {
		accumulate(smp, scores.Confidences[i])
	}
	// Calibration confidences in one batched pass (blocked-GEMM kernels);
	// identical to per-sample Confidences calls, accumulated in set order.
	calSamples := make([]dataset.Sample, 0, len(c.Calibration))
	calXs := make([][]float64, 0, len(c.Calibration))
	for _, smp := range c.Calibration {
		if smp.Observed == dataset.Missing {
			continue
		}
		calSamples = append(calSamples, smp)
		calXs = append(calXs, smp.X)
	}
	for i, conf := range model.ConfidencesBatch(calXs, 1) {
		accumulate(calSamples[i], conf)
		res.Meter.ForwardPasses++
	}
	for j := range thresh {
		if counts[j] > 0 {
			thresh[j] /= float64(counts[j])
		} else {
			thresh[j] = 2 // unreachable confidence
		}
	}

	// Confident joint C[i][j] with the sample indices backing each cell.
	cells := make(map[[2]int][]int)
	for i, smp := range set {
		if smp.Observed == dataset.Missing {
			// Missing labels cannot enter the joint; flag directly.
			res.MarkNoisy(smp.ID)
			continue
		}
		best, bestConf := -1, 0.0
		for j := 0; j < classes; j++ {
			if p := scores.Confidences[i][j]; p >= thresh[j] && p > bestConf {
				best, bestConf = j, p
			}
		}
		if best >= 0 && best != smp.Observed {
			cells[[2]int{smp.Observed, best}] = append(cells[[2]int{smp.Observed, best}], i)
		}
		res.MarkClean(smp.ID) // provisional; pruning below overrides
	}

	switch c.Variant {
	case PruneByClass:
		c.pruneByClass(set, scores, cells, res)
	case PruneByNoiseRate:
		c.pruneByNoiseRate(set, scores, cells, res)
	default:
		return nil, fmt.Errorf("baselines: unknown CL variant %d", c.Variant)
	}
	res.Process = sw.Elapsed()
	return res, nil
}

func (c ConfidentLearning) pruneByClass(set dataset.Set, scores *detect.Scores, cells map[[2]int][]int, res *detect.Result) {
	// Per observed class: total off-diagonal count n_i, prune the n_i
	// samples of that class with lowest self-confidence.
	offDiag := make(map[int]int)
	for cell, idxs := range cells {
		offDiag[cell[0]] += len(idxs)
	}
	byClass := set.ByObserved()
	for class, n := range offDiag {
		idxs := append([]int(nil), byClass[class]...)
		sort.Slice(idxs, func(a, b int) bool {
			sa := scores.Confidences[idxs[a]][class]
			sb := scores.Confidences[idxs[b]][class]
			if sa != sb {
				return sa < sb
			}
			return idxs[a] < idxs[b]
		})
		if n > len(idxs) {
			n = len(idxs)
		}
		for _, i := range idxs[:n] {
			res.MarkNoisy(set[i].ID)
		}
	}
}

func (c ConfidentLearning) pruneByNoiseRate(set dataset.Set, scores *detect.Scores, cells map[[2]int][]int, res *detect.Result) {
	// Per off-diagonal cell (i, j): prune |cell| samples of observed class i
	// with the largest margin p_j − p_i. The confident-joint construction
	// already associates indices with cells, so prune exactly those whose
	// margin ranks highest within the class.
	for cell, idxs := range cells {
		i, j := cell[0], cell[1]
		ranked := append([]int(nil), idxs...)
		sort.Slice(ranked, func(a, b int) bool {
			ma := scores.Confidences[ranked[a]][j] - scores.Confidences[ranked[a]][i]
			mb := scores.Confidences[ranked[b]][j] - scores.Confidences[ranked[b]][i]
			if ma != mb {
				return ma > mb
			}
			return ranked[a] < ranked[b]
		})
		for _, idx := range ranked {
			res.MarkNoisy(set[idx].ID)
		}
	}
}
