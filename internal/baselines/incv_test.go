package baselines

import (
	"testing"

	"enld/internal/dataset"
)

func TestINCVDetects(t *testing.T) {
	f := newFixture(t, 0.2, 60)
	v := INCV{
		InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: INCVConfig{Iterations: 2, Epochs: 8, BatchSize: 32, LR: 0.01, Momentum: 0.9, Seed: 61},
	}
	det := evaluate(t, v, f.incr)
	if det.F1 < 0.6 {
		t.Fatalf("INCV F1 = %v", det.F1)
	}
}

func TestINCVErrors(t *testing.T) {
	f := newFixture(t, 0.1, 62)
	if _, err := (INCV{}).Detect(f.incr); err == nil {
		t.Error("zero-value config accepted")
	}
	if _, err := (INCV{InputDim: 10, Classes: f.classes}).Detect(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestINCVMissingLabelsStayNoisy(t *testing.T) {
	f := newFixture(t, 0.1, 63)
	set := f.incr.Clone()
	set[0].Observed = dataset.Missing
	v := INCV{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: INCVConfig{Iterations: 1, Epochs: 3, BatchSize: 32, LR: 0.01, Momentum: 0.9, Seed: 64}}
	res, err := v.Detect(set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy[set[0].ID] {
		t.Fatal("missing label selected as clean")
	}
}

func TestINCVDeterministic(t *testing.T) {
	f := newFixture(t, 0.2, 65)
	v := INCV{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: INCVConfig{Iterations: 1, Epochs: 4, BatchSize: 32, LR: 0.01, Momentum: 0.9, Seed: 66}}
	a, err := v.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Noisy) != len(b.Noisy) {
		t.Fatalf("non-deterministic: %d vs %d", len(a.Noisy), len(b.Noisy))
	}
	for id := range a.Noisy {
		if !b.Noisy[id] {
			t.Fatal("noisy sets differ across runs")
		}
	}
}

func TestINCVTinyDataset(t *testing.T) {
	f := newFixture(t, 0.2, 67)
	v := INCV{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: INCVConfig{Iterations: 2, Epochs: 2, BatchSize: 8, LR: 0.01, Momentum: 0.9, Seed: 68}}
	// One labelled sample: the candidate pool collapses; must not panic.
	res, err := v.Detect(f.incr[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Noisy)+len(res.Clean) != 1 {
		t.Fatal("single sample not classified")
	}
}
