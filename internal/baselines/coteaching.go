package baselines

import (
	"errors"
	"fmt"
	"sort"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
)

// CoTeachingConfig controls the Co-teaching baseline.
type CoTeachingConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// ForgetRate is the final fraction of each batch treated as noisy and
	// excluded from the peer's update. Zero means estimate it from the
	// disagreement rate of a warm model on D (the usual practice when the
	// true noise rate is unknown), capped at MaxForgetRate.
	ForgetRate float64
	// WarmupEpochs trains both networks on everything before selection
	// starts, and ramps the forget rate linearly afterwards.
	WarmupEpochs int
	Seed         uint64
}

// MaxForgetRate caps the estimated forget rate.
const MaxForgetRate = 0.45

// DefaultCoTeachingConfig mirrors the sizing of the other per-request
// training baselines.
func DefaultCoTeachingConfig(seed uint64) CoTeachingConfig {
	return CoTeachingConfig{
		Epochs: 16, BatchSize: 32, LR: 0.01, Momentum: 0.9,
		WarmupEpochs: 3, Seed: seed,
	}
}

// CoTeaching adapts the Co-teaching method [Han et al., NeurIPS 2018] into a
// detector: two networks train simultaneously on the label-related inventory
// plus the incremental dataset; in every batch each network selects its
// small-loss samples — the likely-clean ones — for the *peer's* parameter
// update, which keeps the networks from confirming their own mistakes. After
// training, the incremental samples whose final losses under both networks
// fall in the top forget-rate fraction are flagged noisy.
//
// Along with LossTrack and INCV, this covers the §II sample-selection family
// the paper reviews but does not evaluate.
type CoTeaching struct {
	Arch      nn.Arch
	InputDim  int
	Classes   int
	Inventory dataset.Set
	Config    CoTeachingConfig
}

// Name implements detect.Detector.
func (CoTeaching) Name() string { return "coteaching" }

// Detect implements detect.Detector.
func (c CoTeaching) Detect(set dataset.Set) (*detect.Result, error) {
	if c.InputDim < 1 || c.Classes < 2 {
		return nil, fmt.Errorf("baselines: CoTeaching dims input=%d classes=%d", c.InputDim, c.Classes)
	}
	if len(set) == 0 {
		return nil, errors.New("baselines: empty incremental dataset")
	}
	arch := c.Arch
	if arch == "" {
		arch = nn.SimResNet110
	}
	cfg := c.Config
	if cfg.Epochs <= 0 {
		cfg = DefaultCoTeachingConfig(cfg.Seed)
	}
	if cfg.BatchSize <= 1 {
		cfg.BatchSize = 32
	}
	sw := cost.StartStopwatch()
	res := detect.NewResult()
	rng := mat.NewRNG(cfg.Seed)

	related := detect.RestrictToLabels(c.Inventory, set.Labels())
	corpus := make(dataset.Set, 0, len(related)+len(set))
	corpus = append(corpus, related...)
	corpus = append(corpus, set...)
	type example struct {
		x      []float64
		target []float64
	}
	examples := make([]example, 0, len(corpus))
	for _, smp := range corpus {
		if smp.Observed == dataset.Missing {
			continue
		}
		examples = append(examples, example{x: smp.X, target: nn.OneHot(smp.Observed, c.Classes)})
	}
	if len(examples) == 0 {
		return nil, errors.New("baselines: CoTeaching has no labelled samples to train on")
	}

	netA, err := nn.Build(arch, c.InputDim, c.Classes, rng.Split())
	if err != nil {
		return nil, err
	}
	netB, err := nn.Build(arch, c.InputDim, c.Classes, rng.Split())
	if err != nil {
		return nil, err
	}
	optA := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	optB := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	gradsA := netA.NewGrads()
	gradsB := netB.NewGrads()

	// Per-batch buffers for the batched loss and gradient passes, reused
	// across every batch of every epoch.
	var scratchA, scratchB nn.BatchScratch
	maxBatch := cfg.BatchSize
	if maxBatch > len(examples) {
		maxBatch = len(examples)
	}
	batchXs := make([][]float64, maxBatch)
	batchTs := make([][]float64, maxBatch)
	lossesA := make([]float64, maxBatch)
	lossesB := make([]float64, maxBatch)
	selXs := make([][]float64, maxBatch)
	selTs := make([][]float64, maxBatch)

	forgetRate := cfg.ForgetRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Forget-rate schedule: 0 during warm-up, then linear ramp to the
		// target over the next WarmupEpochs epochs.
		target := forgetRate
		if target <= 0 && epoch >= cfg.WarmupEpochs {
			// Estimate once, right after warm-up, from netA's disagreement
			// on the incremental dataset.
			forgetRate = c.estimateForgetRate(netA, set, res)
			target = forgetRate
		}
		rate := 0.0
		if epoch >= cfg.WarmupEpochs && cfg.WarmupEpochs > 0 {
			ramp := float64(epoch-cfg.WarmupEpochs+1) / float64(cfg.WarmupEpochs)
			if ramp > 1 {
				ramp = 1
			}
			rate = target * ramp
		} else if cfg.WarmupEpochs == 0 {
			rate = target
		}

		order := rng.Perm(len(examples))
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			keep := len(batch) - int(rate*float64(len(batch)))
			if keep < 1 {
				keep = 1
			}
			xs := batchXs[:len(batch)]
			ts := batchTs[:len(batch)]
			for n, idx := range batch {
				xs[n], ts[n] = examples[idx].x, examples[idx].target
			}
			// One batched forward per network scores the whole batch.
			netA.LossBatch(&scratchA, xs, ts, lossesA[:len(batch)])
			netB.LossBatch(&scratchB, xs, ts, lossesB[:len(batch)])
			res.Meter.ForwardPasses += 2 * int64(len(batch))
			selA := smallestK(lossesA[:len(batch)], keep) // A's picks train B
			selB := smallestK(lossesB[:len(batch)], keep) // B's picks train A
			// Batched backward over each peer's picks, in selection order —
			// bit-identical to the per-sample Backward sequence it replaces.
			gradsA.Zero()
			for m, n := range selB {
				idx := batch[n]
				selXs[m], selTs[m] = examples[idx].x, examples[idx].target
			}
			netA.BackwardBatch(&scratchA, gradsA, selXs[:len(selB)], selTs[:len(selB)])
			res.Meter.TrainSampleVisits += int64(len(selB))
			optA.Step(netA, gradsA, len(selB))
			gradsB.Zero()
			for m, n := range selA {
				idx := batch[n]
				selXs[m], selTs[m] = examples[idx].x, examples[idx].target
			}
			netB.BackwardBatch(&scratchB, gradsB, selXs[:len(selA)], selTs[:len(selA)])
			res.Meter.TrainSampleVisits += int64(len(selA))
			optB.Step(netB, gradsB, len(selA))
			res.Meter.ParamUpdates += 2
		}
	}

	// Detection: rank incremental samples by combined final loss; the top
	// forget-rate fraction is flagged noisy. Missing labels are flagged
	// directly.
	type ranked struct {
		id   int
		loss float64
	}
	var rankedSamples []ranked
	finalXs := make([][]float64, 0, len(set))
	finalTs := make([][]float64, 0, len(set))
	finalIDs := make([]int, 0, len(set))
	for _, smp := range set {
		if smp.Observed == dataset.Missing {
			res.MarkNoisy(smp.ID)
			continue
		}
		finalXs = append(finalXs, smp.X)
		finalTs = append(finalTs, nn.OneHot(smp.Observed, c.Classes))
		finalIDs = append(finalIDs, smp.ID)
	}
	finalA := netA.LossesBatch(finalXs, finalTs, 1)
	finalB := netB.LossesBatch(finalXs, finalTs, 1)
	res.Meter.ForwardPasses += 2 * int64(len(finalXs))
	for i, id := range finalIDs {
		rankedSamples = append(rankedSamples, ranked{id: id, loss: finalA[i] + finalB[i]})
	}
	sort.Slice(rankedSamples, func(i, j int) bool {
		if rankedSamples[i].loss != rankedSamples[j].loss {
			return rankedSamples[i].loss > rankedSamples[j].loss
		}
		return rankedSamples[i].id < rankedSamples[j].id
	})
	flag := int(forgetRate * float64(len(rankedSamples)))
	for n, r := range rankedSamples {
		if n < flag {
			res.MarkNoisy(r.id)
		} else {
			res.MarkClean(r.id)
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}

// estimateForgetRate uses the warm model's disagreement rate on the
// incremental dataset as a noise-rate proxy, capped at MaxForgetRate.
func (c CoTeaching) estimateForgetRate(model *nn.Network, set dataset.Set, res *detect.Result) float64 {
	labels := make([]int, 0, len(set))
	xs := make([][]float64, 0, len(set))
	for _, smp := range set {
		if smp.Observed == dataset.Missing {
			continue
		}
		labels = append(labels, smp.Observed)
		xs = append(xs, smp.X)
	}
	if len(xs) == 0 {
		return MaxForgetRate
	}
	disagree := 0
	for i, pred := range model.PredictBatch(xs, 1) {
		res.Meter.ForwardPasses++
		if pred != labels[i] {
			disagree++
		}
	}
	rate := float64(disagree) / float64(len(xs))
	if rate > MaxForgetRate {
		rate = MaxForgetRate
	}
	if rate < 0.05 {
		rate = 0.05
	}
	return rate
}

// smallestK returns the indices of the k smallest values, ties broken by
// index for determinism.
func smallestK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] < values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
