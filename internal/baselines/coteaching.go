package baselines

import (
	"errors"
	"fmt"
	"sort"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
)

// CoTeachingConfig controls the Co-teaching baseline.
type CoTeachingConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// ForgetRate is the final fraction of each batch treated as noisy and
	// excluded from the peer's update. Zero means estimate it from the
	// disagreement rate of a warm model on D (the usual practice when the
	// true noise rate is unknown), capped at MaxForgetRate.
	ForgetRate float64
	// WarmupEpochs trains both networks on everything before selection
	// starts, and ramps the forget rate linearly afterwards.
	WarmupEpochs int
	Seed         uint64
}

// MaxForgetRate caps the estimated forget rate.
const MaxForgetRate = 0.45

// DefaultCoTeachingConfig mirrors the sizing of the other per-request
// training baselines.
func DefaultCoTeachingConfig(seed uint64) CoTeachingConfig {
	return CoTeachingConfig{
		Epochs: 16, BatchSize: 32, LR: 0.01, Momentum: 0.9,
		WarmupEpochs: 3, Seed: seed,
	}
}

// CoTeaching adapts the Co-teaching method [Han et al., NeurIPS 2018] into a
// detector: two networks train simultaneously on the label-related inventory
// plus the incremental dataset; in every batch each network selects its
// small-loss samples — the likely-clean ones — for the *peer's* parameter
// update, which keeps the networks from confirming their own mistakes. After
// training, the incremental samples whose final losses under both networks
// fall in the top forget-rate fraction are flagged noisy.
//
// Along with LossTrack and INCV, this covers the §II sample-selection family
// the paper reviews but does not evaluate.
type CoTeaching struct {
	Arch      nn.Arch
	InputDim  int
	Classes   int
	Inventory dataset.Set
	Config    CoTeachingConfig
}

// Name implements detect.Detector.
func (CoTeaching) Name() string { return "coteaching" }

// Detect implements detect.Detector.
func (c CoTeaching) Detect(set dataset.Set) (*detect.Result, error) {
	if c.InputDim < 1 || c.Classes < 2 {
		return nil, fmt.Errorf("baselines: CoTeaching dims input=%d classes=%d", c.InputDim, c.Classes)
	}
	if len(set) == 0 {
		return nil, errors.New("baselines: empty incremental dataset")
	}
	arch := c.Arch
	if arch == "" {
		arch = nn.SimResNet110
	}
	cfg := c.Config
	if cfg.Epochs <= 0 {
		cfg = DefaultCoTeachingConfig(cfg.Seed)
	}
	if cfg.BatchSize <= 1 {
		cfg.BatchSize = 32
	}
	sw := cost.StartStopwatch()
	res := detect.NewResult()
	rng := mat.NewRNG(cfg.Seed)

	related := detect.RestrictToLabels(c.Inventory, set.Labels())
	corpus := make(dataset.Set, 0, len(related)+len(set))
	corpus = append(corpus, related...)
	corpus = append(corpus, set...)
	type example struct {
		x      []float64
		target []float64
	}
	examples := make([]example, 0, len(corpus))
	for _, smp := range corpus {
		if smp.Observed == dataset.Missing {
			continue
		}
		examples = append(examples, example{x: smp.X, target: nn.OneHot(smp.Observed, c.Classes)})
	}
	if len(examples) == 0 {
		return nil, errors.New("baselines: CoTeaching has no labelled samples to train on")
	}

	netA, err := nn.Build(arch, c.InputDim, c.Classes, rng.Split())
	if err != nil {
		return nil, err
	}
	netB, err := nn.Build(arch, c.InputDim, c.Classes, rng.Split())
	if err != nil {
		return nil, err
	}
	optA := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	optB := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	gradsA := netA.NewGrads()
	gradsB := netB.NewGrads()

	forgetRate := cfg.ForgetRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Forget-rate schedule: 0 during warm-up, then linear ramp to the
		// target over the next WarmupEpochs epochs.
		target := forgetRate
		if target <= 0 && epoch >= cfg.WarmupEpochs {
			// Estimate once, right after warm-up, from netA's disagreement
			// on the incremental dataset.
			forgetRate = c.estimateForgetRate(netA, set, res)
			target = forgetRate
		}
		rate := 0.0
		if epoch >= cfg.WarmupEpochs && cfg.WarmupEpochs > 0 {
			ramp := float64(epoch-cfg.WarmupEpochs+1) / float64(cfg.WarmupEpochs)
			if ramp > 1 {
				ramp = 1
			}
			rate = target * ramp
		} else if cfg.WarmupEpochs == 0 {
			rate = target
		}

		order := rng.Perm(len(examples))
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			keep := len(batch) - int(rate*float64(len(batch)))
			if keep < 1 {
				keep = 1
			}
			lossesA := make([]float64, len(batch))
			lossesB := make([]float64, len(batch))
			for n, idx := range batch {
				lossesA[n] = netA.Loss(examples[idx].x, examples[idx].target)
				lossesB[n] = netB.Loss(examples[idx].x, examples[idx].target)
				res.Meter.ForwardPasses += 2
			}
			selA := smallestK(lossesA, keep) // A's picks train B
			selB := smallestK(lossesB, keep) // B's picks train A
			gradsA.Zero()
			for _, n := range selB {
				idx := batch[n]
				netA.Backward(gradsA, examples[idx].x, examples[idx].target)
				res.Meter.TrainSampleVisits++
			}
			optA.Step(netA, gradsA, len(selB))
			gradsB.Zero()
			for _, n := range selA {
				idx := batch[n]
				netB.Backward(gradsB, examples[idx].x, examples[idx].target)
				res.Meter.TrainSampleVisits++
			}
			optB.Step(netB, gradsB, len(selA))
			res.Meter.ParamUpdates += 2
		}
	}

	// Detection: rank incremental samples by combined final loss; the top
	// forget-rate fraction is flagged noisy. Missing labels are flagged
	// directly.
	type ranked struct {
		id   int
		loss float64
	}
	var rankedSamples []ranked
	for _, smp := range set {
		if smp.Observed == dataset.Missing {
			res.MarkNoisy(smp.ID)
			continue
		}
		target := nn.OneHot(smp.Observed, c.Classes)
		loss := netA.Loss(smp.X, target) + netB.Loss(smp.X, target)
		res.Meter.ForwardPasses += 2
		rankedSamples = append(rankedSamples, ranked{id: smp.ID, loss: loss})
	}
	sort.Slice(rankedSamples, func(i, j int) bool {
		if rankedSamples[i].loss != rankedSamples[j].loss {
			return rankedSamples[i].loss > rankedSamples[j].loss
		}
		return rankedSamples[i].id < rankedSamples[j].id
	})
	flag := int(forgetRate * float64(len(rankedSamples)))
	for n, r := range rankedSamples {
		if n < flag {
			res.MarkNoisy(r.id)
		} else {
			res.MarkClean(r.id)
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}

// estimateForgetRate uses the warm model's disagreement rate on the
// incremental dataset as a noise-rate proxy, capped at MaxForgetRate.
func (c CoTeaching) estimateForgetRate(model *nn.Network, set dataset.Set, res *detect.Result) float64 {
	disagree, total := 0, 0
	for _, smp := range set {
		if smp.Observed == dataset.Missing {
			continue
		}
		total++
		res.Meter.ForwardPasses++
		if model.Predict(smp.X) != smp.Observed {
			disagree++
		}
	}
	if total == 0 {
		return MaxForgetRate
	}
	rate := float64(disagree) / float64(total)
	if rate > MaxForgetRate {
		rate = MaxForgetRate
	}
	if rate < 0.05 {
		rate = 0.05
	}
	return rate
}

// smallestK returns the indices of the k smallest values, ties broken by
// index for determinism.
func smallestK(values []float64, k int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] < values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
