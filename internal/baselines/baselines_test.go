package baselines

import (
	"testing"

	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/metrics"
	"enld/internal/nn"
	"enld/internal/noise"
)

// fixture bundles a trained general model with noisy inventory/incremental
// splits of a small, well-separated synthetic task.
type fixture struct {
	model     *nn.Network
	inventory dataset.Set
	incr      dataset.Set
	classes   int
}

func newFixture(t *testing.T, eta float64, seed uint64) *fixture {
	t.Helper()
	sp := dataset.Spec{
		Name: "fix", Classes: 6, FeatureDim: 10, PerClass: 60,
		Separation: 4, Spread: 1, Seed: seed,
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tm, err := noise.Pair(sp.Classes, eta)
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(seed + 1)
	if _, err := noise.Apply(full, tm, rng); err != nil {
		t.Fatal(err)
	}
	inv, incr, err := dataset.SplitRatio(full, 2.0/3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := nn.Build(nn.SimResNet110, sp.FeatureDim, sp.Classes, mat.NewRNG(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	trainer := nn.NewTrainer(model, nn.NewSGD(0.01, 0.9, 1e-4))
	if _, err := trainer.Run(dataset.ToExamples(inv, sp.Classes), nn.TrainConfig{
		Epochs: 12, BatchSize: 32, Mixup: true, Seed: seed + 3,
	}); err != nil {
		t.Fatal(err)
	}
	return &fixture{model: model, inventory: inv, incr: incr, classes: sp.Classes}
}

func evaluate(t *testing.T, d detect.Detector, set dataset.Set) metrics.Detection {
	t.Helper()
	res, err := d.Detect(set)
	if err != nil {
		t.Fatalf("%s: %v", d.Name(), err)
	}
	// Every sample must be classified exactly once.
	for _, smp := range set {
		n, c := res.Noisy[smp.ID], res.Clean[smp.ID]
		if n == c {
			t.Fatalf("%s: sample %d noisy=%v clean=%v", d.Name(), smp.ID, n, c)
		}
	}
	return metrics.EvaluateDetection(set, res.Noisy)
}

func TestDefaultDetector(t *testing.T) {
	f := newFixture(t, 0.2, 1)
	det := evaluate(t, Default{Model: f.model}, f.incr)
	// On a well-separated task the general model's disagreement should find
	// most noise with decent precision.
	if det.F1 < 0.6 {
		t.Fatalf("Default F1 = %v", det.F1)
	}
}

func TestDefaultFlagsMissingAsNoisy(t *testing.T) {
	f := newFixture(t, 0.1, 2)
	set := f.incr.Clone()
	set[0].Observed = dataset.Missing
	res, err := Default{Model: f.model}.Detect(set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy[set[0].ID] {
		t.Fatal("missing label not flagged")
	}
}

func TestConfidentLearningVariants(t *testing.T) {
	f := newFixture(t, 0.2, 3)
	for _, v := range []CLVariant{PruneByClass, PruneByNoiseRate} {
		det := evaluate(t, ConfidentLearning{Model: f.model, Variant: v}, f.incr)
		if det.F1 < 0.5 {
			t.Fatalf("variant %d F1 = %v", v, det.F1)
		}
	}
}

func TestConfidentLearningNames(t *testing.T) {
	if (ConfidentLearning{Variant: PruneByClass}).Name() != "cl-1" {
		t.Error("cl-1 name")
	}
	if (ConfidentLearning{Variant: PruneByNoiseRate}).Name() != "cl-2" {
		t.Error("cl-2 name")
	}
}

func TestConfidentLearningPrunesLessAggressivelyThanDefault(t *testing.T) {
	// CL requires confident evidence before flagging, so on clean data it
	// should flag (almost) nothing even when Default flags borderline cases.
	f := newFixture(t, 0.0, 4)
	clRes, err := ConfidentLearning{Model: f.model, Variant: PruneByClass}.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(clRes.Noisy)) / float64(len(f.incr)); frac > 0.15 {
		t.Fatalf("CL flagged %v of a clean dataset", frac)
	}
}

func TestTopoFilterDetects(t *testing.T) {
	f := newFixture(t, 0.2, 5)
	tf := TopoFilter{
		InputDim:  10,
		Classes:   f.classes,
		Inventory: f.inventory,
		Config:    TopoFilterConfig{Epochs: 12, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 5, Seed: 6},
	}
	det := evaluate(t, tf, f.incr)
	if det.F1 < 0.6 {
		t.Fatalf("TopoFilter F1 = %v", det.F1)
	}
	if det.Recall < 0.6 {
		t.Fatalf("TopoFilter recall = %v", det.Recall)
	}
}

func TestTopoFilterChargesTrainingCost(t *testing.T) {
	f := newFixture(t, 0.2, 7)
	tf := TopoFilter{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: TopoFilterConfig{Epochs: 3, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 5, Seed: 8}}
	res, err := tf.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	related := detect.RestrictToLabels(f.inventory, f.incr.Labels())
	want := int64(3 * (len(related) + len(f.incr)))
	if res.Meter.TrainSampleVisits != want {
		t.Fatalf("train visits = %d, want %d", res.Meter.TrainSampleVisits, want)
	}
}

func TestTopoFilterErrors(t *testing.T) {
	f := newFixture(t, 0.1, 9)
	if _, err := (TopoFilter{}).Detect(f.incr); err == nil {
		t.Error("zero-value config accepted")
	}
	if _, err := (TopoFilter{InputDim: 10, Classes: f.classes}).Detect(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTopoFilterMissingLabelsStayNoisy(t *testing.T) {
	f := newFixture(t, 0.1, 10)
	set := f.incr.Clone()
	set[0].Observed = dataset.Missing
	set[1].Observed = dataset.Missing
	tf := TopoFilter{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: TopoFilterConfig{Epochs: 2, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 5, Seed: 11}}
	res, err := tf.Detect(set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy[set[0].ID] || !res.Noisy[set[1].ID] {
		t.Fatal("missing labels not flagged noisy")
	}
}

func TestTopoFilterBeatsDefaultOnHardTask(t *testing.T) {
	// On a task with confusable groups, training-based detection must beat
	// the general model's raw disagreement — the central qualitative claim
	// of Figs. 5 and 7.
	sp := dataset.Spec{
		Name: "hard", Classes: 10, FeatureDim: 12, PerClass: 60,
		Separation: 4, Spread: 1, GroupSize: 5, WithinGroup: 0.3, Seed: 20,
	}
	full, err := sp.Generate()
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := noise.Pair(sp.Classes, 0.3)
	rng := mat.NewRNG(21)
	if _, err := noise.Apply(full, tm, rng); err != nil {
		t.Fatal(err)
	}
	inv, incr, err := dataset.SplitRatio(full, 2.0/3.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	model, err := nn.Build(nn.SimResNet110, sp.FeatureDim, sp.Classes, mat.NewRNG(22))
	if err != nil {
		t.Fatal(err)
	}
	trainer := nn.NewTrainer(model, nn.NewSGD(0.01, 0.9, 1e-4))
	if _, err := trainer.Run(dataset.ToExamples(inv, sp.Classes), nn.TrainConfig{
		Epochs: 10, BatchSize: 32, Mixup: true, Seed: 23,
	}); err != nil {
		t.Fatal(err)
	}
	defF1 := evaluate(t, Default{Model: model}, incr).F1
	tfF1 := evaluate(t, TopoFilter{InputDim: sp.FeatureDim, Classes: sp.Classes, Inventory: inv,
		Config: TopoFilterConfig{Epochs: 15, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 5, Seed: 24}}, incr).F1
	if tfF1 <= defF1-0.05 {
		t.Fatalf("TopoFilter F1 %v not competitive with Default %v on hard task", tfF1, defF1)
	}
}
