package baselines

import (
	"math"
	"testing"

	"enld/internal/dataset"
)

func TestLossTrackDetects(t *testing.T) {
	f := newFixture(t, 0.2, 30)
	lt := LossTrack{
		InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: LossTrackConfig{Rounds: 2, Epochs: 6, BatchSize: 32,
			MaxLR: 0.02, MinLR: 0.002, Momentum: 0.9, Seed: 31},
	}
	det := evaluate(t, lt, f.incr)
	if det.F1 < 0.6 {
		t.Fatalf("LossTrack F1 = %v", det.F1)
	}
}

func TestLossTrackErrors(t *testing.T) {
	f := newFixture(t, 0.1, 32)
	if _, err := (LossTrack{}).Detect(f.incr); err == nil {
		t.Error("zero-value config accepted")
	}
	if _, err := (LossTrack{InputDim: 10, Classes: f.classes}).Detect(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestLossTrackMissingLabelsFlagged(t *testing.T) {
	f := newFixture(t, 0.1, 33)
	set := f.incr.Clone()
	set[0].Observed = dataset.Missing
	lt := LossTrack{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: LossTrackConfig{Rounds: 2, Epochs: 3, BatchSize: 32,
			MaxLR: 0.02, MinLR: 0.002, Momentum: 0.9, Seed: 34}}
	res, err := lt.Detect(set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy[set[0].ID] {
		t.Fatal("missing label not flagged")
	}
}

func TestTwoMeansThreshold(t *testing.T) {
	// Clear bimodal data: threshold must separate the clusters.
	values := []float64{0.1, 0.2, 0.15, 0.12, 5.0, 5.2, 4.9}
	th := twoMeansThreshold(values)
	if th < 0.2 || th > 4.9 {
		t.Fatalf("threshold %v does not separate clusters", th)
	}
	// Degenerate inputs flag nothing.
	if th := twoMeansThreshold([]float64{1}); !math.IsInf(th, 1) {
		t.Fatalf("single value threshold %v", th)
	}
	if th := twoMeansThreshold([]float64{2, 2, 2}); !math.IsInf(th, 1) {
		t.Fatalf("constant values threshold %v", th)
	}
	if th := twoMeansThreshold(nil); !math.IsInf(th, 1) {
		t.Fatalf("empty threshold %v", th)
	}
}

func TestLossTrackChargesCost(t *testing.T) {
	f := newFixture(t, 0.2, 35)
	lt := LossTrack{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: LossTrackConfig{Rounds: 2, Epochs: 2, BatchSize: 32,
			MaxLR: 0.02, MinLR: 0.002, Momentum: 0.9, Seed: 36}}
	res, err := lt.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meter.TrainSampleVisits == 0 || res.Meter.ForwardPasses == 0 {
		t.Fatalf("meter incomplete: %+v", res.Meter)
	}
	if res.Process <= 0 {
		t.Fatal("process time missing")
	}
}
