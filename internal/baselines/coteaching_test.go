package baselines

import (
	"testing"

	"enld/internal/dataset"
)

func TestCoTeachingDetects(t *testing.T) {
	f := newFixture(t, 0.2, 70)
	ct := CoTeaching{
		InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: CoTeachingConfig{Epochs: 10, BatchSize: 32, LR: 0.01, Momentum: 0.9,
			WarmupEpochs: 2, Seed: 71},
	}
	det := evaluate(t, ct, f.incr)
	if det.F1 < 0.55 {
		t.Fatalf("CoTeaching F1 = %v", det.F1)
	}
}

func TestCoTeachingFixedForgetRate(t *testing.T) {
	f := newFixture(t, 0.3, 72)
	ct := CoTeaching{
		InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: CoTeachingConfig{Epochs: 8, BatchSize: 32, LR: 0.01, Momentum: 0.9,
			ForgetRate: 0.3, WarmupEpochs: 2, Seed: 73},
	}
	res, err := ct.Detect(f.incr)
	if err != nil {
		t.Fatal(err)
	}
	// With a fixed forget rate the flagged fraction matches it exactly.
	want := int(0.3 * float64(len(f.incr)))
	if len(res.Noisy) != want {
		t.Fatalf("flagged %d, want %d", len(res.Noisy), want)
	}
}

func TestCoTeachingErrors(t *testing.T) {
	f := newFixture(t, 0.1, 74)
	if _, err := (CoTeaching{}).Detect(f.incr); err == nil {
		t.Error("zero-value config accepted")
	}
	if _, err := (CoTeaching{InputDim: 10, Classes: f.classes}).Detect(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestCoTeachingMissingLabelsFlagged(t *testing.T) {
	f := newFixture(t, 0.1, 75)
	set := f.incr.Clone()
	set[0].Observed = dataset.Missing
	ct := CoTeaching{InputDim: 10, Classes: f.classes, Inventory: f.inventory,
		Config: CoTeachingConfig{Epochs: 3, BatchSize: 32, LR: 0.01, Momentum: 0.9,
			ForgetRate: 0.2, WarmupEpochs: 1, Seed: 76}}
	res, err := ct.Detect(set)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Noisy[set[0].ID] {
		t.Fatal("missing label not flagged")
	}
}

func TestSmallestK(t *testing.T) {
	got := smallestK([]float64{3, 1, 2, 1}, 2)
	// Two smallest are the 1s at indices 1 and 3 (tie broken by index).
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("smallestK = %v", got)
	}
	if got := smallestK([]float64{5}, 10); len(got) != 1 {
		t.Fatalf("over-ask = %v", got)
	}
	if got := smallestK(nil, 3); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
}
