// Package baselines implements the comparison methods of §V-A4: Default
// (disagreement with the general model), Confident Learning (two pruning
// variants, CL-1 and CL-2) and TopoFilter (feature-space k-NN components).
//
// All baselines share the general model θ trained during platform setup, so
// their per-request "process time" reflects only the work the method itself
// performs on the incremental dataset — the same accounting the paper uses.
package baselines

import (
	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/nn"
)

// Default flags a sample as noisy when the general model's predicted label
// disagrees with the observed label: argmax M(x, θ) ≠ ỹ. Missing labels are
// flagged as noisy. This is the cheapest possible method and the paper's
// floor baseline.
type Default struct {
	Model *nn.Network
}

// Name implements detect.Detector.
func (Default) Name() string { return "default" }

// Detect implements detect.Detector.
func (d Default) Detect(set dataset.Set) (*detect.Result, error) {
	sw := cost.StartStopwatch()
	res := detect.NewResult()
	// Clone before scoring: the network's scratch buffers are not safe for
	// concurrent use, and the lake service runs detectors from a worker
	// pool against one shared general model.
	scores := detect.Score(d.Model.Clone(), set, &res.Meter)
	for i, smp := range set {
		if smp.Observed == dataset.Missing || scores.Predicted[i] != smp.Observed {
			res.MarkNoisy(smp.ID)
		} else {
			res.MarkClean(smp.ID)
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}
