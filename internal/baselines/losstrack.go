package baselines

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
)

// LossTrackConfig controls the loss-tracking baseline.
type LossTrackConfig struct {
	// Rounds is the number of cyclical learning-rate rounds; Epochs the
	// epochs per round. Loss statistics are recorded at the end of every
	// epoch after the first round (the first round is warm-up and its
	// losses are dominated by initialization).
	Rounds    int
	Epochs    int
	BatchSize int
	// MaxLR and MinLR bound the cyclical schedule: each round starts at
	// MaxLR and decays linearly to MinLR, the repeated re-heating that lets
	// noisy samples' losses oscillate while clean samples stay low.
	MaxLR    float64
	MinLR    float64
	Momentum float64
	Seed     uint64
}

// DefaultLossTrackConfig returns a cyclical schedule sized like the other
// training-based baselines in this repository.
func DefaultLossTrackConfig(seed uint64) LossTrackConfig {
	return LossTrackConfig{
		Rounds: 3, Epochs: 8, BatchSize: 32,
		MaxLR: 0.02, MinLR: 0.002, Momentum: 0.9, Seed: seed,
	}
}

// LossTrack is a loss-tracking noisy-label detector in the style of O2U-Net
// [Huang et al., ICCV 2019] and the small-loss criterion family (INCV,
// Co-teaching): it trains a model from scratch on the label-related
// inventory plus the incremental dataset under a cyclical learning rate,
// records each incremental sample's loss at every epoch, and flags the
// samples whose normalized average loss falls in the high cluster of a
// two-means split. Deep networks fit clean samples before noisy ones, so
// persistently high loss across cycles marks label noise.
//
// This detector is an extension beyond the paper's comparison set (the
// paper cites loss-tracking methods as related work but evaluates only
// Default, Confident Learning and TopoFilter); it is included so the
// repository covers the third family of detection methods discussed in §II.
type LossTrack struct {
	Arch      nn.Arch
	InputDim  int
	Classes   int
	Inventory dataset.Set
	Config    LossTrackConfig
}

// Name implements detect.Detector.
func (LossTrack) Name() string { return "losstrack" }

// Detect implements detect.Detector.
func (l LossTrack) Detect(set dataset.Set) (*detect.Result, error) {
	if l.InputDim < 1 || l.Classes < 2 {
		return nil, fmt.Errorf("baselines: LossTrack dims input=%d classes=%d", l.InputDim, l.Classes)
	}
	if len(set) == 0 {
		return nil, errors.New("baselines: empty incremental dataset")
	}
	arch := l.Arch
	if arch == "" {
		arch = nn.SimResNet110
	}
	cfg := l.Config
	if cfg.Rounds <= 0 {
		cfg = DefaultLossTrackConfig(cfg.Seed)
	}
	sw := cost.StartStopwatch()
	res := detect.NewResult()

	related := detect.RestrictToLabels(l.Inventory, set.Labels())
	corpus := make(dataset.Set, 0, len(related)+len(set))
	corpus = append(corpus, related...)
	corpus = append(corpus, set...)
	examples := dataset.ToExamples(corpus, l.Classes)
	if len(examples) == 0 {
		return nil, errors.New("baselines: LossTrack has no labelled samples to train on")
	}

	model, err := nn.Build(arch, l.InputDim, l.Classes, mat.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	opt := nn.NewSGD(cfg.MaxLR, cfg.Momentum, 0)
	trainer := nn.NewTrainer(model, opt)

	// Track mean loss per incremental sample across recorded epochs.
	lossSum := make([]float64, len(set))
	records := 0
	targets := make([][]float64, len(set))
	tracked := make([]int, 0, len(set)) // indices with an observed label
	for i, smp := range set {
		if smp.Observed != dataset.Missing {
			targets[i] = nn.OneHot(smp.Observed, l.Classes)
			tracked = append(tracked, i)
		}
	}
	trackXs := make([][]float64, len(tracked))
	trackTs := make([][]float64, len(tracked))
	for n, i := range tracked {
		trackXs[n] = set[i].X
		trackTs[n] = targets[i]
	}
	trackLosses := make([]float64, len(tracked))
	var trackScratch nn.BatchScratch

	seed := cfg.Seed
	for round := 0; round < cfg.Rounds; round++ {
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			// Linear decay from MaxLR to MinLR within the round.
			frac := 0.0
			if cfg.Epochs > 1 {
				frac = float64(epoch) / float64(cfg.Epochs-1)
			}
			opt.LR = cfg.MaxLR + (cfg.MinLR-cfg.MaxLR)*frac
			seed++
			stats, err := trainer.Run(examples, nn.TrainConfig{
				Epochs: 1, BatchSize: cfg.BatchSize, Seed: seed,
			})
			if err != nil {
				return nil, fmt.Errorf("baselines: LossTrack training: %w", err)
			}
			for _, st := range stats {
				res.Meter.TrainSampleVisits += int64(st.SamplesSeen)
				res.Meter.ParamUpdates += int64(st.BatchUpdates)
			}
			if round == 0 {
				continue // warm-up round: losses still dominated by init
			}
			// Record this epoch's per-sample losses in one batched pass,
			// normalized to zero mean so that epochs with globally higher
			// loss (just after re-heating) do not dominate the average.
			if len(tracked) == 0 {
				continue
			}
			model.LossBatch(&trackScratch, trackXs, trackTs, trackLosses)
			res.Meter.ForwardPasses += int64(len(tracked))
			var epochMean float64
			for _, l := range trackLosses {
				epochMean += l
			}
			epochMean /= float64(len(tracked))
			for n, i := range tracked {
				lossSum[i] += trackLosses[n] - epochMean
			}
			records++
		}
	}

	// Partition by two-means clustering of the tracked averages: the high
	// cluster is flagged noisy. Missing labels are flagged directly.
	var values []float64
	for i, smp := range set {
		if smp.Observed == dataset.Missing {
			res.MarkNoisy(smp.ID)
			continue
		}
		avg := 0.0
		if records > 0 {
			avg = lossSum[i] / float64(records)
		}
		values = append(values, avg)
	}
	threshold := twoMeansThreshold(values)
	for i, smp := range set {
		if smp.Observed == dataset.Missing {
			continue
		}
		avg := 0.0
		if records > 0 {
			avg = lossSum[i] / float64(records)
		}
		if avg > threshold {
			res.MarkNoisy(smp.ID)
		} else {
			res.MarkClean(smp.ID)
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}

// twoMeansThreshold runs one-dimensional 2-means clustering (Lloyd's
// algorithm on sorted values) and returns the midpoint between the two
// final centroids. With a single distinct value it returns +Inf so nothing
// is flagged.
func twoMeansThreshold(values []float64) float64 {
	if len(values) < 2 {
		return math.Inf(1)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if lo == hi {
		return math.Inf(1)
	}
	c1, c2 := lo, hi
	for iter := 0; iter < 50; iter++ {
		mid := (c1 + c2) / 2
		var s1, s2 float64
		var n1, n2 int
		for _, v := range sorted {
			if v <= mid {
				s1 += v
				n1++
			} else {
				s2 += v
				n2++
			}
		}
		if n1 == 0 || n2 == 0 {
			break
		}
		nc1, nc2 := s1/float64(n1), s2/float64(n2)
		if nc1 == c1 && nc2 == c2 {
			break
		}
		c1, c2 = nc1, nc2
	}
	return (c1 + c2) / 2
}
