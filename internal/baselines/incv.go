package baselines

import (
	"errors"
	"fmt"
	"sort"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/mat"
	"enld/internal/nn"
)

// INCVConfig controls the cross-validation baseline.
type INCVConfig struct {
	// Iterations of the select-and-retrain loop. Each iteration trains two
	// fresh models on the current halves and keeps the cross-agreeing
	// samples.
	Iterations int
	Epochs     int
	BatchSize  int
	LR         float64
	Momentum   float64
	Seed       uint64
}

// DefaultINCVConfig sizes the loop like the paper's other training-based
// baselines.
func DefaultINCVConfig(seed uint64) INCVConfig {
	return INCVConfig{Iterations: 2, Epochs: 12, BatchSize: 32, LR: 0.01, Momentum: 0.9, Seed: seed}
}

// INCV is an iterative-noisy-cross-validation detector in the style of
// [Chen et al., ICML 2019]: the incremental dataset is split randomly in
// half; a model trained on one half (plus the label-related inventory)
// predicts the other, and samples whose observed label matches the
// cross-prediction are selected as clean. Iterating on the selected subset
// sharpens the split. Samples never selected by either direction are
// declared noisy.
//
// Like LossTrack, this extends the paper's comparison set with a §II
// related-work family that the paper discusses but does not evaluate.
type INCV struct {
	Arch      nn.Arch
	InputDim  int
	Classes   int
	Inventory dataset.Set
	Config    INCVConfig
}

// Name implements detect.Detector.
func (INCV) Name() string { return "incv" }

// Detect implements detect.Detector.
func (v INCV) Detect(set dataset.Set) (*detect.Result, error) {
	if v.InputDim < 1 || v.Classes < 2 {
		return nil, fmt.Errorf("baselines: INCV dims input=%d classes=%d", v.InputDim, v.Classes)
	}
	if len(set) == 0 {
		return nil, errors.New("baselines: empty incremental dataset")
	}
	arch := v.Arch
	if arch == "" {
		arch = nn.SimResNet110
	}
	cfg := v.Config
	if cfg.Iterations <= 0 {
		cfg = DefaultINCVConfig(cfg.Seed)
	}
	sw := cost.StartStopwatch()
	res := detect.NewResult()
	rng := mat.NewRNG(cfg.Seed)

	related := detect.RestrictToLabels(v.Inventory, set.Labels())

	// Everything starts noisy; cross-validation rescues clean samples.
	for _, smp := range set {
		res.MarkNoisy(smp.ID)
	}

	// candidate holds the indices of set still eligible for selection; in
	// later iterations, training uses only previously selected samples plus
	// the related inventory, which is the "iterative" part of INCV.
	candidate := make([]int, 0, len(set))
	for i, smp := range set {
		if smp.Observed != dataset.Missing {
			candidate = append(candidate, i)
		}
	}
	selected := map[int]bool{} // indices of set chosen as clean

	for iter := 0; iter < cfg.Iterations; iter++ {
		if len(candidate) < 2 {
			break
		}
		perm := rng.Perm(len(candidate))
		mid := len(candidate) / 2
		halves := [2][]int{}
		for n, pi := range perm {
			idx := candidate[pi]
			halves[boolToInt(n >= mid)] = append(halves[boolToInt(n >= mid)], idx)
		}
		newlySelected := map[int]bool{}
		for h := 0; h < 2; h++ {
			trainIdx, testIdx := halves[h], halves[1-h]
			model, err := v.trainHalf(arch, related, set, trainIdx, selected, cfg, rng.Uint64(), res)
			if err != nil {
				return nil, err
			}
			// Cross-predict the held-out half in one batched pass.
			testXs := make([][]float64, len(testIdx))
			for n, i := range testIdx {
				testXs[n] = set[i].X
			}
			for n, pred := range model.PredictBatch(testXs, 1) {
				res.Meter.ForwardPasses++
				if pred == set[testIdx[n]].Observed {
					newlySelected[testIdx[n]] = true
				}
			}
		}
		for i := range newlySelected {
			selected[i] = true
		}
		// Next iteration re-validates only the selected subset, tightening
		// the clean pool.
		candidate = candidate[:0]
		for i := range selected {
			candidate = append(candidate, i)
		}
		sort.Ints(candidate) // determinism: map iteration order is random
	}

	for i := range selected {
		res.MarkClean(set[i].ID)
	}
	res.Process = sw.Elapsed()
	return res, nil
}

// trainHalf trains a fresh model on the related inventory plus the given
// indices of set.
func (v INCV) trainHalf(arch nn.Arch, related, set dataset.Set, trainIdx []int,
	alreadySelected map[int]bool, cfg INCVConfig, seed uint64, res *detect.Result) (*nn.Network, error) {
	corpus := make(dataset.Set, 0, len(related)+len(trainIdx)+len(alreadySelected))
	corpus = append(corpus, related...)
	for _, i := range trainIdx {
		corpus = append(corpus, set[i])
	}
	examples := dataset.ToExamples(corpus, v.Classes)
	if len(examples) == 0 {
		return nil, errors.New("baselines: INCV has no labelled samples to train on")
	}
	model, err := nn.Build(arch, v.InputDim, v.Classes, mat.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	trainer := nn.NewTrainer(model, nn.NewSGD(cfg.LR, cfg.Momentum, 0))
	stats, err := trainer.Run(examples, nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: INCV training: %w", err)
	}
	for _, st := range stats {
		res.Meter.TrainSampleVisits += int64(st.SamplesSeen)
		res.Meter.ParamUpdates += int64(st.BatchUpdates)
	}
	return model, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
