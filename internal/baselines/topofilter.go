package baselines

import (
	"errors"
	"fmt"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/detect"
	"enld/internal/graph"
	"enld/internal/mat"
	"enld/internal/nn"
)

// TopoFilterConfig controls the TopoFilter baseline.
type TopoFilterConfig struct {
	// Epochs of training on the label-related inventory subset plus the
	// incremental dataset before features are extracted. TopoFilter has no
	// setup phase: it must train its feature extractor from scratch per
	// request, which is what makes it accurate — and expensive (Fig. 8).
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	// KNN is the neighbour count of the per-class mutual k-NN graph.
	KNN int
	// Seed drives initialization and training shuffles.
	Seed uint64
}

// DefaultTopoFilterConfig mirrors the evaluation setup: enough from-scratch
// epochs for features to organize, a small k for the class subgraphs.
func DefaultTopoFilterConfig(seed uint64) TopoFilterConfig {
	return TopoFilterConfig{Epochs: 30, BatchSize: 32, LR: 0.01, Momentum: 0.9, KNN: 6, Seed: seed}
}

// TopoFilter reproduces the baseline of [Wu et al., NeurIPS 2020] in the
// incremental setting of §V-A4: per request it trains a model from scratch
// on the subset of inventory data whose labels appear in label(D) plus D
// itself (the paper's fair-comparison restriction), then builds a per-class
// mutual k-NN graph over the learned features of D's samples (augmented
// with the related inventory samples to densify the clean clusters) and
// keeps, per class, the D-samples lying in the largest connected component.
// Everything else is declared noisy.
type TopoFilter struct {
	// Arch, InputDim and Classes describe the model TopoFilter trains per
	// request. It deliberately does not reuse the platform's general model,
	// matching the paper's cost accounting: TopoFilter has no setup phase,
	// so all of its cost lands in process time.
	Arch     nn.Arch
	InputDim int
	Classes  int
	// Inventory is the full inventory pool I the label-related subset is
	// drawn from.
	Inventory dataset.Set
	Config    TopoFilterConfig
}

// Name implements detect.Detector.
func (TopoFilter) Name() string { return "topofilter" }

// Detect implements detect.Detector.
func (t TopoFilter) Detect(set dataset.Set) (*detect.Result, error) {
	if t.InputDim < 1 || t.Classes < 2 {
		return nil, fmt.Errorf("baselines: TopoFilter dims input=%d classes=%d", t.InputDim, t.Classes)
	}
	if len(set) == 0 {
		return nil, errors.New("baselines: empty incremental dataset")
	}
	arch := t.Arch
	if arch == "" {
		arch = nn.SimResNet110
	}
	cfg := t.Config
	if cfg.Epochs <= 0 {
		cfg = DefaultTopoFilterConfig(cfg.Seed)
	}
	sw := cost.StartStopwatch()
	res := detect.NewResult()

	// The training corpus: label-related inventory plus the incremental set,
	// all with observed labels.
	related := detect.RestrictToLabels(t.Inventory, set.Labels())
	corpus := make(dataset.Set, 0, len(related)+len(set))
	corpus = append(corpus, related...)
	corpus = append(corpus, set...)
	classes := t.Classes
	examples := dataset.ToExamples(corpus, classes)
	if len(examples) == 0 {
		return nil, errors.New("baselines: TopoFilter has no labelled samples to train on")
	}

	model, err := nn.Build(arch, t.InputDim, classes, mat.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	trainer := nn.NewTrainer(model, nn.NewSGD(cfg.LR, cfg.Momentum, 0))
	stats, err := trainer.Run(examples, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: TopoFilter training: %w", err)
	}
	for _, st := range stats {
		res.Meter.TrainSampleVisits += int64(st.SamplesSeen)
		res.Meter.ParamUpdates += int64(st.BatchUpdates)
	}

	// Per observed class of D: build the mutual k-NN graph over the features
	// of that class's samples from D and the related inventory, keep the
	// largest component.
	dScores := detect.Score(model, set, &res.Meter)
	relScores := detect.Score(model, related, &res.Meter)

	// Default: everything in D is noisy until proven clean; missing labels
	// have no class subgraph and stay noisy.
	for _, smp := range set {
		res.MarkNoisy(smp.ID)
	}
	for class := range set.Labels() {
		var vecs [][]float64
		var dIdx []int // positions in vecs that belong to D, with set index
		var setPos []int
		for i, smp := range set {
			if smp.Observed == class {
				dIdx = append(dIdx, len(vecs))
				setPos = append(setPos, i)
				vecs = append(vecs, dScores.Features[i])
			}
		}
		for i, smp := range related {
			if smp.Observed == class {
				vecs = append(vecs, relScores.Features[i])
			}
		}
		if len(vecs) == 0 {
			continue
		}
		k := cfg.KNN
		if k >= len(vecs) {
			k = len(vecs) - 1
		}
		if k <= 0 {
			// A single vertex forms its own clean component.
			for _, pos := range setPos {
				res.MarkClean(set[pos].ID)
			}
			continue
		}
		comps, err := graph.KNNComponents(vecs, k, true)
		if err != nil {
			return nil, fmt.Errorf("baselines: TopoFilter class %d: %w", class, err)
		}
		largest := make(map[int]bool, len(comps[0]))
		for _, v := range comps[0] {
			largest[v] = true
		}
		for n, vecPos := range dIdx {
			if largest[vecPos] {
				res.MarkClean(set[setPos[n]].ID)
			}
		}
	}
	res.Process = sw.Elapsed()
	return res, nil
}
