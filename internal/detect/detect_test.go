package detect

import (
	"testing"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/nn"
)

func testModelAndSet(t *testing.T) (*nn.Network, dataset.Set) {
	t.Helper()
	model := nn.NewNetwork([]int{3, 5, 4}, mat.NewRNG(1))
	rng := mat.NewRNG(2)
	set := make(dataset.Set, 12)
	for i := range set {
		set[i] = dataset.Sample{
			ID:       i,
			X:        rng.NormVec(make([]float64, 3), 0, 1),
			Observed: i % 4,
			True:     i % 4,
		}
	}
	return model, set
}

func TestResultMarking(t *testing.T) {
	r := NewResult()
	r.MarkNoisy(1)
	r.MarkClean(2)
	if !r.Noisy[1] || !r.Clean[2] {
		t.Fatal("marks lost")
	}
	r.MarkClean(1)
	if r.Noisy[1] || !r.Clean[1] {
		t.Fatal("MarkClean did not override noisy")
	}
	r.MarkNoisy(2)
	if r.Clean[2] || !r.Noisy[2] {
		t.Fatal("MarkNoisy did not override clean")
	}
}

func TestScoreShapesAndConsistency(t *testing.T) {
	model, set := testModelAndSet(t)
	var meter cost.Meter
	s := Score(model, set, &meter)
	if len(s.Confidences) != len(set) || len(s.Features) != len(set) {
		t.Fatal("score lengths wrong")
	}
	for i, smp := range set {
		if got := model.Predict(smp.X); got != s.Predicted[i] {
			t.Fatalf("cached prediction %d != model %d", s.Predicted[i], got)
		}
		if s.MaxConf[i] != mat.Max(s.Confidences[i]) {
			t.Fatal("MaxConf inconsistent")
		}
		if len(s.Features[i]) != model.FeatureDim() {
			t.Fatal("feature length wrong")
		}
		if s.Entropy[i] < 0 {
			t.Fatal("negative entropy")
		}
	}
	if meter.ForwardPasses != int64(len(set)) {
		t.Fatalf("forward passes = %d", meter.ForwardPasses)
	}
	// nil meter must not panic.
	Score(model, set[:2], nil)
}

func TestAmbiguousAndAgreeing(t *testing.T) {
	set := dataset.Set{
		{ID: 0, Observed: 1},
		{ID: 1, Observed: 0},
		{ID: 2, Observed: dataset.Missing},
	}
	pred := []int{1, 1, 1}
	amb := Ambiguous(set, pred)
	if len(amb) != 2 || amb[0] != 1 || amb[1] != 2 {
		t.Fatalf("Ambiguous = %v", amb)
	}
	agr := Agreeing(set, pred)
	if len(agr) != 1 || agr[0] != 0 {
		t.Fatalf("Agreeing = %v", agr)
	}
	// Partition property: every index is in exactly one of the two.
	if len(amb)+len(agr) != len(set) {
		t.Fatal("ambiguous/agreeing do not partition")
	}
}

func TestSubset(t *testing.T) {
	set := dataset.Set{{ID: 10}, {ID: 11}, {ID: 12}}
	got := Subset(set, []int{2, 0})
	if len(got) != 2 || got[0].ID != 12 || got[1].ID != 10 {
		t.Fatalf("Subset = %v", got)
	}
	if s := Subset(set, nil); len(s) != 0 {
		t.Fatal("empty subset")
	}
}

func TestRestrictToLabels(t *testing.T) {
	set := dataset.Set{
		{ID: 0, Observed: 1},
		{ID: 1, Observed: 2},
		{ID: 2, Observed: dataset.Missing},
		{ID: 3, Observed: 1},
	}
	got := RestrictToLabels(set, map[int]bool{1: true})
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 3 {
		t.Fatalf("RestrictToLabels = %v", got)
	}
	if got := RestrictToLabels(set, nil); len(got) != 0 {
		t.Fatalf("nil labels kept %d", len(got))
	}
}
