// Package detect defines the interface every noisy-label detection method in
// this repository implements, plus the shared helpers for scoring a dataset
// under a model. The experiment harness treats ENLD and all baselines
// uniformly through this interface, which keeps the timing comparison of
// Fig. 8 apples-to-apples.
package detect

import (
	"time"

	"enld/internal/cost"
	"enld/internal/dataset"
	"enld/internal/mat"
	"enld/internal/nn"
)

// Result is the outcome of one noisy-label detection request.
type Result struct {
	// Noisy holds the IDs of samples detected as noisy (the set N; D̃_N in
	// the metrics of §V-A3); Clean holds the rest of the dataset (the set S).
	Noisy map[int]bool
	Clean map[int]bool
	// Meter records the analytic work performed and Process the wall-clock
	// time of this request (the paper's "process time").
	Meter   cost.Meter
	Process time.Duration
}

// NewResult returns an empty result with allocated sets.
func NewResult() *Result {
	return &Result{Noisy: make(map[int]bool), Clean: make(map[int]bool)}
}

// MarkNoisy files id as noisy.
func (r *Result) MarkNoisy(id int) {
	r.Noisy[id] = true
	delete(r.Clean, id)
}

// MarkClean files id as clean.
func (r *Result) MarkClean(id int) {
	r.Clean[id] = true
	delete(r.Noisy, id)
}

// Detector is a noisy-label detection method: given an incremental dataset
// D, it partitions D into clean and noisy subsets.
type Detector interface {
	Name() string
	Detect(d dataset.Set) (*Result, error)
}

// Scores caches the model outputs for a sample set: confidence vectors,
// features, predicted labels, max-confidences and entropies. Every detector
// starts from these, so computing them once per (model, set) pair avoids
// redundant forward passes.
type Scores struct {
	Confidences [][]float64
	Features    [][]float64
	Predicted   []int
	MaxConf     []float64
	Entropy     []float64
}

// Score runs the model over every sample of d and caches the outputs.
// It charges one forward pass per sample to meter (if non-nil).
func Score(model *nn.Network, d dataset.Set, meter *cost.Meter) *Scores {
	return ScoreParallel(model, d, meter, 1)
}

// ScoreParallel is Score with the forward passes fanned out over workers
// (0 = all cores). Results are identical at every worker count: each sample's
// outputs land in that sample's slot, and the derived statistics are computed
// per sample with no cross-sample arithmetic.
func ScoreParallel(model *nn.Network, d dataset.Set, meter *cost.Meter, workers int) *Scores {
	s := &Scores{
		Predicted: make([]int, len(d)),
		MaxConf:   make([]float64, len(d)),
		Entropy:   make([]float64, len(d)),
	}
	xs := make([][]float64, len(d))
	for i, smp := range d {
		xs[i] = smp.X
	}
	s.Confidences, s.Features = model.EvaluateBatch(xs, workers)
	for i, conf := range s.Confidences {
		s.Predicted[i] = mat.ArgMax(conf)
		s.MaxConf[i] = mat.Max(conf)
		s.Entropy[i] = mat.Entropy(conf)
	}
	if meter != nil {
		meter.ForwardPasses += int64(len(d))
	}
	return s
}

// ScoreParallel32 is ScoreParallel over a float32 forward snapshot: the
// linear algebra runs in the float32 numeric profile (see DESIGN.md §4) and
// the derived statistics are computed in float64 from the widened outputs.
// The caller owns refreshing model32 from the live network. Results are
// identical at every worker count within the float32 profile.
func ScoreParallel32(model32 *nn.Network32, d dataset.Set, meter *cost.Meter, workers int) *Scores {
	s := &Scores{
		Predicted: make([]int, len(d)),
		MaxConf:   make([]float64, len(d)),
		Entropy:   make([]float64, len(d)),
	}
	xs := make([][]float64, len(d))
	for i, smp := range d {
		xs[i] = smp.X
	}
	s.Confidences, s.Features = model32.EvaluateBatch32(xs, workers)
	for i, conf := range s.Confidences {
		s.Predicted[i] = mat.ArgMax(conf)
		s.MaxConf[i] = mat.Max(conf)
		s.Entropy[i] = mat.Entropy(conf)
	}
	if meter != nil {
		meter.ForwardPasses += int64(len(d))
	}
	return s
}

// Ambiguous returns the indices of d whose predicted label disagrees with
// the observed label — the set A of Definition 1. Samples with missing
// labels are always ambiguous (they have no observed label to agree with).
func Ambiguous(d dataset.Set, predicted []int) []int {
	var out []int
	for i, smp := range d {
		if smp.Observed == dataset.Missing || predicted[i] != smp.Observed {
			out = append(out, i)
		}
	}
	return out
}

// Agreeing returns the indices of d whose predicted label equals the
// observed label — the high-quality set H of Definition 1 when d is
// inventory data. Missing labels never agree.
func Agreeing(d dataset.Set, predicted []int) []int {
	var out []int
	for i, smp := range d {
		if smp.Observed != dataset.Missing && predicted[i] == smp.Observed {
			out = append(out, i)
		}
	}
	return out
}

// Subset selects the samples of d at the given indices.
func Subset(d dataset.Set, idx []int) dataset.Set {
	out := make(dataset.Set, 0, len(idx))
	for _, i := range idx {
		out = append(out, d[i])
	}
	return out
}

// RestrictToLabels returns the samples of d whose observed label is in
// labels — the H' = {(x, ỹ) : ỹ ∈ label(D)} restriction of Algorithm 1.
func RestrictToLabels(d dataset.Set, labels map[int]bool) dataset.Set {
	out := make(dataset.Set, 0, len(d))
	for _, smp := range d {
		if smp.Observed != dataset.Missing && labels[smp.Observed] {
			out = append(out, smp)
		}
	}
	return out
}
